// Command sdtables reproduces the paper's tables: the Table 2 update
// message counts at zero failure and the Table 5 metric averages across
// failure rates.
//
// Usage:
//
//	sdtables -table 2
//	sdtables -table 5 -runs 30
//	sdtables -table all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/sdsim"
)

func main() {
	var (
		table   = flag.String("table", "all", "table to reproduce: 2|5|all")
		runs    = flag.Int("runs", 30, "runs per (system, λ) point for Table 5")
		seed    = flag.Int64("seed", 1, "base seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		asCSV   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	params := sdsim.DefaultParams()
	params.Runs = *runs
	params.BaseSeed = *seed

	emit := func(t sdsim.Table) {
		if *asCSV {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	switch *table {
	case "2":
		emit(sdsim.Table2(params))
	case "5":
		res := sdsim.Sweep(sdsim.SweepConfig{Params: params, Workers: *workers})
		emit(sdsim.Table5(res))
	case "all":
		emit(sdsim.Table2(params))
		res := sdsim.Sweep(sdsim.SweepConfig{Params: params, Workers: *workers})
		emit(sdsim.Table5(res))
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q (want 2|5|all)\n", *table)
		os.Exit(2)
	}
}
