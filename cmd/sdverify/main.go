// Command sdverify checks the Configuration Update Principles (§4.1)
// for every system over the single-outage scenario grid: whenever
// connectivity is restored with time to spare, every User must
// eventually regain consistency. It reproduces the paper's guarantee
// claims: FRODO holds the principles ([24]); first-generation systems do
// not ([8]).
//
// With -scenario it instead audits one declarative scenario through
// the run-time consistency oracle: the file is either a bare
// ScenarioSpec (audited on all five systems) or a chaos-hunter fixture
// (internal/hunt/testdata — replayed against its recorded expectation),
// so a hunted-and-minimized violation can be fed straight back through
// the standalone checker.
//
// Usage:
//
//	sdverify                          # summary table
//	sdverify -violations              # also list every violating scenario
//	sdverify -harden                  # the grid with the hardening layer on
//	sdverify -scenario spec.json      # oracle-audit one scenario, all systems
//	sdverify -scenario fixture.json   # replay one hunted fixture
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/hunt"
	"repro/internal/obs"
	"repro/sdsim"
)

func main() {
	listViolations := flag.Bool("violations", false, "list every violating scenario")
	scenario := flag.String("scenario", "", "audit this scenario spec or hunted fixture instead of the outage grid")
	harden := flag.Bool("harden", false, "enable the full protocol-hardening layer")
	flag.Parse()

	if *scenario != "" {
		os.Exit(auditScenario(*scenario, *harden, *listViolations))
	}

	grid := sdsim.DefaultGuaranteeGrid()
	if *harden {
		grid.Harden = sdsim.HardenAll()
	}
	fmt.Println("Configuration Update Principles — single-outage scenario grid")
	fmt.Printf("(change at %.0fs, horizon %.0fs, %.0fs recovery slack)\n\n",
		grid.ChangeAt.Sec(), float64(grid.Horizon)/1e9, float64(grid.RecoverySlack)/1e9)
	fmt.Printf("%-34s  %-10s  %-10s  %s\n", "system", "scenarios", "violations", "verdict")

	for _, sys := range sdsim.Systems() {
		res := sdsim.CheckGuarantees(sys, grid)
		verdict := "HOLDS"
		if !res.Holds() {
			verdict = "VIOLATED"
		}
		fmt.Printf("%-34s  %-10d  %-10d  %s\n", sys, res.Scenarios, len(res.Violations), verdict)
		if *listViolations {
			for _, v := range res.Violations {
				fmt.Printf("    %v\n", v)
			}
		}
	}
	fmt.Println()
	fmt.Println("The paper: FRODO \"provides guarantees\" [24]; \"first-generation service")
	fmt.Println("discovery systems do not provide guarantees of correct behavior\" [8].")
}

// auditScenario runs one spec (or hunted fixture) through the oracle.
// Exit status mirrors the grid checker: 0 all clean, 1 violations.
func auditScenario(path string, harden, listViolations bool) int {
	// A fixture wraps its spec under "scenario"; a bare spec has no such
	// key. Peek instead of guessing from the error message.
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	var probe struct {
		Scenario *json.RawMessage `json:"scenario"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 2
	}

	if probe.Scenario != nil {
		if harden {
			// A fixture pins its own hardened flag — its expectation was
			// recorded for that mode and means nothing under another.
			fmt.Fprintf(os.Stderr, "%s is a fixture; it pins its own hardened flag, drop -harden\n", path)
			return 2
		}
		fx, err := hunt.LoadFixture(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 2
		}
		// Replay with flight recorders attached: on a dirty or failing
		// replay the per-shard rings — frozen at the first violation —
		// are the trace tail a diagnosis starts from.
		rep, flight, err := hunt.ReplayTraced(fx, 0)
		if err != nil {
			fmt.Printf("FAIL  %s\n", err)
			printViolations(rep, listViolations)
			dumpFlight(flight)
			return 1
		}
		fmt.Printf("ok    %s on %s: expectation met (%s)\n", path, fx.System, rep)
		if rep.Total > 0 && listViolations {
			// Dirty by expectation (a hunted fixture): surface the tail on
			// request even though the replay verdict is a pass.
			printViolations(rep, true)
			dumpFlight(flight)
		}
		return 0
	}

	spec, err := sdsim.LoadSpec(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	if harden {
		spec.Hardened = true
	}
	fmt.Printf("Run-time consistency oracle — scenario %s (seed %d)\n\n", path, spec.Seed)
	fmt.Printf("%-34s  %s\n", "system", "oracle report")
	status := 0
	for _, sys := range sdsim.Systems() {
		rep, _ := sdsim.ObserveRun(spec.RunSpec(sys), sdsim.DefaultOracleConfig(sys))
		fmt.Printf("%-34s  %s\n", sys, rep)
		printViolations(rep, listViolations)
		if rep.Total > 0 {
			status = 1
		}
	}
	return status
}

// dumpFlight writes the flight-recorder snapshots to stderr.
func dumpFlight(snaps []obs.FlightSnapshot) {
	if len(snaps) == 0 {
		return
	}
	fmt.Fprintln(os.Stderr, "flight-recorder state at first violation:")
	if err := obs.WriteFlightJSON(os.Stderr, snaps); err != nil {
		fmt.Fprintf(os.Stderr, "flight dump: %v\n", err)
	}
}

func printViolations(rep sdsim.OracleReport, list bool) {
	if !list {
		return
	}
	for _, v := range rep.Violations {
		fmt.Printf("    %v\n", v)
	}
}
