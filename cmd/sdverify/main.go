// Command sdverify checks the Configuration Update Principles (§4.1)
// for every system over the single-outage scenario grid: whenever
// connectivity is restored with time to spare, every User must
// eventually regain consistency. It reproduces the paper's guarantee
// claims: FRODO holds the principles ([24]); first-generation systems do
// not ([8]).
//
// Usage:
//
//	sdverify              # summary table
//	sdverify -violations  # also list every violating scenario
package main

import (
	"flag"
	"fmt"

	"repro/sdsim"
)

func main() {
	listViolations := flag.Bool("violations", false, "list every violating scenario")
	flag.Parse()

	grid := sdsim.DefaultGuaranteeGrid()
	fmt.Println("Configuration Update Principles — single-outage scenario grid")
	fmt.Printf("(change at %.0fs, horizon %.0fs, %.0fs recovery slack)\n\n",
		grid.ChangeAt.Sec(), float64(grid.Horizon)/1e9, float64(grid.RecoverySlack)/1e9)
	fmt.Printf("%-34s  %-10s  %-10s  %s\n", "system", "scenarios", "violations", "verdict")

	for _, sys := range sdsim.Systems() {
		res := sdsim.CheckGuarantees(sys, grid)
		verdict := "HOLDS"
		if !res.Holds() {
			verdict = "VIOLATED"
		}
		fmt.Printf("%-34s  %-10d  %-10d  %s\n", sys, res.Scenarios, len(res.Violations), verdict)
		if *listViolations {
			for _, v := range res.Violations {
				fmt.Printf("    %v\n", v)
			}
		}
	}
	fmt.Println()
	fmt.Println("The paper: FRODO \"provides guarantees\" [24]; \"first-generation service")
	fmt.Println("discovery systems do not provide guarantees of correct behavior\" [8].")
}
