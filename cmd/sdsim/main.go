// Command sdsim runs a single service discovery scenario and prints the
// outcome, optionally with the paper-style event log of §6.2.
//
// Usage:
//
//	sdsim -system upnp -lambda 0.15 -seed 7 -log
//	sdsim -system frodo2p -lambda 0.15 -seed 7 -log -verbose
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/sdsim"
)

func main() {
	var (
		system    = flag.String("system", "frodo2p", "system to simulate: upnp|jini1|jini2|frodo3p|frodo2p")
		lambda    = flag.Float64("lambda", 0.15, "interface failure rate λ in [0,1]")
		seed      = flag.Int64("seed", 1, "random seed (same seed replays the identical run)")
		loss      = flag.Float64("loss", 0, "i.i.d. message loss probability (companion model [25])")
		showLog   = flag.Bool("log", false, "print the event log")
		verbose   = flag.Bool("verbose", false, "include every frame in the event log")
		traceFile = flag.String("trace", "", "write a structured JSONL trace to this file")
	)
	flag.Parse()

	sys, err := sdsim.ParseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec := sdsim.RunSpec{
		System: sys,
		Lambda: *lambda,
		Seed:   *seed,
		Params: sdsim.DefaultParams(),
		Opts:   sdsim.Options{Loss: *loss},
	}

	var res sdsim.RunResult
	var log []string
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err = sdsim.RunTraced(spec, f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceFile)
	} else {
		res, log = sdsim.RunLogged(spec, *verbose)
	}
	if *showLog {
		for _, line := range log {
			fmt.Println(line)
		}
		fmt.Println()
	}

	fmt.Printf("%s at λ=%.2f (seed %d)\n", sys, *lambda, *seed)
	fmt.Printf("  service changed at %.0fs, deadline %.0fs\n", res.ChangeAt.Sec(), res.Deadline.Sec())
	reached := 0
	for _, u := range res.Users {
		if u.Reached {
			reached++
			fmt.Printf("  user %d consistent at %.3fs\n", u.User, u.At.Sec())
		} else {
			fmt.Printf("  user %d NEVER regained consistency\n", u.User)
		}
	}
	fmt.Printf("  effectiveness: %d/%d users\n", reached, len(res.Users))
	fmt.Printf("  update effort y = %d discovery messages (transport frames in run: %d)\n",
		res.Effort, res.TotalTransport)
}
