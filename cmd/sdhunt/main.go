// Command sdhunt runs the chaos hunter: a deterministic,
// coverage-guided fuzz of the scenario space (churn × partitions ×
// burst loss × delay × flash crowds × rack failures) against the
// run-time consistency oracle, minimizing any violation to a
// committable fixture.
//
// The -budget is wall-clock-shaped but charged against a deterministic
// cost model (virtual node-seconds), so the same -budget and -seed
// reproduce the identical corpus, findings and report on any machine.
//
// Usage:
//
//	sdhunt -budget 60s -seed 1            # hunt for one budgeted minute
//	sdhunt -iters 50 -systems frodo2p     # iteration-capped, one system
//	sdhunt -budget 60s -out hunted/       # write fixtures + corpus specs
//	sdhunt -budget 60s -corpus hunted/corpus  # resume from a committed corpus
//	sdhunt -budget 60s -harden            # hunt with the hardening layer on
//	sdhunt -replay internal/hunt/testdata # replay every committed fixture
//
// Exit status: 0 — clean hunt or all replays pass; 1 — violations
// found or a replay failed; 2 — usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/hunt"
	"repro/internal/obs"
)

func main() {
	var (
		budget  = flag.Duration("budget", 0, "hunt budget as a wall-clock-shaped duration (charged deterministically; 0 = use -iters)")
		iters   = flag.Int("iters", 0, "cap on mutated candidates (0 = budget-bounded only)")
		seed    = flag.Int64("seed", 1, "hunt seed: drives mutations and candidate selection")
		systems = flag.String("systems", "", "comma-separated systems to audit (default: all five)")
		out     = flag.String("out", "", "directory to write finding fixtures and the corpus into")
		report  = flag.String("report", "", "also write the JSON report to this file (always printed to stdout)")
		replay  = flag.String("replay", "", "replay every *.json fixture in this directory instead of hunting")
		corpus  = flag.String("corpus", "", "seed the hunt with every *.json spec in this directory (resume from a committed corpus)")
		harden  = flag.Bool("harden", false, "hunt with the full protocol-hardening layer on (find what the layer does NOT close)")
		telem   = flag.String("telemetry", "", "meter every candidate run into one registry and write it as JSON to this file at exit (- for stdout)")
		verbose = flag.Bool("v", false, "log hunt progress to stderr")
	)
	flag.Parse()

	// The registry is passive: hunts stay deterministic (same corpus,
	// same findings) with metering on — the dump just shows the frame
	// and violation volume the hunt pushed through the fabric.
	var reg *obs.Registry
	if *telem != "" {
		reg = obs.NewRegistry()
		experiment.SetTelemetry(reg)
	}

	if *replay != "" {
		code := replayDir(*replay)
		if reg != nil {
			dumpTelemetry(reg, *telem)
		}
		os.Exit(code)
	}
	if *budget <= 0 && *iters <= 0 {
		fmt.Fprintln(os.Stderr, "sdhunt: need -budget or -iters (an unbounded hunt never ends)")
		os.Exit(2)
	}

	cfg := hunt.Config{
		Seed:   *seed,
		Budget: int64(budget.Seconds() * hunt.CostPerWallSecond),
		Iters:  *iters,
		Harden: *harden,
	}
	if *corpus != "" {
		specs, err := loadCorpus(*corpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdhunt: %v\n", err)
			os.Exit(2)
		}
		cfg.Corpus = specs
	}
	if *systems != "" {
		for _, name := range strings.Split(*systems, ",") {
			sys, err := experiment.ParseSystem(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "sdhunt: %v\n", err)
				os.Exit(2)
			}
			cfg.Systems = append(cfg.Systems, sys)
		}
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hunt: "+format+"\n", args...)
		}
	}

	h := hunt.New(cfg)
	rep := h.Run()

	if *out != "" {
		if err := writeOutputs(h, *out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "sdhunt: %v\n", err)
			os.Exit(2)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdhunt: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *report != "" {
		if err := os.WriteFile(*report, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sdhunt: %v\n", err)
			os.Exit(2)
		}
	}
	if reg != nil {
		dumpTelemetry(reg, *telem)
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}

// dumpTelemetry writes the registry as indented JSON to path, or to
// stdout for "-".
func dumpTelemetry(reg *obs.Registry, path string) {
	err := func() error {
		if path == "-" {
			return reg.WriteJSON(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdhunt: -telemetry: %v\n", err)
		os.Exit(2)
	}
}

// writeOutputs drops one fixture file per finding and the full corpus
// (replayable starting points for the next hunt) into dir.
func writeOutputs(h *hunt.Hunter, dir string, rep *hunt.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, fx := range h.Fixtures() {
		name := fmt.Sprintf("hunted-%s-%s.json", fx.System, fx.Expect.Invariant)
		data, err := fx.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
		rep.Findings[i].Fixture = name
	}
	// The corpus goes into its own subdirectory: corpus entries are bare
	// specs, not fixtures, and -replay must not try to replay them.
	corpusDir := filepath.Join(dir, "corpus")
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		return err
	}
	for i, spec := range h.Corpus() {
		data, err := spec.Encode()
		if err != nil {
			return err
		}
		name := fmt.Sprintf("corpus-%03d.json", i)
		if err := os.WriteFile(filepath.Join(corpusDir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// loadCorpus reads every *.json bare spec under dir (the layout -out
// writes to <out>/corpus/), in sorted order for determinism.
func loadCorpus(dir string) ([]*experiment.ScenarioSpec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no corpus specs under %s", dir)
	}
	var specs []*experiment.ScenarioSpec
	for _, path := range paths {
		spec, err := experiment.LoadSpec(path)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// replayDir loads and replays every fixture under dir, reporting each
// verdict; any failure makes the exit status 1.
func replayDir(dir string) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdhunt: %v\n", err)
		return 2
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "sdhunt: no fixtures under %s\n", dir)
		return 2
	}
	failed := 0
	for _, path := range paths {
		start := time.Now()
		fx, err := hunt.LoadFixture(path)
		if err != nil {
			fmt.Printf("FAIL  %s: %v\n", path, err)
			failed++
			continue
		}
		rep, err := hunt.Replay(fx)
		if err != nil {
			fmt.Printf("FAIL  %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("ok    %s: %s (%.1fs)\n", path, rep, time.Since(start).Seconds())
	}
	if failed > 0 {
		fmt.Printf("%d/%d fixtures failed replay\n", failed, len(paths))
		return 1
	}
	return 0
}
