// Command benchjson converts `go test -bench` text output (read from
// stdin) into the repository's perf-trajectory record format. Each PR
// that touches the hot path appends a BENCH_<pr>.json snapshot:
//
//	go test -bench ... -benchmem ./... | go run ./cmd/benchjson \
//	    -pr 2 -baseline BENCH_1.json > BENCH_2.json
//
// The -baseline flag embeds a previous snapshot's benchmarks, so one
// file carries both sides of the comparison the PR claims. See
// EXPERIMENTS.md, "Perf trajectory".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one BENCH_<pr>.json file.
type Record struct {
	PR         int               `json:"pr"`
	Note       string            `json:"note,omitempty"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	// Baseline carries the benchmarks of the snapshot this record is
	// compared against (a previous BENCH_*.json), if any.
	BaselinePR *int        `json:"baseline_pr,omitempty"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	pr := flag.Int("pr", 0, "PR number this snapshot records (required)")
	note := flag.String("note", "", "free-form annotation stored in the record")
	baseline := flag.String("baseline", "", "previous BENCH_*.json to embed as the comparison baseline")
	flag.Parse()
	if *pr <= 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -pr is required")
		os.Exit(2)
	}

	rec := Record{PR: *pr, Note: *note, Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			rec.Env[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(pkg, line); ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		var prev Record
		if err := json.Unmarshal(raw, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		rec.BaselinePR = &prev.PR
		rec.Baseline = prev.Benchmarks
	}

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   0 allocs/op   1.5 events/op
func parseBenchLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix go test appends.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Pkg: pkg, Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
