// Command benchjson converts `go test -bench` text output (read from
// stdin) into the repository's perf-trajectory record format. Each PR
// that touches the hot path appends a BENCH_<pr>.json snapshot:
//
//	go test -bench ... -benchmem ./... | go run ./cmd/benchjson \
//	    -pr 2 -baseline BENCH_1.json > BENCH_2.json
//
// The -baseline flag embeds a previous snapshot's benchmarks, so one
// file carries both sides of the comparison the PR claims. See
// EXPERIMENTS.md, "Perf trajectory".
//
// With -check, benchjson additionally diffs the parsed results against
// the baseline and exits nonzero when a shared benchmark regressed
// beyond the configured thresholds. allocs/op is deterministic and
// gated by default; ns/op gating is opt-in (-ns-threshold > 0) because
// shared CI runners are noisy. In gate mode (-check with -pr 0) no
// record is emitted — the command is purely a regression tripwire:
//
//	go test -bench ... -benchmem ./... | go run ./cmd/benchjson \
//	    -check -baseline BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one BENCH_<pr>.json file.
type Record struct {
	PR         int               `json:"pr"`
	Note       string            `json:"note,omitempty"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	// Baseline carries the benchmarks of the snapshot this record is
	// compared against (a previous BENCH_*.json), if any.
	BaselinePR *int        `json:"baseline_pr,omitempty"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	pr := flag.Int("pr", 0, "PR number this snapshot records (0 allowed only with -check: gate mode, no record emitted)")
	note := flag.String("note", "", "free-form annotation stored in the record")
	baseline := flag.String("baseline", "", "previous BENCH_*.json to embed as the comparison baseline")
	check := flag.Bool("check", false, "fail (exit 1) when a benchmark regresses against the baseline beyond the thresholds")
	allocsThreshold := flag.Float64("allocs-threshold", 0.10, "with -check: allowed fractional allocs/op increase over baseline")
	nsThreshold := flag.Float64("ns-threshold", 0, "with -check: allowed fractional ns/op increase over baseline (0 disables the ns gate)")
	flag.Parse()
	if *pr <= 0 && !*check {
		fmt.Fprintln(os.Stderr, "benchjson: -pr is required (or use -check for gate mode)")
		os.Exit(2)
	}
	if *check && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -check requires -baseline")
		os.Exit(2)
	}

	rec := Record{PR: *pr, Note: *note, Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			rec.Env[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(pkg, line); ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		var prev Record
		if err := json.Unmarshal(raw, &prev); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		rec.BaselinePR = &prev.PR
		rec.Baseline = prev.Benchmarks
	}

	failed := false
	if *check {
		failed = regressions(os.Stderr, rec.Benchmarks, rec.Baseline, *allocsThreshold, *nsThreshold)
	}

	if *pr > 0 {
		out, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	}
	if failed {
		os.Exit(1)
	}
}

// regressions compares every benchmark shared with the baseline and
// reports those whose allocs/op (always) or ns/op (when nsThreshold > 0)
// grew past the allowed fraction. It returns whether any regressed.
func regressions(w *os.File, current, baseline []Benchmark, allocsThreshold, nsThreshold float64) bool {
	base := map[string]Benchmark{}
	for _, b := range baseline {
		base[b.Pkg+" "+b.Name] = b
	}
	failed := false
	compared := 0
	gate := func(b Benchmark, metric string, threshold, cur, prev float64, curOK, prevOK bool) {
		if threshold <= 0 || !prevOK {
			return
		}
		// The baseline gates this metric, so the current run must report
		// it: a silently missing metric (e.g. -benchmem dropped from the
		// gate invocation) would otherwise read as a perfect 0.
		if !curOK {
			failed = true
			fmt.Fprintf(w, "benchjson: REGRESSION %s %s: %s missing from current output (baseline %.1f)\n",
				b.Pkg, b.Name, metric, prev)
			return
		}
		// A zero baseline is an absolute claim ("this path allocates
		// nothing"): any nonzero current value is a regression — a ratio
		// test against zero would wave everything through.
		if prev == 0 {
			if cur > 0 {
				failed = true
				fmt.Fprintf(w, "benchjson: REGRESSION %s %s: %s %.1f > 0 (baseline is zero)\n",
					b.Pkg, b.Name, metric, cur)
			}
			return
		}
		limit := prev * (1 + threshold)
		if cur > limit {
			failed = true
			fmt.Fprintf(w, "benchjson: REGRESSION %s %s: %s %.1f > %.1f (baseline %.1f +%.0f%%)\n",
				b.Pkg, b.Name, metric, cur, limit, prev, threshold*100)
		}
	}
	for _, b := range current {
		prev, ok := base[b.Pkg+" "+b.Name]
		if !ok {
			continue
		}
		compared++
		curAllocs, curAllocsOK := b.Metrics["allocs/op"]
		prevAllocs, prevAllocsOK := prev.Metrics["allocs/op"]
		gate(b, "allocs/op", allocsThreshold, curAllocs, prevAllocs, curAllocsOK, prevAllocsOK)
		curNs, curNsOK := b.Metrics["ns/op"]
		prevNs, prevNsOK := prev.Metrics["ns/op"]
		gate(b, "ns/op", nsThreshold, curNs, prevNs, curNsOK, prevNsOK)
	}
	if compared == 0 {
		fmt.Fprintln(w, "benchjson: -check matched no benchmarks against the baseline")
		return true
	}
	if !failed {
		fmt.Fprintf(w, "benchjson: %d benchmarks within thresholds of baseline\n", compared)
	}
	return failed
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   0 allocs/op   1.5 events/op
func parseBenchLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix go test appends.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Pkg: pkg, Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
