// Command sdlived is the live service-discovery daemon: it boots one of
// the five simulated systems as a wall-clock serving system and exposes
// it to real clients over loopback HTTP (requests) and UDP (pushed
// update notifications), with the run-time consistency oracle auditing
// the live run online.
//
// Usage:
//
//	sdlived -system frodo2p -dilation 0.001 -addr 127.0.0.1:8460
//	sdlived -system upnp -users 100 -burst... (see -help)
//
// The daemon serves until SIGINT/SIGTERM, then prints the oracle report
// and exits nonzero if any invariant was violated. The full telemetry
// registry is served as Prometheus text on /metrics, as expvar under
// /debug/vars, and profiled under /debug/pprof, all on the same
// listener; SIGUSR1 dumps the per-shard flight-recorder rings to
// stderr, and a dirty oracle report at shutdown dumps them too.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/discovery"
	"repro/internal/experiment"
	"repro/internal/live"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/verify"
)

func main() {
	var (
		system   = flag.String("system", "frodo2p", "system to serve: upnp|jini1|jini2|frodo3p|frodo2p")
		addr     = flag.String("addr", "127.0.0.1:8460", "HTTP listen address (port 0 picks one)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening")
		seed     = flag.Int64("seed", 1, "kernel seed")
		dilation = flag.Float64("dilation", 0.001, "wall seconds per virtual second (0.001 = 1000× faster than real time)")
		loss     = flag.Float64("loss", 0, "i.i.d. per-frame loss probability")
		harden   = flag.Bool("harden", false, "serve with the full protocol-hardening layer on")
		shards   = flag.Int("shards", 0, "partition the fabric across this many parallel shards (0/1 = single fabric; ≥2 is FRODO-only)")
		crossMin = flag.Float64("cross-min", 0, "inter-shard minimum link delay in virtual seconds — the conservative lookahead (0 = the 0.2s default; needs -shards ≥ 2)")
		crossMax = flag.Float64("cross-max", 0, "inter-shard maximum link delay in virtual seconds (0 = the 0.4s default; needs -shards ≥ 2)")
		noOracle = flag.Bool("no-oracle", false, "serve without the consistency oracle attached")

		users      = flag.Int("users", 5, "scenario Users built at boot (clients come on top)")
		managers   = flag.Int("managers", 0, "Manager nodes; extras host background services (0 = 1)")
		registries = flag.Int("registries", 0, "Registry nodes (0 = the system's Table 4 count)")
		services   = flag.Int("services", 0, "distinct background service types (0 = one per extra Manager)")
	)
	flag.Parse()

	sys, err := experiment.ParseSystem(*system)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdlived: %v\n", err)
		os.Exit(2)
	}
	if *users <= 0 {
		fmt.Fprintf(os.Stderr, "sdlived: -users must be positive, got %d\n", *users)
		os.Exit(2)
	}
	topo := experiment.Topology{Users: *users, Managers: *managers, Registries: *registries, Services: *services}
	// Validate the topology flags up front with a friendly message —
	// never a panic from deep inside scenario construction.
	if err := topo.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "sdlived: %v\n", err)
		os.Exit(2)
	}
	if *dilation <= 0 {
		fmt.Fprintf(os.Stderr, "sdlived: -dilation must be positive, got %v\n", *dilation)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "sdlived: -shards must not be negative, got %d\n", *shards)
		os.Exit(2)
	}
	var cross netsim.CrossLink
	if *crossMin != 0 || *crossMax != 0 {
		if *shards < 2 {
			fmt.Fprintf(os.Stderr, "sdlived: -cross-min/-cross-max need -shards ≥ 2\n")
			os.Exit(2)
		}
		cross = netsim.DefaultCrossLink()
		if *crossMin != 0 {
			cross.MinDelay = sim.Duration(*crossMin * float64(sim.Second))
		}
		if *crossMax != 0 {
			cross.MaxDelay = sim.Duration(*crossMax * float64(sim.Second))
		}
		if err := cross.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "sdlived: %v\n", err)
			os.Exit(2)
		}
	}

	opts := experiment.Options{Loss: *loss}
	if *harden {
		opts.Harden = discovery.HardenAll()
	}
	cfg := live.Config{
		System:    sys,
		Topology:  topo,
		Options:   opts,
		Seed:      *seed,
		Dilation:  *dilation,
		Shards:    *shards,
		CrossLink: cross,
	}
	if !*noOracle {
		ocfg := verify.DefaultOracleConfig(sys)
		cfg.Oracle = &ocfg
	}
	srv, err := live.Serve(cfg, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdlived: %v\n", err)
		os.Exit(1)
	}

	expvar.Publish("sdlived", expvar.Func(func() any { return srv.Gateway.Stats() }))
	expvar.Publish("sdlived_metrics", expvar.Func(func() any { return srv.Driver.Telemetry().Snapshot() }))
	fabric := "single fabric"
	if *shards >= 2 {
		fabric = fmt.Sprintf("%d shards", *shards)
	}
	fmt.Printf("sdlived: %v serving on %s (%s, dilation %g, oracle %v)\n",
		sys, srv.Addr(), fabric, *dilation, !*noOracle)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sdlived: -addr-file: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	dump := make(chan os.Signal, 1)
	signal.Notify(dump, syscall.SIGUSR1)
	for serving := true; serving; {
		select {
		case <-dump:
			// Operator-requested flight dump: the recent trace tail of every
			// shard, without stopping the daemon.
			fmt.Fprintln(os.Stderr, "sdlived: SIGUSR1 flight dump")
			dumpFlight(srv.Driver.FlightDump())
		case <-sig:
			serving = false
		}
	}

	stats := srv.Gateway.Stats()
	srv.Close()
	fmt.Printf("sdlived: served %d ops, %d notifications (%d dropped), %d events over %.0f virtual seconds\n",
		stats.Ops, stats.NotifySent, stats.NotifyDropped, stats.EventsFired, stats.VirtualSec)
	if rep, ok := srv.OracleReport(); ok {
		fmt.Printf("sdlived: %v\n", rep)
		if !rep.Clean() {
			// The oracle froze the recorders at the first violation, so the
			// rings hold the frames leading up to the breach.
			fmt.Fprintln(os.Stderr, "sdlived: flight-recorder state at first violation:")
			dumpFlight(srv.Driver.FlightDump())
			os.Exit(1)
		}
	}
}

func dumpFlight(snaps []obs.FlightSnapshot) {
	if len(snaps) == 0 {
		fmt.Fprintln(os.Stderr, "sdlived: flight recorders disabled")
		return
	}
	if err := obs.WriteFlightJSON(os.Stderr, snaps); err != nil {
		fmt.Fprintf(os.Stderr, "sdlived: flight dump: %v\n", err)
	}
}
