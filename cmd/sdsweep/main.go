// Command sdsweep regenerates the paper's figures: it runs the full
// interface-failure sweep (λ = 0.00 … 0.90, X runs per point, five
// systems) on a parallel worker pool and prints the requested figure's
// data series as an aligned table or CSV.
//
// Usage:
//
//	sdsweep -figure 4            # Average Update Effectiveness (Fig. 4)
//	sdsweep -figure 5            # Median Update Responsiveness (Fig. 5)
//	sdsweep -figure 6            # Efficiency Degradation (Fig. 6)
//	sdsweep -figure 7            # PR1 ablation on FRODO (Fig. 7)
//	sdsweep -figure all -runs 30 # everything, paper-sized
//	sdsweep -figure loss         # extension: message-loss failure model
//	sdsweep -figure adversarial  # extension: burst vs i.i.d. loss at equal rate
//	sdsweep -figure shard -shards 8 -users 100000   # sharded-fabric speedup table
//	sdsweep -figure shardprofile -users 10000       # per-shard busy/stall/ingest profile, S ∈ {1,2,4,8}
//	sdsweep -figure hardening    # extension: baseline vs hardened under the hunted fault mix
//	sdsweep -figure 4 -harden    # any figure with the protocol-hardening layer on
//
// Adversarial network knobs (apply to figures 4-6 and scale):
//
//	sdsweep -figure 4 -burst-loss 0.2 -burst-len 8   # Gilbert–Elliott loss
//	sdsweep -figure 4 -delay-dist pareto             # heavy-tailed delay
//	sdsweep -figure 4 -partition 3000:4000           # transient bisection
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/sdsim"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "figure to regenerate: 4|5|6|7|loss|polling|scale|shard|shardprofile|hardening|all")
		runs    = flag.Int("runs", 30, "runs per (system, λ) point (X in the paper)")
		seed    = flag.Int64("seed", 1, "base seed for the whole sweep")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		asCSV   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		telem   = flag.String("telemetry", "", "meter every run into one registry and write it as JSON to this file at exit (- for stdout)")
		asPlot  = flag.Bool("plot", false, "render figures 4-6 as ASCII charts too")
		quiet   = flag.Bool("quiet", false, "suppress progress output")

		scenario = flag.String("scenario", "", "sweep over this scenario spec JSON as the base design (strictly validated; its λ is replaced by the sweep grid)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		users      = flag.Int("users", 0, "number of Users N (0 = the paper's 5)")
		managers   = flag.Int("managers", 0, "Manager nodes; extras host background services (0 = 1)")
		registries = flag.Int("registries", 0, "Registry nodes (0 = the system's Table 4 count)")
		services   = flag.Int("services", 0, "distinct background service types (0 = one per extra Manager)")
		shards     = flag.Int("shards", 0, "shard count S for -figure shard (the fabric is split across S parallel kernel/netsim pairs)")
		crossMin   = flag.Float64("cross-min", 0, "inter-shard minimum link delay in seconds for -figure shard — the conservative lookahead (0 = the 0.2s default)")
		crossMax   = flag.Float64("cross-max", 0, "inter-shard maximum link delay in seconds for -figure shard (0 = the 0.4s default)")
		churn      = flag.Float64("churn", 0, "expected departures per User over the run (Poisson; 0 = no churn)")
		absence    = flag.Float64("absence", 0, "mean absence before rejoining, seconds (0 = departures are permanent)")
		arrivals   = flag.Float64("arrivals", 0, "expected fresh User arrivals over the run (Poisson)")

		burstLoss  = flag.Float64("burst-loss", 0, "Gilbert–Elliott burst loss at this average rate (0 = off)")
		burstLen   = flag.Float64("burst-len", 8, "mean burst length in frames for -burst-loss")
		delayDist  = flag.String("delay-dist", "uniform", "one-way delay distribution: uniform|lognormal|pareto")
		delaySigma = flag.Float64("delay-sigma", 0, "lognormal shape for -delay-dist lognormal (0 = 1.0)")
		delayAlpha = flag.Float64("delay-alpha", 0, "Pareto tail exponent for -delay-dist pareto (0 = 1.5)")
		partition  = flag.String("partition", "", "bisect the population: start:duration in virtual seconds, e.g. 3000:4000")

		hardenOn = flag.Bool("harden", false, "enable the full protocol-hardening layer for every run")
	)
	flag.Parse()

	// Validate before the profilers start: an os.Exit on a bad flag must
	// not leave a started-but-unflushed (truncated) CPU profile behind.
	switch *figure {
	case "4", "5", "6", "7", "loss", "polling", "scale", "adversarial", "hardening", "shardprofile", "all":
	case "shard":
		if *shards < 2 {
			fmt.Fprintf(os.Stderr, "-figure shard needs -shards ≥ 2, got %d\n", *shards)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
	if *shards != 0 && *figure != "shard" {
		fmt.Fprintf(os.Stderr, "-shards applies to -figure shard only\n")
		os.Exit(2)
	}
	var cross sdsim.CrossLink
	if *crossMin != 0 || *crossMax != 0 {
		if *figure != "shard" && *figure != "shardprofile" {
			fmt.Fprintf(os.Stderr, "-cross-min/-cross-max apply to -figure shard and shardprofile only\n")
			os.Exit(2)
		}
		cross = sdsim.DefaultCrossLink()
		if *crossMin != 0 {
			cross.MinDelay = sdsim.Duration(*crossMin * float64(sdsim.Second))
		}
		if *crossMax != 0 {
			cross.MaxDelay = sdsim.Duration(*crossMax * float64(sdsim.Second))
		}
		if err := cross.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}
	if *hardenOn && *figure == "hardening" {
		fmt.Fprintf(os.Stderr, "-figure hardening already runs both modes; drop -harden\n")
		os.Exit(2)
	}

	// A scenario spec fixes the same dimensions the ad-hoc flags do;
	// mixing the two would make the effective design ambiguous.
	if *scenario != "" {
		specOwned := map[string]bool{
			"users": true, "managers": true, "registries": true, "services": true,
			"churn": true, "absence": true, "arrivals": true,
			"burst-loss": true, "burst-len": true, "delay-dist": true,
			"delay-sigma": true, "delay-alpha": true, "partition": true,
		}
		conflict := ""
		flag.Visit(func(f *flag.Flag) {
			if specOwned[f.Name] {
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(os.Stderr, "-scenario already fixes the design; drop -%s or edit the spec\n", conflict)
			os.Exit(2)
		}
	}

	// Topology flags too: a friendly error up front, not a panic from
	// deep inside scenario construction (and not silently: normalized()
	// would otherwise paper a negative -users over with the default 5).
	topoFlags := sdsim.Topology{
		Users:      *users,
		Managers:   *managers,
		Registries: *registries,
		Services:   *services,
	}
	if err := topoFlags.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	if *churn < 0 || *absence < 0 || *arrivals < 0 {
		fmt.Fprintf(os.Stderr, "-churn, -absence and -arrivals must not be negative\n")
		os.Exit(2)
	}

	var link sdsim.LinkConfig
	if *burstLoss > 0 {
		if *burstLoss >= 1 || *burstLen < 1 {
			fmt.Fprintf(os.Stderr, "-burst-loss needs a rate in (0,1) and -burst-len ≥ 1\n")
			os.Exit(2)
		}
		if *burstLoss/(1-*burstLoss) > *burstLen {
			fmt.Fprintf(os.Stderr, "-burst-loss %v is unreachable with -burst-len %v: needs ≥ %.3f\n",
				*burstLoss, *burstLen, *burstLoss/(1-*burstLoss))
			os.Exit(2)
		}
		link.Burst = sdsim.BurstForAverage(*burstLoss, *burstLen)
	}
	dist, err := sdsim.ParseDelayDist(*delayDist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	link.Delay = sdsim.DelayConfig{Dist: dist, Sigma: *delaySigma, Alpha: *delayAlpha}
	linkOpts := sdsim.Options{Link: link}

	var partitions []sdsim.Partition
	if *partition != "" {
		var startSec, durSec float64
		if _, err := fmt.Sscanf(*partition, "%f:%f", &startSec, &durSec); err != nil || durSec <= 0 {
			fmt.Fprintf(os.Stderr, "-partition wants start:duration in seconds, got %q\n", *partition)
			os.Exit(2)
		}
		partitions = append(partitions, sdsim.Partition{
			Start:    sdsim.Time(startSec * float64(sdsim.Second)),
			Duration: sdsim.Duration(durSec * float64(sdsim.Second)),
			Bisect:   true,
		})
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdsweep: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sdsweep: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sdsweep: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "sdsweep: -memprofile: %v\n", err)
			}
		}()
	}

	if *telem != "" {
		sdsim.SetTelemetry(sdsim.NewRegistry())
	}

	params := sdsim.DefaultParams()
	params.Runs = *runs
	params.BaseSeed = *seed
	params.Topology = topoFlags
	params.Churn = sdsim.Churn{
		Departures:  *churn,
		MeanAbsence: sdsim.Duration(*absence * float64(sdsim.Second)),
		Arrivals:    *arrivals,
	}
	params.Partitions = partitions
	if *hardenOn {
		params.Hardening = sdsim.HardenAll()
	}

	if *scenario != "" {
		// The shared spec codec: strict decoding, field-path validation.
		// The spec supplies every design dimension except the sweep's own
		// axes — the λ grid, the run count and the base seed stay flags.
		spec, err := sdsim.LoadSpec(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		params = spec.Params()
		params.Runs = *runs
		params.BaseSeed = *seed
		params.Lambdas = sdsim.DefaultLambdas()
		linkOpts = spec.Options()
		if *hardenOn {
			params.Hardening = sdsim.HardenAll()
		}
	}

	progress := func(done, total int) {
		if *quiet {
			return
		}
		if done%100 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	emit := func(t sdsim.Table) {
		if *asCSV {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	needMain := map[string]bool{"4": true, "5": true, "6": true, "all": true}
	var main sdsim.SweepResult
	if needMain[*figure] {
		// The link-conditioning flags apply to the main sweep, so figures
		// 4–6 can be regenerated under adversarial networks directly.
		main = sdsim.Sweep(sdsim.SweepConfig{
			Params: params, Workers: *workers, Progress: progress, Opts: linkOpts,
		})
	}

	chart := func(m sdsim.Metric) {
		if *asPlot {
			fmt.Println(sdsim.Chart(main, m))
		}
	}

	switch *figure {
	case "4":
		emit(sdsim.Figure4(main))
		chart(sdsim.MetricEffectiveness)
	case "5":
		emit(sdsim.Figure5(main))
		chart(sdsim.MetricResponsiveness)
	case "6":
		emit(sdsim.Figure6(main))
		chart(sdsim.MetricDegradation)
	case "7":
		with, without := sdsim.Figure7Sweep(params, *workers, progress)
		emit(sdsim.Figure7(with, without))
	case "loss":
		emit(lossSweep(params, *workers, progress))
	case "polling":
		emit(pollingSweep(params, *workers, progress))
	case "scale":
		emit(scaleSweep(params, linkOpts, *workers, progress))
	case "shard":
		emit(shardTable(params, linkOpts, *shards, cross, *quiet))
	case "shardprofile":
		emit(shardProfileTable(params, linkOpts, cross, *quiet))
	case "adversarial":
		emit(sdsim.FigureAdversarial(params, *workers, progress))
	case "hardening":
		emit(sdsim.FigureHardening(params, *runs, *workers, progress))
	case "all":
		emit(sdsim.Figure4(main))
		chart(sdsim.MetricEffectiveness)
		emit(sdsim.Figure5(main))
		chart(sdsim.MetricResponsiveness)
		emit(sdsim.Figure6(main))
		chart(sdsim.MetricDegradation)
		emit(sdsim.Table5(main))
		with, without := sdsim.Figure7Sweep(params, *workers, progress)
		emit(sdsim.Figure7(with, without))
	default:
		// Unreachable: the up-front validation rejected unknown figures
		// before the profilers started. Panic (not os.Exit) so that if the
		// two lists ever diverge, the deferred profile teardown still runs.
		panic(fmt.Sprintf("figure %q passed validation but has no dispatch case", *figure))
	}

	if *telem != "" {
		if err := dumpTelemetry(sdsim.Telemetry(), *telem); err != nil {
			fmt.Fprintf(os.Stderr, "sdsweep: -telemetry: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpTelemetry writes the process registry as indented JSON to path,
// or to stdout for "-".
func dumpTelemetry(reg *sdsim.Registry, path string) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pollingSweep is the CM2 extension experiment: notification-only versus
// notification-plus-persistent-polling, quantifying the §4.2 trade-off
// (polling is the more effective method if persistent, but slower and
// redundant for rarely-changing services).
func pollingSweep(params sdsim.Params, workers int, progress func(int, int)) sdsim.Table {
	params.Lambdas = []float64{0, 0.15, 0.30, 0.45, 0.60, 0.75, 0.90}
	base := sdsim.Sweep(sdsim.SweepConfig{Params: params, Workers: workers, Progress: progress})
	polled := sdsim.Sweep(sdsim.SweepConfig{Params: params, Workers: workers, Progress: progress,
		Opts: sdsim.WithPolling(600 * sdsim.Second)})
	t := sdsim.Table{
		Title:  "Extension: CM1 (notification) vs CM1+CM2 (adding 600s persistent polling) — Update Effectiveness",
		Header: []string{"failure%"},
	}
	for _, sys := range sdsim.Systems() {
		t.Header = append(t.Header, sys.Short(), sys.Short()+"+poll")
	}
	for li, l := range params.Lambdas {
		row := []string{fmt.Sprintf("%.0f", l*100)}
		for _, sys := range sdsim.Systems() {
			row = append(row,
				fmt.Sprintf("%.3f", base.Curves[sys].Points[li].Effectiveness),
				fmt.Sprintf("%.3f", polled.Curves[sys].Points[li].Effectiveness))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"polling repairs missed notifications (higher F) at the price of redundant traffic (lower G) and poll-grid latency")
	return t
}

// scaleSweep is the scale-out extension: one sweep per population size,
// holding the failure grid small, to chart how each system's Update
// Effectiveness and per-run effort respond to growing N. The -churn,
// -managers and -registries flags apply to every column, as do the
// link-conditioning flags via opts.
func scaleSweep(params sdsim.Params, opts sdsim.Options, workers int, progress func(int, int)) sdsim.Table {
	sizes := []int{5, 25, 100, 500, 1000}
	params.Lambdas = []float64{0, 0.30}
	t := sdsim.Table{
		Title:  "Extension: Update Effectiveness and zero-failure effort vs population size N",
		Header: []string{"system"},
	}
	for _, n := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("F@N=%d(0%%)", n), fmt.Sprintf("F@N=%d(30%%)", n), fmt.Sprintf("m'@N=%d", n))
	}
	for _, sys := range sdsim.Systems() {
		row := []string{sys.Short()}
		for _, n := range sizes {
			p := params
			p.Topology.Users = n
			res := sdsim.Sweep(sdsim.SweepConfig{
				Systems: []sdsim.System{sys}, Params: p, Workers: workers, Progress: progress,
				Opts: opts,
			})
			pts := res.Curves[sys].Points
			row = append(row,
				fmt.Sprintf("%.3f", pts[0].Effectiveness),
				fmt.Sprintf("%.3f", pts[1].Effectiveness),
				fmt.Sprintf("%d", res.MPrime[sys]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"streaming per-cell aggregation keeps sweep memory flat in N; combine with -churn/-managers/-registries for populated-network scenarios")
	return t
}

// shardTable is the sharded-fabric extension: the same single FRODO
// two-party run (λ=0, one service change) executed on one fabric and on
// S shards, timed against the wall clock. The sharded run is a
// different — equally valid — timeline of the same scenario, so the
// consistency score F is reported for both fabrics as the sanity
// column. Use -users for one population size; the default charts the
// trajectory the ROADMAP's single-run scale item tracks.
func shardTable(params sdsim.Params, opts sdsim.Options, shards int, cross sdsim.CrossLink, quiet bool) sdsim.Table {
	sizes := []int{1_000, 10_000, 100_000}
	if params.Topology.Users > 0 {
		sizes = []int{params.Topology.Users}
	}
	t := sdsim.Table{
		Title: fmt.Sprintf("Extension: sharded-fabric wall clock, 1 vs %d shards (FRODO 2-party, λ=0)", shards),
		Header: []string{"N", "1-shard s", fmt.Sprintf("%d-shard s", shards), "speedup",
			"F(1)", fmt.Sprintf("F(%d)", shards)},
	}
	for _, n := range sizes {
		p := params
		p.Topology.Users = n
		spec := sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0, Seed: p.BaseSeed, Params: p, Opts: opts}
		f := func(res sdsim.RunResult) float64 {
			reached := 0
			for _, u := range res.Users {
				if u.Reached {
					reached++
				}
			}
			return float64(reached) / float64(len(res.Users))
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "N=%d: single fabric...", n)
		}
		t0 := time.Now()
		fBase := f(sdsim.Run(spec))
		dBase := time.Since(t0).Seconds()
		spec.Shards = shards
		spec.Cross = cross
		if err := spec.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, " %.1fs, %d shards...", dBase, shards)
		}
		t0 = time.Now()
		fShard := f(sdsim.Run(spec))
		dShard := time.Since(t0).Seconds()
		if !quiet {
			fmt.Fprintf(os.Stderr, " %.1fs\n", dShard)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", dBase),
			fmt.Sprintf("%.1f", dShard),
			fmt.Sprintf("%.2f×", dBase/dShard),
			fmt.Sprintf("%.3f", fBase),
			fmt.Sprintf("%.3f", fShard),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("this host exposes %d CPU(s); the parallel win needs as many cores as shards", runtime.NumCPU()),
		"shards hold disjoint User subsets coupled by conservative lookahead windows; see DESIGN.md \"Sharded fabric\"")
	return t
}

// shardProfileTable runs the same FRODO two-party scenario on S ∈
// {1, 2, 4, 8} shards with the telemetry registry attached and reports
// each shard's wall-clock busy time, barrier-stall time, cross-shard
// frame ingest and occupancy (busy / (busy+stall)). On a host with
// fewer cores than shards the stall column reads the scheduling queue,
// not the barrier protocol — compare occupancy against NumCPU before
// concluding the fabric is stall-bound.
func shardProfileTable(params sdsim.Params, opts sdsim.Options, cross sdsim.CrossLink, quiet bool) sdsim.Table {
	n := params.Topology.Users
	if n == 0 {
		n = 10_000
	}
	t := sdsim.Table{
		Title:  fmt.Sprintf("Extension: per-shard fabric profile (FRODO 2-party, λ=0, N=%d)", n),
		Header: []string{"S", "shard", "busy s", "stall s", "ingest", "occup%", "wall s"},
	}
	for _, s := range []int{1, 2, 4, 8} {
		p := params
		p.Topology.Users = n
		reg := sdsim.NewRegistry()
		spec := sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0, Seed: p.BaseSeed,
			Params: p, Opts: opts, Telemetry: reg}
		if s >= 2 {
			spec.Shards = s
			spec.Cross = cross
			if err := spec.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(2)
			}
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "S=%d...", s)
		}
		t0 := time.Now()
		sdsim.Run(spec)
		wall := time.Since(t0).Seconds()
		if !quiet {
			fmt.Fprintf(os.Stderr, " %.1fs\n", wall)
		}
		snap := reg.Snapshot()
		series := func(name string, shard int) float64 {
			v, _ := snap[fmt.Sprintf("%s{shard=%q}", name, fmt.Sprint(shard))].(uint64)
			return float64(v)
		}
		for sh := 0; sh < s; sh++ {
			busy := series("sd_shard_busy_nanos_total", sh) / 1e9
			stall := series("sd_shard_barrier_stall_nanos_total", sh) / 1e9
			ingest := series("sd_shard_cross_frames_in_total", sh)
			if s == 1 {
				// An unsharded fabric has no barrier: the whole run is one
				// shard's busy time.
				busy, stall, ingest = wall, 0, 0
			}
			occ := 100.0
			if busy+stall > 0 {
				occ = 100 * busy / (busy + stall)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", s),
				fmt.Sprintf("%d", sh),
				fmt.Sprintf("%.2f", busy),
				fmt.Sprintf("%.2f", stall),
				fmt.Sprintf("%.0f", ingest),
				fmt.Sprintf("%.1f", occ),
				fmt.Sprintf("%.2f", wall),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("this host exposes %d CPU(s); occupancy below ~100·cores/S %% means shards time-slice, so stall measures the scheduler, not the barrier", runtime.NumCPU()),
		"busy+stall covers a worker's windowed loop; shard 0 runs inline on the coordinator, its stall is the wait for the slowest worker")
	return t
}

// lossSweep is the extension experiment: the message-loss failure model
// of the companion study [25], with λ reinterpreted as the per-frame
// drop probability.
func lossSweep(params sdsim.Params, workers int, progress func(int, int)) sdsim.Table {
	lambdas := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}
	t := sdsim.Table{
		Title:  "Extension: Average Update Effectiveness vs message loss (%) [25]",
		Header: []string{"loss%"},
	}
	curves := map[sdsim.System][]float64{}
	for _, sys := range sdsim.Systems() {
		t.Header = append(t.Header, sys.Short())
		for _, l := range lambdas {
			p := params
			p.Lambdas = []float64{0} // no interface failures
			res := sdsim.Sweep(sdsim.SweepConfig{
				Systems:  []sdsim.System{sys},
				Params:   p,
				Workers:  workers,
				Opts:     sdsim.Options{Loss: l},
				Progress: progress,
			})
			curves[sys] = append(curves[sys], res.Curves[sys].Points[0].Effectiveness)
		}
	}
	for i, l := range lambdas {
		row := []string{fmt.Sprintf("%.0f", l*100)}
		for _, sys := range sdsim.Systems() {
			row = append(row, fmt.Sprintf("%.3f", curves[sys][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
