// Command sdload is the load generator for sdlived: N concurrent
// clients, each owning one registered service and one discovering
// User, issue a register/query/update/subscribe mix over loopback and
// report sustained throughput and latency quantiles.
//
// Per client: register a unique service, attach a User querying it,
// subscribe for pushed notifications, wait for the fabric to complete
// discovery, then loop { update → wait for the pushed notification;
// query } until the duration elapses.
//
// Usage:
//
//	sdload -addr 127.0.0.1:8460 -clients 1000 -duration 30s
//	sdload -addr $(cat .addr) -clients 200 -duration 5s -oracle
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/live"
)

type counters struct {
	register, query, update, notify live.Histogram
	ops                             atomic.Uint64
	errors                          atomic.Uint64
	notifyMisses                    atomic.Uint64
	discovered                      atomic.Uint64
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8460", "sdlived gateway address")
		clients    = flag.Int("clients", 50, "concurrent client goroutines")
		duration   = flag.Duration("duration", 10*time.Second, "per-client measurement duration, anchored after its service is discovered")
		discWait   = flag.Duration("discovery-wait", 60*time.Second, "max wall time for a client's service to be discovered")
		notifyWait = flag.Duration("notify-wait", 10*time.Second, "max wall time for one pushed notification")
		oracle     = flag.Bool("oracle", false, "fetch /v1/oracle at the end and fail on violations")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *clients <= 0 {
		fmt.Fprintln(os.Stderr, "sdload: -clients must be positive")
		os.Exit(2)
	}

	hub, err := live.NewNotifyHub()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdload: notify hub: %v\n", err)
		os.Exit(1)
	}
	defer hub.Close()

	// One shared transport: the connection pool is the scarce resource,
	// not the Client structs.
	tr := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512}
	hc := &http.Client{Timeout: 60 * time.Second, Transport: tr}

	var c counters
	var wg sync.WaitGroup
	start := time.Now()
	allDone := make(chan struct{})
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runClient(i, live.NewClientWith(*addr, hc), hub, &c, *duration, *discWait, *notifyWait)
		}(i)
	}
	go func() { wg.Wait(); close(allDone) }()
	if !*quiet {
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-allDone:
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "\r%d/%d discovered, %d ops, %d errors",
						c.discovered.Load(), *clients, c.ops.Load(), c.errors.Load())
				}
			}
		}()
	}
	<-allDone
	elapsed := time.Since(start)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}

	ops := c.ops.Load()
	fmt.Printf("sdload: %d clients, %v elapsed\n", *clients, elapsed.Round(time.Millisecond))
	fmt.Printf("  discovered:   %d/%d\n", c.discovered.Load(), *clients)
	fmt.Printf("  ops:          %d (%.0f ops/s)\n", ops, float64(ops)/elapsed.Seconds())
	fmt.Printf("  errors:       %d, notify misses: %d\n", c.errors.Load(), c.notifyMisses.Load())
	fmt.Printf("  register:     %s\n", c.register.Summary())
	fmt.Printf("  query:        %s\n", c.query.Summary())
	fmt.Printf("  update:       %s\n", c.update.Summary())
	fmt.Printf("  update→notify %s\n", c.notify.Summary())

	fail := false
	if c.errors.Load() > 0 || c.discovered.Load() < uint64(*clients) {
		fail = true
	}
	if *oracle {
		rep, err := live.NewClientWith(*addr, hc).Oracle()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdload: oracle fetch: %v\n", err)
			fail = true
		} else if rep.Attached && !rep.Clean {
			fmt.Fprintf(os.Stderr, "sdload: ORACLE VIOLATIONS: %d\n", rep.Total)
			for _, v := range rep.Violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			fail = true
		} else {
			fmt.Printf("  oracle:       attached=%v clean=%v\n", rep.Attached, rep.Clean)
		}
	}
	if fail {
		os.Exit(1)
	}
}

// runClient is one external participant's life: register, attach,
// subscribe, discover, then the steady-state update/query loop for
// duration, anchored at this client's own discovery completion.
func runClient(i int, cl *live.Client, hub *live.NotifyHub, c *counters, duration,
	discWait, notifyWait time.Duration) {

	service := fmt.Sprintf("LoadSvc-%d", i)
	fatal := func(stage string, err error) {
		c.errors.Add(1)
		fmt.Fprintf(os.Stderr, "sdload: client %d: %s: %v\n", i, stage, err)
	}

	t := time.Now()
	mgr, err := cl.Register(live.ServiceSpec{Device: "LoadDev", Service: service,
		Attrs: map[string]string{"Client": fmt.Sprint(i)}})
	if err != nil {
		fatal("register", err)
		return
	}
	c.register.Observe(time.Since(t))
	c.ops.Add(1)

	user, err := cl.Attach(live.ServiceQuery{Service: service})
	if err != nil {
		fatal("attach", err)
		return
	}
	c.ops.Add(1)
	notes := hub.Chan(user)
	if err := cl.Subscribe(user, hub.Addr()); err != nil {
		fatal("subscribe", err)
		return
	}
	c.ops.Add(1)

	// Discovery: poll the User's cache until the protocol has found the
	// service. The wait is fabric time (boot, search retries, announce
	// trains), scaled by the daemon's dilation.
	deadline := time.Now().Add(discWait)
	for {
		t = time.Now()
		recs, err := cl.Query(user)
		if err != nil {
			fatal("query", err)
			return
		}
		c.query.Observe(time.Since(t))
		c.ops.Add(1)
		if len(recs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			fatal("discovery", fmt.Errorf("service %s not discovered within %v", service, discWait))
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.discovered.Add(1)

	version := uint64(1)
	stop := time.Now().Add(duration)
	for time.Now().Before(stop) {
		// Update, then wait for the pushed notification of the new
		// version — the end-to-end propagation latency through the
		// simulated fabric.
		t = time.Now()
		v, err := cl.Update(mgr, map[string]string{"Seq": fmt.Sprint(version + 1)})
		if err != nil {
			fatal("update", err)
			return
		}
		c.update.Observe(time.Since(t))
		c.ops.Add(1)
		version = v
		waitT := time.NewTimer(notifyWait)
	waitNote:
		for {
			select {
			case n := <-notes:
				if n.Version >= version {
					c.notify.Observe(time.Since(t))
					if !waitT.Stop() {
						<-waitT.C
					}
					break waitNote
				}
			case <-waitT.C:
				c.notifyMisses.Add(1)
				break waitNote
			}
		}

		t = time.Now()
		if _, err := cl.Query(user); err != nil {
			fatal("query", err)
			return
		}
		c.query.Observe(time.Since(t))
		c.ops.Add(1)
	}
}
