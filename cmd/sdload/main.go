// Command sdload is the load generator for sdlived: N concurrent
// clients, each owning one registered service and one discovering
// User, issue a register/query/update/subscribe mix over loopback and
// report sustained throughput and latency quantiles.
//
// Per client: register a unique service, attach a User querying it,
// subscribe for pushed notifications, wait for the fabric to complete
// discovery, then loop { update → wait for the pushed notification;
// query } until the duration elapses.
//
// Usage:
//
//	sdload -addr 127.0.0.1:8460 -clients 1000 -duration 30s
//	sdload -addr $(cat .addr) -clients 200 -duration 5s -oracle
//	sdload -req-timeout 5s -retries 4 -retry-base 50ms   # bounded, jittered retries
//
// Every request runs under -req-timeout and is retried up to -retries
// times with decorrelated-jitter backoff; failed attempts are classified
// (timeout vs connection-refused vs transport) in the final report.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/live"
	"repro/internal/obs"
)

// counters is a view over the obs registry: every series sdload tracks
// — latency histograms, op/failure totals, per-attempt error classes —
// lives in the registry, so -telemetry dumps the same numbers the
// report prints.
type counters struct {
	register, query, update, notify *obs.Histogram
	ops                             *obs.Counter
	errors                          *obs.Counter
	notifyMisses                    *obs.Counter
	discovered                      *obs.Counter
	// Per-attempt error classes: a request that times out twice and then
	// succeeds contributes 2 to timeouts and 0 to errors.
	timeouts, refused, transport *obs.Counter
	retries                      *obs.Counter
}

func newCounters(reg *obs.Registry) *counters {
	class := reg.CounterVec("sdload_attempt_errors_total", "class")
	return &counters{
		register:     reg.Histogram("sdload_register_seconds"),
		query:        reg.Histogram("sdload_query_seconds"),
		update:       reg.Histogram("sdload_update_seconds"),
		notify:       reg.Histogram("sdload_update_notify_seconds"),
		ops:          reg.Counter("sdload_ops_total"),
		errors:       reg.Counter("sdload_client_failures_total"),
		notifyMisses: reg.Counter("sdload_notify_misses_total"),
		discovered:   reg.Counter("sdload_discovered_total"),
		timeouts:     class.Get("timeout"),
		refused:      class.Get("refused"),
		transport:    class.Get("transport"),
		retries:      reg.Counter("sdload_retries_total"),
	}
}

// classify buckets one failed attempt: timeout (the per-request deadline
// fired), refused (the daemon is down or its accept queue is full), or
// transport (every other connection-level failure).
func (c *counters) classify(err error) {
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		c.timeouts.Add(1)
	case errors.Is(err, syscall.ECONNREFUSED):
		c.refused.Add(1)
	default:
		c.transport.Add(1)
	}
}

// retrier reruns one request under the retry budget, classifying every
// failed attempt and sleeping a decorrelated-jitter backoff between
// attempts (U[base, 3·prev], capped at 32·base) so a herd of clients
// hitting the same stall desynchronizes instead of re-stampeding.
type retrier struct {
	c        *counters
	attempts int
	base     time.Duration
	rng      *rand.Rand
}

func (r *retrier) do(f func() error) error {
	prev := r.base
	for attempt := 1; ; attempt++ {
		err := f()
		if err == nil {
			return nil
		}
		r.c.classify(err)
		if attempt >= r.attempts {
			return err
		}
		r.c.retries.Add(1)
		hi, lo := 3*prev, r.base
		if max := 32 * r.base; hi > max {
			hi = max
		}
		sleep := lo + time.Duration(r.rng.Int63n(int64(hi-lo)+1))
		time.Sleep(sleep)
		prev = sleep
	}
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8460", "sdlived gateway address")
		clients    = flag.Int("clients", 50, "concurrent client goroutines")
		duration   = flag.Duration("duration", 10*time.Second, "per-client measurement duration, anchored after its service is discovered")
		discWait   = flag.Duration("discovery-wait", 60*time.Second, "max wall time for a client's service to be discovered")
		notifyWait = flag.Duration("notify-wait", 10*time.Second, "max wall time for one pushed notification")
		reqTimeout = flag.Duration("req-timeout", 30*time.Second, "per-request timeout (classified as a timeout error when it fires)")
		retries    = flag.Int("retries", 3, "attempts per request before giving up (1 = no retry)")
		retryBase  = flag.Duration("retry-base", 100*time.Millisecond, "initial retry backoff; jittered, capped at 32x")
		oracle     = flag.Bool("oracle", false, "fetch /v1/oracle at the end and fail on violations")
		telemetry  = flag.String("telemetry", "", "write the full metrics registry as JSON to this file at exit (- for stdout)")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *clients <= 0 {
		fmt.Fprintln(os.Stderr, "sdload: -clients must be positive")
		os.Exit(2)
	}
	if *retries < 1 || *retryBase <= 0 || *reqTimeout <= 0 {
		fmt.Fprintln(os.Stderr, "sdload: -retries must be ≥ 1, -retry-base and -req-timeout positive")
		os.Exit(2)
	}

	hub, err := live.NewNotifyHub()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdload: notify hub: %v\n", err)
		os.Exit(1)
	}
	defer hub.Close()

	// One shared transport: the connection pool is the scarce resource,
	// not the Client structs.
	tr := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512}
	hc := &http.Client{Timeout: *reqTimeout, Transport: tr}

	reg := obs.NewRegistry()
	c := newCounters(reg)
	var wg sync.WaitGroup
	start := time.Now()
	allDone := make(chan struct{})
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt := &retrier{c: c, attempts: *retries, base: *retryBase,
				rng: rand.New(rand.NewSource(int64(i)))}
			runClient(i, live.NewClientWith(*addr, hc), hub, c, rt, *duration, *discWait, *notifyWait)
		}(i)
	}
	go func() { wg.Wait(); close(allDone) }()
	if !*quiet {
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-allDone:
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "\r%d/%d discovered, %d ops, %d errors",
						c.discovered.Load(), *clients, c.ops.Load(), c.errors.Load())
				}
			}
		}()
	}
	<-allDone
	elapsed := time.Since(start)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}

	ops := c.ops.Load()
	fmt.Printf("sdload: %d clients, %v elapsed\n", *clients, elapsed.Round(time.Millisecond))
	fmt.Printf("  discovered:   %d/%d\n", c.discovered.Load(), *clients)
	fmt.Printf("  ops:          %d (%.0f ops/s)\n", ops, float64(ops)/elapsed.Seconds())
	fmt.Printf("  errors:       %d, notify misses: %d\n", c.errors.Load(), c.notifyMisses.Load())
	fmt.Printf("  err classes:  timeout %d, refused %d, transport %d (per attempt; %d retried)\n",
		c.timeouts.Load(), c.refused.Load(), c.transport.Load(), c.retries.Load())
	fmt.Printf("  register:     %s\n", c.register.Summary())
	fmt.Printf("  query:        %s\n", c.query.Summary())
	fmt.Printf("  update:       %s\n", c.update.Summary())
	fmt.Printf("  update→notify %s\n", c.notify.Summary())

	if *telemetry != "" {
		if err := dumpTelemetry(reg, *telemetry); err != nil {
			fmt.Fprintf(os.Stderr, "sdload: telemetry: %v\n", err)
			os.Exit(1)
		}
	}

	fail := false
	if c.errors.Load() > 0 || c.discovered.Load() < uint64(*clients) {
		fail = true
	}
	if *oracle {
		rep, err := live.NewClientWith(*addr, hc).Oracle()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdload: oracle fetch: %v\n", err)
			fail = true
		} else if rep.Attached && !rep.Clean {
			fmt.Fprintf(os.Stderr, "sdload: ORACLE VIOLATIONS: %d\n", rep.Total)
			for _, v := range rep.Violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			fail = true
		} else {
			fmt.Printf("  oracle:       attached=%v clean=%v\n", rep.Attached, rep.Clean)
		}
	}
	if fail {
		os.Exit(1)
	}
}

// dumpTelemetry writes the registry as indented JSON to path, or to
// stdout for "-".
func dumpTelemetry(reg *obs.Registry, path string) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runClient is one external participant's life: register, attach,
// subscribe, discover, then the steady-state update/query loop for
// duration, anchored at this client's own discovery completion.
func runClient(i int, cl *live.Client, hub *live.NotifyHub, c *counters, rt *retrier, duration,
	discWait, notifyWait time.Duration) {

	service := fmt.Sprintf("LoadSvc-%d", i)
	fatal := func(stage string, err error) {
		c.errors.Add(1)
		fmt.Fprintf(os.Stderr, "sdload: client %d: %s: %v\n", i, stage, err)
	}

	t := time.Now()
	var mgr int
	err := rt.do(func() error {
		var e error
		mgr, e = cl.Register(live.ServiceSpec{Device: "LoadDev", Service: service,
			Attrs: map[string]string{"Client": fmt.Sprint(i)}})
		return e
	})
	if err != nil {
		fatal("register", err)
		return
	}
	c.register.Observe(time.Since(t))
	c.ops.Add(1)

	var user int
	err = rt.do(func() error {
		var e error
		user, e = cl.Attach(live.ServiceQuery{Service: service})
		return e
	})
	if err != nil {
		fatal("attach", err)
		return
	}
	c.ops.Add(1)
	notes := hub.Chan(user)
	if err := rt.do(func() error { return cl.Subscribe(user, hub.Addr()) }); err != nil {
		fatal("subscribe", err)
		return
	}
	c.ops.Add(1)

	// Discovery: poll the User's cache until the protocol has found the
	// service. The wait is fabric time (boot, search retries, announce
	// trains), scaled by the daemon's dilation.
	deadline := time.Now().Add(discWait)
	for {
		t = time.Now()
		var recs []live.Record
		err := rt.do(func() error {
			var e error
			recs, e = cl.Query(user)
			return e
		})
		if err != nil {
			fatal("query", err)
			return
		}
		c.query.Observe(time.Since(t))
		c.ops.Add(1)
		if len(recs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			fatal("discovery", fmt.Errorf("service %s not discovered within %v", service, discWait))
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.discovered.Add(1)

	version := uint64(1)
	stop := time.Now().Add(duration)
	for time.Now().Before(stop) {
		// Update, then wait for the pushed notification of the new
		// version — the end-to-end propagation latency through the
		// simulated fabric.
		t = time.Now()
		var v uint64
		err := rt.do(func() error {
			var e error
			v, e = cl.Update(mgr, map[string]string{"Seq": fmt.Sprint(version + 1)})
			return e
		})
		if err != nil {
			fatal("update", err)
			return
		}
		c.update.Observe(time.Since(t))
		c.ops.Add(1)
		version = v
		waitT := time.NewTimer(notifyWait)
	waitNote:
		for {
			select {
			case n := <-notes:
				if n.Version >= version {
					c.notify.Observe(time.Since(t))
					if !waitT.Stop() {
						<-waitT.C
					}
					break waitNote
				}
			case <-waitT.C:
				c.notifyMisses.Add(1)
				break waitNote
			}
		}

		t = time.Now()
		if err := rt.do(func() error { _, e := cl.Query(user); return e }); err != nil {
			fatal("query", err)
			return
		}
		c.query.Observe(time.Since(t))
		c.ops.Add(1)
	}
}
