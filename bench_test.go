// Benchmarks regenerating the paper's evaluation (§6), one per table and
// figure, plus the ablations DESIGN.md calls out. Each runs a reduced
// sweep per iteration (fewer runs per point than the paper's X=30 — use
// cmd/sdsweep for full scale) and reports the headline series as custom
// benchmark metrics, so `go test -bench=.` doubles as a smoke
// reproduction.
package repro_test

import (
	"fmt"
	"testing"

	"repro/sdsim"
)

// benchParams is the reduced design used per benchmark iteration.
func benchParams(runs int, lambdas ...float64) sdsim.Params {
	p := sdsim.DefaultParams()
	p.Runs = runs
	if len(lambdas) > 0 {
		p.Lambdas = lambdas
	} else {
		p.Lambdas = []float64{0, 0.15, 0.30, 0.60, 0.90}
	}
	return p
}

// BenchmarkFigure4Effectiveness regenerates Fig. 4: Average Update
// Effectiveness vs interface failure rate for the five systems.
func BenchmarkFigure4Effectiveness(b *testing.B) {
	var res sdsim.SweepResult
	for i := 0; i < b.N; i++ {
		res = sdsim.Sweep(sdsim.SweepConfig{Params: benchParams(4)})
	}
	b.Logf("\n%s", sdsim.Figure4(res))
	for _, sys := range sdsim.Systems() {
		_, f, _ := res.Curves[sys].Average()
		b.ReportMetric(f, "F(avg)/"+sys.Short())
	}
}

// BenchmarkFigure5Responsiveness regenerates Fig. 5: Median Update
// Responsiveness vs interface failure rate.
func BenchmarkFigure5Responsiveness(b *testing.B) {
	var res sdsim.SweepResult
	for i := 0; i < b.N; i++ {
		res = sdsim.Sweep(sdsim.SweepConfig{Params: benchParams(4)})
	}
	b.Logf("\n%s", sdsim.Figure5(res))
	for _, sys := range sdsim.Systems() {
		r, _, _ := res.Curves[sys].Average()
		b.ReportMetric(r, "R(avg)/"+sys.Short())
	}
}

// BenchmarkFigure6EfficiencyDegradation regenerates Fig. 6: Efficiency
// Degradation vs interface failure rate, with the m' legend values.
func BenchmarkFigure6EfficiencyDegradation(b *testing.B) {
	var res sdsim.SweepResult
	for i := 0; i < b.N; i++ {
		res = sdsim.Sweep(sdsim.SweepConfig{Params: benchParams(4)})
	}
	b.Logf("\n%s", sdsim.Figure6(res))
	for _, sys := range sdsim.Systems() {
		_, _, g := res.Curves[sys].Average()
		b.ReportMetric(g, "G(avg)/"+sys.Short())
		b.ReportMetric(float64(res.MPrime[sys]), "mprime/"+sys.Short())
	}
}

// BenchmarkFigure7PR1Ablation regenerates Fig. 7: the PR1 control
// experiment on both FRODO systems.
func BenchmarkFigure7PR1Ablation(b *testing.B) {
	var with, without sdsim.SweepResult
	for i := 0; i < b.N; i++ {
		with, without = sdsim.Figure7Sweep(benchParams(4, 0.30, 0.60, 0.90), 0, nil)
	}
	b.Logf("\n%s", sdsim.Figure7(with, without))
	for _, sys := range []sdsim.System{sdsim.Frodo3P, sdsim.Frodo2P} {
		_, fw, _ := with.Curves[sys].Average()
		_, fo, _ := without.Curves[sys].Average()
		b.ReportMetric(fw, "F-withPR1/"+sys.Short())
		b.ReportMetric(fo, "F-noPR1/"+sys.Short())
	}
}

// BenchmarkTable2MessageCounts regenerates Table 2: the zero-failure
// update message counts (m' per system).
func BenchmarkTable2MessageCounts(b *testing.B) {
	var tab sdsim.Table
	for i := 0; i < b.N; i++ {
		tab = sdsim.Table2(sdsim.DefaultParams())
	}
	b.Logf("\n%s", tab)
	for _, sys := range sdsim.Systems() {
		res := sdsim.Run(sdsim.RunSpec{System: sys, Lambda: 0, Seed: 1, Params: sdsim.DefaultParams()})
		b.ReportMetric(float64(res.Effort), "y0/"+sys.Short())
	}
}

// BenchmarkTable5Averages regenerates Table 5: the metric averages across
// failure rates.
func BenchmarkTable5Averages(b *testing.B) {
	var res sdsim.SweepResult
	for i := 0; i < b.N; i++ {
		res = sdsim.Sweep(sdsim.SweepConfig{Params: benchParams(4)})
	}
	b.Logf("\n%s", sdsim.Table5(res))
}

// BenchmarkScenarioSRN2CaseStudy regenerates the §6.2 event-log scenario
// at λ=15%: a run under UPnP and the same under FRODO 2-party.
func BenchmarkScenarioSRN2CaseStudy(b *testing.B) {
	params := sdsim.DefaultParams()
	var upnpFail, frodoOK int
	for i := 0; i < b.N; i++ {
		upnpFail, frodoOK = 0, 0
		for seed := int64(1); seed <= 10; seed++ {
			ru := sdsim.Run(sdsim.RunSpec{System: sdsim.UPnP, Lambda: 0.15, Seed: seed, Params: params})
			rf := sdsim.Run(sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0.15, Seed: seed, Params: params})
			for _, u := range ru.Users {
				if !u.Reached {
					upnpFail++
				}
			}
			for _, u := range rf.Users {
				if u.Reached {
					frodoOK++
				}
			}
		}
	}
	b.ReportMetric(float64(upnpFail), "upnp-users-lost/10runs")
	b.ReportMetric(float64(frodoOK), "frodo2p-users-ok/10runs")
}

// BenchmarkSingleRun measures the raw cost of one 5400-virtual-second
// scenario per system at λ=0.30 — the unit of work the sweeps
// parallelize.
func BenchmarkSingleRun(b *testing.B) {
	for _, sys := range sdsim.Systems() {
		sys := sys
		b.Run(sys.Short(), func(b *testing.B) {
			params := sdsim.DefaultParams()
			for i := 0; i < b.N; i++ {
				sdsim.Run(sdsim.RunSpec{System: sys, Lambda: 0.30,
					Seed: int64(i + 1), Params: params})
			}
		})
	}
}

// BenchmarkSweepScale measures the scenario engine at population scale:
// a FRODO 2-party sweep (λ ∈ {0, 0.30}, 2 runs per point) with churn at
// N=100 and N=1000 Users — the first points of the perf trajectory
// EXPERIMENTS.md records. Guarded so `go test -short -bench` stays fast.
func BenchmarkSweepScale(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			if testing.Short() {
				b.Skip("scale benchmark skipped in short mode")
			}
			p := sdsim.DefaultParams()
			p.Runs = 2
			p.Lambdas = []float64{0, 0.30}
			p.Topology = sdsim.Topology{Users: n}
			p.Churn = sdsim.Churn{Departures: 0.3, MeanAbsence: 600 * sdsim.Second,
				Arrivals: float64(n) / 20}
			var res sdsim.SweepResult
			for i := 0; i < b.N; i++ {
				res = sdsim.Sweep(sdsim.SweepConfig{
					Systems: []sdsim.System{sdsim.Frodo2P}, Params: p})
			}
			_, f, _ := res.Curves[sdsim.Frodo2P].Average()
			b.ReportMetric(f, "F(avg)")
			b.ReportMetric(float64(res.MPrime[sdsim.Frodo2P]), "mprime")
		})
	}
}

// BenchmarkSingleRunScale measures one 5400-virtual-second FRODO run at
// growing N — the unit of work whose cost bounds any sweep.
func BenchmarkSingleRunScale(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			if testing.Short() {
				b.Skip("scale benchmark skipped in short mode")
			}
			p := sdsim.DefaultParams()
			p.Topology = sdsim.Topology{Users: n}
			for i := 0; i < b.N; i++ {
				sdsim.Run(sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0.30,
					Seed: int64(i + 1), Params: p})
			}
		})
	}
}

// BenchmarkSingleRunScaleSharded is the sharded-fabric trajectory
// point: one N=100k FRODO two-party run, single fabric versus 8 shards
// (BENCH_5 in EXPERIMENTS.md). The workload makes the parallelizable
// part dominate — λ=0, a 20s announcement period so the per-receiver
// multicast fanout is the bulk of the work, and 3s infrastructure boot
// spacing so the Users come up after the Central election settles. On a
// single-core runner the sharded win is the smaller per-shard event
// heaps and delivery queues; the parallel speedup needs real cores.
func BenchmarkSingleRunScaleSharded(b *testing.B) {
	const n = 100_000
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("users=%d/shards=%d", n, shards), func(b *testing.B) {
			if testing.Short() {
				b.Skip("scale benchmark skipped in short mode")
			}
			p := sdsim.DefaultParams()
			p.Topology = sdsim.Topology{Users: n, BootSpacing: 3 * sdsim.Second}
			p.RunDuration = 2400 * sdsim.Second
			p.ChangeMin, p.ChangeMax = 100*sdsim.Second, 600*sdsim.Second
			opts := sdsim.WithFrodoAnnouncePeriod(20 * sdsim.Second)
			reached := 0
			for i := 0; i < b.N; i++ {
				res := sdsim.Run(sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0,
					Seed: int64(i + 1), Params: p, Opts: opts, Shards: shards})
				reached = 0
				for _, u := range res.Users {
					if u.Reached {
						reached++
					}
				}
			}
			b.ReportMetric(float64(reached)/float64(n), "F")
		})
	}
}

// BenchmarkSingleRunScaleShardedChurn is the sharded-churn trajectory
// point (BENCH_6 in EXPERIMENTS.md): the N=100k fabric of the sharded
// point above with the population in motion — Poisson churn (rejoining
// departures plus a 2k-arrival stream) and a bisect partition that
// splits the fabric at 400s and heals at 700s — single fabric versus
// 8 shards. This prices the dynamic dimensions the sharded fabric
// supports: per-shard churn plans, the round-robin arrival cursor and
// the replicated partition arenas.
func BenchmarkSingleRunScaleShardedChurn(b *testing.B) {
	const n = 100_000
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("users=%d/shards=%d", n, shards), func(b *testing.B) {
			if testing.Short() {
				b.Skip("scale benchmark skipped in short mode")
			}
			p := sdsim.DefaultParams()
			p.Topology = sdsim.Topology{Users: n, BootSpacing: 3 * sdsim.Second}
			p.RunDuration = 2400 * sdsim.Second
			p.ChangeMin, p.ChangeMax = 100*sdsim.Second, 600*sdsim.Second
			p.Churn = sdsim.Churn{Departures: 0.2, MeanAbsence: 200 * sdsim.Second,
				Arrivals: float64(n) / 50}
			p.Partitions = []sdsim.Partition{
				{Start: 400 * sdsim.Second, Duration: 300 * sdsim.Second, Bisect: true},
			}
			opts := sdsim.WithFrodoAnnouncePeriod(20 * sdsim.Second)
			reached, measured := 0, 0
			for i := 0; i < b.N; i++ {
				res := sdsim.Run(sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0,
					Seed: int64(i + 1), Params: p, Opts: opts, Shards: shards})
				reached, measured = 0, 0
				for _, u := range res.Users {
					if u.Excluded {
						continue
					}
					measured++
					if u.Reached {
						reached++
					}
				}
			}
			b.ReportMetric(float64(reached)/float64(measured), "F")
		})
	}
}

// BenchmarkAblationSRN2 quantifies the paper's headline technique: FRODO
// 2-party with and without SRN2 at low failure rates, where the paper
// shows SRN2 dominating (Fig. 4(i)).
func BenchmarkAblationSRN2(b *testing.B) {
	params := benchParams(6, 0.10, 0.20, 0.30)
	systems := []sdsim.System{sdsim.Frodo2P}
	var fWith, fWithout float64
	for i := 0; i < b.N; i++ {
		with := sdsim.Sweep(sdsim.SweepConfig{Systems: systems, Params: params})
		without := sdsim.Sweep(sdsim.SweepConfig{Systems: systems, Params: params,
			Opts: sdsim.AblateFrodo(sdsim.SRN2)})
		_, fWith, _ = with.Curves[sdsim.Frodo2P].Average()
		_, fWithout, _ = without.Curves[sdsim.Frodo2P].Average()
	}
	b.ReportMetric(fWith, "F-withSRN2")
	b.ReportMetric(fWithout, "F-noSRN2")
}

// BenchmarkAblationPR3PR4 removes the resubscription-request recoveries
// from both FRODO modes.
func BenchmarkAblationPR3PR4(b *testing.B) {
	params := benchParams(6, 0.30, 0.60)
	systems := []sdsim.System{sdsim.Frodo3P, sdsim.Frodo2P}
	var with, without sdsim.SweepResult
	for i := 0; i < b.N; i++ {
		with = sdsim.Sweep(sdsim.SweepConfig{Systems: systems, Params: params})
		without = sdsim.Sweep(sdsim.SweepConfig{Systems: systems, Params: params,
			Opts: sdsim.AblateFrodo(sdsim.PR3 | sdsim.PR4)})
	}
	for _, sys := range systems {
		_, fw, _ := with.Curves[sys].Average()
		_, fo, _ := without.Curves[sys].Average()
		b.ReportMetric(fw, "F-with/"+sys.Short())
		b.ReportMetric(fo, "F-ablated/"+sys.Short())
	}
}

// BenchmarkAblationAnnouncePeriod sweeps the Central announcement period
// — the design parameter §5 Step 4 discusses ("short enough for the
// discovery process, but long enough [not to] imbalance the system").
func BenchmarkAblationAnnouncePeriod(b *testing.B) {
	params := benchParams(6, 0.60)
	for _, period := range []sdsim.Duration{600 * sdsim.Second, 1200 * sdsim.Second, 2400 * sdsim.Second} {
		period := period
		var f float64
		for i := 0; i < b.N; i++ {
			res := sdsim.Sweep(sdsim.SweepConfig{
				Systems: []sdsim.System{sdsim.Frodo3P},
				Params:  params,
				Opts:    sdsim.WithFrodoAnnouncePeriod(period),
			})
			_, f, _ = res.Curves[sdsim.Frodo3P].Average()
		}
		b.ReportMetric(f, "F/announce="+period.String())
	}
}

// BenchmarkCriticalUpdateMode compares the non-critical (SRN1+SRN2) and
// critical (SRC1+SRC2) configurations of §4.3.
func BenchmarkCriticalUpdateMode(b *testing.B) {
	params := benchParams(6, 0.30, 0.60)
	systems := []sdsim.System{sdsim.Frodo2P}
	var fn, fc float64
	for i := 0; i < b.N; i++ {
		normal := sdsim.Sweep(sdsim.SweepConfig{Systems: systems, Params: params})
		critical := sdsim.Sweep(sdsim.SweepConfig{Systems: systems, Params: params,
			Opts: sdsim.CriticalUpdates()})
		_, fn, _ = normal.Curves[sdsim.Frodo2P].Average()
		_, fc, _ = critical.Curves[sdsim.Frodo2P].Average()
	}
	b.ReportMetric(fn, "F-noncritical")
	b.ReportMetric(fc, "F-critical")
}

// BenchmarkGuaranteeGrid checks the Configuration Update Principles over
// the single-outage grid for one FRODO and one first-generation system —
// the paper's guarantee claims as a benchmark ([24], [8]).
func BenchmarkGuaranteeGrid(b *testing.B) {
	grid := sdsim.DefaultGuaranteeGrid()
	var frodo, upnp sdsim.GuaranteeResult
	for i := 0; i < b.N; i++ {
		frodo = sdsim.CheckGuarantees(sdsim.Frodo2P, grid)
		upnp = sdsim.CheckGuarantees(sdsim.UPnP, grid)
	}
	b.ReportMetric(float64(len(frodo.Violations)), "violations/frodo2p")
	b.ReportMetric(float64(len(upnp.Violations)), "violations/upnp")
}

// BenchmarkPollingVsNotification quantifies CM2 (§4.2): persistent
// polling repairs missed notifications (higher F) while burning
// redundant messages (lower G) — "polling is the more effective method
// if the application allows persistent polling ... [but] slower" and
// wasteful for rarely-changing services.
func BenchmarkPollingVsNotification(b *testing.B) {
	params := benchParams(6, 0.15, 0.30)
	systems := []sdsim.System{sdsim.UPnP, sdsim.Frodo2P}
	var base, polled sdsim.SweepResult
	for i := 0; i < b.N; i++ {
		base = sdsim.Sweep(sdsim.SweepConfig{Systems: systems, Params: params})
		polled = sdsim.Sweep(sdsim.SweepConfig{Systems: systems, Params: params,
			Opts: sdsim.WithPolling(600 * sdsim.Second)})
	}
	for _, sys := range systems {
		_, fb, gb := base.Curves[sys].Average()
		_, fp, gp := polled.Curves[sys].Average()
		b.ReportMetric(fb, "F-notify/"+sys.Short())
		b.ReportMetric(fp, "F-poll/"+sys.Short())
		b.ReportMetric(gb, "G-notify/"+sys.Short())
		b.ReportMetric(gp, "G-poll/"+sys.Short())
	}
}

// BenchmarkMessageLossModel runs the companion failure model [25]: i.i.d.
// frame loss instead of interface failure.
func BenchmarkMessageLossModel(b *testing.B) {
	params := benchParams(6, 0)
	var fU, fF float64
	for i := 0; i < b.N; i++ {
		res := sdsim.Sweep(sdsim.SweepConfig{
			Systems: []sdsim.System{sdsim.UPnP, sdsim.Frodo2P},
			Params:  params,
			Opts:    sdsim.WithLoss(0.2),
		})
		_, fU, _ = res.Curves[sdsim.UPnP].Average()
		_, fF, _ = res.Curves[sdsim.Frodo2P].Average()
	}
	b.ReportMetric(fU, "F-upnp@20%loss")
	b.ReportMetric(fF, "F-frodo2p@20%loss")
}
