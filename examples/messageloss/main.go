// Message loss: the companion study's failure model [25] — every frame
// is dropped independently with probability p — as an extension sweep.
// FRODO's discovery-layer acknowledgements ride out loss that defeats
// single-shot notifications.
//
//	go run ./examples/messageloss
package main

import (
	"fmt"

	"repro/sdsim"
)

func main() {
	params := sdsim.DefaultParams()
	params.Runs = 10
	params.Lambdas = []float64{0} // no interface failures; loss only

	fmt.Println("Update Effectiveness under i.i.d. message loss (10 runs/point):")
	fmt.Println()
	fmt.Printf("%-8s", "loss%")
	for _, sys := range sdsim.Systems() {
		fmt.Printf("  %-8s", sys.Short())
	}
	fmt.Println()

	for _, loss := range []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40} {
		fmt.Printf("%-8.0f", loss*100)
		for _, sys := range sdsim.Systems() {
			res := sdsim.Sweep(sdsim.SweepConfig{
				Systems: []sdsim.System{sys},
				Params:  params,
				Opts:    sdsim.WithLoss(loss),
			})
			fmt.Printf("  %-8.3f", res.Curves[sys].Points[0].Effectiveness)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("TCP-based UPnP/Jini retransmit at the transport; FRODO's selective")
	fmt.Println("acknowledgements (SRN1) plus SRN2 recover at the discovery layer —")
	fmt.Println("\"SRN1 is more useful during heavy message losses\" (§6.2).")
}
