// Quickstart: run one FRODO scenario and watch consistency maintenance
// work — the Fig. 1 message flow end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/sdsim"
)

func main() {
	// The paper's scenario: 5 Users discover a color printer within the
	// first 100s; at a random time the printer's service description
	// changes; the protocol propagates the update.
	spec := sdsim.RunSpec{
		System: sdsim.Frodo2P,
		Lambda: 0, // no failures: the happy path of Fig. 1
		Seed:   42,
		Params: sdsim.DefaultParams(),
	}
	res, log := sdsim.RunLogged(spec, true)

	fmt.Println("=== FRODO with 2-party subscription, no failures ===")
	fmt.Println()
	fmt.Println("Event log around the service change:")
	printed := 0
	for _, line := range log {
		// The full log covers 5400s of leases and announcements; show the
		// update exchange.
		if printed > 40 {
			fmt.Println("  ...")
			break
		}
		if containsAny(line, "ServiceUpdate", "UpdateAck", "note") {
			fmt.Println(" ", line)
			printed++
		}
	}

	fmt.Println()
	fmt.Printf("Service changed at %.0fs; all %d Users reached the new version:\n",
		res.ChangeAt.Sec(), len(res.Users))
	for _, u := range res.Users {
		fmt.Printf("  user %d: consistent after %.6fs\n", u.User, (u.At - res.ChangeAt).Sec())
	}
	fmt.Printf("\nUpdate effort: %d discovery messages — the paper's Table 2 value N+2 = 7.\n", res.Effort)
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if contains(s, sub) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
