// Election: FRODO's robustness machinery (§3) in action — the 300D nodes
// elect the most powerful node as the Central, the Central appoints a
// Backup, the Central fails, the Backup takes over, and when the original
// Central recovers it wins the role back.
//
//	go run ./examples/election
package main

import (
	"fmt"

	"repro/internal/discovery"
	"repro/internal/frodo"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func main() {
	k := sim.New(7)
	nw, err := netsim.New(k, netsim.DefaultConfig())
	if err != nil {
		panic(err)
	}
	cfg := frodo.TwoPartyConfig()

	// Four 300D devices with different capabilities.
	tv := frodo.NewNode(nw.AddNode("SetTopBox"), cfg, frodo.Class300D, 100)
	nas := frodo.NewNode(nw.AddNode("NAS"), cfg, frodo.Class300D, 80)
	hub := frodo.NewNode(nw.AddNode("Hub"), cfg, frodo.Class300D, 60)
	cam := frodo.NewNode(nw.AddNode("Camera"), cfg, frodo.Class300D, 20)
	cam.AttachManager(discovery.ServiceDescription{
		DeviceType: "Camera", ServiceType: "VideoFeed",
		Attributes: map[string]string{"resolution": "720p"},
	})
	nodes := []*frodo.Node{tv, nas, hub, cam}
	for i, nd := range nodes {
		nd.Start(sim.Duration(i+1) * sim.Second)
	}

	report := func(when string) {
		fmt.Printf("%s\n", when)
		for _, nd := range nodes {
			role := "member"
			if nd.IsCentral() {
				role = "CENTRAL"
			} else if nd.IsBackup() {
				role = "backup"
			}
			fmt.Printf("  %-10s power=%3d  role=%-7s  believes central = node %d\n",
				nw.Node(nd.ID()).Name, powerOf(nd), role, nd.Central())
		}
		fmt.Println()
	}

	k.Run(60 * sim.Second)
	report("After boot (t=60s): the most powerful 300D node won the election")

	// The Central's interfaces fail for 4000s.
	nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: tv.ID(), Mode: netsim.FailBoth,
		Start: 100 * sim.Second, Duration: 4000 * sim.Second,
	})

	k.Run(3400 * sim.Second)
	report("After the Central has been silent past the Backup timeout (t=3400s)")

	k.Run(7000 * sim.Second)
	report("After the original Central recovered (t=7000s): higher power wins the role back")
}

func powerOf(nd *frodo.Node) int {
	// The example fixes powers at construction; mirror them for display.
	switch nd.ID() {
	case 0:
		return 100
	case 1:
		return 80
	case 2:
		return 60
	default:
		return 20
	}
}
