// Failure recovery: the paper's §6.2 case study, reproduced exactly.
//
// A User's interfaces go down at 2023s and come back at 2833s; the
// service changes at 2507s, in the middle of the outage. Under UPnP the
// update notification is lost forever — "the User never regains
// consistency!" — while FRODO's SRN2 has the Manager retry when the
// User's subscription renewal arrives.
//
//	go run ./examples/failurerecovery
package main

import (
	"fmt"

	"repro/internal/discovery"
	"repro/internal/frodo"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/upnp"
)

// The §6.2 scenario constants.
const (
	userDownAt = 2023 * sim.Second
	userUpAt   = 2833 * sim.Second
	changeAt   = 2507 * sim.Second
	deadline   = 5400 * sim.Second
)

func main() {
	fmt.Println("=== §6.2 case study: user down 2023s-2833s, service changes at 2507s ===")
	fmt.Println()
	runUPnP()
	fmt.Println()
	runFrodo()
}

func printerSD() discovery.ServiceDescription {
	return discovery.ServiceDescription{
		DeviceType: "FireAlarm", ServiceType: "Alarm",
		Attributes: map[string]string{"status": "ON"},
	}
}

var query = discovery.Query{ServiceType: "Alarm"}

// consistencyPrinter reports every cache write at or above version 2.
func consistencyPrinter(label string) discovery.ConsistencyListener {
	seen := false
	return discovery.ListenerFunc(func(t sim.Time, user, mgr netsim.NodeID, v uint64) {
		if v >= 2 && !seen {
			seen = true
			fmt.Printf("  [%s] user regained consistency at %.3fs\n", label, t.Sec())
		}
	})
}

func runUPnP() {
	fmt.Println("--- UPnP (no SRN2) ---")
	k := sim.New(1)
	nw, err := netsim.New(k, netsim.DefaultConfig())
	if err != nil {
		panic(err)
	}
	cfg := upnp.DefaultConfig()
	mgr := upnp.NewManager(nw.AddNode("Manager"), cfg, printerSD())
	mgr.Start(1 * sim.Second)
	user := upnp.NewUser(nw.AddNode("User"), cfg, query, consistencyPrinter("upnp"))
	user.Start(2 * sim.Second)

	nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: user.ID(), Mode: netsim.FailBoth, Start: userDownAt, Duration: userUpAt - userDownAt,
	})
	k.At(changeAt, func() {
		fmt.Printf("  [upnp] service changes at %.0fs (status ON -> OFF)\n", changeAt.Sec())
		mgr.ChangeService(func(a map[string]string) { a["status"] = "OFF" })
	})
	k.Run(deadline)

	if got := user.CachedVersion(mgr.ID()); got < 2 {
		fmt.Printf("  [upnp] at the 5400s deadline the user still caches version %d: ", got)
		fmt.Println("it NEVER regained consistency (the NOTIFY was lost, the subscription survived).")
	}
}

func runFrodo() {
	fmt.Println("--- FRODO with 2-party subscription (SRN2) ---")
	k := sim.New(1)
	nw, err := netsim.New(k, netsim.DefaultConfig())
	if err != nil {
		panic(err)
	}
	cfg := frodo.TwoPartyConfig()

	central := frodo.NewNode(nw.AddNode("Central"), cfg, frodo.Class300D, 100)
	central.Start(1 * sim.Second)
	mn := frodo.NewNode(nw.AddNode("Manager"), cfg, frodo.Class300D, 5)
	mgr := mn.AttachManager(printerSD())
	mn.Start(2 * sim.Second)
	un := frodo.NewNode(nw.AddNode("User"), cfg, frodo.Class300D, 1)
	user := un.AttachUser(query, consistencyPrinter("frodo"))
	un.Start(3 * sim.Second)

	nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: user.ID(), Mode: netsim.FailBoth, Start: userDownAt, Duration: userUpAt - userDownAt,
	})
	k.At(changeAt, func() {
		fmt.Printf("  [frodo] service changes at %.0fs (status ON -> OFF)\n", changeAt.Sec())
		mgr.ChangeService(func(a map[string]string) { a["status"] = "OFF" })
	})
	k.Run(deadline)

	if got := user.CachedVersion(mgr.ID()); got >= 2 {
		fmt.Println("  [frodo] SRN2: the Manager cached the missed notification and resent it when")
		fmt.Println("          the User's subscription renewal arrived after recovery.")
	} else {
		fmt.Println("  [frodo] unexpected: user still stale")
	}
}
