// Live serving: boot a FRODO 2-party scenario as a wall-clock serving
// system and drive one real client through the whole loop — register a
// service over loopback HTTP, let the simulated protocol discover it,
// subscribe for pushed notifications, update the service, and receive
// the new version as a UDP datagram.
//
//	go run ./examples/live
package main

import (
	"fmt"
	"log"
	"time"

	"repro/sdsim"
)

func main() {
	// A tiny 2-party population: Central, Backup, the measured printer
	// Manager and two Users — plus whatever we attach from outside.
	// Dilation 0.0005 runs the fabric 2000× faster than the wall clock,
	// so second-scale protocol timers answer in milliseconds.
	ocfg := sdsim.DefaultOracleConfig(sdsim.Frodo2P)
	srv, err := sdsim.Serve(sdsim.LiveConfig{
		System:   sdsim.Frodo2P,
		Topology: sdsim.Topology{Users: 2},
		Seed:     42,
		Dilation: 0.0005,
		Oracle:   &ocfg,
	}, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("live FRODO 2-party fabric serving on %s\n", srv.Addr())

	cl := sdsim.NewLiveClient(srv.Addr())

	// 1. Register a service: the gateway spawns a real FRODO Manager
	// node that registers with the live Central, exactly as the printer
	// did at boot.
	mgr, err := cl.Register(sdsim.LiveServiceSpec{
		Device: "Thermostat", Service: "Climate",
		Attrs: map[string]string{"Target": "21C"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered Climate service as Manager node %d\n", mgr)

	// 2. Attach a User requiring that service, and subscribe to pushed
	// notifications of its cache writes.
	user, err := cl.Attach(sdsim.LiveServiceQuery{Service: "Climate"})
	if err != nil {
		log.Fatal(err)
	}
	hub, err := sdsim.NewLiveNotifyHub()
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	notes := hub.Chan(user)
	if err := cl.Subscribe(user, hub.Addr()); err != nil {
		log.Fatal(err)
	}

	// 3. Wait for the protocol to discover the service (search burst to
	// the Central, subscription to the 300D Manager — all on the
	// simulated fabric, just on the wall clock now).
	var rec sdsim.LiveRecord
	for deadline := time.Now().Add(30 * time.Second); ; {
		recs, err := cl.Query(user)
		if err != nil {
			log.Fatal(err)
		}
		if len(recs) > 0 {
			rec = recs[0]
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("discovery timed out")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("user %d discovered %s v%d (Target=%s)\n", user, rec.Service, rec.Version, rec.Attrs["Target"])

	// 4. Update the service and wait for the pushed notification.
	want, err := cl.Update(mgr, map[string]string{"Target": "19C"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published version %d; waiting for the notification...\n", want)
	for {
		select {
		case n := <-notes:
			if n.Version < want {
				continue // stale: the initial-discovery write
			}
			fmt.Printf("notified: user %d now caches Manager %d at v%d (virtual t=%.1fs)\n",
				n.User, n.Manager, n.Version, n.Virtual)
			if n.Version != want {
				log.Fatalf("received version %d; want %d", n.Version, want)
			}
			goto done
		case <-time.After(30 * time.Second):
			log.Fatal("no notification within 30s")
		}
	}
done:
	// 5. The consistency oracle audited the whole exchange online.
	if rep, ok := srv.OracleReport(); ok {
		fmt.Printf("%v\n", rep)
	}
}
