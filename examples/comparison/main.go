// Comparison: benchmark all five systems of §5 at a few failure rates —
// a reduced-scale rendition of the paper's Figures 4-6.
//
//	go run ./examples/comparison
package main

import (
	"fmt"

	"repro/sdsim"
)

func main() {
	params := sdsim.DefaultParams()
	params.Runs = 10
	params.Lambdas = []float64{0, 0.15, 0.30, 0.60, 0.90}

	fmt.Println("Sweeping 5 systems x 5 failure rates x 10 runs on all cores...")
	res := sdsim.Sweep(sdsim.SweepConfig{Params: params})

	fmt.Println()
	fmt.Println(sdsim.Figure4(res))
	fmt.Println(sdsim.Figure5(res))
	fmt.Println(sdsim.Figure6(res))

	fmt.Println("Averages across the sampled failure rates:")
	for _, sys := range sdsim.Systems() {
		r, f, g := res.Curves[sys].Average()
		fmt.Printf("  %-34s R=%.3f  F=%.3f  G=%.3f  (m'=%d)\n",
			sys.String(), r, f, g, res.MPrime[sys])
	}
	fmt.Println()
	fmt.Println("The paper's headline (Table 5): FRODO has the best overall consistency")
	fmt.Println("maintenance — highest responsiveness, least efficiency degradation,")
	fmt.Println("with SRN2 giving FRODO 2-party the best effectiveness below 30% failure.")
}
