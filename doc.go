// Package repro reproduces "On Consistency Maintenance in Service
// Discovery" (V. Sundramoorthy, P.H. Hartel, J. Scholten; IPPS 2006) as a
// production-quality Go library.
//
// The public API lives in package repro/sdsim; the substrates are under
// internal/ (discrete-event kernel, simulated LAN with the paper's UDP
// and TCP failure models, the FRODO, Jini and UPnP protocol models, the
// Update Metrics and the experiment harness). See DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation at reduced scale; the cmd/sdsweep and
// cmd/sdtables binaries run them at full scale.
package repro
