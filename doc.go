// Package repro reproduces "On Consistency Maintenance in Service
// Discovery" (V. Sundramoorthy, P.H. Hartel, J. Scholten; IPPS 2006) as a
// production-quality Go library.
//
// The public API lives in package repro/sdsim; the substrates are under
// internal/ (discrete-event kernel, simulated LAN with the paper's UDP
// and TCP failure models, the FRODO, Jini and UPnP protocol models, the
// Update Metrics and the experiment harness). DESIGN.md documents the
// system inventory and the scenario engine (topology spec, churn model,
// streaming aggregation); EXPERIMENTS.md keeps the paper-vs-measured
// record and the performance trajectory.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation at reduced scale; the cmd/sdsweep and
// cmd/sdtables binaries run them at full scale, including the scale-out
// scenarios (-users, -managers, -churn).
package repro
