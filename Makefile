# Development targets. `make check` is the CI gate: vet + build + race
# tests. Benchmarks (including the N=100/N=1000 scale sweeps) only run
# via `make bench`; they are additionally guarded with testing.Short()
# so `go test -short -bench ...` skips the expensive ones.
#
# `make bench` also records the perf trajectory: it runs the scale
# benchmarks plus the kernel/netsim microbenchmarks with -benchmem and
# writes BENCH_$(BENCH_PR).json (see EXPERIMENTS.md, "Perf trajectory").
# Bump BENCH_PR in the PR that changes the hot path, pass the previous
# snapshot as BENCH_BASELINE, and commit the refreshed file.

GO ?= go
BENCH_PR ?= 4
BENCH_BASELINE ?= BENCH_3.json
COVER_FLOOR ?= 70

.PHONY: check vet build test race bench bench-all bench-scale bench-gate cover-floor clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Record the perf trajectory: scale benchmarks + hot-path
# microbenchmarks, with allocation stats, written to BENCH_<pr>.json.
bench:
	{ $(GO) test -bench 'BenchmarkKernel$$|BenchmarkMulticastFanout|BenchmarkUnicastFrame' -benchtime 200000x -benchmem -run xxx ./internal/sim ./internal/netsim && \
	  $(GO) test -bench 'BenchmarkSingleRunScale|BenchmarkSweepScale' -benchtime 5x -benchmem -run xxx . ; } | tee /dev/stderr | \
	  $(GO) run ./cmd/benchjson -pr $(BENCH_PR) -baseline $(BENCH_BASELINE) > BENCH_$(BENCH_PR).json

# Regression gate: re-run the hot-path microbenchmarks and fail if
# allocs/op regressed against the committed BENCH_$(BENCH_PR).json
# snapshot (ns/op is not gated by default — CI runners are noisy).
# 5000 iterations suffice: the gated metric, allocs/op, is deterministic
# for these pooled paths, so this stays seconds-fast on every CI push.
bench-gate:
	$(GO) test -bench 'BenchmarkKernel$$|BenchmarkMulticastFanout|BenchmarkUnicastFrame' -benchtime 5000x -benchmem -run xxx ./internal/sim ./internal/netsim | \
	  $(GO) run ./cmd/benchjson -check -baseline BENCH_$(BENCH_PR).json

# Coverage floor for the oracle and the conditioned network: the two
# packages whose correctness everything else leans on must stay ≥
# $(COVER_FLOOR)% statement coverage (CI-enforced).
cover-floor:
	@set -e; for pkg in ./internal/verify ./internal/netsim; do \
	  pct=$$($(GO) test -cover $$pkg | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*'); \
	  echo "$$pkg coverage: $$pct%"; \
	  awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p+0 >= f+0) }' || \
	    { echo "$$pkg below the $(COVER_FLOOR)% coverage floor"; exit 1; }; \
	done

# Full benchmark suite (slow: full-scale sweeps per iteration).
bench-all:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Just the scale trajectory points recorded in EXPERIMENTS.md.
bench-scale:
	$(GO) test -bench 'Scale' -benchtime 1x -benchmem -run xxx .

clean:
	$(GO) clean ./...
