# Development targets. `make check` is the CI gate: vet + build + race
# tests. Benchmarks (including the N=100/N=1000 scale sweeps) only run
# via `make bench`; they are additionally guarded with testing.Short()
# so `go test -short -bench ...` skips the expensive ones.

GO ?= go

.PHONY: check vet build test race bench bench-scale clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (slow: full-scale sweeps per iteration).
bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Just the scale trajectory points recorded in EXPERIMENTS.md.
bench-scale:
	$(GO) test -bench 'Scale' -benchtime 1x -run xxx .

clean:
	$(GO) clean ./...
