# Development targets. `make check` is the CI gate: vet + build + race
# tests. Benchmarks (including the N=100/N=1000 scale sweeps) only run
# via `make bench`; they are additionally guarded with testing.Short()
# so `go test -short -bench ...` skips the expensive ones.
#
# `make bench` also records the perf trajectory: it runs the scale
# benchmarks plus the kernel/netsim microbenchmarks with -benchmem and
# writes BENCH_$(BENCH_PR).json (see EXPERIMENTS.md, "Perf trajectory").
# Bump BENCH_PR in the PR that changes the hot path, pass the previous
# snapshot as BENCH_BASELINE, and commit the refreshed file.

GO ?= go
BENCH_PR ?= 6
BENCH_BASELINE ?= BENCH_5.json
COVER_FLOOR ?= 70

.PHONY: check vet build test race bench bench-all bench-scale bench-gate cover-floor live-smoke shard-smoke hunt-smoke harden-smoke obs-smoke clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Record the perf trajectory: scale benchmarks + hot-path
# microbenchmarks, with allocation stats, written to BENCH_<pr>.json.
bench:
	{ $(GO) test -bench 'BenchmarkKernel$$|BenchmarkMulticastFanout|BenchmarkUnicastFrame' -benchtime 200000x -benchmem -run xxx ./internal/sim ./internal/netsim && \
	  $(GO) test -bench 'BenchmarkSingleRunScale$$|BenchmarkSweepScale' -benchtime 5x -benchmem -run xxx . && \
	  $(GO) test -timeout 0 -bench 'BenchmarkSingleRunScaleSharded$$|BenchmarkSingleRunScaleShardedChurn' -benchtime 1x -benchmem -run xxx . ; } | tee /dev/stderr | \
	  $(GO) run ./cmd/benchjson -pr $(BENCH_PR) -baseline $(BENCH_BASELINE) > BENCH_$(BENCH_PR).json

# Regression gate: re-run the hot-path microbenchmarks and fail if
# allocs/op regressed against the committed BENCH_$(BENCH_PR).json
# snapshot (ns/op is not gated by default — CI runners are noisy).
# 5000 iterations suffice: the gated metric, allocs/op, is deterministic
# for these pooled paths, so this stays seconds-fast on every CI push.
bench-gate:
	$(GO) test -bench 'BenchmarkKernel$$|BenchmarkMulticastFanout|BenchmarkUnicastFrame' -benchtime 5000x -benchmem -run xxx ./internal/sim ./internal/netsim | \
	  $(GO) run ./cmd/benchjson -check -baseline BENCH_$(BENCH_PR).json

# Coverage floor for the oracle, the conditioned network, the trace
# layer, the chaos hunter and the hardening layer: the packages whose
# correctness everything else leans on must stay ≥ $(COVER_FLOOR)%
# statement coverage (CI-enforced).
cover-floor:
	@set -e; for pkg in ./internal/verify ./internal/netsim ./internal/trace ./internal/hunt ./internal/harden ./internal/obs; do \
	  pct=$$($(GO) test -cover $$pkg | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*'); \
	  echo "$$pkg coverage: $$pct%"; \
	  awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p+0 >= f+0) }' || \
	    { echo "$$pkg below the $(COVER_FLOOR)% coverage floor"; exit 1; }; \
	done

# Live-serving smoke test (CI-enforced): boot sdlived under the race
# detector with the consistency oracle attached, drive 200 concurrent
# sdload clients against it for 5 seconds of wall time, and fail on any
# client error, undiscovered service or oracle violation.
live-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -race -o $$tmp/sdlived ./cmd/sdlived; \
	$(GO) build -race -o $$tmp/sdload ./cmd/sdload; \
	$$tmp/sdlived -system frodo2p -dilation 0.002 -addr 127.0.0.1:0 -addr-file $$tmp/addr & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "sdlived never published its address"; exit 1; }; \
	$$tmp/sdload -addr $$(cat $$tmp/addr) -clients 200 -duration 5s -oracle -quiet; \
	kill $$pid; \
	wait $$pid || { echo "sdlived exited nonzero (race detected or oracle violation)"; exit 1; }

# Chaos-hunter smoke test (CI-enforced): a race-built sdhunt with a
# 60-second deterministic budget (the budget is a cost model, so the
# hunt is identical on every machine), then a replay of every committed
# fixture under internal/hunt/testdata. The hunt exits 1 when it finds
# violations — that is its job, not a failure, so only a usage error
# (exit 2) fails the hunt step; the replay must be fully green.
hunt-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -race -o $$tmp/sdhunt ./cmd/sdhunt; \
	$$tmp/sdhunt -budget 60s -seed 1 -out $$tmp/hunted -report $$tmp/report.json || [ $$? -eq 1 ]; \
	$$tmp/sdhunt -replay internal/hunt/testdata

# Hardening smoke test (CI-enforced): replay the committed fixture sets
# race-built — the hunted baselines must still exhibit their recorded
# violations AND their hardened counterparts must replay clean — then
# one hardened 4-shard live pass: sdlived with the full hardening layer
# on, driven by sdload with per-request timeouts and jittered retries,
# failing on any client error, race or oracle violation.
harden-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -race -o $$tmp/sdhunt ./cmd/sdhunt; \
	$$tmp/sdhunt -replay internal/hunt/testdata; \
	$(GO) build -race -o $$tmp/sdlived ./cmd/sdlived; \
	$(GO) build -race -o $$tmp/sdload ./cmd/sdload; \
	$$tmp/sdlived -system frodo2p -harden -shards 4 -users 1000 -dilation 0.002 -addr 127.0.0.1:0 -addr-file $$tmp/addr & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "sdlived never published its address"; exit 1; }; \
	$$tmp/sdload -addr $$(cat $$tmp/addr) -clients 100 -duration 5s -retries 4 -retry-base 50ms -oracle -quiet; \
	kill $$pid; \
	wait $$pid || { echo "sdlived exited nonzero (race detected or oracle violation)"; exit 1; }

# Telemetry smoke test (CI-enforced): boot a race-built 2-shard sdlived,
# scrape /metrics under a short sdload burst, and assert the mandatory
# series are present and the frame counters are monotone between two
# scrapes taken across the load window.
obs-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -race -o $$tmp/sdlived ./cmd/sdlived; \
	$(GO) build -race -o $$tmp/sdload ./cmd/sdload; \
	$$tmp/sdlived -system frodo2p -shards 2 -users 200 -dilation 0.002 -addr 127.0.0.1:0 -addr-file $$tmp/addr & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "sdlived never published its address"; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	curl -fsS "http://$$addr/metrics" > $$tmp/scrape1; \
	for series in 'sd_frames_sent_total{shard="0"}' 'sd_frames_sent_total{shard="1"}' \
	              'sd_shard_barrier_stall_nanos_total{shard="1"}' 'sd_shard_busy_nanos_total{shard="0"}' \
	              'sd_frames_dropped_total{shard="0"}' 'sd_fabric_windows_total' \
	              'sd_kernel_pending{shard="0"}' 'sd_gateway_ops_total' 'sd_live_virtual_seconds'; do \
	  grep -qF "$$series" $$tmp/scrape1 || { echo "/metrics missing $$series"; cat $$tmp/scrape1; exit 1; }; \
	done; \
	grep -q '^# TYPE sd_frames_sent_total counter' $$tmp/scrape1 || { echo "missing TYPE line"; exit 1; }; \
	$$tmp/sdload -addr $$addr -clients 50 -duration 3s -oracle -quiet -telemetry $$tmp/load.json; \
	grep -q 'sdload_ops_total' $$tmp/load.json || { echo "sdload -telemetry dump missing its series"; exit 1; }; \
	curl -fsS "http://$$addr/metrics" > $$tmp/scrape2; \
	for series in 'sd_frames_sent_total{shard="0"}' 'sd_gateway_ops_total' 'sd_fabric_windows_total'; do \
	  v1=$$(grep -v '^#' $$tmp/scrape1 | grep -F "$$series" | head -1 | awk '{print $$NF}'); \
	  v2=$$(grep -v '^#' $$tmp/scrape2 | grep -F "$$series" | head -1 | awk '{print $$NF}'); \
	  awk -v a="$$v1" -v b="$$v2" 'BEGIN { exit !(b+0 >= a+0 && b+0 > 0) }' || \
	    { echo "$$series not monotone under load: $$v1 -> $$v2"; exit 1; }; \
	done; \
	curl -fsS "http://$$addr/debug/flight" > $$tmp/flight.json; \
	grep -q '"shard"' $$tmp/flight.json || { echo "/debug/flight returned no rings"; exit 1; }; \
	kill $$pid; \
	wait $$pid || { echo "sdlived exited nonzero (race detected or oracle violation)"; exit 1; }

# Sharded-fabric smoke test (CI-enforced): a 4-shard N=10k FRODO run
# under the race detector with Poisson churn, a healing bisect
# partition, and the per-shard consistency oracles attached; fails on
# any data race, oracle violation, unrun heal probe or propagation
# collapse. A few minutes of wall time (the horizon must outlast the
# heal probe at heal + CentralTimeout + AnnouncePeriod + slack).
shard-smoke:
	SHARD_SMOKE=1 $(GO) test -race -run TestShardSmoke -v ./internal/verify

# Full benchmark suite (slow: full-scale sweeps per iteration).
bench-all:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Just the scale trajectory points recorded in EXPERIMENTS.md.
bench-scale:
	$(GO) test -bench 'Scale' -benchtime 1x -benchmem -run xxx .

clean:
	$(GO) clean ./...
