package sdsim

import (
	"repro/internal/experiment"
	"repro/internal/obs"
)

// Registry is the passive metrics registry of internal/obs: counters,
// gauges and histograms the runtime feeds from its hot paths without
// perturbing the simulation (no randomness, no allocation).
type Registry = obs.Registry

// NewRegistry builds an empty registry. Attach it to a single run via
// RunSpec.Telemetry, or to every run in the process via SetTelemetry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// SetTelemetry installs reg as the process-default registry: every
// subsequent Run and Sweep meters into it unless its RunSpec carries
// an explicit Telemetry override. Pass nil to turn metering back off.
func SetTelemetry(reg *Registry) { experiment.SetTelemetry(reg) }

// Telemetry reports the process-default registry, or nil.
func Telemetry() *Registry { return experiment.Telemetry() }
