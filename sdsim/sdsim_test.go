package sdsim_test

import (
	"strings"
	"testing"

	"repro/sdsim"
)

func fastParams(runs int, lambdas ...float64) sdsim.Params {
	p := sdsim.DefaultParams()
	p.Runs = runs
	p.Lambdas = lambdas
	return p
}

func TestFacadeSingleRun(t *testing.T) {
	for _, sys := range sdsim.Systems() {
		res := sdsim.Run(sdsim.RunSpec{System: sys, Lambda: 0, Seed: 3, Params: sdsim.DefaultParams()})
		if len(res.Users) != 5 {
			t.Fatalf("%v: %d users", sys, len(res.Users))
		}
		for _, u := range res.Users {
			if !u.Reached {
				t.Errorf("%v: user %d not consistent at λ=0", sys, u.User)
			}
		}
		if res.Effort != sdsim.PaperMPrime(sys) {
			t.Errorf("%v: effort %d != paper m' %d", sys, res.Effort, sdsim.PaperMPrime(sys))
		}
	}
}

func TestFacadeRunLogged(t *testing.T) {
	res, log := sdsim.RunLogged(sdsim.RunSpec{
		System: sdsim.UPnP, Lambda: 0.3, Seed: 9, Params: sdsim.DefaultParams(),
	}, false)
	if len(log) == 0 {
		t.Fatal("empty event log")
	}
	joined := strings.Join(log, "\n")
	if !strings.Contains(joined, "service changed at") {
		t.Error("log missing change annotation")
	}
	if !strings.Contains(joined, "update effort") {
		t.Error("log missing effort annotation")
	}
	// Interface transitions must appear at λ=0.3 (every node fails once).
	if !strings.Contains(joined, "down") {
		t.Error("log missing interface failure events")
	}
	_ = res
}

func TestFacadeSweepAndFigures(t *testing.T) {
	res := sdsim.Sweep(sdsim.SweepConfig{Params: fastParams(2, 0, 0.5)})
	for _, tab := range []sdsim.Table{
		sdsim.Figure4(res), sdsim.Figure5(res), sdsim.Figure6(res), sdsim.Table5(res),
	} {
		if len(tab.Rows) == 0 {
			t.Errorf("table %q empty", tab.Title)
		}
		if !strings.Contains(tab.CSV(), ",") {
			t.Errorf("table %q CSV malformed", tab.Title)
		}
	}
	if res.M != 7 {
		t.Errorf("m = %d", res.M)
	}
}

func TestFacadeAblationChangesBehavior(t *testing.T) {
	params := fastParams(6, 0.15)
	base := sdsim.Sweep(sdsim.SweepConfig{
		Systems: []sdsim.System{sdsim.Frodo2P}, Params: params})
	ablated := sdsim.Sweep(sdsim.SweepConfig{
		Systems: []sdsim.System{sdsim.Frodo2P}, Params: params,
		Opts: sdsim.AblateFrodo(sdsim.SRN2 | sdsim.PR4 | sdsim.PR1)})
	fb := base.Curves[sdsim.Frodo2P].Points[0].Effectiveness
	fa := ablated.Curves[sdsim.Frodo2P].Points[0].Effectiveness
	if fa > fb {
		t.Errorf("ablating SRN2+PR4+PR1 improved effectiveness: %v > %v", fa, fb)
	}
	if fa == fb {
		// Identical would mean the options never reached the protocol.
		t.Logf("warning: ablation produced identical effectiveness %v at this sample size", fa)
	}
}

func TestFacadeMergeOptions(t *testing.T) {
	merged := sdsim.MergeOptions(sdsim.WithLoss(0.1), sdsim.AblateFrodo(sdsim.PR1))
	if merged.Loss != 0.1 {
		t.Errorf("Loss = %v", merged.Loss)
	}
	if merged.Frodo == nil {
		t.Error("Frodo mutator lost in merge")
	}
	if merged.UPnP != nil {
		t.Error("unexpected UPnP mutator")
	}
}

func TestFacadeMultiChange(t *testing.T) {
	params := sdsim.DefaultParams()
	params.Changes = 3
	res := sdsim.Run(sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0, Seed: 5, Params: params})
	for _, u := range res.Users {
		if !u.Reached {
			t.Fatalf("user %d never reached version 4 after 3 changes", u.User)
		}
	}
}

func TestFacadeCriticalUpdates(t *testing.T) {
	params := sdsim.DefaultParams()
	params.Changes = 3
	res := sdsim.Run(sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0, Seed: 5,
		Params: params, Opts: sdsim.CriticalUpdates()})
	for _, u := range res.Users {
		if !u.Reached {
			t.Fatalf("critical mode: user %d never consistent", u.User)
		}
	}
}

func TestFacadeLossModel(t *testing.T) {
	res := sdsim.Run(sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0, Seed: 5,
		Params: sdsim.DefaultParams(), Opts: sdsim.WithLoss(0.2)})
	reached := 0
	for _, u := range res.Users {
		if u.Reached {
			reached++
		}
	}
	if reached < 4 {
		t.Errorf("only %d/5 users consistent at 20%% loss; SRN1 should carry FRODO", reached)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	spec := sdsim.RunSpec{System: sdsim.Jini2, Lambda: 0.45, Seed: 77, Params: sdsim.DefaultParams()}
	a, b := sdsim.Run(spec), sdsim.Run(spec)
	if a.Effort != b.Effort || a.ChangeAt != b.ChangeAt {
		t.Error("facade runs are not deterministic")
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Errorf("user %d diverged", i)
		}
	}
}

func TestFacadeParseSystem(t *testing.T) {
	sys, err := sdsim.ParseSystem("frodo3p")
	if err != nil || sys != sdsim.Frodo3P {
		t.Errorf("ParseSystem = %v, %v", sys, err)
	}
}
