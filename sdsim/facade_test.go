package sdsim_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/sdsim"
)

func TestFacadeChart(t *testing.T) {
	res := sdsim.Sweep(sdsim.SweepConfig{Params: fastParams(2, 0, 0.5)})
	for _, m := range []sdsim.Metric{
		sdsim.MetricEffectiveness, sdsim.MetricResponsiveness, sdsim.MetricDegradation,
	} {
		out := sdsim.Chart(res, m)
		if !strings.Contains(out, "FRODO") || !strings.Contains(out, "UPnP") {
			t.Errorf("chart for %v missing legend entries", m)
		}
	}
}

func TestFacadeRunTraced(t *testing.T) {
	var buf bytes.Buffer
	res, err := sdsim.RunTraced(sdsim.RunSpec{
		System: sdsim.UPnP, Lambda: 0.2, Seed: 4, Params: sdsim.DefaultParams(),
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Effort == 0 {
		t.Error("traced run reported zero effort")
	}
	events, err := sdsim.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := sdsim.TraceSummary(events)
	if sum.Sends == 0 || sum.Delivered == 0 {
		t.Errorf("trace summary empty: %+v", sum)
	}
	// At λ=0.2 every node fails once: drops must appear.
	if sum.Drops == 0 {
		t.Error("no drops traced despite interface failures")
	}
	if sum.PerKind["Announce"] == 0 {
		t.Error("announcements missing from trace")
	}
}

func TestFacadeFigure7Sweep(t *testing.T) {
	with, without := sdsim.Figure7Sweep(fastParams(3, 0.3), 2, nil)
	tab := sdsim.Figure7(with, without)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "frodo3p-noPR1") {
		t.Error("ablation column missing")
	}
}

func TestFacadeCheckGuarantees(t *testing.T) {
	grid := sdsim.DefaultGuaranteeGrid()
	// Shrink the grid so the facade test stays fast.
	grid.Durations = grid.Durations[:1]
	grid.Starts = grid.Starts[:1]
	res := sdsim.CheckGuarantees(sdsim.Frodo2P, grid)
	if res.Scenarios == 0 {
		t.Fatal("no scenarios ran")
	}
	if !res.Holds() {
		for _, v := range res.Violations {
			t.Errorf("%v", v)
		}
	}
}

func TestFacadeTable2(t *testing.T) {
	tab := sdsim.Table2(sdsim.DefaultParams())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			t.Errorf("%s: measured %s != paper %s", row[0], row[1], row[2])
		}
	}
}

func TestFacadeWithPolling(t *testing.T) {
	params := sdsim.DefaultParams()
	res := sdsim.Run(sdsim.RunSpec{System: sdsim.UPnP, Lambda: 0, Seed: 2,
		Params: params, Opts: sdsim.WithPolling(600 * sdsim.Second)})
	for _, u := range res.Users {
		if !u.Reached {
			t.Error("polling run failed at λ=0")
		}
	}
	// Polling adds discovery traffic over the run.
	base := sdsim.Run(sdsim.RunSpec{System: sdsim.UPnP, Lambda: 0, Seed: 2, Params: params})
	if res.TotalDiscoverySends <= base.TotalDiscoverySends {
		t.Errorf("polling sends (%d) not above baseline (%d)",
			res.TotalDiscoverySends, base.TotalDiscoverySends)
	}
}
