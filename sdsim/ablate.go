package sdsim

import (
	"repro/internal/core"
	"repro/internal/frodo"
	"repro/internal/jini"
	"repro/internal/upnp"
)

// Technique is a recovery-technique set (Table 1): SRC1/SRC2 and
// SRN1/SRN2 subscription-recovery plus PR1–PR5 purge-rediscovery.
type Technique = core.TechniqueSet

// The individual techniques, for building ablations.
const (
	SRC1 = core.SRC1
	SRC2 = core.SRC2
	SRN1 = core.SRN1
	SRN2 = core.SRN2
	PR1  = core.PR1
	PR2  = core.PR2
	PR3  = core.PR3
	PR4  = core.PR4
	PR5  = core.PR5
)

// Ablate returns Options that remove the given techniques from every
// protocol — the control-experiment mechanism behind Fig. 7 and the
// ablation benchmarks.
func Ablate(ts Technique) Options {
	return Options{
		UPnP:  func(c *upnp.Config) { c.Techniques = c.Techniques.Without(ts) },
		Jini:  func(c *jini.Config) { c.Techniques = c.Techniques.Without(ts) },
		Frodo: func(c *frodo.Config) { c.Techniques = c.Techniques.Without(ts) },
	}
}

// AblateFrodo removes techniques from FRODO only (Fig. 7 removes PR1).
func AblateFrodo(ts Technique) Options {
	return Options{Frodo: func(c *frodo.Config) { c.Techniques = c.Techniques.Without(ts) }}
}

// WithFrodoAnnouncePeriod overrides the Central's announcement period —
// the sensitivity knob the paper discusses in §5 Step 4 ("short enough
// for the discovery process, but long enough [not to] imbalance the
// system").
func WithFrodoAnnouncePeriod(d Duration) Options {
	return Options{Frodo: func(c *frodo.Config) { c.AnnouncePeriod = d }}
}

// CriticalUpdates switches FRODO into the critical-update scenario:
// SRC1's unlimited retransmission replaces SRN1's bounded schedule,
// updates carry sequence numbers, receivers monitor for gaps (SRC2) and
// the Manager keeps the update history until all interested Users have
// confirmed it.
func CriticalUpdates() Options {
	return Options{Frodo: func(c *frodo.Config) { c.CriticalUpdates = true }}
}

// WithLoss sets the i.i.d. per-frame drop probability of the companion
// message-loss model [25].
func WithLoss(p float64) Options { return Options{Loss: p} }

// WithPolling enables CM2, pull-based consistency maintenance (§4.2), in
// every protocol: Users persistently re-fetch their cached descriptions
// on the given period, in addition to notification. The paper cites
// Dabrowski and Mills: persistent polling is the more effective method
// but slower and, for rarely-changing services, wasteful — the polling
// extension experiment quantifies all three effects.
func WithPolling(period Duration) Options {
	return Options{
		UPnP:  func(c *upnp.Config) { c.PollPeriod = period },
		Jini:  func(c *jini.Config) { c.PollPeriod = period },
		Frodo: func(c *frodo.Config) { c.PollPeriod = period },
	}
}

// MergeOptions composes option sets left to right (later mutators run
// after earlier ones).
func MergeOptions(opts ...Options) Options {
	var out Options
	for _, o := range opts {
		o := o
		if o.Loss != 0 {
			out.Loss = o.Loss
		}
		out.UPnP = chain(out.UPnP, o.UPnP)
		out.Jini = chain(out.Jini, o.Jini)
		out.Frodo = chain(out.Frodo, o.Frodo)
	}
	return out
}

func chain[T any](a, b func(*T)) func(*T) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(c *T) { a(c); b(c) }
}
