// Package sdsim is the public face of the reproduction of
// "On Consistency Maintenance in Service Discovery" (Sundramoorthy,
// Hartel, Scholten; IPPS 2006).
//
// It exposes the five simulated service discovery systems (UPnP, Jini
// with one and two Registries, FRODO with 3-party and 2-party
// subscription), the paper's experimental design (§5), the NIST Update
// Metrics plus the paper's Efficiency Degradation refinement (§4.5), and
// the sweeps that regenerate every figure and table of the evaluation
// (§6).
//
// Quick start:
//
//	res := sdsim.Run(sdsim.RunSpec{System: sdsim.Frodo2P, Lambda: 0.3, Seed: 1,
//	    Params: sdsim.DefaultParams()})
//
// Full reproduction:
//
//	sweep := sdsim.Sweep(sdsim.SweepConfig{Params: sdsim.DefaultParams()})
//	fmt.Println(sdsim.Figure4(sweep))
//	fmt.Println(sdsim.Table5(sweep))
package sdsim

import (
	"io"

	"repro/internal/discovery"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/verify"
)

// System identifies one of the five simulated systems.
type System = experiment.System

// The five systems of §5.
const (
	UPnP    = experiment.UPnP
	Jini1   = experiment.Jini1
	Jini2   = experiment.Jini2
	Frodo3P = experiment.Frodo3P
	Frodo2P = experiment.Frodo2P
)

// Re-exported experiment types; see package experiment for field docs.
type (
	// Params fixes the experimental design (§5 Step 5).
	Params = experiment.Params
	// Topology parameterizes the scenario shape (Users, Managers,
	// Registries, background Services, boot stagger); the zero value is
	// the paper's Table 4 design. Set it on Params.Topology.
	Topology = experiment.Topology
	// Churn is the Poisson arrival/departure population model; the zero
	// value is the paper's static population. Set it on Params.Churn.
	Churn = experiment.Churn
	// Options customizes protocol configurations (ablations, message
	// loss).
	Options = experiment.Options
	// RunSpec identifies one simulation run.
	RunSpec = experiment.RunSpec
	// RunResult is one run's raw observations.
	RunResult = metrics.RunResult
	// Point is one system's aggregated metrics at one failure rate.
	Point = metrics.Point
	// Curve is a metric series over failure rates.
	Curve = metrics.Curve
	// SweepConfig selects systems and design for a failure-rate sweep.
	SweepConfig = experiment.SweepConfig
	// SweepResult holds aggregated curves and efficiency baselines.
	SweepResult = experiment.SweepResult
	// Table is a rendered figure or table.
	Table = experiment.Table
)

// Re-exported link-conditioning types; see package netsim for field
// docs. Set them on Options.Link (models) and Params.Partitions
// (scheduled splits); the zero values reproduce the paper's idealized
// network.
type (
	// LinkConfig selects the adversarial link models (burst loss,
	// heavy-tailed delay, reordering).
	LinkConfig = netsim.LinkConfig
	// BurstConfig is the Gilbert–Elliott two-state burst-loss chain.
	BurstConfig = netsim.BurstConfig
	// DelayConfig selects the one-way delay distribution.
	DelayConfig = netsim.DelayConfig
	// ReorderConfig adds probabilistic out-of-order delivery.
	ReorderConfig = netsim.ReorderConfig
	// DelayDist names a delay distribution.
	DelayDist = netsim.DelayDist
	// Partition is one scheduled transient network split.
	Partition = netsim.Partition
	// CrossLink characterizes the inter-shard links of a sharded run;
	// its MinDelay is the conservative lookahead (RunSpec.Cross).
	CrossLink = netsim.CrossLink
)

// DefaultCrossLink returns the campus-scale inter-shard link a sharded
// run uses when RunSpec.Cross is left zero.
func DefaultCrossLink() CrossLink { return netsim.DefaultCrossLink() }

// The delay distributions.
const (
	DelayUniform   = netsim.DelayUniform
	DelayLognormal = netsim.DelayLognormal
	DelayPareto    = netsim.DelayPareto
)

// ParseDelayDist resolves a distribution name (uniform|lognormal|pareto).
func ParseDelayDist(s string) (DelayDist, error) { return netsim.ParseDelayDist(s) }

// BurstForAverage builds a Gilbert–Elliott chain with the given
// stationary loss rate and mean burst length — the equal-average
// counterpart of WithLoss for model comparisons.
func BurstForAverage(avg, meanBurst float64) BurstConfig {
	return netsim.BurstForAverage(avg, meanBurst)
}

// WithBurstLoss returns Options enabling Gilbert–Elliott burst loss at
// the given average rate and mean burst length.
func WithBurstLoss(avg, meanBurst float64) Options {
	return Options{Link: LinkConfig{Burst: BurstForAverage(avg, meanBurst)}}
}

// Hardening selects the protocol-hardening mechanisms of the hardening
// layer (strict lease enforcement, jittered retry, retirement Byes,
// Central liveness repair). Set it on Options.Harden (one run) or
// Params.Hardening (every run of a sweep); the zero value is the
// paper-faithful baseline.
type Hardening = discovery.Hardening

// HardenAll enables every hardening mechanism.
func HardenAll() Hardening { return discovery.HardenAll() }

// Time and Duration re-export the virtual clock units.
type (
	Time     = sim.Time
	Duration = sim.Duration
)

// Second is one virtual second.
const Second = sim.Second

// Systems lists the five systems in the paper's order.
func Systems() []System { return experiment.Systems() }

// ParseSystem resolves a short label (upnp|jini1|jini2|frodo3p|frodo2p).
func ParseSystem(s string) (System, error) { return experiment.ParseSystem(s) }

// DefaultParams returns the paper's experimental design: 5 Users, 5400s
// deadline, change at U[100s,2700s], λ ∈ {0,0.05,…,0.90}, 30 runs per
// point.
func DefaultParams() Params { return experiment.DefaultParams() }

// DefaultLambdas returns the paper's failure-rate grid.
func DefaultLambdas() []float64 { return experiment.DefaultLambdas() }

// DefaultRegistries reports the Table 4 Registry count for a system.
func DefaultRegistries(s System) int { return experiment.DefaultRegistries(s) }

// Run executes one scenario.
func Run(spec RunSpec) RunResult { return experiment.Run(spec) }

// RunLogged executes one scenario and returns a §6.2-style event log.
func RunLogged(spec RunSpec, verbose bool) (RunResult, []string) {
	return experiment.RunLogged(spec, verbose)
}

// RunTraced executes one scenario while streaming a structured JSONL
// trace of every frame and interface transition to w.
func RunTraced(spec RunSpec, w io.Writer) (RunResult, error) {
	var tw *trace.Writer
	spec.MakeTracer = func(*netsim.Network) netsim.Tracer {
		tw = trace.NewWriter(w)
		return tw
	}
	res := experiment.Run(spec)
	if err := tw.Flush(); err != nil {
		return res, err
	}
	return res, nil
}

// ReadTrace parses a JSONL trace stream.
func ReadTrace(r io.Reader) ([]trace.Event, error) { return trace.Read(r) }

// TraceSummary aggregates a parsed trace.
func TraceSummary(events []trace.Event) trace.Summary { return trace.Summarize(events) }

// Sweep runs the failure-rate grid on a parallel worker pool.
func Sweep(cfg SweepConfig) SweepResult { return experiment.Sweep(cfg) }

// Metric selects a curve for chart rendering.
type Metric = experiment.Metric

// The chartable metrics.
const (
	MetricEffectiveness  = experiment.MetricEffectiveness
	MetricResponsiveness = experiment.MetricResponsiveness
	MetricDegradation    = experiment.MetricDegradation
)

// Chart renders one metric's curves as an ASCII chart in the style of
// the paper's figures.
func Chart(res SweepResult, m Metric) string { return experiment.Chart(res, m) }

// Figure4 renders Average Update Effectiveness vs failure rate.
func Figure4(res SweepResult) Table { return experiment.Figure4(res) }

// Figure5 renders Median Update Responsiveness vs failure rate.
func Figure5(res SweepResult) Table { return experiment.Figure5(res) }

// Figure6 renders Efficiency Degradation vs failure rate.
func Figure6(res SweepResult) Table { return experiment.Figure6(res) }

// Figure7Sweep runs the PR1 control experiment on both FRODO systems.
func Figure7Sweep(params Params, workers int, progress func(done, total int)) (with, without SweepResult) {
	return experiment.Figure7Sweep(params, workers, progress)
}

// Figure7 renders the PR1 ablation.
func Figure7(with, without SweepResult) Table { return experiment.Figure7(with, without) }

// FigureAdversarial compares i.i.d. against Gilbert–Elliott burst loss
// at equal average rates across all five systems.
func FigureAdversarial(params Params, workers int, progress func(done, total int)) Table {
	return experiment.FigureAdversarial(params, workers, progress)
}

// FigureHardening compares baseline against hardened runs under the
// hunted fault mix: zero-failure effort m', update effectiveness F,
// counted effort, oracle violations, and worst purge latency.
func FigureHardening(params Params, runs, workers int, progress func(done, total int)) Table {
	return verify.FigureHardening(params, runs, workers, progress)
}

// Table2 measures the zero-failure update message counts (Table 2).
func Table2(params Params) Table { return experiment.Table2(params) }

// Table5 renders metric averages across failure rates (Table 5).
func Table5(res SweepResult) Table { return experiment.Table5(res) }

// PaperMPrime reports the paper's m' for a system (Fig. 6 legend).
func PaperMPrime(s System) int { return experiment.PaperMPrime(s) }

// GuaranteeResult is the outcome of checking the Configuration Update
// Principles over the single-outage scenario grid.
type GuaranteeResult = verify.Result

// GuaranteeGrid is the scenario enumeration bounds.
type GuaranteeGrid = verify.GridConfig

// DefaultGuaranteeGrid returns the standard grid: 3 failure targets x 3
// interface modes x 3 starts x up to 4 durations, each left 4200s of
// post-recovery slack.
func DefaultGuaranteeGrid() GuaranteeGrid { return verify.DefaultGrid() }

// CheckGuarantees verifies the Configuration Update Principles (§4.1)
// for one system across the grid: every User must eventually regain
// consistency once connectivity is restored. FRODO holds; the
// first-generation systems are expected to violate ([8], [24]).
func CheckGuarantees(sys System, grid GuaranteeGrid) GuaranteeResult {
	return verify.Check(sys, grid)
}

// Re-exported run-time consistency oracle; see package verify for the
// invariant catalogue (version bound, lease purge, single Central after
// partition heal, retired-node silence).
type (
	// OracleConfig bounds the oracle's tolerances.
	OracleConfig = verify.OracleConfig
	// OracleReport summarizes one audited run.
	OracleReport = verify.OracleReport
	// OracleViolation is one observed invariant breach.
	OracleViolation = verify.OracleViolation
)

// DefaultOracleConfig returns the §5-parameter tolerances for a system.
func DefaultOracleConfig(sys System) OracleConfig { return verify.DefaultOracleConfig(sys) }

// ObserveRun executes one run with the consistency oracle attached,
// returning the oracle's report alongside the run's metrics. The oracle
// audits the run online and never perturbs it.
func ObserveRun(spec RunSpec, cfg OracleConfig) (OracleReport, RunResult) {
	return verify.ObserveRun(spec, cfg)
}

// Re-exported declarative scenario specs — the JSON currency shared by
// sdsweep, sdverify and the chaos hunter (internal/hunt): one file
// describes topology, λ, churn, partitions, link conditioning, flash
// crowds and rack failures, and replays deterministically by its seed.
type (
	// ScenarioSpec is the JSON-serializable form of one scenario.
	ScenarioSpec = experiment.ScenarioSpec
	// FlashCrowd is one scheduled arrival spike (Params.FlashCrowds).
	FlashCrowd = experiment.FlashCrowd
	// RackPlanConfig schedules correlated rack-level interface outages
	// (Params.RackFailures).
	RackPlanConfig = netsim.RackPlanConfig
	// OracleCoverage is the oracle's behavioral near-miss/slack signal.
	OracleCoverage = verify.OracleCoverage
)

// ParseSpec decodes one scenario spec strictly: unknown fields are
// errors, and the spec is validated with field-path diagnostics.
func ParseSpec(r io.Reader) (*ScenarioSpec, error) { return experiment.ParseSpec(r) }

// LoadSpec reads and parses a scenario spec file.
func LoadSpec(path string) (*ScenarioSpec, error) { return experiment.LoadSpec(path) }
