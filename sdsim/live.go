package sdsim

import (
	"repro/internal/live"
)

// The live runtime: the same five systems, protocol code unchanged,
// served to real clients in wall-clock time. See package internal/live
// for the architecture (Driver event loop, Gateway HTTP/UDP surface)
// and cmd/sdlived + cmd/sdload for the command-line tools.

// Re-exported live-runtime types; see package live for field docs.
type (
	// LiveConfig parameterizes a live scenario: system, topology,
	// options, seed, the virtual-to-wall time dilation, and an optional
	// consistency-oracle configuration.
	LiveConfig = live.Config
	// LiveServer is a running driver plus its gateway.
	LiveServer = live.Server
	// LiveClient drives a live gateway over loopback HTTP.
	LiveClient = live.Client
	// LiveNotifyHub receives pushed update notifications on one shared
	// UDP socket.
	LiveNotifyHub = live.NotifyHub
	// LiveNotification is one pushed cache-write datagram.
	LiveNotification = live.Notification
	// LiveServiceQuery and LiveServiceSpec are the external forms of
	// query and service description.
	LiveServiceQuery = live.ServiceQuery
	LiveServiceSpec  = live.ServiceSpec
	// LiveRecord is the external form of a discovered service record.
	LiveRecord = live.Record
)

// Serve boots one system as a wall-clock serving system: the scenario
// is built exactly as for a virtual run, a dedicated goroutine maps
// virtual time onto the wall clock, and the returned server's gateway
// accepts real clients on addr ("127.0.0.1:0" picks a free port).
//
//	ocfg := sdsim.DefaultOracleConfig(sdsim.Frodo2P)
//	srv, err := sdsim.Serve(sdsim.LiveConfig{
//	    System: sdsim.Frodo2P, Dilation: 0.001, Oracle: &ocfg,
//	}, "127.0.0.1:0")
//	...
//	cl := sdsim.NewLiveClient(srv.Addr())
func Serve(cfg LiveConfig, addr string) (*LiveServer, error) {
	return live.Serve(cfg, addr)
}

// NewLiveClient returns a client for a live gateway at addr.
func NewLiveClient(addr string) *LiveClient { return live.NewClient(addr) }

// NewLiveNotifyHub opens a notification hub on an ephemeral loopback
// port; pass its Addr to LiveClient.Subscribe.
func NewLiveNotifyHub() (*LiveNotifyHub, error) { return live.NewNotifyHub() }
