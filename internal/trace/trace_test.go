package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	k := sim.New(1)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	got := 0
	b.SetEndpoint(netsim.EndpointFunc(func(*netsim.Message) { got++ }))
	nw.SetTracer(w)

	nw.SendUDP(a.ID, b.ID, netsim.Outgoing{Kind: "ServiceUpdate", Counted: true})
	k.At(sim.Second, func() { a.SetTx(false) })
	k.At(2*sim.Second, func() { nw.SendUDP(a.ID, b.ID, netsim.Outgoing{Kind: "ServiceUpdate"}) })
	k.Run(3 * sim.Second)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(events)
	if sum.Sends != 2 || sum.Delivered != 1 || sum.Drops != 1 || sum.Counted != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.PerKind["ServiceUpdate"] != 2 {
		t.Errorf("per-kind = %v", sum.PerKind)
	}
	if sum.DropsBy["tx down"] != 1 {
		t.Errorf("drops-by = %v", sum.DropsBy)
	}
	// Node transition recorded.
	foundNode := false
	for _, e := range events {
		if e.Type == EventNode && e.State == "Tx down" {
			foundNode = true
		}
	}
	if !foundNode {
		t.Error("interface transition missing from trace")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	_, err := Read(strings.NewReader("{\"t\":1}\nnot json\n"))
	if err == nil {
		t.Error("garbage record accepted")
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&failingWriter{after: 1})
	for i := 0; i < 10000; i++ {
		w.MessageSent(0, &netsim.Message{Kind: "x"})
	}
	if w.Flush() == nil && w.Err() == nil {
		t.Error("write error not surfaced")
	}
}

func TestTraceTimesAreSeconds(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.NodeEvent(1500*sim.Millisecond, 3, "Rx down")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil || len(events) != 1 {
		t.Fatalf("events=%v err=%v", events, err)
	}
	if events[0].T != 1.5 {
		t.Errorf("T = %v, want 1.5 seconds", events[0].T)
	}
}

// Err must report nil on a healthy writer and the first write error —
// independently of Flush — once the underlying writer fails.
func TestWriterErr(t *testing.T) {
	healthy := NewWriter(&bytes.Buffer{})
	healthy.MessageDelivered(1, &netsim.Message{Kind: "x"})
	if err := healthy.Err(); err != nil {
		t.Fatalf("healthy writer reports error %v", err)
	}
	w := NewWriter(&failingWriter{})
	m := netsim.Message{From: 1, To: 2, Kind: "Announce"}
	for i := 0; i < 10000; i++ {
		w.MessageSent(sim.Time(i), &m)
	}
	if w.Err() == nil {
		t.Fatal("write error never surfaced via Err")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush swallowed the sticky error")
	}
	// Emitting after the error is a silent no-op, not a panic.
	w.MessageDropped(1, &m, "lost")
}
