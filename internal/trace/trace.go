// Package trace records simulation activity as structured JSON-lines
// streams, one object per event, for offline analysis of runs (message
// flow reconstruction, per-kind counting, failure timelines). It
// complements netsim.Recorder, which produces the human-readable §6.2
// logs.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// EventType classifies a trace record.
type EventType string

const (
	// EventSend is a wire transmission attempt.
	EventSend EventType = "send"
	// EventDeliver is a payload handed to an endpoint.
	EventDeliver EventType = "deliver"
	// EventDrop is a frame lost to failure or loss.
	EventDrop EventType = "drop"
	// EventNode is an interface state transition.
	EventNode EventType = "node"
)

// Event is one JSONL record. Times are in virtual seconds to keep the
// streams tool-friendly.
type Event struct {
	T         float64   `json:"t"`
	Type      EventType `json:"type"`
	From      int       `json:"from,omitempty"`
	To        int       `json:"to,omitempty"`
	Kind      string    `json:"kind,omitempty"`
	Transport string    `json:"transport,omitempty"`
	Counted   bool      `json:"counted,omitempty"`
	Multicast bool      `json:"multicast,omitempty"`
	Reason    string    `json:"reason,omitempty"`
	Node      int       `json:"node,omitempty"`
	State     string    `json:"state,omitempty"`
}

// Writer streams events to an io.Writer as JSON lines. It implements
// netsim.Tracer. Errors are sticky: the first write error stops output
// and is reported by Err.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewWriter creates a JSONL trace writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Flush drains buffered output; call it when the run completes.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Err reports the first write error, if any.
func (t *Writer) Err() error { return t.err }

func (t *Writer) emit(e Event) {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(e)
}

// MessageSent implements netsim.Tracer.
func (t *Writer) MessageSent(at sim.Time, m *netsim.Message) {
	t.emit(Event{T: at.Sec(), Type: EventSend, From: int(m.From), To: int(m.To),
		Kind: m.Kind, Transport: m.Transport.String(), Counted: m.Counted,
		Multicast: m.Multicast})
}

// MessageDelivered implements netsim.Tracer.
func (t *Writer) MessageDelivered(at sim.Time, m *netsim.Message) {
	t.emit(Event{T: at.Sec(), Type: EventDeliver, From: int(m.From), To: int(m.To),
		Kind: m.Kind, Transport: m.Transport.String()})
}

// MessageDropped implements netsim.Tracer.
func (t *Writer) MessageDropped(at sim.Time, m *netsim.Message, reason string) {
	t.emit(Event{T: at.Sec(), Type: EventDrop, From: int(m.From), To: int(m.To),
		Kind: m.Kind, Transport: m.Transport.String(), Reason: reason})
}

// NodeEvent implements netsim.Tracer.
func (t *Writer) NodeEvent(at sim.Time, node netsim.NodeID, event string) {
	t.emit(Event{T: at.Sec(), Type: EventNode, Node: int(node), State: event})
}

// Read parses a JSONL trace stream back into events.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// Summary aggregates a trace for quick inspection.
type Summary struct {
	Events    int
	Sends     int
	Delivered int
	Drops     int
	Counted   int
	PerKind   map[string]int
	DropsBy   map[string]int
}

// Summarize tallies a trace.
func Summarize(events []Event) Summary {
	s := Summary{PerKind: map[string]int{}, DropsBy: map[string]int{}}
	for _, e := range events {
		s.Events++
		switch e.Type {
		case EventSend:
			s.Sends++
			s.PerKind[e.Kind]++
			if e.Counted {
				s.Counted++
			}
		case EventDeliver:
			s.Delivered++
		case EventDrop:
			s.Drops++
			s.DropsBy[e.Reason]++
		}
	}
	return s
}
