package trace

import (
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary byte streams to the JSONL parser: it must
// never panic, and whatever it accepts must survive a write/read
// round-trip through the canonical encoder.
func FuzzRead(f *testing.F) {
	f.Add(`{"t":1.5,"type":"send","from":0,"to":1,"kind":"ServiceUpdate"}` + "\n")
	f.Add("")
	f.Add("{}\n{}\n")
	f.Add(`{"t":-1,"type":"drop","reason":"tx down"}`)
	f.Add("not json at all")
	f.Add(`{"t":1e308,"type":"node","node":5,"state":"Rx down"}`)
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted events must summarize without panicking and
		// re-serialize losslessly at the event-count level.
		sum := Summarize(events)
		if sum.Events != len(events) {
			t.Fatalf("summary counted %d of %d events", sum.Events, len(events))
		}
		var sb strings.Builder
		w := NewWriter(&sb)
		for _, e := range events {
			w.emit(e)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round-trip rejected canonical output: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round-trip lost events: %d -> %d", len(events), len(back))
		}
	})
}
