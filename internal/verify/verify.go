// Package verify checks the Configuration Update Principles (§4.1)
// systematically: "the User and/or Registry [must] always eventually
// regain consistency with the Manager after the service changes",
// provided connectivity is restored.
//
// The checker enumerates a grid of single-outage scenarios — which
// entity fails, which interface(s), when, and for how long — always
// leaving ample time after recovery, and reports every scenario in which
// a User still holds a stale description at the end. The paper's
// companion work [24] proved FRODO satisfies the principles and [8]
// reports that first-generation systems do not; the checker reproduces
// both findings empirically (see the tests and EXPERIMENTS.md).
package verify

import (
	"fmt"

	"repro/internal/discovery"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Target selects which entity the grid fails.
type Target int

const (
	// TargetUser fails the first User.
	TargetUser Target = iota
	// TargetManager fails the Manager.
	TargetManager
	// TargetRegistry fails the (first) Registry; skipped for UPnP, which
	// has none.
	TargetRegistry
)

func (t Target) String() string {
	switch t {
	case TargetUser:
		return "User"
	case TargetManager:
		return "Manager"
	case TargetRegistry:
		return "Registry"
	default:
		return "?"
	}
}

// GridConfig bounds the scenario enumeration.
type GridConfig struct {
	// ChangeAt is when the service changes (fixed so every scenario's
	// relation between outage and change is known).
	ChangeAt sim.Time
	// Horizon is the run length; it must leave RecoverySlack after the
	// latest outage end so "eventually" has room.
	Horizon sim.Duration
	// RecoverySlack is the time every protocol is granted after
	// connectivity is restored before the checker calls a violation.
	// It must exceed the longest recovery chain (lease expiry + renewal
	// + announcement period).
	RecoverySlack sim.Duration
	// Starts and Durations enumerate the outage windows.
	Starts    []sim.Time
	Durations []sim.Duration
	// Modes enumerates the interface failure modes.
	Modes []netsim.FailMode
	// Targets enumerates the failed entity.
	Targets []Target
	// Seed feeds the (otherwise deterministic) run.
	Seed int64
	// Harden runs every grid scenario with the given hardening
	// mechanisms enabled; the zero value checks the paper-faithful
	// baseline.
	Harden discovery.Hardening
}

// DefaultGrid covers outages across the change with all modes and
// targets: 3 starts x 4 durations x 3 modes x up-to-3 targets = up to
// 108 scenarios per system.
func DefaultGrid() GridConfig {
	return GridConfig{
		ChangeAt:      1000 * sim.Second,
		Horizon:       12000 * sim.Second,
		RecoverySlack: 4200 * sim.Second,
		Starts:        []sim.Time{400 * sim.Second, 990 * sim.Second, 2000 * sim.Second},
		Durations:     []sim.Duration{300 * sim.Second, 900 * sim.Second, 2000 * sim.Second, 4000 * sim.Second},
		Modes:         []netsim.FailMode{netsim.FailTx, netsim.FailRx, netsim.FailBoth},
		Targets:       []Target{TargetUser, TargetManager, TargetRegistry},
		Seed:          1,
	}
}

// Violation is one scenario in which a User failed to regain consistency
// despite restored connectivity.
type Violation struct {
	System  experiment.System
	Target  Target
	Failure netsim.InterfaceFailure
	User    netsim.NodeID
	// StaleAtEnd reports the version gap: true means the User never saw
	// the post-change version at all.
	StaleAtEnd bool
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s %s down [%.0fs, %.0fs], change at fixed time: user %d stale at horizon",
		v.System, v.Target, v.Failure.Mode, v.Failure.Start.Sec(), v.Failure.End().Sec(), v.User)
}

// Result aggregates a grid check.
type Result struct {
	System     experiment.System
	Scenarios  int
	Violations []Violation
}

// Holds reports whether the principles held across the whole grid.
func (r Result) Holds() bool { return len(r.Violations) == 0 }

// Check runs the grid for one system.
func Check(sys experiment.System, grid GridConfig) Result {
	res := Result{System: sys}
	params := experiment.DefaultParams()
	params.RunDuration = grid.Horizon
	params.ChangeMin, params.ChangeMax = grid.ChangeAt, grid.ChangeAt
	params.Hardening = grid.Harden

	for _, target := range grid.Targets {
		node, ok := targetNode(sys, target)
		if !ok {
			continue
		}
		for _, start := range grid.Starts {
			for _, dur := range grid.Durations {
				// Leave the mandated slack after recovery.
				if sim.Time(dur)+start+sim.Time(grid.RecoverySlack) > sim.Time(grid.Horizon) {
					continue
				}
				for _, mode := range grid.Modes {
					f := netsim.InterfaceFailure{Node: node, Mode: mode, Start: start, Duration: dur}
					res.Scenarios++
					run := experiment.Run(experiment.RunSpec{
						System: sys, Seed: grid.Seed, Params: params,
						ExplicitFailures: []netsim.InterfaceFailure{f},
					})
					for _, u := range run.Users {
						if !u.Reached {
							res.Violations = append(res.Violations, Violation{
								System: sys, Target: target, Failure: f,
								User: u.User, StaleAtEnd: true,
							})
						}
					}
				}
			}
		}
	}
	return res
}

// targetNode maps a Target to the node index of the Build order.
func targetNode(sys experiment.System, t Target) (netsim.NodeID, bool) {
	registries, manager, firstUser := experiment.PaperLayout(sys)
	switch t {
	case TargetRegistry:
		if len(registries) == 0 {
			return 0, false
		}
		return registries[0], true
	case TargetManager:
		return manager, true
	case TargetUser:
		return firstUser, true
	}
	return 0, false
}
