package verify

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestSlackBuckets(t *testing.T) {
	cases := []struct {
		margin sim.Duration
		want   int
	}{
		{-3 * sim.Second, 0}, {0, 0}, {sim.Second / 2, 0},
		{sim.Second, 1}, {3 * sim.Second, 2}, {4 * sim.Second, 3},
		{63 * sim.Second, 6}, {64 * sim.Second, 7}, {5000 * sim.Second, 7},
	}
	for _, c := range cases {
		if got := slackBucket(c.margin); got != c.want {
			t.Errorf("slackBucket(%v) = %d, want %d", c.margin, got, c.want)
		}
	}
	if countBucket(0) != 0 || countBucket(3) != 3 || countBucket(99) != CoverageBuckets-1 {
		t.Error("countBucket misplaced a version gap")
	}
}

// The coverage signal must be populated by an ordinary clean run — the
// fuzzer's feedback cannot be a flat zero vector — and it must be
// deterministic: same seed, same histograms.
func TestOracleCoverageSignal(t *testing.T) {
	params := experiment.DefaultParams()
	params.RunDuration = 12000 * sim.Second
	params.Partitions = []netsim.Partition{
		{Start: 3000 * sim.Second, Duration: 4000 * sim.Second, Bisect: true},
	}
	spec := experiment.RunSpec{System: experiment.Frodo2P, Lambda: 0, Seed: 7, Params: params}
	rep, _ := ObserveRun(spec, DefaultOracleConfig(experiment.Frodo2P))
	if !rep.Clean() {
		t.Fatalf("baseline run not clean: %s", rep)
	}
	cov := rep.Coverage
	sum := func(inv Invariant) int {
		n := 0
		for _, c := range cov.Slack[inv] {
			n += c
		}
		return n
	}
	// Every consistent cache write lands in the version-bound histogram;
	// the post-change ones sit exactly at the bound.
	if sum(InvVersionBound) == 0 || cov.NearMisses[InvVersionBound] == 0 {
		t.Errorf("version-bound coverage empty: slack=%v near=%d",
			cov.Slack[InvVersionBound], cov.NearMisses[InvVersionBound])
	}
	// Subscription renewals populate the lease-purge margins.
	if sum(InvLeasePurge) == 0 {
		t.Errorf("lease-purge coverage empty: %v", cov.Slack[InvLeasePurge])
	}
	// One heal probe saw exactly one Central.
	if sum(InvSingleCentral) != 1 {
		t.Errorf("single-central coverage = %v, want one probe", cov.Slack[InvSingleCentral])
	}

	again, _ := ObserveRun(spec, DefaultOracleConfig(experiment.Frodo2P))
	if again.Coverage != cov {
		t.Errorf("coverage not deterministic:\n%+v\n%+v", cov, again.Coverage)
	}

	var merged OracleCoverage
	merged.Merge(cov)
	merged.Merge(cov)
	if merged.NearMisses[InvVersionBound] != 2*cov.NearMisses[InvVersionBound] {
		t.Error("Merge does not sum near misses")
	}
}

// Churn composed with a healing bisect partition — Users departing and
// rejoining while the fabric splits and heals, the FRODO minority side
// electing and demoting a usurper Central — must leave every invariant
// intact on all five systems. This is the hostile composition the chaos
// hunter starts from; it must be a clean floor, not a known failure.
func TestOracleCleanUnderChurnAcrossPartition(t *testing.T) {
	params := experiment.DefaultParams()
	params.RunDuration = 12000 * sim.Second
	params.Partitions = []netsim.Partition{
		{Start: 3000 * sim.Second, Duration: 2000 * sim.Second, Bisect: true},
	}
	params.Churn = experiment.Churn{
		Departures:  0.5,
		MeanAbsence: 600 * sim.Second,
		Arrivals:    2,
	}
	for _, sys := range experiment.Systems() {
		rep, res := ObserveRun(experiment.RunSpec{
			System: sys, Lambda: 0, Seed: 7, Params: params,
		}, DefaultOracleConfig(sys))
		if !rep.Clean() {
			t.Errorf("%v: %s", sys, rep)
			for _, v := range rep.Violations {
				t.Logf("%v: %v", sys, v)
			}
		}
		if len(res.Users) == 0 {
			t.Errorf("%v: no user outcomes", sys)
		}
	}
}
