package verify

import (
	"os"
	"testing"

	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestObserveShardedRun pins the sharded audit path at unit-test scale:
// ObserveRun on a Shards ≥ 2 spec attaches one oracle per shard with a
// shared publication counter, and a failure-free run must come back
// clean with every User consistent.
func TestObserveShardedRun(t *testing.T) {
	spec := experiment.RunSpec{
		System: experiment.Frodo2P,
		Lambda: 0,
		Seed:   7,
		Shards: 3,
		Params: experiment.Params{
			Users:              30,
			RunDuration:        900 * sim.Second,
			ChangeMin:          100 * sim.Second,
			ChangeMax:          300 * sim.Second,
			FailureWindowStart: 100 * sim.Second,
			FailureWindowEnd:   900 * sim.Second,
			EffortPad:          sim.Second,
		},
	}
	rep, res := ObserveRun(spec, DefaultOracleConfig(spec.System))
	if !rep.Clean() {
		t.Fatalf("sharded oracle not clean: %v\n%v", rep, rep.Violations)
	}
	if len(res.Users) != 30 {
		t.Fatalf("%d user outcomes, want 30", len(res.Users))
	}
	for i, u := range res.Users {
		if !u.Reached {
			t.Fatalf("user %d (shard %d) never reached consistency in a failure-free run", i, u.User.Shard())
		}
	}
}

// TestObserveShardedChurnPartitionHeal audits a churning 4-shard FRODO
// run through a healing bisect partition end to end: every per-shard
// oracle schedules the single-central heal probe (the partition plan is
// inherited from the spec), every probe runs before the deadline, and
// the run comes back clean. The window timings mirror the hunted
// single-central fixture (split at 3000s, heal at 5000s, 9300s run) so
// the probe instant — heal + CentralTimeout + AnnouncePeriod + slack —
// lands well inside the run. The probe counts only *delivered* Registry
// announcements, so remote shards pass it through genuinely received
// cross-shard announce traffic, not send-side bookkeeping.
func TestObserveShardedChurnPartitionHeal(t *testing.T) {
	spec := experiment.RunSpec{
		System: experiment.Frodo2P,
		Lambda: 0,
		Seed:   11,
		Shards: 4,
		Params: experiment.Params{
			Users:              40,
			RunDuration:        9300 * sim.Second,
			ChangeMin:          100 * sim.Second,
			ChangeMax:          300 * sim.Second,
			FailureWindowStart: 100 * sim.Second,
			FailureWindowEnd:   9300 * sim.Second,
			EffortPad:          sim.Second,
			Churn:              experiment.Churn{Departures: 1, MeanAbsence: 300 * sim.Second, Arrivals: 6},
			Partitions: []netsim.Partition{
				{Start: 3000 * sim.Second, Duration: 2000 * sim.Second, Bisect: true},
			},
		},
	}
	rep, res := ObserveRun(spec, DefaultOracleConfig(spec.System))
	if !rep.Clean() {
		t.Fatalf("sharded churn+partition oracle not clean: %v\n%v", rep, rep.Violations)
	}
	if rep.ProbesScheduled != spec.Shards {
		t.Fatalf("%d heal probes scheduled, want one per shard (%d)", rep.ProbesScheduled, spec.Shards)
	}
	if rep.ProbesRun != rep.ProbesScheduled {
		t.Fatalf("heal probes ran %d/%d", rep.ProbesRun, rep.ProbesScheduled)
	}
	if len(res.Users) <= 40 {
		t.Fatalf("%d user outcomes, want > 40 (initial population plus churn arrivals)", len(res.Users))
	}
}

// TestShardSmoke is the CI shard-smoke gate (`make shard-smoke`): a
// 4-shard, N=10k FRODO two-party run under the race detector with the
// per-shard oracles attached, Poisson churn reshaping the population
// and a bisect partition splitting and healing mid-run. Gated behind
// SHARD_SMOKE=1 — it simulates a 10k-node fabric, far too heavy for
// every `go test ./...`.
func TestShardSmoke(t *testing.T) {
	if os.Getenv("SHARD_SMOKE") == "" {
		t.Skip("set SHARD_SMOKE=1 (or run `make shard-smoke`) for the 4-shard N=10k oracle gate")
	}
	spec := experiment.RunSpec{
		System: experiment.Frodo2P,
		Lambda: 0.15,
		Seed:   1,
		Shards: 4,
		Params: experiment.Params{
			Users:       10_000,
			RunDuration: 5400 * sim.Second, // heal probe at 700s + HealSlack (4260s) must precede the deadline
			ChangeMin:   100 * sim.Second,
			ChangeMax:   600 * sim.Second,
			// Confine drawn outages to the first 2400s so late failures
			// don't strand Users past the (long) probe horizon.
			FailureWindowStart: 100 * sim.Second,
			FailureWindowEnd:   2400 * sim.Second,
			EffortPad:          sim.Second,
			Churn:              experiment.Churn{Departures: 0.2, MeanAbsence: 200 * sim.Second, Arrivals: 200},
			Partitions: []netsim.Partition{
				{Start: 400 * sim.Second, Duration: 300 * sim.Second, Bisect: true},
			},
		},
	}
	rep, res := ObserveRun(spec, DefaultOracleConfig(spec.System))
	if !rep.Clean() {
		t.Fatalf("shard smoke: oracle not clean: %v\n%v", rep, rep.Violations)
	}
	if rep.ProbesScheduled != spec.Shards || rep.ProbesRun != rep.ProbesScheduled {
		t.Fatalf("shard smoke: heal probes ran %d of %d scheduled, want %d per-shard probes",
			rep.ProbesRun, rep.ProbesScheduled, spec.Shards)
	}
	if len(res.Users) <= 10_000 {
		t.Fatalf("shard smoke: %d user outcomes, want > 10000 (initial population plus churn arrivals)", len(res.Users))
	}
	reached, measured := 0, 0
	for _, u := range res.Users {
		if u.Excluded {
			continue
		}
		measured++
		if u.Reached {
			reached++
		}
	}
	// λ=0.15 outages, churn absences and a 300s partition knock some
	// Users out past the deadline; the gate is that propagation genuinely
	// spans the fabric, not a perfect score.
	if reached < measured*8/10 {
		t.Fatalf("shard smoke: only %d/%d measured users reached consistency", reached, measured)
	}
	if res.Effort == 0 {
		t.Fatalf("shard smoke: zero counted update effort")
	}
	t.Logf("shard smoke: %d/%d measured users consistent (%d outcomes), effort %d, %v",
		reached, measured, len(res.Users), res.Effort, rep)
}
