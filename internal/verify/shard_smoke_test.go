package verify

import (
	"os"
	"testing"

	"repro/internal/experiment"
	"repro/internal/sim"
)

// TestObserveShardedRun pins the sharded audit path at unit-test scale:
// ObserveRun on a Shards ≥ 2 spec attaches one oracle per shard with a
// shared publication counter, and a failure-free run must come back
// clean with every User consistent.
func TestObserveShardedRun(t *testing.T) {
	spec := experiment.RunSpec{
		System: experiment.Frodo2P,
		Lambda: 0,
		Seed:   7,
		Shards: 3,
		Params: experiment.Params{
			Users:              30,
			RunDuration:        900 * sim.Second,
			ChangeMin:          100 * sim.Second,
			ChangeMax:          300 * sim.Second,
			FailureWindowStart: 100 * sim.Second,
			FailureWindowEnd:   900 * sim.Second,
			EffortPad:          sim.Second,
		},
	}
	rep, res := ObserveRun(spec, DefaultOracleConfig(spec.System))
	if !rep.Clean() {
		t.Fatalf("sharded oracle not clean: %v\n%v", rep, rep.Violations)
	}
	if len(res.Users) != 30 {
		t.Fatalf("%d user outcomes, want 30", len(res.Users))
	}
	for i, u := range res.Users {
		if !u.Reached {
			t.Fatalf("user %d (shard %d) never reached consistency in a failure-free run", i, u.User.Shard())
		}
	}
}

// TestShardSmoke is the CI shard-smoke gate (`make shard-smoke`): a
// 4-shard, N=10k FRODO two-party run under the race detector with the
// per-shard oracles attached. Gated behind SHARD_SMOKE=1 — it simulates
// a 10k-node fabric, far too heavy for every `go test ./...`.
func TestShardSmoke(t *testing.T) {
	if os.Getenv("SHARD_SMOKE") == "" {
		t.Skip("set SHARD_SMOKE=1 (or run `make shard-smoke`) for the 4-shard N=10k oracle gate")
	}
	spec := experiment.RunSpec{
		System: experiment.Frodo2P,
		Lambda: 0.15,
		Seed:   1,
		Shards: 4,
		Params: experiment.Params{
			Users:              10_000,
			RunDuration:        2400 * sim.Second,
			ChangeMin:          100 * sim.Second,
			ChangeMax:          600 * sim.Second,
			FailureWindowStart: 100 * sim.Second,
			FailureWindowEnd:   2400 * sim.Second,
			EffortPad:          sim.Second,
		},
	}
	rep, res := ObserveRun(spec, DefaultOracleConfig(spec.System))
	if !rep.Clean() {
		t.Fatalf("shard smoke: oracle not clean: %v\n%v", rep, rep.Violations)
	}
	if len(res.Users) != 10_000 {
		t.Fatalf("shard smoke: %d user outcomes, want 10000", len(res.Users))
	}
	reached := 0
	for _, u := range res.Users {
		if u.Reached {
			reached++
		}
	}
	// λ=0.15 outages knock some Users out past the deadline; the gate is
	// that propagation genuinely spans the fabric, not a perfect score.
	if reached < 8_500 {
		t.Fatalf("shard smoke: only %d/10000 users reached consistency", reached)
	}
	if res.Effort == 0 {
		t.Fatalf("shard smoke: zero counted update effort")
	}
	t.Logf("shard smoke: %d/10000 users consistent, effort %d, %v", reached, res.Effort, rep)
}
