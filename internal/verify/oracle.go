package verify

import (
	"fmt"
	"sync/atomic"

	"repro/internal/discovery"
	"repro/internal/experiment"
	"repro/internal/frodo"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// The run-time consistency oracle. Where the grid checker (verify.Check)
// enumerates outage scenarios and inspects only the end state, the
// Oracle rides along inside a single run — attached to the Scenario
// through the trace layer and the cache-write tap — and audits explicit
// invariants online, frame by frame. It is protocol-agnostic: everything
// it checks is observable from the shared wire vocabulary
// (discovery.*), the node event stream and the consistency listener, so
// the same oracle audits all five systems under any schedule the
// experiment layer can produce — including the adversarial ones
// (burst loss, heavy-tailed delay, partitions) the link models open up.

// Invariant identifies one run-time invariant the Oracle audits.
type Invariant uint8

const (
	// InvVersionBound: no User may ever hold a service version newer
	// than the Manager has published. A violation means fabricated or
	// corrupted state somewhere in the propagation path.
	InvVersionBound Invariant = iota
	// InvLeasePurge: lease-expired entries must be purged within the
	// bound — a holder must never acknowledge a renewal that arrived
	// more than PurgeSlack after the lease it refreshes ran out.
	InvLeasePurge
	// InvSingleCentral: after a partition heals (plus HealSlack), the
	// FRODO election must have converged back to exactly one Central.
	InvSingleCentral
	// InvRetiredSilence: a retired (churned-out) node must never emit
	// frames beyond the wire-redundancy grace window — a late frame
	// means a zombie timer survived the quiesce.
	InvRetiredSilence

	numInvariants = 4
)

func (i Invariant) String() string {
	switch i {
	case InvVersionBound:
		return "version-bound"
	case InvLeasePurge:
		return "lease-purge"
	case InvSingleCentral:
		return "single-central"
	case InvRetiredSilence:
		return "retired-silence"
	default:
		return "?"
	}
}

// FaultBound is a fault-conditional waiver: an invariant breach inside
// the window is recorded as waived, not as a violation. Bounds document
// the provably-unfixable findings of the hardening pass — failures whose
// root cause is the injected fault itself (e.g. a Central that is the
// only node on its partition side cannot converge before the heal), not
// a protocol defect any holder-side mechanism could close. Every waiver
// is still counted and carries its reason into the report, so a bound
// never silently hides a regression elsewhere in the window.
type FaultBound struct {
	Invariant Invariant
	Start     sim.Time
	End       sim.Time // zero means unbounded
	Reason    string
}

// covers reports whether the bound waives inv at time t.
func (b FaultBound) covers(inv Invariant, t sim.Time) bool {
	return b.Invariant == inv && t >= b.Start && (b.End == 0 || t <= b.End)
}

// OracleConfig bounds the oracle's tolerances. The zero value of any
// field falls back to the defaults of DefaultOracleConfig.
type OracleConfig struct {
	// PurgeSlack is the grace beyond a lease's expiry before an
	// acknowledged renewal becomes a violation.
	PurgeSlack sim.Duration
	// RetireGrace tolerates the multicast-stagger redundancy train still
	// in flight when a node retires; protocol timers fire on second
	// scales, so anything beyond the grace is a real zombie.
	RetireGrace sim.Duration
	// Partitions is the partition schedule of the observed run; the
	// oracle probes Central convergence HealSlack after each heal.
	Partitions []netsim.Partition
	// HealSlack is how long after a heal the election must have
	// converged. It must exceed the FRODO Central timeout plus one
	// announcement period, so demotions have provably had time to land.
	HealSlack sim.Duration
	// CentralWindow is how recent a Registry-role announcement must be
	// to count as a live Central claim at probe time; it must exceed the
	// announcement period.
	CentralWindow sim.Duration
	// ExpectCentral enables the single-Central probes — FRODO systems
	// only (Jini legitimately runs several Registries).
	ExpectCentral bool
	// MaxViolations caps the retained violation details; the per-
	// invariant counts are always complete.
	MaxViolations int
	// Bounds are the fault-conditional waivers in force for this run.
	Bounds []FaultBound
	// OnViolation, when set, fires synchronously on every non-waived
	// violation, on the goroutine that detected it (a shard's worker for
	// a remote shard's oracle). The live driver and traced fixture
	// replays use it to freeze flight recorders at the first breach, so
	// the rings hold the events leading up to it, not the aftermath. The
	// hook must not touch any kernel or draw randomness.
	OnViolation func(OracleViolation)
}

// DefaultOracleConfig returns the oracle tolerances for one system:
// lease and election bounds follow the §5 parameters.
func DefaultOracleConfig(sys experiment.System) OracleConfig {
	fcfg := frodo.DefaultConfig()
	return OracleConfig{
		PurgeSlack:    5 * sim.Second,
		RetireGrace:   10 * sim.Second,
		HealSlack:     fcfg.CentralTimeout + fcfg.AnnouncePeriod + 60*sim.Second,
		CentralWindow: fcfg.AnnouncePeriod + 60*sim.Second,
		ExpectCentral: sys == experiment.Frodo3P || sys == experiment.Frodo2P,
		MaxViolations: 100,
	}
}

// CoverageBuckets is the resolution of the per-invariant slack
// histograms: bucket 0 holds margins under a second (or at the exact
// bound), bucket k margins in [2^(k-1), 2^k) seconds, and the last
// bucket everything comfortable beyond that. For the version-bound
// invariant the "margin" is a version count, bucketed directly.
const CoverageBuckets = 8

// OracleCoverage is the oracle's behavioral coverage signal: how close
// each invariant came to violating, not just whether it did. A scenario
// fuzzer keeps candidates that push an invariant into a slack bucket or
// near-miss region no earlier candidate reached — the gradient toward
// a violation that binary clean/violated feedback cannot provide.
type OracleCoverage struct {
	// NearMisses counts events in the final grace region before a
	// violation: a RenewAck inside PurgeSlack after expiry, a retired
	// node's frame inside RetireGrace, a heal probe whose sole live
	// claim is older than half the CentralWindow, a cache write exactly
	// at the published bound after at least one change.
	NearMisses [numInvariants]int
	// Slack histograms the margin left on every non-violating check.
	Slack [numInvariants][CoverageBuckets]int
}

// Merge accumulates other into c, for sharded or multi-run aggregation.
func (c *OracleCoverage) Merge(other OracleCoverage) {
	for i := range c.NearMisses {
		c.NearMisses[i] += other.NearMisses[i]
		for b := range c.Slack[i] {
			c.Slack[i][b] += other.Slack[i][b]
		}
	}
}

// slackBucket maps a time margin onto a histogram bucket: <1s (or
// negative, i.e. inside a grace region) → 0, then doubling second
// ranges, saturating at the top bucket.
func slackBucket(margin sim.Duration) int {
	if margin < sim.Second {
		return 0
	}
	s := int64(margin / sim.Second)
	b := 1
	for s > 1 && b < CoverageBuckets-1 {
		s >>= 1
		b++
	}
	return b
}

// countBucket maps a non-negative count (version gap) onto a bucket.
func countBucket(n uint64) int {
	if n >= CoverageBuckets {
		return CoverageBuckets - 1
	}
	return int(n)
}

// OracleViolation is one observed invariant breach.
type OracleViolation struct {
	At        sim.Time
	Invariant Invariant
	Node      netsim.NodeID
	Detail    string
}

func (v OracleViolation) String() string {
	return fmt.Sprintf("%.3fs %s node %d: %s", v.At.Sec(), v.Invariant, v.Node, v.Detail)
}

// OracleReport summarizes one audited run.
type OracleReport struct {
	// Total counts every violation, including ones past MaxViolations.
	Total int
	// ByInvariant breaks the total down.
	ByInvariant [numInvariants]int
	// Violations retains the first MaxViolations details.
	Violations []OracleViolation
	// Coverage carries the near-miss/slack signal alongside the
	// verdict, so one audited run yields both.
	Coverage OracleCoverage
	// ProbesScheduled and ProbesRun count the single-central heal
	// probes. A probe scheduled past the run deadline never fires; the
	// difference makes that visible instead of silently vacuous — a run
	// with pending probes is NOT Clean. Extend Params.RunDuration so
	// every partition heal leaves HealSlack before the deadline.
	ProbesScheduled, ProbesRun int
	// Waived counts breaches absorbed by fault-conditional bounds
	// (OracleConfig.Bounds); WaivedDetails retains them with their
	// waiver reasons, capped like Violations. Waived breaches do not
	// affect Clean — that is the bound's whole point — but they stay
	// visible so a bound never reads as "nothing happened".
	Waived        int
	WaivedDetails []OracleViolation
	// MaxPurgeLate is the worst observed RenewAck lateness past its
	// lease's expiry (zero when every ack beat the expiry): the
	// purge-latency axis of the hardening figure.
	MaxPurgeLate sim.Duration
}

// Clean reports whether the run satisfied every invariant AND every
// scheduled heal probe actually ran.
func (r OracleReport) Clean() bool { return r.Total == 0 && r.ProbesRun == r.ProbesScheduled }

// MergeReports combines per-shard oracle reports into one fabric-wide
// report: counts and probe tallies sum, violation details concatenate
// in shard order.
func MergeReports(reports ...OracleReport) OracleReport {
	var out OracleReport
	for _, r := range reports {
		out.Total += r.Total
		for i := range r.ByInvariant {
			out.ByInvariant[i] += r.ByInvariant[i]
		}
		out.Violations = append(out.Violations, r.Violations...)
		out.Coverage.Merge(r.Coverage)
		out.ProbesScheduled += r.ProbesScheduled
		out.ProbesRun += r.ProbesRun
		out.Waived += r.Waived
		out.WaivedDetails = append(out.WaivedDetails, r.WaivedDetails...)
		if r.MaxPurgeLate > out.MaxPurgeLate {
			out.MaxPurgeLate = r.MaxPurgeLate
		}
	}
	return out
}

func (r OracleReport) String() string {
	if pending := r.ProbesScheduled - r.ProbesRun; pending > 0 {
		return fmt.Sprintf("oracle: %d violations, %d heal probes never ran (deadline before heal+HealSlack — extend RunDuration)",
			r.Total, pending)
	}
	if r.Clean() {
		if r.Waived > 0 {
			return fmt.Sprintf("oracle: all invariants held (%d breaches waived under fault-conditional bounds)", r.Waived)
		}
		return "oracle: all invariants held"
	}
	return fmt.Sprintf("oracle: %d violations (version-bound %d, lease-purge %d, single-central %d, retired-silence %d)",
		r.Total, r.ByInvariant[InvVersionBound], r.ByInvariant[InvLeasePurge],
		r.ByInvariant[InvSingleCentral], r.ByInvariant[InvRetiredSilence])
}

// leaseKey identifies one lease entry from the outside: who holds it,
// who refreshes it, and which Manager's service it concerns.
type leaseKey struct {
	holder  netsim.NodeID
	renewer netsim.NodeID
	manager netsim.NodeID
}

// Oracle audits a run online. It implements netsim.Tracer (attached as a
// tee alongside any event log) and discovery.ConsistencyListener
// (chained onto the run's cache-write recorder). Construct with
// NewOracle for a hand-driven fixture or AttachOracle for a Scenario.
type Oracle struct {
	cfg     OracleConfig
	k       *sim.Kernel
	manager netsim.NodeID

	// published is the highest version the measured Manager has ever
	// published: 1 at boot, bumped on every scheduled change.
	published uint64
	// shared, when set, replaces published with a counter shared across
	// the per-shard oracles of a sharded fabric (see SharePublished).
	shared *atomic.Uint64
	// retiredAt records when each currently-retired node left; AddNode
	// reuse clears the entry ("attached").
	retiredAt map[netsim.NodeID]sim.Time
	// leases tracks the expiry of every lease whose creation the oracle
	// observed (Register/Subscribe delivery), refreshed by observed
	// renewals.
	leases map[leaseKey]sim.Time
	// claims records each node's latest *delivered* Registry-role
	// announcement; the heal probes count claims within CentralWindow.
	// Recording at delivery — not at send — is deliberate: an announcement
	// that never reached any receiver is no evidence the election has a
	// live, observable Central, so a partition-isolated announcer whose
	// frames all die on the wire must not "pass" the probe.
	claims   map[netsim.NodeID]sim.Time
	sawClaim bool

	total           int
	byInvariant     [numInvariants]int
	cov             OracleCoverage
	violations      []OracleViolation
	probesScheduled int
	probesRun       int
	waived          int
	waivedDetails   []OracleViolation
	maxPurgeLate    sim.Duration

	// Optional telemetry mirrors (MetricsInto): near-miss and violation
	// counts double-written into an obs registry as they accumulate.
	nmCounters   [numInvariants]*obs.Counter
	violCounters [numInvariants]*obs.Counter
}

// NewOracle builds an oracle on a kernel, scheduling its partition-heal
// probes. manager scopes the version-bound invariant; pass netsim.NoNode
// to audit every manager's versions against the same publication count.
func NewOracle(k *sim.Kernel, manager netsim.NodeID, cfg OracleConfig) *Oracle {
	def := DefaultOracleConfig(experiment.UPnP)
	if cfg.PurgeSlack == 0 {
		cfg.PurgeSlack = def.PurgeSlack
	}
	if cfg.RetireGrace == 0 {
		cfg.RetireGrace = def.RetireGrace
	}
	if cfg.HealSlack == 0 {
		cfg.HealSlack = def.HealSlack
	}
	if cfg.CentralWindow == 0 {
		cfg.CentralWindow = def.CentralWindow
	}
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = def.MaxViolations
	}
	o := &Oracle{
		cfg: cfg, k: k, manager: manager,
		published: 1,
		retiredAt: map[netsim.NodeID]sim.Time{},
		leases:    map[leaseKey]sim.Time{},
		claims:    map[netsim.NodeID]sim.Time{},
	}
	if cfg.ExpectCentral {
		for _, p := range cfg.Partitions {
			at := p.End() + sim.Time(cfg.HealSlack)
			o.probesScheduled++
			o.k.At(at, o.probeCentral)
		}
	}
	return o
}

// AttachOracle hooks an oracle onto a built Scenario: the network tracer
// tee, the cache-write chain and the change tap. Call it from
// RunSpec.Attach; the oracle stays valid after the run (its report is
// plain data), while the Scenario itself may be recycled.
func AttachOracle(sc *experiment.Scenario, cfg OracleConfig) *Oracle {
	o := NewOracle(sc.K, sc.ManagerID, cfg)
	sc.AddTracer(o)
	sc.TapConsistency(o)
	sc.TapChange(o.NotePublished)
	return o
}

// AttachShardedOracles hooks one oracle per shard of a sharded fabric,
// all bound to the measured Manager and sharing one publication counter
// (the change fires on shard 0 while cache writes land everywhere).
// Call it from RunSpec.AttachSharded; remote shards' oracles run on
// their shards' worker goroutines, which is safe because each touches
// only its own shard's state plus the shared atomic. Merge the reports
// with MergeReports once the set is closed.
func AttachShardedOracles(ss *experiment.ShardSet, cfg OracleConfig) []*Oracle {
	shared := new(atomic.Uint64)
	mgr := ss.Scenario().ManagerID
	oracles := make([]*Oracle, ss.Shards())
	for s := range oracles {
		sc := ss.ShardScenario(s)
		o := NewOracle(sc.K, mgr, cfg)
		o.SharePublished(shared)
		sc.AddTracer(o)
		sc.TapConsistency(o)
		if s == 0 {
			sc.TapChange(o.NotePublished)
		}
		oracles[s] = o
	}
	return oracles
}

// ObserveRun executes one run with an oracle attached and returns its
// report alongside the run's metrics. A nil cfg.Partitions inherits the
// run's own partition schedule, so heal probes follow the spec. A
// sharded spec (Shards ≥ 2) is audited by one oracle per shard; the
// returned report is the fabric-wide merge.
func ObserveRun(spec experiment.RunSpec, cfg OracleConfig) (OracleReport, metrics.RunResult) {
	if cfg.Partitions == nil {
		cfg.Partitions = spec.Params.Partitions
	}
	if spec.Shards >= 2 {
		var oracles []*Oracle
		prev := spec.AttachSharded
		spec.AttachSharded = func(ss *experiment.ShardSet) {
			if prev != nil {
				prev(ss)
			}
			oracles = AttachShardedOracles(ss, cfg)
		}
		res := experiment.Run(spec)
		// Run closed the ShardSet before returning, so every worker has
		// joined and the per-shard reports are plain data.
		reports := make([]OracleReport, len(oracles))
		for i, o := range oracles {
			reports[i] = o.Report()
		}
		return MergeReports(reports...), res
	}
	var o *Oracle
	prev := spec.Attach
	spec.Attach = func(sc *experiment.Scenario) {
		if prev != nil {
			prev(sc)
		}
		o = AttachOracle(sc, cfg)
	}
	res := experiment.Run(spec)
	return o.Report(), res
}

// Report summarizes the audit so far; call it after the run completes.
func (o *Oracle) Report() OracleReport {
	return OracleReport{Total: o.total, ByInvariant: o.byInvariant, Violations: o.violations,
		Coverage: o.cov, ProbesScheduled: o.probesScheduled, ProbesRun: o.probesRun,
		Waived: o.waived, WaivedDetails: o.waivedDetails, MaxPurgeLate: o.maxPurgeLate}
}

// Coverage returns the near-miss/slack signal accumulated so far.
func (o *Oracle) Coverage() OracleCoverage { return o.cov }

// NotePublished is the change tap: the measured Manager published a new
// version. The run driver wires it through Scenario.TapChange; the live
// driver, which fans a single change tap out to several hooks, calls it
// directly.
func (o *Oracle) NotePublished() {
	if o.shared != nil {
		o.shared.Add(1)
		return
	}
	o.published++
}

// SharePublished moves the oracle's publication counter to c, shared by
// every shard's oracle of one sharded run: publications fire on shard 0
// while cache writes land on every shard, so the version-bound check
// must read one fabric-wide count. The first oracle to share seeds c
// with the boot count; a publication is separated from any remote cache
// write it enables by at least one window barrier, whose channel
// exchange orders the Add before the Load.
func (o *Oracle) SharePublished(c *atomic.Uint64) {
	c.CompareAndSwap(0, o.published)
	o.shared = c
}

func (o *Oracle) violate(inv Invariant, node netsim.NodeID, format string, args ...any) {
	now := o.k.Now()
	for _, b := range o.cfg.Bounds {
		if b.covers(inv, now) {
			o.waived++
			if len(o.waivedDetails) < o.cfg.MaxViolations {
				o.waivedDetails = append(o.waivedDetails, OracleViolation{
					At: now, Invariant: inv, Node: node,
					Detail: fmt.Sprintf(format, args...) + " [waived: " + b.Reason + "]",
				})
			}
			return
		}
	}
	o.total++
	o.byInvariant[inv]++
	if c := o.violCounters[inv]; c != nil {
		c.Inc()
	}
	v := OracleViolation{At: now, Invariant: inv, Node: node, Detail: fmt.Sprintf(format, args...)}
	if len(o.violations) < o.cfg.MaxViolations {
		o.violations = append(o.violations, v)
	}
	if o.cfg.OnViolation != nil {
		o.cfg.OnViolation(v)
	}
}

// nearMiss counts one event in an invariant's final grace region,
// mirroring it into the telemetry registry when one is attached.
func (o *Oracle) nearMiss(inv Invariant) {
	o.cov.NearMisses[inv]++
	if c := o.nmCounters[inv]; c != nil {
		c.Inc()
	}
}

// MetricsInto double-writes the oracle's near-miss and violation counts
// into reg as they accumulate: sd_oracle_near_misses_total and
// sd_oracle_violations_total, labeled by invariant and shard. Attach
// before the run; repeated attachment to one registry aggregates (the
// counters are find-or-create).
func (o *Oracle) MetricsInto(reg *obs.Registry, shard int) {
	s := fmt.Sprintf("%d", shard)
	for i := 0; i < numInvariants; i++ {
		inv := Invariant(i).String()
		o.nmCounters[i] = reg.Counter("sd_oracle_near_misses_total", "invariant", inv, "shard", s)
		o.violCounters[i] = reg.Counter("sd_oracle_violations_total", "invariant", inv, "shard", s)
	}
}

// CacheUpdated implements discovery.ConsistencyListener: the version-
// bound invariant, checked on every User cache write.
func (o *Oracle) CacheUpdated(t sim.Time, user, manager netsim.NodeID, version uint64) {
	if o.manager != netsim.NoNode && manager != o.manager {
		return
	}
	published := o.published
	if o.shared != nil {
		published = o.shared.Load()
	}
	if version > published {
		o.violate(InvVersionBound, user,
			"User caches version %d of Manager %d, but only %d was ever published",
			version, manager, published)
		return
	}
	o.cov.Slack[InvVersionBound][countBucket(published-version)]++
	if version == published && published > 1 {
		// A post-change write landing exactly at the bound: the closest
		// legal state to a fabrication, and the consistency event the
		// paper measures.
		o.nearMiss(InvVersionBound)
	}
}

// MessageSent implements netsim.Tracer.
func (o *Oracle) MessageSent(t sim.Time, m *netsim.Message) {
	if at, ok := o.retiredAt[m.From]; ok {
		if t > at+sim.Time(o.cfg.RetireGrace) {
			o.violate(InvRetiredSilence, m.From,
				"retired node transmits %s %.3fs after departure", m.Kind, (t - at).Sec())
		} else {
			// Every in-grace frame is the redundancy train running down;
			// the remaining grace is the margin.
			o.cov.Slack[InvRetiredSilence][slackBucket(o.cfg.RetireGrace-sim.Duration(t-at))]++
			o.nearMiss(InvRetiredSilence)
		}
	}
	switch p := m.Payload.(type) {
	case discovery.Bye:
		if p.Role == discovery.RoleRegistry {
			// An explicit retraction: the sender renounced the Central
			// role, so its claim leaves the ledger at the send instant.
			delete(o.claims, m.From)
		} else {
			// A departing tenant: the receiver evicts its leases on
			// delivery, so drop them from the ledger too.
			for key := range o.leases {
				if key.holder == m.To && key.renewer == m.From {
					delete(o.leases, key)
				}
			}
		}
	case discovery.RenewAck:
		key := leaseKey{holder: m.From, renewer: m.To, manager: p.Manager}
		if expiry, ok := o.leases[key]; ok {
			if t > expiry {
				if late := sim.Duration(t - expiry); late > o.maxPurgeLate {
					o.maxPurgeLate = late
				}
			}
			if t > expiry+sim.Time(o.cfg.PurgeSlack) {
				o.violate(InvLeasePurge, m.From,
					"RenewAck to node %d for Manager %d a lease that expired %.3fs ago (never purged)",
					m.To, p.Manager, (t - expiry).Sec())
				delete(o.leases, key) // report each dead lease once
			} else {
				o.cov.Slack[InvLeasePurge][slackBucket(sim.Duration(expiry-t))]++
				if t > expiry {
					// Acknowledged inside PurgeSlack: legal only thanks
					// to the grace — the purge is losing the race.
					o.nearMiss(InvLeasePurge)
				}
			}
		}
	}
}

// MessageDelivered implements netsim.Tracer: Registry claims, lease
// creations and refreshes — all as a receiver observes them.
func (o *Oracle) MessageDelivered(t sim.Time, m *netsim.Message) {
	switch p := m.Payload.(type) {
	case discovery.Announce:
		// A Registry claim counts as liveness only once somebody hears
		// it. Send-side accounting was drop-blind: a Central isolated by
		// a partition kept "renewing" its claim with frames that died on
		// the wire, masking no-Central windows in baseline runs.
		if p.Role == discovery.RoleRegistry {
			o.claims[m.From] = t
			o.sawClaim = true
		}
	case discovery.Register:
		o.leases[leaseKey{holder: m.To, renewer: m.From, manager: p.Rec.Manager}] = t + sim.Time(p.Lease)
	case discovery.Subscribe:
		o.leases[leaseKey{holder: m.To, renewer: m.From, manager: p.Manager}] = t + sim.Time(p.Lease)
	case discovery.Renew:
		key := leaseKey{holder: m.To, renewer: m.From, manager: p.Manager}
		// Refresh only a still-live lease: a renewal landing after the
		// expiry must be answered with RenewError, and leaving the stale
		// expiry in place is what lets the RenewAck check above fire.
		if expiry, ok := o.leases[key]; ok && t <= expiry+sim.Time(o.cfg.PurgeSlack) {
			o.leases[key] = t + sim.Time(p.Lease)
		}
	}
}

// MessageDropped implements netsim.Tracer.
func (o *Oracle) MessageDropped(t sim.Time, m *netsim.Message, reason string) {}

// NodeEvent implements netsim.Tracer: retirement and slot reuse.
func (o *Oracle) NodeEvent(t sim.Time, node netsim.NodeID, event string) {
	switch event {
	case "retired":
		o.retiredAt[node] = t
		delete(o.claims, node) // a departed Central's claim dies with it
	case "attached":
		delete(o.retiredAt, node)
	}
}

// probeCentral runs HealSlack after a partition heals: the set of nodes
// with a live Registry claim must be exactly one.
func (o *Oracle) probeCentral() {
	o.probesRun++
	now := o.k.Now()
	live := 0
	var last netsim.NodeID = netsim.NoNode
	var freshest sim.Time
	for id, at := range o.claims {
		if now-at <= sim.Time(o.cfg.CentralWindow) {
			live++
			last = id
			if at > freshest {
				freshest = at
			}
		}
	}
	if live == 1 {
		age := sim.Duration(now - freshest)
		o.cov.Slack[InvSingleCentral][slackBucket(o.cfg.CentralWindow-age)]++
		if 2*age > o.cfg.CentralWindow {
			// Converged, but the surviving claim is going stale: the
			// election is closer to "no Central" than the verdict shows.
			o.nearMiss(InvSingleCentral)
		}
	}
	switch {
	case live > 1:
		o.violate(InvSingleCentral, last,
			"%d simultaneous Central claims %.0fs after partition heal (split-brain persists)",
			live, o.cfg.HealSlack.Sec())
	case live == 0:
		o.violate(InvSingleCentral, netsim.NoNode,
			"no live Central claim %.0fs after partition heal (sawClaim=%v)",
			o.cfg.HealSlack.Sec(), o.sawClaim)
	}
}
