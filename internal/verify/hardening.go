package verify

import (
	"fmt"
	"sync"

	"repro/internal/discovery"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// FigureHardening compares each system baseline-vs-hardened under the
// hunted fault envelope: the λ/partition/burst-loss/heavy-tail/churn mix
// the chaos hunter found violations in. For every system it reports the
// zero-failure effort m′ (one clean run per mode — hardening must not
// tax the fault-free path), then the hostile-mix averages: update
// effectiveness F, mean counted effort ȳ, total oracle violations, and
// the worst RenewAck lateness past lease expiry (the purge-latency tail
// the strict-lease mechanism bounds).
func FigureHardening(base experiment.Params, runs, workers int, progress func(done, total int)) experiment.Table {
	if runs <= 0 {
		runs = 5
	}
	if workers <= 0 {
		workers = 4
	}

	// The hostile mix, drawn from the hunted corpus: a mid-run bisection
	// (exercising the single-central probe), bursty loss over heavy-tailed
	// reordered delivery, churn (retired-silence), and a high interface
	// failure rate. Duration leaves HealSlack after the heal so the probe
	// always runs.
	hostile := base
	hostile.RunDuration = 9300 * sim.Second
	hostile.Partitions = []netsim.Partition{{
		Start: 3000 * sim.Time(sim.Second), Duration: 2000 * sim.Second, Bisect: true,
	}}
	hostile.Churn = experiment.Churn{Departures: 1, Arrivals: 2}
	hostileOpts := experiment.Options{
		Link: netsim.LinkConfig{
			Burst:        netsim.BurstForAverage(0.15, 8),
			Delay:        netsim.DelayConfig{Dist: netsim.DelayPareto},
			Reorder: netsim.ReorderConfig{Prob: 0.2, Extra: sim.Duration(0.25 * float64(sim.Second))},
		},
	}
	const hostileLambda = 0.6

	type cell struct {
		mprime   int
		reached  int
		included int
		effort   int
		viol     int
		waived   int
		maxLate  sim.Duration
	}
	cells := [2]map[experiment.System]*cell{}
	for mode := range cells {
		cells[mode] = map[experiment.System]*cell{}
		for _, sys := range experiment.Systems() {
			cells[mode][sys] = &cell{}
		}
	}

	type job struct {
		sys    experiment.System
		mode   int // 0 baseline, 1 hardened
		seed   int64
		mprime bool
	}
	var jobs []job
	for _, sys := range experiment.Systems() {
		for mode := 0; mode < 2; mode++ {
			jobs = append(jobs, job{sys: sys, mode: mode, seed: base.BaseSeed, mprime: true})
			for i := 0; i < runs; i++ {
				jobs = append(jobs, job{sys: sys, mode: mode, seed: base.BaseSeed + int64(i)})
			}
		}
	}

	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				var spec experiment.RunSpec
				if j.mprime {
					// m′: the zero-failure, fault-free effort of §4.5.
					spec = experiment.RunSpec{System: j.sys, Lambda: 0, Seed: j.seed, Params: base}
				} else {
					spec = experiment.RunSpec{System: j.sys, Lambda: hostileLambda, Seed: j.seed,
						Params: hostile, Opts: hostileOpts}
				}
				if j.mode == 1 {
					spec.Opts.Harden = discovery.HardenAll()
				}
				rep, res := ObserveRun(spec, DefaultOracleConfig(j.sys))
				mu.Lock()
				c := cells[j.mode][j.sys]
				if j.mprime {
					c.mprime = res.Effort
				} else {
					for _, u := range res.Users {
						if u.Excluded {
							continue
						}
						c.included++
						if u.Reached {
							c.reached++
						}
					}
					c.effort += res.Effort
					c.viol += rep.Total
					c.waived += rep.Waived
					if rep.MaxPurgeLate > c.maxLate {
						c.maxLate = rep.MaxPurgeLate
					}
				}
				done++
				if progress != nil {
					progress(done, len(jobs))
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	t := experiment.Table{
		Title: fmt.Sprintf("Hardening layer: baseline vs hardened under the hunted fault mix (λ=%.2f, %d runs)",
			hostileLambda, runs),
		Header: []string{"system", "m'", "m'(hard)", "F", "F(hard)", "ȳ", "ȳ(hard)",
			"viol", "viol(hard)", "purge-late s", "purge-late s(hard)"},
	}
	f := func(c *cell) string {
		if c.included == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(c.reached)/float64(c.included))
	}
	for _, sys := range experiment.Systems() {
		b, h := cells[0][sys], cells[1][sys]
		t.Rows = append(t.Rows, []string{
			sys.Short(),
			fmt.Sprintf("%d", b.mprime), fmt.Sprintf("%d", h.mprime),
			f(b), f(h),
			fmt.Sprintf("%d", b.effort/runs), fmt.Sprintf("%d", h.effort/runs),
			fmt.Sprintf("%d", b.viol), fmt.Sprintf("%d", h.viol),
			fmt.Sprintf("%.1f", b.maxLate.Sec()), fmt.Sprintf("%.1f", h.maxLate.Sec()),
		})
	}
	t.Notes = append(t.Notes,
		"m' is the zero-failure effort (hardening must leave it unchanged); F/ȳ/viol/purge-late come from the hostile mix",
		"viol counts oracle invariant breaches across all runs; purge-late is the worst RenewAck lateness past lease expiry",
		"residual frodo viol at this λ is environmental: interface outages overlapping the heal-probe window silence even a gated, honest Central")
	return t
}
