package verify

import (
	"strings"
	"testing"

	"repro/internal/discovery"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// The oracle regression golden: a seeded transient-partition scenario —
// long enough to outlast the FRODO Central timeout, so the minority side
// of the 2-party population elects a usurper Central that must demote
// after the heal — produces exactly zero violations for all five
// systems. Deterministic: same seed, same schedule, same count.
func TestOracleCleanOnPartitionScenario(t *testing.T) {
	params := experiment.DefaultParams()
	params.RunDuration = 12000 * sim.Second
	params.Partitions = []netsim.Partition{
		{Start: 3000 * sim.Second, Duration: 4000 * sim.Second, Bisect: true},
	}
	for _, sys := range experiment.Systems() {
		rep, res := ObserveRun(experiment.RunSpec{
			System: sys, Lambda: 0, Seed: 7, Params: params,
		}, DefaultOracleConfig(sys))
		if !rep.Clean() {
			t.Errorf("%v: %s", sys, rep)
			for _, v := range rep.Violations {
				t.Logf("%v: %v", sys, v)
			}
		}
		if cfg := DefaultOracleConfig(sys); cfg.ExpectCentral && rep.ProbesRun != 1 {
			t.Errorf("%v: %d heal probes ran, want 1", sys, rep.ProbesRun)
		}
		if res.ChangeAt == 0 {
			t.Errorf("%v: run produced no change", sys)
		}
	}
}

// The oracle stays clean under the full adversarial stack: Poisson churn
// (permanent departures exercising retired-silence), Gilbert–Elliott
// burst loss and Pareto heavy-tailed delay.
func TestOracleCleanUnderChurnAndBurstLoss(t *testing.T) {
	params := experiment.DefaultParams()
	params.Churn = experiment.Churn{Departures: 0.5, Arrivals: 3}
	opts := experiment.Options{Link: netsim.LinkConfig{
		Burst: netsim.BurstForAverage(0.10, 6),
		Delay: netsim.DelayConfig{Dist: netsim.DelayPareto},
	}}
	for _, sys := range []experiment.System{experiment.UPnP, experiment.Jini1, experiment.Frodo2P} {
		rep, _ := ObserveRun(experiment.RunSpec{
			System: sys, Lambda: 0, Seed: 11, Params: params, Opts: opts,
		}, DefaultOracleConfig(sys))
		if rep.Total != 0 {
			t.Errorf("%v: %s", sys, rep)
			for _, v := range rep.Violations {
				t.Logf("%v: %v", sys, v)
			}
		}
	}
}

// --- Deliberately-broken toy fixtures: each invariant must fire. ---

// A toy protocol claiming a version the Manager never published must
// trip the version bound.
func TestOracleFiresOnVersionBound(t *testing.T) {
	k := sim.New(1)
	const mgr netsim.NodeID = 0
	o := NewOracle(k, mgr, OracleConfig{})
	o.CacheUpdated(0, 3, mgr, 1) // initial discovery: fine
	o.NotePublished()            // manager publishes version 2
	o.CacheUpdated(0, 3, mgr, 2) // consistent: fine
	if rep := o.Report(); rep.Total != 0 {
		t.Fatalf("legal versions flagged: %s", rep)
	}
	o.CacheUpdated(0, 3, mgr, 5) // fabricated future version
	rep := o.Report()
	if rep.ByInvariant[InvVersionBound] != 1 || rep.Total != 1 {
		t.Errorf("version bound did not fire exactly once: %s", rep)
	}
	// A different manager's versions are out of scope.
	o.CacheUpdated(0, 3, 9, 50)
	if rep := o.Report(); rep.Total != 1 {
		t.Errorf("unscoped manager flagged: %s", rep)
	}
}

// A toy holder that acknowledges a renewal of a lease that expired long
// ago — a broken purge — must trip the lease-purge invariant.
func TestOracleFiresOnLeasePurge(t *testing.T) {
	k := sim.New(1)
	nw, err := netsim.New(k, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	user := nw.AddNode("user")
	holder := nw.AddNode("holder")
	sink := netsim.EndpointFunc(func(*netsim.Message) {})
	user.SetEndpoint(sink)
	holder.SetEndpoint(sink)
	o := NewOracle(k, netsim.NoNode, OracleConfig{PurgeSlack: 5 * sim.Second})
	nw.SetTracer(o)

	nw.SendUDP(user.ID, holder.ID, netsim.Outgoing{Kind: "SubscriptionRequest",
		Payload: discovery.Subscribe{Manager: holder.ID, Lease: 10 * sim.Second}})
	k.Run(sim.Second)

	// A renewal inside the lease keeps everything legal.
	k.Run(5 * sim.Second)
	nw.SendUDP(user.ID, holder.ID, netsim.Outgoing{Kind: "SubscriptionRenew",
		Payload: discovery.Renew{Manager: holder.ID, Lease: 10 * sim.Second}})
	k.Run(6 * sim.Second)
	nw.SendUDP(holder.ID, user.ID, netsim.Outgoing{Kind: "RenewAck",
		Payload: discovery.RenewAck{Manager: holder.ID}})
	k.Run(7 * sim.Second)
	if rep := o.Report(); rep.Total != 0 {
		t.Fatalf("legal renewal flagged: %s", rep)
	}

	// The lease ran out at ~16s; an ack at 100s means it was never purged.
	k.Run(100 * sim.Second)
	nw.SendUDP(holder.ID, user.ID, netsim.Outgoing{Kind: "RenewAck",
		Payload: discovery.RenewAck{Manager: holder.ID}})
	k.Run(101 * sim.Second)
	rep := o.Report()
	if rep.ByInvariant[InvLeasePurge] != 1 {
		t.Errorf("lease purge did not fire: %s", rep)
	}
}

// Two toy nodes both claiming the Central role past the heal probe — a
// split brain that never resolves — must trip single-central; so must a
// population with no Central at all.
func TestOracleFiresOnSingleCentral(t *testing.T) {
	splitBrain := func(claimants int) OracleReport {
		k := sim.New(1)
		nw, err := netsim.New(k, netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sink := netsim.EndpointFunc(func(*netsim.Message) {})
		for i := 0; i < 3; i++ {
			nw.AddNode("").SetEndpoint(sink)
		}
		o := NewOracle(k, netsim.NoNode, OracleConfig{
			ExpectCentral: true,
			HealSlack:     100 * sim.Second,
			CentralWindow: 50 * sim.Second,
			Partitions: []netsim.Partition{
				{Start: 10 * sim.Second, Duration: 10 * sim.Second, SideB: []netsim.NodeID{1}},
			},
		})
		nw.SetTracer(o)
		for c := 0; c < claimants; c++ {
			from := netsim.NodeID(c)
			for at := sim.Time(0); at < 200*sim.Second; at += 30 * sim.Second {
				at := at
				k.At(at+sim.Time(c)*sim.Millisecond, func() {
					nw.SendUDP(from, 2, netsim.Outgoing{Kind: "Announce",
						Payload: discovery.Announce{Role: discovery.RoleRegistry, Power: 10}})
				})
			}
		}
		k.Run(200 * sim.Second)
		return o.Report()
	}
	if rep := splitBrain(2); rep.ByInvariant[InvSingleCentral] != 1 {
		t.Errorf("persistent split-brain did not fire: %s", rep)
	}
	if rep := splitBrain(0); rep.ByInvariant[InvSingleCentral] != 1 {
		t.Errorf("missing Central did not fire: %s", rep)
	}
	if rep := splitBrain(1); rep.ByInvariant[InvSingleCentral] != 0 {
		t.Errorf("healthy single Central flagged: %s", rep)
	}
}

// A zombie timer transmitting from a retired node slot must trip
// retired-silence; frames within the grace window (the pending
// redundancy train) must not.
func TestOracleFiresOnRetiredSilence(t *testing.T) {
	k := sim.New(1)
	nw, err := netsim.New(k, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	a.SetEndpoint(netsim.EndpointFunc(func(*netsim.Message) {}))
	o := NewOracle(k, netsim.NoNode, OracleConfig{RetireGrace: 10 * sim.Second})
	nw.SetTracer(o)

	nw.Retire(b.ID)
	// Inside the grace window: the tail of a redundancy train, tolerated.
	k.Run(5 * sim.Second)
	nw.SendUDP(b.ID, a.ID, netsim.Outgoing{Kind: "straggler"})
	if rep := o.Report(); rep.Total != 0 {
		t.Fatalf("grace-window frame flagged: %s", rep)
	}
	// Beyond the grace: a zombie.
	k.Run(60 * sim.Second)
	nw.SendUDP(b.ID, a.ID, netsim.Outgoing{Kind: "zombie"})
	rep := o.Report()
	if rep.ByInvariant[InvRetiredSilence] != 1 {
		t.Errorf("retired silence did not fire: %s", rep)
	}
	// Slot recycled: the new tenant transmits freely.
	c := nw.AddNode("c")
	nw.SendUDP(c.ID, a.ID, netsim.Outgoing{Kind: "fresh"})
	k.Run(61 * sim.Second)
	if rep := o.Report(); rep.ByInvariant[InvRetiredSilence] != 1 {
		t.Errorf("recycled tenant flagged: %s", rep)
	}
}

// A heal probe scheduled past the run deadline never fires; the report
// must expose that instead of reading as a clean audit.
func TestOracleReportsUnranProbes(t *testing.T) {
	params := experiment.DefaultParams() // 5400s: too short for heal+HealSlack
	params.Partitions = []netsim.Partition{
		{Start: 2000 * sim.Second, Duration: 1000 * sim.Second, Bisect: true},
	}
	rep, _ := ObserveRun(experiment.RunSpec{
		System: experiment.Frodo2P, Lambda: 0, Seed: 3, Params: params,
	}, DefaultOracleConfig(experiment.Frodo2P))
	if rep.ProbesScheduled != 1 || rep.ProbesRun != 0 {
		t.Fatalf("probes scheduled/run = %d/%d, want 1/0", rep.ProbesScheduled, rep.ProbesRun)
	}
	if rep.Clean() {
		t.Error("report with an un-run probe claims Clean")
	}
}

// The oracle must not disturb the run it observes: metrics with and
// without an attached oracle are identical.
func TestOracleObservationIsNonInvasive(t *testing.T) {
	params := experiment.DefaultParams()
	params.Partitions = []netsim.Partition{
		{Start: 1000 * sim.Second, Duration: 500 * sim.Second, Bisect: true},
	}
	spec := experiment.RunSpec{System: experiment.Frodo2P, Lambda: 0.3, Seed: 5, Params: params}
	plain := experiment.Run(spec)
	_, observed := ObserveRun(spec, DefaultOracleConfig(experiment.Frodo2P))
	if plain.Effort != observed.Effort || plain.ChangeAt != observed.ChangeAt ||
		len(plain.Users) != len(observed.Users) {
		t.Fatalf("oracle perturbed the run: %+v vs %+v", plain, observed)
	}
	for i := range plain.Users {
		if plain.Users[i] != observed.Users[i] {
			t.Fatalf("user outcome %d diverged: %+v vs %+v", i, plain.Users[i], observed.Users[i])
		}
	}
}

// A breach inside a fault-conditional bound is waived — visible in the
// report but not a violation; the same breach outside the bound counts.
func TestOracleWaivesBoundedBreaches(t *testing.T) {
	k := sim.New(1)
	nw, err := netsim.New(k, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	user := nw.AddNode("user")
	holder := nw.AddNode("holder")
	sink := netsim.EndpointFunc(func(*netsim.Message) {})
	user.SetEndpoint(sink)
	holder.SetEndpoint(sink)
	o := NewOracle(k, netsim.NoNode, OracleConfig{
		PurgeSlack: 5 * sim.Second,
		Bounds: []FaultBound{{Invariant: InvLeasePurge, Start: 50 * sim.Second,
			End: 200 * sim.Second, Reason: "scheduled outage"}},
	})
	nw.SetTracer(o)

	subscribe := func() {
		nw.SendUDP(user.ID, holder.ID, netsim.Outgoing{Kind: "SubscriptionRequest",
			Payload: discovery.Subscribe{Manager: holder.ID, Lease: 10 * sim.Second}})
	}
	ack := func() {
		nw.SendUDP(holder.ID, user.ID, netsim.Outgoing{Kind: "RenewAck",
			Payload: discovery.RenewAck{Manager: holder.ID}})
	}

	subscribe()
	k.Run(100 * sim.Second)
	ack() // ~90s past expiry, inside the bound: waived
	k.Run(101 * sim.Second)
	rep := o.Report()
	if rep.Total != 0 || rep.Waived != 1 {
		t.Fatalf("bounded breach: total=%d waived=%d, want 0/1 (%s)", rep.Total, rep.Waived, rep)
	}
	if len(rep.WaivedDetails) != 1 || !strings.Contains(rep.WaivedDetails[0].Detail, "scheduled outage") {
		t.Errorf("waiver reason missing from details: %v", rep.WaivedDetails)
	}
	if rep.MaxPurgeLate < 80*sim.Second {
		t.Errorf("MaxPurgeLate = %v, want the ~90s lateness recorded even for a waived breach", rep.MaxPurgeLate)
	}

	subscribe() // fresh lease at 101s, expires ~111s
	k.Run(300 * sim.Second)
	ack() // far past expiry AND past the bound's end: a real violation
	k.Run(301 * sim.Second)
	rep = o.Report()
	if rep.Total != 1 || rep.ByInvariant[InvLeasePurge] != 1 {
		t.Fatalf("out-of-bound breach not counted: %s", rep)
	}
	if rep.Waived != 1 {
		t.Errorf("waived = %d changed, want still 1", rep.Waived)
	}
}

// A Bye from the renewer retracts its leases at the holder: a later ack
// for that lease no longer proves a missed purge.
func TestOracleByeRetractsLease(t *testing.T) {
	k := sim.New(1)
	nw, err := netsim.New(k, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	user := nw.AddNode("user")
	holder := nw.AddNode("holder")
	sink := netsim.EndpointFunc(func(*netsim.Message) {})
	user.SetEndpoint(sink)
	holder.SetEndpoint(sink)
	o := NewOracle(k, netsim.NoNode, OracleConfig{PurgeSlack: 5 * sim.Second})
	nw.SetTracer(o)

	nw.SendUDP(user.ID, holder.ID, netsim.Outgoing{Kind: "SubscriptionRequest",
		Payload: discovery.Subscribe{Manager: holder.ID, Lease: 10 * sim.Second}})
	k.Run(2 * sim.Second)
	nw.SendUDP(user.ID, holder.ID, netsim.Outgoing{Kind: "Bye",
		Payload: discovery.Bye{Role: discovery.RoleUser}})
	k.Run(100 * sim.Second)
	nw.SendUDP(holder.ID, user.ID, netsim.Outgoing{Kind: "RenewAck",
		Payload: discovery.RenewAck{Manager: holder.ID}})
	k.Run(101 * sim.Second)
	if rep := o.Report(); rep.Total != 0 {
		t.Fatalf("ack after Bye flagged: %s", rep)
	}
}
