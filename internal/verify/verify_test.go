package verify

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/netsim"
)

// FRODO satisfies the Configuration Update Principles across the whole
// single-outage grid: whenever connectivity is restored with enough time
// left, every User eventually regains consistency. This reproduces the
// paper's claim that "FRODO is the first service discovery protocol that
// provides guarantees" [24].
func TestFrodoSatisfiesConfigurationUpdatePrinciples(t *testing.T) {
	for _, sys := range []experiment.System{experiment.Frodo3P, experiment.Frodo2P} {
		res := Check(sys, DefaultGrid())
		if res.Scenarios == 0 {
			t.Fatalf("%v: empty grid", sys)
		}
		for _, v := range res.Violations {
			t.Errorf("%v", v)
		}
		if !res.Holds() {
			t.Errorf("%v: %d/%d scenarios violate the principles", sys,
				len(res.Violations), res.Scenarios)
		}
	}
}

// First-generation systems do not provide the guarantee: the grid finds
// scenarios in which a User stays inconsistent forever although all
// nodes recovered — reproducing Dabrowski and Mills' finding reported in
// §2 ("first-generation service discovery systems do not provide
// guarantees of correct behavior").
func TestFirstGenerationSystemsViolatePrinciples(t *testing.T) {
	for _, sys := range []experiment.System{experiment.UPnP, experiment.Jini1, experiment.Jini2} {
		res := Check(sys, DefaultGrid())
		if res.Holds() {
			t.Errorf("%v: expected guarantee violations, found none in %d scenarios",
				sys, res.Scenarios)
		}
		t.Logf("%v: %d violations across %d scenarios", sys, len(res.Violations), res.Scenarios)
	}
}

// The canonical violation shape: the silent missed-notification class
// (the §6.2 scenario generalized). The violating scenarios must include
// an outage overlapping the change with the subscription surviving.
func TestUPnPViolationsIncludeMissedNotificationClass(t *testing.T) {
	res := Check(experiment.UPnP, DefaultGrid())
	found := false
	for _, v := range res.Violations {
		overlapsChange := v.Failure.Start <= 1000e9 && v.Failure.End() >= 1000e9
		short := v.Failure.Duration <= 900e9 // too short to expire leases
		if overlapsChange && short {
			found = true
			break
		}
	}
	if !found {
		t.Error("no short outage-across-change violation found; the §6.2 class should appear")
	}
}

func TestGridSkipsRegistryTargetForUPnP(t *testing.T) {
	grid := DefaultGrid()
	grid.Targets = []Target{TargetRegistry}
	res := Check(experiment.UPnP, grid)
	if res.Scenarios != 0 {
		t.Errorf("UPnP has no registry; %d scenarios ran", res.Scenarios)
	}
}

func TestGridRespectsRecoverySlack(t *testing.T) {
	grid := DefaultGrid()
	grid.Durations = append(grid.Durations, grid.Horizon) // never fits
	res := Check(experiment.Frodo3P, grid)
	for _, v := range res.Violations {
		if v.Failure.End()+4200e9 > 12000e9 {
			t.Errorf("scenario without recovery slack was checked: %v", v)
		}
	}
}

func TestTargetNodeMapping(t *testing.T) {
	cases := []struct {
		sys    experiment.System
		target Target
		want   netsim.NodeID
		ok     bool
	}{
		{experiment.UPnP, TargetManager, 0, true},
		{experiment.UPnP, TargetUser, 1, true},
		{experiment.UPnP, TargetRegistry, 0, false},
		{experiment.Jini2, TargetManager, 2, true},
		{experiment.Frodo2P, TargetManager, 2, true},
		{experiment.Frodo2P, TargetUser, 3, true},
		{experiment.Frodo2P, TargetRegistry, 0, true},
	}
	for _, c := range cases {
		got, ok := targetNode(c.sys, c.target)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("targetNode(%v, %v) = %v,%v want %v,%v", c.sys, c.target, got, ok, c.want, c.ok)
		}
	}
}
