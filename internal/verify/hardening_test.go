package verify

import (
	"strconv"
	"testing"

	"repro/internal/experiment"
)

// One hostile run per mode per system is enough to pin the figure's
// structural guarantees: every system appears, the column layout is
// stable, the progress callback sees every job exactly once, and — the
// property the whole PR leans on — m′ is byte-identical across modes,
// because a disabled-then-enabled hardening layer must not tax the
// fault-free path (λ=0 draws no extra RNG, sends no extra frames).
func TestFigureHardeningShapeAndFaultFreeParity(t *testing.T) {
	var calls, lastDone, lastTotal int
	tbl := FigureHardening(experiment.DefaultParams(), 1, 8, func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
	})

	systems := experiment.Systems()
	if len(tbl.Rows) != len(systems) {
		t.Fatalf("rows = %d, want one per system (%d)", len(tbl.Rows), len(systems))
	}
	if len(tbl.Header) != 11 {
		t.Fatalf("header has %d columns, want 11: %v", len(tbl.Header), tbl.Header)
	}
	// Jobs per system: 1 m′ + 1 hostile run, in each of the two modes.
	wantJobs := len(systems) * 2 * 2
	if calls != wantJobs || lastDone != wantJobs || lastTotal != wantJobs {
		t.Errorf("progress saw %d calls (last %d/%d), want %d jobs", calls, lastDone, lastTotal, wantJobs)
	}

	for i, row := range tbl.Rows {
		if row[0] != systems[i].Short() {
			t.Errorf("row %d system = %q, want %q", i, row[0], systems[i].Short())
		}
		if row[1] != row[2] {
			t.Errorf("%s: m' %s != hardened m' %s — hardening taxed the fault-free path", row[0], row[1], row[2])
		}
		mprime, err := strconv.Atoi(row[1])
		if err != nil || mprime <= 0 {
			t.Errorf("%s: m' = %q, want a positive count", row[0], row[1])
		}
		for col, v := range row[1:] {
			if v == "" || v == "n/a" {
				t.Errorf("%s: column %q empty (%q) — hostile runs produced no users?", row[0], tbl.Header[col+1], v)
			}
		}
	}
}
