package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// A run whose Users all churned out must not report a negative recovery
// window (regression: all-excluded runs left end=0 with end−C < 0) and
// aggregates to "no data", not zero effectiveness.
func TestSummarizeAllExcluded(t *testing.T) {
	r := RunResult{
		ChangeAt: 100 * sim.Second,
		Deadline: 5400 * sim.Second,
		Effort:   3,
		Users: []UserOutcome{
			{User: 1, Excluded: true},
			{User: 2, Excluded: true},
		},
	}
	s := Summarize(r)
	if s.Counted != 0 || s.Reached != 0 {
		t.Errorf("counted/reached = %d/%d, want 0/0", s.Counted, s.Reached)
	}
	if s.Window < 0 {
		t.Errorf("window = %v, want non-negative", s.Window)
	}
	if len(s.Resp) != 0 {
		t.Errorf("excluded users produced %d responsiveness samples", len(s.Resp))
	}
	c := NewCell(0, 1)
	c.Add(0, s)
	if c.AvgWindow() < 0 {
		t.Errorf("AvgWindow = %v, want non-negative", c.AvgWindow())
	}
	p := c.Point(7, 7)
	if !math.IsNaN(p.Effectiveness) {
		t.Errorf("all-excluded effectiveness = %v, want NaN", p.Effectiveness)
	}
}

// A mixed run keeps the window semantics of the pre-churn code: all
// counted Users reached ⇒ window ends at the last consistency time.
func TestSummarizeWindowMixedExclusion(t *testing.T) {
	r := RunResult{
		ChangeAt: 100 * sim.Second,
		Deadline: 5400 * sim.Second,
		Users: []UserOutcome{
			{User: 1, Reached: true, At: 101 * sim.Second},
			{User: 2, Excluded: true},
			{User: 3, Reached: true, At: 140 * sim.Second},
		},
	}
	s := Summarize(r)
	if s.Counted != 2 || s.Reached != 2 {
		t.Fatalf("counted/reached = %d/%d, want 2/2", s.Counted, s.Reached)
	}
	if s.Window != 40*sim.Second {
		t.Errorf("window = %v, want 40s", s.Window)
	}
	// An unreached counted User pins the window to the deadline.
	r.Users[2] = UserOutcome{User: 3, Reached: false}
	if s := Summarize(r); s.Window != 5300*sim.Second {
		t.Errorf("unreached window = %v, want 5300s", s.Window)
	}
}
