package metrics

import (
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// RunSummary is the per-run digest the sweep aggregation retains instead
// of the full RunResult: a handful of counters plus the responsiveness
// samples. Everything that feeds a mean is folded through streaming
// (Welford) accumulators at aggregation time; the responsiveness samples
// are kept because the paper's R(λ) is a median — an order statistic that
// cannot be streamed in O(1).
type RunSummary struct {
	// Effort is y(i,λ), the counted discovery sends in the recovery window.
	Effort int
	// Reached and Counted tally the non-excluded Users that reached the
	// target version before the deadline, and all non-excluded Users.
	Reached, Counted int
	// Window is the recovery-window length min(t_allConsistent, D) − C.
	Window sim.Duration
	// Resp holds the per-User responsiveness samples 1 − L.
	Resp []float64
}

// Summarize digests one run into the retained per-cell form.
func Summarize(r RunResult) RunSummary {
	return SummarizeInto(r, nil)
}

// SummarizeInto digests one run, appending the responsiveness samples to
// resp (which may be nil or a recycled slice truncated by the caller) so
// repeated summarization into the same cell slot reuses its storage.
func SummarizeInto(r RunResult, resp []float64) RunSummary {
	s := RunSummary{Effort: r.Effort, Resp: r.AppendResponsivenesses(resp)}
	end := r.Deadline
	all := true
	var last sim.Time
	for _, u := range r.Users {
		if u.Excluded {
			continue
		}
		s.Counted++
		if u.Reached && u.At < r.Deadline {
			s.Reached++
		}
		if !u.Reached {
			all = false
			continue
		}
		if u.At > last {
			last = u.At
		}
	}
	if s.Counted == 0 {
		// Every User churned out: there was no recovery to measure.
		return s
	}
	if all {
		end = last
	}
	s.Window = end - r.ChangeAt
	return s
}

// Cell accumulates one (system, λ) grid cell of a sweep. Summaries are
// slotted by run index so that aggregation is bit-identical regardless of
// the order workers complete runs in: floating-point folds happen in run
// order at Point time, never in arrival order.
type Cell struct {
	Lambda float64
	perRun []RunSummary
	have   []bool
	filled int
}

// NewCell creates an accumulator for up to runs runs at failure rate
// lambda. Adding beyond runs grows the cell.
func NewCell(lambda float64, runs int) *Cell {
	if runs < 0 {
		runs = 0
	}
	return &Cell{Lambda: lambda, perRun: make([]RunSummary, runs), have: make([]bool, runs)}
}

// Add slots one run's summary at its run index.
func (c *Cell) Add(run int, s RunSummary) {
	c.grow(run)
	if !c.have[run] {
		c.filled++
	}
	c.perRun[run] = s
	c.have[run] = true
}

// AddResult summarizes one run straight into its slot, recycling the
// slot's previous responsiveness storage — the allocation-free path the
// sweep aggregation feeds.
func (c *Cell) AddResult(run int, r RunResult) {
	c.grow(run)
	if !c.have[run] {
		c.filled++
	}
	c.perRun[run] = SummarizeInto(r, c.perRun[run].Resp[:0])
	c.have[run] = true
}

func (c *Cell) grow(run int) {
	for run >= len(c.perRun) {
		c.perRun = append(c.perRun, RunSummary{})
		c.have = append(c.have, false)
	}
}

// Runs reports how many summaries have been added.
func (c *Cell) Runs() int { return c.filled }

// MinPositiveEffort reports the smallest positive effort across the
// cell's runs — the measured m′ when the cell is the λ=0 column — with
// the same fallback of 1 as MeasureMPrime.
func (c *Cell) MinPositiveEffort() int {
	min := math.MaxInt
	for i, s := range c.perRun {
		if c.have[i] && s.Effort > 0 && s.Effort < min {
			min = s.Effort
		}
	}
	if min == math.MaxInt {
		return 1
	}
	return min
}

// AvgWindow reports the mean recovery-window length across the cell's
// runs, 0 when empty.
func (c *Cell) AvgWindow() sim.Duration {
	var sum sim.Duration
	n := 0
	for i, s := range c.perRun {
		if c.have[i] {
			sum += s.Window
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Duration(n)
}

// Point aggregates the cell into the paper's metrics. m is the global
// minimum zero-failure effort; mPrime the system's own.
func (c *Cell) Point(m, mPrime int) Point {
	if c.filled == 0 {
		return Point{Lambda: c.Lambda, Responsiveness: math.NaN(), Effectiveness: math.NaN(),
			Efficiency: math.NaN(), Degradation: math.NaN()}
	}
	p := Point{Lambda: c.Lambda, Runs: c.filled}

	var resp []float64
	reached, total := 0, 0
	var eff, deg, perRunF stats.Welford
	for i, s := range c.perRun {
		if !c.have[i] {
			continue
		}
		resp = append(resp, s.Resp...)
		reached += s.Reached
		total += s.Counted
		if s.Counted > 0 {
			perRunF.Add(float64(s.Reached) / float64(s.Counted))
		}
		if s.Effort > 0 {
			eff.Add(float64(m) / float64(s.Effort))
			deg.Add(float64(mPrime) / float64(s.Effort))
		} else {
			// No effort spent can only mean nothing was propagated at
			// all; treat as fully efficient to avoid division by zero.
			eff.Add(1)
			deg.Add(1)
		}
	}
	p.Responsiveness = stats.Median(resp)
	if total > 0 {
		p.Effectiveness = float64(reached) / float64(total)
	} else {
		// Every User churned out: there are no U(i,j) samples at all,
		// which is "no data", not zero effectiveness.
		p.Effectiveness = math.NaN()
	}
	p.EffectivenessCI = perRunF.CI95()
	p.Efficiency = stats.Clamp(eff.Mean(), 0, 1)
	p.Degradation = stats.Clamp(deg.Mean(), 0, 1)
	return p
}
