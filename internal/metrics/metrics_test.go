package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func run(changeAt, deadline sim.Time, effort int, userTimes ...sim.Time) RunResult {
	r := RunResult{ChangeAt: changeAt, Deadline: deadline, Effort: effort}
	for i, at := range userTimes {
		if at < 0 {
			r.Users = append(r.Users, UserOutcome{User: 0, Reached: false})
			continue
		}
		_ = i
		r.Users = append(r.Users, UserOutcome{User: 0, Reached: true, At: at})
	}
	return r
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestResponsivenessDefinition(t *testing.T) {
	// C=1000, D=5400 => available 4400. U=2100 => L=0.25 => 1-L=0.75.
	r := run(1000*sim.Second, 5400*sim.Second, 7, 2100*sim.Second)
	got := r.Responsivenesses()
	if len(got) != 1 || !almost(got[0], 0.75) {
		t.Errorf("responsiveness = %v, want [0.75]", got)
	}
}

func TestResponsivenessUnreachedIsZero(t *testing.T) {
	r := run(1000*sim.Second, 5400*sim.Second, 7, -1)
	if got := r.Responsivenesses(); got[0] != 0 {
		t.Errorf("unreached user responsiveness = %v, want 0", got[0])
	}
}

func TestComputeEffectiveness(t *testing.T) {
	runs := []RunResult{
		run(1000*sim.Second, 5400*sim.Second, 7, 1001*sim.Second, -1),
		run(1000*sim.Second, 5400*sim.Second, 7, 1001*sim.Second, 1002*sim.Second),
	}
	p := Compute(runs, 7, 7)
	if !almost(p.Effectiveness, 0.75) {
		t.Errorf("F = %v, want 0.75", p.Effectiveness)
	}
	if p.Runs != 2 {
		t.Errorf("Runs = %d", p.Runs)
	}
}

func TestComputeResponsivenessIsMedian(t *testing.T) {
	// Three users at 1-L = 1.0, 0.5, 0.0 => median 0.5. The mean would be
	// 0.5 too, so add an outlier pattern: 1.0, 1.0, 0.0, 0.0, 0.5 =>
	// median 0.5, mean 0.5... use distinct: 0.9, 0.8, 0.1 => median 0.8.
	c, d := 0*sim.Second, 100*sim.Second
	runs := []RunResult{run(c, d, 7,
		10*sim.Second, // 1-L = 0.9
		20*sim.Second, // 0.8
		90*sim.Second, // 0.1
	)}
	p := Compute(runs, 7, 7)
	if !almost(p.Responsiveness, 0.8) {
		t.Errorf("R = %v, want median 0.8", p.Responsiveness)
	}
}

func TestComputeEfficiencyAndDegradation(t *testing.T) {
	runs := []RunResult{
		run(0, 100*sim.Second, 14, 1*sim.Second),
		run(0, 100*sim.Second, 28, 1*sim.Second),
	}
	p := Compute(runs, 7, 14)
	// E = mean(7/14, 7/28) = mean(0.5, 0.25) = 0.375
	if !almost(p.Efficiency, 0.375) {
		t.Errorf("E = %v, want 0.375", p.Efficiency)
	}
	// G = mean(14/14, 14/28) = 0.75
	if !almost(p.Degradation, 0.75) {
		t.Errorf("G = %v, want 0.75", p.Degradation)
	}
}

func TestComputeZeroEffort(t *testing.T) {
	p := Compute([]RunResult{run(0, 100*sim.Second, 0, -1)}, 7, 7)
	if p.Efficiency != 1 || p.Degradation != 1 {
		t.Errorf("zero-effort run E=%v G=%v, want 1", p.Efficiency, p.Degradation)
	}
}

func TestComputeEmpty(t *testing.T) {
	p := Compute(nil, 7, 7)
	if !math.IsNaN(p.Responsiveness) || !math.IsNaN(p.Effectiveness) {
		t.Error("empty compute should be NaN")
	}
}

func TestCurveAverage(t *testing.T) {
	c := Curve{System: "x", Points: []Point{
		{Responsiveness: 1.0, Effectiveness: 1.0, Degradation: 1.0},
		{Responsiveness: 0.5, Effectiveness: 0.8, Degradation: 0.6},
	}}
	r, f, g := c.Average()
	if !almost(r, 0.75) || !almost(f, 0.9) || !almost(g, 0.8) {
		t.Errorf("averages = %v %v %v", r, f, g)
	}
}

func TestMeasureMPrime(t *testing.T) {
	runs := []RunResult{
		run(0, sim.Second, 9),
		run(0, sim.Second, 7),
		run(0, sim.Second, 8),
	}
	if got := MeasureMPrime(runs); got != 7 {
		t.Errorf("m' = %d, want 7", got)
	}
	if got := MeasureMPrime(nil); got != 1 {
		t.Errorf("m' fallback = %d, want 1", got)
	}
}

// Property: responsiveness samples are always within [0,1] and a user
// reaching consistency strictly earlier never scores lower.
func TestQuickResponsivenessBounded(t *testing.T) {
	f := func(uRaw, cRaw uint32) bool {
		c := sim.Time(cRaw % 2700)
		d := c + 2700*sim.Second
		u := c + sim.Time(uRaw)%(d-c)
		r := run(c, d, 7, u)
		v := r.Responsivenesses()[0]
		if v < 0 || v > 1 {
			return false
		}
		earlier := run(c, d, 7, c+(u-c)/2)
		return earlier.Responsivenesses()[0] >= v-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
