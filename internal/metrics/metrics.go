// Package metrics implements the NIST Update Metrics (§4.5) and the
// paper's Efficiency Degradation refinement, exactly as defined:
//
//	Update Responsiveness R(λ): median over all runs i and Users j of
//	    1 − L(i,j,λ), with L = (U − C)/(D − C); a User that never
//	    reaches consistency before the deadline scores 0.
//	Update Effectiveness F(λ): the fraction of (i,j) with U < D.
//	Update Efficiency E(λ): mean over runs of m/y, with m the minimum
//	    zero-failure effort across all systems (m = 7 in the paper).
//	Efficiency Degradation G(λ): mean over runs of m′/y, with m′ the
//	    system's own zero-failure effort.
package metrics

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// UserOutcome is one User's result in one run.
type UserOutcome struct {
	User netsim.NodeID
	// Reached reports whether the User obtained the post-change version
	// before the deadline; At is when.
	Reached bool
	At      sim.Time
	// Excluded marks a User that churned out of the network and was still
	// absent at the deadline without having reached consistency. Such
	// Users contribute no U(i,j) sample: they left, so their staleness is
	// departure, not a protocol failure.
	Excluded bool
}

// RunResult is the raw observation of a single simulation run.
type RunResult struct {
	Lambda   float64
	Seed     int64
	ChangeAt sim.Time // C(i): when the service changed
	Deadline sim.Time // D: the end of the run
	Users    []UserOutcome
	// Effort is y(i,λ): counted discovery-layer sends in the recovery
	// window [C, min(t_allConsistent, D)] (+ the in-flight pad).
	Effort int
	// Diagnostics, not part of the metrics.
	TotalDiscoverySends int
	TotalTransport      int
}

// Responsivenesses returns the per-User responsiveness samples 1 − L of
// one run (0 for Users that never reached consistency). Excluded
// (churned-out) Users contribute no sample.
func (r RunResult) Responsivenesses() []float64 {
	return r.AppendResponsivenesses(make([]float64, 0, len(r.Users)))
}

// AppendResponsivenesses appends the per-User responsiveness samples to
// dst and returns the extended slice — the allocation-free variant the
// sweep aggregation uses to recycle each cell slot's sample storage
// across repeated summarization.
func (r RunResult) AppendResponsivenesses(dst []float64) []float64 {
	avail := float64(r.Deadline - r.ChangeAt)
	for _, u := range r.Users {
		if u.Excluded {
			continue
		}
		if !u.Reached || u.At >= r.Deadline || avail <= 0 {
			dst = append(dst, 0)
			continue
		}
		l := float64(u.At-r.ChangeAt) / avail
		dst = append(dst, stats.Clamp(1-l, 0, 1))
	}
	return dst
}

// Point is the aggregated metric values of one system at one failure
// rate.
type Point struct {
	Lambda         float64
	Runs           int
	Responsiveness float64 // R(λ)
	Effectiveness  float64 // F(λ)
	Efficiency     float64 // E(λ)
	Degradation    float64 // G(λ)
	// EffectivenessCI is the 95% confidence half-width of the
	// per-run effectiveness mean (not part of the paper's metrics;
	// reported so sweep consumers can judge noise).
	EffectivenessCI float64
}

// Compute aggregates the runs of one (system, λ) cell. m is the global
// minimum zero-failure effort; mPrime the system's own. It is the
// retained-raw counterpart of Cell.Point and routes through the same
// accumulation so both paths agree exactly.
func Compute(runs []RunResult, m, mPrime int) Point {
	var lambda float64
	if len(runs) > 0 {
		lambda = runs[0].Lambda
	}
	c := NewCell(lambda, len(runs))
	for i, r := range runs {
		c.AddResult(i, r)
	}
	return c.Point(m, mPrime)
}

// Curve is a metric series over failure rates for one system — one line
// in the paper's Figures 4–7.
type Curve struct {
	System string
	Points []Point
}

// Average returns the Table 5-style averages of the curve across all
// failure rates.
func (c Curve) Average() (responsiveness, effectiveness, degradation float64) {
	var r, f, g []float64
	for _, p := range c.Points {
		r = append(r, p.Responsiveness)
		f = append(f, p.Effectiveness)
		g = append(g, p.Degradation)
	}
	return stats.Mean(r), stats.Mean(f), stats.Mean(g)
}

// MeasureMPrime derives a system's m′ from its zero-failure runs: the
// smallest observed effort. The paper fixes m′ per system (7, 14, 15, 7,
// 7); measuring it keeps the metric self-calibrating while the tests
// assert the paper's values are reproduced.
func MeasureMPrime(zeroFailureRuns []RunResult) int {
	min := math.MaxInt
	for _, r := range zeroFailureRuns {
		if r.Effort > 0 && r.Effort < min {
			min = r.Effort
		}
	}
	if min == math.MaxInt {
		return 1
	}
	return min
}
