package core

import "repro/internal/sim"

// The experiment constants shared by all three protocol models (§5).
const (
	// RegistrationLease is "the registration lease period for a discovered
	// service to remain valid in the cache of the Registry or User ...
	// 1800s for all three protocols".
	RegistrationLease = 1800 * sim.Second

	// SubscriptionLease is the 1800s subscription lease used by all
	// systems.
	SubscriptionLease = 1800 * sim.Second

	// RenewFraction is when a lease holder renews, as a fraction of the
	// lease period — identical across systems so the choice cannot bias
	// the comparison. Renewals happen near the lease end (90%), matching
	// the paper's observation that SRN2's "longer delay in update
	// notification [comes from] the dependency on the subscription lease
	// period": renewal-driven repairs are lease-period-grained. A lost
	// renewal leads to a purge and a PR3/PR4 recovery, which is exactly
	// the purge-rediscovery regime the paper describes at higher failure
	// rates.
	RenewFraction = 0.9

	// RunDuration is the simulation length (§5 Step 5).
	RunDuration = 5400 * sim.Second

	// BootWindow is the interval in which nodes start up; discovery
	// completes "within the first 100s without interface failure".
	BootWindow = 5 * sim.Second
)

// RenewInterval derives the periodic renewal interval for a lease.
func RenewInterval(lease sim.Duration) sim.Duration {
	return sim.Duration(RenewFraction * float64(lease))
}

// Announcement trains (§5 Step 4).
const (
	UPnPAnnouncePeriod = 1800 * sim.Second
	UPnPAnnounceCopies = 6

	JiniAnnouncePeriod = 120 * sim.Second
	JiniAnnounceCopies = 6

	FrodoAnnouncePeriod = 1200 * sim.Second
	FrodoAnnounceCopies = 2
)

// FRODO's selective retransmission parameters ("we deliberately model
// FRODO parameters to reflect resource-awareness by not requiring all
// messages to be retransmitted and acknowledged (only a selected few)").
// The paper does not publish the schedule; 3 transmissions 10s apart is
// resource-lean while still riding out sub-30s glitches.
var (
	// FrodoNotifyRetry backs SRN1 for ServiceUpdate notifications.
	FrodoNotifyRetry = RetryPolicy{Interval: 10 * sim.Second, Limit: 3}
	// FrodoControlRetry backs registration and subscription requests.
	FrodoControlRetry = RetryPolicy{Interval: 10 * sim.Second, Limit: 3}
	// FrodoCriticalRetry is the unlimited SRC1 schedule used in
	// critical-update mode.
	FrodoCriticalRetry = RetryPolicy{Interval: 10 * sim.Second, Limit: 0}
)
