package core

import "repro/internal/sim"

// Backoff computes capped decorrelated-jitter delays off the kernel RNG
// (AWS-style: next = min(cap, uniform[base, 3·prev))), so retries that
// collided once are spread apart on the next attempt instead of colliding
// forever. All randomness comes from the kernel's seeded RNG, so hardened
// runs stay deterministic per seed. The zero draws happen only when Next
// is called — an idle Backoff perturbs nothing.
type Backoff struct {
	k    *sim.Kernel
	base sim.Duration
	cap  sim.Duration
	prev sim.Duration
}

// NewBackoff builds a schedule starting at base and never exceeding cap.
func NewBackoff(k *sim.Kernel, base, cap sim.Duration) *Backoff {
	b := &Backoff{}
	b.Init(k, base, cap)
	return b
}

// Init prepares an embedded Backoff in place; see NewBackoff.
func (b *Backoff) Init(k *sim.Kernel, base, cap sim.Duration) {
	if base <= 0 || cap < base {
		panic("core: backoff needs 0 < base <= cap")
	}
	b.k = k
	b.base = base
	b.cap = cap
	b.prev = 0
}

// Next draws the next delay. The first call after Reset returns a value
// in [base, 2·base); later calls decorrelate off the previous delay.
func (b *Backoff) Next() sim.Duration {
	hi := 3 * b.prev
	if b.prev == 0 {
		hi = 2 * b.base
	}
	if hi > b.cap {
		hi = b.cap
	}
	d := b.base
	if hi > b.base {
		d = b.k.UniformDuration(b.base, hi)
	}
	b.prev = d
	return d
}

// Reset returns the schedule to its initial state (next delay near base).
func (b *Backoff) Reset() { b.prev = 0 }
