package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTechniqueSetOperations(t *testing.T) {
	s := SRN1 | SRN2 | PR1
	if !s.Has(SRN1) || !s.Has(SRN2|PR1) {
		t.Error("Has failed on present techniques")
	}
	if s.Has(PR5) || s.Has(SRN1|PR5) {
		t.Error("Has reported absent technique")
	}
	if s.Without(PR1).Has(PR1) {
		t.Error("Without did not remove")
	}
	if !s.With(PR5).Has(PR5) {
		t.Error("With did not add")
	}
	if s.Without(PR1) != SRN1|SRN2 {
		t.Errorf("Without = %v", s.Without(PR1))
	}
}

func TestTechniqueSetString(t *testing.T) {
	if got := TechniqueSet(0).String(); got != "none" {
		t.Errorf("empty set String = %q", got)
	}
	s := SRN2 | PR1 | PR5
	str := s.String()
	for _, want := range []string{"SRN2", "PR1", "PR5"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
	if strings.Contains(str, "SRC1") {
		t.Errorf("String() = %q contains disabled technique", str)
	}
}

func TestTable2TechniqueRows(t *testing.T) {
	// UPnP: SRC1, SRN1 (TCP-dependent) + PR4, PR5.
	u := UPnPTechniques()
	if !u.Has(SRC1|SRN1|PR4|PR5) || u.Has(SRN2) || u.Has(PR1) || u.Has(PR2) || u.Has(PR3) {
		t.Errorf("UPnP techniques = %v", u)
	}
	// Jini: SRN1, SRC1 (TCP-dependent), SRC2 + PR1, PR2, PR3.
	j := JiniTechniques()
	if !j.Has(SRC1|SRN1|SRC2|PR1|PR2|PR3) || j.Has(SRN2) || j.Has(PR4) || j.Has(PR5) {
		t.Errorf("Jini techniques = %v", j)
	}
	// FRODO is the only protocol with SRN2 (§4.4).
	f3, f2 := FrodoThreePartyTechniques(), FrodoTwoPartyTechniques()
	if !f3.Has(SRN2) || !f2.Has(SRN2) {
		t.Error("FRODO rows missing SRN2")
	}
	if !f3.Has(PR1|PR3|PR5) || f3.Has(PR4) {
		t.Errorf("FRODO 3-party PRs = %v", f3)
	}
	if !f2.Has(PR1|PR4|PR5) || f2.Has(PR3) {
		t.Errorf("FRODO 2-party PRs = %v", f2)
	}
}

// Property: With then Without round-trips, and Has(x) after With(x) always
// holds.
func TestQuickTechniqueSetAlgebra(t *testing.T) {
	f := func(base, add uint16) bool {
		s := TechniqueSet(base)
		a := TechniqueSet(add)
		if !s.With(a).Has(a) {
			return false
		}
		if s.Without(a).Has(a) && a != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
