package core

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Announcer drives the periodic multicast announcement trains of §5
// Step 4: the UPnP Manager (6 messages every 1800s), the Jini Registry
// (6 every 120s), the FRODO Central (2 every 1200s), and FRODO 3D
// Managers announcing until they find the Registry. The payload is built
// fresh per train so announcements carry current state.
type Announcer struct {
	nw     *netsim.Network
	from   netsim.NodeID
	group  netsim.Group
	copies int
	make   func() netsim.Outgoing
	tick   *sim.Ticker
	gate   func() bool
}

// NewAnnouncer creates a stopped announcer.
func NewAnnouncer(nw *netsim.Network, from netsim.NodeID, group netsim.Group,
	period sim.Duration, copies int, make func() netsim.Outgoing) *Announcer {
	a := &Announcer{nw: nw, from: from, group: group, copies: copies, make: make}
	a.tick = sim.NewTicker(nw.Kernel(), period, a.announce)
	return a
}

// Start begins announcing after the given delay (protocol boot jitter),
// then every period. Starting a running announcer re-arms it.
func (a *Announcer) Start(initialDelay sim.Duration) { a.tick.Start(initialDelay) }

// Stop halts the train (e.g. a 3D Manager that found the Registry, or a
// demoted Central).
func (a *Announcer) Stop() { a.tick.Stop() }

// Running reports whether the announcer is armed.
func (a *Announcer) Running() bool { return a.tick.Running() }

// AnnounceNow emits one train immediately without disturbing the schedule
// (used on boot and on Central takeover).
func (a *Announcer) AnnounceNow() { a.announce() }

// Rearm resets the announcer for workspace reuse after a Kernel.Reset.
func (a *Announcer) Rearm() { a.tick.Rearm() }

// SetGate installs a predicate consulted before each train: when it
// returns false the train is skipped (the schedule keeps ticking). The
// hardening layer uses it to silence a Central whose own interface is
// down — with a dead transmitter the frames would be dropped anyway, and
// with a dead receiver the node cannot hear requests or a stronger rival,
// so either way skipping the train keeps the node's advertised claim
// honest. A nil gate (the default) never skips.
func (a *Announcer) SetGate(gate func() bool) { a.gate = gate }

func (a *Announcer) announce() {
	if a.gate != nil && !a.gate() {
		return
	}
	a.nw.Multicast(a.from, a.group, a.make(), a.copies)
}
