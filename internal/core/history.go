package core

import (
	"repro/internal/discovery"
	"repro/internal/netsim"
)

// UpdateHistory is the Manager-side half of SRC2: "The Manager caches the
// history of service changes and only purges the cached updates after all
// interested Users successfully obtained the complete view of the
// service." Each entry is one versioned snapshot of the SD.
type UpdateHistory struct {
	entries []discovery.ServiceRecord
	// obtained tracks, per interested User, the highest version it has
	// confirmed; entries older than every confirmation can be purged.
	obtained map[netsim.NodeID]uint64
}

// NewUpdateHistory returns an empty history.
func NewUpdateHistory() *UpdateHistory {
	return &UpdateHistory{obtained: make(map[netsim.NodeID]uint64)}
}

// Record appends the record after a service change. The record's SD is an
// immutable shared snapshot, so retaining it costs nothing and needs no
// copy.
func (h *UpdateHistory) Record(rec discovery.ServiceRecord) {
	h.entries = append(h.entries, rec)
}

// Since returns the recorded snapshots with version strictly greater than
// the given one, oldest first — the missed updates a monitoring User
// requests.
func (h *UpdateHistory) Since(version uint64) []discovery.ServiceRecord {
	out := []discovery.ServiceRecord{}
	for _, e := range h.entries {
		if e.SD.Version() > version {
			out = append(out, e)
		}
	}
	return out
}

// Reset empties the history (workspace reuse), keeping capacity. The
// tail is zeroed so the retained backing array does not pin the previous
// run's snapshots.
func (h *UpdateHistory) Reset() {
	clear(h.entries)
	h.entries = h.entries[:0]
	clear(h.obtained)
}

// Confirm records that a User has obtained everything up to version, then
// purges entries every interested User has confirmed.
func (h *UpdateHistory) Confirm(user netsim.NodeID, version uint64) {
	if version > h.obtained[user] {
		h.obtained[user] = version
	}
	h.compact()
}

// Interested registers a User whose confirmations gate purging.
func (h *UpdateHistory) Interested(user netsim.NodeID) {
	if _, ok := h.obtained[user]; !ok {
		h.obtained[user] = 0
	}
}

// Disinterested removes a User (its subscription ended); its confirmations
// no longer hold back purging.
func (h *UpdateHistory) Disinterested(user netsim.NodeID) {
	delete(h.obtained, user)
	h.compact()
}

// Len reports the number of retained snapshots.
func (h *UpdateHistory) Len() int { return len(h.entries) }

func (h *UpdateHistory) compact() {
	if len(h.obtained) == 0 || len(h.entries) == 0 {
		return
	}
	min := ^uint64(0)
	for _, v := range h.obtained {
		if v < min {
			min = v
		}
	}
	keep := h.entries[:0]
	for _, e := range h.entries {
		if e.SD.Version() > min {
			keep = append(keep, e)
		}
	}
	// Release the dropped tail so the retained slice does not pin old
	// snapshots.
	for i := len(keep); i < len(h.entries); i++ {
		h.entries[i] = discovery.ServiceRecord{}
	}
	h.entries = keep
}

// SeqMonitor is the receiver-side half of SRC2: "The User and the Registry
// monitor ... the sequence number on the update notifications. When an
// expected update is missed, the User or the Registry requests the
// update."
type SeqMonitor struct {
	last    uint64
	started bool
}

// Observe processes an incoming update's sequence number. It returns
// gapped=true when one or more earlier updates were missed, along with the
// version after which the gap starts. The caller then requests the missed
// updates from the Manager or Registry.
func (m *SeqMonitor) Observe(seq uint64) (gapped bool, after uint64) {
	defer func() {
		if seq > m.last {
			m.last = seq
		}
		m.started = true
	}()
	if !m.started {
		// First observation sets the baseline; a gap cannot be detected.
		return false, 0
	}
	if seq > m.last+1 {
		return true, m.last
	}
	return false, 0
}

// Last reports the highest sequence number seen.
func (m *SeqMonitor) Last() uint64 { return m.last }

// Reset clears the baseline (used when the subscription is re-created).
func (m *SeqMonitor) Reset() { m.last, m.started = 0, false }
