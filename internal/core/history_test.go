package core

import (
	"testing"

	"repro/internal/discovery"
)

func rec(v uint64) discovery.ServiceRecord {
	return discovery.ServiceRecord{Manager: 1, SD: discovery.ServiceDescription{
		DeviceType: "Printer", ServiceType: "ColorPrinter",
		Attributes: map[string]string{"v": "x"}, Version: v}.Freeze()}
}

func TestUpdateHistorySince(t *testing.T) {
	h := NewUpdateHistory()
	for v := uint64(1); v <= 4; v++ {
		h.Record(rec(v))
	}
	got := h.Since(2)
	if len(got) != 2 || got[0].SD.Version() != 3 || got[1].SD.Version() != 4 {
		t.Fatalf("Since(2) = %v", got)
	}
	if len(h.Since(10)) != 0 {
		t.Error("Since beyond head returned entries")
	}
}

func TestUpdateHistoryPurgeAfterAllConfirm(t *testing.T) {
	// "only purges the cached updates after all interested Users
	// successfully obtained the complete view of the service"
	h := NewUpdateHistory()
	h.Interested(10)
	h.Interested(11)
	h.Record(rec(1))
	h.Record(rec(2))
	h.Confirm(10, 2)
	if h.Len() != 2 {
		t.Fatalf("purged while user 11 unconfirmed: len=%d", h.Len())
	}
	h.Confirm(11, 1)
	if h.Len() != 1 {
		t.Fatalf("entries <=1 should purge: len=%d", h.Len())
	}
	h.Confirm(11, 2)
	if h.Len() != 0 {
		t.Fatalf("all confirmed, len=%d", h.Len())
	}
}

func TestUpdateHistoryDisinterestedUnblocks(t *testing.T) {
	h := NewUpdateHistory()
	h.Interested(10)
	h.Interested(11)
	h.Record(rec(1))
	h.Confirm(10, 1)
	if h.Len() != 1 {
		t.Fatal("purged early")
	}
	h.Disinterested(11)
	if h.Len() != 0 {
		t.Error("departed user still blocks purging")
	}
}

func TestUpdateHistorySharesImmutableSnapshots(t *testing.T) {
	// The history shares the immutable snapshot by reference: nothing the
	// caller can do to its own builder affects a recorded entry, and a
	// described copy of an entry is independent storage.
	h := NewUpdateHistory()
	r := rec(1)
	h.Record(r)
	got := h.Since(0)
	if got[0].SD != r.SD {
		t.Error("history should share the immutable snapshot pointer")
	}
	desc := got[0].SD.Describe()
	desc.Attributes["v"] = "mutated"
	if h.Since(0)[0].SD.Attr("v") != "x" {
		t.Error("Describe returned aliased attribute storage")
	}
}

func TestSeqMonitorGapDetection(t *testing.T) {
	var m SeqMonitor
	if gap, _ := m.Observe(3); gap {
		t.Error("first observation flagged a gap")
	}
	if gap, _ := m.Observe(4); gap {
		t.Error("consecutive sequence flagged")
	}
	gap, after := m.Observe(7)
	if !gap || after != 4 {
		t.Errorf("Observe(7) = %v,%d; want gap after 4", gap, after)
	}
	if m.Last() != 7 {
		t.Errorf("Last = %d", m.Last())
	}
	// Duplicate/late arrivals are not gaps.
	if gap, _ := m.Observe(6); gap {
		t.Error("late arrival flagged as gap")
	}
	m.Reset()
	if gap, _ := m.Observe(9); gap {
		t.Error("gap flagged after Reset baseline")
	}
}
