package core

import (
	"testing"

	"repro/internal/sim"
)

func TestRetrySchedule(t *testing.T) {
	k := sim.New(1)
	var sends []sim.Time
	exhausted := false
	r := NewRetry(k, RetryPolicy{Interval: 10 * sim.Second, Limit: 3},
		func(attempt int) { sends = append(sends, k.Now()) },
		func() { exhausted = true })
	k.At(5*sim.Second, r.Start)
	k.Run(100 * sim.Second)
	want := []sim.Time{5 * sim.Second, 15 * sim.Second, 25 * sim.Second}
	if len(sends) != len(want) {
		t.Fatalf("sends at %v, want %v", sends, want)
	}
	for i := range want {
		if sends[i] != want[i] {
			t.Fatalf("sends at %v, want %v", sends, want)
		}
	}
	if !exhausted {
		t.Error("onExhausted not invoked after limit")
	}
	if r.Active() {
		t.Error("retry still active after exhaustion")
	}
}

func TestRetryStopOnAck(t *testing.T) {
	k := sim.New(1)
	sends := 0
	exhausted := false
	r := NewRetry(k, RetryPolicy{Interval: 10 * sim.Second, Limit: 5},
		func(int) { sends++ }, func() { exhausted = true })
	r.Start()
	k.At(12*sim.Second, r.Stop) // "ack" arrives after the second send
	k.Run(200 * sim.Second)
	if sends != 2 {
		t.Errorf("sends = %d, want 2", sends)
	}
	if exhausted {
		t.Error("onExhausted fired after Stop")
	}
}

func TestRetryUnlimitedSRC1(t *testing.T) {
	k := sim.New(1)
	sends := 0
	r := NewRetry(k, RetryPolicy{Interval: sim.Second, Limit: 0}, func(int) { sends++ }, nil)
	r.Start()
	k.Run(100 * sim.Second)
	if sends != 101 { // t=0..100 inclusive
		t.Errorf("sends = %d, want 101 (unlimited schedule)", sends)
	}
	if !r.Active() {
		t.Error("unlimited retry must stay active")
	}
}

func TestRetryRestartResetsCount(t *testing.T) {
	k := sim.New(1)
	attempts := []int{}
	r := NewRetry(k, RetryPolicy{Interval: 10 * sim.Second, Limit: 2},
		func(a int) { attempts = append(attempts, a) }, nil)
	r.Start()
	k.At(25*sim.Second, r.Start) // restart after first schedule exhausted
	k.Run(100 * sim.Second)
	want := []int{1, 2, 1, 2}
	if len(attempts) != len(want) {
		t.Fatalf("attempts = %v, want %v", attempts, want)
	}
	for i := range want {
		if attempts[i] != want[i] {
			t.Fatalf("attempts = %v, want %v", attempts, want)
		}
	}
	if r.Attempts() != 2 {
		t.Errorf("Attempts = %d, want 2", r.Attempts())
	}
}

func TestRetryRejectsBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero interval accepted")
		}
	}()
	NewRetry(sim.New(1), RetryPolicy{Interval: 0, Limit: 1}, func(int) {}, nil)
}
