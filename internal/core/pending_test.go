package core

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

func TestInconsistentSetLifecycle(t *testing.T) {
	s := NewInconsistentSet()
	s.ResetVersion(2)
	s.Mark(7, 2)
	if !s.ShouldRetry(7) {
		t.Fatal("marked user not retried")
	}
	if s.ShouldRetry(8) {
		t.Error("unmarked user retried")
	}
	// Stale ack (older version) keeps the entry.
	s.AckVersion(7, 1)
	if !s.ShouldRetry(7) {
		t.Error("stale ack cleared the entry")
	}
	// Current ack clears it.
	s.AckVersion(7, 2)
	if s.ShouldRetry(7) {
		t.Error("acked user still retried")
	}
}

func TestInconsistentSetStaleMarkIgnored(t *testing.T) {
	s := NewInconsistentSet()
	s.ResetVersion(3)
	s.Mark(7, 2) // mark for an old version arrives late
	if s.ShouldRetry(7) {
		t.Error("stale mark recorded")
	}
}

func TestInconsistentSetResetOnNewChange(t *testing.T) {
	// "the service changes again, requiring the Manager to reset the
	// notification process"
	s := NewInconsistentSet()
	s.ResetVersion(2)
	s.Mark(7, 2)
	s.Mark(8, 2)
	s.ResetVersion(3)
	if s.Len() != 0 || s.ShouldRetry(7) || s.ShouldRetry(8) {
		t.Error("reset did not clear the set")
	}
	if s.Version() != 3 {
		t.Errorf("version = %d, want 3", s.Version())
	}
}

func TestInconsistentSetForget(t *testing.T) {
	// "(a) the subscription expires"
	s := NewInconsistentSet()
	s.ResetVersion(1)
	s.Mark(7, 1)
	s.Forget(7)
	if s.ShouldRetry(7) {
		t.Error("forgotten user still retried")
	}
}

// Property: a user is retried iff it was marked for the current version
// and neither acked (at or above that version), forgotten, nor reset away.
func TestQuickInconsistentSetModel(t *testing.T) {
	type op struct {
		Kind uint8 // 0 mark, 1 ack, 2 forget, 3 reset
		User uint8
		Ver  uint8
	}
	f := func(ops []op) bool {
		s := NewInconsistentSet()
		model := map[netsim.NodeID]bool{}
		cur := uint64(0)
		for _, o := range ops {
			u := netsim.NodeID(o.User % 4)
			v := uint64(o.Ver % 4)
			switch o.Kind % 4 {
			case 0:
				s.Mark(u, v)
				if v == cur {
					model[u] = true
				}
			case 1:
				s.AckVersion(u, v)
				if v >= cur {
					delete(model, u)
				}
			case 2:
				s.Forget(u)
				delete(model, u)
			case 3:
				cur = v
				s.ResetVersion(v)
				model = map[netsim.NodeID]bool{}
			}
			for u := netsim.NodeID(0); u < 4; u++ {
				if s.ShouldRetry(u) != model[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
