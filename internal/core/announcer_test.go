package core

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestAnnouncerTrain(t *testing.T) {
	k := sim.New(1)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	sender := nw.AddNode("registry")
	recv := nw.AddNode("user")
	got := 0
	recv.SetEndpoint(netsim.EndpointFunc(func(m *netsim.Message) { got++ }))
	g := netsim.Group(1)
	nw.Join(sender.ID, g)
	nw.Join(recv.ID, g)

	builds := 0
	a := NewAnnouncer(nw, sender.ID, g, 120*sim.Second, 6, func() netsim.Outgoing {
		builds++
		return netsim.Outgoing{Kind: "Announce", Counted: true}
	})
	a.Start(0)
	k.Run(250 * sim.Second) // trains at 0, 120, 240

	if builds != 3 {
		t.Errorf("payload built %d times, want 3 trains", builds)
	}
	if got != 18 {
		t.Errorf("receiver got %d frames, want 18 (3 trains x 6 copies)", got)
	}
	if c := nw.Counters().Counted(); c != 18 {
		t.Errorf("counted sends = %d, want 18", c)
	}
	a.Stop()
	if a.Running() {
		t.Error("announcer running after Stop")
	}
	k.Run(1000 * sim.Second)
	if builds != 3 {
		t.Error("announcer kept announcing after Stop")
	}
}

func TestAnnouncerAnnounceNow(t *testing.T) {
	k := sim.New(1)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	sender := nw.AddNode("")
	recv := nw.AddNode("")
	got := 0
	recv.SetEndpoint(netsim.EndpointFunc(func(*netsim.Message) { got++ }))
	g := netsim.Group(1)
	nw.Join(sender.ID, g)
	nw.Join(recv.ID, g)
	a := NewAnnouncer(nw, sender.ID, g, 1000*sim.Second, 2, func() netsim.Outgoing {
		return netsim.Outgoing{Kind: "Announce"}
	})
	a.AnnounceNow() // one train without starting the schedule
	k.Run(10 * sim.Second)
	if got != 2 {
		t.Errorf("got %d frames, want 2", got)
	}
	if a.Running() {
		t.Error("AnnounceNow armed the schedule")
	}
}
