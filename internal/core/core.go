// Package core implements the paper's primary contribution: the
// classification of consistency-maintenance recovery techniques (Table 1)
// as composable mechanisms that the protocol models assemble.
//
// Subscription-recovery techniques apply while a subscription lease is
// still valid:
//
//   - SRC1 — acknowledged notifications retransmitted without limit
//     (critical updates).
//   - SRC2 — active monitoring of update sequence numbers, with an update
//     history kept by the Manager (critical updates).
//   - SRN1 — acknowledged notifications retransmitted up to a limit
//     (non-critical updates).
//   - SRN2 — future retry: the Manager caches which Users missed the
//     update and retries when it next hears from them (FRODO only).
//
// Purge-rediscovery techniques apply after leases expire:
//
//   - PR1 — Manager and Registry rediscover each other; the Registry
//     notifies interested Users when the Manager (re-)registers.
//   - PR2 — User rediscovers the Registry and queries it.
//   - PR3 — Registry tells a purged User to resubscribe (or errors).
//   - PR4 — Manager tells a purged User to resubscribe.
//   - PR5 — User purges the Manager and rediscovers it by query or by
//     listening for announcements.
//
// The package also provides the shared machinery the techniques are built
// from: a retransmission engine, the SRN2 inconsistent-User cache, the
// SRC2 history/monitor pair, and the periodic announcer.
package core

// TechniqueSet is a bitmask of enabled recovery techniques. The per-
// protocol defaults reproduce Table 2; flipping bits produces the paper's
// control experiments (Fig. 7 removes PR1 from FRODO) and further
// ablations.
type TechniqueSet uint16

const (
	SRC1 TechniqueSet = 1 << iota
	SRC2
	SRN1
	SRN2
	PR1
	PR2
	PR3
	PR4
	PR5
)

// Has reports whether every technique in q is enabled.
func (s TechniqueSet) Has(q TechniqueSet) bool { return s&q == q }

// Without returns the set with the given techniques removed.
func (s TechniqueSet) Without(q TechniqueSet) TechniqueSet { return s &^ q }

// With returns the set with the given techniques added.
func (s TechniqueSet) With(q TechniqueSet) TechniqueSet { return s | q }

var techniqueNames = []struct {
	bit  TechniqueSet
	name string
}{
	{SRC1, "SRC1"}, {SRC2, "SRC2"}, {SRN1, "SRN1"}, {SRN2, "SRN2"},
	{PR1, "PR1"}, {PR2, "PR2"}, {PR3, "PR3"}, {PR4, "PR4"}, {PR5, "PR5"},
}

// String lists the enabled techniques, e.g. "SRN1|SRN2|PR1|PR3|PR5".
func (s TechniqueSet) String() string {
	if s == 0 {
		return "none"
	}
	out := ""
	for _, tn := range techniqueNames {
		if s.Has(tn.bit) {
			if out != "" {
				out += "|"
			}
			out += tn.name
		}
	}
	return out
}

// The Table 2 technique sets. UPnP and Jini's SRC1/SRN1 are TCP-dependent:
// their retransmission behaviour lives in the transport (netsim TCP), so
// the flags here record capability for reporting, while FRODO's flags
// actually drive the UDP retransmission engine.

// UPnPTechniques is UPnP's Table 2 row: TCP-backed SRC1/SRN1 plus PR4 and
// PR5.
func UPnPTechniques() TechniqueSet { return SRC1 | SRN1 | PR4 | PR5 }

// JiniTechniques is Jini's Table 2 row: TCP-backed SRC1/SRN1, SRC2, and
// PR1, PR2, PR3.
func JiniTechniques() TechniqueSet { return SRC1 | SRN1 | SRC2 | PR1 | PR2 | PR3 }

// FrodoThreePartyTechniques is FRODO's Table 2 row for 3-party
// subscription: PR1, PR3, PR5 (application dependent).
func FrodoThreePartyTechniques() TechniqueSet {
	return SRC1 | SRC2 | SRN1 | SRN2 | PR1 | PR3 | PR5
}

// FrodoTwoPartyTechniques is FRODO's Table 2 row for 2-party subscription:
// PR1, PR4, PR5 (application dependent).
func FrodoTwoPartyTechniques() TechniqueSet {
	return SRC1 | SRC2 | SRN1 | SRN2 | PR1 | PR4 | PR5
}
