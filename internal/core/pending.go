package core

import "repro/internal/netsim"

// InconsistentSet is the SRN2 state a Manager (or the Central, on a
// 3-party Manager's behalf) keeps about Users whose update notification
// could not be delivered: "the Manager caches information on inconsistent
// Users and retries notification once a message from the inconsistent User
// is received (such as the subscription lease renewal message)."
//
// An entry is cleared when (a) the subscription expires (the owner calls
// Forget), (b) the service changes again (ResetVersion re-keys the whole
// set), or (c) the update is acknowledged (AckVersion).
type InconsistentSet struct {
	version uint64
	users   map[netsim.NodeID]bool
}

// NewInconsistentSet returns an empty set.
func NewInconsistentSet() *InconsistentSet {
	return &InconsistentSet{users: make(map[netsim.NodeID]bool)}
}

// Reset empties the set entirely (workspace reuse), keeping capacity.
func (s *InconsistentSet) Reset() {
	s.version = 0
	clear(s.users)
}

// ResetVersion clears the set for a fresh service version: a new change
// restarts the whole notification process, so stale entries are dropped
// ("the service changes again, requiring the Manager to reset the
// notification process").
func (s *InconsistentSet) ResetVersion(version uint64) {
	s.version = version
	for u := range s.users {
		delete(s.users, u)
	}
}

// Version reports the service version the entries refer to.
func (s *InconsistentSet) Version() uint64 { return s.version }

// Mark records that the User missed the given version. Marks for stale
// versions are ignored.
func (s *InconsistentSet) Mark(user netsim.NodeID, version uint64) {
	if version == s.version {
		s.users[user] = true
	}
}

// AckVersion clears the User once it acknowledged the given version.
// Acks for stale versions leave the entry in place.
func (s *InconsistentSet) AckVersion(user netsim.NodeID, version uint64) {
	if version >= s.version {
		delete(s.users, user)
	}
}

// Forget drops the User entirely (subscription expired).
func (s *InconsistentSet) Forget(user netsim.NodeID) { delete(s.users, user) }

// ShouldRetry reports whether a message from the User ought to trigger a
// fresh notification attempt.
func (s *InconsistentSet) ShouldRetry(user netsim.NodeID) bool { return s.users[user] }

// Len reports how many Users are marked inconsistent.
func (s *InconsistentSet) Len() int { return len(s.users) }
