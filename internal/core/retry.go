package core

import "repro/internal/sim"

// RetryPolicy shapes a retransmission schedule for acknowledged
// notifications.
//
// SRN1 uses a finite Limit ("retransmissions ... until retransmission
// limit is reached"); SRC1 uses Limit == 0, unlimited ("we propose no
// retransmission limit for the notification messages"), in which case the
// caller must stop the retry when the subscription expires or the service
// changes again.
type RetryPolicy struct {
	// Interval spaces the transmissions ("update retransmissions can be
	// spaced in a periodic manner").
	Interval sim.Duration
	// Limit is the maximum number of transmissions including the first;
	// zero means unlimited.
	Limit int
	// Cap, when positive, replaces the fixed spacing with capped
	// decorrelated jitter (see Backoff): the first gap stays near
	// Interval, later gaps spread out in [Interval, min(Cap, 3·prev)),
	// drawn from the kernel RNG. Zero keeps the paper's periodic
	// schedule and draws nothing — the hardening layer is the only
	// code that sets it.
	Cap sim.Duration
}

// Retry drives one acknowledged transmission: it sends immediately on
// Start and retransmits on the policy's schedule until stopped (ack
// received, superseded, lease expired) or exhausted. A Retry can be
// embedded by value and initialized with Init, so pooled owners (the
// FRODO propagator) carry their schedule without a separate allocation;
// the retransmission timer goes through a static kernel callback, so the
// schedule itself allocates nothing per attempt.
type Retry struct {
	k           *sim.Kernel
	policy      RetryPolicy
	send        func(attempt int)
	onExhausted func()

	sent    int
	timer   *sim.Event
	active  bool
	prevGap sim.Duration // last jittered gap when policy.Cap > 0
}

// NewRetry builds a retry engine. send transmits one attempt (1-based);
// onExhausted, which may be nil, runs when a finite policy runs out of
// attempts — for FRODO this is the hand-off from SRN1 to SRN2.
func NewRetry(k *sim.Kernel, policy RetryPolicy, send func(attempt int), onExhausted func()) *Retry {
	r := &Retry{}
	r.Init(k, policy, send, onExhausted)
	return r
}

// Init prepares an embedded Retry in place; see NewRetry.
func (r *Retry) Init(k *sim.Kernel, policy RetryPolicy, send func(attempt int), onExhausted func()) {
	if policy.Interval <= 0 {
		panic("core: retry interval must be positive")
	}
	r.k = k
	r.policy = policy
	r.send = send
	r.onExhausted = onExhausted
	r.sent = 0
	r.timer = nil
	r.active = false
	r.prevGap = 0
}

// SetPolicy replaces the schedule used by future Starts.
func (r *Retry) SetPolicy(policy RetryPolicy) {
	if policy.Interval <= 0 {
		panic("core: retry interval must be positive")
	}
	r.policy = policy
}

// retryFire is the static kernel callback shared by every retry schedule.
func retryFire(x any) { x.(*Retry).attempt() }

// Start performs the first transmission and arms the schedule. Starting an
// active retry restarts its attempt count.
func (r *Retry) Start() {
	r.Stop()
	r.active = true
	r.sent = 0
	r.prevGap = 0
	r.attempt()
}

// nextGap computes the delay before the following attempt: the policy's
// fixed Interval, or a capped decorrelated-jitter gap when Cap is set.
func (r *Retry) nextGap() sim.Duration {
	if r.policy.Cap <= 0 {
		return r.policy.Interval
	}
	lo := r.policy.Interval
	hi := 3 * r.prevGap
	if r.prevGap == 0 {
		hi = 2 * lo
	}
	if hi > r.policy.Cap {
		hi = r.policy.Cap
	}
	gap := lo
	if hi > lo {
		gap = r.k.UniformDuration(lo, hi)
	}
	r.prevGap = gap
	return gap
}

func (r *Retry) attempt() {
	// Pooled-event ownership rule: when attempt runs off the timer, that
	// event has fired and the kernel will recycle it — drop the reference
	// now so a later Stop cannot cancel a recycled (foreign) event. In
	// particular the exhausted branch below used to leave the fired event
	// in r.timer forever.
	r.timer = nil
	if !r.active {
		return
	}
	if r.policy.Limit > 0 && r.sent >= r.policy.Limit {
		r.active = false
		if r.onExhausted != nil {
			r.onExhausted()
		}
		return
	}
	r.sent++
	r.send(r.sent)
	r.timer = r.k.AfterArg(r.nextGap(), retryFire, r)
}

// Stop halts retransmission: the acknowledgement arrived, the
// subscription expired, or the notification was superseded by a newer
// change.
func (r *Retry) Stop() {
	r.active = false
	r.timer.Cancel() // always pending (or nil): attempt nils the fired event
	r.timer = nil
}

// Rearm resets the schedule for workspace reuse after a Kernel.Reset: the
// retained event reference is dropped without touching the kernel.
func (r *Retry) Rearm() {
	r.active = false
	r.timer = nil
	r.sent = 0
	r.prevGap = 0
}

// Active reports whether the schedule is still running.
func (r *Retry) Active() bool { return r.active }

// Attempts reports how many transmissions have been made.
func (r *Retry) Attempts() int { return r.sent }
