package core

import (
	"testing"

	"repro/internal/sim"
)

func TestBackoffBoundsAndGrowth(t *testing.T) {
	k := sim.New(1)
	b := NewBackoff(k, 10*sim.Second, 80*sim.Second)
	first := b.Next()
	if first < 10*sim.Second || first >= 20*sim.Second {
		t.Fatalf("first delay %v outside [base, 2*base)", first)
	}
	prev := first
	for i := 0; i < 50; i++ {
		d := b.Next()
		if d < 10*sim.Second || d > 80*sim.Second {
			t.Fatalf("delay %v outside [base, cap]", d)
		}
		hi := 3 * prev
		if hi > 80*sim.Second {
			hi = 80 * sim.Second
		}
		if d > hi {
			t.Fatalf("delay %v exceeds decorrelation bound 3*prev=%v", d, hi)
		}
		prev = d
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []sim.Duration {
		k := sim.New(seed)
		b := NewBackoff(k, sim.Second, 60*sim.Second)
		out := make([]sim.Duration, 20)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged under the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	diverged := false
	for i, d := range draw(8) {
		if d != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced the identical schedule")
	}
}

func TestBackoffReset(t *testing.T) {
	k := sim.New(1)
	b := NewBackoff(k, 10*sim.Second, 300*sim.Second)
	for i := 0; i < 10; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d >= 20*sim.Second {
		t.Errorf("post-Reset delay %v, want back in [base, 2*base)", d)
	}
}

func TestBackoffRejectsBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cap < base accepted")
		}
	}()
	NewBackoff(sim.New(1), 10*sim.Second, 5*sim.Second)
}

// A capped policy's gaps stay within [Interval, Cap] and replay
// identically per seed — the property hardened runs lean on.
func TestRetryCapJitteredGaps(t *testing.T) {
	gaps := func(seed int64) []sim.Duration {
		k := sim.New(seed)
		var times []sim.Time
		r := NewRetry(k, RetryPolicy{Interval: 5 * sim.Second, Limit: 8, Cap: 30 * sim.Second},
			func(int) { times = append(times, k.Now()) }, nil)
		r.Start()
		k.Run(1000 * sim.Second)
		out := make([]sim.Duration, 0, len(times)-1)
		for i := 1; i < len(times); i++ {
			out = append(out, sim.Duration(times[i]-times[i-1]))
		}
		return out
	}
	a := gaps(3)
	if len(a) != 7 {
		t.Fatalf("got %d gaps, want 7 (Limit 8 transmissions)", len(a))
	}
	for i, g := range a {
		if g < 5*sim.Second || g > 30*sim.Second {
			t.Errorf("gap %d = %v outside [Interval, Cap]", i, g)
		}
	}
	b := gaps(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d diverged under the same seed", i)
		}
	}
}
