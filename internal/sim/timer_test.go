package sim

import "testing"

func TestTickerFiresPeriodically(t *testing.T) {
	k := New(1)
	var fired []Time
	tk := NewTicker(k, 10*Second, func() { fired = append(fired, k.Now()) })
	tk.Start(5 * Second)
	k.Run(36 * Second)
	want := []Time{5 * Second, 15 * Second, 25 * Second, 35 * Second}
	if len(fired) != len(want) {
		t.Fatalf("fired %d times, want %d: %v", len(fired), len(want), fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestTickerStopAndRestart(t *testing.T) {
	k := New(1)
	count := 0
	tk := NewTicker(k, 10*Second, func() { count++ })
	tk.Start(0)
	k.After(25*Second, tk.Stop)
	k.Run(60 * Second)
	if count != 3 { // t=0, 10, 20
		t.Fatalf("fired %d times before stop, want 3", count)
	}
	if tk.Running() {
		t.Error("ticker still running after Stop")
	}
	tk.Start(0)
	k.Run(75 * Second)
	if count != 5 { // +t=60, 70
		t.Errorf("fired %d times after restart, want 5", count)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	k := New(1)
	count := 0
	var tk *Ticker
	tk = NewTicker(k, Second, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	tk.Start(0)
	k.Run(10 * Second)
	if count != 2 {
		t.Errorf("fired %d times, want 2", count)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	k := New(1)
	var fired []Time
	var tk *Ticker
	tk = NewTicker(k, 10*Second, func() {
		fired = append(fired, k.Now())
		tk.SetPeriod(20 * Second)
	})
	tk.Start(0)
	k.Run(45 * Second)
	// First fire at 0 schedules next at +10 (period read before callback),
	// callback changes period to 20 for later ticks.
	want := []Time{0, 10 * Second, 30 * Second}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestDeadlineRenewal(t *testing.T) {
	k := New(1)
	var expired []Time
	d := NewDeadline(k, func() { expired = append(expired, k.Now()) })
	d.SetAfter(10 * Second)                                // would expire at 10
	k.After(5*Second, func() { d.SetAfter(10 * Second) })  // push to 15
	k.After(12*Second, func() { d.SetAfter(10 * Second) }) // push to 22
	k.Run(Minute)
	if len(expired) != 1 || expired[0] != 22*Second {
		t.Errorf("expired at %v, want [22s]", expired)
	}
	if d.Armed() {
		t.Error("deadline still armed after firing")
	}
}

func TestDeadlineClear(t *testing.T) {
	k := New(1)
	fired := false
	d := NewDeadline(k, func() { fired = true })
	d.SetAfter(10 * Second)
	if !d.Armed() {
		t.Fatal("deadline not armed after Set")
	}
	if d.When() != 10*Second {
		t.Errorf("When() = %v, want 10s", d.When())
	}
	d.Clear()
	k.Run(Minute)
	if fired {
		t.Error("cleared deadline fired")
	}
}

func TestTickerRejectsBadPeriod(t *testing.T) {
	k := New(1)
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewTicker(k, 0, func() {})
}
