package sim

// splitmix64 is the kernel's random source: Sebastiano Vigna's SplitMix64
// (the seeding generator of the xoshiro family, and the stream-splitting
// step of PCG-style generators). One 64-bit word of state, a three-xor
// output mix, full 2^64 period, and it passes BigCrush — more than enough
// for drawing delays and failure times, at a fraction of the cost of the
// stdlib's default source:
//
//   - seeding is one store, where rand.NewSource fills a 607-word lagged
//     Fibonacci table (a sweep creates one kernel per run, thousands per
//     experiment, so per-kernel seeding is on the hot path);
//   - state is 8 bytes instead of ~5 KiB per kernel;
//   - Uint64 is an add and three xor-shift-multiplies, branch-free.
//
// It implements math/rand.Source64, so the kernel keeps exposing the
// familiar *rand.Rand API while every draw bottoms out here.
type splitmix64 struct {
	state uint64
}

// Seed resets the stream. Part of the rand.Source interface.
func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 advances the stream. Part of the rand.Source64 interface.
func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Int63 is the rand.Source interface's 63-bit draw.
func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }
