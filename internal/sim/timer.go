package sim

// Ticker fires a callback periodically. Protocol models use tickers for
// announcement trains, lease renewals and retransmission schedules; all of
// them need to be stoppable and restartable when interface state changes.
//
// Scheduling goes through a static callback with the ticker itself as the
// argument (AfterArg), so arming and re-arming never allocates a closure:
// a ticker costs its construction and nothing per firing.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      func()
	pending *Event
	running bool
}

// NewTicker creates a stopped ticker; call Start to arm it.
func NewTicker(k *Kernel, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	return &Ticker{k: k, period: period, fn: fn}
}

// tickerFire is the static kernel callback shared by every ticker.
func tickerFire(x any) { x.(*Ticker).tick() }

// Start arms the ticker. The first firing happens after initialDelay, and
// subsequent firings every period. Starting a running ticker re-arms it
// from now.
func (t *Ticker) Start(initialDelay Duration) {
	t.pending.Cancel()
	t.running = true
	t.pending = t.k.AfterArg(initialDelay, tickerFire, t)
}

func (t *Ticker) tick() {
	if !t.running {
		return
	}
	// Pooled-event ownership: the event that invoked us has fired and
	// will be recycled; overwrite the reference before running fn so
	// Stop/Start never cancel a recycled event. (A stopped ticker never
	// reaches here — Stop cancels the pending event.)
	t.pending = t.k.AfterArg(t.period, tickerFire, t)
	t.fn()
}

// Stop disarms the ticker. A stopped ticker can be started again.
func (t *Ticker) Stop() {
	t.running = false
	t.pending.Cancel()
	t.pending = nil
}

// Rearm resets the ticker for workspace reuse after a Kernel.Reset: the
// retained event reference is dropped without touching the kernel (the
// event no longer exists) and the ticker returns to its stopped state.
func (t *Ticker) Rearm() {
	t.running = false
	t.pending = nil
}

// Running reports whether the ticker is armed.
func (t *Ticker) Running() bool { return t.running }

// Period reports the ticker's firing interval.
func (t *Ticker) Period() Duration { return t.period }

// SetPeriod changes the interval used for firings scheduled after the next
// one. Used by adaptive retransmission schedules.
func (t *Ticker) SetPeriod(p Duration) {
	if p <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.period = p
}

// Deadline is a single-shot timer that can be pushed into the future, which
// is exactly the behaviour of a lease: each renewal replaces the expiry
// event. Like Ticker, it schedules through a static callback, so arming a
// deadline allocates nothing.
type Deadline struct {
	k       *Kernel
	fn      func()
	pending *Event
}

// NewDeadline creates an unarmed deadline that runs fn when it expires.
func NewDeadline(k *Kernel, fn func()) *Deadline {
	return &Deadline{k: k, fn: fn}
}

// deadlineFire is the static kernel callback shared by every deadline.
func deadlineFire(x any) { x.(*Deadline).fire() }

// Set arms (or re-arms) the deadline to fire at absolute time t.
func (d *Deadline) Set(t Time) {
	d.pending.Cancel()
	d.pending = d.k.AtArg(t, deadlineFire, d)
}

// SetAfter arms (or re-arms) the deadline to fire dur from now.
func (d *Deadline) SetAfter(dur Duration) { d.Set(d.k.Now() + dur) }

// Clear disarms the deadline.
func (d *Deadline) Clear() {
	d.pending.Cancel()
	d.pending = nil
}

// Rearm drops the retained event reference without touching the kernel,
// for workspace reuse after a Kernel.Reset.
func (d *Deadline) Rearm() { d.pending = nil }

// Armed reports whether the deadline is set and has not fired.
func (d *Deadline) Armed() bool { return d.pending != nil && !d.pending.Canceled() }

// When reports the expiry instant; valid only while Armed.
func (d *Deadline) When() Time {
	if d.pending == nil {
		return 0
	}
	return d.pending.At()
}

func (d *Deadline) fire() {
	// Pooled-event ownership: drop the fired event before fn, so a
	// Set/Clear from inside the callback never cancels a recycled event.
	d.pending = nil
	d.fn()
}
