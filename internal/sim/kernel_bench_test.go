package sim

import "testing"

// BenchmarkKernel measures raw scheduler throughput on the workload
// shape the simulator produces: a population of self-rescheduling timers
// (renewal tickers) plus a stream of one-shot events with random delays
// (frames in flight), about a quarter of which are canceled before
// firing (superseded retransmissions). Steady state allocates nothing —
// -benchmem should report 0 allocs/op.
func BenchmarkKernel(b *testing.B) {
	const timers = 1024
	k := New(1)
	var tick func()
	tick = func() { k.After(k.UniformDuration(Millisecond, Second), tick) }
	for i := 0; i < timers; i++ {
		k.After(k.UniformDuration(0, Second), tick)
	}
	k.Run(Second) // warm pool and heap
	b.ReportAllocs()
	b.ResetTimer()
	fired := k.Fired()
	for i := 0; i < b.N; i++ {
		e := k.AfterArg(k.UniformDuration(Microsecond, Millisecond), func(any) {}, nil)
		if i&3 == 0 {
			e.Cancel()
		}
		k.Run(k.Now() + Microsecond)
	}
	k.Run(k.Now() + Second)
	b.ReportMetric(float64(k.Fired()-fired)/float64(b.N), "events/op")
}

// BenchmarkKernelChurn measures pure heap push/pop with no reuse of the
// run loop: schedule a batch, drain it, repeat — the 4-ary heap's
// sift costs dominate.
func BenchmarkKernelChurn(b *testing.B) {
	k := New(1)
	nop := func(any) {}
	const batch = 4096
	// Warm.
	for i := 0; i < batch; i++ {
		k.AfterArg(k.UniformDuration(0, Second), nop, nil)
	}
	k.Run(k.Now() + 2*Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			k.AfterArg(k.UniformDuration(0, Second), nop, nil)
		}
		k.Run(k.Now() + 2*Second)
	}
	b.ReportMetric(batch, "events/op")
}
