package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. It is returned by the scheduling methods
// so the caller can cancel it before it fires; timers that are renewed
// (lease expirations, retransmissions) rely on this.
type Event struct {
	at       Time
	seq      uint64 // tie-breaker: same-time events fire in schedule order
	index    int    // heap index, -1 once removed
	fn       func()
	canceled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Canceling an event that has
// already fired or been canceled is a no-op, so callers may cancel
// unconditionally.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// Kernel is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the experiment harness runs many kernels in parallel, one
// per goroutine, each fully owning its kernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// New creates a kernel whose random stream is derived from seed. Two
// kernels created with the same seed execute identically.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random stream. All model
// randomness (delays, jitter, failure times) must come from this stream so
// runs replay exactly.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired reports how many events have executed, a cheap progress and
// complexity measure used by tests and benchmarks.
func (k *Kernel) Fired() uint64 { return k.fired }

// At schedules fn to run at absolute time t. Scheduling in the past (or at
// the current instant) panics: the models never need it and it always
// indicates a bug.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// UniformDuration draws a duration uniformly from [lo, hi].
func (k *Kernel) UniformDuration(lo, hi Duration) Duration {
	if hi < lo {
		panic(fmt.Sprintf("sim: invalid uniform range [%v, %v]", lo, hi))
	}
	if hi == lo {
		return lo
	}
	return lo + Duration(k.rng.Int63n(int64(hi-lo)+1))
}

// UniformTime draws an instant uniformly from [lo, hi].
func (k *Kernel) UniformTime(lo, hi Time) Time {
	return Time(k.UniformDuration(Duration(lo), Duration(hi)))
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the queue drains or the next
// event lies beyond horizon. The clock finishes at horizon so that model
// code observing Now at the end of a run sees the full duration.
func (k *Kernel) Run(horizon Time) {
	k.stopped = false
	for k.queue.Len() > 0 && !k.stopped {
		e := k.queue.peek()
		if e.at > horizon {
			break
		}
		heap.Pop(&k.queue)
		if e.canceled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
	}
	if k.now < horizon {
		k.now = horizon
	}
}

// Pending reports the number of queued events, including canceled events
// that have not yet been discarded.
func (k *Kernel) Pending() int { return k.queue.Len() }

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

func (q eventQueue) peek() *Event { return q[0] }
