package sim

import (
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. It is returned by the scheduling methods
// so the caller can cancel it before it fires; timers that are renewed
// (lease expirations, retransmissions) rely on this.
//
// # Ownership
//
// Events are pooled: the kernel recycles an Event as soon as it has fired
// (or was popped after cancellation), and the same pointer will be handed
// out again by a later At/After call. A *Event is therefore only valid
//   - while the event is pending, and
//   - inside the event's own callback (the kernel recycles it only after
//     the callback returns, so a callback may Cancel or inspect its own
//     event, which is a no-op).
//
// Callers that retain timer events across firings (lease renewal,
// retransmission schedules) must drop their reference when the event
// fires — conventionally by setting the field to nil at the top of the
// callback — and must never Cancel a stored event after its firing time
// has passed. Cancel on a stale pointer would cancel whatever event
// currently owns the pooled slot. sim.Ticker, sim.Deadline, core.Retry
// and the netsim TCP machinery all follow this rule; use them instead of
// raw events where possible.
type Event struct {
	at       Time
	seq      uint64 // tie-breaker: same-time events fire in schedule order
	fn       func()
	argFn    func(any)
	arg      any
	canceled bool
	next     *Event // free-list link while recycled
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Canceling an event that has
// already been canceled, or canceling from inside the event's own
// callback, is a no-op, so callers may cancel unconditionally — but see
// the ownership rule above: a pointer retained past the event's firing
// must not be canceled.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// Kernel is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the experiment harness runs many kernels in parallel, one
// per goroutine, each fully owning its kernel.
//
// The event queue is a 4-ary min-heap of pooled events: fired and
// canceled events go onto a free list and are reused by later schedule
// calls, so steady-state scheduling allocates nothing. Cancellation is
// lazy — a canceled event stays queued until its time comes and is then
// discarded and recycled.
type Kernel struct {
	now     Time
	seq     uint64
	heap    []*Event
	free    *Event
	src     splitmix64
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// New creates a kernel whose random stream is derived from seed. Two
// kernels created with the same seed execute identically.
func New(seed int64) *Kernel {
	k := &Kernel{}
	k.src.Seed(seed)
	k.rng = rand.New(&k.src)
	return k
}

// Reset returns the kernel to its initial state with a fresh seed while
// keeping the event pool and heap capacity, so a worker goroutine can run
// many simulations back to back without reallocating. Pending events are
// discarded (and recycled). Events retained by the previous simulation
// are invalid after Reset.
func (k *Kernel) Reset(seed int64) {
	for _, e := range k.heap {
		k.release(e)
	}
	k.heap = k.heap[:0]
	k.now = 0
	k.seq = 0
	k.fired = 0
	k.stopped = false
	k.src.Seed(seed)
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random stream. All model
// randomness (delays, jitter, failure times) must come from this stream so
// runs replay exactly. The stream is backed by a SplitMix64 generator —
// constant-size state, no per-kernel seeding cost (the stdlib source seeds
// a 607-word lagged Fibonacci table per kernel, which dominates short
// runs when a sweep creates thousands of kernels).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired reports how many events have executed, a cheap progress and
// complexity measure used by tests and benchmarks.
func (k *Kernel) Fired() uint64 { return k.fired }

// alloc takes an event from the free list, or makes a new one. The
// canceled flag is cleared here, on reuse, rather than on release, so a
// caller that retained a canceled event's pointer still reads
// Canceled() == true until the slot is actually handed out again.
func (k *Kernel) alloc() *Event {
	e := k.free
	if e == nil {
		return &Event{}
	}
	k.free = e.next
	e.next = nil
	e.canceled = false
	return e
}

// release clears an event and returns it to the free list. Clearing fn
// and arg matters: it releases the closure and its captures for GC even
// while the event sits in the pool.
func (k *Kernel) release(e *Event) {
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	e.next = k.free
	k.free = e
}

// At schedules fn to run at absolute time t. Scheduling in the past (or at
// the current instant) panics: the models never need it and it always
// indicates a bug.
func (k *Kernel) At(t Time, fn func()) *Event {
	e := k.schedule(t)
	e.fn = fn
	return e
}

// AtArg schedules fn(arg) at absolute time t. Unlike At, the callback is
// a plain function plus an argument, so hot paths that would otherwise
// allocate a fresh closure per event (the netsim delivery path) can pass
// a pooled record through a static function for zero per-event
// allocations.
func (k *Kernel) AtArg(t Time, fn func(any), arg any) *Event {
	e := k.schedule(t)
	e.argFn = fn
	e.arg = arg
	return e
}

func (k *Kernel) schedule(t Time) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := k.alloc()
	e.at = t
	e.seq = k.seq
	k.seq++
	k.push(e)
	return e
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// AfterArg schedules fn(arg) to run d from now. Negative d panics.
func (k *Kernel) AfterArg(d Duration, fn func(any), arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.AtArg(k.now+d, fn, arg)
}

// UniformDuration draws a duration uniformly from [lo, hi].
func (k *Kernel) UniformDuration(lo, hi Duration) Duration {
	if hi < lo {
		panic(fmt.Sprintf("sim: invalid uniform range [%v, %v]", lo, hi))
	}
	if hi == lo {
		return lo
	}
	return lo + Duration(k.rng.Int63n(int64(hi-lo)+1))
}

// UniformTime draws an instant uniformly from [lo, hi].
func (k *Kernel) UniformTime(lo, hi Time) Time {
	return Time(k.UniformDuration(Duration(lo), Duration(hi)))
}

// Stop makes Run (or RunUntil) return after the currently executing
// event completes. The clock still advances to the call's horizon, so
// events scheduled before it may remain pending behind the clock; see
// the re-entrancy invariant on Run.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the queue drains or the next
// event lies beyond horizon. The clock finishes at horizon so that model
// code observing Now at the end of a run sees the full duration.
//
// # Re-entrancy invariant
//
// Run, RunUntil and Step may be freely interleaved on one kernel; each
// call resumes from the current heap, and the clock NEVER rewinds. The
// one way an event can come to sit behind the clock is a Stop()ed Run
// (or RunUntil): the clock jumps to the horizon while undrained events
// keep their original times. Such events fire at the current instant —
// drainTo clamps the clock monotonically instead of assigning e.at —
// exactly as a real scheduler fires an overdue timer late. Before this
// was an invariant, a Stop'ed Run followed by another drain call would
// rewind Now to the stale event's time, breaking the "schedule only in
// the future" rule for every callback that fired after it.
func (k *Kernel) Run(horizon Time) {
	k.stopped = false
	k.drainTo(horizon)
	if k.now < horizon {
		k.now = horizon
	}
}

// RunUntil executes every event due at or before target and leaves the
// clock at target, like Run — the live driver calls it repeatedly to
// chase the wall clock, so unlike the one-shot Run it is documented as
// a resumable API: consecutive calls with non-decreasing targets drain
// the heap incrementally. A target at or before Now fires nothing and
// leaves the clock untouched (the clock never rewinds).
func (k *Kernel) RunUntil(target Time) {
	k.stopped = false
	k.drainTo(target)
	if k.now < target {
		k.now = target
	}
}

// RunWindow advances to target like RunUntil and reports the next
// pending event time (ok == false for an empty queue). It is the
// sharded fabric's per-window drain: advancing and peeking in one call
// keeps the barrier round-trip to a single exchange per shard.
func (k *Kernel) RunWindow(target Time) (next Time, ok bool) {
	k.RunUntil(target)
	return k.NextEventTime()
}

// Step executes the single next pending event, advancing the clock to
// its time (or holding the clock if the event is overdue — see Run's
// re-entrancy invariant). It reports whether an event fired; false
// means the queue held nothing but canceled events, which it discards.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		e := k.heap[0]
		k.pop()
		if e.canceled {
			k.release(e)
			continue
		}
		k.fire(e)
		return true
	}
	return false
}

// NextEventTime reports the virtual time of the earliest pending
// non-canceled event. Canceled heap heads are discarded on the way, so
// the answer is exact, not an upper bound. The live driver uses it to
// compute how long the event loop may sleep on the wall clock.
func (k *Kernel) NextEventTime() (Time, bool) {
	for len(k.heap) > 0 {
		e := k.heap[0]
		if !e.canceled {
			return e.at, true
		}
		k.pop()
		k.release(e)
	}
	return 0, false
}

// drainTo fires events with at <= limit in (time, seq) order until the
// heap drains, the limit is reached, or Stop is called.
func (k *Kernel) drainTo(limit Time) {
	for len(k.heap) > 0 && !k.stopped {
		e := k.heap[0]
		if e.at > limit {
			break
		}
		k.pop()
		if e.canceled {
			k.release(e)
			continue
		}
		k.fire(e)
	}
}

// fire executes one event, clamping the clock monotonically: an event
// left behind the clock by a Stop()ed Run fires at the current instant
// rather than rewinding Now.
func (k *Kernel) fire(e *Event) {
	if e.at > k.now {
		k.now = e.at
	}
	k.fired++
	if e.argFn != nil {
		e.argFn(e.arg)
	} else {
		e.fn()
	}
	k.release(e)
}

// Pending reports the number of queued events, including canceled events
// that have not yet been discarded.
func (k *Kernel) Pending() int { return len(k.heap) }

// eventLess orders events by (time, seq): schedule order breaks ties, so
// same-instant events fire in the order they were scheduled.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts an event into the 4-ary min-heap. A 4-ary heap halves the
// tree depth of the binary heap and keeps the four children of a node on
// one cache line's worth of pointers, which measures faster on the
// simulator's churn of push/pop pairs; it needs no per-event index
// because lazy cancellation never removes from the middle.
func (k *Kernel) push(e *Event) {
	h := append(k.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	k.heap = h
}

// pop removes the minimum event (the caller has already read heap[0]).
func (k *Kernel) pop() {
	h := k.heap
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	k.heap = h
	if n == 0 {
		return
	}
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
}
