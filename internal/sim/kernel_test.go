package sim

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := New(1)
	var got []Time
	times := []Duration{5 * Second, 1 * Second, 3 * Second, 2 * Second, 4 * Second}
	for _, d := range times {
		d := d
		k.After(d, func() { got = append(got, k.Now()) })
	}
	k.Run(10 * Second)
	want := []Time{1 * Second, 2 * Second, 3 * Second, 4 * Second, 5 * Second}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1*Second, func() { order = append(order, i) })
	}
	k.Run(2 * Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", order)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := New(1)
	fired := false
	e := k.After(1*Second, func() { fired = true })
	e.Cancel()
	k.Run(2 * Second)
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double cancel and nil cancel must be safe.
	e.Cancel()
	var nilEvent *Event
	nilEvent.Cancel()
}

func TestKernelHorizonStopsClockAtHorizon(t *testing.T) {
	k := New(1)
	fired := false
	k.After(10*Second, func() { fired = true })
	k.Run(5 * Second)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if k.Now() != 5*Second {
		t.Errorf("Now() = %v after Run, want horizon 5s", k.Now())
	}
	// A second Run can pick the event up.
	k.Run(20 * Second)
	if !fired {
		t.Error("event did not fire on extended run")
	}
}

func TestKernelEventsScheduledDuringRun(t *testing.T) {
	k := New(1)
	var seq []string
	k.After(1*Second, func() {
		seq = append(seq, "a")
		k.After(1*Second, func() { seq = append(seq, "b") })
	})
	k.Run(5 * Second)
	if len(seq) != 2 || seq[0] != "a" || seq[1] != "b" {
		t.Fatalf("got sequence %v", seq)
	}
}

func TestKernelStop(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		k.After(Duration(i)*Second, func() {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	k.Run(10 * Second)
	if count != 2 {
		t.Errorf("Stop did not halt the run: %d events fired", count)
	}
}

func TestKernelPanicsOnPastSchedule(t *testing.T) {
	k := New(1)
	k.After(2*Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(1*Second, func() {})
	})
	k.Run(3 * Second)
}

func TestKernelDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		k := New(seed)
		var fired []Time
		var schedule func()
		n := 0
		schedule = func() {
			fired = append(fired, k.Now())
			n++
			if n < 50 {
				k.After(k.UniformDuration(Millisecond, Second), schedule)
			}
		}
		k.After(0, schedule)
		k.Run(Hour)
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

func TestUniformDuration(t *testing.T) {
	k := New(7)
	for i := 0; i < 1000; i++ {
		d := k.UniformDuration(10*Microsecond, 100*Microsecond)
		if d < 10*Microsecond || d > 100*Microsecond {
			t.Fatalf("UniformDuration out of range: %v", d)
		}
	}
	if d := k.UniformDuration(5, 5); d != 5 {
		t.Errorf("degenerate range returned %d", d)
	}
}

// Property: for any batch of scheduled delays, events fire in sorted order
// and every non-canceled event fires exactly once.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delaysMS []uint16, cancelMask []bool) bool {
		k := New(99)
		var fired []Time
		want := make([]Time, 0, len(delaysMS))
		for i, ms := range delaysMS {
			d := Duration(ms) * Millisecond
			e := k.After(d, func() { fired = append(fired, k.Now()) })
			if i < len(cancelMask) && cancelMask[i] {
				e.Cancel()
			} else {
				want = append(want, Time(d))
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		k.Run(Time(1<<16) * Millisecond)
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: UniformTime always lands inside the requested interval.
func TestQuickUniformTimeInRange(t *testing.T) {
	k := New(5)
	f := func(a, b uint32) bool {
		lo, hi := Time(a), Time(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := k.UniformTime(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestKernelAtArg(t *testing.T) {
	k := New(1)
	var got []int
	push := func(x any) { got = append(got, x.(int)) }
	k.AtArg(2*Second, push, 2)
	k.AfterArg(1*Second, push, 1)
	k.AtArg(2*Second, push, 3) // same instant: schedule order
	k.Run(5 * Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

// Fired events are recycled: steady-state scheduling reuses pool slots
// instead of allocating.
func TestKernelEventPoolRecycles(t *testing.T) {
	k := New(1)
	fn := func() {}
	e1 := k.After(Second, fn)
	k.Run(2 * Second)
	e2 := k.After(Second, fn)
	if e1 != e2 {
		t.Error("fired event was not recycled by the next schedule")
	}
	// A canceled event is recycled once popped.
	e2.Cancel()
	k.Run(4 * Second)
	if !e2.Canceled() {
		t.Error("canceled flag lost before slot reuse")
	}
	if e3 := k.After(Second, fn); e3 != e2 {
		t.Error("canceled+popped event was not recycled")
	} else if e3.Canceled() {
		t.Error("recycled event still marked canceled")
	}
}

// Steady-state scheduling and firing allocates nothing once the pool is
// warm (the closure here is static, so the only candidate allocations
// are kernel-internal).
func TestKernelZeroAllocSteadyState(t *testing.T) {
	k := New(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < 8 {
			k.After(Millisecond, fn)
		}
	}
	// Warm the pool and the heap slice.
	k.After(Millisecond, fn)
	k.Run(Second)
	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		k.After(Millisecond, fn)
		k.Run(k.Now() + Second)
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule/fire allocates %.1f allocs/run, want 0", allocs)
	}
}

// Reset reuses the kernel: same seed, identical stream and scheduling as
// a fresh kernel, with pending events of the previous run discarded.
func TestKernelReset(t *testing.T) {
	fresh := New(42)
	reused := New(7)
	reused.After(Second, func() {})
	reused.After(5*Second, func() {})
	reused.Run(2 * Second) // leave one event pending
	reused.Reset(42)
	if reused.Pending() != 0 || reused.Now() != 0 || reused.Fired() != 0 {
		t.Fatalf("Reset left state: pending=%d now=%v fired=%d",
			reused.Pending(), reused.Now(), reused.Fired())
	}
	for i := 0; i < 100; i++ {
		a := fresh.UniformDuration(0, Hour)
		b := reused.UniformDuration(0, Hour)
		if a != b {
			t.Fatalf("draw %d diverged after Reset: %v vs %v", i, a, b)
		}
	}
	var seqA, seqB []Time
	fresh.After(fresh.UniformDuration(0, Second), func() { seqA = append(seqA, fresh.Now()) })
	reused.After(reused.UniformDuration(0, Second), func() { seqB = append(seqB, reused.Now()) })
	fresh.Run(Hour)
	reused.Run(Hour)
	if len(seqA) != 1 || len(seqB) != 1 || seqA[0] != seqB[0] {
		t.Fatalf("firing times diverged after Reset: %v vs %v", seqA, seqB)
	}
}

// The splitmix source must be deterministic per seed and differ across
// seeds.
func TestSplitmixStream(t *testing.T) {
	var a, b, c splitmix64
	a.Seed(9)
	b.Seed(9)
	c.Seed(10)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		x, y, z := a.Uint64(), b.Uint64(), c.Uint64()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Error("same seed diverged")
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

// RunUntil must drain incrementally and leave the clock at its target,
// and Step must resume from wherever the previous drain left off —
// preserving the global (time, seq) order across the API boundary.
func TestStepRunUntilInterleave(t *testing.T) {
	k := New(1)
	var got []int
	for i, at := range []Time{1 * Second, 2 * Second, 2 * Second, 3 * Second, 5 * Second} {
		i := i
		k.At(at, func() { got = append(got, i) })
	}
	if at, ok := k.NextEventTime(); !ok || at != 1*Second {
		t.Fatalf("NextEventTime = %v, %v; want 1s, true", at, ok)
	}
	k.RunUntil(2 * Second) // fires events 0, 1, 2
	if want := []int{0, 1, 2}; !slices.Equal(got, want) {
		t.Fatalf("after RunUntil(2s): fired %v, want %v", got, want)
	}
	if k.Now() != 2*Second {
		t.Fatalf("Now = %v after RunUntil(2s)", k.Now())
	}
	k.RunUntil(1 * Second) // target behind the clock: no-op, no rewind
	if k.Now() != 2*Second {
		t.Fatalf("RunUntil rewound the clock to %v", k.Now())
	}
	if !k.Step() {
		t.Fatal("Step found no event")
	}
	if want := []int{0, 1, 2, 3}; !slices.Equal(got, want) || k.Now() != 3*Second {
		t.Fatalf("after Step: fired %v at %v", got, k.Now())
	}
	k.Run(10 * Second) // Run resumes from the partially drained heap
	if want := []int{0, 1, 2, 3, 4}; !slices.Equal(got, want) {
		t.Fatalf("after Run: fired %v, want %v", got, want)
	}
	if k.Now() != 10*Second {
		t.Fatalf("Now = %v after Run(10s)", k.Now())
	}
	if k.Step() {
		t.Fatal("Step fired on an empty heap")
	}
}

// A Stop()ed Run advances the clock past still-pending events; firing
// them later must NOT rewind the clock (the re-entrancy invariant), and
// callbacks that schedule relative to Now must stay in the future.
func TestRunReenterableAfterStop(t *testing.T) {
	k := New(1)
	var fired []Time
	note := func() { fired = append(fired, k.Now()) }
	k.At(1*Second, func() { note(); k.Stop() })
	k.At(2*Second, note)
	// An overdue callback scheduling After(d) must land in the future.
	k.At(3*Second, func() { k.After(Second, note) })
	k.Run(10 * Second)
	if k.Now() != 10*Second {
		t.Fatalf("Now = %v after stopped Run; want the horizon", k.Now())
	}
	if len(fired) != 1 {
		t.Fatalf("fired %v before Stop; want one event", fired)
	}
	// The overdue events fire at the current instant, clock held.
	if !k.Step() || k.Now() != 10*Second {
		t.Fatalf("overdue Step rewound the clock to %v", k.Now())
	}
	k.Run(20 * Second)
	if k.Now() != 20*Second {
		t.Fatalf("Now = %v after resumed Run", k.Now())
	}
	want := []Time{1 * Second, 10 * Second, 11 * Second}
	if !slices.Equal(fired, want) {
		t.Fatalf("firing instants %v, want %v", fired, want)
	}
}

