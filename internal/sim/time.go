// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel replaces the Rapide ADL tool suite used by the paper: it keeps
// a virtual clock, a priority queue of pending events, and a seeded random
// number generator, so that a whole protocol run is a pure function of its
// seed. Events scheduled for the same instant fire in scheduling order,
// which gives the total order the protocol models rely on.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds from the start
// of the run. The paper's runs last 5400 s and its shortest interval is a
// 10 µs transmission delay, both of which fit comfortably.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is kept distinct
// from Time so that signatures document whether they take an instant or a
// span.
type Duration = Time

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds converts a floating point number of seconds to a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Sec reports t as a floating point number of seconds.
func (t Time) Sec() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with millisecond precision, the
// granularity used in the paper's event logs.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Sec()) }
