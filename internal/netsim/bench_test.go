package netsim

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkMulticastFanout measures the multicast fast path at the group
// sizes the scale scenarios produce: one wire transmission fanned out to
// every member through the pooled delivery train. Steady state allocates
// nothing per copy — -benchmem should report ~0 allocs/op.
func BenchmarkMulticastFanout(b *testing.B) {
	for _, members := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			k := sim.New(1)
			nw := New(k, DefaultConfig())
			ep := &countingEndpoint{}
			for i := 0; i < members; i++ {
				n := nw.AddNode("")
				n.SetEndpoint(ep)
				nw.Join(n.ID, Group(1))
			}
			out := Outgoing{Kind: "announce", Counted: true}
			for i := 0; i < 4; i++ { // warm pools
				nw.Multicast(0, Group(1), out, 1)
				k.Run(k.Now() + sim.Second)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.Multicast(0, Group(1), out, 1)
				k.Run(k.Now() + sim.Second)
			}
			b.ReportMetric(float64(members-1), "deliveries/op")
		})
	}
}

// BenchmarkUnicastFrame measures the pooled single-frame UDP path.
func BenchmarkUnicastFrame(b *testing.B) {
	k := sim.New(1)
	nw := New(k, DefaultConfig())
	nw.AddNode("a")
	recv := nw.AddNode("b")
	recv.SetEndpoint(&countingEndpoint{})
	out := Outgoing{Kind: "ping", Counted: true}
	for i := 0; i < 64; i++ {
		nw.SendUDP(0, 1, out)
	}
	k.Run(k.Now() + sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.SendUDP(0, 1, out)
		k.Run(k.Now() + sim.Second)
	}
}
