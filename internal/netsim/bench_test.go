package netsim

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkMulticastFanout measures the multicast fast path at the group
// sizes the scale scenarios produce: one wire transmission fanned out to
// every member through the pooled delivery train. Steady state allocates
// nothing per copy — -benchmem should report ~0 allocs/op.
func BenchmarkMulticastFanout(b *testing.B) {
	for _, members := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			k := sim.New(1)
			nw := mustNew(k, DefaultConfig())
			ep := &countingEndpoint{}
			for i := 0; i < members; i++ {
				n := nw.AddNode("")
				n.SetEndpoint(ep)
				nw.Join(n.ID, Group(1))
			}
			out := Outgoing{Kind: "announce", Counted: true}
			for i := 0; i < 4; i++ { // warm pools
				nw.Multicast(0, Group(1), out, 1)
				k.Run(k.Now() + sim.Second)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.Multicast(0, Group(1), out, 1)
				k.Run(k.Now() + sim.Second)
			}
			b.ReportMetric(float64(members-1), "deliveries/op")
		})
	}
}

// BenchmarkUnicastFrame measures the pooled single-frame UDP path.
func BenchmarkUnicastFrame(b *testing.B) {
	benchUnicast(b, DefaultConfig())
}

// BenchmarkUnicastFrameGE measures the same path conditioned with
// Gilbert–Elliott burst loss — the PR-4 gate: conditioning must not add
// allocations to the fast path.
func BenchmarkUnicastFrameGE(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Link.Burst = BurstForAverage(0.2, 8)
	benchUnicast(b, cfg)
}

func benchUnicast(b *testing.B, cfg Config) {
	k := sim.New(1)
	nw := mustNew(k, cfg)
	nw.AddNode("a")
	recv := nw.AddNode("b")
	recv.SetEndpoint(&countingEndpoint{})
	out := Outgoing{Kind: "ping", Counted: true}
	for i := 0; i < 64; i++ {
		nw.SendUDP(0, 1, out)
	}
	k.Run(k.Now() + sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.SendUDP(0, 1, out)
		k.Run(k.Now() + sim.Second)
	}
}

// BenchmarkMulticastFanoutPareto measures the multicast fast path with
// heavy-tailed (Pareto table) delay draws — same pooled delivery train,
// one table lookup per receiver.
func BenchmarkMulticastFanoutPareto(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Link.Delay = DelayConfig{Dist: DelayPareto}
	for _, members := range []int{100} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			k := sim.New(1)
			nw := mustNew(k, cfg)
			ep := &countingEndpoint{}
			for i := 0; i < members; i++ {
				n := nw.AddNode("")
				n.SetEndpoint(ep)
				nw.Join(n.ID, Group(1))
			}
			out := Outgoing{Kind: "announce", Counted: true}
			for i := 0; i < 4; i++ {
				nw.Multicast(0, Group(1), out, 1)
				k.Run(k.Now() + sim.Second)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.Multicast(0, Group(1), out, 1)
				k.Run(k.Now() + sim.Second)
			}
			b.ReportMetric(float64(members-1), "deliveries/op")
		})
	}
}
