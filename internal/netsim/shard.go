package netsim

import (
	"fmt"
	"slices"

	"repro/internal/sim"
)

// This file holds the sharded-fabric seam: a run's topology can be
// partitioned across S kernel/network pairs, each advancing on its own
// goroutine, with frames between shards carried as CrossFrame records
// through per-shard ShardRouters. The routers only buffer — all
// cross-shard movement happens at the window barriers the experiment
// coordinator runs (conservative parallel discrete-event simulation:
// each window is bounded by the minimum cross-shard link delay, so a
// frame sent during a window can never be due before the window every
// other shard has already agreed to reach). The unsharded path is
// untouched: router == nil short-circuits every hook.

// CrossLink characterizes the links between shards: one-way delay
// uniformly drawn from [MinDelay, MaxDelay] on the receiving shard's
// kernel. MinDelay is also the conservative lookahead — the window
// length shards may advance unsynchronized — so it trades fidelity
// against barrier overhead: windows per run ≈ RunDuration/MinDelay.
type CrossLink struct {
	MinDelay sim.Duration
	MaxDelay sim.Duration
}

// DefaultCrossLink returns campus-scale inter-segment latency. 200ms is
// far above the intra-shard 10–100µs but still well below every protocol
// time constant (leases and announce periods are tens of minutes), and
// it keeps a one-hour run at ~18k windows instead of the millions a
// LAN-scale lookahead would force.
func DefaultCrossLink() CrossLink {
	return CrossLink{MinDelay: 200 * sim.Millisecond, MaxDelay: 400 * sim.Millisecond}
}

func (cl CrossLink) Validate() error {
	if cl.MinDelay <= 0 {
		return fmt.Errorf("netsim: cross-shard MinDelay %v must be positive (it is the conservative lookahead)", cl.MinDelay)
	}
	if cl.MaxDelay < cl.MinDelay {
		return fmt.Errorf("netsim: cross-shard MaxDelay %v < MinDelay %v", cl.MaxDelay, cl.MinDelay)
	}
	return nil
}

// CrossFrame is one discovery frame in transit between shards. The
// sending shard accounted the wire transmission; the receiving shard
// draws loss and delay at ingest, exactly as it would for a local frame.
type CrossFrame struct {
	From      NodeID
	To        NodeID // NoNode for multicast
	Group     Group  // multicast only
	Multicast bool
	Kind      string
	Counted   bool
	Payload   any
	SentAt    sim.Time
}

// ShardRouter is one shard's egress buffer: frames its nodes address to
// other shards, bucketed by destination. It is owned by the shard's
// goroutine between barriers and by the coordinator at barriers; it is
// never touched from both at once, so it needs no locking.
type ShardRouter struct {
	link   CrossLink
	outbox [][]CrossFrame // indexed by destination shard; own slot unused
}

// NewShardRouter creates the egress router for one shard of an S-shard
// fabric.
func NewShardRouter(shards int, link CrossLink) *ShardRouter {
	if shards < 2 {
		panic(fmt.Sprintf("netsim: NewShardRouter with %d shards (a 1-shard run needs no router)", shards))
	}
	if err := link.Validate(); err != nil {
		panic(err)
	}
	return &ShardRouter{link: link, outbox: make([][]CrossFrame, shards)}
}

// Shards reports the fabric's shard count.
func (r *ShardRouter) Shards() int { return len(r.outbox) }

// Lookahead reports the conservative window bound: the minimum time a
// cross-shard frame spends in flight.
func (r *ShardRouter) Lookahead() sim.Duration { return r.link.MinDelay }

// Drain appends the frames buffered for dest onto into, resets the
// bucket, and returns the extended slice. Coordinator-side only.
func (r *ShardRouter) Drain(dest int, into []CrossFrame) []CrossFrame {
	into = append(into, r.outbox[dest]...)
	clear(r.outbox[dest]) // drop payload references; frames now live in `into`
	r.outbox[dest] = r.outbox[dest][:0]
	return into
}

// egressMulticast buffers one wire copy of a multicast for every remote
// shard; each re-fans it over its own segment of the group (an empty
// segment ingests to nothing).
func (r *ShardRouter) egressMulticast(shard int, from NodeID, g Group, wire *Message) {
	for s := range r.outbox {
		if s == shard {
			continue
		}
		r.outbox[s] = append(r.outbox[s], CrossFrame{From: from, Group: g, Multicast: true,
			To: NoNode, Kind: wire.Kind, Counted: wire.Counted, Payload: wire.Payload, SentAt: wire.SentAt})
	}
}

// SetShard places the network at a shard of a sharded fabric. It must be
// called before any AddNode: the shard is baked into every NodeID.
func (nw *Network) SetShard(shard int, r *ShardRouter) {
	if len(nw.nodes) != 0 {
		panic("netsim: SetShard must precede AddNode")
	}
	if r == nil || shard < 0 || shard >= r.Shards() {
		panic(fmt.Sprintf("netsim: SetShard(%d) outside the router's %d shards", shard, r.Shards()))
	}
	nw.shard = shard
	nw.idBase = shard << shardShift
	nw.router = r
}

// Shard reports which shard this network is (0 when unsharded).
func (nw *Network) Shard() int { return nw.shard }

// crossUnicast runs the sender half of a cross-shard SendUDP: account
// the wire transmission and the Tx-down loss here (the counters and the
// sender's interface state live on this shard), then buffer the frame
// for the destination shard, which draws receiver-side loss and delay
// at ingest. crossScratch keeps the accounting path allocation-free.
func (nw *Network) crossUnicast(from, to NodeID, out Outgoing) {
	nw.crossScratch = Message{From: from, To: to, Kind: out.Kind, Counted: out.Counted,
		Payload: out.Payload, Transport: UDP, SentAt: nw.k.Now()}
	nw.accountSend(&nw.crossScratch)
	if !nw.Node(from).txUp {
		nw.drop(&nw.crossScratch, "tx down")
		return
	}
	if nw.partitioned(from, to) {
		// Exact send-time semantics, same as the local path: the fault
		// coordinator arms the identical resolved partition on every
		// shard, so the sender knows the remote peer's side (partRemoteB).
		nw.drop(&nw.crossScratch, "partitioned")
		return
	}
	dest := to.Shard()
	nw.router.outbox[dest] = append(nw.router.outbox[dest], CrossFrame{From: from, To: to,
		Kind: out.Kind, Counted: out.Counted, Payload: out.Payload, SentAt: nw.crossScratch.SentAt})
}

// crossArrival draws the inter-shard delay for one receiver and anchors
// it at the frame's send instant. The window protocol guarantees
// SentAt+MinDelay is never behind this shard's clock; the clamp is a
// safety net against scheduling in the kernel's past.
func (nw *Network) crossArrival(sentAt sim.Time) sim.Time {
	at := sentAt + nw.k.UniformDuration(nw.router.link.MinDelay, nw.router.link.MaxDelay)
	if now := nw.k.Now(); at < now {
		at = now
	}
	return at
}

// IngestCross runs the receiver half for a batch of inbound cross-shard
// frames: per-receiver loss and delay draws in batch order, then normal
// in-shard delivery. The sends were accounted on the sending shard, so
// nothing here records a send. Must be called from the shard's own
// goroutine, before the window's RunUntil.
func (nw *Network) IngestCross(frames []CrossFrame) {
	for i := range frames {
		f := &frames[i]
		if f.Multicast {
			nw.ingestCrossMulticast(f)
			continue
		}
		if nw.Node(f.To).attachedAt > f.SentAt {
			// The slot changed hands while the frame crossed the barrier:
			// the tenancy check the local path does via gen-at-send, done
			// here via attach-time since the sender couldn't capture gen.
			nw.crossScratch = Message{From: f.From, To: f.To, Kind: f.Kind, Counted: f.Counted,
				Payload: f.Payload, Transport: UDP, SentAt: f.SentAt}
			nw.drop(&nw.crossScratch, "slot recycled")
			continue
		}
		if nw.linkLose(f.To) {
			nw.crossScratch = Message{From: f.From, To: f.To, Kind: f.Kind, Counted: f.Counted,
				Payload: f.Payload, Transport: UDP, SentAt: f.SentAt}
			nw.drop(&nw.crossScratch, "lost")
			continue
		}
		d := nw.allocDelivery()
		d.m = Message{From: f.From, To: f.To, Kind: f.Kind, Counted: f.Counted,
			Payload: f.Payload, Transport: UDP, SentAt: f.SentAt}
		d.gen = nw.Node(f.To).gen
		nw.k.AtArg(nw.crossArrival(f.SentAt), deliverUDP, d)
	}
}

// ingestCrossMulticast re-fans one remote wire copy over this shard's
// segment of the group, one loss and delay draw per member in membership
// order — the same shape as the local fan-out train.
func (nw *Network) ingestCrossMulticast(cf *CrossFrame) {
	members := nw.members(cf.Group)
	if len(members) == 0 {
		return
	}
	f := nw.allocFanout()
	f.wire = Message{From: cf.From, To: NoNode, Multicast: true, Kind: cf.Kind,
		Counted: cf.Counted, Payload: cf.Payload, Transport: UDP, SentAt: cf.SentAt}
	for _, to := range members {
		if nw.Node(to).attachedAt > cf.SentAt {
			// This member joined (or its slot was recycled) after the
			// remote copy hit the wire: it was not a receiver of that
			// transmission, exactly as a post-send joiner is absent from a
			// local fan-out. Skipped, not dropped — a non-member at send
			// time never had a frame to lose.
			continue
		}
		if nw.partitioned(cf.From, to) {
			// Checked at ingest: the remote sender cannot enumerate this
			// shard's segment of the group at send time. Split/heal edges
			// therefore act on cross-shard multicast with up to one
			// lookahead window of skew — deterministic, and bounded by
			// CrossLink.MinDelay.
			f.scratch = f.wire
			f.scratch.To = to
			nw.drop(&f.scratch, "partitioned")
			continue
		}
		if nw.linkLose(to) {
			f.scratch = f.wire
			f.scratch.To = to
			nw.drop(&f.scratch, "lost")
			continue
		}
		f.entries = append(f.entries, fanEntry{at: nw.crossArrival(cf.SentAt), to: to, gen: nw.Node(to).gen})
	}
	if len(f.entries) == 0 {
		nw.releaseFanout(f)
		return
	}
	slices.SortStableFunc(f.entries, func(a, b fanEntry) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		default:
			return 0
		}
	})
	nw.k.AtArg(f.entries[0].at, deliverFanout, f)
}
