package netsim

import "fmt"

// External frame injection: the entry points the live runtime uses to
// put gateway-originated traffic on the simulated fabric. They are thin
// wrappers over SendUDP/Multicast with two differences that matter for
// code driven by real clients instead of a fixed schedule:
//
//   - invalid targets are reported as errors, not panics — an external
//     request naming a bogus or recycled node must fail that one request,
//     never take the whole serving loop down;
//   - the concurrency contract is spelled out: the network is owned by a
//     single kernel goroutine, so these must run on it. The live Driver's
//     Inject/Call serialize external callers into the event loop; nothing
//     here is safe to call from an arbitrary goroutine directly.

// checkNode validates one injection endpoint.
func (nw *Network) checkNode(id NodeID, role string) error {
	if int(id) < 0 || int(id) >= len(nw.nodes) {
		return fmt.Errorf("netsim: inject: unknown %s node %d", role, id)
	}
	if nw.nodes[id].retired {
		return fmt.Errorf("netsim: inject: %s node %d is retired", role, id)
	}
	return nil
}

// ExternalUDP transmits one datagram from an externally driven node
// (the live gateway's port node), after validating both endpoints. The
// frame then takes the exact same path as protocol traffic — loss,
// delay, partitions, tracing and counters all apply — so a gateway
// request is indistinguishable on the wire from a simulated peer's.
// Must be called on the kernel goroutine (live.Driver.Inject).
func (nw *Network) ExternalUDP(from, to NodeID, out Outgoing) error {
	if err := nw.checkNode(from, "source"); err != nil {
		return err
	}
	if err := nw.checkNode(to, "target"); err != nil {
		return err
	}
	nw.SendUDP(from, to, out)
	return nil
}

// ExternalMulticast transmits one multicast copy from an externally
// driven node to a group, with the same validation and concurrency
// contract as ExternalUDP. The sender does not need to be a member of
// the group (fan-out never includes the sender anyway).
func (nw *Network) ExternalMulticast(from NodeID, g Group, out Outgoing) error {
	if err := nw.checkNode(from, "source"); err != nil {
		return err
	}
	nw.Multicast(from, g, out, 1)
	return nil
}
