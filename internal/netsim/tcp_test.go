package netsim

import (
	"testing"

	"repro/internal/sim"
)

func TestTCPDeliverySuccess(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	var result error
	done := false
	h.nw.SendTCP(0, 1, Outgoing{Kind: "notify", Counted: true, Payload: "sd"}, func(err error) {
		result = err
		done = true
	})
	h.k.Run(10 * sim.Second)
	if !done {
		t.Fatal("transfer never completed")
	}
	if result != nil {
		t.Fatalf("transfer failed: %v", result)
	}
	if len(h.inbox[1]) != 1 || h.inbox[1][0].Payload.(string) != "sd" {
		t.Fatalf("payload not delivered: %v", h.inbox[1])
	}
	c := h.nw.Counters()
	if c.DiscoverySends != 1 {
		t.Errorf("discovery sends = %d, want 1", c.DiscoverySends)
	}
	// SYN, SYN-ACK, ACK at minimum.
	if c.TransportFrames < 3 {
		t.Errorf("transport frames = %d, want >= 3", c.TransportFrames)
	}
	if c.Counted() != 1 {
		t.Errorf("counted = %d, want 1", c.Counted())
	}
}

func TestTCPRexAfterSetupSchedule(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[1].SetRx(false) // receiver unreachable for the whole run
	var result error
	var finishedAt sim.Time
	done := false
	h.nw.SendTCP(0, 1, Outgoing{Kind: "notify"}, func(err error) {
		result = err
		finishedAt = h.k.Now()
		done = true
	})
	h.k.Run(500 * sim.Second)
	if !done {
		t.Fatal("REX never raised")
	}
	if result != ErrREX {
		t.Fatalf("got %v, want ErrREX", result)
	}
	// Attempts at 0, 6, 30, 54, 78; final wait 24s => REX at 102s.
	if finishedAt != 102*sim.Second {
		t.Errorf("REX at %v, want 102s", finishedAt)
	}
	// The discovery layer handed one message to the transport: that
	// attempt counts even though the payload never crossed the wire.
	if h.nw.Counters().DiscoverySends != 1 {
		t.Errorf("discovery sends = %d, want 1 (the attempt)", h.nw.Counters().DiscoverySends)
	}
	if h.nw.Counters().TransportFrames != 5 {
		t.Errorf("transport frames = %d, want 5 SYNs", h.nw.Counters().TransportFrames)
	}
}

func TestTCPSetupRecoversWithinSchedule(t *testing.T) {
	// Receiver comes back before the retransmission schedule is exhausted:
	// the transfer must succeed, late but complete.
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[1].SetRx(false)
	h.k.At(40*sim.Second, func() { h.nodes[1].SetRx(true) })
	var result error
	done := false
	h.nw.SendTCP(0, 1, Outgoing{Kind: "notify"}, func(err error) { result, done = err, true })
	h.k.Run(200 * sim.Second)
	if !done || result != nil {
		t.Fatalf("done=%v result=%v, want successful completion", done, result)
	}
	if len(h.inbox[1]) != 1 {
		t.Error("payload not delivered after recovery")
	}
}

// fixedDelayConfig pins the frame delay so tests can carve failures
// precisely between the setup and data phases of a TCP transfer.
func fixedDelayConfig(d sim.Duration) Config {
	cfg := DefaultConfig()
	cfg.MinDelay, cfg.MaxDelay = d, d
	return cfg
}

func TestTCPDataRetransmitUntilSuccess(t *testing.T) {
	// Setup succeeds, then the receiver fails before the data lands and
	// recovers much later: data must retransmit until delivered ("Data
	// transfer: retransmit until success").
	h := newHarness(t, 2, fixedDelayConfig(100*sim.Microsecond))
	// SYN @100µs, SYN-ACK @200µs, data sent @200µs arrives @300µs: fail
	// the receiver in between.
	h.k.At(250*sim.Microsecond, func() { h.nodes[1].SetRx(false) })
	h.k.At(600*sim.Second, func() { h.nodes[1].SetRx(true) })
	var result error
	done := false
	conn := h.nw.SendTCP(0, 1, Outgoing{Kind: "notify"}, func(err error) { result, done = err, true })
	h.k.Run(2000 * sim.Second)
	if !conn.Established() {
		t.Fatal("connection not established")
	}
	if !done || result != nil {
		t.Fatalf("done=%v result=%v, want delivered after recovery", done, result)
	}
	if len(h.inbox[1]) != 1 {
		t.Fatalf("payload delivered %d times, want exactly once", len(h.inbox[1]))
	}
	if h.nw.Counters().TransportFrames < 10 {
		t.Errorf("expected many retransmissions, got %d transport frames", h.nw.Counters().TransportFrames)
	}
}

func TestTCPBackoffGrows(t *testing.T) {
	// With the receiver down for ~100s after setup, timeouts grow by 25%
	// per retry from the 1s floor; count sends to confirm sub-linear
	// growth (~21 sends rather than 100).
	h := newHarness(t, 2, fixedDelayConfig(100*sim.Microsecond))
	h.k.At(250*sim.Microsecond, func() { h.nodes[1].SetRx(false) })
	h.k.At(100*sim.Second, func() { h.nodes[1].SetRx(true) })
	h.nw.SendTCP(0, 1, Outgoing{Kind: "notify"}, nil)
	h.k.Run(200 * sim.Second)
	frames := h.nw.Counters().TransportFrames
	// Retransmissions needed: sum of 1 * 1.25^k >= 100 => ~17 retries.
	if frames < 10 || frames > 40 {
		t.Errorf("transport frames = %d, want ~20 with 25%% backoff", frames)
	}
}

func TestTCPReply(t *testing.T) {
	// Request/response over one connection: UPnP GET + 200 OK.
	h := newHarness(t, 2, DefaultConfig())
	var conn *TCPConn
	var reply *Message
	h.nodes[1].SetEndpoint(EndpointFunc(func(m *Message) {
		h.inbox[1] = append(h.inbox[1], m)
		conn.Reply(Outgoing{Kind: "response", Counted: true, Payload: "body"}, nil)
	}))
	h.nodes[0].SetEndpoint(EndpointFunc(func(m *Message) { reply = m }))
	conn = h.nw.SendTCP(0, 1, Outgoing{Kind: "get", Counted: true}, nil)
	h.k.Run(10 * sim.Second)
	if len(h.inbox[1]) != 1 {
		t.Fatal("request not delivered")
	}
	if reply == nil || reply.Payload.(string) != "body" {
		t.Fatalf("reply not delivered: %v", reply)
	}
	if h.nw.Counters().Counted() != 2 {
		t.Errorf("counted = %d, want 2 (request + response)", h.nw.Counters().Counted())
	}
}

func TestTCPAbort(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[1].SetRx(false)
	var result error
	done := false
	conn := h.nw.SendTCP(0, 1, Outgoing{Kind: "notify"}, func(err error) { result, done = err, true })
	h.k.At(10*sim.Second, conn.Abort)
	h.k.Run(500 * sim.Second)
	if !done || result != ErrAborted {
		t.Fatalf("done=%v result=%v, want ErrAborted", done, result)
	}
	// Abort is idempotent.
	conn.Abort()
}

func TestTCPSenderTxDownDuringSetup(t *testing.T) {
	// Sender's transmitter is down: SYNs never leave, REX after schedule.
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[0].SetTx(false)
	var result error
	done := false
	h.nw.SendTCP(0, 1, Outgoing{Kind: "x"}, func(err error) { result, done = err, true })
	h.k.Run(200 * sim.Second)
	if !done || result != ErrREX {
		t.Fatalf("done=%v result=%v, want ErrREX", done, result)
	}
}

func TestTCPDuplicateDataSuppressed(t *testing.T) {
	// Lose the ACK path after data delivery: sender retransmits, receiver
	// must not see the payload twice.
	h := newHarness(t, 2, fixedDelayConfig(100*sim.Microsecond))
	delivered := 0
	h.nodes[1].SetEndpoint(EndpointFunc(func(m *Message) { delivered++ }))
	// Break the reverse path (node1 Tx) right after setup: SYN-ACK got
	// through, data flows forward, ACKs are lost, retransmissions repeat.
	h.k.At(250*sim.Microsecond, func() { h.nodes[1].SetTx(false) })
	h.k.At(30*sim.Second, func() { h.nodes[1].SetTx(true) })
	var result error
	done := false
	h.nw.SendTCP(0, 1, Outgoing{Kind: "x"}, func(err error) { result, done = err, true })
	h.k.Run(100 * sim.Second)
	if delivered != 1 {
		t.Errorf("payload delivered %d times, want 1", delivered)
	}
	if !done || result != nil {
		t.Errorf("done=%v result=%v, want eventual success", done, result)
	}
}

func TestTCPReplyPanicsBeforeEstablished(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[1].SetRx(false)
	conn := h.nw.SendTCP(0, 1, Outgoing{Kind: "x"}, nil)
	defer func() {
		if recover() == nil {
			t.Error("Reply before establishment did not panic")
		}
	}()
	conn.Reply(Outgoing{Kind: "y"}, nil)
}
