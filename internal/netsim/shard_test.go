package netsim

import (
	"testing"

	"repro/internal/sim"
)

// dropLog records drop reasons so tests can distinguish the tenancy
// drop ("slot recycled") from ordinary loss.
type dropLog struct {
	reasons []string
}

func (d *dropLog) MessageSent(sim.Time, *Message)      {}
func (d *dropLog) MessageDelivered(sim.Time, *Message) {}
func (d *dropLog) NodeEvent(sim.Time, NodeID, string)  {}
func (d *dropLog) MessageDropped(_ sim.Time, _ *Message, reason string) {
	d.reasons = append(d.reasons, reason)
}

// twoShardFabric wires a minimal 2-shard fabric by hand: two kernels,
// two networks, one router per shard — the same shape the experiment
// coordinator builds, without the window goroutines (tests move frames
// across the barrier themselves with Drain + IngestCross).
func twoShardFabric(t *testing.T) (kA, kB *sim.Kernel, nwA, nwB *Network, rA, rB *ShardRouter) {
	t.Helper()
	link := DefaultCrossLink()
	kA, kB = sim.New(1), sim.New(2)
	rA, rB = NewShardRouter(2, link), NewShardRouter(2, link)
	nwA, nwB = mustNew(kA, DefaultConfig()), mustNew(kB, DefaultConfig())
	nwA.SetShard(0, rA)
	nwB.SetShard(1, rB)
	return
}

// TestCrossShardRecycledSlotDropsInFlightFrame pins the cross-shard
// tenancy rule: a unicast frame that was in flight across the barrier
// when its destination departed must NOT be delivered to the slot's
// next tenant. Local frames carry the receiver's gen from send time;
// cross-shard frames cannot (the receiver lives on another shard), so
// IngestCross compares SentAt against the tenant's attach time instead.
func TestCrossShardRecycledSlotDropsInFlightFrame(t *testing.T) {
	_, kB, nwA, nwB, rA, _ := twoShardFabric(t)
	var drops dropLog
	nwB.SetTracer(&drops)

	sender := nwA.AddNode("sender")
	dest := nwB.AddNode("dest")
	nwA.SendUDP(sender.ID, dest.ID, Outgoing{Kind: "renew", Counted: true, Payload: 7})

	frames := rA.Drain(1, nil)
	if len(frames) != 1 {
		t.Fatalf("router buffered %d frames for shard 1, want 1", len(frames))
	}

	// The destination churns out and its slot is recycled while the
	// frame is still crossing the barrier.
	kB.Run(sim.Second)
	nwB.Retire(dest.ID)
	tenant := nwB.AddNode("tenant")
	if tenant.ID != dest.ID {
		t.Fatalf("recycled slot got ID %d, want the retired %d", tenant.ID, dest.ID)
	}
	var delivered []Message
	tenant.SetEndpoint(EndpointFunc(func(m *Message) { delivered = append(delivered, *m) }))

	nwB.IngestCross(frames)
	kB.Run(10 * sim.Second)

	if len(delivered) != 0 {
		t.Fatalf("new tenant received %d frames aimed at its predecessor: %+v", len(delivered), delivered)
	}
	want := false
	for _, r := range drops.reasons {
		if r == "slot recycled" {
			want = true
		}
	}
	if !want {
		t.Fatalf("no 'slot recycled' drop recorded; drops = %v", drops.reasons)
	}
}

// TestCrossShardUnicastDeliversToStandingTenant is the control: the
// same in-flight frame IS delivered when the destination slot never
// changed hands, even though the receiving shard's clock has moved past
// the send instant (the arrival draw clamps to Now).
func TestCrossShardUnicastDeliversToStandingTenant(t *testing.T) {
	_, kB, nwA, nwB, rA, _ := twoShardFabric(t)
	sender := nwA.AddNode("sender")
	dest := nwB.AddNode("dest")
	var delivered []Message
	dest.SetEndpoint(EndpointFunc(func(m *Message) { delivered = append(delivered, *m) }))

	nwA.SendUDP(sender.ID, dest.ID, Outgoing{Kind: "renew", Counted: true, Payload: 7})
	kB.Run(sim.Second)
	nwB.IngestCross(rA.Drain(1, nil))
	kB.Run(10 * sim.Second)

	if len(delivered) != 1 || delivered[0].Payload.(int) != 7 {
		t.Fatalf("standing tenant got %+v, want the one renew frame", delivered)
	}
}

// TestCrossShardMulticastSkipsPostSendJoiner pins the multicast side of
// the tenancy rule: a member whose slot was recycled (or who joined)
// after the remote wire copy was sent is silently skipped — it was not
// a receiver of that transmission, so it is neither delivered to nor
// charged a drop — while members standing since before the send still
// receive the fan-out.
func TestCrossShardMulticastSkipsPostSendJoiner(t *testing.T) {
	_, kB, nwA, nwB, rA, _ := twoShardFabric(t)
	var drops dropLog
	nwB.SetTracer(&drops)

	sender := nwA.AddNode("sender")
	old := nwB.AddNode("old")
	g := Group(1)
	nwB.Join(old.ID, g)
	var oldGot []Message
	old.SetEndpoint(EndpointFunc(func(m *Message) { oldGot = append(oldGot, *m) }))

	nwA.Multicast(sender.ID, g, Outgoing{Kind: "announce", Counted: true}, 1)
	frames := rA.Drain(1, nil)
	if len(frames) != 1 || !frames[0].Multicast {
		t.Fatalf("router buffered %+v, want one multicast wire copy", frames)
	}

	// A fresh member attaches after the wire copy was sent.
	kB.Run(sim.Second)
	late := nwB.AddNode("late")
	nwB.Join(late.ID, g)
	var lateGot []Message
	late.SetEndpoint(EndpointFunc(func(m *Message) { lateGot = append(lateGot, *m) }))

	nwB.IngestCross(frames)
	kB.Run(10 * sim.Second)

	if len(oldGot) != 1 {
		t.Fatalf("standing member got %d copies, want 1", len(oldGot))
	}
	if len(lateGot) != 0 {
		t.Fatalf("post-send joiner received %d copies of a transmission it was absent for", len(lateGot))
	}
	if len(drops.reasons) != 0 {
		t.Fatalf("post-send joiner was charged a drop: %v", drops.reasons)
	}
}

// TestCrossShardUnicastDroppedWhilePartitioned pins the exact send-time
// partition semantics of the cross-shard unicast path: the fault
// coordinator arms the identical resolved partition on every shard, so
// a sender knows a remote peer's side (partRemoteB) and drops at send.
func TestCrossShardUnicastDroppedWhilePartitioned(t *testing.T) {
	kA, kB, nwA, nwB, rA, _ := twoShardFabric(t)
	var drops dropLog
	nwA.SetTracer(&drops)

	sender := nwA.AddNode("sender")
	dest := nwB.AddNode("dest")
	var delivered []Message
	dest.SetEndpoint(EndpointFunc(func(m *Message) { delivered = append(delivered, *m) }))

	// The remote peer is on side B; the local sender stays on side A.
	p := Partition{Start: sim.Second, Duration: 10 * sim.Second, SideB: []NodeID{dest.ID}}
	nwA.SchedulePartition(p)
	kA.Run(2 * sim.Second) // activate the split

	nwA.SendUDP(sender.ID, dest.ID, Outgoing{Kind: "renew", Counted: true})
	nwB.IngestCross(rA.Drain(1, nil))
	kB.Run(5 * sim.Second)

	if len(delivered) != 0 {
		t.Fatalf("frame crossed an active partition: %+v", delivered)
	}
	found := false
	for _, r := range drops.reasons {
		if r == "partitioned" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no 'partitioned' drop on the sending shard; drops = %v", drops.reasons)
	}

	// After the heal the same send goes through.
	kA.Run(20 * sim.Second)
	nwA.SendUDP(sender.ID, dest.ID, Outgoing{Kind: "renew", Counted: true})
	nwB.IngestCross(rA.Drain(1, nil))
	kB.Run(25 * sim.Second)
	if len(delivered) != 1 {
		t.Fatalf("post-heal frame not delivered (got %d)", len(delivered))
	}
}
