package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Config holds network-wide parameters; the defaults reproduce Table 3.
type Config struct {
	// MinDelay and MaxDelay bound the one-way transmission delay,
	// uniformly sampled per frame (Table 3: 10µs–100µs).
	MinDelay sim.Duration
	MaxDelay sim.Duration
	// Loss is the independent per-frame drop probability in [0,1]. Zero
	// for the paper's interface-failure experiments; nonzero reproduces
	// the message-loss model of the companion study [25].
	Loss float64
	// MulticastStagger separates the redundant copies of one multicast
	// transmission (Table 3: UPnP and Jini transmit every multicast six
	// times). Copies are distinct wire transmissions, sent this far apart.
	MulticastStagger sim.Duration
}

// DefaultConfig returns the Table 3 network characteristics.
func DefaultConfig() Config {
	return Config{
		MinDelay:         10 * sim.Microsecond,
		MaxDelay:         100 * sim.Microsecond,
		Loss:             0,
		MulticastStagger: 1 * sim.Millisecond,
	}
}

// Network is the simulated LAN. It is owned by a single kernel and is not
// safe for concurrent use; run-level parallelism happens one network per
// goroutine.
type Network struct {
	k        *sim.Kernel
	cfg      Config
	nodes    []*Node
	groups   map[Group][]NodeID
	tracer   Tracer
	counters Counters
}

// New creates an empty network on the given kernel.
func New(k *sim.Kernel, cfg Config) *Network {
	if cfg.MaxDelay < cfg.MinDelay {
		panic("netsim: MaxDelay < MinDelay")
	}
	return &Network{k: k, cfg: cfg, groups: make(map[Group][]NodeID)}
}

// Kernel reports the owning simulation kernel.
func (nw *Network) Kernel() *sim.Kernel { return nw.k }

// Config reports the network configuration.
func (nw *Network) Config() Config { return nw.cfg }

// SetTracer installs an event tracer; nil disables tracing.
func (nw *Network) SetTracer(t Tracer) { nw.tracer = t }

// Counters exposes the message accounting for this network.
func (nw *Network) Counters() *Counters { return &nw.counters }

// AddNode attaches a new node with both interfaces up.
func (nw *Network) AddNode(name string) *Node {
	n := &Node{ID: NodeID(len(nw.nodes)), Name: name, txUp: true, rxUp: true, net: nw}
	nw.nodes = append(nw.nodes, n)
	return n
}

// Node returns the node with the given ID.
func (nw *Network) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(nw.nodes) {
		panic(fmt.Sprintf("netsim: unknown node %d", id))
	}
	return nw.nodes[id]
}

// Nodes reports how many nodes are attached.
func (nw *Network) Nodes() int { return len(nw.nodes) }

// Join subscribes a node to a multicast group. Joining twice is a no-op.
func (nw *Network) Join(id NodeID, g Group) {
	for _, m := range nw.groups[g] {
		if m == id {
			return
		}
	}
	nw.groups[g] = append(nw.groups[g], id)
}

// Leave removes a node from a multicast group.
func (nw *Network) Leave(id NodeID, g Group) {
	members := nw.groups[g]
	for i, m := range members {
		if m == id {
			nw.groups[g] = append(members[:i], members[i+1:]...)
			return
		}
	}
}

// Members returns the current membership of a multicast group.
func (nw *Network) Members(g Group) []NodeID {
	members := nw.groups[g]
	out := make([]NodeID, len(members))
	copy(out, members)
	return out
}

// SendUDP transmits one unreliable datagram (Table 3 UDP: "Message
// discarded. No retransmission."). The send is attempted even when the
// transmitter is down — the device cannot know its interface has failed —
// and the frame is then silently lost.
func (nw *Network) SendUDP(from, to NodeID, out Outgoing) {
	m := &Message{From: from, To: to, Kind: out.Kind, Counted: out.Counted,
		Payload: out.Payload, Transport: UDP, SentAt: nw.k.Now()}
	nw.accountSend(m)
	nw.transmit(m)
}

// Multicast transmits copies redundant frames of the same discovery
// message to every member of the group except the sender. Each copy is one
// wire transmission (one counted send) fanned out to all members; each
// member's reception sees an independent delay and loss draw.
func (nw *Network) Multicast(from NodeID, g Group, out Outgoing, copies int) {
	if copies < 1 {
		copies = 1
	}
	for c := 0; c < copies; c++ {
		offset := sim.Duration(c) * nw.cfg.MulticastStagger
		if offset == 0 {
			nw.multicastCopy(from, g, out)
			continue
		}
		nw.k.After(offset, func() { nw.multicastCopy(from, g, out) })
	}
}

func (nw *Network) multicastCopy(from NodeID, g Group, out Outgoing) {
	wire := &Message{From: from, To: NoNode, Multicast: true, Kind: out.Kind,
		Counted: out.Counted, Payload: out.Payload, Transport: UDP, SentAt: nw.k.Now()}
	nw.accountSend(wire)
	for _, to := range nw.groups[g] {
		if to == from {
			continue
		}
		m := &Message{From: from, To: to, Multicast: true, Kind: out.Kind,
			Counted: false, Payload: out.Payload, Transport: UDP, SentAt: nw.k.Now()}
		nw.transmit(m)
	}
}

// accountSend records one wire transmission for the metrics.
func (nw *Network) accountSend(m *Message) {
	nw.counters.recordSend(nw.k.Now(), m)
	if nw.tracer != nil {
		nw.tracer.MessageSent(nw.k.Now(), m)
	}
}

// transmit performs the frame path for application frames, handing the
// message to the receiving endpoint on success.
func (nw *Network) transmit(m *Message) {
	nw.sendFrame(m, func() {
		recv := nw.Node(m.To)
		if recv.ep == nil {
			nw.drop(m, "no endpoint")
			return
		}
		nw.counters.recordDelivery(m)
		if nw.tracer != nil {
			nw.tracer.MessageDelivered(nw.k.Now(), m)
		}
		recv.ep.Deliver(m)
	})
}

// sendFrame models one frame on the wire: drop on Tx-down or random loss,
// otherwise run onDelivered after a uniform delay if the receiver's Rx is
// up on arrival. The TCP machinery uses it directly for control frames.
func (nw *Network) sendFrame(m *Message, onDelivered func()) {
	sender := nw.Node(m.From)
	if !sender.txUp {
		nw.drop(m, "tx down")
		return
	}
	if nw.cfg.Loss > 0 && nw.k.Rand().Float64() < nw.cfg.Loss {
		nw.drop(m, "lost")
		return
	}
	delay := nw.k.UniformDuration(nw.cfg.MinDelay, nw.cfg.MaxDelay)
	nw.k.After(delay, func() {
		if !nw.Node(m.To).rxUp {
			nw.drop(m, "rx down")
			return
		}
		onDelivered()
	})
}

// Reachable reports whether a frame sent now from one node would arrive at
// another, ignoring random loss. Used by tests and diagnostics only —
// protocols never get to peek at interface state of remote nodes.
func (nw *Network) Reachable(from, to NodeID) bool {
	return nw.Node(from).txUp && nw.Node(to).rxUp
}

func (nw *Network) drop(m *Message, reason string) {
	nw.counters.recordDrop(m)
	if nw.tracer != nil {
		nw.tracer.MessageDropped(nw.k.Now(), m, reason)
	}
}

func (nw *Network) traceNode(id NodeID, event string) {
	if nw.tracer != nil {
		nw.tracer.NodeEvent(nw.k.Now(), id, event)
	}
}
