package netsim

import (
	"fmt"
	"slices"

	"repro/internal/sim"
)

// Config holds network-wide parameters; the defaults reproduce Table 3.
type Config struct {
	// MinDelay and MaxDelay bound the one-way transmission delay,
	// uniformly sampled per frame (Table 3: 10µs–100µs).
	MinDelay sim.Duration
	MaxDelay sim.Duration
	// Loss is the independent per-frame drop probability in [0,1]. Zero
	// for the paper's interface-failure experiments; nonzero reproduces
	// the message-loss model of the companion study [25].
	Loss float64
	// MulticastStagger separates the redundant copies of one multicast
	// transmission (Table 3: UPnP and Jini transmit every multicast six
	// times). Copies are distinct wire transmissions, sent this far apart.
	MulticastStagger sim.Duration
	// Link selects the adversarial link-conditioning models (burst loss,
	// heavy-tailed delay, reordering); the zero value keeps the idealized
	// network above and changes no random draw.
	Link LinkConfig
}

// Validate checks the configuration. New rejects invalid configurations
// with this error; Reset and Rearm, which reuse a network mid-sweep with
// configurations the caller already vetted, panic on it instead.
func (cfg Config) Validate() error {
	if cfg.MinDelay < 0 {
		return fmt.Errorf("netsim: negative MinDelay %v", cfg.MinDelay)
	}
	if cfg.MaxDelay < cfg.MinDelay {
		return fmt.Errorf("netsim: MaxDelay %v < MinDelay %v", cfg.MaxDelay, cfg.MinDelay)
	}
	if cfg.Loss < 0 || cfg.Loss > 1 {
		return fmt.Errorf("netsim: loss %v out of [0,1]", cfg.Loss)
	}
	if cfg.Loss > 0 && cfg.Link.Burst.Enabled() {
		return fmt.Errorf("netsim: i.i.d. Loss and burst loss are alternatives; set one")
	}
	if cfg.MulticastStagger < 0 {
		return fmt.Errorf("netsim: negative MulticastStagger %v", cfg.MulticastStagger)
	}
	return cfg.Link.validate()
}

// DefaultConfig returns the Table 3 network characteristics.
func DefaultConfig() Config {
	return Config{
		MinDelay:         10 * sim.Microsecond,
		MaxDelay:         100 * sim.Microsecond,
		Loss:             0,
		MulticastStagger: 1 * sim.Millisecond,
	}
}

// groupSet is a multicast group's membership: a dense slice for ordered,
// allocation-free fan-out plus a map index so Join/Leave are O(1) instead
// of scanning. Removal swap-deletes, so membership order is a
// deterministic function of the join/leave sequence (which is all the
// simulation needs — fan-out draws randomness in membership order, and
// replays only have to match themselves).
type groupSet struct {
	members []NodeID
	index   map[NodeID]int
}

func newGroupSet() *groupSet {
	return &groupSet{index: make(map[NodeID]int)}
}

func (gs *groupSet) add(id NodeID) {
	if _, ok := gs.index[id]; ok {
		return
	}
	gs.index[id] = len(gs.members)
	gs.members = append(gs.members, id)
}

func (gs *groupSet) remove(id NodeID) {
	i, ok := gs.index[id]
	if !ok {
		return
	}
	last := len(gs.members) - 1
	moved := gs.members[last]
	gs.members[i] = moved
	gs.index[moved] = i
	gs.members = gs.members[:last]
	delete(gs.index, id)
}

func (gs *groupSet) reset() {
	gs.members = gs.members[:0]
	clear(gs.index)
}

// Network is the simulated LAN. It is owned by a single kernel and is not
// safe for concurrent use; run-level parallelism happens one network per
// goroutine.
type Network struct {
	k        *sim.Kernel
	cfg      Config
	nodes    []*Node
	retired  []NodeID // node slots released by Retire, reused by AddNode
	groups   map[Group]*groupSet
	tracer   Tracer
	counters Counters

	// Free lists for the per-frame scratch records of the fast path. All
	// single-threaded, like everything else here.
	freeDelivery *delivery
	freeFanout   *fanout
	freeMcopy    *mcopy
	// spareNodes recycles Node structs across Reset cycles.
	spareNodes []*Node
	// outages is the arena of planned-outage records (ScheduleFailure);
	// index-recycled per run, so failure plans allocate nothing in steady
	// state even though recovery events routinely outlive the horizon.
	outages    []*outage
	outageNext int

	// Link-conditioning state (see link.go): the per-receiver
	// Gilbert–Elliott chains, the precomputed delay quantile table and
	// the key it was built from.
	burstOn    bool
	geState    []uint8
	delayTable []sim.Duration
	delayKey   delayTableKey
	// Partition state (see partition.go): the side bitmap of the active
	// split, the activation record that owns it, the arena of scheduled
	// transitions, and — on sharded networks only — the side-B membership
	// of nodes owned by other shards, which the local bitmap cannot index.
	partActive  bool
	partOwner   *partEvent
	partSideB   []bool
	partRemoteB map[NodeID]bool
	partEvents  []*partEvent
	partNext    int

	// Sharded-fabric state (see shard.go): the shard this network is,
	// the NodeID base its table indexes from, the egress router for
	// frames addressed to other shards, and the scratch message used to
	// account cross-shard sends without allocating. router == nil is the
	// unsharded fast path: a single nil check per send, no other change.
	shard        int
	idBase       int
	router       *ShardRouter
	crossScratch Message
}

// New creates an empty network on the given kernel. An invalid
// configuration is reported as an error, so a bad sweep parameterization
// fails at construction instead of panicking mid-run.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nw := &Network{k: k, cfg: cfg, groups: make(map[Group]*groupSet)}
	nw.prepareLink()
	return nw, nil
}

// MustNew is New for configurations known to be valid (literals,
// DefaultConfig derivatives); it panics on error. Sweep-facing code must
// use New and surface the error instead.
func MustNew(k *sim.Kernel, cfg Config) *Network {
	nw, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return nw
}

// Reset empties the network for a fresh simulation on kernel k while
// keeping all allocated capacity — node structs, group membership
// storage, counter slices and the frame-record pools — so a worker
// goroutine can run many simulations back to back without rebuilding the
// network from scratch. Any *Node, *TCPConn or Tracer from the previous
// simulation is invalid afterwards.
func (nw *Network) Reset(k *sim.Kernel, cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nw.k = k
	nw.cfg = cfg
	nw.spareNodes = append(nw.spareNodes, nw.nodes...)
	nw.nodes = nw.nodes[:0]
	nw.retired = nw.retired[:0]
	for _, gs := range nw.groups {
		gs.reset()
	}
	nw.tracer = nil
	nw.counters.reset()
	nw.outageNext = 0
	nw.partActive = false
	nw.partOwner = nil
	nw.partNext = 0
	clear(nw.partRemoteB)
	nw.shard = 0
	nw.idBase = 0
	nw.router = nil
	nw.prepareLink()
}

// Rearm prepares the network for a fresh simulation that reuses the
// previous scenario's node slots: the first keep slots survive with their
// IDs and slot tenancies, interfaces up and retirement cleared, while
// endpoints, hooks and names are wiped — the protocol instances that own
// the slots re-bind themselves during their own rearm, exactly as their
// constructors did. Slots beyond keep (mid-run churn arrivals) are
// released to the spare pool. Group membership is cleared for the same
// reason: rearming instances re-Join in construction order, so multicast
// fan-out order replays the fresh-build order bit for bit.
//
// Rearm must run after the owning kernel's Reset and before any new
// scheduling; like Reset it invalidates every *TCPConn and Tracer of the
// previous run, but — unlike Reset — *Node pointers to the kept slots
// remain valid.
func (nw *Network) Rearm(k *sim.Kernel, cfg Config, keep int) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if keep > len(nw.nodes) {
		panic("netsim: Rearm keep exceeds node count")
	}
	if nw.router != nil {
		// The kept slots' IDs encode the shard, but the router and its
		// peers are gone after the run; sharded workspaces are invalidated
		// instead of reused, so a rearm here is a caller bug.
		panic("netsim: sharded networks cannot be rearmed")
	}
	nw.k = k
	nw.cfg = cfg
	for _, n := range nw.nodes[keep:] {
		nw.spareNodes = append(nw.spareNodes, n)
	}
	for i := keep; i < len(nw.nodes); i++ {
		nw.nodes[i] = nil
	}
	nw.nodes = nw.nodes[:keep]
	nw.retired = nw.retired[:0]
	for _, n := range nw.nodes {
		n.Name = ""
		n.txUp = true
		n.rxUp = true
		n.retired = false
		n.attachedAt = 0 // kept slots are boot-time nodes of the new run
		n.ep = nil
		n.onInterfaceChange = nil
	}
	for _, gs := range nw.groups {
		gs.reset()
	}
	nw.tracer = nil
	nw.counters.reset()
	nw.outageNext = 0
	nw.partActive = false
	nw.partOwner = nil
	nw.partNext = 0
	clear(nw.partRemoteB)
	nw.prepareLink()
}

// Kernel reports the owning simulation kernel.
func (nw *Network) Kernel() *sim.Kernel { return nw.k }

// Config reports the network configuration.
func (nw *Network) Config() Config { return nw.cfg }

// SetTracer installs an event tracer; nil disables tracing.
func (nw *Network) SetTracer(t Tracer) { nw.tracer = t }

// Tracer reports the installed tracer, nil if none. Observers that
// attach mid-setup (the consistency oracle) use it to tee onto an
// already-installed tracer instead of displacing it.
func (nw *Network) Tracer() Tracer { return nw.tracer }

// Counters exposes the message accounting for this network.
func (nw *Network) Counters() *Counters { return &nw.counters }

// AddNode attaches a new node with both interfaces up. Slots released by
// Retire are reused — ID and all — so long-running scenarios with churn
// keep the node table bounded by the peak population.
func (nw *Network) AddNode(name string) *Node {
	if n := len(nw.retired); n > 0 {
		id := nw.retired[n-1]
		nw.retired = nw.retired[:n-1]
		local := int(id) - nw.idBase
		node := nw.nodes[local]
		*node = Node{ID: id, Name: name, txUp: true, rxUp: true, net: nw,
			gen: node.gen + 1, attachedAt: nw.k.Now()}
		if nw.burstOn {
			nw.geState[local] = geGood // a fresh tenant starts a fresh chain
		}
		if local < len(nw.partSideB) {
			// A recycled slot's new tenant is a fresh arrival: it lands on
			// side A of any active partition, like every post-activation
			// attach, instead of inheriting its predecessor's side.
			nw.partSideB[local] = false
		}
		nw.traceNode(id, "attached")
		return node
	}
	var n *Node
	if s := len(nw.spareNodes); s > 0 {
		n = nw.spareNodes[s-1]
		nw.spareNodes[s-1] = nil
		nw.spareNodes = nw.spareNodes[:s-1]
	} else {
		n = &Node{}
	}
	*n = Node{ID: MakeNodeID(nw.shard, len(nw.nodes)), Name: name,
		txUp: true, rxUp: true, net: nw, attachedAt: nw.k.Now()}
	nw.nodes = append(nw.nodes, n)
	if nw.burstOn {
		nw.geState = append(nw.geState, geGood)
	}
	nw.traceNode(n.ID, "attached")
	return n
}

// Retire permanently detaches a node: its endpoint is dropped, both
// interfaces are forced (and pinned) down, it leaves every multicast
// group, and its slot becomes reusable by a later AddNode. The caller
// must have quiesced the protocol instance first (stopped its timers) —
// a retired slot may be handed to a brand-new device, and a zombie timer
// would then transmit under the new device's identity.
func (nw *Network) Retire(id NodeID) {
	n := nw.Node(id)
	if n.retired {
		return
	}
	n.retired = true
	n.txUp = false
	n.rxUp = false
	n.ep = nil
	n.onInterfaceChange = nil
	for _, gs := range nw.groups {
		gs.remove(id)
	}
	nw.retired = append(nw.retired, id)
	nw.traceNode(id, "retired")
}

// Node returns the node with the given ID. An ID owned by a different
// shard falls outside [idBase, idBase+len) and hits the same panic as a
// plain unknown ID — wrong-shard lookups cost nothing extra to catch.
func (nw *Network) Node(id NodeID) *Node {
	i := int(id) - nw.idBase
	if i < 0 || i >= len(nw.nodes) {
		panic(fmt.Sprintf("netsim: unknown node %d (shard %d)", id, nw.shard))
	}
	return nw.nodes[i]
}

// Nodes reports how many nodes are attached (including retired slots).
func (nw *Network) Nodes() int { return len(nw.nodes) }

func (nw *Network) group(g Group) *groupSet {
	gs := nw.groups[g]
	if gs == nil {
		gs = newGroupSet()
		nw.groups[g] = gs
	}
	return gs
}

// Join subscribes a node to a multicast group. Joining twice is a no-op.
func (nw *Network) Join(id NodeID, g Group) { nw.group(g).add(id) }

// Leave removes a node from a multicast group.
func (nw *Network) Leave(id NodeID, g Group) {
	if gs := nw.groups[g]; gs != nil {
		gs.remove(id)
	}
}

// Members returns a copy of the current membership of a multicast group.
// For tests and diagnostics; the fan-out path iterates the membership
// in place via members.
func (nw *Network) Members(g Group) []NodeID {
	members := nw.members(g)
	out := make([]NodeID, len(members))
	copy(out, members)
	return out
}

// members is the no-copy accessor behind Members: it returns the live
// membership slice, valid only until the next Join/Leave/Retire, and
// must not be mutated.
func (nw *Network) members(g Group) []NodeID {
	if gs := nw.groups[g]; gs != nil {
		return gs.members
	}
	return nil
}

// delivery is one in-flight unicast frame: the Message plus its pool
// link. The Message is delivered by pointer and recycled as soon as the
// endpoint's Deliver returns, so endpoints must not retain *Message past
// the call (payloads are plain values and may be kept).
type delivery struct {
	nw   *Network
	m    Message
	gen  uint32 // receiver-slot tenancy the frame was aimed at
	next *delivery
}

func (nw *Network) allocDelivery() *delivery {
	d := nw.freeDelivery
	if d == nil {
		return &delivery{nw: nw}
	}
	nw.freeDelivery = d.next
	d.next = nil
	d.nw = nw
	return d
}

func (nw *Network) releaseDelivery(d *delivery) {
	d.m = Message{}
	d.next = nw.freeDelivery
	nw.freeDelivery = d
}

// deliverUDP is the static event callback for pooled unicast deliveries
// (static + pooled argument = no per-frame closure allocation).
func deliverUDP(x any) {
	d := x.(*delivery)
	d.nw.deliverNow(&d.m, d.gen)
	d.nw.releaseDelivery(d)
}

// deliverNow runs the receive path for an application frame whose delay
// has elapsed: slot-tenancy and Rx checks, then endpoint hand-off. gen
// is the receiver slot's tenancy at send time — if the slot was retired
// and recycled while the frame was in flight, the new tenant must not
// receive its predecessor's traffic.
func (nw *Network) deliverNow(m *Message, gen uint32) {
	recv := nw.Node(m.To)
	if recv.gen != gen {
		nw.drop(m, "slot recycled")
		return
	}
	if !recv.rxUp {
		nw.drop(m, "rx down")
		return
	}
	if recv.ep == nil {
		nw.drop(m, "no endpoint")
		return
	}
	nw.counters.recordDelivery(m)
	if nw.tracer != nil {
		nw.tracer.MessageDelivered(nw.k.Now(), m)
	}
	recv.ep.Deliver(m)
}

// SendUDP transmits one unreliable datagram (Table 3 UDP: "Message
// discarded. No retransmission."). The send is attempted even when the
// transmitter is down — the device cannot know its interface has failed —
// and the frame is then silently lost.
func (nw *Network) SendUDP(from, to NodeID, out Outgoing) {
	if nw.router != nil && to.Shard() != nw.shard {
		nw.crossUnicast(from, to, out)
		return
	}
	d := nw.allocDelivery()
	d.m = Message{From: from, To: to, Kind: out.Kind, Counted: out.Counted,
		Payload: out.Payload, Transport: UDP, SentAt: nw.k.Now()}
	d.gen = nw.Node(to).gen
	nw.accountSend(&d.m)
	if !nw.Node(from).txUp {
		nw.drop(&d.m, "tx down")
		nw.releaseDelivery(d)
		return
	}
	if nw.partitioned(from, to) {
		nw.drop(&d.m, "partitioned")
		nw.releaseDelivery(d)
		return
	}
	if nw.linkLose(to) {
		nw.drop(&d.m, "lost")
		nw.releaseDelivery(d)
		return
	}
	nw.k.AfterArg(nw.linkDelay(), deliverUDP, d)
}

// mcopy is a pending staggered multicast copy (copies 2..n of a
// transmission, sent MulticastStagger apart), pinned to the sender
// slot's tenancy at the time of the original transmission.
type mcopy struct {
	nw   *Network
	from NodeID
	gen  uint32
	g    Group
	out  Outgoing
	next *mcopy
}

func runMulticastCopy(x any) {
	c := x.(*mcopy)
	nw := c.nw
	// If the sender's slot was retired and recycled while this copy was
	// pending, the new tenant must not transmit its predecessor's frame.
	// (A retired-but-unrecycled sender keeps its gen and still runs the
	// copy, dropping per receiver on Tx-down, like any frame.)
	if nw.Node(c.from).gen == c.gen {
		nw.multicastCopy(c.from, c.g, c.out)
	}
	c.out = Outgoing{}
	c.next = nw.freeMcopy
	nw.freeMcopy = c
}

// Multicast transmits copies redundant frames of the same discovery
// message to every member of the group except the sender. Each copy is one
// wire transmission (one counted send) fanned out to all members; each
// member's reception sees an independent delay and loss draw.
func (nw *Network) Multicast(from NodeID, g Group, out Outgoing, copies int) {
	nw.multicastCopy(from, g, out)
	gen := nw.Node(from).gen
	for c := 1; c < copies; c++ {
		offset := sim.Duration(c) * nw.cfg.MulticastStagger
		mc := nw.freeMcopy
		if mc == nil {
			mc = &mcopy{}
		} else {
			nw.freeMcopy = mc.next
			mc.next = nil
		}
		mc.nw, mc.from, mc.gen, mc.g, mc.out = nw, from, gen, g, out
		nw.k.AfterArg(offset, runMulticastCopy, mc)
	}
}

// fanEntry is one receiver of a multicast copy, its arrival instant,
// and the receiver slot's tenancy at send time.
type fanEntry struct {
	at  sim.Time
	to  NodeID
	gen uint32
}

// fanout is one multicast copy in flight: a single shared wire-message
// fanned out to its receivers through one walking kernel event instead
// of one event (plus message, plus closure) per receiver. Entries are
// sorted by arrival time; same-instant arrivals are delivered in one
// batch. The delivery Message handed to endpoints is the shared scratch,
// re-pointed per receiver — valid only during Deliver, like every pooled
// frame.
type fanout struct {
	nw      *Network
	wire    Message // the shared immutable wire-message (To == NoNode)
	scratch Message // per-receiver view for delivery and drop reporting
	entries []fanEntry
	i       int
	next    *fanout
}

func (nw *Network) allocFanout() *fanout {
	f := nw.freeFanout
	if f == nil {
		return &fanout{nw: nw}
	}
	nw.freeFanout = f.next
	f.next = nil
	f.nw = nw
	return f
}

func (nw *Network) releaseFanout(f *fanout) {
	f.wire = Message{}
	f.scratch = Message{}
	f.entries = f.entries[:0]
	f.i = 0
	f.next = nw.freeFanout
	nw.freeFanout = f
}

// multicastCopy sends one wire transmission of a multicast message and
// arms its delivery train. Loss and delay are drawn per receiver in
// membership order, exactly as if each receiver's frame were scheduled
// individually.
func (nw *Network) multicastCopy(from NodeID, g Group, out Outgoing) {
	f := nw.allocFanout()
	f.wire = Message{From: from, To: NoNode, Multicast: true, Kind: out.Kind,
		Counted: out.Counted, Payload: out.Payload, Transport: UDP, SentAt: nw.k.Now()}
	nw.accountSend(&f.wire)

	members := nw.members(g)
	if nw.router != nil && nw.Node(from).txUp {
		// One wire copy reaches every shard's segment of the group: hand
		// each remote shard one CrossFrame; it re-fans over its own local
		// membership with its own loss and delay draws at ingest.
		nw.router.egressMulticast(nw.shard, from, g, &f.wire)
	}
	if !nw.Node(from).txUp {
		// The transmitter is down: every receiver's frame is lost on the
		// wire, one drop per would-be receiver (matching the per-frame
		// accounting of the unbatched path).
		for _, to := range members {
			if to == from {
				continue
			}
			f.scratch = f.wire
			f.scratch.To = to
			nw.drop(&f.scratch, "tx down")
		}
		nw.releaseFanout(f)
		return
	}
	now := nw.k.Now()
	for _, to := range members {
		if to == from {
			continue
		}
		if nw.partitioned(from, to) {
			f.scratch = f.wire
			f.scratch.To = to
			nw.drop(&f.scratch, "partitioned")
			continue
		}
		if nw.linkLose(to) {
			f.scratch = f.wire
			f.scratch.To = to
			nw.drop(&f.scratch, "lost")
			continue
		}
		f.entries = append(f.entries, fanEntry{at: now + nw.linkDelay(), to: to, gen: nw.Node(to).gen})
	}
	if len(f.entries) == 0 {
		nw.releaseFanout(f)
		return
	}
	// Stable by arrival time: same-instant receivers keep membership
	// order, the order their delay draws were made in. SortStableFunc is
	// generic (no reflection, no closure captures), so this allocates
	// nothing.
	slices.SortStableFunc(f.entries, func(a, b fanEntry) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		default:
			return 0
		}
	})
	nw.k.AtArg(f.entries[0].at, deliverFanout, f)
}

// deliverFanout walks a fanout train: deliver every entry due now, then
// re-arm for the next arrival instant.
func deliverFanout(x any) {
	f := x.(*fanout)
	nw := f.nw
	now := nw.k.Now()
	for f.i < len(f.entries) && f.entries[f.i].at == now {
		e := f.entries[f.i]
		f.i++
		f.scratch = f.wire
		f.scratch.To = e.to
		nw.deliverNow(&f.scratch, e.gen)
	}
	if f.i < len(f.entries) {
		nw.k.AtArg(f.entries[f.i].at, deliverFanout, f)
		return
	}
	nw.releaseFanout(f)
}

// accountSend records one wire transmission for the metrics.
func (nw *Network) accountSend(m *Message) {
	nw.counters.recordSend(nw.k.Now(), m)
	if nw.tracer != nil {
		nw.tracer.MessageSent(nw.k.Now(), m)
	}
}

// sendFrame models one frame on the wire: drop on Tx-down or random loss,
// otherwise run onDelivered after a uniform delay if the receiver's Rx is
// up on arrival. The TCP machinery uses it directly for control frames.
func (nw *Network) sendFrame(m *Message, onDelivered func()) {
	sender := nw.Node(m.From)
	if !sender.txUp {
		nw.drop(m, "tx down")
		return
	}
	if nw.partitioned(m.From, m.To) {
		nw.drop(m, "partitioned")
		return
	}
	if nw.linkLose(m.To) {
		nw.drop(m, "lost")
		return
	}
	delay := nw.linkDelay()
	gen := nw.Node(m.To).gen
	nw.k.After(delay, func() {
		recv := nw.Node(m.To)
		if recv.gen != gen {
			nw.drop(m, "slot recycled")
			return
		}
		if !recv.rxUp {
			nw.drop(m, "rx down")
			return
		}
		onDelivered()
	})
}

// Reachable reports whether a frame sent now from one node would arrive at
// another, ignoring random loss. Used by tests and diagnostics only —
// protocols never get to peek at interface state of remote nodes.
func (nw *Network) Reachable(from, to NodeID) bool {
	return nw.Node(from).txUp && nw.Node(to).rxUp
}

func (nw *Network) drop(m *Message, reason string) {
	nw.counters.recordDrop(m)
	if nw.tracer != nil {
		nw.tracer.MessageDropped(nw.k.Now(), m, reason)
	}
}

func (nw *Network) traceNode(id NodeID, event string) {
	if nw.tracer != nil {
		nw.tracer.NodeEvent(nw.k.Now(), id, event)
	}
}
