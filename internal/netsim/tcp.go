package netsim

import (
	"errors"

	"repro/internal/sim"
)

// ErrREX is the Remote Exception surfaced to the discovery layer of UPnP
// and Jini when TCP connection setup fails after all retransmission
// attempts (Table 3).
var ErrREX = errors.New("netsim: remote exception (TCP connection setup failed)")

// ErrAborted reports that the sender abandoned the transfer (for example
// because the service changed again and the notification was superseded).
var ErrAborted = errors.New("netsim: transfer aborted by sender")

// TCPConfig models the Table 3 failure response of the reliable transport.
type TCPConfig struct {
	// SetupRetransmits are the gaps between successive connection-setup
	// attempts. Table 3: "4 retransmission attempts with delays 6s, 24s,
	// 24s, 24s, then REX if unsuccessful".
	SetupRetransmits []sim.Duration
	// SetupFinalWait is how long the last setup attempt waits for its
	// answer before the REX is raised.
	SetupFinalWait sim.Duration
	// MinRTO floors the first data-transfer timeout. Table 3 sets the
	// first timeout to the round-trip time; with 10–100µs LAN delays a
	// literal reading would retransmit millions of times during a long
	// interface failure, so we apply the RFC 6298 1s minimum. Only
	// uncounted transport frames are affected.
	MinRTO sim.Duration
	// Backoff multiplies the data-transfer timeout on every retry.
	// Table 3: "increasing timeout by 25% on each retry".
	Backoff float64

	// The remaining knobs are zero in the paper-faithful Table 3 model
	// and are only set by the hardening layer (internal/harden).

	// DataRetransmits, when positive, caps how many times an
	// unacknowledged data frame is retransmitted; the transfer then
	// fails with ErrREX instead of retransmitting forever (the unbounded
	// tail is how a long interface outage converts a stale RenewAck into
	// an hours-late delivery).
	DataRetransmits int
	// MaxRTO, when positive, ceilings the exponential data-transfer
	// timeout.
	MaxRTO sim.Duration
	// RTOJitter, when positive, adds uniform jitter of up to
	// RTOJitter·RTO to every retransmission delay, drawn from the kernel
	// RNG (deterministic per seed). Zero draws nothing.
	RTOJitter float64
	// AbortOnRetire quietly aborts a connection's setup and transfers
	// once the sending node has retired (or its slot was recycled), so a
	// departed device never transmits again.
	AbortOnRetire bool
}

// DefaultTCPConfig returns the Table 3 TCP failure response.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		SetupRetransmits: []sim.Duration{6 * sim.Second, 24 * sim.Second, 24 * sim.Second, 24 * sim.Second},
		SetupFinalWait:   24 * sim.Second,
		MinRTO:           1 * sim.Second,
		Backoff:          1.25,
	}
}

// TCPConn is one reliable transfer: connection setup followed by the
// delivery of a single discovery message, with the option of application
// replies flowing back over the established connection. The whole
// connection is simulated inside the network layer; the discovery layers
// only see delivered payloads and REX results, as in the NIST models.
type TCPConn struct {
	nw       *Network
	cfg      TCPConfig
	from, to NodeID

	established bool
	rtt         sim.Duration
	aborted     bool

	// fromGen snapshots the initiating slot's tenancy so AbortOnRetire
	// can tell "this sender left" from "a new tenant reuses the slot".
	fromGen uint32

	setupAttempt int

	transfers []*tcpTransfer
}

// tcpTransfer is one payload moving across an established connection, in
// either direction.
type tcpTransfer struct {
	conn      *TCPConn
	from, to  NodeID
	fromGen   uint32 // sender slot tenancy at queue time (AbortOnRetire)
	out       Outgoing
	onResult  func(error)
	delivered bool // receiver got the payload (dedup for retransmissions)
	acked     bool
	timer     *sim.Event
	rto       sim.Duration
	sends     int
}

// SendTCP opens a connection from one node to another and reliably
// transfers one discovery message. onResult is called exactly once: with
// nil when the payload has been delivered and acknowledged, with ErrREX if
// connection setup fails, or with ErrAborted if the sender gives up.
// The returned connection can carry application replies (Reply).
func (nw *Network) SendTCP(from, to NodeID, out Outgoing, onResult func(error)) *TCPConn {
	return nw.SendTCPWith(DefaultTCPConfig(), from, to, out, onResult)
}

// SendTCPWith is SendTCP with an explicit transport configuration.
func (nw *Network) SendTCPWith(cfg TCPConfig, from, to NodeID, out Outgoing, onResult func(error)) *TCPConn {
	c := &TCPConn{nw: nw, cfg: cfg, from: from, to: to, fromGen: nw.Node(from).gen}
	c.queueTransfer(from, to, out, onResult)
	c.connect()
	return c
}

// senderGone reports whether the hardened transport should abandon the
// connection: the initiating node retired (or its slot was recycled)
// after the connection was opened.
func (c *TCPConn) senderGone() bool {
	if !c.cfg.AbortOnRetire {
		return false
	}
	n := c.nw.Node(c.from)
	return n.retired || n.gen != c.fromGen
}

// Reply sends a discovery message back over the established connection
// (e.g. an HTTP response or a Jini event acknowledgement). It must only be
// called once the connection is established — in practice, from the
// handler that received the request payload. Replies skip connection setup
// but still retransmit until acknowledged.
func (c *TCPConn) Reply(out Outgoing, onResult func(error)) {
	if !c.established {
		panic("netsim: Reply on unestablished TCP connection")
	}
	c.queueTransfer(c.to, c.from, out, onResult)
}

// Abort abandons all outstanding transfers; their callbacks receive
// ErrAborted. Delivered-and-acknowledged transfers are unaffected.
func (c *TCPConn) Abort() {
	if c.aborted {
		return
	}
	c.aborted = true
	for _, tr := range c.transfers {
		if !tr.acked {
			tr.timer.Cancel() // nil before start, else the pending retransmission
			tr.timer = nil
			tr.finish(ErrAborted)
		}
	}
}

// Established reports whether connection setup completed.
func (c *TCPConn) Established() bool { return c.established }

// From reports the initiating node.
func (c *TCPConn) From() NodeID { return c.from }

// To reports the accepting node.
func (c *TCPConn) To() NodeID { return c.to }

func (c *TCPConn) queueTransfer(from, to NodeID, out Outgoing, onResult func(error)) {
	// The discovery layer hands its message to the transport here; this
	// is the send attempt the Update Efficiency metrics count, whether or
	// not the connection ever comes up. (A NOTIFY whose connection REXes
	// was still effort spent — and counting it here keeps failed runs
	// from looking spuriously "efficient".)
	c.nw.accountSend(&Message{From: from, To: to, Kind: out.Kind, Counted: out.Counted,
		Payload: out.Payload, Transport: TCPData, SentAt: c.nw.k.Now()})
	tr := &tcpTransfer{conn: c, from: from, to: to, fromGen: c.nw.Node(from).gen, out: out, onResult: onResult}
	c.transfers = append(c.transfers, tr)
	if c.established {
		tr.start()
	}
}

// connect runs the setup state machine: SYN, wait, retransmit per the
// configured schedule, REX when the schedule is exhausted.
func (c *TCPConn) connect() {
	start := c.nw.k.Now()
	c.sendSYN()
	var wait sim.Duration
	for _, gap := range c.cfg.SetupRetransmits {
		wait += gap
		c.scheduleSetup(start+wait, c.sendSYN)
	}
	c.scheduleSetup(start+wait+c.cfg.SetupFinalWait, c.rex)
}

// scheduleSetup runs a setup step unless the connection has already been
// established or torn down by the time it fires.
func (c *TCPConn) scheduleSetup(at sim.Time, fn func()) {
	c.nw.k.At(at, func() {
		if c.established || c.aborted {
			return
		}
		fn()
	})
}

func (c *TCPConn) sendSYN() {
	if c.established || c.aborted {
		return
	}
	if c.senderGone() {
		c.Abort() // retired initiator: stop the SYN train silently
		return
	}
	c.setupAttempt++
	sent := c.nw.k.Now()
	syn := &Message{From: c.from, To: c.to, Kind: "tcp/SYN", Transport: TCPControl, SentAt: sent}
	c.nw.accountSend(syn)
	c.nw.sendFrame(syn, func() {
		// Receiver answers SYN-ACK; connection is up when it lands.
		synack := &Message{From: c.to, To: c.from, Kind: "tcp/SYN-ACK", Transport: TCPControl, SentAt: c.nw.k.Now()}
		c.nw.accountSend(synack)
		c.nw.sendFrame(synack, func() {
			if c.established || c.aborted {
				return
			}
			c.established = true
			c.rtt = c.nw.k.Now() - sent
			for _, tr := range c.transfers {
				if !tr.acked {
					tr.start()
				}
			}
		})
	})
}

func (c *TCPConn) rex() {
	if c.established || c.aborted {
		return
	}
	c.aborted = true
	for _, tr := range c.transfers {
		tr.finish(ErrREX)
	}
}

func (tr *tcpTransfer) start() {
	tr.rto = tr.conn.rtt
	if tr.rto < tr.conn.cfg.MinRTO {
		tr.rto = tr.conn.cfg.MinRTO
	}
	tr.send()
}

// senderGone mirrors TCPConn.senderGone for this transfer's direction —
// a Reply's sender is the accepting side, with its own slot tenancy.
func (tr *tcpTransfer) senderGone() bool {
	if !tr.conn.cfg.AbortOnRetire {
		return false
	}
	n := tr.conn.nw.Node(tr.from)
	return n.retired || n.gen != tr.fromGen
}

func (tr *tcpTransfer) send() {
	if tr.acked || tr.conn.aborted {
		return
	}
	if tr.senderGone() {
		tr.finish(ErrAborted)
		return
	}
	if max := tr.conn.cfg.DataRetransmits; max > 0 && tr.sends > max {
		// Hardened transports give up instead of retransmitting forever;
		// the discovery layer sees the same REX as a failed setup.
		tr.finish(ErrREX)
		return
	}
	nw := tr.conn.nw
	tr.sends++
	// Every data frame is a transport transmission: the discovery-layer
	// send was already accounted when the transfer was queued.
	m := &Message{From: tr.from, To: tr.to, Kind: tr.out.Kind, Counted: false,
		Payload: tr.out.Payload, Transport: TCPData, Retransmit: true, SentAt: nw.k.Now()}
	nw.accountSend(m)
	nw.sendFrame(m, func() { tr.arrived(m) })

	// Arm the retransmission timer: "retransmit until success, increasing
	// timeout by 25% on each retry". Ownership rule for pooled events: the
	// callback nils tr.timer first thing — its event has fired and will be
	// recycled, so the reference must not outlive the callback.
	tr.timer.Cancel()
	delay := tr.rto
	if j := tr.conn.cfg.RTOJitter; j > 0 {
		delay += nw.k.UniformDuration(0, sim.Duration(j*float64(tr.rto)))
	}
	tr.timer = nw.k.After(delay, func() {
		tr.timer = nil
		tr.rto = sim.Duration(float64(tr.rto) * tr.conn.cfg.Backoff)
		if max := tr.conn.cfg.MaxRTO; max > 0 && tr.rto > max {
			tr.rto = max
		}
		tr.send()
	})
}

// arrived runs at the receiver: deliver the payload once, always answer
// with a transport ACK (retransmissions re-ACK, as real TCP does).
func (tr *tcpTransfer) arrived(m *Message) {
	nw := tr.conn.nw
	if !tr.delivered {
		tr.delivered = true
		recv := nw.Node(tr.to)
		if recv.ep != nil {
			m.Conn = tr.conn
			nw.counters.recordDelivery(m)
			if nw.tracer != nil {
				nw.tracer.MessageDelivered(nw.k.Now(), m)
			}
			recv.ep.Deliver(m)
		}
	}
	ack := &Message{From: tr.to, To: tr.from, Kind: "tcp/ACK", Transport: TCPControl, SentAt: nw.k.Now()}
	nw.accountSend(ack)
	nw.sendFrame(ack, func() {
		if tr.acked || tr.conn.aborted {
			return
		}
		tr.timer.Cancel() // pending retransmission (send always re-arms)
		tr.timer = nil
		tr.finish(nil)
	})
}

func (tr *tcpTransfer) finish(err error) {
	if tr.acked {
		return
	}
	tr.acked = true
	if tr.onResult != nil {
		tr.onResult(err)
	}
}
