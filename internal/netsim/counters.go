package netsim

import (
	"sort"

	"repro/internal/sim"
)

// Counters accounts for every wire transmission. The Update Efficiency
// metrics (§4.5) need the number of counted discovery-layer messages sent
// inside the consistency-recovery window [C, min(t_allConsistent, D)];
// everything else is kept for diagnostics and the Table 2 comparison.
//
// The counting convention, chosen to reproduce the paper's m' values at
// zero failure exactly (see DESIGN.md):
//   - every discovery-layer send attempt counts, including each redundant
//     multicast copy (one per wire transmission, not per group member);
//   - TCP control frames and retransmissions never count;
//   - protocols mark subscriber→notifier update acknowledgements as
//     uncounted (they play the role TCP ACKs play in Jini/UPnP, which the
//     paper also excludes);
//   - periodic lease renewals and their acknowledgements are uncounted:
//     they are steady-state upkeep that flows with or without the change,
//     not effort spent regaining consistency. Recovery messages that ride
//     the renewal exchange (RenewError, ResubscribeRequest, an SRN2
//     re-notification) do count.
type Counters struct {
	// Sends is every wire transmission attempted, any layer.
	Sends int
	// DiscoverySends is every discovery-layer send attempt (UDP frames and
	// first TCP data transmissions).
	DiscoverySends int
	// TransportFrames is TCP control frames plus TCP retransmissions.
	TransportFrames int
	// Delivered counts application payloads handed to endpoints.
	Delivered int
	// Drops counts frames lost to interface failure, random loss, or a
	// missing endpoint.
	Drops int

	// countedTimes records the timestamp of every counted discovery send,
	// in nondecreasing order (virtual time is monotonic).
	countedTimes []sim.Time

	// PerKind tallies discovery sends by message kind for diagnostics and
	// the Table 2 breakdown.
	PerKind map[string]int
}

// reset zeroes the counters while keeping slice and map capacity, for
// network reuse across simulations.
func (c *Counters) reset() {
	ct, pk := c.countedTimes[:0], c.PerKind
	*c = Counters{countedTimes: ct, PerKind: pk}
	clear(pk)
}

func (c *Counters) recordSend(t sim.Time, m *Message) {
	c.Sends++
	if m.Transport == TCPControl || m.Retransmit {
		c.TransportFrames++
		return
	}
	c.DiscoverySends++
	if c.PerKind == nil {
		c.PerKind = make(map[string]int)
	}
	c.PerKind[m.Kind]++
	if m.Counted {
		c.countedTimes = append(c.countedTimes, t)
	}
}

func (c *Counters) recordDelivery(m *Message) { c.Delivered++ }

func (c *Counters) recordDrop(m *Message) { c.Drops++ }

// Counted reports the total number of counted discovery sends.
func (c *Counters) Counted() int { return len(c.countedTimes) }

// CountedInWindow reports the number of counted discovery sends with
// from ≤ t ≤ to. This is the y of the Update Efficiency metrics when the
// window is the recovery interval.
func (c *Counters) CountedInWindow(from, to sim.Time) int {
	if to < from {
		return 0
	}
	lo := sort.Search(len(c.countedTimes), func(i int) bool { return c.countedTimes[i] >= from })
	hi := sort.Search(len(c.countedTimes), func(i int) bool { return c.countedTimes[i] > to })
	return hi - lo
}
