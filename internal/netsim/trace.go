package netsim

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Tracer observes network activity. Implementations must be cheap: the
// tracer runs on every frame when installed.
type Tracer interface {
	MessageSent(t sim.Time, m *Message)
	MessageDelivered(t sim.Time, m *Message)
	MessageDropped(t sim.Time, m *Message, reason string)
	NodeEvent(t sim.Time, node NodeID, event string)
}

// tee fans every trace event out to multiple tracers in order.
type tee []Tracer

// TeeTracer combines tracers into one that forwards every event to each,
// in argument order. Nil entries are skipped; zero or one non-nil
// tracers collapse to nil or the tracer itself.
func TeeTracer(ts ...Tracer) Tracer {
	out := make(tee, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// MessageSent implements Tracer.
func (ts tee) MessageSent(t sim.Time, m *Message) {
	for _, tr := range ts {
		tr.MessageSent(t, m)
	}
}

// MessageDelivered implements Tracer.
func (ts tee) MessageDelivered(t sim.Time, m *Message) {
	for _, tr := range ts {
		tr.MessageDelivered(t, m)
	}
}

// MessageDropped implements Tracer.
func (ts tee) MessageDropped(t sim.Time, m *Message, reason string) {
	for _, tr := range ts {
		tr.MessageDropped(t, m, reason)
	}
}

// NodeEvent implements Tracer.
func (ts tee) NodeEvent(t sim.Time, node NodeID, event string) {
	for _, tr := range ts {
		tr.NodeEvent(t, node, event)
	}
}

// Recorder collects a human-readable event log in the style of the paper's
// §6.2 excerpts ("Manager Tx down at 381, up at 1191"). Node events are
// always recorded; message traffic only when Verbose is set, because a
// full run generates thousands of frames.
type Recorder struct {
	nw      *Network
	Verbose bool
	lines   []string
}

// NewRecorder creates a recorder bound to a network (used to resolve node
// names).
func NewRecorder(nw *Network) *Recorder { return &Recorder{nw: nw} }

func (r *Recorder) name(id NodeID) string {
	if id == NoNode {
		return "*"
	}
	n := r.nw.Node(id)
	if n.Name != "" {
		return n.Name
	}
	return fmt.Sprintf("node%d", id)
}

// MessageSent implements Tracer.
func (r *Recorder) MessageSent(t sim.Time, m *Message) {
	if !r.Verbose {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  send  %-22s %s -> %s (%s)",
		t.Sec(), m.Kind, r.name(m.From), r.name(m.To), m.Transport))
}

// MessageDelivered implements Tracer.
func (r *Recorder) MessageDelivered(t sim.Time, m *Message) {
	if !r.Verbose {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  recv  %-22s %s -> %s",
		t.Sec(), m.Kind, r.name(m.From), r.name(m.To)))
}

// MessageDropped implements Tracer.
func (r *Recorder) MessageDropped(t sim.Time, m *Message, reason string) {
	if !r.Verbose {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  drop  %-22s %s -> %s: %s",
		t.Sec(), m.Kind, r.name(m.From), r.name(m.To), reason))
}

// NodeEvent implements Tracer.
func (r *Recorder) NodeEvent(t sim.Time, node NodeID, event string) {
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  node  %s %s", t.Sec(), r.name(node), event))
}

// Note appends a protocol-level annotation to the log (consistency
// reached, subscription purged, Central elected, …).
func (r *Recorder) Note(t sim.Time, format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  note  %s", t.Sec(), fmt.Sprintf(format, args...)))
}

// Lines returns the collected log.
func (r *Recorder) Lines() []string { return r.lines }

// String joins the log with newlines.
func (r *Recorder) String() string { return strings.Join(r.lines, "\n") }
