package netsim

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Tracer observes network activity. Implementations must be cheap: the
// tracer runs on every frame when installed.
type Tracer interface {
	MessageSent(t sim.Time, m *Message)
	MessageDelivered(t sim.Time, m *Message)
	MessageDropped(t sim.Time, m *Message, reason string)
	NodeEvent(t sim.Time, node NodeID, event string)
}

// Recorder collects a human-readable event log in the style of the paper's
// §6.2 excerpts ("Manager Tx down at 381, up at 1191"). Node events are
// always recorded; message traffic only when Verbose is set, because a
// full run generates thousands of frames.
type Recorder struct {
	nw      *Network
	Verbose bool
	lines   []string
}

// NewRecorder creates a recorder bound to a network (used to resolve node
// names).
func NewRecorder(nw *Network) *Recorder { return &Recorder{nw: nw} }

func (r *Recorder) name(id NodeID) string {
	if id == NoNode {
		return "*"
	}
	n := r.nw.Node(id)
	if n.Name != "" {
		return n.Name
	}
	return fmt.Sprintf("node%d", id)
}

// MessageSent implements Tracer.
func (r *Recorder) MessageSent(t sim.Time, m *Message) {
	if !r.Verbose {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  send  %-22s %s -> %s (%s)",
		t.Sec(), m.Kind, r.name(m.From), r.name(m.To), m.Transport))
}

// MessageDelivered implements Tracer.
func (r *Recorder) MessageDelivered(t sim.Time, m *Message) {
	if !r.Verbose {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  recv  %-22s %s -> %s",
		t.Sec(), m.Kind, r.name(m.From), r.name(m.To)))
}

// MessageDropped implements Tracer.
func (r *Recorder) MessageDropped(t sim.Time, m *Message, reason string) {
	if !r.Verbose {
		return
	}
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  drop  %-22s %s -> %s: %s",
		t.Sec(), m.Kind, r.name(m.From), r.name(m.To), reason))
}

// NodeEvent implements Tracer.
func (r *Recorder) NodeEvent(t sim.Time, node NodeID, event string) {
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  node  %s %s", t.Sec(), r.name(node), event))
}

// Note appends a protocol-level annotation to the log (consistency
// reached, subscription purged, Central elected, …).
func (r *Recorder) Note(t sim.Time, format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf("%10.3f  note  %s", t.Sec(), fmt.Sprintf(format, args...)))
}

// Lines returns the collected log.
func (r *Recorder) Lines() []string { return r.lines }

// String joins the log with newlines.
func (r *Recorder) String() string { return strings.Join(r.lines, "\n") }
