// The telemetry-enabled twins of the conditioned fast-path alloc
// gates: the same budgets must hold with an obs.NetTracer attached,
// because the tracer's per-message work is atomic adds and RLocked map
// lookups only. An external test package — obs imports netsim, so
// these cannot live in package netsim itself.
package netsim_test

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

type countingSink struct{ n int }

func (c *countingSink) Deliver(m *netsim.Message) { c.n++ }

// GE-conditioned unicast with a metrics tracer attached stays within
// the PR-2 ≤2 allocs/op gate.
func TestUnicastAllocsPerFrameGEWithTelemetry(t *testing.T) {
	cfg := netsim.DefaultConfig()
	cfg.Link.Burst = netsim.BurstForAverage(0.2, 8)
	k := sim.New(1)
	nw, err := netsim.New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	nw.SetTracer(reg.NetTracer(0))
	nw.AddNode("a")
	b := nw.AddNode("b")
	ep := &countingSink{}
	b.SetEndpoint(ep)
	out := netsim.Outgoing{Kind: "ping"}
	for i := 0; i < 64; i++ {
		nw.SendUDP(0, 1, out)
	}
	k.Run(k.Now() + sim.Second)
	allocs := testing.AllocsPerRun(200, func() {
		nw.SendUDP(0, 1, out)
		k.Run(k.Now() + sim.Second)
	})
	if allocs > 2 {
		t.Errorf("metered GE unicast frame costs %.1f allocs/op, want ≤ 2", allocs)
	}
	if ep.n == 0 {
		t.Fatal("no deliveries — measurement is vacuous")
	}
	if reg.Counter("sd_frames_sent_total", "shard", "0").Load() == 0 {
		t.Fatal("tracer attached but nothing metered — the gate is vacuous")
	}
}

// Pareto-delay multicast fan-out with both a metrics tracer and a
// flight recorder attached stays within the ≤4 allocs/copy gate: the
// ring append is a masked struct copy into preallocated storage.
func TestMulticastFanoutAllocsParetoWithTelemetry(t *testing.T) {
	cfg := netsim.DefaultConfig()
	cfg.Link.Delay = netsim.DelayConfig{Dist: netsim.DelayPareto}
	k := sim.New(1)
	nw, err := netsim.New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(0, 256)
	nw.SetTracer(netsim.TeeTracer(reg.NetTracer(0), fr))
	const members = 100
	ep := &countingSink{}
	for i := 0; i < members; i++ {
		n := nw.AddNode("")
		n.SetEndpoint(ep)
		nw.Join(n.ID, netsim.Group(1))
	}
	out := netsim.Outgoing{Kind: "announce"}
	for i := 0; i < 8; i++ {
		nw.Multicast(0, netsim.Group(1), out, 1)
		k.Run(k.Now() + sim.Second)
	}
	allocs := testing.AllocsPerRun(100, func() {
		nw.Multicast(0, netsim.Group(1), out, 1)
		k.Run(k.Now() + sim.Second)
	})
	if allocs > 4 {
		t.Errorf("metered Pareto fan-out costs %.1f allocs/copy over %d members, want ≤ 4", allocs, members)
	}
	if ep.n < members-1 {
		t.Fatalf("fan-out delivered %d, want ≥ %d", ep.n, members-1)
	}
	if fr.Snapshot().Total == 0 {
		t.Fatal("flight recorder attached but empty — the gate is vacuous")
	}
}
