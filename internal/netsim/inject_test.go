package netsim

import (
	"testing"

	"repro/internal/sim"
)

// External injection must deliver through the normal path for valid
// endpoints and report errors — never panic — for invalid ones.
func TestExternalInjection(t *testing.T) {
	k := sim.New(1)
	nw := MustNew(k, DefaultConfig())
	src := nw.AddNode("src")
	dst := nw.AddNode("dst")
	var got int
	dst.SetEndpoint(EndpointFunc(func(m *Message) {
		if m.From == src.ID {
			got++
		}
	}))
	nw.Join(dst.ID, Group(1))

	out := Outgoing{Kind: "Ping", Payload: struct{}{}}
	if err := nw.ExternalUDP(src.ID, dst.ID, out); err != nil {
		t.Fatalf("ExternalUDP: %v", err)
	}
	if err := nw.ExternalMulticast(src.ID, Group(1), out); err != nil {
		t.Fatalf("ExternalMulticast: %v", err)
	}
	k.Run(sim.Second)
	if got != 2 {
		t.Fatalf("delivered %d frames; want 2 (one unicast, one fanned-out copy)", got)
	}

	if err := nw.ExternalUDP(src.ID, NodeID(99), out); err == nil {
		t.Error("ExternalUDP to unknown node succeeded")
	}
	if err := nw.ExternalUDP(NodeID(-3), dst.ID, out); err == nil {
		t.Error("ExternalUDP from invalid node succeeded")
	}
	if err := nw.ExternalMulticast(NodeID(99), Group(1), out); err == nil {
		t.Error("ExternalMulticast from unknown node succeeded")
	}
	nw.Retire(dst.ID)
	if err := nw.ExternalUDP(src.ID, dst.ID, out); err == nil {
		t.Error("ExternalUDP to retired node succeeded")
	}
}
