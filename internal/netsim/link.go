package netsim

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// This file holds the link-conditioning models: everything beyond the
// paper's idealized network (uniform one-way delay, i.i.d. per-frame
// loss). The models slot in behind the existing zero-alloc fast path —
// per-frame state lives in flat per-network arrays prepared up front, and
// non-uniform delay draws come from a precomputed inverse-CDF table, so
// the conditioned paths stay allocation-free. The zero LinkConfig is a
// behavioral no-op: it makes exactly the RNG draws the unconditioned
// network makes, so default runs replay bit for bit.

// LinkConfig selects the adversarial link-conditioning models. The zero
// value reproduces the paper's network exactly.
type LinkConfig struct {
	// Burst replaces the i.i.d. Config.Loss with Gilbert–Elliott
	// two-state burst loss. Enabled when Burst.Enabled(); Config.Loss
	// must then be zero (the two loss models are alternatives).
	Burst BurstConfig
	// Delay replaces the uniform one-way delay with a heavy-tailed
	// distribution. The zero value keeps U[MinDelay, MaxDelay].
	Delay DelayConfig
	// Reorder adds probabilistic extra delay to individual frames, so a
	// pair's frames can arrive out of send order far beyond what the
	// base delay spread produces.
	Reorder ReorderConfig
}

// enabled reports whether any conditioning model is active.
func (l LinkConfig) enabled() bool {
	return l.Burst.Enabled() || l.Delay.Dist != DelayUniform || l.Reorder.Prob > 0
}

// validate is folded into Config.validate.
func (l LinkConfig) validate() error {
	if err := l.Burst.validate(); err != nil {
		return err
	}
	if err := l.Delay.validate(); err != nil {
		return err
	}
	if l.Reorder.Prob < 0 || l.Reorder.Prob > 1 {
		return fmt.Errorf("netsim: reorder probability %v out of [0,1]", l.Reorder.Prob)
	}
	if l.Reorder.Extra < 0 {
		return fmt.Errorf("netsim: negative reorder extra delay %v", l.Reorder.Extra)
	}
	return nil
}

// BurstConfig is the Gilbert–Elliott two-state loss chain. Each receiver
// has its own chain, advanced once per frame addressed to it: in the Good
// state frames drop with GoodLoss (usually 0), in the Bad state with
// BadLoss; after the loss draw the chain transitions with GoodToBad or
// BadToGood. The stationary loss rate is π_B·BadLoss + π_G·GoodLoss with
// π_B = GoodToBad/(GoodToBad+BadToGood), and with BadLoss=1 burst lengths
// are geometric with mean 1/BadToGood.
type BurstConfig struct {
	GoodToBad float64
	BadToGood float64
	GoodLoss  float64
	BadLoss   float64
}

// Enabled reports whether the burst model is active.
func (b BurstConfig) Enabled() bool { return b.GoodToBad > 0 && b.BadLoss > 0 }

func (b BurstConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"GoodToBad", b.GoodToBad}, {"BadToGood", b.BadToGood},
		{"GoodLoss", b.GoodLoss}, {"BadLoss", b.BadLoss},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netsim: burst %s %v out of [0,1]", p.name, p.v)
		}
	}
	if b.Enabled() && b.BadToGood <= 0 {
		return fmt.Errorf("netsim: burst BadToGood must be positive (bursts would never end)")
	}
	return nil
}

// StationaryLoss reports the chain's long-run average loss rate.
func (b BurstConfig) StationaryLoss() float64 {
	if b.GoodToBad+b.BadToGood == 0 {
		return b.GoodLoss
	}
	piB := b.GoodToBad / (b.GoodToBad + b.BadToGood)
	return piB*b.BadLoss + (1-piB)*b.GoodLoss
}

// BurstForAverage builds a Gilbert–Elliott chain whose stationary loss
// rate equals avg with geometric bursts of the given mean length — the
// apples-to-apples counterpart of an i.i.d. Config.Loss of avg, for
// comparing the two models at equal average rate.
func BurstForAverage(avg, meanBurst float64) BurstConfig {
	if avg <= 0 || avg >= 1 || meanBurst < 1 {
		panic(fmt.Sprintf("netsim: BurstForAverage(%v, %v) needs avg in (0,1) and meanBurst ≥ 1", avg, meanBurst))
	}
	// GoodToBad = avg/((1-avg)·meanBurst) must stay a probability: the
	// stationary rate avg is unreachable when bursts are too short to
	// spend avg of the time in Bad (avg/(1-avg) > meanBurst).
	if avg/(1-avg) > meanBurst {
		panic(fmt.Sprintf("netsim: BurstForAverage(%v, %v) infeasible: needs meanBurst ≥ avg/(1-avg) = %.3f",
			avg, meanBurst, avg/(1-avg)))
	}
	pBG := 1 / meanBurst
	return BurstConfig{
		GoodToBad: avg * pBG / (1 - avg),
		BadToGood: pBG,
		BadLoss:   1,
	}
}

// DelayDist selects the one-way delay distribution.
type DelayDist uint8

const (
	// DelayUniform is the paper's U[MinDelay, MaxDelay].
	DelayUniform DelayDist = iota
	// DelayLognormal is a lognormal with median (MinDelay+MaxDelay)/2 and
	// shape Sigma, floored at MinDelay and capped at Cap.
	DelayLognormal
	// DelayPareto is a Pareto tail with median (MinDelay+MaxDelay)/2 and
	// exponent Alpha, floored at MinDelay and capped at Cap.
	DelayPareto
)

func (d DelayDist) String() string {
	switch d {
	case DelayUniform:
		return "uniform"
	case DelayLognormal:
		return "lognormal"
	case DelayPareto:
		return "pareto"
	default:
		return "?"
	}
}

// ParseDelayDist resolves a distribution name.
func ParseDelayDist(s string) (DelayDist, error) {
	switch s {
	case "uniform", "":
		return DelayUniform, nil
	case "lognormal":
		return DelayLognormal, nil
	case "pareto":
		return DelayPareto, nil
	default:
		return DelayUniform, fmt.Errorf("netsim: unknown delay distribution %q", s)
	}
}

// DelayConfig parameterizes the heavy-tailed delay models. Draws come
// from a precomputed inverse-CDF table (delayTableSize quantiles), so the
// per-frame cost is one RNG draw and one index — the same as uniform.
type DelayConfig struct {
	Dist DelayDist
	// Sigma is the lognormal shape; 0 means 1.0.
	Sigma float64
	// Alpha is the Pareto tail exponent; 0 means 1.5.
	Alpha float64
	// Cap bounds the tail; 0 means 100×MaxDelay.
	Cap sim.Duration
}

func (d DelayConfig) validate() error {
	switch d.Dist {
	case DelayUniform, DelayLognormal, DelayPareto:
	default:
		return fmt.Errorf("netsim: unknown delay distribution %d", d.Dist)
	}
	if d.Sigma < 0 {
		return fmt.Errorf("netsim: negative lognormal sigma %v", d.Sigma)
	}
	if d.Alpha < 0 {
		return fmt.Errorf("netsim: negative Pareto alpha %v", d.Alpha)
	}
	if d.Cap < 0 {
		return fmt.Errorf("netsim: negative delay cap %v", d.Cap)
	}
	return nil
}

// delayTableSize is the inverse-CDF discretization. 4096 quantiles keep
// the table within one page and the tail resolution below 0.025%.
const delayTableSize = 4096

// delayTableKey identifies the inputs a delay table was built from, so
// Reset/Rearm with an unchanged configuration skip the rebuild.
type delayTableKey struct {
	d        DelayConfig
	min, max sim.Duration
}

// buildDelayTable precomputes the quantile table for a non-uniform delay
// configuration. Entry i is the ((i+0.5)/N)-quantile, clamped to
// [MinDelay, cap]; sampling a uniform index then reproduces the
// distribution up to the discretization.
func buildDelayTable(table []sim.Duration, d DelayConfig, min, max sim.Duration) []sim.Duration {
	table = table[:0]
	capD := d.Cap
	if capD == 0 {
		capD = 100 * max
	}
	sigma := d.Sigma
	if sigma == 0 {
		sigma = 1.0
	}
	alpha := d.Alpha
	if alpha == 0 {
		alpha = 1.5
	}
	mid := float64(min+max) / 2
	mu := math.Log(mid)
	// Anchor the Pareto median at the uniform midpoint, so the
	// distributions differ in tail weight, not in scale.
	xm := mid / math.Pow(2, 1/alpha)
	for i := 0; i < delayTableSize; i++ {
		p := (float64(i) + 0.5) / delayTableSize
		var v float64
		switch d.Dist {
		case DelayLognormal:
			// Φ⁻¹(p) via the error function inverse.
			v = math.Exp(mu + sigma*math.Sqrt2*math.Erfinv(2*p-1))
		case DelayPareto:
			v = xm / math.Pow(1-p, 1/alpha)
		}
		dur := sim.Duration(v)
		if dur < min {
			dur = min
		}
		if dur > capD {
			dur = capD
		}
		table = append(table, dur)
	}
	return table
}

// ReorderConfig adds out-of-order delivery: each frame independently
// receives Extra additional delay with probability Prob, letting later
// frames on the same pair overtake it.
type ReorderConfig struct {
	Prob  float64
	Extra sim.Duration
}

// Gilbert–Elliott chain states, per receiver.
const (
	geGood uint8 = iota
	geBad
)

// prepareLink (re)builds the per-network conditioning state for the
// current configuration: the per-receiver Gilbert–Elliott states (all
// Good) and the delay quantile table (rebuilt only when its inputs
// changed). Called from New, Reset and Rearm.
func (nw *Network) prepareLink() {
	nw.burstOn = nw.cfg.Link.Burst.Enabled()
	if nw.burstOn {
		need := len(nw.nodes)
		if cap(nw.geState) < need {
			nw.geState = make([]uint8, need)
		} else {
			nw.geState = nw.geState[:need]
			clear(nw.geState)
		}
	} else {
		nw.geState = nw.geState[:0]
	}
	if nw.cfg.Link.Delay.Dist == DelayUniform {
		nw.delayTable = nil
		return
	}
	key := delayTableKey{d: nw.cfg.Link.Delay, min: nw.cfg.MinDelay, max: nw.cfg.MaxDelay}
	if nw.delayTable != nil && nw.delayKey == key {
		return
	}
	nw.delayTable = buildDelayTable(nw.delayTable, nw.cfg.Link.Delay, nw.cfg.MinDelay, nw.cfg.MaxDelay)
	nw.delayKey = key
}

// linkLose draws the loss decision for one frame addressed to `to`. With
// the burst model off this is exactly the unconditioned i.i.d. draw —
// same branches, same RNG consumption — so default configs replay the
// paper's runs bit for bit.
func (nw *Network) linkLose(to NodeID) bool {
	if nw.burstOn {
		return nw.geLose(to)
	}
	return nw.cfg.Loss > 0 && nw.k.Rand().Float64() < nw.cfg.Loss
}

// geLose advances the receiver's Gilbert–Elliott chain by one frame.
func (nw *Network) geLose(to NodeID) bool {
	b := nw.cfg.Link.Burst
	st := &nw.geState[int(to)-nw.idBase]
	var lost bool
	if *st == geBad {
		lost = nw.k.Rand().Float64() < b.BadLoss
		if nw.k.Rand().Float64() < b.BadToGood {
			*st = geGood
		}
	} else {
		if b.GoodLoss > 0 {
			lost = nw.k.Rand().Float64() < b.GoodLoss
		}
		if nw.k.Rand().Float64() < b.GoodToBad {
			*st = geBad
		}
	}
	return lost
}

// linkDelay draws the one-way delay for one frame. The uniform default
// is the unconditioned draw; the table path costs the same single draw.
func (nw *Network) linkDelay() sim.Duration {
	var d sim.Duration
	if nw.delayTable != nil {
		d = nw.delayTable[nw.k.Rand().Intn(delayTableSize)]
	} else {
		d = nw.k.UniformDuration(nw.cfg.MinDelay, nw.cfg.MaxDelay)
	}
	if r := nw.cfg.Link.Reorder; r.Prob > 0 && nw.k.Rand().Float64() < r.Prob {
		d += r.Extra
	}
	return d
}
