// Package netsim simulates the local area network underneath the service
// discovery protocols: nodes with independently failing transmitter and
// receiver interfaces, unreliable UDP unicast and multicast, and the
// paper's two-phase TCP abstraction (Table 3). It also carries the
// message-accounting machinery behind the Update Efficiency metrics.
package netsim

import "repro/internal/sim"

// NodeID identifies a node on the simulated LAN. In a sharded fabric the
// upper bits carry the owning shard and the lower shardShift bits the
// node's index in that shard's table; an unsharded network is shard 0,
// where the encoding degenerates to the plain table index, so IDs (and
// every stream derived from them) are unchanged for single-fabric runs.
type NodeID int

// NoNode is the zero NodeID, used where a sender or receiver is absent.
const NoNode NodeID = -1

// shardShift splits a NodeID into (shard, local): 4 billion nodes per
// shard, with shard 0 encoding identical to the unsharded scheme.
const shardShift = 32

// MakeNodeID composes a NodeID from a shard and a per-shard node index.
func MakeNodeID(shard, local int) NodeID {
	return NodeID(shard<<shardShift | local)
}

// Shard reports the shard that owns the node. NoNode reports -1 (the
// arithmetic shift keeps it out of every real shard).
func (id NodeID) Shard() int { return int(id >> shardShift) }

// Local reports the node's index in its shard's table.
func (id NodeID) Local() int { return int(id) & (1<<shardShift - 1) }

// Group identifies a multicast group.
type Group int

// Transport classifies a frame for the accounting rules of §4.5: Update
// Efficiency counts discovery-layer messages only, never transport frames
// ("the Efficiency Degradation metric ... do[es] not take into account the
// messages used by the transmission layers").
type Transport uint8

const (
	// UDP is an unreliable datagram; one frame per discovery message.
	UDP Transport = iota
	// TCPData is the frame carrying a discovery message over a TCP
	// connection. The first transmission represents the discovery-layer
	// send; retransmissions are transport frames.
	TCPData
	// TCPControl is a connection setup or acknowledgement frame.
	TCPControl
)

func (tr Transport) String() string {
	switch tr {
	case UDP:
		return "udp"
	case TCPData:
		return "tcp"
	case TCPControl:
		return "tcp-ctl"
	default:
		return "unknown"
	}
}

// Message is a frame in flight. Protocols fill Kind, Counted and Payload;
// the network fills the rest.
type Message struct {
	From      NodeID
	To        NodeID // receiver; for multicast, the member this copy goes to
	Multicast bool
	Kind      string // human-readable type, e.g. "ServiceUpdate"
	// Counted marks a discovery-layer send that contributes to the update
	// effort y of the Update Efficiency metrics. See counters.go for the
	// convention that reproduces the paper's m' values.
	Counted   bool
	Payload   any
	Transport Transport
	// Retransmit marks a transport-level retransmission of an earlier
	// TCPData frame; retransmissions never count as discovery sends.
	Retransmit bool
	SentAt     sim.Time
	// Conn is the TCP connection a TCPData payload arrived on, letting the
	// receiver answer over the same connection (HTTP responses, Jini
	// acknowledgements). Nil for UDP traffic.
	Conn *TCPConn
}

// Outgoing is what a protocol hands to the network to transmit.
type Outgoing struct {
	Kind    string
	Counted bool
	Payload any
}

// Endpoint is the protocol-side receiver attached to a node.
type Endpoint interface {
	// Deliver hands a successfully received message to the protocol.
	Deliver(m *Message)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(m *Message)

// Deliver implements Endpoint.
func (f EndpointFunc) Deliver(m *Message) { f(m) }
