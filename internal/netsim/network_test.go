package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// harness wires a kernel, network and a set of endpoint mailboxes.
type harness struct {
	k     *sim.Kernel
	nw    *Network
	nodes []*Node
	inbox [][]*Message
}

func newHarness(t *testing.T, n int, cfg Config) *harness {
	t.Helper()
	h := &harness{k: sim.New(1)}
	h.nw = mustNew(h.k, cfg)
	h.inbox = make([][]*Message, n)
	for i := 0; i < n; i++ {
		i := i
		node := h.nw.AddNode("")
		node.SetEndpoint(EndpointFunc(func(m *Message) {
			// Delivered messages are pooled and recycled after Deliver
			// returns; retain a copy, as real endpoints retain payloads.
			cp := *m
			h.inbox[i] = append(h.inbox[i], &cp)
		}))
		h.nodes = append(h.nodes, node)
	}
	return h
}

func TestUDPDelivery(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.nw.SendUDP(0, 1, Outgoing{Kind: "ping", Counted: true, Payload: 42})
	h.k.Run(sim.Second)
	if len(h.inbox[1]) != 1 {
		t.Fatalf("receiver got %d messages, want 1", len(h.inbox[1]))
	}
	m := h.inbox[1][0]
	if m.Payload.(int) != 42 || m.Kind != "ping" || m.From != 0 {
		t.Errorf("bad message: %+v", m)
	}
	if c := h.nw.Counters(); c.DiscoverySends != 1 || c.Delivered != 1 || c.Counted() != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestUDPDelayWithinBounds(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	var deliveredAt sim.Time
	h.nodes[1].SetEndpoint(EndpointFunc(func(m *Message) { deliveredAt = h.k.Now() }))
	h.nw.SendUDP(0, 1, Outgoing{Kind: "x"})
	h.k.Run(sim.Second)
	if deliveredAt < 10*sim.Microsecond || deliveredAt > 100*sim.Microsecond {
		t.Errorf("delivered at %v, want within [10µs,100µs]", deliveredAt)
	}
}

func TestUDPDroppedWhenTxDown(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[0].SetTx(false)
	h.nw.SendUDP(0, 1, Outgoing{Kind: "x", Counted: true})
	h.k.Run(sim.Second)
	if len(h.inbox[1]) != 0 {
		t.Error("message delivered despite Tx down")
	}
	// The attempt still counts as update effort: the device spent the send.
	if h.nw.Counters().Counted() != 1 {
		t.Errorf("counted = %d, want 1", h.nw.Counters().Counted())
	}
	if h.nw.Counters().Drops != 1 {
		t.Errorf("drops = %d, want 1", h.nw.Counters().Drops)
	}
}

func TestUDPDroppedWhenRxDownAtArrival(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[1].SetRx(false)
	h.nw.SendUDP(0, 1, Outgoing{Kind: "x"})
	h.k.Run(sim.Second)
	if len(h.inbox[1]) != 0 {
		t.Error("message delivered despite Rx down")
	}
}

func TestUDPRxOnlyFailureStillSends(t *testing.T) {
	// A node whose receiver failed can still transmit (§5 Step 2).
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[0].SetRx(false)
	h.nw.SendUDP(0, 1, Outgoing{Kind: "x"})
	h.k.Run(sim.Second)
	if len(h.inbox[1]) != 1 {
		t.Error("Rx failure blocked transmission")
	}
}

func TestMulticastFanOutAndRedundancy(t *testing.T) {
	h := newHarness(t, 4, DefaultConfig())
	g := Group(1)
	for i := 0; i < 4; i++ {
		h.nw.Join(NodeID(i), g)
	}
	h.nw.Multicast(0, g, Outgoing{Kind: "announce", Counted: true}, 6)
	h.k.Run(sim.Second)
	for i := 1; i < 4; i++ {
		if len(h.inbox[i]) != 6 {
			t.Errorf("member %d received %d copies, want 6", i, len(h.inbox[i]))
		}
	}
	if len(h.inbox[0]) != 0 {
		t.Error("sender received its own multicast")
	}
	// 6 wire transmissions, regardless of group size.
	if got := h.nw.Counters().Counted(); got != 6 {
		t.Errorf("counted sends = %d, want 6", got)
	}
}

func TestMulticastLeave(t *testing.T) {
	h := newHarness(t, 3, DefaultConfig())
	g := Group(1)
	for i := 0; i < 3; i++ {
		h.nw.Join(NodeID(i), g)
	}
	h.nw.Leave(2, g)
	h.nw.Multicast(0, g, Outgoing{Kind: "a"}, 1)
	h.k.Run(sim.Second)
	if len(h.inbox[1]) != 1 || len(h.inbox[2]) != 0 {
		t.Errorf("membership not respected: %d/%d", len(h.inbox[1]), len(h.inbox[2]))
	}
}

func TestMessageLossModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Loss = 0.5
	h := newHarness(t, 2, cfg)
	const n = 2000
	for i := 0; i < n; i++ {
		h.nw.SendUDP(0, 1, Outgoing{Kind: "x"})
	}
	h.k.Run(sim.Second)
	got := len(h.inbox[1])
	if got < n*4/10 || got > n*6/10 {
		t.Errorf("with 50%% loss %d/%d delivered, want ~50%%", got, n)
	}
}

func TestInterfaceChangeCallback(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig())
	var transitions []string
	h.nodes[0].OnInterfaceChange(func(tx, rx bool) {
		transitions = append(transitions, ifaceEvent("tx", tx)+"/"+ifaceEvent("rx", rx))
	})
	h.nodes[0].SetTx(false)
	h.nodes[0].SetTx(false) // no-op, no callback
	h.nodes[0].SetRx(false)
	h.nodes[0].SetTx(true)
	if len(transitions) != 3 {
		t.Errorf("got %d transitions, want 3: %v", len(transitions), transitions)
	}
	if h.nodes[0].Up() {
		t.Error("node reports Up with Rx down")
	}
}

func TestCountedInWindow(t *testing.T) {
	h := newHarness(t, 2, DefaultConfig())
	for i := 1; i <= 5; i++ {
		at := sim.Duration(i) * sim.Second
		h.k.At(at, func() { h.nw.SendUDP(0, 1, Outgoing{Kind: "x", Counted: true}) })
	}
	h.k.Run(10 * sim.Second)
	c := h.nw.Counters()
	if got := c.CountedInWindow(2*sim.Second, 4*sim.Second); got != 3 {
		t.Errorf("window [2s,4s] = %d, want 3", got)
	}
	if got := c.CountedInWindow(0, 10*sim.Second); got != 5 {
		t.Errorf("window [0,10s] = %d, want 5", got)
	}
	if got := c.CountedInWindow(6*sim.Second, 10*sim.Second); got != 0 {
		t.Errorf("window [6s,10s] = %d, want 0", got)
	}
	if got := c.CountedInWindow(4*sim.Second, 2*sim.Second); got != 0 {
		t.Errorf("inverted window = %d, want 0", got)
	}
}

func TestRecorderNodeEvents(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig())
	h.nodes[0].Name = "Manager"
	rec := NewRecorder(h.nw)
	h.nw.SetTracer(rec)
	h.k.At(381*sim.Second, func() { h.nodes[0].SetTx(false) })
	h.k.At(1191*sim.Second, func() { h.nodes[0].SetTx(true) })
	h.k.Run(2000 * sim.Second)
	if len(rec.Lines()) != 2 {
		t.Fatalf("got %d lines: %v", len(rec.Lines()), rec.Lines())
	}
	if want := "Manager Tx down"; !contains(rec.Lines()[0], want) {
		t.Errorf("line %q does not contain %q", rec.Lines()[0], want)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// Property: the failure planner always produces outages inside the window
// with the exact λ-proportional duration, and never fails a node twice.
func TestQuickFailurePlanInvariants(t *testing.T) {
	f := func(seed int64, lambdaPct uint8, nNodes uint8) bool {
		lambda := float64(lambdaPct%91) / 100
		n := int(nNodes%10) + 1
		k := sim.New(seed)
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = NodeID(i)
		}
		cfg := DefaultFailurePlanConfig(lambda)
		plan := PlanInterfaceFailures(k, ids, cfg)
		if lambda == 0 {
			return len(plan) == 0
		}
		if len(plan) != n {
			return false
		}
		seen := map[NodeID]bool{}
		for _, f := range plan {
			if seen[f.Node] {
				return false
			}
			seen[f.Node] = true
			if f.Start < cfg.WindowStart || f.Start > cfg.WindowEnd {
				return false
			}
			if f.Duration != sim.Duration(lambda*float64(cfg.RunDuration)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScheduleFailureTogglesInterfaces(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig())
	f := InterfaceFailure{Node: 0, Mode: FailBoth, Start: 10 * sim.Second, Duration: 20 * sim.Second}
	h.nw.ScheduleFailure(f)
	var during, after bool
	h.k.At(15*sim.Second, func() { during = h.nodes[0].Up() })
	h.k.At(35*sim.Second, func() { after = h.nodes[0].Up() })
	h.k.Run(40 * sim.Second)
	if during {
		t.Error("node up during failure")
	}
	if !after {
		t.Error("node not recovered after failure")
	}
}

func TestFailModeTxOnly(t *testing.T) {
	h := newHarness(t, 1, DefaultConfig())
	h.nw.ScheduleFailure(InterfaceFailure{Node: 0, Mode: FailTx, Start: sim.Second, Duration: sim.Second})
	h.k.At(1500*sim.Millisecond, func() {
		if h.nodes[0].TxUp() {
			t.Error("Tx up during Tx failure")
		}
		if !h.nodes[0].RxUp() {
			t.Error("Rx down during Tx-only failure")
		}
	})
	h.k.Run(3 * sim.Second)
}
