package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: under arbitrary interface flap schedules, a TCP transfer
// never delivers its payload more than once, and a nil result implies
// exactly one delivery.
func TestQuickTCPExactlyOnce(t *testing.T) {
	type flap struct {
		Node  bool // false: sender, true: receiver
		Tx    bool // which interface
		AtMS  uint16
		ForMS uint16
	}
	f := func(seed int64, flaps []flap) bool {
		k := sim.New(seed)
		nw := mustNew(k, DefaultConfig())
		a := nw.AddNode("a")
		b := nw.AddNode("b")
		delivered := 0
		b.SetEndpoint(EndpointFunc(func(*Message) { delivered++ }))
		var result error
		done := false
		nw.SendTCP(a.ID, b.ID, Outgoing{Kind: "x"}, func(err error) {
			result = err
			done = true
		})
		for _, fl := range flaps {
			fl := fl
			node := a
			if fl.Node {
				node = b
			}
			at := sim.Duration(fl.AtMS) * sim.Millisecond
			dur := sim.Duration(fl.ForMS)*sim.Millisecond + sim.Millisecond
			k.At(sim.Time(at), func() {
				if fl.Tx {
					node.SetTx(false)
				} else {
					node.SetRx(false)
				}
			})
			k.At(sim.Time(at+dur), func() {
				if fl.Tx {
					node.SetTx(true)
				} else {
					node.SetRx(true)
				}
			})
		}
		k.Run(10 * sim.Hour)
		if delivered > 1 {
			return false
		}
		if done && result == nil && delivered != 1 {
			return false
		}
		if done && result == ErrREX && delivered != 0 {
			// A REX happens before any data frame leaves.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: UDP with loss never duplicates and never delivers after a
// drop was recorded for that frame (each send is at most one delivery).
func TestQuickUDPAtMostOnce(t *testing.T) {
	f := func(seed int64, sends uint8, lossPct uint8) bool {
		cfg := DefaultConfig()
		cfg.Loss = float64(lossPct%100) / 100
		k := sim.New(seed)
		nw := mustNew(k, cfg)
		a := nw.AddNode("a")
		b := nw.AddNode("b")
		delivered := 0
		b.SetEndpoint(EndpointFunc(func(*Message) { delivered++ }))
		n := int(sends)
		for i := 0; i < n; i++ {
			nw.SendUDP(a.ID, b.ID, Outgoing{Kind: "x"})
		}
		k.Run(sim.Minute)
		c := nw.Counters()
		if delivered > n {
			return false
		}
		return delivered+c.Drops == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: counted sends are monotone in time, so CountedInWindow is
// consistent with the total for any window split.
func TestQuickCountedWindowAdditive(t *testing.T) {
	f := func(seed int64, times []uint16, split uint16) bool {
		k := sim.New(seed)
		nw := mustNew(k, DefaultConfig())
		a := nw.AddNode("a")
		nw.AddNode("b")
		for _, ms := range times {
			at := sim.Time(ms) * sim.Millisecond
			k.At(at, func() { nw.SendUDP(a.ID, 1, Outgoing{Kind: "x", Counted: true}) })
		}
		k.Run(sim.Time(1<<16) * sim.Millisecond)
		c := nw.Counters()
		mid := sim.Time(split) * sim.Millisecond
		end := sim.Time(1<<16) * sim.Millisecond
		left := c.CountedInWindow(0, mid)
		right := c.CountedInWindow(mid+1, end)
		return left+right == c.Counted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
