package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// FailMode selects which interface(s) a failure takes down. Failing the
// transmitter or the receiver models a communication failure; failing both
// models a node failure (§5 Step 2).
type FailMode uint8

const (
	FailTx FailMode = iota
	FailRx
	FailBoth
)

func (m FailMode) String() string {
	switch m {
	case FailTx:
		return "Tx"
	case FailRx:
		return "Rx"
	case FailBoth:
		return "Tx+Rx"
	default:
		return "?"
	}
}

// InterfaceFailure is one planned outage of a node's interfaces.
type InterfaceFailure struct {
	Node     NodeID
	Mode     FailMode
	Start    sim.Time
	Duration sim.Duration
}

// End reports when the interfaces recover.
func (f InterfaceFailure) End() sim.Time { return f.Start + f.Duration }

// String renders the failure in the style of the paper's event logs
// ("Manager Tx down at 381, up at 1191").
func (f InterfaceFailure) String() string {
	return fmt.Sprintf("node %d %s down at %.0f, up at %.0f", f.Node, f.Mode, f.Start.Sec(), f.End().Sec())
}

// FailurePlanConfig parameterizes the paper's interface-failure model.
type FailurePlanConfig struct {
	// Lambda is the failure rate λ ∈ [0,1]: the fraction of the run each
	// node spends with failed interface(s).
	Lambda float64
	// WindowStart and WindowEnd bound the uniformly-drawn activation time
	// (§5 Step 2: "interface failure occurs at a random time, from 100s to
	// 5400s").
	WindowStart, WindowEnd sim.Time
	// RunDuration is the full simulation length; the outage lasts
	// λ·RunDuration (possibly extending past the end of the run).
	RunDuration sim.Duration
}

// DefaultFailurePlanConfig returns the §5 experiment parameters for a
// given λ.
func DefaultFailurePlanConfig(lambda float64) FailurePlanConfig {
	return FailurePlanConfig{
		Lambda:      lambda,
		WindowStart: 100 * sim.Second,
		WindowEnd:   5400 * sim.Second,
		RunDuration: 5400 * sim.Second,
	}
}

// PlanInterfaceFailures draws one outage per node: mode uniform over
// {Tx, Rx, both}, start uniform in the window, duration λ·RunDuration.
// With λ = 0 it returns no failures.
func PlanInterfaceFailures(k *sim.Kernel, nodes []NodeID, cfg FailurePlanConfig) []InterfaceFailure {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		panic(fmt.Sprintf("netsim: lambda %v out of [0,1]", cfg.Lambda))
	}
	if cfg.Lambda == 0 {
		return nil
	}
	failures := make([]InterfaceFailure, 0, len(nodes))
	for _, id := range nodes {
		f := InterfaceFailure{
			Node:     id,
			Mode:     FailMode(k.Rand().Intn(3)),
			Start:    k.UniformTime(cfg.WindowStart, cfg.WindowEnd),
			Duration: sim.Duration(cfg.Lambda * float64(cfg.RunDuration)),
		}
		failures = append(failures, f)
	}
	return failures
}

// RackPlanConfig parameterizes correlated rack-level failures: the node
// table is divided into Racks contiguous blocks ("racks" — infrastructure
// occupies the first slots, so rack 0 holds the Registries and Managers),
// Fail of them are drawn at random, and every member of a failing rack
// loses both interfaces within one short window — the correlated regime
// (a switch dies, a PDU trips) that per-node λ draws never concentrate
// on. The zero value is disabled and draws no randomness, so default
// runs replay unchanged.
type RackPlanConfig struct {
	// Racks is the number of contiguous rack groups; nodes are assigned
	// by table position (rack r owns slots [r·N/Racks, (r+1)·N/Racks)).
	Racks int
	// Fail is how many distinct racks fail, drawn uniformly.
	Fail int
	// WindowStart and WindowEnd bound the uniformly-drawn instant each
	// failing rack starts to go down.
	WindowStart, WindowEnd sim.Time
	// Duration is each member's outage length.
	Duration sim.Duration
	// Spread staggers the members of one failing rack: each goes down at
	// the rack's start plus U[0, Spread) — near-simultaneous, not
	// instant, like a real cascading power event. 0 means simultaneous.
	Spread sim.Duration
}

// Enabled reports whether the plan does anything.
func (c RackPlanConfig) Enabled() bool { return c.Racks > 0 && c.Fail > 0 }

// Validate rejects impossible rack plans.
func (c RackPlanConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case c.Fail > c.Racks:
		return fmt.Errorf("netsim: rack plan fails %d of %d racks", c.Fail, c.Racks)
	case c.Duration <= 0:
		return fmt.Errorf("netsim: rack outage duration %v must be positive", c.Duration)
	case c.Spread < 0:
		return fmt.Errorf("netsim: negative rack spread %v", c.Spread)
	case c.WindowEnd < c.WindowStart:
		return fmt.Errorf("netsim: rack window end %v before start %v", c.WindowEnd, c.WindowStart)
	}
	return nil
}

// PlanRackFailures draws one correlated outage per failing rack: the
// failing racks come from a random permutation, each draws one start
// time in the window, and every member node fails both interfaces at
// start + U[0, Spread) for cfg.Duration. The returned failures compose
// with the per-node λ plan via ScheduleFailures. Racks larger than the
// node table degrade gracefully (some racks are empty).
func PlanRackFailures(k *sim.Kernel, nodes []NodeID, cfg RackPlanConfig) []InterfaceFailure {
	if !cfg.Enabled() {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	failing := k.Rand().Perm(cfg.Racks)[:cfg.Fail]
	failures := make([]InterfaceFailure, 0, cfg.Fail*len(nodes)/cfg.Racks+1)
	for _, r := range failing {
		lo := r * len(nodes) / cfg.Racks
		hi := (r + 1) * len(nodes) / cfg.Racks
		start := k.UniformTime(cfg.WindowStart, cfg.WindowEnd)
		for _, id := range nodes[lo:hi] {
			at := start
			if cfg.Spread > 0 {
				at += sim.Time(k.UniformDuration(0, cfg.Spread))
			}
			failures = append(failures, InterfaceFailure{
				Node: id, Mode: FailBoth, Start: at, Duration: cfg.Duration,
			})
		}
	}
	return failures
}

// outage is the pooled record behind one scheduled interface transition.
// Records live in the network's index-recycled arena rather than a free
// list: a recovery event frequently lies beyond the run horizon and never
// fires, so free-list accounting would leak one record per node per run.
type outage struct {
	node *Node
	gen  uint32
	mode FailMode
	up   bool
}

func (nw *Network) allocOutage() *outage {
	if nw.outageNext < len(nw.outages) {
		o := nw.outages[nw.outageNext]
		nw.outageNext++
		return o
	}
	o := &outage{}
	nw.outages = append(nw.outages, o)
	nw.outageNext++
	return o
}

// applyOutage is the static kernel callback for planned transitions.
func applyOutage(x any) {
	o := x.(*outage)
	if o.node.gen != o.gen {
		return
	}
	if o.mode == FailTx || o.mode == FailBoth {
		o.node.SetTx(o.up)
	}
	if o.mode == FailRx || o.mode == FailBoth {
		o.node.SetRx(o.up)
	}
}

// ScheduleFailure arms the down/up transitions for one planned outage.
// The outage is pinned to the node's current slot tenancy: if the node
// is retired and its slot recycled before a transition fires, the new
// tenant does not inherit the planned outage (arrivals receive no
// failure draw).
func (nw *Network) ScheduleFailure(f InterfaceFailure) {
	node := nw.Node(f.Node)
	down := nw.allocOutage()
	*down = outage{node: node, gen: node.gen, mode: f.Mode, up: false}
	nw.k.AtArg(f.Start, applyOutage, down)
	up := nw.allocOutage()
	*up = outage{node: node, gen: node.gen, mode: f.Mode, up: true}
	nw.k.AtArg(f.End(), applyOutage, up)
}

// ScheduleFailures arms a whole failure plan.
func (nw *Network) ScheduleFailures(fs []InterfaceFailure) {
	for _, f := range fs {
		nw.ScheduleFailure(f)
	}
}
