package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Partition is one scheduled transient network split: from Start until
// Start+Duration, frames between the two sides are dropped on the wire
// ("partitioned"); at the end the split heals and connectivity returns.
// Partitions model the self-stabilization scenarios the interface-failure
// arena cannot express — both halves keep running, each side's traffic
// flows normally, only cross-side frames die — and compose freely with
// planned interface failures.
//
// At most one partition may be active at a time; schedules whose windows
// overlap are rejected by SchedulePartition.
type Partition struct {
	Start    sim.Time
	Duration sim.Duration
	// SideB lists the nodes isolated from the rest. Nodes attached after
	// the split activates (churn arrivals) land on side A.
	SideB []NodeID
	// Bisect, when SideB is nil, isolates the upper half of the node
	// table as it stands at Start — a system-agnostic "split the
	// population" knob for sweeps, where per-system node IDs differ.
	Bisect bool
}

// End reports when the partition heals.
func (p Partition) End() sim.Time { return p.Start + p.Duration }

func (p Partition) validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("netsim: partition duration %v must be positive", p.Duration)
	}
	if len(p.SideB) == 0 && !p.Bisect {
		return fmt.Errorf("netsim: partition needs SideB nodes or Bisect")
	}
	return nil
}

// partEvent is the pooled record behind one partition transition; like
// the outage arena, records are index-recycled per run. A heal links to
// its activation record (peer), so it only deactivates the split it
// started: with back-to-back windows, the next partition's same-instant
// activation may fire first, and the stale heal must not clear it.
type partEvent struct {
	nw   *Network
	p    Partition
	on   bool
	peer *partEvent
}

func (nw *Network) allocPartEvent() *partEvent {
	if nw.partNext < len(nw.partEvents) {
		e := nw.partEvents[nw.partNext]
		nw.partNext++
		return e
	}
	e := &partEvent{}
	nw.partEvents = append(nw.partEvents, e)
	nw.partNext++
	return e
}

// applyPartition is the static kernel callback for split/heal transitions.
func applyPartition(x any) {
	e := x.(*partEvent)
	nw := e.nw
	if e.on {
		nw.activatePartition(e.p)
		nw.partOwner = e
		return
	}
	if nw.partOwner != e.peer {
		return // a back-to-back partition already took over this instant
	}
	nw.partActive = false
	nw.partOwner = nil
	nw.traceNode(NoNode, "partition heal")
}

func (nw *Network) activatePartition(p Partition) {
	need := len(nw.nodes)
	if cap(nw.partSideB) < need {
		nw.partSideB = make([]bool, need)
	} else {
		nw.partSideB = nw.partSideB[:need]
		clear(nw.partSideB)
	}
	clear(nw.partRemoteB)
	if p.SideB != nil {
		for _, id := range p.SideB {
			if i := int(id) - nw.idBase; i >= 0 && i < need {
				nw.partSideB[i] = true
			} else if nw.router != nil {
				// A side-B node owned by another shard: the fault
				// coordinator schedules the same resolved plan on every
				// shard, and cross-shard sends must see the remote peer's
				// side to drop split-crossing frames at the sender.
				if nw.partRemoteB == nil {
					nw.partRemoteB = make(map[NodeID]bool)
				}
				nw.partRemoteB[id] = true
			}
		}
	} else {
		for i := need / 2; i < need; i++ {
			nw.partSideB[i] = true
		}
	}
	nw.partActive = true
	nw.traceNode(NoNode, "partition start")
}

// partitioned reports whether a frame from one node to another crosses an
// active split. Nodes outside the side bitmap (attached after
// activation) count as side A.
func (nw *Network) partitioned(from, to NodeID) bool {
	if !nw.partActive {
		return false
	}
	return nw.side(from) != nw.side(to)
}

func (nw *Network) side(id NodeID) bool {
	i := int(id) - nw.idBase
	if i >= 0 && i < len(nw.nodes) {
		return i < len(nw.partSideB) && nw.partSideB[i]
	}
	return nw.partRemoteB[id] // a peer on another shard of the fabric
}

// SchedulePartition arms the split and heal transitions for one planned
// partition. Invalid or overlapping schedules panic: partitions come
// from experiment plans, where a bad window always indicates a bug.
func (nw *Network) SchedulePartition(p Partition) {
	if err := p.validate(); err != nil {
		panic(err)
	}
	for _, e := range nw.partEvents[:nw.partNext] {
		if e.on && p.Start < e.p.End() && e.p.Start < p.End() {
			panic(fmt.Sprintf("netsim: partition [%v,%v) overlaps scheduled [%v,%v)",
				p.Start, p.End(), e.p.Start, e.p.End()))
		}
	}
	on := nw.allocPartEvent()
	*on = partEvent{nw: nw, p: p, on: true}
	nw.k.AtArg(p.Start, applyPartition, on)
	off := nw.allocPartEvent()
	*off = partEvent{nw: nw, p: p, on: false, peer: on}
	nw.k.AtArg(p.End(), applyPartition, off)
}

// SchedulePartitions arms a whole partition plan.
func (nw *Network) SchedulePartitions(ps []Partition) {
	for _, p := range ps {
		nw.SchedulePartition(p)
	}
}
