package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// mustNew builds a network from a configuration the test knows is valid.
func mustNew(k *sim.Kernel, cfg Config) *Network {
	nw, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return nw
}

// geSample drives one receiver's Gilbert–Elliott chain for n frames and
// returns the per-frame loss outcomes, by sending unicast frames on an
// otherwise idle network.
func geSample(seed int64, burst BurstConfig, n int) []bool {
	cfg := DefaultConfig()
	cfg.Link.Burst = burst
	k := sim.New(seed)
	nw := mustNew(k, cfg)
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	delivered := false
	b.SetEndpoint(EndpointFunc(func(*Message) { delivered = true }))
	out := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		delivered = false
		nw.SendUDP(a.ID, b.ID, Outgoing{Kind: "x"})
		k.Run(k.Now() + sim.Second)
		out = append(out, !delivered)
	}
	return out
}

// Property (ISSUE 4 satellite): the empirical Gilbert–Elliott loss rate
// converges to the stationary rate π_B·BadLoss across seeds and chain
// parameters.
func TestQuickGELossConvergesToStationary(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	f := func(seed int64, gtb, btg uint8) bool {
		// Map the fuzzed bytes into a well-conditioned chain: transition
		// probabilities in [0.02, 0.27] keep mixing fast enough that 30k
		// frames estimate the stationary rate tightly.
		burst := BurstConfig{
			GoodToBad: 0.02 + float64(gtb%250)/1000,
			BadToGood: 0.02 + float64(btg%250)/1000,
			BadLoss:   1,
		}
		const frames = 30000
		losses := 0
		for _, lost := range geSample(seed, burst, frames) {
			if lost {
				losses++
			}
		}
		want := burst.StationaryLoss()
		got := float64(losses) / frames
		// Tolerance: 5 standard errors of the i.i.d. estimator plus a
		// correlation allowance for the chain's burstiness.
		tol := 5*math.Sqrt(want*(1-want)/frames)*math.Sqrt(2/burst.BadToGood) + 0.01
		if math.Abs(got-want) > tol {
			t.Logf("seed %d chain %+v: loss %.4f, stationary %.4f, tol %.4f", seed, burst, got, want, tol)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property (ISSUE 4 satellite): with BadLoss=1 the burst-length
// distribution is geometric — mean 1/BadToGood and the fraction of
// length-1 bursts equal to BadToGood, within tolerance across seeds.
func TestQuickGEBurstLengthsGeometric(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in short mode")
	}
	f := func(seed int64, btg uint8) bool {
		burst := BurstConfig{
			GoodToBad: 0.05,
			BadToGood: 0.10 + float64(btg%150)/500, // [0.10, 0.40)
			BadLoss:   1,
		}
		const frames = 60000
		outcomes := geSample(seed, burst, frames)
		var bursts []int
		run := 0
		for _, lost := range outcomes {
			if lost {
				run++
				continue
			}
			if run > 0 {
				bursts = append(bursts, run)
				run = 0
			}
		}
		if len(bursts) < 300 {
			t.Logf("seed %d: only %d bursts, inconclusive sample", seed, len(bursts))
			return false
		}
		total, ones := 0, 0
		for _, b := range bursts {
			total += b
			if b == 1 {
				ones++
			}
		}
		mean := float64(total) / float64(len(bursts))
		wantMean := 1 / burst.BadToGood
		if math.Abs(mean-wantMean) > 0.15*wantMean+0.2 {
			t.Logf("seed %d: burst mean %.2f, want %.2f", seed, mean, wantMean)
			return false
		}
		// Geometric shape check beyond the mean: P(L=1) = BadToGood.
		p1 := float64(ones) / float64(len(bursts))
		if math.Abs(p1-burst.BadToGood) > 0.06 {
			t.Logf("seed %d: P(L=1) %.3f, want %.3f", seed, p1, burst.BadToGood)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// BurstForAverage must hit the requested stationary rate exactly.
func TestBurstForAverageStationary(t *testing.T) {
	for _, avg := range []float64{0.05, 0.2, 0.5} {
		for _, mean := range []float64{1, 4, 16} {
			b := BurstForAverage(avg, mean)
			if got := b.StationaryLoss(); math.Abs(got-avg) > 1e-12 {
				t.Errorf("BurstForAverage(%v,%v).StationaryLoss() = %v", avg, mean, got)
			}
			if !b.Enabled() {
				t.Errorf("BurstForAverage(%v,%v) not enabled", avg, mean)
			}
		}
	}
}

// delaySample draws n one-way delays through the real unicast path by
// timing deliveries on an idle network.
func delaySample(seed int64, cfg Config, n int) []sim.Duration {
	k := sim.New(seed)
	nw := mustNew(k, cfg)
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	var arrival sim.Time
	b.SetEndpoint(EndpointFunc(func(*Message) { arrival = k.Now() }))
	out := make([]sim.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := k.Now()
		nw.SendUDP(a.ID, b.ID, Outgoing{Kind: "x"})
		k.Run(k.Now() + sim.Minute)
		out = append(out, sim.Duration(arrival-start))
	}
	return out
}

// The lognormal table must respect the floor and cap and put its median
// near the configured midpoint.
func TestDelayLognormalShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Link.Delay = DelayConfig{Dist: DelayLognormal, Sigma: 0.8}
	mid := (cfg.MinDelay + cfg.MaxDelay) / 2
	ds := delaySample(3, cfg, 4000)
	below := 0
	for _, d := range ds {
		if d < cfg.MinDelay || d > 100*cfg.MaxDelay {
			t.Fatalf("delay %v outside [floor, cap]", d)
		}
		if d < mid {
			below++
		}
	}
	frac := float64(below) / float64(len(ds))
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("lognormal median off: %.2f of draws below midpoint, want ~0.5", frac)
	}
}

// The Pareto table must be heavy-tailed: its mean well above the uniform
// mean, with draws reaching far beyond MaxDelay yet never past the cap.
func TestDelayParetoHeavyTail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Link.Delay = DelayConfig{Dist: DelayPareto, Alpha: 1.2, Cap: 50 * cfg.MaxDelay}
	ds := delaySample(4, cfg, 4000)
	var sum float64
	tail := 0
	for _, d := range ds {
		if d < cfg.MinDelay || d > 50*cfg.MaxDelay {
			t.Fatalf("delay %v outside [floor, cap]", d)
		}
		sum += float64(d)
		if d > cfg.MaxDelay {
			tail++
		}
	}
	uniformMean := float64(cfg.MinDelay+cfg.MaxDelay) / 2
	if mean := sum / float64(len(ds)); mean < 1.5*uniformMean {
		t.Errorf("Pareto mean %.0f not heavy-tailed vs uniform mean %.0f", mean, uniformMean)
	}
	if tail == 0 {
		t.Error("no Pareto draw beyond MaxDelay")
	}
}

// Reordering must produce out-of-send-order deliveries on a single pair,
// which the base uniform spread alone cannot once frames are spaced
// beyond MaxDelay.
func TestReorderInvertsDeliveryOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Link.Reorder = ReorderConfig{Prob: 0.3, Extra: 10 * sim.Millisecond}
	k := sim.New(7)
	nw := mustNew(k, cfg)
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	var got []int
	b.SetEndpoint(EndpointFunc(func(m *Message) { got = append(got, m.Payload.(int)) }))
	for i := 0; i < 200; i++ {
		i := i
		// Space sends by MaxDelay so only the reorder extra can invert.
		k.At(sim.Time(i)*sim.Time(cfg.MaxDelay)*2, func() {
			nw.SendUDP(a.ID, b.ID, Outgoing{Kind: "seq", Payload: i})
		})
	}
	k.Run(sim.Minute)
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("no delivery-order inversion under reordering")
	}
}

// A partition must drop cross-side frames both ways, leave same-side
// traffic untouched, and heal completely.
func TestPartitionBlocksCrossTrafficAndHeals(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	eps := make([]*countingEndpoint, 4)
	for i := range eps {
		eps[i] = &countingEndpoint{}
		nw.AddNode("").SetEndpoint(eps[i])
	}
	nw.SchedulePartition(Partition{Start: 10 * sim.Second, Duration: 10 * sim.Second,
		SideB: []NodeID{2, 3}})

	send := func(from, to NodeID) { nw.SendUDP(from, to, Outgoing{Kind: "x"}) }
	// Before the split: everything flows.
	send(0, 2)
	k.Run(5 * sim.Second)
	if eps[2].n != 1 {
		t.Fatal("pre-partition frame lost")
	}
	// During the split: cross-side drops both directions, same-side flows.
	k.Run(11 * sim.Second)
	send(0, 2)
	send(3, 1)
	send(0, 1)
	send(2, 3)
	k.Run(15 * sim.Second)
	if eps[2].n != 1 || eps[1].n != 1 || eps[3].n != 1 {
		t.Fatalf("partition semantics wrong: deliveries %d/%d/%d", eps[1].n, eps[2].n, eps[3].n)
	}
	if nw.Counters().Drops != 2 {
		t.Errorf("drops = %d, want 2 cross-side drops", nw.Counters().Drops)
	}
	// After the heal: cross-side flows again.
	k.Run(21 * sim.Second)
	send(0, 2)
	send(3, 1)
	k.Run(25 * sim.Second)
	if eps[2].n != 2 || eps[1].n != 2 {
		t.Error("traffic still blocked after heal")
	}
}

// Bisect splits the node table in half at activation time, and composes
// with a planned interface failure on one of the nodes.
func TestPartitionBisectComposesWithFailures(t *testing.T) {
	k := sim.New(2)
	nw := mustNew(k, DefaultConfig())
	eps := make([]*countingEndpoint, 4)
	for i := range eps {
		eps[i] = &countingEndpoint{}
		nw.AddNode("").SetEndpoint(eps[i])
	}
	nw.SchedulePartition(Partition{Start: 10 * sim.Second, Duration: 20 * sim.Second, Bisect: true})
	nw.ScheduleFailure(InterfaceFailure{Node: 1, Mode: FailRx,
		Start: 5 * sim.Second, Duration: 10 * sim.Second})

	k.Run(11 * sim.Second)
	// Bisect put nodes 2,3 on side B: 0→3 is cross-side; 0→1 is same-side
	// but node 1's Rx is down until 15s.
	nw.SendUDP(0, 3, Outgoing{Kind: "x"})
	nw.SendUDP(0, 1, Outgoing{Kind: "x"})
	nw.SendUDP(2, 3, Outgoing{Kind: "x"})
	k.Run(14 * sim.Second)
	if eps[3].n != 1 || eps[1].n != 0 {
		t.Fatalf("deliveries %d/%d; want same-side B 1, Rx-down 0", eps[3].n, eps[1].n)
	}
	// Failure recovered, partition still up: same-side works again.
	k.Run(16 * sim.Second)
	nw.SendUDP(0, 1, Outgoing{Kind: "x"})
	k.Run(20 * sim.Second)
	if eps[1].n != 1 {
		t.Error("same-side frame blocked after interface recovery")
	}
}

// Overlapping partitions are a planning bug and must be rejected.
func TestPartitionOverlapPanics(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	nw.AddNode("")
	nw.AddNode("")
	nw.SchedulePartition(Partition{Start: 10 * sim.Second, Duration: 10 * sim.Second, Bisect: true})
	defer func() {
		if recover() == nil {
			t.Error("overlapping partition did not panic")
		}
	}()
	nw.SchedulePartition(Partition{Start: 15 * sim.Second, Duration: 10 * sim.Second, Bisect: true})
}

// Config validation is consolidated: the constructor reports errors
// instead of panicking, and catches every invalid knob.
func TestConfigValidation(t *testing.T) {
	k := sim.New(1)
	bad := []func(*Config){
		func(c *Config) { c.MinDelay, c.MaxDelay = c.MaxDelay, c.MinDelay },
		func(c *Config) { c.Loss = 1.5 },
		func(c *Config) { c.Loss = -0.1 },
		func(c *Config) {
			c.Loss = 0.1
			c.Link.Burst = BurstForAverage(0.1, 4) // both loss models
		},
		func(c *Config) { c.Link.Burst = BurstConfig{GoodToBad: 2, BadToGood: 0.5, BadLoss: 1} },
		func(c *Config) { c.Link.Burst = BurstConfig{GoodToBad: 0.5, BadLoss: 1} }, // bursts never end
		func(c *Config) { c.Link.Delay = DelayConfig{Dist: DelayDist(99)} },
		func(c *Config) { c.Link.Delay = DelayConfig{Dist: DelayPareto, Alpha: -1} },
		func(c *Config) { c.Link.Reorder = ReorderConfig{Prob: 1.5} },
		func(c *Config) { c.Link.Reorder = ReorderConfig{Prob: 0.5, Extra: -sim.Second} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(k, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(k, DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// Reset and Rearm keep conditioned state isolated between runs: a fresh
// run on a recycled network must replay a fresh network bit for bit,
// burst chains, delay tables and partitions included.
func TestLinkStateResetDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Link.Burst = BurstForAverage(0.2, 6)
	cfg.Link.Delay = DelayConfig{Dist: DelayPareto}
	runOnce := func(k *sim.Kernel, nw *Network) (int, int) {
		ep := &countingEndpoint{}
		for i := 0; i < 6; i++ {
			n := nw.AddNode("")
			n.SetEndpoint(ep)
			nw.Join(n.ID, Group(1))
		}
		nw.SchedulePartition(Partition{Start: 5 * sim.Second, Duration: 5 * sim.Second, Bisect: true})
		for i := 0; i < 40; i++ {
			i := i
			k.At(sim.Time(i)*sim.Time(300*sim.Millisecond), func() {
				nw.Multicast(0, Group(1), Outgoing{Kind: "a"}, 2)
				nw.SendUDP(1, 2, Outgoing{Kind: "b"})
			})
		}
		k.Run(sim.Minute)
		return ep.n, nw.Counters().Drops
	}
	kA := sim.New(9)
	a1, a2 := runOnce(kA, mustNew(kA, cfg))

	kB := sim.New(11)
	nwB := mustNew(kB, cfg)
	runOnce(kB, nwB)
	kB.Reset(9)
	nwB.Reset(kB, cfg)
	b1, b2 := runOnce(kB, nwB)
	if a1 != b1 || a2 != b2 {
		t.Fatalf("conditioned reset diverged: fresh (%d,%d) vs reused (%d,%d)", a1, a2, b1, b2)
	}
}

// The default LinkConfig must be a behavioral no-op: identical RNG
// consumption and identical outcomes to the unconditioned network.
func TestZeroLinkConfigMatchesUnconditioned(t *testing.T) {
	run := func(cfg Config) (int, int, sim.Time) {
		k := sim.New(21)
		nw := mustNew(k, cfg)
		ep := &countingEndpoint{}
		var last sim.Time
		for i := 0; i < 8; i++ {
			n := nw.AddNode("")
			n.SetEndpoint(EndpointFunc(func(*Message) { ep.n++; last = k.Now() }))
			nw.Join(n.ID, Group(1))
		}
		for i := 0; i < 30; i++ {
			nw.Multicast(0, Group(1), Outgoing{Kind: "a"}, 3)
			nw.SendUDP(1, 2, Outgoing{Kind: "b"})
		}
		k.Run(sim.Minute)
		return ep.n, nw.Counters().Drops, last
	}
	lossy := DefaultConfig()
	lossy.Loss = 0.25
	a1, a2, a3 := run(lossy)
	lossy.Link = LinkConfig{} // explicit zero — must change nothing
	b1, b2, b3 := run(lossy)
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("zero LinkConfig changed behavior: (%d,%d,%v) vs (%d,%d,%v)", a1, a2, a3, b1, b2, b3)
	}
}

// Back-to-back partitions: when one window ends exactly where the next
// begins, the stale heal must not deactivate the successor, regardless
// of scheduling order.
func TestPartitionBackToBackWindows(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	for i := 0; i < 4; i++ {
		nw.AddNode("").SetEndpoint(&countingEndpoint{})
	}
	// Scheduled later-window-first: at t=100s the second window's
	// activation fires before the first window's heal.
	nw.SchedulePartition(Partition{Start: 100 * sim.Second, Duration: 50 * sim.Second, SideB: []NodeID{3}})
	nw.SchedulePartition(Partition{Start: 50 * sim.Second, Duration: 50 * sim.Second, SideB: []NodeID{2}})

	k.Run(120 * sim.Second)
	if !nw.partitioned(0, 3) {
		t.Error("second window inactive after the first window's heal")
	}
	if nw.partitioned(0, 2) {
		t.Error("first window's side still isolated in the second window")
	}
	k.Run(151 * sim.Second)
	if nw.partitioned(0, 3) {
		t.Error("second window did not heal")
	}
}

// BurstForAverage rejects infeasible (avg, meanBurst) pairs instead of
// producing an out-of-range chain.
func TestBurstForAverageInfeasiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("infeasible BurstForAverage did not panic")
		}
	}()
	BurstForAverage(0.6, 1) // needs meanBurst ≥ 1.5
}
