package netsim

import "repro/internal/sim"

// Node is a device attached to the simulated LAN. Its transmitter and
// receiver can fail independently (§5 Step 2): a node with a failed
// transmitter can still receive, and vice versa; both failed models a node
// failure. Interface failure does not destroy protocol state — the device
// keeps running and its timers keep firing, it just cannot communicate.
type Node struct {
	ID   NodeID
	Name string

	txUp bool
	rxUp bool
	// retired pins both interfaces down: the device left the network for
	// good and its slot awaits reuse (Network.Retire). Interface events
	// aimed at a retired slot are ignored.
	retired bool
	// gen counts slot tenancies: AddNode bumps it when recycling a
	// retired slot. Frames in flight and planned interface failures
	// capture the gen they were aimed at and no-op if the slot has
	// changed hands since — a recycled slot's new tenant must never
	// inherit its predecessor's traffic or outages.
	gen uint32
	// attachedAt is when this tenancy began (zero for boot-time nodes).
	// Cross-shard frames cannot capture the receiver's gen at send time —
	// the receiver lives on another shard — so their tenancy check
	// compares SentAt against attachedAt at ingest instead: a frame sent
	// before the current tenant attached was aimed at its predecessor.
	attachedAt sim.Time

	ep  Endpoint
	net *Network

	// onInterfaceChange, if set, is invoked after any interface state
	// transition. Protocols use it to model the "application layer
	// indicates loss of connectivity" stop condition of SRN1/SRC1.
	onInterfaceChange func(txUp, rxUp bool)
}

// TxUp reports whether the transmitter is operational.
func (n *Node) TxUp() bool { return n.txUp }

// RxUp reports whether the receiver is operational.
func (n *Node) RxUp() bool { return n.rxUp }

// Up reports whether both interfaces are operational.
func (n *Node) Up() bool { return n.txUp && n.rxUp }

// SetEndpoint attaches the protocol instance that receives this node's
// traffic. It must be called before any message can be delivered.
func (n *Node) SetEndpoint(ep Endpoint) { n.ep = ep }

// OnInterfaceChange registers a callback invoked after every Tx/Rx state
// change.
func (n *Node) OnInterfaceChange(fn func(txUp, rxUp bool)) { n.onInterfaceChange = fn }

// Retired reports whether the node's slot has been released by
// Network.Retire and not yet reused.
func (n *Node) Retired() bool { return n.retired }

// SetTx changes transmitter state, tracing the transition.
func (n *Node) SetTx(up bool) {
	if n.retired || n.txUp == up {
		return
	}
	n.txUp = up
	n.net.traceNode(n.ID, ifaceEvent("Tx", up))
	if n.onInterfaceChange != nil {
		n.onInterfaceChange(n.txUp, n.rxUp)
	}
}

// SetRx changes receiver state, tracing the transition.
func (n *Node) SetRx(up bool) {
	if n.retired || n.rxUp == up {
		return
	}
	n.rxUp = up
	n.net.traceNode(n.ID, ifaceEvent("Rx", up))
	if n.onInterfaceChange != nil {
		n.onInterfaceChange(n.txUp, n.rxUp)
	}
}

func ifaceEvent(iface string, up bool) string {
	if up {
		return iface + " up"
	}
	return iface + " down"
}

// Kernel exposes the simulation kernel driving this node's network, so
// protocol code can schedule timers without threading the kernel through
// every constructor.
func (n *Node) Kernel() *sim.Kernel { return n.net.Kernel() }

// Network reports the network the node is attached to.
func (n *Node) Network() *Network { return n.net }
