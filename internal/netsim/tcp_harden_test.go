package netsim

import (
	"testing"

	"repro/internal/sim"
)

// Hardened-transport knobs (internal/harden sets these; the Table 3
// baseline leaves them zero).

func TestTCPDataRetransmitsCapRaisesREX(t *testing.T) {
	// Setup succeeds, receiver dies before the data lands and never
	// recovers: a capped transport must give up with REX instead of
	// retransmitting forever.
	h := newHarness(t, 2, fixedDelayConfig(100*sim.Microsecond))
	h.k.At(250*sim.Microsecond, func() { h.nodes[1].SetRx(false) })
	cfg := DefaultTCPConfig()
	cfg.DataRetransmits = 3
	var result error
	done := false
	h.nw.SendTCPWith(cfg, 0, 1, Outgoing{Kind: "notify"}, func(err error) { result, done = err, true })
	h.k.Run(100 * sim.Second)
	if !done || result != ErrREX {
		t.Fatalf("done=%v result=%v, want ErrREX after the retransmit budget", done, result)
	}
	if len(h.inbox[1]) != 0 {
		t.Error("payload delivered despite the dead receiver")
	}
}

func TestTCPMaxRTOCeilsTheBackoff(t *testing.T) {
	// With the receiver down for ~100s, the uncapped 25% backoff sends
	// ~20 frames (TestTCPBackoffGrows); a 2s ceiling keeps retransmitting
	// every 2s, so the frame count must stay roughly duration/MaxRTO.
	h := newHarness(t, 2, fixedDelayConfig(100*sim.Microsecond))
	h.k.At(250*sim.Microsecond, func() { h.nodes[1].SetRx(false) })
	h.k.At(100*sim.Second, func() { h.nodes[1].SetRx(true) })
	cfg := DefaultTCPConfig()
	cfg.MaxRTO = 2 * sim.Second
	var result error
	done := false
	h.nw.SendTCPWith(cfg, 0, 1, Outgoing{Kind: "notify"}, func(err error) { result, done = err, true })
	h.k.Run(200 * sim.Second)
	if !done || result != nil {
		t.Fatalf("done=%v result=%v, want delivery after recovery", done, result)
	}
	if frames := h.nw.Counters().TransportFrames; frames < 45 {
		t.Errorf("transport frames = %d, want ≥ 45 with the RTO ceiling holding retries at 2s", frames)
	}
}

func TestTCPRTOJitterStaysDeterministic(t *testing.T) {
	// Jittered retransmission delays draw from the kernel RNG, so two
	// identically-seeded runs must replay the exact same frame schedule —
	// the bit-for-bit property every fixture depends on.
	run := func() (frames, delivered int) {
		h := newHarness(t, 2, fixedDelayConfig(100*sim.Microsecond))
		h.k.At(250*sim.Microsecond, func() { h.nodes[1].SetRx(false) })
		h.k.At(50*sim.Second, func() { h.nodes[1].SetRx(true) })
		cfg := DefaultTCPConfig()
		cfg.RTOJitter = 0.5
		h.nw.SendTCPWith(cfg, 0, 1, Outgoing{Kind: "notify"}, nil)
		h.k.Run(200 * sim.Second)
		return h.nw.Counters().TransportFrames, len(h.inbox[1])
	}
	f1, d1 := run()
	f2, d2 := run()
	if d1 != 1 || d2 != 1 {
		t.Fatalf("delivered %d/%d times, want exactly once each run", d1, d2)
	}
	if f1 != f2 {
		t.Errorf("frame counts diverged under the same seed: %d vs %d", f1, f2)
	}
}

func TestTCPAbortOnRetireStopsSetup(t *testing.T) {
	// The initiator retires mid-setup: a hardened connection abandons the
	// SYN train silently instead of grinding to REX at 102s.
	h := newHarness(t, 2, DefaultConfig())
	h.nodes[1].SetRx(false)
	cfg := DefaultTCPConfig()
	cfg.AbortOnRetire = true
	var result error
	var finishedAt sim.Time
	done := false
	h.nw.SendTCPWith(cfg, 0, 1, Outgoing{Kind: "notify"}, func(err error) {
		result, finishedAt = err, h.k.Now()
		done = true
	})
	h.k.At(10*sim.Second, func() { h.nw.Retire(0) })
	h.k.Run(500 * sim.Second)
	if !done || result != ErrAborted {
		t.Fatalf("done=%v result=%v, want ErrAborted from the retired initiator", done, result)
	}
	// The next scheduled SYN (t=30s) notices the retirement; no frames
	// after that, and in particular no REX at 102s.
	if finishedAt > 30*sim.Second {
		t.Errorf("aborted at %v, want at the first post-retirement SYN (30s)", finishedAt)
	}
}

func TestTCPAbortOnRetireStopsTransferAfterSlotRecycle(t *testing.T) {
	// Setup succeeds, the data is in retransmission, and the sender's
	// slot is retired AND handed to a new tenant: the old transfer must
	// notice the tenancy change and abort rather than transmit as the
	// new device.
	h := newHarness(t, 2, fixedDelayConfig(100*sim.Microsecond))
	h.k.At(250*sim.Microsecond, func() { h.nodes[1].SetRx(false) })
	cfg := DefaultTCPConfig()
	cfg.AbortOnRetire = true
	var result error
	done := false
	h.nw.SendTCPWith(cfg, 0, 1, Outgoing{Kind: "notify"}, func(err error) { result, done = err, true })
	h.k.At(2*sim.Second, func() {
		h.nw.Retire(0)
		h.nw.AddNode("tenant") // recycles slot 0 with a bumped generation
	})
	h.k.Run(100 * sim.Second)
	if !done || result != ErrAborted {
		t.Fatalf("done=%v result=%v, want ErrAborted after the slot changed tenants", done, result)
	}
	if len(h.inbox[1]) != 0 {
		t.Error("payload delivered by a retired sender")
	}
}
