package netsim

import (
	"testing"

	"repro/internal/sim"
)

// countingEndpoint swallows deliveries, recording only counts — the
// shape of a real protocol endpoint for alloc measurements.
type countingEndpoint struct{ n int }

func (c *countingEndpoint) Deliver(m *Message) { c.n++ }

// Single-frame unicast must stay within 2 allocs/op in steady state (the
// PR-2 acceptance guard; measured at 0 with warm pools — the budget
// leaves room for payload boxing at the caller).
func TestUnicastAllocsPerFrame(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	ep := &countingEndpoint{}
	b.SetEndpoint(ep)
	_ = a
	out := Outgoing{Kind: "ping", Counted: false, Payload: nil}
	// Warm pools, heap and counter storage.
	for i := 0; i < 64; i++ {
		nw.SendUDP(0, 1, out)
	}
	k.Run(k.Now() + sim.Second)
	allocs := testing.AllocsPerRun(200, func() {
		nw.SendUDP(0, 1, out)
		k.Run(k.Now() + sim.Second)
	})
	if allocs > 2 {
		t.Errorf("unicast frame costs %.1f allocs/op, want ≤ 2", allocs)
	}
	if ep.n == 0 {
		t.Fatal("no deliveries — measurement is vacuous")
	}
}

// Multicast fan-out must not allocate per receiver: one pooled fanout
// record and one walking event serve the whole group, so a 100-member
// fan-out stays within a few allocs per copy in steady state.
func TestMulticastFanoutAllocs(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	const members = 100
	ep := &countingEndpoint{}
	for i := 0; i < members; i++ {
		n := nw.AddNode("")
		n.SetEndpoint(ep)
		nw.Join(n.ID, Group(1))
	}
	out := Outgoing{Kind: "announce", Counted: false, Payload: nil}
	for i := 0; i < 8; i++ {
		nw.Multicast(0, Group(1), out, 1)
		k.Run(k.Now() + sim.Second)
	}
	allocs := testing.AllocsPerRun(100, func() {
		nw.Multicast(0, Group(1), out, 1)
		k.Run(k.Now() + sim.Second)
	})
	// Budget: well under one alloc per receiver; steady state measures 0.
	if allocs > 4 {
		t.Errorf("multicast fan-out costs %.1f allocs/copy over %d members, want ≤ 4", allocs, members)
	}
	if ep.n < members-1 {
		t.Fatalf("fan-out delivered %d, want ≥ %d", ep.n, members-1)
	}
}

// The Gilbert–Elliott-conditioned unicast path must stay within the same
// ≤2 allocs/op gate as the unconditioned one: the chains live in a flat
// per-network array, so the conditioning is state lookups, not records.
func TestUnicastAllocsPerFrameGE(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Link.Burst = BurstForAverage(0.2, 8)
	k := sim.New(1)
	nw := mustNew(k, cfg)
	nw.AddNode("a")
	b := nw.AddNode("b")
	ep := &countingEndpoint{}
	b.SetEndpoint(ep)
	out := Outgoing{Kind: "ping"}
	for i := 0; i < 64; i++ {
		nw.SendUDP(0, 1, out)
	}
	k.Run(k.Now() + sim.Second)
	allocs := testing.AllocsPerRun(200, func() {
		nw.SendUDP(0, 1, out)
		k.Run(k.Now() + sim.Second)
	})
	if allocs > 2 {
		t.Errorf("GE-conditioned unicast frame costs %.1f allocs/op, want ≤ 2", allocs)
	}
	if ep.n == 0 {
		t.Fatal("no deliveries — measurement is vacuous")
	}
}

// The Pareto-delay multicast fan-out must stay within the ≤4 allocs/copy
// gate: draws come from the precomputed quantile table, one index per
// receiver.
func TestMulticastFanoutAllocsPareto(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Link.Delay = DelayConfig{Dist: DelayPareto}
	k := sim.New(1)
	nw := mustNew(k, cfg)
	const members = 100
	ep := &countingEndpoint{}
	for i := 0; i < members; i++ {
		n := nw.AddNode("")
		n.SetEndpoint(ep)
		nw.Join(n.ID, Group(1))
	}
	out := Outgoing{Kind: "announce"}
	for i := 0; i < 8; i++ {
		nw.Multicast(0, Group(1), out, 1)
		k.Run(k.Now() + sim.Second)
	}
	allocs := testing.AllocsPerRun(100, func() {
		nw.Multicast(0, Group(1), out, 1)
		k.Run(k.Now() + sim.Second)
	})
	if allocs > 4 {
		t.Errorf("Pareto fan-out costs %.1f allocs/copy over %d members, want ≤ 4", allocs, members)
	}
	if ep.n < members-1 {
		t.Fatalf("fan-out delivered %d, want ≥ %d", ep.n, members-1)
	}
}

// The map-backed group set keeps O(1) Join/Leave with deterministic
// (swap-remove) ordering, and the no-copy accessor sees the same
// membership as the copying one.
func TestGroupSetSemantics(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	for i := 0; i < 5; i++ {
		nw.AddNode("")
	}
	g := Group(7)
	for i := 0; i < 5; i++ {
		nw.Join(NodeID(i), g)
	}
	nw.Join(2, g) // duplicate join is a no-op
	if got := nw.Members(g); len(got) != 5 {
		t.Fatalf("members = %v, want 5 entries", got)
	}
	nw.Leave(1, g)
	want := []NodeID{0, 4, 2, 3} // swap-remove: last member fills the hole
	got := nw.Members(g)
	if len(got) != len(want) {
		t.Fatalf("members after leave = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members after leave = %v, want %v", got, want)
		}
	}
	// The copying accessor must be detached from live storage.
	got[0] = 99
	if nw.Members(g)[0] != 0 {
		t.Error("Members returned live storage")
	}
	// The internal no-copy accessor sees the same membership.
	for i, id := range nw.members(g) {
		if id != want[i] {
			t.Fatalf("members() = %v, want %v", nw.members(g), want)
		}
	}
	nw.Leave(1, g) // leaving a non-member is a no-op
	if len(nw.Members(g)) != 4 {
		t.Error("Leave of non-member changed membership")
	}
}

// Retire pins a node down, removes it from groups, and recycles its slot
// — ID included — on the next AddNode.
func TestRetireRecyclesSlot(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	nw.Join(b.ID, Group(1))
	ep := &countingEndpoint{}
	b.SetEndpoint(ep)

	nw.Retire(b.ID)
	if !b.Retired() || b.TxUp() || b.RxUp() {
		t.Fatal("retired node still up")
	}
	if len(nw.Members(Group(1))) != 0 {
		t.Fatal("retired node still in group")
	}
	b.SetTx(true) // interface events aimed at a retired slot are ignored
	if b.TxUp() {
		t.Fatal("SetTx revived a retired node")
	}
	// Frames to the retired node drop without delivering.
	nw.SendUDP(a.ID, b.ID, Outgoing{Kind: "x"})
	k.Run(k.Now() + sim.Second)
	if ep.n != 0 {
		t.Fatal("delivery to a retired node")
	}

	c := nw.AddNode("c")
	if c.ID != b.ID {
		t.Fatalf("slot not recycled: new node got ID %d, want %d", c.ID, b.ID)
	}
	if !c.Up() || c.Retired() || c.Name != "c" {
		t.Fatalf("recycled node state wrong: %+v", c)
	}
	if nw.Nodes() != 2 {
		t.Fatalf("node table grew to %d, want 2", nw.Nodes())
	}
	// The recycled slot works like a fresh node.
	ep2 := &countingEndpoint{}
	c.SetEndpoint(ep2)
	nw.SendUDP(a.ID, c.ID, Outgoing{Kind: "y"})
	k.Run(k.Now() + sim.Second)
	if ep2.n != 1 {
		t.Fatal("recycled node did not receive")
	}
}

// Reset must reproduce a fresh network byte-for-byte: same kernel seed,
// same traffic, same counters, whether the network is new or recycled.
func TestNetworkResetDeterminism(t *testing.T) {
	runOnce := func(k *sim.Kernel, nw *Network) (int, int, sim.Time) {
		ep := &countingEndpoint{}
		for i := 0; i < 10; i++ {
			n := nw.AddNode("")
			n.SetEndpoint(ep)
			nw.Join(n.ID, Group(1))
		}
		var last sim.Time
		nw.Node(3).SetEndpoint(EndpointFunc(func(m *Message) { ep.n++; last = k.Now() }))
		for i := 0; i < 20; i++ {
			nw.Multicast(0, Group(1), Outgoing{Kind: "a", Counted: true}, 3)
			nw.SendUDP(1, 2, Outgoing{Kind: "b"})
		}
		k.Run(sim.Minute)
		return ep.n, nw.Counters().Delivered, last
	}
	kA := sim.New(5)
	a1, a2, a3 := runOnce(kA, mustNew(kA, DefaultConfig()))

	kB := sim.New(99)
	nwB := mustNew(kB, DefaultConfig())
	runOnce(kB, nwB) // dirty the network
	kB.Reset(5)
	nwB.Reset(kB, DefaultConfig())
	b1, b2, b3 := runOnce(kB, nwB)

	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("reset run diverged: fresh (%d,%d,%v) vs reused (%d,%d,%v)",
			a1, a2, a3, b1, b2, b3)
	}
}

// A recycled slot must not inherit its predecessor's life: frames in
// flight to the departed tenant drop, and the departed tenant's planned
// interface outage does not apply to the new tenant.
func TestRecycledSlotDoesNotInheritTrafficOrFailures(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	b.SetEndpoint(&countingEndpoint{})

	// Outage planned against the original tenant of slot b.
	nw.ScheduleFailure(InterfaceFailure{Node: b.ID, Mode: FailBoth,
		Start: 10 * sim.Second, Duration: 20 * sim.Second})

	// Frame in flight to b when the slot is retired and recycled.
	nw.SendUDP(a.ID, b.ID, Outgoing{Kind: "stale"})
	nw.Retire(b.ID)
	c := nw.AddNode("c")
	if c.ID != b.ID {
		t.Fatalf("slot not recycled: %d vs %d", c.ID, b.ID)
	}
	ep2 := &countingEndpoint{}
	c.SetEndpoint(ep2)

	k.Run(sim.Second)
	if ep2.n != 0 {
		t.Error("new tenant received the departed tenant's in-flight frame")
	}
	if nw.Counters().Drops != 1 {
		t.Errorf("drops = %d, want 1 (stale frame)", nw.Counters().Drops)
	}

	// The old tenant's outage window passes without touching the new one.
	k.Run(15 * sim.Second)
	if !c.Up() {
		t.Error("new tenant inherited the departed tenant's planned outage")
	}
	k.Run(40 * sim.Second)
	if !c.Up() {
		t.Error("outage recovery event disturbed the new tenant")
	}
	// A fresh frame to the new tenant still delivers.
	nw.SendUDP(a.ID, c.ID, Outgoing{Kind: "fresh"})
	k.Run(41 * sim.Second)
	if ep2.n != 1 {
		t.Errorf("new tenant deliveries = %d, want 1", ep2.n)
	}
}

// A staggered multicast copy pending when the sender's slot is retired
// and recycled must not transmit under the new tenant's identity.
func TestRecycledSenderDropsStaggeredMulticastCopy(t *testing.T) {
	k := sim.New(1)
	nw := mustNew(k, DefaultConfig())
	s := nw.AddNode("sender")
	ep := &countingEndpoint{}
	r := nw.AddNode("recv")
	r.SetEndpoint(ep)
	nw.Join(s.ID, Group(1))
	nw.Join(r.ID, Group(1))

	nw.Multicast(s.ID, Group(1), Outgoing{Kind: "m", Counted: true}, 3)
	sendsBefore := nw.Counters().Sends // copy 1 accounted immediately
	nw.Retire(s.ID)
	s2 := nw.AddNode("tenant")
	if s2.ID != s.ID {
		t.Fatalf("slot not recycled")
	}
	k.Run(sim.Minute)
	// Copies 2 and 3 were pending at retirement: the recycled slot must
	// not have transmitted them (no new accounted sends), and only copy
	// 1 was delivered.
	if got := nw.Counters().Sends; got != sendsBefore {
		t.Errorf("recycled sender transmitted %d pending copies", got-sendsBefore)
	}
	if ep.n != 1 {
		t.Errorf("deliveries = %d, want 1 (first copy only)", ep.n)
	}
}
