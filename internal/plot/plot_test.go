package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out := Chart("Test Figure",
		[]string{"0", "50", "90"},
		[]Series{
			{Name: "alpha", Values: []float64{1, 0.8, 0.5}},
			{Name: "beta", Values: []float64{0.2, 0.4, 0.9}},
		},
		Config{Width: 40, Height: 10})
	if !strings.Contains(out, "Test Figure") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* alpha") || !strings.Contains(out, "o beta") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from grid")
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "90") {
		t.Error("x labels missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 13 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartMonotoneSeriesTopToBottom(t *testing.T) {
	out := Chart("", []string{"a", "b"},
		[]Series{{Name: "s", Values: []float64{1, 0}}},
		Config{Width: 21, Height: 5, YMin: 0, YMax: 1})
	lines := strings.Split(out, "\n")
	// First grid row (y=1.00) should hold the left point, last grid row
	// (y=0.00) the right point.
	if !strings.Contains(lines[0], "1.00") || !strings.HasPrefix(strings.TrimSpace(lines[0][8:9]), "*") {
		t.Errorf("top row does not carry the left point: %q", lines[0])
	}
	if !strings.Contains(lines[4], "0.00") {
		t.Errorf("bottom row label wrong: %q", lines[4])
	}
	if !strings.Contains(lines[4], "*") {
		t.Errorf("bottom row missing right point: %q", lines[4])
	}
}

func TestChartHandlesNaNAndEmpty(t *testing.T) {
	out := Chart("x", []string{"0"}, []Series{{Name: "s", Values: []float64{math.NaN()}}},
		Config{Width: 10, Height: 4})
	if !strings.Contains(out, "s") {
		t.Error("legend missing for NaN-only series")
	}
	empty := Chart("none", nil, nil, Config{})
	if !strings.Contains(empty, "no data") {
		t.Errorf("empty chart = %q", empty)
	}
}

func TestChartClampsOutOfRange(t *testing.T) {
	out := Chart("", []string{"a"}, []Series{{Name: "s", Values: []float64{5}}},
		Config{Width: 10, Height: 4, YMin: 0, YMax: 1})
	if !strings.Contains(strings.Split(out, "\n")[0], "*") {
		t.Error("out-of-range value not clamped to the top row")
	}
}

func TestDataRangeAnchorsZero(t *testing.T) {
	lo, hi := dataRange([]Series{{Values: []float64{0.3, 0.9}}})
	if lo != 0 || hi != 0.9 {
		t.Errorf("range = [%v, %v], want [0, 0.9]", lo, hi)
	}
	lo, hi = dataRange([]Series{{Values: []float64{0.8, 0.9}}})
	if lo != 0.8 {
		t.Errorf("tight range should not anchor zero: lo=%v", lo)
	}
}
