// Package plot renders metric curves as ASCII charts, so the figures of
// the paper can be eyeballed straight from a terminal — the reproduction
// equivalent of the paper's Figures 4–7.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve sampled on the shared x grid.
type Series struct {
	Name   string
	Values []float64
}

// markers distinguish up to eight series; overlapping points show the
// later series' marker.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Config shapes the chart.
type Config struct {
	// Width and Height are the plotting area in characters (excluding
	// axes); zero values default to 60×20.
	Width, Height int
	// YMin/YMax fix the y range; when both are zero the range is
	// computed from the data (and clamped to include 0 when close).
	YMin, YMax float64
}

// Chart renders the series against xLabels. NaN values are skipped.
func Chart(title string, xLabels []string, series []Series, cfg Config) string {
	if cfg.Width <= 0 {
		cfg.Width = 60
	}
	if cfg.Height <= 0 {
		cfg.Height = 20
	}
	ymin, ymax := cfg.YMin, cfg.YMax
	if ymin == 0 && ymax == 0 {
		ymin, ymax = dataRange(series)
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, cfg.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cfg.Width))
	}

	n := 0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	if n == 0 {
		return title + "\n(no data)\n"
	}

	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			x := 0
			if n > 1 {
				x = i * (cfg.Width - 1) / (n - 1)
			}
			frac := (v - ymin) / (ymax - ymin)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			y := cfg.Height - 1 - int(math.Round(frac*float64(cfg.Height-1)))
			grid[y][x] = m
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, row := range grid {
		yval := ymax - (ymax-ymin)*float64(i)/float64(cfg.Height-1)
		fmt.Fprintf(&b, "%6.2f |%s|\n", yval, string(row))
	}
	// X axis line and sparse labels.
	b.WriteString("       +" + strings.Repeat("-", cfg.Width) + "+\n")
	b.WriteString("        " + xAxisLabels(xLabels, cfg.Width) + "\n")
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func dataRange(series []Series) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	// Charts of ratios read best anchored at zero.
	if lo > 0 && lo < 0.5*hi {
		lo = 0
	}
	return lo, hi
}

// xAxisLabels places the first, middle and last labels under the axis.
func xAxisLabels(labels []string, width int) string {
	if len(labels) == 0 {
		return ""
	}
	row := []byte(strings.Repeat(" ", width))
	place := func(pos int, label string) {
		start := pos - len(label)/2
		if start < 0 {
			start = 0
		}
		if start+len(label) > width {
			start = width - len(label)
		}
		copy(row[start:], label)
	}
	place(0, labels[0])
	if len(labels) > 2 {
		place(width/2, labels[len(labels)/2])
	}
	if len(labels) > 1 {
		place(width-1, labels[len(labels)-1])
	}
	return string(row)
}
