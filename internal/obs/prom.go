package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// labelBlock renders k,v label pairs as a Prometheus label block,
// {k1="v1",k2="v2"}, escaping backslash, double-quote and newline in
// values. It doubles as the series-identity suffix in registry keys.
func labelBlock(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// withLabel re-renders a series key with one extra label appended —
// used for the quantile lines of histogram exposition.
func withLabel(labels []string, k, v string) string {
	all := make([]string, 0, len(labels)+2)
	all = append(all, labels...)
	all = append(all, k, v)
	return labelBlock(all)
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4). Families are sorted by name and
// emit one # TYPE line each. Histograms are rendered as summaries —
// quantile-labeled gauge lines plus _sum and _count — with all fields
// taken from one Summary() snapshot, so count and quantiles are always
// mutually consistent; durations are exposed in seconds per Prometheus
// convention.
func (r *Registry) WritePrometheus(w io.Writer) {
	metrics := r.snapshotMetrics()
	sort.SliceStable(metrics, func(i, j int) bool {
		if metrics[i].name != metrics[j].name {
			return metrics[i].name < metrics[j].name
		}
		return metrics[i].key < metrics[j].key
	})
	lastFamily := ""
	for _, m := range metrics {
		if m.name != lastFamily {
			lastFamily = m.name
			typ := "counter"
			switch m.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHist:
				typ = "summary"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", m.key, m.c.Load())
		case kindGauge:
			fmt.Fprintf(w, "%s %d\n", m.key, m.g.Load())
		case kindGaugeFunc:
			fmt.Fprintf(w, "%s %g\n", m.key, m.fn())
		case kindHist:
			s := m.h.Summary()
			fmt.Fprintf(w, "%s%s %g\n", m.name, withLabel(m.labels, "quantile", "0.5"), s.P50.Seconds())
			fmt.Fprintf(w, "%s%s %g\n", m.name, withLabel(m.labels, "quantile", "0.95"), s.P95.Seconds())
			fmt.Fprintf(w, "%s%s %g\n", m.name, withLabel(m.labels, "quantile", "0.99"), s.P99.Seconds())
			fmt.Fprintf(w, "%s_sum%s %g\n", m.name, labelBlock(m.labels), s.Sum.Seconds())
			fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelBlock(m.labels), s.N)
		}
	}
}

// histJSON is the JSON shape of one histogram series in Snapshot.
type histJSON struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean_s"`
	Min  float64 `json:"min_s"`
	Max  float64 `json:"max_s"`
	P50  float64 `json:"p50_s"`
	P95  float64 `json:"p95_s"`
	P99  float64 `json:"p99_s"`
	Sum  float64 `json:"sum_s"`
}

func histToJSON(s HistSummary) histJSON {
	sec := func(d time.Duration) float64 { return d.Seconds() }
	if s.N == 0 {
		return histJSON{}
	}
	return histJSON{N: s.N, Mean: sec(s.Mean), Min: sec(s.Min), Max: sec(s.Max),
		P50: sec(s.P50), P95: sec(s.P95), P99: sec(s.P99), Sum: sec(s.Sum)}
}

// Snapshot returns every series as a plain series-key→value map:
// counters and gauges as integers, gauge funcs as floats, histograms as
// summary objects. This is what expvar and the -telemetry end-of-run
// dumps serialize.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			out[m.key] = m.c.Load()
		case kindGauge:
			out[m.key] = m.g.Load()
		case kindGaugeFunc:
			out[m.key] = m.fn()
		case kindHist:
			out[m.key] = histToJSON(m.h.Summary())
		}
	}
	return out
}

// WriteJSON dumps the snapshot as indented JSON with sorted keys (the
// encoding/json map behavior), for -telemetry flags.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
