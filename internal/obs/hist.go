package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram is the registry's latency/duration recorder: logarithmic
// buckets at ~5% relative resolution from 1µs upward, lock-free atomic
// counts, fixed memory. It lifts the bucket geometry of the Histogram
// sdload shared across its client goroutines, trading that type's
// mutex-and-growable-slice design for a fixed atomic array so Observe
// allocates nothing and never blocks.
//
// Virtual durations (sim.Duration) and wall durations (time.Duration)
// are both int64 nanoseconds; callers pick one per series and stick to
// it.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // math.MaxInt64 while empty
	max    atomic.Int64
}

// histBase is the per-bucket growth factor (≈5% resolution).
const histBase = 1.05

// histMin is the smallest distinguishable duration.
const histMin = time.Microsecond

// histBuckets fixes the array size: 1µs·1.05^511 ≈ 18.6 hours, far
// beyond any latency or virtual window this repo measures; larger
// samples clamp into the last bucket.
const histBuckets = 512

var histLogBase = math.Log(histBase)

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// NewHistogram returns a standalone histogram (tests, ad-hoc use);
// registry-owned histograms come from Registry.Histogram.
func NewHistogram() *Histogram { return newHistogram() }

func histBucket(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	b := int(math.Log(float64(d)/float64(histMin)) / histLogBase)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func histValue(bucket int) time.Duration {
	return time.Duration(float64(histMin) * math.Pow(histBase, float64(bucket)+0.5))
}

// Observe records one sample. Safe from any goroutine; allocates
// nothing.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[histBucket(d)].Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.min.Load()
		if int64(d) >= old || h.min.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// Count reports the number of samples (one pass over the buckets).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Merge folds src's samples into h (sweep shards, per-shard series
// folded for a report). Concurrent observers on either side keep the
// result approximate but never torn below bucket granularity.
func (h *Histogram) Merge(src *Histogram) {
	for i := range h.counts {
		if c := src.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(src.sum.Load())
	if m := src.min.Load(); m < math.MaxInt64 {
		for {
			old := h.min.Load()
			if m >= old || h.min.CompareAndSwap(old, m) {
				break
			}
		}
	}
	if m := src.max.Load(); m > 0 {
		for {
			old := h.max.Load()
			if m <= old || h.max.CompareAndSwap(old, m) {
				break
			}
		}
	}
}

// HistSummary is one self-consistent snapshot of a histogram.
type HistSummary struct {
	N                  uint64
	Mean, Min, Max     time.Duration
	P50, P95, P99, Sum time.Duration
}

// Summary snapshots the histogram. Every field is derived from one
// pass over the bucket array — the count IS the sum of the buckets the
// quantiles were computed from, so a scrape racing with Observe can
// never publish a torn summary (a p99 over more samples than the
// reported n). This is the same single-snapshot rule the PR-6 fix
// imposed on the live Histogram's Summary.
func (h *Histogram) Summary() HistSummary {
	var counts [histBuckets]uint64
	var n uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		n += c
	}
	s := HistSummary{N: n}
	if n == 0 {
		return s
	}
	// sum/min/max ride separate atomics; a concurrent Observe can skew
	// them by a sample relative to the buckets, so clamp the mean into
	// the quantile range rather than pretending to a consistency the
	// separate reads cannot give.
	s.Sum = time.Duration(h.sum.Load())
	s.Min = time.Duration(h.min.Load())
	s.Max = time.Duration(h.max.Load())
	s.Mean = s.Sum / time.Duration(n)
	q := quantiles(&counts, n, s.Min, s.Max, 0.50, 0.95, 0.99)
	s.P50, s.P95, s.P99 = q[0], q[1], q[2]
	if s.Mean < s.Min {
		s.Mean = s.Min
	}
	if s.Mean > s.Max {
		s.Mean = s.Max
	}
	return s
}

// quantiles walks one snapshotted bucket array for the given ranks
// (ascending qs). Bucket midpoints are clamped to [min, max]; bucket 0
// spans everything up to 1µs, so it reports the observed minimum.
func quantiles(counts *[histBuckets]uint64, n uint64, min, max time.Duration, qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	ranks := make([]uint64, len(qs))
	for i, q := range qs {
		r := uint64(math.Ceil(q * float64(n)))
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		ranks[i] = r
	}
	var seen uint64
	qi := 0
	for b := range counts {
		seen += counts[b]
		for qi < len(qs) && seen >= ranks[qi] {
			v := histValue(b)
			if b == 0 {
				v = min
			}
			if v > max {
				v = max
			}
			if v < min {
				v = min
			}
			out[qi] = v
			qi++
		}
		if qi == len(qs) {
			break
		}
	}
	return out
}

// String renders the summary in sdload's report format.
func (s HistSummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.N, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
