package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Trace-event op names. Constants, so recording one copies a string
// header and allocates nothing.
const (
	OpSent      = "sent"
	OpDelivered = "delivered"
	OpDropped   = "dropped"
	OpNode      = "node"
)

// TraceEvent is one recorded network event. Kind carries the message
// kind for frame ops and the event name for node ops; From doubles as
// the node for node ops.
type TraceEvent struct {
	At     sim.Time      `json:"at"`
	Op     string        `json:"op"`
	Kind   string        `json:"kind,omitempty"`
	From   netsim.NodeID `json:"from"`
	To     netsim.NodeID `json:"to"`
	Reason string        `json:"reason,omitempty"`
}

// FlightRecorder is a fixed-size ring of the most recent trace events
// on one shard's network: a netsim.Tracer tee, attached exactly like
// the oracle's tap. Appends are plain stores by the single goroutine
// that owns the network (the Tracer contract), so the hot path is one
// atomic load (the freeze flag) plus a struct copy — no locks, no
// allocation.
//
// Freeze stops recording, preserving the ring as the last-N-events
// context of whatever triggered it (the oracle's first violation). It
// is an atomic flag flip, callable from any goroutine. Snapshot reads
// the ring's plain memory, so it must be synchronized with the owning
// goroutine: after the run completes, at a shard barrier (the live
// driver reads via Call while every worker is parked), or any time
// after Freeze has been observed by the owner.
type FlightRecorder struct {
	shard  int
	buf    []TraceEvent
	mask   uint64
	n      uint64 // total events ever appended; head = n & mask
	frozen atomic.Bool
	reason atomic.Pointer[string]
}

// DefaultFlightSize is the per-shard ring capacity used when callers
// pass size ≤ 0.
const DefaultFlightSize = 256

// NewFlightRecorder builds a recorder for one shard; size is rounded
// up to a power of two (minimum 16).
func NewFlightRecorder(shard, size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	cap := 16
	for cap < size {
		cap <<= 1
	}
	return &FlightRecorder{shard: shard, buf: make([]TraceEvent, cap), mask: uint64(cap - 1)}
}

// Shard reports which shard this recorder observes.
func (fr *FlightRecorder) Shard() int { return fr.shard }

func (fr *FlightRecorder) append(ev TraceEvent) {
	if fr.frozen.Load() {
		return
	}
	fr.buf[fr.n&fr.mask] = ev
	fr.n++
}

// MessageSent implements netsim.Tracer.
func (fr *FlightRecorder) MessageSent(t sim.Time, m *netsim.Message) {
	fr.append(TraceEvent{At: t, Op: OpSent, Kind: m.Kind, From: m.From, To: m.To})
}

// MessageDelivered implements netsim.Tracer.
func (fr *FlightRecorder) MessageDelivered(t sim.Time, m *netsim.Message) {
	fr.append(TraceEvent{At: t, Op: OpDelivered, Kind: m.Kind, From: m.From, To: m.To})
}

// MessageDropped implements netsim.Tracer.
func (fr *FlightRecorder) MessageDropped(t sim.Time, m *netsim.Message, reason string) {
	fr.append(TraceEvent{At: t, Op: OpDropped, Kind: m.Kind, From: m.From, To: m.To, Reason: reason})
}

// NodeEvent implements netsim.Tracer.
func (fr *FlightRecorder) NodeEvent(t sim.Time, node netsim.NodeID, event string) {
	fr.append(TraceEvent{At: t, Op: OpNode, Kind: event, From: node, To: node})
}

// Freeze stops recording, keeping the ring as the context of reason.
// First freeze wins; later calls are no-ops. Safe from any goroutine.
func (fr *FlightRecorder) Freeze(reason string) {
	if fr.frozen.CompareAndSwap(false, true) {
		fr.reason.Store(&reason)
	}
}

// FlightSnapshot is a dumpable copy of one recorder's ring, oldest
// event first.
type FlightSnapshot struct {
	Shard  int          `json:"shard"`
	Total  uint64       `json:"total_events"`
	Frozen string       `json:"frozen_by,omitempty"`
	Events []TraceEvent `json:"events"`
}

// Snapshot copies the ring out (see the type comment for when this is
// safe to call).
func (fr *FlightRecorder) Snapshot() FlightSnapshot {
	s := FlightSnapshot{Shard: fr.shard, Total: fr.n}
	if r := fr.reason.Load(); r != nil {
		s.Frozen = *r
	}
	n := fr.n
	size := uint64(len(fr.buf))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	for i := start; i < n; i++ {
		s.Events = append(s.Events, fr.buf[i&fr.mask])
	}
	return s
}

// WriteFlightJSON dumps a set of flight snapshots as indented JSON.
func WriteFlightJSON(w io.Writer, snaps []FlightSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}
