package obs

import (
	"strconv"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// NetMetrics feeds the registry from one shard's network as a
// netsim.Tracer tee: frames sent/delivered/dropped (total, by kind, by
// drop reason), node lifecycle events, and the lease renewal/refusal
// exchange as observed on the wire (SubscriptionRenew requests and
// RenewError refusals). Per-message work is atomic adds plus RLocked
// map lookups — nothing allocates, so the conditioned fast-path alloc
// gates hold with telemetry attached.
type NetMetrics struct {
	sent, delivered, dropped *Counter
	renewals, refusals       *Counter
	sentKind                 *CounterVec
	dropReason               *CounterVec
	nodeEvents               *CounterVec
}

// NetTracer builds the frame-metrics tracer for one shard. Series are
// registered on first use and shared across repeated attachments (a
// sweep's runs aggregate into one set of counters).
func (r *Registry) NetTracer(shard int) *NetMetrics {
	s := strconv.Itoa(shard)
	return &NetMetrics{
		sent:       r.Counter("sd_frames_sent_total", "shard", s),
		delivered:  r.Counter("sd_frames_delivered_total", "shard", s),
		dropped:    r.Counter("sd_frames_dropped_total", "shard", s),
		renewals:   r.Counter("sd_lease_renewals_total", "shard", s),
		refusals:   r.Counter("sd_lease_refusals_total", "shard", s),
		sentKind:   r.CounterVec("sd_frames_sent_kind_total", "kind", "shard", s),
		dropReason: r.CounterVec("sd_frames_dropped_reason_total", "reason", "shard", s),
		nodeEvents: r.CounterVec("sd_node_events_total", "event", "shard", s),
	}
}

// MessageSent implements netsim.Tracer.
func (nm *NetMetrics) MessageSent(t sim.Time, m *netsim.Message) {
	nm.sent.Inc()
	nm.sentKind.Get(m.Kind).Inc()
}

// MessageDelivered implements netsim.Tracer.
func (nm *NetMetrics) MessageDelivered(t sim.Time, m *netsim.Message) {
	nm.delivered.Inc()
	switch m.Kind {
	case "SubscriptionRenew":
		nm.renewals.Inc()
	case "RenewError":
		nm.refusals.Inc()
	}
}

// MessageDropped implements netsim.Tracer.
func (nm *NetMetrics) MessageDropped(t sim.Time, m *netsim.Message, reason string) {
	nm.dropped.Inc()
	nm.dropReason.Get(reason).Inc()
}

// NodeEvent implements netsim.Tracer.
func (nm *NetMetrics) NodeEvent(t sim.Time, node netsim.NodeID, event string) {
	nm.nodeEvents.Get(event).Inc()
}

// ShardMetrics is one shard's slice of the PDES barrier accounting:
// where its wall time goes (running windows vs parked at the barrier)
// and how much crosses the shard boundary. Busy and Stall count wall
// nanoseconds — reading the wall clock never touches virtual time or
// any kernel's random stream, so sharded runs stay deterministic with
// metrics attached.
type ShardMetrics struct {
	// Busy is wall nanoseconds spent ingesting cross frames and running
	// windows; Stall is wall nanoseconds parked between windows (the
	// barrier wait). Busy/(Busy+Stall) is the shard's window occupancy.
	Busy, Stall *Counter
	// CrossIn counts frames ingested from other shards at barriers;
	// CrossOut counts frames this shard handed to the coordinator.
	CrossIn, CrossOut *Counter
	// Events mirrors the shard kernel's fired-event count as of the last
	// barrier; Pending its queue depth.
	Events, Pending *Gauge
}

// FabricMetrics aggregates the per-shard accounting plus the window
// protocol's own counters.
type FabricMetrics struct {
	Shards []*ShardMetrics
	// Windows counts barrier rounds; WindowWidth records each round's
	// virtual width (the conservative lookahead bound in action).
	Windows     *Counter
	WindowWidth *Histogram
}

// NewFabricMetrics registers the sharded-fabric series for S shards.
func NewFabricMetrics(r *Registry, shards int) *FabricMetrics {
	fm := &FabricMetrics{
		Windows:     r.Counter("sd_fabric_windows_total"),
		WindowWidth: r.Histogram("sd_fabric_window_width_virtual"),
	}
	for s := 0; s < shards; s++ {
		fm.Shards = append(fm.Shards, NewShardMetrics(r, s))
	}
	return fm
}

// NewShardMetrics registers one shard's series.
func NewShardMetrics(r *Registry, shard int) *ShardMetrics {
	s := strconv.Itoa(shard)
	return &ShardMetrics{
		Busy:     r.Counter("sd_shard_busy_nanos_total", "shard", s),
		Stall:    r.Counter("sd_shard_barrier_stall_nanos_total", "shard", s),
		CrossIn:  r.Counter("sd_shard_cross_frames_in_total", "shard", s),
		CrossOut: r.Counter("sd_shard_cross_frames_out_total", "shard", s),
		Events:   r.Gauge("sd_kernel_events", "shard", s),
		Pending:  r.Gauge("sd_kernel_pending", "shard", s),
	}
}

// Occupancy reports Busy/(Busy+Stall), the fraction of the shard's
// wall time spent computing rather than parked at the barrier.
func (sm *ShardMetrics) Occupancy() float64 {
	b, st := sm.Busy.Load(), sm.Stall.Load()
	if b+st == 0 {
		return 0
	}
	return float64(b) / float64(b+st)
}

// BusyDur and StallDur read the wall-time counters as durations.
func (sm *ShardMetrics) BusyDur() time.Duration  { return time.Duration(sm.Busy.Load()) }
func (sm *ShardMetrics) StallDur() time.Duration { return time.Duration(sm.Stall.Load()) }
