package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registering the same series returns the same handle.
	if r.Counter("x_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("y", "shard", "0")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if r.Gauge("y", "shard", "0") != g {
		t.Fatal("re-registration returned a different gauge")
	}
	// Same family, different labels: distinct series.
	if r.Gauge("y", "shard", "1") == g {
		t.Fatal("distinct labels shared a series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		setup func(r *Registry)
		clash func(r *Registry)
	}{
		{"series", func(r *Registry) { r.Counter("a") }, func(r *Registry) { r.Gauge("a") }},
		{"family", func(r *Registry) { r.Counter("a", "k", "1") }, func(r *Registry) { r.Gauge("a", "k", "2") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.setup(r)
			defer func() {
				if recover() == nil {
					t.Fatal("kind mismatch did not panic")
				}
			}()
			tc.clash(r)
		})
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	vec := r.CounterVec("kinds_total", "kind")
	kinds := []string{"a", "b", "c", "d"}
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				vec.Get(kinds[(w+i)%len(kinds)]).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	var total uint64
	for _, k := range kinds {
		total += vec.Get(k).Load()
	}
	if total != workers*per {
		t.Fatalf("vec total = %d, want %d", total, workers*per)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	if s := h.Summary(); s.N != 0 {
		t.Fatalf("empty histogram N = %d", s.N)
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summary()
	if s.N != 1000 {
		t.Fatalf("N = %d, want 1000", s.N)
	}
	if s.Min != time.Millisecond || s.Max != time.Second {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// ~5% bucket resolution: p50 near 500ms, p99 near 990ms.
	approx := func(got, want time.Duration) bool {
		lo := time.Duration(float64(want) * 0.90)
		hi := time.Duration(float64(want) * 1.10)
		return got >= lo && got <= hi
	}
	if !approx(s.P50, 500*time.Millisecond) {
		t.Errorf("p50 = %v, want ≈500ms", s.P50)
	}
	if !approx(s.P95, 950*time.Millisecond) {
		t.Errorf("p95 = %v, want ≈950ms", s.P95)
	}
	if !approx(s.P99, 990*time.Millisecond) {
		t.Errorf("p99 = %v, want ≈990ms", s.P99)
	}
	if !approx(s.Mean, 500*time.Millisecond) {
		t.Errorf("mean = %v, want ≈500ms", s.Mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(b)
	s := a.Summary()
	if s.N != 200 {
		t.Fatalf("merged N = %d, want 200", s.N)
	}
	if s.Min != time.Millisecond || s.Max != time.Second {
		t.Fatalf("merged min/max = %v/%v", s.Min, s.Max)
	}
	wantSum := 100*time.Millisecond + 100*time.Second
	if s.Sum != wantSum {
		t.Fatalf("merged sum = %v, want %v", s.Sum, wantSum)
	}
	// Merging an empty histogram is a no-op (min must not regress to 0).
	a.Merge(NewHistogram())
	if s := a.Summary(); s.N != 200 || s.Min != time.Millisecond {
		t.Fatalf("merge(empty) changed summary: n=%d min=%v", s.N, s.Min)
	}
}

// TestHistogramSummaryNotTorn hammers Observe from racing goroutines
// while scraping Summary, asserting the invariant the PR-6 live
// Histogram fix established: quantiles are computed over exactly the N
// samples the summary reports, never a half-updated view where p99
// reflects more samples than n.
func TestHistogramSummaryNotTorn(t *testing.T) {
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(time.Duration(1+i%1000) * time.Millisecond)
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		s := h.Summary()
		if s.N == 0 {
			continue
		}
		// Every quantile and the mean stay within the observed range; the
		// count comes from the same bucket pass that produced them.
		for _, q := range []time.Duration{s.P50, s.P95, s.P99, s.Mean} {
			if q < s.Min || q > s.Max {
				t.Fatalf("torn summary: q=%v outside [%v, %v] at n=%d", q, s.Min, s.Max, s.N)
			}
		}
	}
	close(stop)
	wg.Wait()
	// Quiesced: the summary must now be exactly self-consistent.
	s := h.Summary()
	if s.N != h.Count() {
		t.Fatalf("quiesced N = %d, Count = %d", s.N, h.Count())
	}
}

func msg(kind string, from, to netsim.NodeID) *netsim.Message {
	return &netsim.Message{Kind: kind, From: from, To: to}
}

func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(3, 16)
	for i := 0; i < 40; i++ {
		fr.MessageSent(sim.Time(i), msg(fmt.Sprintf("k%d", i), 1, 2))
	}
	s := fr.Snapshot()
	if s.Shard != 3 {
		t.Fatalf("shard = %d", s.Shard)
	}
	if s.Total != 40 {
		t.Fatalf("total = %d, want 40", s.Total)
	}
	if len(s.Events) != 16 {
		t.Fatalf("len(events) = %d, want 16 (ring capacity)", len(s.Events))
	}
	// Oldest surviving event first: 40-16=24 … 39.
	for i, ev := range s.Events {
		if want := sim.Time(24 + i); ev.At != want {
			t.Fatalf("events[%d].At = %v, want %v", i, ev.At, want)
		}
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	fr := NewFlightRecorder(0, 16)
	fr.MessageDropped(7, msg("Probe", 1, 2), "loss")
	fr.NodeEvent(9, 5, "crash")
	s := fr.Snapshot()
	if len(s.Events) != 2 || s.Total != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Events[0].Op != OpDropped || s.Events[0].Reason != "loss" {
		t.Fatalf("event 0 = %+v", s.Events[0])
	}
	if s.Events[1].Op != OpNode || s.Events[1].Kind != "crash" || s.Events[1].From != 5 {
		t.Fatalf("event 1 = %+v", s.Events[1])
	}
}

func TestFlightRecorderFreeze(t *testing.T) {
	fr := NewFlightRecorder(0, 16)
	fr.MessageSent(1, msg("A", 1, 2))
	fr.Freeze("oracle: StaleBound")
	fr.Freeze("second caller loses")
	fr.MessageSent(2, msg("B", 1, 2))
	s := fr.Snapshot()
	if s.Frozen != "oracle: StaleBound" {
		t.Fatalf("frozen reason = %q", s.Frozen)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != "A" {
		t.Fatalf("ring recorded past freeze: %+v", s.Events)
	}
}

func TestFlightRecorderSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-1, DefaultFlightSize}, {0, DefaultFlightSize}, {1, 16}, {17, 32}, {256, 256}} {
		if fr := NewFlightRecorder(0, tc.in); len(fr.buf) != tc.want {
			t.Errorf("NewFlightRecorder(size=%d): cap %d, want %d", tc.in, len(fr.buf), tc.want)
		}
	}
}

// Zero-alloc guards in the PR-2 gate style: the telemetry hot paths
// must not allocate, or attaching a tracer would break netsim's
// conditioned fast-path gates.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	vec := r.CounterVec("v_total", "kind", "shard", "0")
	vec.Get("warm") // register the series outside the measured loop
	h := r.Histogram("h")
	fr := NewFlightRecorder(0, 64)
	m := msg("Probe", 1, 2)
	nm := r.NetTracer(0)
	nm.MessageSent(0, m) // warm the kind-vec entry
	nm.MessageDropped(0, m, "loss")

	cases := []struct {
		name string
		f    func()
	}{
		{"counter.Inc", func() { c.Inc() }},
		{"gauge.Set", func() { g.Set(3) }},
		{"vec.Get.Inc", func() { vec.Get("warm").Inc() }},
		{"hist.Observe", func() { h.Observe(time.Millisecond) }},
		{"flight.append", func() { fr.MessageSent(1, m) }},
		{"net.MessageSent", func() { nm.MessageSent(1, m) }},
		{"net.MessageDelivered", func() { nm.MessageDelivered(1, m) }},
		{"net.MessageDropped", func() { nm.MessageDropped(1, m, "loss") }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.f); avg != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, avg)
		}
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("sd_frames_sent_total", "shard", "0").Add(12)
	r.Counter("sd_frames_sent_total", "shard", "1").Add(3)
	r.Gauge("sd_kernel_pending", "shard", "0").Set(42)
	r.GaugeFunc("sd_up", func() float64 { return 1 })
	h := r.Histogram("sd_rt_seconds")
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	r.Counter("weird_total", "path", `a\b"c`+"\n").Inc()

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE sd_frames_sent_total counter\n",
		`sd_frames_sent_total{shard="0"} 12` + "\n",
		`sd_frames_sent_total{shard="1"} 3` + "\n",
		"# TYPE sd_kernel_pending gauge\n",
		`sd_kernel_pending{shard="0"} 42` + "\n",
		"# TYPE sd_up gauge\n",
		"sd_up 1\n",
		"# TYPE sd_rt_seconds summary\n",
		`sd_rt_seconds{quantile="0.5"}`,
		"sd_rt_seconds_count 2\n",
		`weird_total{path="a\\b\"c\n"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family.
	if n := strings.Count(out, "# TYPE sd_frames_sent_total "); n != 1 {
		t.Errorf("TYPE lines for sd_frames_sent_total = %d, want 1", n)
	}
	// Structural validity: every non-comment line is "series value".
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 || sp == len(line)-1 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(9)
	r.Gauge("depth").Set(-4)
	r.Histogram("lat").Observe(time.Millisecond)
	snap := r.Snapshot()
	if snap["ops_total"] != uint64(9) {
		t.Fatalf("ops_total = %v", snap["ops_total"])
	}
	if snap["depth"] != int64(-4) {
		t.Fatalf("depth = %v", snap["depth"])
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v", err)
	}
	if _, ok := back["lat"].(map[string]any); !ok {
		t.Fatalf("lat not a summary object: %v", back["lat"])
	}
}

func TestNetTracerLeaseCounting(t *testing.T) {
	r := NewRegistry()
	nm := r.NetTracer(0)
	nm.MessageDelivered(1, msg("SubscriptionRenew", 1, 2))
	nm.MessageDelivered(2, msg("RenewAck", 2, 1))
	nm.MessageDelivered(3, msg("RenewError", 2, 1))
	nm.MessageDelivered(4, msg("SubscriptionRenew", 3, 2))
	if got := r.Counter("sd_lease_renewals_total", "shard", "0").Load(); got != 2 {
		t.Fatalf("renewals = %d, want 2", got)
	}
	if got := r.Counter("sd_lease_refusals_total", "shard", "0").Load(); got != 1 {
		t.Fatalf("refusals = %d, want 1", got)
	}
	if got := r.Counter("sd_frames_delivered_total", "shard", "0").Load(); got != 4 {
		t.Fatalf("delivered = %d, want 4", got)
	}
}

func TestShardMetricsOccupancy(t *testing.T) {
	r := NewRegistry()
	fm := NewFabricMetrics(r, 2)
	if len(fm.Shards) != 2 {
		t.Fatalf("shards = %d", len(fm.Shards))
	}
	sm := fm.Shards[1]
	if sm.Occupancy() != 0 {
		t.Fatalf("empty occupancy = %v", sm.Occupancy())
	}
	sm.Busy.Add(300)
	sm.Stall.Add(100)
	if got := sm.Occupancy(); got != 0.75 {
		t.Fatalf("occupancy = %v, want 0.75", got)
	}
	if sm.BusyDur() != 300 || sm.StallDur() != 100 {
		t.Fatalf("durs = %v/%v", sm.BusyDur(), sm.StallDur())
	}
}

func TestWriteFlightJSON(t *testing.T) {
	fr := NewFlightRecorder(1, 16)
	fr.MessageSent(5, msg("Probe", 1, 2))
	fr.Freeze("test")
	var buf bytes.Buffer
	if err := WriteFlightJSON(&buf, []FlightSnapshot{fr.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	var snaps []FlightSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Frozen != "test" || len(snaps[0].Events) != 1 {
		t.Fatalf("round-trip = %+v", snaps)
	}
}
