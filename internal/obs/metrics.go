package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter. The zero value is unusable on
// its own — obtain counters from a Registry so they are scrapeable.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load reads the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// CounterVec is a family of counters split by one free label (frame
// kind, drop reason, node event). The read path — Get on a label value
// seen before — is an RLock plus a map lookup and allocates nothing,
// which is why this is a plain map under an RWMutex and not a
// sync.Map: converting a string key to any would allocate on every
// call and break the 0 allocs/op guard.
type CounterVec struct {
	r        *Registry
	name     string
	labelKey string
	fixed    []string // k,v pairs prepended to every series

	mu sync.RWMutex
	m  map[string]*Counter
}

// Get returns the counter for one label value, registering the series
// on first use. Safe from any goroutine; the steady-state path takes a
// read lock only.
func (v *CounterVec) Get(value string) *Counter {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[value]; c != nil {
		return c
	}
	labels := make([]string, 0, len(v.fixed)+2)
	labels = append(labels, v.fixed...)
	labels = append(labels, v.labelKey, value)
	c = v.r.Counter(v.name, labels...)
	v.m[value] = c
	return c
}

// metricKind discriminates what one registered series holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHist
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHist:
		return "histogram"
	}
	return "?"
}

// metric is one registered series: a family name, an optional label
// set, and exactly one value holder.
type metric struct {
	name   string
	labels []string // k,v pairs
	key    string   // name + rendered label block; unique per series
	kind   metricKind

	c  *Counter
	g  *Gauge
	fn func() float64
	h  *Histogram
}

// Registry owns a process's (or one run's) metric series. Registration
// takes a lock; the returned Counter/Gauge/Histogram handles are plain
// atomics the hot paths touch lock-free. Registering the same
// (name, labels) series again returns the existing handle, so repeated
// runs of a sweep aggregate into one set of counters.
type Registry struct {
	mu     sync.Mutex
	list   []*metric
	byKey  map[string]*metric
	family map[string]metricKind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  map[string]*metric{},
		family: map[string]metricKind{},
	}
}

// Counter registers (or finds) a counter series. Labels are k,v pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.register(name, labels, kindCounter, nil).c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.register(name, labels, kindGauge, nil).g
}

// GaugeFunc registers a gauge sampled at scrape time. A second
// registration of the same series keeps the first function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	r.register(name, labels, kindGaugeFunc, fn)
}

// Histogram registers (or finds) a histogram series.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.register(name, labels, kindHist, nil).h
}

// CounterVec returns a by-label counter family. The fixed k,v pairs
// (e.g. the shard) are stamped on every series of the family.
func (r *Registry) CounterVec(name, labelKey string, fixed ...string) *CounterVec {
	if len(fixed)%2 != 0 {
		panic(fmt.Sprintf("obs: CounterVec %s: odd fixed label list", name))
	}
	return &CounterVec{r: r, name: name, labelKey: labelKey, fixed: fixed,
		m: map[string]*Counter{}}
}

func (r *Registry) register(name string, labels []string, kind metricKind, fn func() float64) *metric {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: %s: odd label list (want k,v pairs)", name))
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byKey[key]; m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m
	}
	if fk, ok := r.family[name]; ok && fk != kind {
		// One TYPE line per family: a name cannot mix counters and gauges.
		panic(fmt.Sprintf("obs: family %s re-registered as %s (was %s)", name, kind, fk))
	}
	r.family[name] = kind
	m := &metric{name: name, labels: labels, key: key, kind: kind, fn: fn}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHist:
		m.h = newHistogram()
	}
	r.list = append(r.list, m)
	r.byKey[key] = m
	return m
}

// snapshotMetrics copies the series list so exposition never holds the
// registration lock while formatting.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.list...)
}

// seriesKey renders the unique identity of one series.
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + labelBlock(labels)
}
