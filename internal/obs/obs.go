// Package obs is the unified telemetry layer: a registry of
// preallocated atomic counters, gauges and log-bucket histograms, a
// fixed-size flight recorder for recent trace events, and hand-rolled
// Prometheus/JSON exposition — no external dependencies.
//
// Every emitting site obeys two rules, so telemetry can stay attached
// to the deterministic simulation paths:
//
//   - No randomness. Nothing in this package draws from any kernel's
//     random stream or perturbs the event schedule; golden sweep
//     fingerprints are byte-identical with telemetry on or off.
//     Wall-clock reads (shard busy/stall accounting) are fine — they
//     never feed back into virtual time.
//   - No allocation on the hot path. Counter increments are single
//     atomic adds, histogram observations index a fixed bucket array,
//     and flight-recorder appends copy one struct into a preallocated
//     ring. Per-kind counters go through an RWMutex-guarded map whose
//     read path allocates nothing (a sync.Map would box every string
//     key). The alloc guards in obs_test.go pin all of this at
//     0 allocs/op, the same way netsim's fast-path gates do.
//
// Ownership: hot-path structures are fed from the goroutine that owns
// them (a netsim.Tracer fires on its network's goroutine; a shard's
// metrics are written by its worker) and read either through atomics
// (counters, gauges, histograms — safe from any goroutine) or under
// the shard barrier's happens-before (flight-recorder rings, which are
// plain memory).
package obs
