package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-1, 0, 1}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); !almost(got, c.want) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) not NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); !almost(got, 1) {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); !almost(got, 5) {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); !almost(got, 2) {
		t.Errorf("q.25 = %v", got)
	}
	if got := Quantile(xs, 0.1); !almost(got, 1.4) {
		t.Errorf("q.1 = %v (interpolated)", got)
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range q not NaN")
	}
}

func TestMinMaxStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if got := StdDev(xs); !almost(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Median, 2) || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(-1, 0, 1) != 0 || Clamp(2, 0, 1) != 1 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

// Property: the median lies within [min, max] and is invariant under
// permutation (sorted input gives the same answer).
func TestQuickMedianBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return math.IsNaN(Median(clean))
		}
		m := Median(clean)
		if m < Min(clean) || m > Max(clean) {
			return false
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return almost(m, Median(sorted))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(xs []float64, qa, qb uint8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		return Quantile(clean, a) <= Quantile(clean, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
