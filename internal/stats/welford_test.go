package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) {
		t.Errorf("empty mean = %v, want NaN", w.Mean())
	}
	if w.Variance() != 0 || w.CI95() != 0 {
		t.Errorf("empty variance/CI = %v/%v, want 0", w.Variance(), w.CI95())
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	xs := []float64{0.1, 0.9, 0.5, 0.25, 0.75, 1, 0}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if got, want := w.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Sample std dev from the two-pass population formula.
	n := float64(len(xs))
	want := StdDev(xs) * math.Sqrt(n/(n-1))
	if got := w.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, want)
	}
	// CI95 agrees with the slice-based helper.
	_, hw := MeanCI95(xs)
	if got := w.CI95(); math.Abs(got-hw) > 1e-12 {
		t.Errorf("ci95 = %v, want %v", got, hw)
	}
}

func TestQuickWelfordAgreesWithSlices(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r) / 65535
			w.Add(xs[i])
		}
		if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
			return false
		}
		_, hw := MeanCI95(xs)
		return math.Abs(w.CI95()-hw) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
