// Package stats provides the small statistical toolkit behind the Update
// Metrics: medians (the paper uses medians for Responsiveness "to
// eliminate biasing from extreme scenarios"), means, quantiles and
// summaries.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the middle value (mean of the central pair for even
// lengths), NaN for empty input. The input is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics, NaN for empty input. The input is not
// modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest value, NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation, NaN for empty input.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary; all fields are NaN for empty input
// except N.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
	}
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval under the normal approximation (1.96·s/√n). The
// half-width is 0 for samples of size < 2.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	s := StdDev(xs) * math.Sqrt(float64(n)/float64(n-1)) // sample std dev
	return mean, 1.96 * s / math.Sqrt(float64(n))
}
