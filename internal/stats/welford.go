package stats

import "math"

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm). It lets the sweep aggregation compute per-cell statistics
// in O(1) memory per metric instead of retaining every run's raw
// observations. Updates must be applied in a deterministic order when
// bit-identical results are required across worker counts: floating-point
// accumulation is not associative.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the number of observations.
func (w *Welford) N() int { return w.n }

// Mean reports the running mean, NaN when empty.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance reports the sample variance (n−1 denominator), 0 for fewer
// than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95 reports the half-width of the mean's 95% confidence interval
// under the normal approximation (1.96·s/√n), 0 for fewer than two
// observations.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.StdDev() / math.Sqrt(float64(w.n))
}
