package hunt

import (
	"testing"
)

// A hunted (dirty-by-construction) fixture replayed with tracing must
// freeze its flight recorder at the first violation: the snapshot
// carries the freeze reason and a non-empty ring of the events leading
// up to the breach.
func TestReplayTracedFreezesOnViolation(t *testing.T) {
	f, err := LoadFixture("testdata/hunted-frodo2p-lease-purge.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, snaps, err := ReplayTraced(f, 64)
	if err != nil {
		t.Fatalf("hunted fixture no longer reproduces: %v", err)
	}
	if rep.Total == 0 {
		t.Fatal("hunted fixture replayed clean")
	}
	if len(snaps) == 0 {
		t.Fatal("no flight snapshots returned")
	}
	frozen := false
	for _, s := range snaps {
		if s.Frozen != "" {
			frozen = true
			if len(s.Events) == 0 {
				t.Errorf("shard %d froze with an empty ring", s.Shard)
			}
		}
	}
	if !frozen {
		t.Fatal("violation did not freeze any recorder")
	}
}

// A clean fixture replayed with tracing returns unfrozen snapshots and
// the same verdict as the plain replay.
func TestReplayTracedCleanFixture(t *testing.T) {
	f, err := LoadFixture("testdata/clean-flashcrowd-racks.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, snaps, err := ReplayTraced(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean fixture reported %s", rep)
	}
	for _, s := range snaps {
		if s.Frozen != "" {
			t.Errorf("clean replay froze shard %d: %s", s.Shard, s.Frozen)
		}
		if s.Total == 0 {
			t.Errorf("shard %d recorded no events", s.Shard)
		}
	}
}
