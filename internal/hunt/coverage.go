package hunt

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/experiment"
	"repro/internal/verify"
)

// The hunter's feedback is behavioral coverage, not code coverage: a
// candidate scenario is interesting if it drove the audited fabric into
// a state no earlier candidate reached. The signal is distilled into a
// set of small string keys — readable in reports, trivially comparable,
// and stable across runs — drawn from three observers:
//
//   - the oracle's near-miss counters and per-invariant slack
//     histograms (how close each invariant came to a violation),
//   - the network's event mix (which message kinds flowed, log-scale
//     how many, plus drop and effort magnitudes),
//   - the run outcome (users left inconsistent, heal probes that never
//     ran).
//
// A violation itself is also a key, so the first breach of an invariant
// on a system always refreshes the corpus.

// runStats is everything the hunter observes about one (spec, system)
// run, read out immediately after the run while the borrowed scenario
// storage is still valid.
type runStats struct {
	Report    verify.OracleReport
	PerKind   map[string]int
	Drops     int
	Effort    int
	Unreached int
}

// logBucket compresses a non-negative count onto a log2 scale: 0 → 0,
// then the bit length (1, 2-3 → 2, 4-7 → 3, …), so "an order of
// magnitude more of X" is a new behavior but "one more frame" is not.
func logBucket(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n))
}

// coverageKeys renders one run's observations as coverage keys. The
// order is deterministic (invariants in declaration order, message
// kinds sorted) so corpus growth replays identically.
func coverageKeys(sys experiment.System, st runStats) []string {
	s := sys.Short()
	var keys []string
	cov := st.Report.Coverage
	for inv, n := range st.Report.ByInvariant {
		if n > 0 {
			keys = append(keys, fmt.Sprintf("%s/violation/%v", s, verify.Invariant(inv)))
		}
	}
	for inv, n := range cov.NearMisses {
		if n > 0 {
			keys = append(keys, fmt.Sprintf("%s/near/%v/%d", s, verify.Invariant(inv), logBucket(n)))
		}
	}
	for inv := range cov.Slack {
		for b, n := range cov.Slack[inv] {
			if n > 0 {
				keys = append(keys, fmt.Sprintf("%s/slack/%v/%d", s, verify.Invariant(inv), b))
			}
		}
	}
	kinds := make([]string, 0, len(st.PerKind))
	for k := range st.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		keys = append(keys, fmt.Sprintf("%s/kind/%s/%d", s, k, logBucket(st.PerKind[k])))
	}
	keys = append(keys,
		fmt.Sprintf("%s/drops/%d", s, logBucket(st.Drops)),
		fmt.Sprintf("%s/effort/%d", s, logBucket(st.Effort)))
	if st.Unreached > 0 {
		keys = append(keys, fmt.Sprintf("%s/unreached/%d", s, logBucket(st.Unreached)))
	}
	if pending := st.Report.ProbesScheduled - st.Report.ProbesRun; pending > 0 {
		keys = append(keys, fmt.Sprintf("%s/probes-pending", s))
	}
	return keys
}
