package hunt

import (
	"fmt"
	"testing"

	"repro/internal/experiment"
	"repro/internal/verify"
)

// Holder-refusal under hardened mode, across all five systems: each
// system's hunted lease-purge fixture pins a baseline timeline in which
// a holder honors a renewal past expiry (the purge never happens or the
// ack leaves far too late), and its hardened counterpart must show the
// strict-lease boundary holding — no violation AND no RenewAck sent
// later than the oracle's purge slack past any lease's expiry.
func TestLeaseBoundaryAcrossSystems(t *testing.T) {
	for _, name := range []string{"upnp", "jini1", "jini2", "frodo3p", "frodo2p"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, err := experiment.ParseSystem(name)
			if err != nil {
				t.Fatal(err)
			}
			slack := verify.DefaultOracleConfig(sys).PurgeSlack

			base, err := LoadFixture(fmt.Sprintf("testdata/hunted-%s-lease-purge.json", name))
			if err != nil {
				t.Fatalf("every system needs a committed lease-purge fixture: %v", err)
			}
			baseRep, err := Replay(base)
			if err != nil {
				t.Fatalf("baseline fixture drifted: %v", err)
			}
			if baseRep.MaxPurgeLate <= slack {
				t.Errorf("baseline MaxPurgeLate = %v, want > %v (the ack the violation is about)",
					baseRep.MaxPurgeLate, slack)
			}

			hard, err := LoadFixture(fmt.Sprintf("testdata/hardened-%s-lease-purge.json", name))
			if err != nil {
				t.Fatalf("every hunted fixture needs a hardened counterpart: %v", err)
			}
			if !hard.Scenario.Hardened {
				t.Fatal("hardened fixture does not set hardened: true")
			}
			hardRep, err := Replay(hard)
			if err != nil {
				t.Fatalf("hardened replay not clean: %v", err)
			}
			if hardRep.MaxPurgeLate > slack {
				t.Errorf("hardened MaxPurgeLate = %v, want ≤ %v: a holder still acked a spent lease",
					hardRep.MaxPurgeLate, slack)
			}
		})
	}
}
