package hunt

import (
	"path/filepath"
	"testing"
)

// Every committed fixture must replay its recorded outcome — a hunted
// violation or a pinned clean floor — from the file alone: the spec
// carries its seed, the oracle runs at default tolerances, and any
// drift in simulator, protocols or oracle shows up here as a diff
// against a known timeline.
func TestReplayCommittedFixtures(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed fixtures under testdata/ — the hunted corpus is gone")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			fx, err := LoadFixture(path)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Replay(fx)
			if err != nil {
				t.Fatalf("%v\nfull report: %s", err, rep)
			}
		})
	}
}
