package hunt

import (
	"reflect"

	"repro/internal/experiment"
)

// Delta-debugging a violating spec: greedily try a fixed sequence of
// reductions, keeping each one that still reproduces the violation,
// until a full sweep removes nothing. Determinism invariants:
//
//   - the candidate order is fixed (the pass table below, fields before
//     magnitudes), never randomized;
//   - every probe reruns the reduced spec with the spec's own seed, so
//     "still violates" means the committed fixture will replay the same
//     violation by seed alone — seed-determinism is preserved, not
//     assumed;
//   - a reduction is accepted only if the same invariant still fires on
//     the same system; the count may change (fewer faults, fewer
//     breaches) but the witness must not drift to a different bug.
//
// The probe count is capped so a pathological spec cannot stall the
// hunt; the cap is generous (the pass table is small) and a capped
// minimization simply returns the best reduction so far.

const maxMinimizeRuns = 250

// reductions generate one candidate each from the current spec, or nil
// when the dimension is already minimal. Order: drop whole fault
// dimensions first (partitions, crowds, racks, churn, link, λ), then
// shrink magnitudes (duration, population, crowd size).
var reductions = []func(*experiment.ScenarioSpec) []*experiment.ScenarioSpec{
	func(s *experiment.ScenarioSpec) []*experiment.ScenarioSpec {
		var out []*experiment.ScenarioSpec
		for i := range s.Partitions {
			c := cloneSpec(s)
			c.Partitions = append(c.Partitions[:i:i], c.Partitions[i+1:]...)
			if len(c.Partitions) == 0 {
				c.Partitions = nil
			}
			out = append(out, c)
		}
		return out
	},
	func(s *experiment.ScenarioSpec) []*experiment.ScenarioSpec {
		var out []*experiment.ScenarioSpec
		for i := range s.FlashCrowds {
			c := cloneSpec(s)
			c.FlashCrowds = append(c.FlashCrowds[:i:i], c.FlashCrowds[i+1:]...)
			if len(c.FlashCrowds) == 0 {
				c.FlashCrowds = nil
			}
			out = append(out, c)
		}
		return out
	},
	one(func(c *experiment.ScenarioSpec) bool {
		if c.RackFailures == (experiment.SpecRacks{}) {
			return false
		}
		c.RackFailures = experiment.SpecRacks{}
		return true
	}),
	one(func(c *experiment.ScenarioSpec) bool {
		if c.Churn == (experiment.SpecChurn{}) {
			return false
		}
		c.Churn = experiment.SpecChurn{}
		return true
	}),
	one(func(c *experiment.ScenarioSpec) bool {
		if c.Link == (experiment.SpecLink{}) {
			return false
		}
		c.Link = experiment.SpecLink{}
		return true
	}),
	one(func(c *experiment.ScenarioSpec) bool {
		if c.Lambda == 0 {
			return false
		}
		c.Lambda = 0
		return true
	}),
	one(func(c *experiment.ScenarioSpec) bool {
		if c.FailureWindow == nil {
			return false
		}
		c.FailureWindow = nil
		return true
	}),
	one(func(c *experiment.ScenarioSpec) bool {
		if c.ChangeMinSec == 0 && c.ChangeMaxSec == 0 {
			return false
		}
		c.ChangeMinSec, c.ChangeMaxSec = 0, 0
		return true
	}),
	// Back to the default duration, else halve toward it.
	one(func(c *experiment.ScenarioSpec) bool {
		if c.DurationSec == 0 {
			return false
		}
		c.DurationSec = 0
		repair(c) // partitions may force the duration right back up
		return true
	}),
	one(func(c *experiment.ScenarioSpec) bool {
		if c.DurationSec <= minDurationSec {
			return false
		}
		c.DurationSec = float64(int(c.DurationSec/2/100) * 100)
		repair(c)
		return true
	}),
	one(func(c *experiment.ScenarioSpec) bool {
		if c.Topology == (experiment.SpecTopology{}) {
			return false
		}
		c.Topology = experiment.SpecTopology{}
		return true
	}),
	func(s *experiment.ScenarioSpec) []*experiment.ScenarioSpec {
		var out []*experiment.ScenarioSpec
		for i, fc := range s.FlashCrowds {
			if fc.Users <= 1 {
				continue
			}
			c := cloneSpec(s)
			c.FlashCrowds[i].Users = fc.Users / 2
			out = append(out, c)
		}
		return out
	},
}

// one lifts a single-candidate reduction into the table's shape.
func one(f func(*experiment.ScenarioSpec) bool) func(*experiment.ScenarioSpec) []*experiment.ScenarioSpec {
	return func(s *experiment.ScenarioSpec) []*experiment.ScenarioSpec {
		c := cloneSpec(s)
		if !f(c) {
			return nil
		}
		return []*experiment.ScenarioSpec{c}
	}
}

// minimize shrinks a finding's spec to a fixed point of the reduction
// table while its violation keeps reproducing.
func (h *Hunter) minimize(f *Finding) *experiment.ScenarioSpec {
	reproduces := func(s *experiment.ScenarioSpec) bool {
		if s.Validate() != nil {
			return false
		}
		h.minRuns++
		st := h.runOne(s, f.System)
		return st.Report.ByInvariant[f.Invariant] > 0
	}
	cur := cloneSpec(f.Spec)
	budget := maxMinimizeRuns
	for changed := true; changed; {
		changed = false
		for _, reduce := range reductions {
			for _, cand := range reduce(cur) {
				if reflect.DeepEqual(cand, cur) {
					continue // repair() undid the reduction: a no-op, not progress
				}
				if budget <= 0 {
					h.logf("minimize %s/%s: probe cap hit, keeping best-so-far", f.System.Short(), f.Invariant)
					return cur
				}
				budget--
				if reproduces(cand) {
					cur = cand
					changed = true
					break // re-run this pass on the smaller spec
				}
			}
		}
	}
	h.logf("minimized %s/%s after %d probes", f.System.Short(), f.Invariant, maxMinimizeRuns-budget)
	return cur
}
