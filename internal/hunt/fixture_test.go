package hunt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
)

func writeFixture(t *testing.T, f *Fixture) string {
	t.Helper()
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fixture.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFixtureRoundTripAndReplayClean(t *testing.T) {
	f := &Fixture{
		Comment:  "paper design, no faults: must audit clean",
		System:   "upnp",
		Scenario: experiment.ScenarioSpec{Seed: 5},
		Expect:   Expect{Clean: true},
	}
	back, err := LoadFixture(writeFixture(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if back.System != "upnp" || back.Scenario.Seed != 5 || !back.Expect.Clean {
		t.Errorf("round trip lost fields: %+v", back)
	}
	rep, err := Replay(back)
	if err != nil {
		t.Errorf("clean fixture failed replay: %v", err)
	}
	if rep.Total != 0 {
		t.Errorf("unexpected violations: %s", rep)
	}

	// A violation expectation the run does not meet must fail replay.
	f.Expect = Expect{Invariant: "lease-purge"}
	if _, err := Replay(f); err == nil || !strings.Contains(err.Error(), "lease-purge") {
		t.Errorf("unmet violation expectation not reported: %v", err)
	}
}

func TestFixtureValidation(t *testing.T) {
	base := func() *Fixture {
		return &Fixture{System: "upnp", Scenario: experiment.ScenarioSpec{Seed: 1},
			Expect: Expect{Clean: true}}
	}
	cases := []struct {
		name   string
		break_ func(*Fixture)
		want   string
	}{
		{"system", func(f *Fixture) { f.System = "bonjour" }, "unknown system"},
		{"both", func(f *Fixture) { f.Expect.Invariant = "lease-purge" }, "exactly one"},
		{"neither", func(f *Fixture) { f.Expect.Clean = false }, "exactly one"},
		{"invariant", func(f *Fixture) { f.Expect = Expect{Invariant: "lease-prune"} }, "unknown invariant"},
		{"count", func(f *Fixture) { f.Expect = Expect{Invariant: "lease-purge", MinCount: -1} }, "min_count"},
		{"scenario", func(f *Fixture) { f.Scenario.Lambda = 7 }, "lambda"},
	}
	for _, c := range cases {
		f := base()
		c.break_(f)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.want, err)
		}
	}

	// Strict load: an unknown field inside the embedded scenario fails.
	path := filepath.Join(t.TempDir(), "bad.json")
	bad := `{"system": "upnp", "scenario": {"seed": 1, "lamda": 0.2}, "expect": {"clean": true}}`
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFixture(path); err == nil || !strings.Contains(err.Error(), "lamda") {
		t.Errorf("unknown nested field not rejected: %v", err)
	}
}
