package hunt

import (
	"math/rand"
	"sort"

	"repro/internal/experiment"
)

// Mutations operate on the declarative ScenarioSpec, not on any live
// simulation state: each one clones the parent, perturbs one fault
// dimension, then repairs the spec back into the valid envelope. All
// randomness comes from the hunter's own rand.Rand, so a (seed, budget)
// pair replays the identical mutation chain on any machine.

// healMarginSec is how long before the deadline every partition must
// heal: the oracle's single-Central probe fires HealSlack (FRODO
// Central timeout 3000s + announce period 1200s + 60s) after the heal,
// and a probe scheduled past the deadline never runs. Keeping the
// margin means hunted specs always audit what they schedule.
const healMarginSec = 4300

// Envelope bounds, chosen to keep one candidate's cost within a small
// multiple of the paper run: long enough for lease cycles, partitions
// and churn to interact, short enough that a 60s hunt tries dozens.
const (
	minDurationSec = 3600
	maxDurationSec = 16200 // 3× the paper's 5400s
	maxUsers       = 24
	maxCrowds      = 3
	maxPartitions  = 2
)

func cloneSpec(s *experiment.ScenarioSpec) *experiment.ScenarioSpec {
	c := *s
	if s.FailureWindow != nil {
		w := *s.FailureWindow
		c.FailureWindow = &w
	}
	c.Partitions = append([]experiment.SpecPartition(nil), s.Partitions...)
	c.FlashCrowds = append([]experiment.SpecFlashCrowd(nil), s.FlashCrowds...)
	return &c
}

// durationSec resolves the effective run length (0 means the paper's
// 5400s default).
func durationSec(s *experiment.ScenarioSpec) float64 {
	if s.DurationSec == 0 {
		return 5400
	}
	return s.DurationSec
}

// mutations is the fixed operator table. Each entry perturbs one
// dimension; repair() afterwards restores global feasibility.
var mutations = []func(*rand.Rand, *experiment.ScenarioSpec){
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // reseed the timeline
		s.Seed = r.Int63n(1 << 20)
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // interface-failure rate
		s.Lambda = float64(r.Intn(10)) * 0.1 * 0.9 // 0 … 0.81
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // run length
		s.DurationSec = float64(minDurationSec + r.Intn((maxDurationSec-minDurationSec)/600+1)*600)
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // add a partition
		if len(s.Partitions) >= maxPartitions {
			s.Partitions = s.Partitions[:len(s.Partitions)-1]
		}
		start := 200 + float64(r.Intn(40))*100
		s.Partitions = append(s.Partitions, experiment.SpecPartition{
			StartSec:    start,
			DurationSec: 200 + float64(r.Intn(30))*100,
		})
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // drop partitions
		s.Partitions = nil
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // churn on/off
		if r.Intn(3) == 0 {
			s.Churn = experiment.SpecChurn{}
			return
		}
		s.Churn = experiment.SpecChurn{
			Departures:     float64(1+r.Intn(6)) * 0.25,
			MeanAbsenceSec: float64(r.Intn(4)) * 300, // 0 = permanent departures
			Arrivals:       float64(r.Intn(5)),
		}
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // flash crowd
		if len(s.FlashCrowds) >= maxCrowds || r.Intn(4) == 0 {
			s.FlashCrowds = nil
			return
		}
		s.FlashCrowds = append(s.FlashCrowds, experiment.SpecFlashCrowd{
			AtSec:     100 + float64(r.Intn(30))*100,
			Users:     2 + r.Intn(10),
			WindowSec: float64(1 + r.Intn(30)),
		})
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // rack failures
		if r.Intn(4) == 0 {
			s.RackFailures = experiment.SpecRacks{}
			return
		}
		racks := 2 + r.Intn(4)
		s.RackFailures = experiment.SpecRacks{
			Racks:          racks,
			Fail:           1 + r.Intn(racks-1),
			WindowStartSec: 200 + float64(r.Intn(20))*100,
			WindowEndSec:   2500 + float64(r.Intn(10))*100,
			DurationSec:    60 + float64(r.Intn(10))*60,
			SpreadSec:      float64(r.Intn(10)),
		}
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // burst loss
		if r.Intn(4) == 0 {
			s.Link.BurstAvg, s.Link.BurstLen = 0, 0
			return
		}
		s.Link.Loss = 0
		s.Link.BurstAvg = float64(1+r.Intn(6)) * 0.05
		s.Link.BurstLen = float64(2 + r.Intn(12))
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // i.i.d. loss
		s.Link.BurstAvg, s.Link.BurstLen = 0, 0
		s.Link.Loss = float64(r.Intn(7)) * 0.05
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // delay + reorder
		s.Link.DelayDist = []string{"", "lognormal", "pareto"}[r.Intn(3)]
		s.Link.ReorderProb = float64(r.Intn(4)) * 0.1
		if s.Link.ReorderProb > 0 {
			s.Link.ReorderExtraSec = float64(1+r.Intn(5)) * 0.05
		} else {
			s.Link.ReorderExtraSec = 0
		}
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // population size
		s.Topology.Users = []int{0, 2, 8, 12, maxUsers}[r.Intn(5)]
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // service-change time
		s.ChangeMinSec = 100 + float64(r.Intn(10))*100
		s.ChangeMaxSec = s.ChangeMinSec + float64(1+r.Intn(10))*200
	},
	func(r *rand.Rand, s *experiment.ScenarioSpec) { // failure window incl. start 0
		end := durationSec(s)
		s.FailureWindow = &experiment.SpecWindow{
			StartSec: float64(r.Intn(3)) * 50, // 0, 50 or 100
			EndSec:   end * (0.5 + 0.5*float64(r.Intn(2))),
		}
	},
}

// mutate derives one child from a parent: 1-3 operators, then repair.
// The result always validates; repair guarantees it by construction,
// and the impossible fallback is the untouched parent.
func mutate(r *rand.Rand, parent *experiment.ScenarioSpec) *experiment.ScenarioSpec {
	s := cloneSpec(parent)
	for n := 1 + r.Intn(3); n > 0; n-- {
		mutations[r.Intn(len(mutations))](r, s)
	}
	repair(s)
	if s.Validate() != nil {
		return cloneSpec(parent)
	}
	return s
}

// repair restores the global feasibility the operators may have broken:
// partitions sorted, overlap-free, inside the run with the heal margin;
// the rack window inside the run; flash crowds before the deadline.
func repair(s *experiment.ScenarioSpec) {
	dur := durationSec(s)

	sort.Slice(s.Partitions, func(i, j int) bool {
		return s.Partitions[i].StartSec < s.Partitions[j].StartSec
	})
	kept := s.Partitions[:0]
	lastEnd := -1.0
	for _, p := range s.Partitions {
		if p.StartSec <= lastEnd || p.DurationSec <= 0 {
			continue // overlaps the previous one: drop
		}
		kept = append(kept, p)
		lastEnd = p.StartSec + p.DurationSec
	}
	s.Partitions = kept
	if len(s.Partitions) == 0 {
		s.Partitions = nil
	}
	// Every partition must heal healMarginSec before the deadline, or
	// its single-Central probe would be scheduled past the end of the
	// run. Extend the run rather than shrink the fault.
	if lastEnd > 0 && dur < lastEnd+healMarginSec {
		dur = lastEnd + healMarginSec
		if over := dur - float64(int(dur/100))*100; over > 0 {
			dur += 100 - over // round up to a readable boundary
		}
		s.DurationSec = dur
	}

	if r := &s.RackFailures; r.Racks > 0 {
		if r.WindowEndSec > dur {
			r.WindowEndSec = dur
		}
		if r.WindowStartSec >= r.WindowEndSec {
			r.WindowStartSec = 0
		}
	}
	kept2 := s.FlashCrowds[:0]
	for _, fc := range s.FlashCrowds {
		if fc.AtSec < dur && fc.Users > 0 {
			kept2 = append(kept2, fc)
		}
	}
	s.FlashCrowds = kept2
	if len(s.FlashCrowds) == 0 {
		s.FlashCrowds = nil
	}
	if w := s.FailureWindow; w != nil && w.EndSec > dur {
		w.EndSec = dur
	}
	if s.ChangeMaxSec > dur/2 {
		s.ChangeMinSec, s.ChangeMaxSec = 0, 0 // back to the paper's window
	}
}
