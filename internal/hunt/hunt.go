// Package hunt is the chaos hunter: a deterministic, coverage-guided
// fuzzer over declarative scenario specs, aimed at the run-time
// consistency oracle. It mutates ScenarioSpecs (topology, λ, churn,
// partitions, link conditioning, flash crowds, rack failures), runs
// each candidate through all audited systems, keeps the candidates
// that exhibit new behavior (see coverage.go) as a corpus, and
// delta-debugs any invariant violation down to a minimal, committable
// fixture (see minimize.go, fixture.go).
//
// Everything is deterministic in (Seed, Budget): the budget is a cost
// model over virtual node-seconds, not wall-clock, so the same hunt
// replays identically on any machine — slow hardware just takes
// longer to reach the same corpus and the same report.
package hunt

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/verify"
)

// CostPerWallSecond converts a wall-clock budget into cost units. One
// cost unit is one node·virtual-second on one system; the constant is
// calibrated on a race-built binary (the CI configuration, roughly 4×
// slower than a plain build), so `-budget 60s` means ≈ one race-built
// wall minute of hunting — while the resulting cost ceiling, and hence
// the hunt itself, is machine-independent.
const CostPerWallSecond = 6_000_000

// Config parameterizes one hunt.
type Config struct {
	// Seed drives the mutation chain and candidate selection.
	Seed int64
	// Budget bounds the search in cost units (see Cost); ≤ 0 means
	// unbounded — then Iters must bound the hunt.
	Budget int64
	// Iters caps the number of mutated candidates; ≤ 0 means no cap.
	Iters int
	// Systems to audit every candidate on; nil means all five.
	Systems []experiment.System
	// Harden audits every candidate with the full protocol-hardening
	// layer on, so the hunt searches for failures the layer does NOT
	// close. Findings, fixtures and corpus entries then carry
	// hardened: true and replay hardened.
	Harden bool
	// Corpus adds extra starting specs — typically a committed corpus
	// from an earlier hunt — after the built-in seeds, so a resumed
	// hunt starts from the frontier the last one reached.
	Corpus []*experiment.ScenarioSpec
	// Oracle overrides the per-system oracle tolerances; nil means
	// verify.DefaultOracleConfig. Tests plant violations by tightening
	// a tolerance to near zero.
	Oracle func(experiment.System) verify.OracleConfig
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// Finding is one invariant violation the hunt surfaced, with the spec
// that provoked it and its minimized form.
type Finding struct {
	System    experiment.System
	Invariant verify.Invariant
	// Count is the violation count of the original candidate.
	Count int
	// Spec is the candidate as found; Minimized is its delta-debugged
	// reduction (never nil after Run returns — at worst it equals Spec).
	Spec      *experiment.ScenarioSpec
	Minimized *experiment.ScenarioSpec
}

// Report is the machine-readable outcome of one hunt.
type Report struct {
	Seed         int64           `json:"seed"`
	Candidates   int             `json:"candidates"`
	Runs         int             `json:"runs"`
	MinimizeRuns int             `json:"minimize_runs"`
	CostSpent    int64           `json:"cost_spent"`
	CostBudget   int64           `json:"cost_budget,omitempty"`
	CorpusSize   int             `json:"corpus_size"`
	CoverageKeys int             `json:"coverage_keys"`
	Findings     []FindingReport `json:"findings"`
}

// FindingReport is the serializable summary of one Finding.
type FindingReport struct {
	System    string `json:"system"`
	Invariant string `json:"invariant"`
	Count     int    `json:"count"`
	Fixture   string `json:"fixture,omitempty"`
}

// Clean reports whether the hunt ended with zero violations.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Hunter runs one coverage-guided hunt. Not safe for concurrent use:
// determinism comes from a single sequential loop.
type Hunter struct {
	cfg     Config
	systems []experiment.System
	rng     *rand.Rand
	ws      *experiment.Workspace

	seen     map[string]bool
	corpus   []*experiment.ScenarioSpec
	findings []*Finding
	found    map[string]bool // sys/invariant pairs already recorded

	candidates, runs, minRuns int
	spent                     int64
}

// New builds a hunter; call Run once.
func New(cfg Config) *Hunter {
	systems := cfg.Systems
	if len(systems) == 0 {
		systems = experiment.Systems()
	}
	return &Hunter{
		cfg:     cfg,
		systems: systems,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		ws:      experiment.NewWorkspace(),
		seen:    map[string]bool{},
		found:   map[string]bool{},
	}
}

func (h *Hunter) logf(format string, args ...any) {
	if h.cfg.Log != nil {
		h.cfg.Log(format, args...)
	}
}

func (h *Hunter) oracleConfig(sys experiment.System) verify.OracleConfig {
	if h.cfg.Oracle != nil {
		return h.cfg.Oracle(sys)
	}
	return verify.DefaultOracleConfig(sys)
}

// Cost prices one candidate: virtual seconds × population × audited
// systems. It is the unit Budget is denominated in.
func Cost(s *experiment.ScenarioSpec, systems int) int64 {
	p := s.Params()
	nodes := p.Topology.Users
	if nodes <= 0 {
		nodes = p.Users
	}
	for _, fc := range p.FlashCrowds {
		nodes += fc.Users
	}
	nodes += 4 // Manager, Registries, Backup: the infrastructure floor
	return int64(sim.Time(p.RunDuration).Sec()) * int64(nodes) * int64(systems)
}

// seedCorpus is the hand-written starting population: one spec per
// fault family, so the first generation already spans the dimensions
// the mutators perturb.
func seedCorpus() []*experiment.ScenarioSpec {
	return []*experiment.ScenarioSpec{
		{Seed: 1}, // the paper's design, unperturbed
		{Seed: 2, DurationSec: 12000,
			Partitions: []experiment.SpecPartition{{StartSec: 3000, DurationSec: 2000}}},
		{Seed: 3, Churn: experiment.SpecChurn{Departures: 1, MeanAbsenceSec: 600, Arrivals: 2}},
		{Seed: 4, Link: experiment.SpecLink{BurstAvg: 0.15, BurstLen: 8, DelayDist: "pareto"}},
		{Seed: 5, FlashCrowds: []experiment.SpecFlashCrowd{{AtSec: 1500, Users: 10, WindowSec: 20}},
			RackFailures: experiment.SpecRacks{Racks: 3, Fail: 1, WindowStartSec: 500,
				WindowEndSec: 2500, DurationSec: 300, SpreadSec: 5}},
	}
}

// Run executes the hunt: seed corpus first, then mutate-and-audit until
// the budget or iteration cap is hit, then minimize every finding.
func (h *Hunter) Run() *Report {
	seeds := append(seedCorpus(), h.cfg.Corpus...)
	for _, s := range seeds {
		if !h.execute(s) {
			break
		}
	}
	for h.cfg.Iters <= 0 || h.candidates < len(seeds)+h.cfg.Iters {
		if (h.cfg.Budget <= 0 && h.cfg.Iters <= 0) || len(h.corpus) == 0 {
			break // unbounded hunt, or no corpus survived the budget
		}
		parent := h.corpus[h.rng.Intn(len(h.corpus))]
		if !h.execute(mutate(h.rng, parent)) {
			break
		}
	}
	for _, f := range h.findings {
		f.Minimized = h.minimize(f)
	}
	return h.report()
}

// execute audits one candidate on every system; false means the budget
// is exhausted and the search loop must stop.
func (h *Hunter) execute(spec *experiment.ScenarioSpec) bool {
	if h.cfg.Harden {
		// Stamped on the spec (not just the run options) so the flag
		// survives minimization and lands in written fixtures/corpus.
		spec.Hardened = true
	}
	cost := Cost(spec, len(h.systems))
	if h.cfg.Budget > 0 && h.spent+cost > h.cfg.Budget {
		return false
	}
	h.spent += cost
	h.candidates++
	fresh := 0
	for _, sys := range h.systems {
		st := h.runOne(spec, sys)
		h.runs++
		for _, key := range coverageKeys(sys, st) {
			if !h.seen[key] {
				h.seen[key] = true
				fresh++
			}
		}
		for inv, n := range st.Report.ByInvariant {
			if n > 0 {
				h.noteFinding(spec, sys, verify.Invariant(inv), n)
			}
		}
	}
	if fresh > 0 || len(h.corpus) == 0 {
		h.corpus = append(h.corpus, spec)
		h.logf("candidate %d: +%d coverage keys (corpus %d, cost %d/%d)",
			h.candidates, fresh, len(h.corpus), h.spent, h.cfg.Budget)
	}
	return true
}

// runOne audits one (spec, system) pair on the hunter's workspace and
// reads the observations out immediately — the scenario borrows
// workspace storage that the next run recycles.
func (h *Hunter) runOne(spec *experiment.ScenarioSpec, sys experiment.System) runStats {
	rs := spec.RunSpec(sys)
	cfg := h.oracleConfig(sys)
	cfg.Partitions = rs.Params.Partitions
	var o *verify.Oracle
	var sc *experiment.Scenario
	rs.Attach = func(s *experiment.Scenario) {
		sc = s
		o = verify.AttachOracle(s, cfg)
	}
	res := experiment.RunInto(h.ws, rs)
	ctr := sc.Net.Counters()
	st := runStats{
		Report:  o.Report(),
		PerKind: make(map[string]int, len(ctr.PerKind)),
		Drops:   ctr.Drops,
		Effort:  res.Effort,
	}
	for k, v := range ctr.PerKind {
		st.PerKind[k] = v
	}
	for _, u := range res.Users {
		if !u.Reached {
			st.Unreached++
		}
	}
	return st
}

// noteFinding records the first witness per (system, invariant) pair;
// later witnesses only feed coverage.
func (h *Hunter) noteFinding(spec *experiment.ScenarioSpec, sys experiment.System, inv verify.Invariant, n int) {
	key := sys.Short() + "/" + inv.String()
	if h.found[key] {
		return
	}
	h.found[key] = true
	h.findings = append(h.findings, &Finding{System: sys, Invariant: inv, Count: n, Spec: spec})
	h.logf("VIOLATION %s ×%d on %s (candidate %d)", inv, n, sys.Short(), h.candidates)
}

func (h *Hunter) report() *Report {
	rep := &Report{
		Seed:         h.cfg.Seed,
		Candidates:   h.candidates,
		Runs:         h.runs,
		MinimizeRuns: h.minRuns,
		CostSpent:    h.spent,
		CostBudget:   h.cfg.Budget,
		CorpusSize:   len(h.corpus),
		CoverageKeys: len(h.seen),
		Findings:     []FindingReport{},
	}
	for _, f := range h.findings {
		rep.Findings = append(rep.Findings, FindingReport{
			System:    f.System.Short(),
			Invariant: f.Invariant.String(),
			Count:     f.Count,
		})
	}
	return rep
}

// Findings returns the hunt's violations with their minimized specs,
// in discovery order. Valid after Run.
func (h *Hunter) Findings() []*Finding { return h.findings }

// Corpus returns the coverage-increasing specs, in discovery order.
func (h *Hunter) Corpus() []*experiment.ScenarioSpec { return h.corpus }

// CoverageKeys returns the sorted coverage keys the hunt reached —
// the behavioral fingerprint two equal-seed hunts must agree on.
func (h *Hunter) CoverageKeys() []string {
	keys := make([]string, 0, len(h.seen))
	for k := range h.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Fixtures renders every finding as a committable fixture.
func (h *Hunter) Fixtures() []*Fixture {
	var out []*Fixture
	for _, f := range h.findings {
		out = append(out, &Fixture{
			Comment: fmt.Sprintf("hunted: %s on %s (seed %d); replays by seed alone",
				f.Invariant, f.System.Short(), f.Minimized.Seed),
			System:   f.System.Short(),
			Scenario: *f.Minimized,
			Expect:   Expect{Invariant: f.Invariant.String(), MinCount: 1},
		})
	}
	return out
}
