package hunt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/verify"
)

// A fixture is a hunted scenario frozen into the repository: the
// minimized spec, the system it runs on, and what replaying it must
// observe. Replay needs nothing but the file — the spec carries its
// seed, so the violation (or the documented clean outcome) reproduces
// bit-for-bit under the default oracle tolerances.

// Expect states the replay obligation. Exactly one form is valid:
// Clean (a regression fixture pinning a hostile-but-correct scenario),
// or Invariant with a minimum violation count.
type Expect struct {
	Clean     bool   `json:"clean,omitempty"`
	Invariant string `json:"invariant,omitempty"`
	MinCount  int    `json:"min_count,omitempty"`
}

// Fixture is the committable unit under internal/hunt/testdata.
type Fixture struct {
	Comment  string                  `json:"comment,omitempty"`
	System   string                  `json:"system"`
	Scenario experiment.ScenarioSpec `json:"scenario"`
	Expect   Expect                  `json:"expect"`
}

// Validate checks the envelope; the embedded scenario validates with
// the spec codec's own rules.
func (f *Fixture) Validate() error {
	if _, err := experiment.ParseSystem(f.System); err != nil {
		return fmt.Errorf("fixture: %w", err)
	}
	if f.Expect.Clean == (f.Expect.Invariant != "") {
		return fmt.Errorf("fixture: expect must set exactly one of clean or invariant")
	}
	if f.Expect.Invariant != "" {
		if _, ok := parseInvariant(f.Expect.Invariant); !ok {
			return fmt.Errorf("fixture: unknown invariant %q", f.Expect.Invariant)
		}
	}
	if f.Expect.MinCount < 0 {
		return fmt.Errorf("fixture: expect.min_count must not be negative")
	}
	return f.Scenario.Validate()
}

func parseInvariant(name string) (verify.Invariant, bool) {
	for inv := verify.Invariant(0); inv.String() != "?"; inv++ {
		if inv.String() == name {
			return inv, true
		}
	}
	return 0, false
}

// Encode renders the fixture as committable indented JSON.
func (f *Fixture) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// LoadFixture reads one fixture strictly: unknown fields anywhere in
// the file — envelope or embedded scenario — are errors.
func LoadFixture(path string) (*Fixture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f Fixture
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Replay runs the fixture under the default oracle tolerances and
// checks its expectation. The report is returned either way, so a
// failing replay can be diagnosed from the violations it did produce.
func Replay(f *Fixture) (verify.OracleReport, error) {
	rep, _, err := replay(f, 0)
	return rep, err
}

// ReplayTraced is Replay with flight recorders riding along: one
// ring of ringSize recent trace events per shard (one total on an
// unsharded fixture), frozen at the oracle's first violation so the
// rings hold the lead-up, not the aftermath. sdverify dumps the
// returned snapshots when a fixture replays dirty. ringSize ≤ 0 means
// obs.DefaultFlightSize.
func ReplayTraced(f *Fixture, ringSize int) (verify.OracleReport, []obs.FlightSnapshot, error) {
	if ringSize <= 0 {
		ringSize = obs.DefaultFlightSize
	}
	return replay(f, ringSize)
}

func replay(f *Fixture, ringSize int) (verify.OracleReport, []obs.FlightSnapshot, error) {
	sys, err := experiment.ParseSystem(f.System)
	if err != nil {
		return verify.OracleReport{}, nil, err
	}
	spec := f.Scenario.RunSpec(sys)
	cfg := verify.DefaultOracleConfig(sys)
	var recorders []*obs.FlightRecorder
	if ringSize > 0 {
		// MakeTracer runs once per shard's network (and exactly once on an
		// unsharded run), so the recorder list matches the fabric shape.
		// Freeze is an atomic flag flip, safe from whichever shard's worker
		// goroutine detects the violation; the rings are read only after
		// the run joins every worker.
		spec.MakeTracer = func(nw *netsim.Network) netsim.Tracer {
			fr := obs.NewFlightRecorder(len(recorders), ringSize)
			recorders = append(recorders, fr)
			return fr
		}
		cfg.OnViolation = func(v verify.OracleViolation) {
			for _, fr := range recorders {
				fr.Freeze(v.String())
			}
		}
	}
	rep, _ := verify.ObserveRun(spec, cfg)
	var snaps []obs.FlightSnapshot
	for _, fr := range recorders {
		snaps = append(snaps, fr.Snapshot())
	}
	if err := checkExpect(f, rep); err != nil {
		return rep, snaps, err
	}
	return rep, snaps, nil
}

func checkExpect(f *Fixture, rep verify.OracleReport) error {
	if f.Expect.Clean {
		if rep.Total != 0 {
			return fmt.Errorf("fixture expects a clean run, got %s", rep)
		}
		return nil
	}
	inv, _ := parseInvariant(f.Expect.Invariant)
	min := f.Expect.MinCount
	if min == 0 {
		min = 1
	}
	if got := rep.ByInvariant[inv]; got < min {
		return fmt.Errorf("fixture expects ≥%d %s violations, got %d (%s)",
			min, f.Expect.Invariant, got, rep)
	}
	return nil
}
