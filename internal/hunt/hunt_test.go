package hunt

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/verify"
)

func TestLogBucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1000: 10}
	for n, want := range cases {
		if got := logBucket(n); got != want {
			t.Errorf("logBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCostModel(t *testing.T) {
	zero := &experiment.ScenarioSpec{}
	// Paper default: 5400s × (5 users + 4 infra) × 5 systems.
	if got := Cost(zero, 5); got != 5400*9*5 {
		t.Errorf("zero-spec cost = %d, want %d", got, 5400*9*5)
	}
	crowd := &experiment.ScenarioSpec{
		DurationSec: 7200,
		Topology:    experiment.SpecTopology{Users: 10},
		FlashCrowds: []experiment.SpecFlashCrowd{{AtSec: 100, Users: 6}},
	}
	if got := Cost(crowd, 1); got != 7200*20 {
		t.Errorf("crowd cost = %d, want %d", got, 7200*20)
	}
}

// Every mutation chain must land inside the valid envelope, and any
// partition must leave the heal margin before the deadline.
func TestMutateStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := &experiment.ScenarioSpec{Seed: 1}
	for i := 0; i < 300; i++ {
		s = mutate(rng, s)
		if err := s.Validate(); err != nil {
			t.Fatalf("mutation %d produced invalid spec: %v\n%+v", i, err, s)
		}
		for _, p := range s.Partitions {
			if end := p.StartSec + p.DurationSec; end+healMarginSec > durationSec(s) {
				t.Fatalf("mutation %d: partition heals at %v, run ends %v: probe would never fire",
					i, end, durationSec(s))
			}
		}
	}
}

// The acceptance bar: two hunts with the same seed and budget produce
// the identical corpus, coverage fingerprint and report.
func TestHuntDeterministic(t *testing.T) {
	cfg := Config{
		Seed:    1,
		Budget:  500_000, // ≈ 10 single-system candidates
		Systems: []experiment.System{experiment.UPnP},
	}
	a, b := New(cfg), New(cfg)
	ra, rb := a.Run(), b.Run()
	ja, _ := json.Marshal(ra)
	jb, _ := json.Marshal(rb)
	if string(ja) != string(jb) {
		t.Errorf("reports diverge:\n%s\n%s", ja, jb)
	}
	if !reflect.DeepEqual(a.CoverageKeys(), b.CoverageKeys()) {
		t.Error("coverage fingerprints diverge")
	}
	if len(a.Corpus()) != len(b.Corpus()) {
		t.Fatalf("corpus sizes diverge: %d vs %d", len(a.Corpus()), len(b.Corpus()))
	}
	for i := range a.Corpus() {
		if !reflect.DeepEqual(a.Corpus()[i], b.Corpus()[i]) {
			t.Errorf("corpus entry %d diverges", i)
		}
	}
	if ra.Candidates < len(seedCorpus())+1 {
		t.Errorf("budget admitted only %d candidates; the hunt never mutated", ra.Candidates)
	}
	if ra.CostSpent > ra.CostBudget {
		t.Errorf("overspent: %d > %d", ra.CostSpent, ra.CostBudget)
	}
	if ra.CoverageKeys == 0 || ra.CorpusSize == 0 {
		t.Errorf("empty coverage after a real hunt: %+v", ra)
	}
}

// tightCentral plants a guaranteed violation: a CentralWindow of one
// tick means no Registry claim is ever "live" at the heal probe, so any
// partitioned FRODO run trips single-central. The hunt must find it,
// minimize it, and the minimized spec must keep the partition (dropping
// it would drop the probe and lose the violation).
func tightCentral(sys experiment.System) verify.OracleConfig {
	cfg := verify.DefaultOracleConfig(sys)
	cfg.CentralWindow = sim.Duration(1)
	return cfg
}

func TestHuntFindsAndMinimizesPlantedViolation(t *testing.T) {
	h := New(Config{
		Seed:    1,
		Iters:   2,
		Systems: []experiment.System{experiment.Frodo2P},
		Oracle:  tightCentral,
	})
	rep := h.Run()
	if rep.Clean() {
		t.Fatal("hunt missed the planted single-central violation")
	}
	var f *Finding
	for _, cand := range h.Findings() {
		if cand.Invariant == verify.InvSingleCentral {
			f = cand
		}
	}
	if f == nil {
		t.Fatalf("no single-central finding: %+v", rep.Findings)
	}
	min := f.Minimized
	if min == nil {
		t.Fatal("finding not minimized")
	}
	if len(min.Partitions) == 0 {
		t.Errorf("minimizer dropped the partition the violation needs: %+v", min)
	}
	if min.Churn != (experiment.SpecChurn{}) || min.Link != (experiment.SpecLink{}) ||
		min.Lambda != 0 || len(min.FlashCrowds) != 0 {
		t.Errorf("minimizer kept irrelevant fault dimensions: %+v", min)
	}
	// Seed-determinism of the reduction: rerunning the minimized spec
	// reproduces the same invariant violation by seed alone.
	st := h.runOne(min, f.System)
	if st.Report.ByInvariant[verify.InvSingleCentral] == 0 {
		t.Errorf("minimized spec does not replay its violation: %s", st.Report)
	}

	fixtures := h.Fixtures()
	if len(fixtures) != len(h.Findings()) {
		t.Fatalf("%d fixtures for %d findings", len(fixtures), len(h.Findings()))
	}
	fx := fixtures[0]
	if err := fx.Validate(); err != nil {
		t.Errorf("generated fixture invalid: %v", err)
	}
	data, err := fx.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Error("fixture encoding not newline-terminated")
	}
}

// A hunt whose budget cannot even cover the seed corpus stops cleanly.
func TestHuntTinyBudget(t *testing.T) {
	h := New(Config{Seed: 1, Budget: 1, Systems: []experiment.System{experiment.UPnP}})
	rep := h.Run()
	if rep.Candidates != 0 || rep.CostSpent != 0 {
		t.Errorf("tiny budget still ran candidates: %+v", rep)
	}
}

// Config.Corpus resumes a hunt from extra seed specs; Config.Harden
// stamps every candidate — and so every corpus entry and fixture — as
// hardened, so a hardened hunt's outputs replay hardened.
func TestHuntCorpusAndHarden(t *testing.T) {
	extra := &experiment.ScenarioSpec{Seed: 42, DurationSec: 6000,
		Churn: experiment.SpecChurn{Departures: 1}}
	cfg := Config{
		Seed:    1,
		Iters:   2,
		Harden:  true,
		Corpus:  []*experiment.ScenarioSpec{extra},
		Systems: []experiment.System{experiment.UPnP},
	}
	h := New(cfg)
	rep := h.Run()
	wantCand := len(seedCorpus()) + 1 + cfg.Iters
	if rep.Candidates != wantCand {
		t.Errorf("candidates = %d, want %d (builtin seeds + 1 resumed + %d mutated)",
			rep.Candidates, wantCand, cfg.Iters)
	}
	if len(h.Corpus()) == 0 {
		t.Fatal("hunt kept no corpus")
	}
	for i, s := range h.Corpus() {
		if !s.Hardened {
			t.Errorf("corpus[%d] not stamped hardened", i)
		}
	}
	for _, fx := range h.Fixtures() {
		if !fx.Scenario.Hardened {
			t.Errorf("fixture for %s/%s not stamped hardened", fx.System, fx.Expect.Invariant)
		}
	}
}
