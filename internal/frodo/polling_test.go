package frodo

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// CM2 in FRODO: the User's persistent Get requests retrieve the current
// description from its lessee. With SRN2 ablated, polling is the only
// repair for a missed update under a surviving subscription — and it
// works in both subscription modes.
func TestPollingRepairsWithoutSRN2(t *testing.T) {
	for _, twoParty := range []bool{false, true} {
		cfg := DefaultConfig()
		if twoParty {
			cfg = TwoPartyConfig()
		}
		cfg.PollPeriod = 600 * sim.Second
		cfg.Techniques = cfg.Techniques.Without(core.SRN2)
		r := newRig(t, 53, twoParty, 1, cfg)
		u := r.users[0]
		r.nw.ScheduleFailure(netsim.InterfaceFailure{
			Node: u.ID(), Mode: netsim.FailBoth,
			Start: 2023 * sim.Second, Duration: 810 * sim.Second,
		})
		r.k.At(2507*sim.Second, r.change)
		r.k.Run(5400 * sim.Second)
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("twoParty=%v: polling did not repair the missed update", twoParty)
		}
		if at > 2833*sim.Second+650*sim.Second {
			t.Errorf("twoParty=%v: repaired at %v, want within one poll period of 2833s", twoParty, at)
		}
	}
}

// Polling traffic counts toward the update effort: a polling FRODO user
// burns Get/GetReply pairs even when nothing changes — the redundancy
// §4.2 warns about.
func TestPollingTrafficIsCounted(t *testing.T) {
	cfg := TwoPartyConfig()
	cfg.PollPeriod = 600 * sim.Second
	r := newRig(t, 54, true, 1, cfg)
	r.k.Run(5400 * sim.Second)
	gets := r.nw.Counters().PerKind["Get"]
	if gets < 7 {
		t.Errorf("only %d Gets over 5400s at 600s poll period", gets)
	}
	replies := r.nw.Counters().PerKind["GetReply"]
	if replies < 7 {
		t.Errorf("only %d GetReplies", replies)
	}
}
