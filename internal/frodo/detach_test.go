package frodo

import (
	"testing"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// A device that departs permanently before its boot delay elapses must
// stay quiet: the pending boot event fires into a detached node and
// must not start the elector, announcements or search — those sends
// would otherwise run for the rest of the simulation and, once the
// retired slot is recycled, transmit under the new tenant's identity.
func TestDetachBeforeBootStaysQuiet(t *testing.T) {
	k := sim.New(1)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	n := nw.AddNode("u")
	nd := NewNode(n, TwoPartyConfig(), Class300D, 1)
	nd.AttachUser(discovery.Query{ServiceType: "X"}, nil)
	nd.Start(5 * sim.Second)
	k.At(1*sim.Second, func() {
		if !nd.Detach() {
			t.Error("Detach refused on an idle pre-boot node")
		}
		nw.Retire(n.ID)
	})
	k.Run(10 * sim.Minute)
	if c := nw.Counters(); c.Sends != 0 {
		t.Errorf("detached node transmitted %d frames", c.Sends)
	}
}

// Detach must refuse while the node serves as Central: its repository
// and subscribers depend on it, so churn keeps the slot alive instead.
func TestDetachRefusedForCentral(t *testing.T) {
	k := sim.New(1)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	n := nw.AddNode("c")
	nd := NewNode(n, TwoPartyConfig(), Class300D, 9)
	nd.Start(0)
	k.Run(2 * sim.Minute) // alone on the LAN: wins the election
	if !nd.IsCentral() {
		t.Skip("node did not become Central; election config changed")
	}
	if nd.Detach() {
		t.Error("Detach succeeded on the sitting Central")
	}
}
