package frodo

import (
	"testing"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// propRig wires a propagator from node 0 towards nodes 1..n with
// recording endpoints.
type propRig struct {
	k         *sim.Kernel
	nw        *netsim.Network
	prop      *propagator
	delivered map[netsim.NodeID]int
	exhausted []netsim.NodeID
}

func newPropRig(t *testing.T, n int, policy core.RetryPolicy) *propRig {
	t.Helper()
	r := &propRig{k: sim.New(1), delivered: map[netsim.NodeID]int{}}
	r.nw = netsim.MustNew(r.k, netsim.DefaultConfig())
	r.nw.AddNode("sender")
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i + 1)
		node := r.nw.AddNode("user")
		node.SetEndpoint(netsim.EndpointFunc(func(m *netsim.Message) {
			if _, ok := m.Payload.(discovery.Update); ok {
				r.delivered[id]++
			}
		}))
	}
	r.prop = newPropagator(r.k, r.nw, 0, policy,
		func(user netsim.NodeID, _ discovery.ServiceRecord) {
			r.exhausted = append(r.exhausted, user)
		})
	return r
}

func propRec(v uint64) discovery.ServiceRecord {
	return discovery.ServiceRecord{Manager: 0, SD: discovery.ServiceDescription{
		DeviceType: "d", ServiceType: "s", Attributes: map[string]string{}, Version: v}.Freeze()}
}

func TestPropagatorDeliversAndStopsOnAck(t *testing.T) {
	r := newPropRig(t, 1, core.RetryPolicy{Interval: 10 * sim.Second, Limit: 3})
	r.prop.Notify(1, propRec(2), 2)
	// Ack after the first transmission.
	r.k.After(sim.Second, func() { r.prop.Ack(1, 2) })
	r.k.Run(100 * sim.Second)
	if r.delivered[1] != 1 {
		t.Errorf("delivered %d copies, want 1 (ack stopped retries)", r.delivered[1])
	}
	if len(r.exhausted) != 0 {
		t.Errorf("exhausted = %v, want none", r.exhausted)
	}
	if r.prop.Outstanding() != 0 {
		t.Error("notification still outstanding after ack")
	}
}

func TestPropagatorRetriesAndExhausts(t *testing.T) {
	r := newPropRig(t, 1, core.RetryPolicy{Interval: 10 * sim.Second, Limit: 3})
	r.nw.Node(1).SetRx(false) // user unreachable
	r.prop.Notify(1, propRec(2), 2)
	r.k.Run(100 * sim.Second)
	if r.delivered[1] != 0 {
		t.Errorf("delivered %d, want 0", r.delivered[1])
	}
	if len(r.exhausted) != 1 || r.exhausted[0] != 1 {
		t.Errorf("exhausted = %v, want [1]", r.exhausted)
	}
}

func TestPropagatorSupersededNotification(t *testing.T) {
	// "the service changes again, requiring the Manager to reset the
	// notification process": the v2 schedule stops when v3 is notified.
	r := newPropRig(t, 1, core.RetryPolicy{Interval: 10 * sim.Second, Limit: 10})
	r.nw.Node(1).SetRx(false)
	r.prop.Notify(1, propRec(2), 2)
	r.k.After(15*sim.Second, func() { r.prop.Notify(1, propRec(3), 3) })
	r.k.After(25*sim.Second, func() { r.nw.Node(1).SetRx(true) })
	r.k.Run(200 * sim.Second)
	// Only v3 copies arrive after recovery; an ack for v3 clears it.
	if r.delivered[1] == 0 {
		t.Fatal("superseding notification never delivered")
	}
	r.prop.Ack(1, 3)
	if r.prop.Outstanding() != 0 {
		t.Error("outstanding after ack of the superseding version")
	}
}

func TestPropagatorStaleAckIgnored(t *testing.T) {
	r := newPropRig(t, 1, core.RetryPolicy{Interval: 10 * sim.Second, Limit: 5})
	r.nw.Node(1).SetRx(false)
	r.prop.Notify(1, propRec(3), 3)
	r.prop.Ack(1, 2) // ack for an older version must not stop v3
	if r.prop.Outstanding() != 1 {
		t.Error("stale ack cleared the outstanding notification")
	}
}

func TestPropagatorCancelAll(t *testing.T) {
	r := newPropRig(t, 3, core.RetryPolicy{Interval: 10 * sim.Second, Limit: 0})
	for i := 1; i <= 3; i++ {
		r.nw.Node(netsim.NodeID(i)).SetRx(false)
		r.prop.Notify(netsim.NodeID(i), propRec(2), 2)
	}
	if r.prop.Outstanding() != 3 {
		t.Fatalf("outstanding = %d", r.prop.Outstanding())
	}
	r.prop.CancelAll()
	if r.prop.Outstanding() != 0 {
		t.Error("CancelAll left notifications outstanding")
	}
	// No further transmissions after cancel.
	before := r.nw.Counters().Sends
	r.k.Run(100 * sim.Second)
	if r.nw.Counters().Sends != before {
		t.Error("canceled schedules kept transmitting")
	}
}

func TestPropagatorRecordIsolation(t *testing.T) {
	// The record the propagator transmits is an immutable snapshot: a
	// later service change builds a NEW snapshot (Mutate), so nothing the
	// caller does afterwards can leak into retransmissions of the old one.
	r := newPropRig(t, 1, core.RetryPolicy{Interval: 5 * sim.Second, Limit: 3})
	var got discovery.ServiceRecord
	r.nw.Node(1).SetEndpoint(netsim.EndpointFunc(func(m *netsim.Message) {
		got = m.Payload.(discovery.Update).Rec
	}))
	rec := propRec(2)
	r.prop.Notify(1, rec, 2)
	// The caller moves on to the next version; the outstanding v2
	// notification must keep transmitting the v2 snapshot.
	_ = rec.SD.Mutate(func(attrs map[string]string) { attrs["mutated"] = "yes" })
	r.k.Run(10 * sim.Second)
	if got.SD.Attr("mutated") != "" {
		t.Error("propagator transmitted a snapshot the caller superseded")
	}
	if got.SD != rec.SD {
		t.Error("propagator should share the notified snapshot pointer")
	}
}
