package frodo

import (
	"testing"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// electionRig builds n bare 300D nodes with the given powers, all booting
// within the first second.
type electionRig struct {
	k     *sim.Kernel
	nw    *netsim.Network
	nodes []*Node
}

func newElectionRig(seed int64, powers ...int) *electionRig {
	r := &electionRig{k: sim.New(seed)}
	r.nw = netsim.MustNew(r.k, netsim.DefaultConfig())
	cfg := TwoPartyConfig()
	for _, p := range powers {
		nd := NewNode(r.nw.AddNode(""), cfg, Class300D, p)
		r.nodes = append(r.nodes, nd)
	}
	for i, nd := range r.nodes {
		nd.Start(sim.Duration(i) * 100 * sim.Millisecond)
	}
	return r
}

func (r *electionRig) centrals() []*Node {
	var out []*Node
	for _, nd := range r.nodes {
		if nd.IsCentral() {
			out = append(out, nd)
		}
	}
	return out
}

func TestElectionConvergesToSingleCentral(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		r := newElectionRig(seed, 10, 40, 30, 20)
		r.k.Run(60 * sim.Second)
		cs := r.centrals()
		if len(cs) != 1 {
			t.Fatalf("seed %d: %d centrals", seed, len(cs))
		}
		if cs[0] != r.nodes[1] {
			t.Errorf("seed %d: node with power %d won, want the power-40 node", seed, 40)
		}
		for _, nd := range r.nodes {
			if nd.Central() != cs[0].ID() {
				t.Errorf("seed %d: node %v follows %d", seed, nd, nd.Central())
			}
		}
	}
}

func TestElectionTieBrokenByNodeID(t *testing.T) {
	r := newElectionRig(3, 50, 50, 50)
	r.k.Run(60 * sim.Second)
	cs := r.centrals()
	if len(cs) != 1 {
		t.Fatalf("%d centrals after tie", len(cs))
	}
	// Highest node ID wins ties.
	if cs[0] != r.nodes[2] {
		t.Errorf("node %d won the tie, want node 2", cs[0].ID())
	}
}

func TestElectionRestartsWhenWinnerDiesMidElection(t *testing.T) {
	r := newElectionRig(4, 10, 90)
	// The would-be winner (power 90) loses both interfaces right after
	// boot, before it can claim the role.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.nodes[1].ID(), Mode: netsim.FailBoth,
		Start: 200 * sim.Millisecond, Duration: 5000 * sim.Second,
	})
	r.k.Run(120 * sim.Second)
	if !r.nodes[0].IsCentral() {
		t.Error("surviving node did not take the role after the expected winner vanished")
	}
}

func TestLateJoinerAdoptsSittingCentral(t *testing.T) {
	r := newElectionRig(5, 30, 20)
	r.k.Run(60 * sim.Second)
	// A more powerful node joins later: the sitting Central asserts
	// itself in response to the candidacy; the newcomer adopts rather
	// than usurps (stability over strict power order once elected).
	late := NewNode(r.nw.AddNode(""), TwoPartyConfig(), Class300D, 99)
	r.nodes = append(r.nodes, late)
	late.Start(0)
	r.k.Run(180 * sim.Second)
	if len(r.centrals()) != 1 {
		t.Fatalf("%d centrals after late join", len(r.centrals()))
	}
	if late.IsCentral() {
		t.Error("late joiner usurped a healthy Central")
	}
	if late.Central() != r.nodes[0].ID() {
		t.Errorf("late joiner follows %d, want %d", late.Central(), r.nodes[0].ID())
	}
}

func TestBackupAppointmentAndStateSync(t *testing.T) {
	r := newElectionRig(6, 80, 60, 10)
	// Give the future Central a registration to sync.
	mgr := NewNode(r.nw.AddNode(""), TwoPartyConfig(), Class3D, 1)
	mgrRole := mgr.AttachManager(discovery.ServiceDescription{
		DeviceType: "Printer", ServiceType: "ColorPrinter",
		Attributes: map[string]string{"a": "b"},
	})
	mgr.Start(500 * sim.Millisecond)
	r.k.Run(120 * sim.Second)

	if !r.nodes[0].IsCentral() {
		t.Fatal("power-80 node not central")
	}
	if !r.nodes[1].IsBackup() {
		t.Fatal("power-60 node not the backup")
	}
	if r.nodes[2].IsBackup() {
		t.Error("power-10 node should not be backup")
	}
	if !mgrRole.Registered() {
		t.Fatal("manager not registered")
	}
	// The backup holds the synced registration and serves it after
	// takeover.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.nodes[0].ID(), Mode: netsim.FailBoth,
		Start: 150 * sim.Second, Duration: 5000 * sim.Second,
	})
	r.k.Run(3500 * sim.Second)
	if !r.nodes[1].IsCentral() {
		t.Fatal("backup did not take over")
	}
	if got := r.nodes[1].Registry().Registrations(); got != 1 {
		t.Errorf("backup serves %d registrations after takeover, want the synced 1", got)
	}
}

func TestDemotedCentralStopsAnnouncing(t *testing.T) {
	r := newElectionRig(7, 80, 60)
	r.k.Run(60 * sim.Second)
	central, backup := r.nodes[0], r.nodes[1]
	if !central.IsCentral() || !backup.IsBackup() {
		t.Fatal("roles not established")
	}
	// Fail the central long enough for takeover, then revive it; after
	// reconciliation exactly one announcer must be active.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: central.ID(), Mode: netsim.FailBoth,
		Start: 100 * sim.Second, Duration: 3500 * sim.Second, // up at 3600
	})
	r.k.Run(3500 * sim.Second)
	if !backup.IsCentral() {
		t.Fatal("no takeover")
	}
	r.k.Run(8000 * sim.Second)
	if !central.IsCentral() || backup.IsCentral() {
		t.Fatalf("split brain after recovery: central=%v backup=%v",
			central.IsCentral(), backup.IsCentral())
	}
	if backup.Registry().announcer.Running() {
		t.Error("demoted node still announcing as Central")
	}
}

func Test3CManagerRegistersButCannotBeUser(t *testing.T) {
	r := newElectionRig(8, 80)
	sensor := NewNode(r.nw.AddNode("Sensor"), DefaultConfig(), Class3C, 0)
	role := sensor.AttachManager(discovery.ServiceDescription{
		DeviceType: "Sensor", ServiceType: "Temperature",
		Attributes: map[string]string{},
	})
	sensor.Start(500 * sim.Millisecond)
	r.k.Run(120 * sim.Second)
	if !role.Registered() {
		t.Error("3C manager failed to register")
	}
	if role.SD().Attr(ClassAttr) != "3C" {
		t.Errorf("class attribute = %q", role.SD().Attr(ClassAttr))
	}
	if role.TwoParty() {
		t.Error("3C manager must use 3-party subscription")
	}
}
