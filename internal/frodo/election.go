package frodo

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// elector runs the Central election among 300D nodes: every candidate
// multicasts its power, collects competing candidacies for the election
// window, and the most powerful node (ties broken by highest ID) declares
// itself Central. "The 300D nodes elect the most powerful node as the
// Registry" (§3).
type elector struct {
	nd *Node

	running bool
	bestID  netsim.NodeID
	bestPow int
	window  *sim.Deadline
	waitWin *sim.Deadline

	// backoff (CentralRepair only) paces repeated elections that keep
	// finding no reachable Central: a fixed retry keeps the whole cohort
	// hammering in lockstep through a long outage, while decorrelated
	// jitter spreads the candidacies and caps the re-arm gap.
	backoff *core.Backoff
}

func newElector(nd *Node) *elector {
	e := &elector{nd: nd}
	e.window = sim.NewDeadline(nd.k, e.decide)
	e.waitWin = sim.NewDeadline(nd.k, e.waitExpired)
	if nd.cfg.Harden.CentralRepair {
		e.backoff = core.NewBackoff(nd.k, nd.cfg.ElectionRetry, 8*nd.cfg.ElectionRetry)
	}
	return e
}

// start begins an election at boot.
func (e *elector) start() { e.startElection() }

// centralLost restarts the election when the Central was purged. The
// Backup does not run elections — it takes over on its own shorter
// timeout — but a Backup whose takeover state was lost participates like
// everyone else.
func (e *elector) centralLost() {
	if e.nd.IsBackup() {
		return
	}
	e.startElection()
}

// centralKnown stops any election in progress: somebody claimed the role.
func (e *elector) centralKnown() {
	e.running = false
	e.window.Clear()
	e.waitWin.Clear()
	if e.backoff != nil {
		e.backoff.Reset()
	}
}

// stop disarms the elector for good (node retirement). The jittered
// candidacy event may still fire but checks running and does nothing.
func (e *elector) stop() { e.centralKnown() }

// rearm resets the elector for workspace reuse after a Kernel.Reset.
func (e *elector) rearm() {
	e.running = false
	e.bestID = netsim.NoNode
	e.bestPow = 0
	e.window.Rearm()
	e.waitWin.Rearm()
	if e.backoff != nil {
		e.backoff.Reset()
	}
}

func (e *elector) startElection() {
	if e.running || e.nd.IsCentral() || e.nd.central != netsim.NoNode {
		return
	}
	e.running = true
	e.bestID = e.nd.n.ID
	e.bestPow = e.nd.power
	// Small jitter decorrelates candidacies of simultaneously booting
	// nodes.
	e.nd.k.AfterArg(e.nd.k.UniformDuration(0, sim.Second), electorAnnounce, e)
	e.window.SetAfter(e.nd.cfg.ElectionWindow)
}

// electorAnnounce is the static kernel callback for the jittered
// candidacy transmission.
func electorAnnounce(x any) { x.(*elector).announceCandidacy() }

func (e *elector) announceCandidacy() {
	if !e.running {
		return
	}
	e.nd.nw.Multicast(e.nd.n.ID, DiscoveryGroup, netsim.Outgoing{
		Kind:    kindOf(ElectionAnnounce{}),
		Counted: true,
		Payload: ElectionAnnounce{Power: e.nd.power},
	}, 1)
}

// onCandidate processes a competing candidacy. A sitting Central asserts
// itself by announcing immediately, so late candidates adopt it instead
// of electing a rival.
func (e *elector) onCandidate(from netsim.NodeID, power int) {
	e.nd.known300D[from] = power
	if e.nd.IsCentral() {
		e.nd.registry.announcer.AnnounceNow()
		return
	}
	if !e.running {
		return
	}
	if power > e.bestPow || (power == e.bestPow && from > e.bestID) {
		e.bestID = from
		e.bestPow = power
	}
}

// decide closes the election window: the best candidate becomes Central;
// everyone else waits for the winner's announcement and re-runs the
// election if it never comes (the winner may have failed mid-election).
func (e *elector) decide() {
	if !e.running {
		return
	}
	e.running = false
	if e.bestID == e.nd.n.ID {
		e.nd.registry.activate()
		return
	}
	wait := e.nd.cfg.ElectionRetry
	if e.backoff != nil {
		wait = e.backoff.Next()
	}
	e.waitWin.SetAfter(wait)
}

func (e *elector) waitExpired() {
	if e.nd.central != netsim.NoNode || e.nd.IsCentral() {
		return
	}
	e.startElection()
}
