package frodo

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// UserRole holds one service requirement. Discovery goes through the
// Central (unicast query) with a multicast fallback when the Central is
// not responding; the subscription mode follows the Manager's device
// class: 300D Managers are subscribed to directly (2-party), everything
// else through the Central (3-party).
type UserRole struct {
	nd       *Node
	query    discovery.Query
	listener discovery.ConsistencyListener

	cache *discovery.LeaseTable[netsim.NodeID, discovery.ServiceRecord]

	searchTick   *sim.Ticker
	searchesLeft int

	// Subscription state: lessee is who holds our lease (the Central in
	// 3-party, the Manager in 2-party); subMgr is the Manager the
	// subscription is about. subRetry is embedded with a callback bound
	// once, sending to the current lessee/subMgr — every mutation of
	// those fields stops the schedule first, so the send target can never
	// drift mid-schedule.
	lessee    netsim.NodeID
	subMgr    netsim.NodeID
	subActive bool
	subRetry  core.Retry
	renewTick *sim.Ticker

	// interestTick maintains the standing notification request at the
	// Central while the requirement is unmet: the User explicitly asked
	// to be notified of matching registrations, and that request is a
	// lease like any other. Without upkeep, a long Manager outage
	// outlives the interest and the PR1 push finds nobody to tell.
	interestTick *sim.Ticker

	// pollTick drives CM2 when configured: persistent periodic Get
	// requests for every cached service.
	pollTick *sim.Ticker

	// monitor detects missed sequenced updates (SRC2, critical mode).
	monitor core.SeqMonitor

	// searchOut is the pre-built query payload (the requirement never
	// changes); one boxed payload serves every search. subOut is the
	// boxed subscription request, rebuilt per subscribe target so the
	// retransmission schedule reuses it across attempts.
	searchOut netsim.Outgoing
	subOut    netsim.Outgoing
}

func newUserRole(nd *Node, q discovery.Query, l discovery.ConsistencyListener) *UserRole {
	if l == nil {
		l = discovery.NopListener{}
	}
	u := &UserRole{nd: nd, query: q, listener: l, lessee: netsim.NoNode, subMgr: netsim.NoNode}
	u.cache = discovery.NewLeaseTable[netsim.NodeID, discovery.ServiceRecord](nd.k, u.onCachePurge)
	u.searchTick = sim.NewTicker(nd.k, nd.cfg.SearchRetryPeriod, u.search)
	u.renewTick = sim.NewTicker(nd.k, core.RenewInterval(nd.cfg.SubscriptionLease), u.renew)
	u.interestTick = sim.NewTicker(nd.k, core.RenewInterval(nd.cfg.SubscriptionLease), u.renewInterest)
	if nd.cfg.PollPeriod > 0 {
		u.pollTick = sim.NewTicker(nd.k, nd.cfg.PollPeriod, u.poll)
	}
	u.subRetry.Init(nd.k, nd.cfg.ControlRetry, u.sendSubscribe, u.subscribeExhausted)
	u.searchOut = netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Search{}),
		Counted: true,
		Payload: discovery.Search{Q: u.query},
	}
	return u
}

// rearm resets the role to its construction-time state for workspace
// reuse.
func (u *UserRole) rearm() {
	u.cache.Rearm()
	u.searchTick.Rearm()
	u.renewTick.Rearm()
	u.interestTick.Rearm()
	if u.pollTick != nil {
		u.pollTick.Rearm()
	}
	u.subRetry.Rearm()
	u.searchesLeft = 0
	u.lessee = netsim.NoNode
	u.subMgr = netsim.NoNode
	u.subActive = false
	u.monitor.Reset()
}

// poll is CM2: request the current description of every cached service
// from the subscription lessee when one is established, otherwise from
// the Central.
func (u *UserRole) poll() {
	u.cache.EachKey(func(mgr netsim.NodeID) {
		target := u.nd.central
		if u.subActive && u.subMgr == mgr {
			target = u.lessee
		}
		if target == netsim.NoNode || target == u.nd.n.ID {
			return
		}
		u.nd.nw.SendUDP(u.nd.n.ID, target, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Get{}),
			Counted: true,
			Payload: discovery.Get{Manager: mgr},
		})
	})
}

// renewInterest keeps the standing notification request alive while the
// requirement is unmet. Subscribed Users piggyback interest renewal on
// their subscription renewals instead.
func (u *UserRole) renewInterest() {
	if u.subActive {
		return
	}
	central := u.nd.central
	if central == netsim.NoNode || central == u.nd.n.ID {
		return
	}
	u.nd.nw.SendUDP(u.nd.n.ID, central, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Renew{}),
		Counted: false, // lease upkeep, excluded from update effort
		Payload: discovery.Renew{Manager: netsim.NoNode, Lease: u.nd.cfg.SubscriptionLease},
	})
}

// onInterestError reacts to the Central rejecting an interest renewal
// (it purged the request, e.g. after its own outage): re-establish
// contact with a fresh search burst, which both re-registers the
// interest and picks up anything already registered.
func (u *UserRole) onInterestError() {
	if u.subActive {
		return
	}
	u.startSearchBurst()
}

func (u *UserRole) start() {
	if u.cache.Len() == 0 {
		u.startSearchBurst()
	}
	u.interestTick.Start(u.interestTick.Period())
	if u.pollTick != nil {
		u.pollTick.Start(u.pollTick.Period())
	}
}

// startSearchBurst arms a bounded train of searches (PR5's query side).
func (u *UserRole) startSearchBurst() {
	u.searchesLeft = u.nd.cfg.SearchBurst
	if u.searchesLeft <= 0 {
		u.searchesLeft = 1
	}
	u.searchTick.Start(u.nd.k.UniformDuration(0, sim.Second))
}

// ID reports the hosting node's ID.
func (u *UserRole) ID() netsim.NodeID { return u.nd.n.ID }

// stop quiesces the role for node retirement: every ticker, retry
// schedule and cache lease is disarmed. The pending resubscribe back-off
// event armed by subscribe's exhaustion handler (if any) fires into a
// cleared cache and does nothing.
func (u *UserRole) stop() {
	if u.nd.cfg.Harden.RetireBye {
		u.sendByes()
	}
	u.searchTick.Stop()
	u.renewTick.Stop()
	u.interestTick.Stop()
	if u.pollTick != nil {
		u.pollTick.Stop()
	}
	u.subRetry.Stop()
	u.cache.Clear()
	u.subActive = false
	u.subMgr = netsim.NoNode
	u.lessee = netsim.NoNode
	u.searchesLeft = 0
}

// sendByes emits best-effort goodbyes to every holder of this User's
// leases — the subscription lessee (Central in 3-party, Manager in
// 2-party) and the Central carrying the standing interest — so they
// evict now instead of retrying notifications at a recycled node slot.
func (u *UserRole) sendByes() {
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Bye{}),
		Counted: true,
		Payload: discovery.Bye{Role: discovery.RoleUser},
	}
	sent := netsim.NoNode
	if u.lessee != netsim.NoNode && u.lessee != u.nd.n.ID {
		u.nd.nw.SendUDP(u.nd.n.ID, u.lessee, out)
		sent = u.lessee
	}
	if c := u.nd.central; c != netsim.NoNode && c != sent && c != u.nd.n.ID {
		u.nd.nw.SendUDP(u.nd.n.ID, c, out)
	}
}

// CachedVersion reports the cached description version for a Manager.
func (u *UserRole) CachedVersion(manager netsim.NodeID) uint64 {
	rec, ok := u.cache.Get(manager)
	if !ok {
		return 0
	}
	return rec.SD.Version()
}

// Subscribed reports whether the User holds an acknowledged subscription.
func (u *UserRole) Subscribed() bool { return u.subActive }

// EachCached visits every cached service record — the live gateway's
// read path. The records share immutable snapshots and may be retained.
func (u *UserRole) EachCached(fn func(discovery.ServiceRecord)) {
	u.cache.Each(func(_ netsim.NodeID, rec discovery.ServiceRecord) { fn(rec) })
}

// search queries the Central, or multicasts when no Central is known —
// "Managers are rediscovered by querying the Registry or by sending
// multicast queries when the Registry is not responding."
func (u *UserRole) search() {
	if u.searchesLeft <= 0 {
		u.searchTick.Stop()
		return
	}
	u.searchesLeft--
	if central := u.nd.central; central != netsim.NoNode && central != u.nd.n.ID {
		u.nd.nw.SendUDP(u.nd.n.ID, central, u.searchOut)
		return
	}
	u.nd.nw.Multicast(u.nd.n.ID, DiscoveryGroup, u.searchOut, 1)
}

// onSearchReply adopts matching records.
func (u *UserRole) onSearchReply(from netsim.NodeID, p discovery.SearchReply) {
	for _, rec := range p.Recs {
		if u.query.Matches(rec.SD) {
			u.adopt(rec)
		}
	}
}

// adopt caches the record and establishes the subscription dictated by
// the Manager's device class ("The User is able to detect which
// subscription process to use, based on the device class of the
// Manager").
func (u *UserRole) adopt(rec discovery.ServiceRecord) {
	u.storeRec(rec)
	target := u.nd.central
	if rec.SD.Attr(ClassAttr) == Class300D.String() {
		target = rec.Manager
	}
	if target == netsim.NoNode {
		// A 3-party service but no Central to subscribe at: keep
		// searching; centralChanged re-adopts the cached record.
		return
	}
	u.searchTick.Stop()
	if u.lessee == target && u.subMgr == rec.Manager {
		if u.subActive || u.subRetry.Active() {
			return
		}
	}
	u.subscribe(target, rec.Manager)
}

// subscribe arms the subscription request with the control
// retransmission schedule; an exhausted schedule retries after a
// node-announce period while the record stays cached.
func (u *UserRole) subscribe(lessee, manager netsim.NodeID) {
	u.subRetry.Stop()
	u.subActive = false
	u.lessee = lessee
	u.subMgr = manager
	u.subOut = netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Subscribe{}),
		Counted: true,
		Payload: discovery.Subscribe{Manager: manager, Lease: u.nd.cfg.SubscriptionLease},
	}
	u.subRetry.Start()
}

// sendSubscribe is the subscription retry's bound transmission callback.
func (u *UserRole) sendSubscribe(int) {
	u.nd.nw.SendUDP(u.nd.n.ID, u.lessee, u.subOut)
}

// subscribeExhausted backs off for a node-announce period and retries
// while the record stays cached and the target has not changed.
func (u *UserRole) subscribeExhausted() {
	lessee, manager := u.lessee, u.subMgr
	u.nd.k.After(u.nd.cfg.NodeAnnouncePeriod, func() {
		if !u.subActive && u.cache.Len() > 0 && u.lessee == lessee {
			u.subscribe(lessee, manager)
		}
	})
}

// onSubscribeAck confirms the subscription and applies any initial state.
func (u *UserRole) onSubscribeAck(from netsim.NodeID, p discovery.SubscribeAck) {
	if from != u.lessee {
		return
	}
	u.subRetry.Stop()
	u.subActive = true
	u.searchTick.Stop()
	u.renewTick.Start(u.renewTick.Period())
	if u.query.Matches(p.Rec.SD) {
		u.storeRec(p.Rec)
	}
}

// renew sends the periodic SubscriptionRenew of Fig. 1. In 2-party mode
// this is also the SRN2 trigger on the Manager's side.
func (u *UserRole) renew() {
	if !u.subActive || u.lessee == netsim.NoNode {
		return
	}
	u.nd.nw.SendUDP(u.nd.n.ID, u.lessee, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Renew{}),
		Counted: false, // lease upkeep, excluded from update effort
		Payload: discovery.Renew{Manager: u.subMgr, Lease: u.nd.cfg.SubscriptionLease},
	})
}

// onRenewAck refreshes the cached record's lease: a live subscription
// chain keeps the cached service alive.
func (u *UserRole) onRenewAck(from netsim.NodeID, p discovery.RenewAck) {
	if from != u.lessee {
		return
	}
	u.cache.Renew(u.subMgr, u.nd.cfg.CacheLease)
}

// onCentralAnnounce refreshes cached records the Central vouches for:
// 3-party services live in its repository, so while it announces they
// stay valid and purge-rediscovery is driven by its explicit signals
// (ManagerGone, resubscription requests) or by the Central going silent.
// This decoupling is what lets PR3 fire: the cache outlives a purged
// subscription. A 2-party service is the Manager's own affair — only the
// Manager's acknowledgements keep it alive — which is why 2-party Users
// fall back to rediscovery through the Registry, the weaker PR5 the
// paper describes.
func (u *UserRole) onCentralAnnounce() {
	u.cache.EachKey(func(mgr netsim.NodeID) {
		if u.subActive && u.lessee == mgr {
			return // 2-party: vouched by the Manager itself
		}
		u.cache.Renew(mgr, u.nd.cfg.CacheLease)
	})
}

// onResubscribeRequest complies with PR3 (from the Central) or PR4 (from
// a 2-party Manager): subscribe again; the acknowledgement carries the
// current service state.
func (u *UserRole) onResubscribeRequest(from netsim.NodeID, p discovery.ResubscribeRequest) {
	u.subscribe(from, p.Manager)
}

// onUpdate stores the pushed description and acknowledges it. The
// acknowledgement is a subscriber receipt — the UDP analogue of the TCP
// acks in Jini/UPnP — and is excluded from the update-effort count. In
// critical mode the sequence monitor requests missed updates (SRC2).
func (u *UserRole) onUpdate(from netsim.NodeID, p discovery.Update) {
	if !u.query.Matches(p.Rec.SD) {
		return
	}
	if u.nd.cfg.CriticalUpdates && u.nd.cfg.Techniques.Has(core.SRC2) && p.Seq > 0 {
		if gapped, _ := u.monitor.Observe(p.Seq); gapped {
			u.nd.nw.SendUDP(u.nd.n.ID, from, netsim.Outgoing{
				Kind:    discovery.Kind(discovery.Get{}),
				Counted: true,
				Payload: discovery.Get{Manager: p.Rec.Manager},
			})
		}
	}
	// Updates can be the first contact with the service (PR1 notifies
	// standing interests): adopt establishes the subscription if needed.
	u.adopt(p.Rec)
	u.nd.nw.SendUDP(u.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.UpdateAck{}),
		Counted: false,
		Payload: discovery.UpdateAck{Manager: p.Rec.Manager, Version: p.Rec.SD.Version(),
			SenderRole: discovery.RoleUser},
	})
}

// onGetReply adopts a fetched description (SRC2 repair).
func (u *UserRole) onGetReply(from netsim.NodeID, p discovery.GetReply) {
	if u.query.Matches(p.Rec.SD) {
		u.adopt(p.Rec)
	}
}

// onManagerGone is PR5 in 3-party mode: the Central purged the Manager,
// so purge it here too and rediscover.
func (u *UserRole) onManagerGone(from netsim.NodeID, p discovery.ManagerGone) {
	if from != u.nd.central {
		return
	}
	u.cache.Drop(p.Manager)
	u.purgeManager(p.Manager)
}

// onCachePurge is PR5 by lease expiry: the service went silent.
func (u *UserRole) onCachePurge(manager netsim.NodeID, _ discovery.ServiceRecord) {
	u.purgeManager(manager)
}

func (u *UserRole) purgeManager(manager netsim.NodeID) {
	if u.subMgr == manager {
		u.subActive = false
		u.subMgr = netsim.NoNode
		u.lessee = netsim.NoNode
		u.subRetry.Stop()
		u.renewTick.Stop()
	}
	u.monitor.Reset()
	if u.nd.cfg.Techniques.Has(core.PR5) {
		u.startSearchBurst()
	}
}

// centralChanged re-subscribes 3-party subscriptions at the new Central,
// re-adopts cached records that could not be subscribed while no Central
// was known, and gives searching Users an immediate query target.
func (u *UserRole) centralChanged(central netsim.NodeID) {
	if u.subMgr != netsim.NoNode && u.lessee != u.subMgr {
		// 3-party subscription: move it to the new Central.
		u.subscribe(central, u.subMgr)
		return
	}
	if !u.subActive && u.cache.Len() > 0 {
		u.cache.Each(func(_ netsim.NodeID, rec discovery.ServiceRecord) {
			if u.query.Matches(rec.SD) {
				u.adopt(rec)
			}
		})
		return
	}
	if u.cache.Len() == 0 && u.nd.started {
		u.startSearchBurst()
	}
}

// centralLost marks a 3-party subscription as orphaned; the cache lease
// will drive rediscovery if no new Central appears in time.
func (u *UserRole) centralLost() {
	if u.subMgr != netsim.NoNode && u.lessee != u.subMgr {
		u.subActive = false
		u.renewTick.Stop()
	}
}

// storeRec caches the record — sharing the immutable snapshot, no copy —
// and reports the write to the consistency listener. The search ticker is
// stopped by adopt/onSubscribeAck, not here: a cached record without a
// reachable subscription target must keep the search alive.
func (u *UserRole) storeRec(rec discovery.ServiceRecord) {
	u.cache.Put(rec.Manager, rec, u.nd.cfg.CacheLease)
	u.listener.CacheUpdated(u.nd.k.Now(), u.nd.n.ID, rec.Manager, rec.SD.Version())
}
