package frodo

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// criticalRig builds a 2-party topology in critical-update mode
// (SRC1 + SRC2: unlimited retransmission, sequence monitoring, update
// history).
func criticalRig(t *testing.T, seed int64, nUsers int) *rig {
	cfg := TwoPartyConfig()
	cfg.CriticalUpdates = true
	return newRig(t, seed, true, nUsers, cfg)
}

// SRC2's gap detection needs two changes: the User misses the first
// update while its receiver is down, then receives the second with a
// sequence gap and requests the missed state. With the full description
// carried in every update, receiving the second update alone already
// restores consistency — the Get then confirms the history path works.
func TestSRC2GapDetectionRequestsMissedUpdate(t *testing.T) {
	r := criticalRig(t, 21, 1)
	u := r.users[0]
	// Rx-only failure so renewals still flow (subscription survives) but
	// the first update is missed... the retransmissions must also miss,
	// so the outage exceeds the unlimited schedule's useful window and
	// the second change happens after recovery.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailRx,
		Start: 995 * sim.Second, Duration: 300 * sim.Second, // up at 1295
	})
	r.k.At(1000*sim.Second, r.change) // v2 — missed while Rx down? No:
	// SRC1 is unlimited: retransmissions every 10s continue past 1295,
	// so v2 arrives shortly after recovery.
	r.k.Run(2000 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("SRC1 unlimited retransmission did not deliver the update")
	}
	if at < 1295*sim.Second || at > 1320*sim.Second {
		t.Errorf("v2 delivered at %v, want shortly after Rx recovery at 1295s", at)
	}
}

// The manager purges its history only after all interested users
// confirmed the updates.
func TestCriticalHistoryRetainedUntilConfirmed(t *testing.T) {
	r := criticalRig(t, 22, 2)
	u0 := r.users[0]
	// User 0 fully down across two changes; SRC1 retransmits forever, so
	// it recovers as soon as its interfaces return.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u0.ID(), Mode: netsim.FailBoth,
		Start: 900 * sim.Second, Duration: 700 * sim.Second, // up at 1600
	})
	r.k.At(1000*sim.Second, r.change) // v2
	r.k.At(1100*sim.Second, r.change) // v3
	r.k.At(1400*sim.Second, func() {
		if got := r.manager.history.Len(); got == 0 {
			t.Error("history purged while user 0 is still unconfirmed")
		}
	})
	r.k.Run(3000 * sim.Second)
	if _, ok := r.whenConsistent(u0, 3); !ok {
		t.Fatal("user 0 never reached v3 despite SRC1")
	}
	if got := r.manager.history.Len(); got != 0 {
		t.Errorf("history holds %d entries after all users confirmed", got)
	}
}

// In critical mode the notification schedule has no retransmission limit
// (SRC1): a user that recovers minutes later still gets the update
// directly, without waiting for a renewal (contrast with the SRN1+SRN2
// path, which waits for the next renewal tick).
func TestSRC1OutlastsSRN1(t *testing.T) {
	// Non-critical first: the update is lost after 3 retransmissions and
	// recovery waits for the renewal grid.
	normal := newRig(t, 23, true, 1, TwoPartyConfig())
	normal.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: normal.users[0].ID(), Mode: netsim.FailRx,
		Start: 995 * sim.Second, Duration: 200 * sim.Second,
	})
	normal.k.At(1000*sim.Second, normal.change)
	normal.k.Run(5400 * sim.Second)
	atN, okN := normal.whenConsistent(normal.users[0], 2)

	critical := criticalRig(t, 23, 1)
	critical.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: critical.users[0].ID(), Mode: netsim.FailRx,
		Start: 995 * sim.Second, Duration: 200 * sim.Second,
	})
	critical.k.At(1000*sim.Second, critical.change)
	critical.k.Run(5400 * sim.Second)
	atC, okC := critical.whenConsistent(critical.users[0], 2)

	if !okN || !okC {
		t.Fatalf("recovery missing: normal=%v critical=%v", okN, okC)
	}
	if atC >= atN {
		t.Errorf("critical recovery (%v) not faster than non-critical (%v)", atC, atN)
	}
	if atC > 1215*sim.Second {
		t.Errorf("SRC1 recovery at %v, want within one retry of Rx recovery at 1195s", atC)
	}
}

func TestMultipleChangesResetNotificationProcess(t *testing.T) {
	// "the service changes again, requiring the Manager to reset the
	// notification process": after two rapid changes only the latest
	// version is outstanding, and all users converge to it.
	r := newRig(t, 24, true, 3, TwoPartyConfig())
	r.k.At(1000*sim.Second, r.change) // v2
	r.k.At(1001*sim.Second, r.change) // v3 supersedes v2
	r.k.Run(1100 * sim.Second)
	for i, u := range r.users {
		if got := u.CachedVersion(r.manager.ID()); got != 3 {
			t.Errorf("user %d at version %d, want 3", i, got)
		}
	}
	if r.manager.prop.Outstanding() != 0 {
		t.Errorf("%d notifications still outstanding", r.manager.prop.Outstanding())
	}
}
