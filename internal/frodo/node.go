package frodo

import (
	"fmt"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Node is one FRODO device. Its behaviour is composed from its device
// class and attached roles: every node tracks the Central; 3C/3D nodes
// announce their presence until the Central is found; 300D nodes carry
// Registry capability and take part in the Central election.
type Node struct {
	cfg   Config
	class Class
	power int

	n  *netsim.Node
	nw *netsim.Network
	k  *sim.Kernel

	// central is the node currently believed to be the Central, NoNode if
	// unknown; centralPower orders competing claims; centralLease purges
	// a silent Central.
	central      netsim.NodeID
	centralPower int
	centralLease *sim.Deadline

	// nodeAnnounce is the 3C/3D presence train that runs until the
	// Central is discovered ("FRODO also requires 3D Managers to announce
	// their presence periodically until the Registry is discovered").
	nodeAnnounce *sim.Ticker

	registry *RegistryRole // 300D only; active only while elected
	elector  *elector      // 300D only
	manager  *ManagerRole
	user     *UserRole

	// known300D records the power of other 300D nodes seen in election
	// candidacies; the Central picks its Backup from it.
	known300D map[netsim.NodeID]int

	// txDown/rxDown mirror the node's interface state under CentralRepair:
	// the Registry announcer is gated on them so a Central with a failed
	// interface stops advertising a claim it cannot honour. A dead
	// transmitter makes the claim a lie outright; a dead receiver is
	// subtler — the node can still shout, but it cannot hear renewals,
	// requests, or a stronger rival, so its advertisement only prolongs
	// split-brain. ifaceHook is registered on every bind when
	// CentralRepair is on.
	txDown    bool
	rxDown    bool
	ifaceHook func(txUp, rxUp bool)

	started bool
	// detached marks a quiesced device (Detach): late events — notably a
	// boot still pending when the device permanently departed — must not
	// restart the protocol on a retired (possibly recycled) node slot.
	detached bool
}

// NewNode attaches a FRODO device of the given class to a network node.
// Power orders 300D nodes in the Central election; it is ignored for
// other classes.
func NewNode(n *netsim.Node, cfg Config, class Class, power int) *Node {
	nd := &Node{
		cfg: cfg, class: class, power: power,
		n: n, nw: n.Network(), k: n.Kernel(),
		central:   netsim.NoNode,
		known300D: map[netsim.NodeID]int{},
	}
	nd.centralLease = sim.NewDeadline(nd.k, nd.onCentralTimeout)
	nd.nodeAnnounce = sim.NewTicker(nd.k, cfg.NodeAnnouncePeriod, nd.announcePresence)
	if class == Class300D {
		nd.registry = newRegistryRole(nd)
		nd.elector = newElector(nd)
		if cfg.Harden.CentralRepair {
			nd.ifaceHook = func(txUp, rxUp bool) {
				wasGated := nd.txDown || nd.rxDown
				nd.txDown = !txUp
				nd.rxDown = !rxUp
				if wasGated && txUp && rxUp && nd.IsCentral() {
					// Fully back on the air: reassert the claim immediately
					// so peers that elected around the silence demote.
					nd.registry.announcer.AnnounceNow()
				}
			}
			nd.registry.announcer.SetGate(func() bool { return !nd.txDown && !nd.rxDown })
		}
	}
	nd.bind()
	return nd
}

// bind attaches the device to its node slot; construction and Rearm
// share it.
func (nd *Node) bind() {
	nd.n.SetEndpoint(nd)
	nd.nw.Join(nd.n.ID, DiscoveryGroup)
	if nd.ifaceHook != nil {
		nd.n.OnInterfaceChange(nd.ifaceHook)
	}
}

// Rearm resets the whole device to its construction-time state for
// workspace reuse: every role, table and timer returns to pristine with
// its event references dropped (the kernel has been reset), capacity
// kept, and the node slot re-bound.
func (nd *Node) Rearm() {
	nd.central = netsim.NoNode
	nd.centralPower = 0
	nd.centralLease.Rearm()
	nd.nodeAnnounce.Rearm()
	clear(nd.known300D)
	if nd.registry != nil {
		nd.registry.rearm()
	}
	if nd.elector != nil {
		nd.elector.rearm()
	}
	if nd.manager != nil {
		nd.manager.rearm()
	}
	if nd.user != nil {
		nd.user.rearm()
	}
	nd.txDown = false
	nd.rxDown = false
	nd.started = false
	nd.detached = false
	nd.bind()
}

// AttachManager adds the Manager role hosting one service. The service
// description is tagged with the node's device class so Users can pick
// the subscription mode.
func (nd *Node) AttachManager(sd discovery.ServiceDescription) *ManagerRole {
	if nd.manager != nil {
		panic("frodo: manager role already attached")
	}
	nd.manager = newManagerRole(nd, sd)
	return nd.manager
}

// AttachUser adds the User role with one service requirement. 3C devices
// cannot be Users (§3).
func (nd *Node) AttachUser(q discovery.Query, l discovery.ConsistencyListener) *UserRole {
	if nd.class == Class3C {
		panic("frodo: 3C devices are Managers only")
	}
	if nd.user != nil {
		panic("frodo: user role already attached")
	}
	nd.user = newUserRole(nd, q, l)
	return nd.user
}

// Start boots the device after the given delay.
func (nd *Node) Start(bootDelay sim.Duration) {
	nd.k.AfterArg(bootDelay, nodeBoot, nd)
}

// nodeBoot is the static boot callback shared by every FRODO device.
func nodeBoot(x any) {
	nd := x.(*Node)
	if nd.detached {
		return // departed permanently before the boot completed
	}
	nd.started = true
	if nd.class == Class300D {
		nd.elector.start()
	} else if nd.central == netsim.NoNode {
		nd.nodeAnnounce.Start(nd.k.UniformDuration(0, sim.Second))
	}
	if nd.user != nil {
		nd.user.start()
	}
}

// Detach quiesces the whole device for node retirement after a permanent
// churn departure: every role's timers and leases are disarmed so no
// zombie event can later transmit under this node's (possibly reused)
// identity. It reports whether detaching was possible — a node currently
// serving as Central or Backup, or hosting a Manager role, declines, and
// the caller must keep its slot alive.
func (nd *Node) Detach() bool {
	if nd.manager != nil {
		return false
	}
	if nd.registry != nil && (nd.registry.active || nd.registry.backup) {
		return false
	}
	if nd.elector != nil {
		nd.elector.stop()
	}
	nd.nodeAnnounce.Stop()
	nd.centralLease.Clear()
	if nd.registry != nil {
		nd.registry.quiesce()
	}
	if nd.user != nil {
		nd.user.stop()
	}
	nd.started = false
	nd.detached = true
	return true
}

// ID reports the device's network node ID.
func (nd *Node) ID() netsim.NodeID { return nd.n.ID }

// Class reports the device class.
func (nd *Node) Class() Class { return nd.class }

// Central reports the node currently believed to be the Central.
func (nd *Node) Central() netsim.NodeID { return nd.central }

// IsCentral reports whether this node currently serves as the Central.
func (nd *Node) IsCentral() bool { return nd.registry != nil && nd.registry.active }

// IsBackup reports whether this node currently serves as the Backup.
func (nd *Node) IsBackup() bool { return nd.registry != nil && nd.registry.backup }

// Manager returns the attached Manager role, nil if none.
func (nd *Node) Manager() *ManagerRole { return nd.manager }

// User returns the attached User role, nil if none.
func (nd *Node) User() *UserRole { return nd.user }

// Registry returns the 300D Registry capability, nil for other classes.
func (nd *Node) Registry() *RegistryRole { return nd.registry }

// announcePresence multicasts a presence announcement. The Central
// answers with unicast Registry info, which "allows faster discovery of
// the Registry" than waiting for its periodic train.
func (nd *Node) announcePresence() {
	role := discovery.RoleUser
	if nd.manager != nil && nd.user == nil {
		role = discovery.RoleManager
	}
	nd.nw.Multicast(nd.n.ID, DiscoveryGroup, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Announce{}),
		Counted: true,
		Payload: discovery.Announce{Role: role, Power: nd.power},
	}, 1)
}

// setCentral adopts a (possibly new) Central and refreshes its lease.
func (nd *Node) setCentral(id netsim.NodeID, power int) {
	if nd.registry != nil && id != nd.n.ID {
		nd.registry.onCentralSeen()
	}
	if nd.central == id {
		nd.centralPower = power
		nd.centralLease.SetAfter(nd.cfg.CentralTimeout)
		nd.nodeAnnounce.Stop()
		if nd.elector != nil {
			nd.elector.centralKnown()
		}
		return
	}
	// Competing claim: keep the more powerful Central (ties: higher ID).
	if nd.central != netsim.NoNode {
		if power < nd.centralPower || (power == nd.centralPower && id < nd.central) {
			if nd.cfg.Harden.CentralRepair && nd.IsCentral() {
				// Split-brain heal: a weaker rival Central just reached us.
				// Baseline stays silent until the next periodic train, so
				// both claims persist for up to an announce period;
				// reasserting now makes the rival demote on first contact.
				nd.registry.announcer.AnnounceNow()
			}
			return
		}
	}
	nd.central = id
	nd.centralPower = power
	nd.centralLease.SetAfter(nd.cfg.CentralTimeout)
	nd.nodeAnnounce.Stop()
	if nd.IsCentral() && id != nd.n.ID {
		// A more powerful Central exists: demote (§3 keeps a single
		// Registry; the strongest claim wins).
		nd.registry.deactivate()
	}
	if nd.elector != nil {
		nd.elector.centralKnown()
	}
	if nd.manager != nil {
		nd.manager.centralChanged(id)
	}
	if nd.user != nil {
		nd.user.centralChanged(id)
	}
}

// onCentralTimeout purges a silent Central: 3C/3D nodes resume presence
// announcements; 300D nodes may start an election (the Backup instead
// takes over on its own, earlier timeout).
func (nd *Node) onCentralTimeout() {
	if nd.IsCentral() {
		// We are the Central; our own belief needs no lease.
		return
	}
	nd.centralGone()
}

// centralGone drops the current Central belief and resumes discovery.
// Reached by lease expiry (onCentralTimeout) or, hardened, by the
// Central's explicit Bye.
func (nd *Node) centralGone() {
	nd.central = netsim.NoNode
	nd.centralPower = 0
	if nd.manager != nil {
		nd.manager.centralLost()
	}
	if nd.user != nil {
		nd.user.centralLost()
	}
	if !nd.started {
		return
	}
	if nd.class == Class300D {
		nd.elector.centralLost()
	} else {
		nd.nodeAnnounce.Start(nd.k.UniformDuration(0, sim.Second))
	}
}

// Deliver implements netsim.Endpoint, routing traffic to the roles.
func (nd *Node) Deliver(msg *netsim.Message) {
	switch p := msg.Payload.(type) {
	case ElectionAnnounce:
		if nd.elector != nil {
			nd.elector.onCandidate(msg.From, p.Power)
		}
	case AppointBackup:
		if nd.registry != nil {
			nd.registry.onAppointBackup(msg.From, p)
		}
	case discovery.Announce:
		nd.onAnnounce(msg, p)
	case discovery.Search:
		nd.onSearch(msg, p)
	case discovery.SearchReply:
		if nd.user != nil {
			nd.user.onSearchReply(msg.From, p)
		}
	case discovery.Register:
		if nd.IsCentral() {
			nd.registry.onRegister(msg.From, p)
		}
	case discovery.RegisterAck:
		if nd.manager != nil {
			nd.manager.onRegisterAck(msg.From)
		}
	case discovery.Subscribe:
		nd.onSubscribe(msg, p)
	case discovery.SubscribeAck:
		if nd.user != nil {
			nd.user.onSubscribeAck(msg.From, p)
		}
	case discovery.Renew:
		nd.onRenew(msg, p)
	case discovery.RenewAck:
		nd.onRenewAck(msg, p)
	case discovery.RenewError:
		if p.Manager == netsim.NoNode {
			if nd.user != nil {
				nd.user.onInterestError()
			}
			return
		}
		if nd.manager != nil {
			nd.manager.onRenewError(msg.From)
		}
	case discovery.Update:
		nd.onUpdate(msg, p)
	case discovery.UpdateAck:
		nd.onUpdateAck(msg, p)
	case discovery.Get:
		nd.onGet(msg, p)
	case discovery.GetReply:
		if nd.user != nil {
			nd.user.onGetReply(msg.From, p)
		}
	case discovery.ResubscribeRequest:
		if nd.user != nil {
			nd.user.onResubscribeRequest(msg.From, p)
		}
	case discovery.ManagerGone:
		if nd.user != nil {
			nd.user.onManagerGone(msg.From, p)
		}
	case discovery.Bye:
		nd.onBye(msg.From, p)
	}
}

// onBye handles a hardened goodbye. A Registry Bye retracts the sender's
// Central claim (demotion or retirement) — peers that believed it resume
// discovery immediately instead of waiting out CentralTimeout. Any other
// Bye is a departing Manager/User whose leases are evicted now. Handling
// is unconditional: baseline runs never send a Bye.
func (nd *Node) onBye(from netsim.NodeID, p discovery.Bye) {
	if p.Role == discovery.RoleRegistry {
		if from == nd.central && !nd.IsCentral() {
			nd.centralLease.Clear()
			nd.centralGone()
		}
		return
	}
	if nd.registry != nil {
		nd.registry.onBye(from)
	}
	if nd.manager != nil {
		nd.manager.onBye(from)
	}
}

func (nd *Node) onAnnounce(msg *netsim.Message, a discovery.Announce) {
	if a.Role == discovery.RoleRegistry {
		nd.setCentral(msg.From, a.Power)
		if nd.user != nil && msg.From == nd.central {
			nd.user.onCentralAnnounce()
		}
		return
	}
	// A presence announcement from a node still searching for the
	// Central: answer with unicast Registry info if we are it.
	if nd.IsCentral() {
		nd.nw.SendUDP(nd.n.ID, msg.From, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Announce{}),
			Counted: true,
			Payload: discovery.Announce{Role: discovery.RoleRegistry, Power: nd.power,
				CacheLease: nd.cfg.CacheLease},
		})
	}
}

func (nd *Node) onSearch(msg *netsim.Message, s discovery.Search) {
	if msg.Multicast {
		// PR5a: multicast queries are answered by matching Managers
		// directly.
		if nd.manager != nil {
			nd.manager.onMulticastSearch(msg.From, s)
		}
		return
	}
	if nd.IsCentral() {
		nd.registry.onSearch(msg.From, s)
	}
}

func (nd *Node) onSubscribe(msg *netsim.Message, p discovery.Subscribe) {
	if p.Manager == nd.n.ID && nd.manager != nil {
		nd.manager.onSubscribe(msg.From, p)
		return
	}
	if nd.IsCentral() {
		nd.registry.onSubscribe(msg.From, p)
	}
}

func (nd *Node) onRenew(msg *netsim.Message, p discovery.Renew) {
	switch {
	case p.Manager == msg.From:
		// Registration lease renewal from a Manager.
		if nd.IsCentral() {
			nd.registry.onRegistrationRenew(msg.From, p)
		}
	case p.Manager == nd.n.ID && nd.manager != nil:
		// 2-party subscription renewal addressed to our Manager role.
		nd.manager.onSubscriptionRenew(msg.From, p)
	default:
		// 3-party subscription renewal at the Central.
		if nd.IsCentral() {
			nd.registry.onSubscriptionRenew(msg.From, p)
		}
	}
}

func (nd *Node) onRenewAck(msg *netsim.Message, p discovery.RenewAck) {
	if p.Manager == nd.n.ID && nd.manager != nil {
		nd.manager.onRegistrationRenewAck(msg.From)
		return
	}
	if nd.user != nil {
		nd.user.onRenewAck(msg.From, p)
	}
}

func (nd *Node) onUpdate(msg *netsim.Message, p discovery.Update) {
	if p.ForRegistry {
		if nd.IsCentral() {
			nd.registry.onUpdate(msg.From, p)
		}
		return
	}
	if nd.user != nil {
		nd.user.onUpdate(msg.From, p)
	}
}

func (nd *Node) onUpdateAck(msg *netsim.Message, p discovery.UpdateAck) {
	if p.SenderRole == discovery.RoleRegistry {
		// The Central confirmed our repository update.
		if nd.manager != nil {
			nd.manager.onCentralUpdateAck(p)
		}
		return
	}
	// A subscriber's acknowledgement: route to whoever notified it.
	if p.Manager == nd.n.ID && nd.manager != nil {
		nd.manager.onSubscriberAck(msg.From, p)
		return
	}
	if nd.registry != nil && nd.registry.active {
		nd.registry.onSubscriberAck(msg.From, p)
	}
}

func (nd *Node) onGet(msg *netsim.Message, p discovery.Get) {
	if p.Manager == nd.n.ID && nd.manager != nil {
		nd.manager.onGet(msg.From)
		return
	}
	if nd.IsCentral() {
		nd.registry.onGet(msg.From, p)
	}
}

// String aids debugging and event logs.
func (nd *Node) String() string {
	return fmt.Sprintf("frodo[%d/%s]", nd.n.ID, nd.class)
}
