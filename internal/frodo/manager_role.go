package frodo

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ManagerRole hosts one service. 3C/3D Managers delegate subscription
// upkeep to the Central (3-party); 300D Managers maintain subscriptions
// themselves (2-party) and are the only entities in the study
// implementing SRN2: "the Manager caches information on inconsistent
// Users and retries notification once a message from the inconsistent
// User is received."
type ManagerRole struct {
	nd *Node
	// sd is the current immutable description snapshot; initial is the
	// frozen construction-time state a workspace rearm returns to.
	sd      *discovery.Snapshot
	initial *discovery.Snapshot

	registered     bool
	regRetry       *core.Retry
	regRetryWait   *sim.Event
	renewTick      *sim.Ticker
	centralRetry   *core.Retry
	centralVersion uint64
	centralAcked   uint64
	regVersion     uint64

	// 2-party state (300D Managers).
	subs         *discovery.LeaseTable[netsim.NodeID, struct{}]
	prop         *propagator
	inconsistent *core.InconsistentSet

	// Critical-update state (SRC2).
	history *core.UpdateHistory

	// ackOut caches the boxed subscription acknowledgement for ackVersion:
	// its content only changes when the service does, and 2-party boots
	// send one per subscriber attempt.
	ackOut     netsim.Outgoing
	ackVersion uint64
}

func newManagerRole(nd *Node, sd discovery.ServiceDescription) *ManagerRole {
	m := &ManagerRole{nd: nd}
	sd = sd.Clone()
	if sd.Attributes == nil {
		sd.Attributes = map[string]string{}
	}
	sd.Attributes[ClassAttr] = nd.class.String()
	m.initial = sd.Freeze()
	m.sd = m.initial
	m.subs = discovery.NewLeaseTable[netsim.NodeID, struct{}](nd.k, m.onSubscriptionExpired)
	retry := nd.cfg.NotifyRetry
	if nd.cfg.CriticalUpdates {
		retry = core.FrodoCriticalRetry
	}
	m.prop = newPropagator(nd.k, nd.nw, nd.n.ID, retry, m.onNotifyExhausted)
	m.inconsistent = core.NewInconsistentSet()
	m.history = core.NewUpdateHistory()
	m.renewTick = sim.NewTicker(nd.k, core.RenewInterval(nd.cfg.RegistrationLease), m.renewRegistration)
	return m
}

// rearm resets the role to its construction-time state for workspace
// reuse.
func (m *ManagerRole) rearm() {
	m.sd = m.initial
	m.registered = false
	m.regRetry = nil
	m.regRetryWait = nil
	m.renewTick.Rearm()
	m.centralRetry = nil
	m.centralVersion = 0
	m.centralAcked = 0
	m.regVersion = 0
	m.subs.Rearm()
	m.prop.Rearm()
	m.inconsistent.Reset()
	m.history.Reset()
	m.ackOut = netsim.Outgoing{}
	m.ackVersion = 0
}

// subscribeAck returns the (cached) boxed acknowledgement carrying the
// current service state.
func (m *ManagerRole) subscribeAck() netsim.Outgoing {
	if m.ackOut.Payload == nil || m.ackVersion != m.sd.Version() {
		m.ackOut = netsim.Outgoing{
			Kind:    discovery.Kind(discovery.SubscribeAck{}),
			Counted: true,
			Payload: discovery.SubscribeAck{Manager: m.nd.n.ID, Rec: m.record()},
		}
		m.ackVersion = m.sd.Version()
	}
	return m.ackOut
}

// ID reports the hosting node's ID.
func (m *ManagerRole) ID() netsim.NodeID { return m.nd.n.ID }

// SD returns the current service description snapshot.
func (m *ManagerRole) SD() *discovery.Snapshot { return m.sd }

// Version reports the current service version.
func (m *ManagerRole) Version() uint64 { return m.sd.Version() }

// Registered reports whether the Manager believes it is registered.
func (m *ManagerRole) Registered() bool { return m.registered }

// Subscribers reports the number of live 2-party subscriptions.
func (m *ManagerRole) Subscribers() int { return m.subs.Len() }

// TwoParty reports whether this Manager maintains its own subscriptions.
func (m *ManagerRole) TwoParty() bool { return m.nd.class == Class300D }

// record shares the current snapshot on the wire; the snapshot is
// immutable, so no copy is needed.
func (m *ManagerRole) record() discovery.ServiceRecord {
	return discovery.ServiceRecord{Manager: m.nd.n.ID, SD: m.sd}
}

// centralChanged registers with the (new) Central.
func (m *ManagerRole) centralChanged(central netsim.NodeID) {
	m.registered = false
	m.register()
}

// centralLost stops registration upkeep; the Node resumes discovery.
func (m *ManagerRole) centralLost() {
	m.registered = false
	if m.regRetry != nil {
		m.regRetry.Stop()
	}
	m.regRetryWait.Cancel()
	m.regRetryWait = nil // pooled events: drop after cancel, never cancel twice
	m.renewTick.Stop()
	if m.centralRetry != nil {
		m.centralRetry.Stop()
	}
}

// register sends the full record with the control retransmission
// schedule. An exhausted schedule backs off for a node-announce period
// and tries again: the Central may be down only briefly.
func (m *ManagerRole) register() {
	central := m.nd.central
	if central == netsim.NoNode || central == m.nd.n.ID {
		return
	}
	if m.regRetry != nil {
		m.regRetry.Stop()
	}
	m.regRetryWait.Cancel()
	m.regRetryWait = nil
	m.regVersion = m.sd.Version()
	m.regRetry = core.NewRetry(m.nd.k, m.nd.cfg.ControlRetry, func(int) {
		m.nd.nw.SendUDP(m.nd.n.ID, central, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Register{}),
			Counted: true,
			Payload: discovery.Register{Rec: m.record(), Lease: m.nd.cfg.RegistrationLease},
		})
	}, func() {
		m.regRetryWait = m.nd.k.After(m.nd.cfg.NodeAnnouncePeriod, func() {
			// Pooled-event ownership: this event has fired; drop the
			// reference before re-registering so centralLost/register
			// never Cancel a recycled event.
			m.regRetryWait = nil
			if !m.registered && m.nd.central != netsim.NoNode {
				m.register()
			}
		})
	})
	m.regRetry.Start()
}

// onRegisterAck confirms the registration and starts lease upkeep. A
// registration carries the full record, so it confirms the Central's copy
// up to the registered version.
func (m *ManagerRole) onRegisterAck(from netsim.NodeID) {
	if from != m.nd.central {
		return
	}
	m.registered = true
	if m.regVersion > m.centralAcked {
		m.centralAcked = m.regVersion
	}
	if m.regRetry != nil {
		m.regRetry.Stop()
	}
	m.regRetryWait.Cancel()
	m.regRetryWait = nil
	m.renewTick.Start(m.renewTick.Period())
}

// renewRegistration refreshes the registration lease. A repository update
// the Central never acknowledged is retried here: FRODO owns its
// reliability at the discovery layer ("FRODO does not depend on the
// recovery abilities of lower layer protocols"), so the Manager keeps the
// Central's copy eventually consistent the same way SRN2 keeps Users
// consistent — by retrying when the periodic exchange comes around.
func (m *ManagerRole) renewRegistration() {
	central := m.nd.central
	if central == netsim.NoNode || !m.registered {
		return
	}
	if m.centralRetry != nil && m.centralRetry.Active() {
		// Repository update still unacknowledged; the retry schedule is
		// already running, the renewal may proceed alongside.
		m.sendRenew(central)
		return
	}
	if m.centralVersion != 0 && m.centralVersion == m.sd.Version() && m.centralAcked < m.sd.Version() {
		m.updateCentral()
		return
	}
	m.sendRenew(central)
}

func (m *ManagerRole) sendRenew(central netsim.NodeID) {
	m.nd.nw.SendUDP(m.nd.n.ID, central, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Renew{}),
		Counted: false, // lease upkeep, excluded from update effort
		Payload: discovery.Renew{Manager: m.nd.n.ID, Lease: m.nd.cfg.RegistrationLease},
	})
}

// onRegistrationRenewAck confirms lease upkeep; nothing further needed.
func (m *ManagerRole) onRegistrationRenewAck(netsim.NodeID) {}

// onRenewError means the Central purged our registration: re-register in
// full so PR1 can notify the interested Users with current data.
func (m *ManagerRole) onRenewError(from netsim.NodeID) {
	if from != m.nd.central {
		return
	}
	m.registered = false
	m.register()
}

// ChangeService applies the mutation copy-on-write, bumps the version,
// and runs the notification process: the Central's repository copy is
// refreshed (this is the whole 3-party propagation path, and keeps
// PR1/queries correct in 2-party mode too), and 2-party subscribers are
// notified directly. Every notification shares the one new snapshot.
func (m *ManagerRole) ChangeService(mutate func(attrs map[string]string)) {
	m.sd = m.sd.Mutate(mutate)
	if m.nd.cfg.CriticalUpdates {
		m.history.Record(m.record())
	}
	m.inconsistent.ResetVersion(m.sd.Version())
	m.updateCentral()
	if m.TwoParty() {
		rec := m.record()
		m.subs.EachKey(func(user netsim.NodeID) {
			m.prop.Notify(user, rec, m.sd.Version())
		})
	}
}

// updateCentral pushes the new description to the Central's repository
// with the notification retransmission schedule (SRN1/SRC1).
func (m *ManagerRole) updateCentral() {
	central := m.nd.central
	if central == netsim.NoNode || central == m.nd.n.ID {
		return
	}
	if m.centralRetry != nil {
		m.centralRetry.Stop()
	}
	m.centralVersion = m.sd.Version()
	rec := m.record()
	seq := m.sd.Version()
	m.centralRetry = core.NewRetry(m.nd.k, m.prop.policy, func(int) {
		m.nd.nw.SendUDP(m.nd.n.ID, central, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Update{}),
			Counted: true,
			Payload: discovery.Update{Rec: rec, Seq: seq, ForRegistry: true},
		})
	}, nil)
	m.centralRetry.Start()
}

// onCentralUpdateAck stops the repository-update retransmission.
func (m *ManagerRole) onCentralUpdateAck(p discovery.UpdateAck) {
	if p.Version > m.centralAcked {
		m.centralAcked = p.Version
	}
	if p.Version >= m.centralVersion && m.centralRetry != nil {
		m.centralRetry.Stop()
	}
}

// onNotifyExhausted is the SRN1→SRN2 hand-off: the schedule gave up, so
// remember the inconsistent User and retry when it next speaks to us.
func (m *ManagerRole) onNotifyExhausted(user netsim.NodeID, rec discovery.ServiceRecord) {
	if m.nd.cfg.Techniques.Has(core.SRN2) {
		m.inconsistent.Mark(user, rec.SD.Version())
	}
}

// onSubscribe accepts a 2-party subscription; the acknowledgement carries
// current state (PR4 recovery restores consistency through it).
func (m *ManagerRole) onSubscribe(from netsim.NodeID, p discovery.Subscribe) {
	lease := p.Lease
	if lease <= 0 {
		lease = m.nd.cfg.SubscriptionLease
	}
	m.subs.Put(from, struct{}{}, lease)
	if m.nd.cfg.CriticalUpdates {
		m.history.Interested(from)
	}
	m.nd.nw.SendUDP(m.nd.n.ID, from, m.subscribeAck())
}

// onSubscriptionRenew extends a live subscription and, crucially, runs
// SRN2: a renewal from a User marked inconsistent triggers a fresh
// notification attempt. A renewal for a purged subscription triggers PR4.
func (m *ManagerRole) onSubscriptionRenew(from netsim.NodeID, p discovery.Renew) {
	lease := p.Lease
	if lease <= 0 {
		lease = m.nd.cfg.SubscriptionLease
	}
	renewed := false
	if m.nd.cfg.Harden.StrictLease {
		// Hardened holders refuse a renewal racing (or trailing) the
		// purge; the User resubscribes via PR4 with fresh state.
		renewed = m.subs.RenewStrict(from, lease)
	} else {
		renewed = m.subs.Renew(from, lease)
	}
	if renewed {
		m.nd.nw.SendUDP(m.nd.n.ID, from, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.RenewAck{}),
			Counted: false, // lease upkeep, excluded from update effort
			Payload: discovery.RenewAck{Manager: m.nd.n.ID},
		})
		if m.inconsistent.ShouldRetry(from) {
			m.prop.Notify(from, m.record(), m.sd.Version())
		}
		return
	}
	if !m.nd.cfg.Techniques.Has(core.PR4) {
		return
	}
	m.nd.nw.SendUDP(m.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.ResubscribeRequest{}),
		Counted: true,
		Payload: discovery.ResubscribeRequest{Manager: m.nd.n.ID},
	})
}

// onSubscriberAck ends the retransmission schedule and clears SRN2 state.
func (m *ManagerRole) onSubscriberAck(from netsim.NodeID, p discovery.UpdateAck) {
	m.prop.Ack(from, p.Version)
	m.inconsistent.AckVersion(from, p.Version)
	if m.nd.cfg.CriticalUpdates {
		m.history.Confirm(from, p.Version)
	}
}

// onBye evicts a departing 2-party subscriber now instead of at lease
// expiry: the retiring User said goodbye, so no notification retry or
// SRN2 state should outlive it (the hunted zombie class).
func (m *ManagerRole) onBye(from netsim.NodeID) {
	m.subs.Drop(from)
	m.onSubscriptionExpired(from, struct{}{})
}

// onSubscriptionExpired forgets the User entirely: SRN2 state is only
// kept while the subscription is valid.
func (m *ManagerRole) onSubscriptionExpired(user netsim.NodeID, _ struct{}) {
	m.prop.Cancel(user)
	m.inconsistent.Forget(user)
	if m.nd.cfg.CriticalUpdates {
		m.history.Disinterested(user)
	}
}

// onMulticastSearch answers a matching multicast query directly (PR5a).
func (m *ManagerRole) onMulticastSearch(from netsim.NodeID, s discovery.Search) {
	if !s.Q.Matches(m.sd) {
		return
	}
	m.nd.nw.SendUDP(m.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.SearchReply{}),
		Counted: true,
		Payload: discovery.SearchReply{Recs: []discovery.ServiceRecord{m.record()}},
	})
}

// onGet serves the current description (SRC2 missed-update requests).
func (m *ManagerRole) onGet(from netsim.NodeID) {
	m.nd.nw.SendUDP(m.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.GetReply{}),
		Counted: true,
		Payload: discovery.GetReply{Rec: m.record()},
	})
}
