package frodo

import (
	"testing"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// rig builds the paper's FRODO topologies (Table 4):
//
//	3-party (a): 1 300D Registry, 1 3D Manager, 5 3D Users
//	2-party (b): 1 300D Registry, 1 300D Manager, 5 300D Users, 1 300D Backup
type rig struct {
	k  *sim.Kernel
	nw *netsim.Network

	registryNode *Node
	backupNode   *Node
	managerNode  *Node
	userNodes    []*Node

	manager *ManagerRole
	users   []*UserRole

	consistentAt map[netsim.NodeID]map[uint64]sim.Time
}

func printerSD() discovery.ServiceDescription {
	return discovery.ServiceDescription{
		DeviceType: "Printer", ServiceType: "ColorPrinter",
		Attributes: map[string]string{"PaperTray": "full"},
	}
}

func newRig(t *testing.T, seed int64, twoParty bool, nUsers int, cfg Config) *rig {
	t.Helper()
	r := &rig{k: sim.New(seed), consistentAt: map[netsim.NodeID]map[uint64]sim.Time{}}
	r.nw = netsim.MustNew(r.k, netsim.DefaultConfig())
	listener := discovery.ListenerFunc(func(at sim.Time, user, mgr netsim.NodeID, v uint64) {
		if r.consistentAt[user] == nil {
			r.consistentAt[user] = map[uint64]sim.Time{}
		}
		if _, seen := r.consistentAt[user][v]; !seen {
			r.consistentAt[user][v] = at
		}
	})

	r.registryNode = NewNode(r.nw.AddNode("Registry"), cfg, Class300D, 100)
	r.registryNode.Start(1 * sim.Second)

	mgrClass := Class3D
	if twoParty {
		mgrClass = Class300D
	}
	r.managerNode = NewNode(r.nw.AddNode("Manager"), cfg, mgrClass, 5)
	r.manager = r.managerNode.AttachManager(printerSD())
	r.managerNode.Start(2 * sim.Second)

	userClass := Class3D
	if twoParty {
		userClass = Class300D
	}
	for i := 0; i < nUsers; i++ {
		un := NewNode(r.nw.AddNode("User"), cfg, userClass, 1)
		r.users = append(r.users, un.AttachUser(discovery.Query{ServiceType: "ColorPrinter"}, listener))
		un.Start(sim.Duration(i+3) * sim.Second)
		r.userNodes = append(r.userNodes, un)
	}

	if twoParty {
		r.backupNode = NewNode(r.nw.AddNode("Backup"), cfg, Class300D, 50)
		r.backupNode.Start(1500 * sim.Millisecond)
	}
	return r
}

func (r *rig) whenConsistent(u *UserRole, version uint64) (sim.Time, bool) {
	m, ok := r.consistentAt[u.ID()]
	if !ok {
		return 0, false
	}
	at, ok := m[version]
	return at, ok
}

func (r *rig) change() {
	r.manager.ChangeService(func(a map[string]string) { a["PaperTray"] = "empty" })
}

func TestElectionSingleCandidate(t *testing.T) {
	r := newRig(t, 1, false, 0, DefaultConfig())
	r.k.Run(30 * sim.Second)
	if !r.registryNode.IsCentral() {
		t.Fatal("lone 300D node did not elect itself Central")
	}
}

func TestElectionHighestPowerWins(t *testing.T) {
	r := newRig(t, 2, true, 5, TwoPartyConfig())
	r.k.Run(60 * sim.Second)
	if !r.registryNode.IsCentral() {
		t.Fatal("highest-power node is not the Central")
	}
	for _, nd := range append(r.userNodes, r.managerNode, r.backupNode) {
		if nd.IsCentral() {
			t.Errorf("node %v also believes it is Central", nd)
		}
		if nd.Central() != r.registryNode.ID() {
			t.Errorf("node %v adopted Central %d, want %d", nd, nd.Central(), r.registryNode.ID())
		}
	}
	if !r.backupNode.IsBackup() {
		t.Error("second-most-powerful node was not appointed Backup")
	}
}

func TestBootstrapThreeParty(t *testing.T) {
	r := newRig(t, 3, false, 5, DefaultConfig())
	r.k.Run(100 * sim.Second)
	if !r.manager.Registered() {
		t.Fatal("manager not registered within 100s")
	}
	for i, u := range r.users {
		if got := u.CachedVersion(r.manager.ID()); got != 1 {
			t.Errorf("user %d cached version %d, want 1", i, got)
		}
		if !u.Subscribed() {
			t.Errorf("user %d not subscribed", i)
		}
	}
	if got := r.registryNode.Registry().Subscriptions(); got != 5 {
		t.Errorf("central has %d subscriptions, want 5 (3-party)", got)
	}
}

func TestBootstrapTwoParty(t *testing.T) {
	r := newRig(t, 4, true, 5, TwoPartyConfig())
	r.k.Run(100 * sim.Second)
	if !r.manager.Registered() {
		t.Fatal("manager not registered within 100s")
	}
	for i, u := range r.users {
		if got := u.CachedVersion(r.manager.ID()); got != 1 {
			t.Errorf("user %d cached version %d, want 1", i, got)
		}
		if !u.Subscribed() {
			t.Errorf("user %d not subscribed", i)
		}
	}
	if got := r.manager.Subscribers(); got != 5 {
		t.Errorf("manager has %d direct subscriptions, want 5 (2-party)", got)
	}
	if got := r.registryNode.Registry().Subscriptions(); got != 0 {
		t.Errorf("central has %d subscriptions, want 0 (2-party)", got)
	}
}

func TestChangePropagatesThreeParty(t *testing.T) {
	r := newRig(t, 5, false, 5, DefaultConfig())
	r.k.At(1000*sim.Second, r.change)
	r.k.Run(1100 * sim.Second)
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("user %d never reached v2", i)
		}
		if at > 1001*sim.Second {
			t.Errorf("user %d consistent at %v, want within 1s", i, at)
		}
	}
}

// Table 2: FRODO propagates N+2 messages per update: the Manager's update
// to the Central, the Central's acknowledgement, and N User updates
// (subscriber acknowledgements are uncounted receipts). m' = 7 for N = 5,
// in both subscription modes.
func TestUpdateMessageCountThreeParty(t *testing.T) {
	testUpdateCount(t, 6, false, DefaultConfig())
}

func TestUpdateMessageCountTwoParty(t *testing.T) {
	testUpdateCount(t, 7, true, TwoPartyConfig())
}

func testUpdateCount(t *testing.T, seed int64, twoParty bool, cfg Config) {
	t.Helper()
	r := newRig(t, seed, twoParty, 5, cfg)
	changeAt := 1000 * sim.Second
	r.k.At(changeAt, r.change)
	r.k.Run(1100 * sim.Second)
	var allDone sim.Time
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("user %d never consistent", i)
		}
		if at > allDone {
			allDone = at
		}
	}
	y := r.nw.Counters().CountedInWindow(changeAt, allDone+sim.Second)
	if y != 7 {
		t.Errorf("update effort y = %d, want 7 (Table 2: N+2)", y)
	}
}

// SRN2, the paper's headline technique: in the §6.2 scenario — User fully
// down across the change, notification retransmissions exhausted, the
// subscription still valid — the 2-party Manager retries when the User's
// renewal arrives, and the User regains consistency. The same scenario
// under UPnP never recovers (see the upnp package test).
func TestSRN2RecoversTwoParty(t *testing.T) {
	r := newRig(t, 8, true, 1, TwoPartyConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailBoth,
		Start: 2023 * sim.Second, Duration: 810 * sim.Second, // up at 2833
	})
	r.k.At(2507*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("SRN2 did not recover consistency")
	}
	// Recovery rides the first subscription renewal after the interfaces
	// come back at 2833s; renewals are 1620s apart (90% of the lease).
	if at < 2833*sim.Second || at > 2833*sim.Second+1700*sim.Second {
		t.Errorf("recovered at %v, want within one renewal period of 2833s", at)
	}
}

// In 3-party mode the Central runs SRN2 on behalf of the delegated
// Manager ("the task of maintaining subscriptions for resource-lean
// Managers is delegated to the Central"; Table 2 lists SRN2 for FRODO
// without qualification): the same §6.2 scenario recovers on the first
// renewal after the User's interfaces return.
func TestCentralSRN2RecoversThreeParty(t *testing.T) {
	r := newRig(t, 9, false, 1, DefaultConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailBoth,
		Start: 2023 * sim.Second, Duration: 810 * sim.Second,
	})
	r.k.At(2507*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("3-party user never recovered; the Central's delegated SRN2 should cover this")
	}
	if at < 2833*sim.Second || at > 2833*sim.Second+1700*sim.Second {
		t.Errorf("recovered at %v, want within one renewal period of 2833s", at)
	}
	// The ablation confirms SRN2 is the responsible technique.
	cfg := DefaultConfig()
	cfg.Techniques = cfg.Techniques.Without(core.SRN2)
	ra := newRig(t, 9, false, 1, cfg)
	ra.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: ra.users[0].ID(), Mode: netsim.FailBoth,
		Start: 2023 * sim.Second, Duration: 810 * sim.Second,
	})
	ra.k.At(2507*sim.Second, ra.change)
	ra.k.Run(5400 * sim.Second)
	if _, ok := ra.whenConsistent(ra.users[0], 2); ok {
		t.Error("user recovered with SRN2 ablated; another mechanism is leaking")
	}
}

// PR3: the Central purges a silent User; the User's renewal triggers an
// explicit resubscription request whose acknowledgement carries the
// updated description.
func TestPR3ResubscribeThreeParty(t *testing.T) {
	r := newRig(t, 10, false, 1, DefaultConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailTx,
		Start: 200 * sim.Second, Duration: 2200 * sim.Second, // up at 2400
	})
	r.k.At(2100*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("PR3 did not recover consistency")
	}
	if at < 2400*sim.Second || at > 2400*sim.Second+1800*sim.Second {
		t.Errorf("recovered at %v, want within one renewal period of Tx recovery", at)
	}
}

// PR4: the 2-party equivalent, at the Manager.
func TestPR4ResubscribeTwoParty(t *testing.T) {
	r := newRig(t, 11, true, 1, TwoPartyConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailTx,
		Start: 200 * sim.Second, Duration: 2200 * sim.Second,
	})
	r.k.At(2100*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("PR4 did not recover consistency")
	}
	if at < 2400*sim.Second || at > 2400*sim.Second+1800*sim.Second {
		t.Errorf("recovered at %v, want within one renewal period of Tx recovery", at)
	}
}

// PR1: a Manager whose registration the Central purged re-registers after
// recovering (renewal -> error -> full registration), and the Central
// notifies Users with standing interests using the current description.
func TestPR1ReRegistrationNotifiesUsers(t *testing.T) {
	r := newRig(t, 12, false, 3, DefaultConfig())
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.manager.ID(), Mode: netsim.FailTx,
		Start: 900 * sim.Second, Duration: 2000 * sim.Second, // up at 2900
	})
	r.k.At(1000*sim.Second, r.change) // v2 lost: manager cannot transmit
	r.k.Run(5400 * sim.Second)
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("user %d never reached v2", i)
		}
		if at < 2900*sim.Second {
			t.Errorf("user %d consistent at %v, before the manager recovered", i, at)
		}
	}
}

// Backup takeover: the Central fails for the rest of the run; the Backup
// takes over and the system keeps working — a change after the takeover
// still reaches the Users (2-party subscriptions are Manager-local, and
// the Manager re-registers with the new Central).
func TestBackupTakeover(t *testing.T) {
	r := newRig(t, 13, true, 3, TwoPartyConfig())
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.registryNode.ID(), Mode: netsim.FailBoth,
		Start: 200 * sim.Second, Duration: 5200 * sim.Second, // down for good
	})
	r.k.Run(3500 * sim.Second) // past BackupTimeout after the last announce
	if !r.backupNode.IsCentral() {
		t.Fatal("backup did not take over")
	}
	r.change()
	r.k.Run(3600 * sim.Second)
	for i, u := range r.users {
		if _, ok := r.whenConsistent(u, 2); !ok {
			t.Errorf("user %d missed the post-takeover update", i)
		}
	}
	if r.managerNode.Central() != r.backupNode.ID() {
		t.Errorf("manager's central = %d, want backup %d", r.managerNode.Central(), r.backupNode.ID())
	}
}

// When the original Central recovers, its higher power wins the role
// back; the demoted Backup steps down and the population follows.
func TestCentralRecoveryWinsBack(t *testing.T) {
	r := newRig(t, 14, true, 1, TwoPartyConfig())
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.registryNode.ID(), Mode: netsim.FailBoth,
		Start: 200 * sim.Second, Duration: 3600 * sim.Second, // up at 3800
	})
	r.k.Run(3500 * sim.Second)
	if !r.backupNode.IsCentral() {
		t.Fatal("backup did not take over during the outage")
	}
	r.k.Run(5400 * sim.Second)
	if !r.registryNode.IsCentral() {
		t.Error("recovered high-power central did not reclaim the role")
	}
	if r.backupNode.IsCentral() {
		t.Error("backup did not step down")
	}
	if r.userNodes[0].Central() != r.registryNode.ID() {
		t.Errorf("user follows central %d, want %d", r.userNodes[0].Central(), r.registryNode.ID())
	}
}

func TestThreeCCannotBeUser(t *testing.T) {
	k := sim.New(1)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	nd := NewNode(nw.AddNode(""), DefaultConfig(), Class3C, 1)
	defer func() {
		if recover() == nil {
			t.Error("3C user attachment did not panic")
		}
	}()
	nd.AttachUser(discovery.Query{}, nil)
}

func TestManagerGonePurgesAndRediscovers(t *testing.T) {
	// 3-party PR5: the Central purges the silent Manager and tells the
	// subscribed Users; they purge, search, and recover once the Manager
	// re-registers.
	r := newRig(t, 15, false, 1, DefaultConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.manager.ID(), Mode: netsim.FailBoth,
		Start: 400 * sim.Second, Duration: 2400 * sim.Second, // up at 2800
	})
	r.k.At(2000*sim.Second, r.change) // during the outage: nothing leaves
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("user never recovered after ManagerGone purge")
	}
	if at < 2800*sim.Second {
		t.Errorf("recovered at %v, before the manager was back", at)
	}
}
