package frodo

import "repro/internal/discovery"

// ElectionAnnounce is a 300D node's candidacy in the Central election:
// "The 300D nodes elect the most powerful node as the Registry." The most
// powerful candidate (ties broken by node ID) wins.
type ElectionAnnounce struct {
	Power int
}

// AppointBackup makes the receiver the Backup and synchronizes the
// Central's registry state to it: "A Backup is appointed by the Central
// to store configuration information."
type AppointBackup struct {
	Recs []discovery.ServiceRecord
}

// kindOf extends discovery.Kind with the FRODO election vocabulary.
func kindOf(p any) string {
	switch p.(type) {
	case ElectionAnnounce, *ElectionAnnounce:
		return "ElectionAnnounce"
	case AppointBackup, *AppointBackup:
		return "AppointBackup"
	default:
		return discovery.Kind(p)
	}
}
