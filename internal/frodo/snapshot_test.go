package frodo

import (
	"testing"

	"repro/internal/sim"
)

// TestCachedSnapshotSurvivesChangeService covers both FRODO subscription
// modes: snapshots held by User caches and by the Central's repository
// are immutable, so a ChangeService (copy-on-write) can never be seen
// through a previously obtained record.
func TestCachedSnapshotSurvivesChangeService(t *testing.T) {
	for _, mode := range []struct {
		name     string
		twoParty bool
		cfg      Config
	}{
		{"3party", false, DefaultConfig()},
		{"2party", true, TwoPartyConfig()},
	} {
		t.Run(mode.name, func(t *testing.T) {
			r := newRig(t, 11, mode.twoParty, 2, mode.cfg)
			r.k.Run(200 * sim.Second)
			u := r.users[0]

			userRec, ok := u.cache.Get(r.manager.ID())
			if !ok || userRec.SD.Version() != 1 {
				t.Fatalf("user did not cache v1: %+v ok=%v", userRec, ok)
			}
			centralRec, ok := r.registryNode.Registry().registrations.Get(r.manager.ID())
			if !ok || centralRec.SD.Version() != 1 {
				t.Fatalf("central does not hold v1: %+v ok=%v", centralRec, ok)
			}
			v1User, v1Central := userRec.SD, centralRec.SD
			rendered := v1User.String()

			r.change()
			r.k.Run(400 * sim.Second)

			if v1User.Version() != 1 || v1User.Attr("PaperTray") != "full" || v1User.String() != rendered {
				t.Errorf("ChangeService mutated the user's old snapshot: %v", v1User)
			}
			if v1Central.Version() != 1 || v1Central.Attr("PaperTray") != "full" {
				t.Errorf("ChangeService mutated the central's old snapshot: %v", v1Central)
			}
			nowUser, _ := u.cache.Get(r.manager.ID())
			nowCentral, _ := r.registryNode.Registry().registrations.Get(r.manager.ID())
			if nowUser.SD.Version() != 2 || nowCentral.SD.Version() != 2 {
				t.Fatalf("v2 did not propagate: user=%v central=%v", nowUser.SD, nowCentral.SD)
			}
			if nowUser.SD != r.manager.SD() || nowCentral.SD != r.manager.SD() {
				t.Error("v2 snapshot should be one shared instance across the stack")
			}
		})
	}
}
