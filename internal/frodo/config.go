// Package frodo implements the paper's own service discovery protocol.
//
// FRODO targets the home environment with two goals (§3):
// resource-awareness, served by a device class hierarchy — 3C (Cent)
// devices are Managers only, 3D (Dollar) devices are resource-lean
// Managers and Users, 300D (300 Dollar) devices additionally carry
// Registry capability — and robustness, served by electing the most
// powerful 300D node as the Central (the Registry), appointing a Backup
// that takes over on Central failure, and avoiding any dependence on
// transport-layer recovery: all traffic is UDP with selective
// acknowledgements and retransmissions.
//
// Subscriptions are 3-party for 3C/3D Managers (the Central maintains the
// subscriptions and propagates updates) and 2-party for 300D Managers
// (Users subscribe at the Manager directly). FRODO is the only protocol
// in the study implementing SRN2: a Manager that failed to notify a User
// caches that fact and retries when the User's subscription renewal
// arrives.
package frodo

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// DiscoveryGroup is the multicast group all FRODO nodes join.
const DiscoveryGroup netsim.Group = 1

// Class is the FRODO device class (§3).
type Class uint8

const (
	// Class3C devices are simple, resource-restricted Managers.
	Class3C Class = iota
	// Class3D devices can be Managers and Users with limited behaviour.
	Class3D
	// Class300D devices can additionally become the Central or Backup.
	Class300D
)

func (c Class) String() string {
	switch c {
	case Class3C:
		return "3C"
	case Class3D:
		return "3D"
	case Class300D:
		return "300D"
	default:
		return "?"
	}
}

// ClassAttr is the well-known service attribute carrying the Manager's
// device class through registry records, so a User can "detect which
// subscription process to use, based on the device class of the Manager"
// (§4.2).
const ClassAttr = "__frodo_class"

// Config collects the model parameters; DefaultConfig reproduces §5.
type Config struct {
	// AnnouncePeriod and AnnounceCopies drive the Central's multicast
	// announcement train ("the Registry sends 2 multicast announcements
	// every 1200s").
	AnnouncePeriod sim.Duration
	AnnounceCopies int
	// NodeAnnouncePeriod paces the presence announcements 3D/3C nodes
	// multicast until the Registry is discovered.
	NodeAnnouncePeriod sim.Duration
	// RegistrationLease, SubscriptionLease and CacheLease are the 1800s
	// leases of §5 Step 4.
	RegistrationLease sim.Duration
	SubscriptionLease sim.Duration
	CacheLease        sim.Duration
	// CentralTimeout is how long a node keeps believing in a silent
	// Central. It exceeds BackupTimeout so the Backup takes over before
	// the population purges the Central.
	CentralTimeout sim.Duration
	// BackupTimeout is how long the Backup waits for Central
	// announcements before taking over.
	BackupTimeout sim.Duration
	// ElectionWindow is how long a 300D candidate collects competing
	// candidacies before declaring itself Central.
	ElectionWindow sim.Duration
	// ElectionRetry restarts a stalled election (the expected winner
	// never announced).
	ElectionRetry sim.Duration
	// SearchRetryPeriod is how often a User with an unmet requirement
	// repeats its search (unicast to the Central, multicast when the
	// Central is not responding — PR5).
	SearchRetryPeriod sim.Duration
	// SearchBurst bounds how many searches a purge event triggers.
	// Resource-aware devices do not poll forever: after the burst the
	// User waits passively for the Registry's notification of the
	// re-registered service (PR1) or for a Central change. This is the
	// "weaker recovery with PR5" of §6.2: "Users depend on the Registry".
	SearchBurst int
	// NotifyRetry is the SRN1 schedule for update notifications;
	// ControlRetry covers registrations and subscriptions.
	NotifyRetry  core.RetryPolicy
	ControlRetry core.RetryPolicy
	// PollPeriod enables CM2, pull-based consistency maintenance (§4.2):
	// when positive, the User periodically requests the current
	// description of every cached service from its lessee (or the
	// Central), persistently. Zero disables polling.
	PollPeriod sim.Duration
	// CriticalUpdates switches the critical-update scenario on: SRC1
	// (unlimited retransmission) replaces SRN1, updates carry sequence
	// numbers, receivers monitor gaps (SRC2), and the Manager keeps the
	// update history until all interested Users confirmed it.
	CriticalUpdates bool
	// Techniques enables recovery techniques; ablations flip bits.
	Techniques core.TechniqueSet
	// Harden enables the protocol-hardening mechanisms (strict lease
	// enforcement, Central claim retraction and liveness repair,
	// retire-time Bye frames); set via internal/harden. The zero value
	// is the paper-faithful baseline.
	Harden discovery.Hardening
}

// DefaultConfig returns the paper's FRODO parameters for 3-party
// subscription topologies.
func DefaultConfig() Config {
	return Config{
		AnnouncePeriod:     core.FrodoAnnouncePeriod,
		AnnounceCopies:     core.FrodoAnnounceCopies,
		NodeAnnouncePeriod: 1200 * sim.Second,
		RegistrationLease:  core.RegistrationLease,
		SubscriptionLease:  core.SubscriptionLease,
		CacheLease:         core.RegistrationLease,
		CentralTimeout:     3000 * sim.Second,
		BackupTimeout:      2460 * sim.Second,
		ElectionWindow:     5 * sim.Second,
		ElectionRetry:      15 * sim.Second,
		SearchRetryPeriod:  1200 * sim.Second,
		SearchBurst:        3,
		NotifyRetry:        core.FrodoNotifyRetry,
		ControlRetry:       core.FrodoControlRetry,
		Techniques:         core.FrodoThreePartyTechniques(),
	}
}

// TwoPartyConfig returns the configuration for the 2-party subscription
// topology (300D Managers).
func TwoPartyConfig() Config {
	cfg := DefaultConfig()
	cfg.Techniques = core.FrodoTwoPartyTechniques()
	return cfg
}
