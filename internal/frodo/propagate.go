package frodo

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// propagator drives acknowledged update notifications to a set of Users,
// one outstanding notification per User. It implements SRN1 (limited
// retransmission schedule) or SRC1 (unlimited, critical updates) and
// hands exhausted notifications to an SRN2 callback when the owner
// enables it. Both the Central (3-party) and 300D Managers (2-party) use
// it.
type propagator struct {
	k      *sim.Kernel
	nw     *netsim.Network
	from   netsim.NodeID
	policy core.RetryPolicy
	// onExhausted runs when the schedule gives up on a User (nil: drop),
	// receiving the record that could not be delivered.
	onExhausted func(user netsim.NodeID, rec discovery.ServiceRecord)

	pending map[netsim.NodeID]*pendingNotify
}

type pendingNotify struct {
	version uint64
	retry   *core.Retry
}

func newPropagator(k *sim.Kernel, nw *netsim.Network, from netsim.NodeID,
	policy core.RetryPolicy, onExhausted func(netsim.NodeID, discovery.ServiceRecord)) *propagator {
	return &propagator{k: k, nw: nw, from: from, policy: policy,
		onExhausted: onExhausted, pending: map[netsim.NodeID]*pendingNotify{}}
}

// Notify starts (or restarts) the acknowledged delivery of rec to user.
// A newer notification supersedes an outstanding one — "the service
// changes again, requiring the Manager to reset the notification
// process".
func (p *propagator) Notify(user netsim.NodeID, rec discovery.ServiceRecord, seq uint64) {
	if prev, ok := p.pending[user]; ok {
		prev.retry.Stop()
	}
	pn := &pendingNotify{version: rec.SD.Version}
	rec = rec.Clone()
	pn.retry = core.NewRetry(p.k, p.policy, func(attempt int) {
		p.nw.SendUDP(p.from, user, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Update{}),
			Counted: true,
			Payload: discovery.Update{Rec: rec, Seq: seq},
		})
	}, func() {
		delete(p.pending, user)
		if p.onExhausted != nil {
			p.onExhausted(user, rec)
		}
	})
	p.pending[user] = pn
	pn.retry.Start()
}

// Ack processes a User's acknowledgement for a version: an ack at or
// above the outstanding version stops the retransmission.
func (p *propagator) Ack(user netsim.NodeID, version uint64) {
	pn, ok := p.pending[user]
	if !ok {
		return
	}
	if version >= pn.version {
		pn.retry.Stop()
		delete(p.pending, user)
	}
}

// Cancel abandons the outstanding notification to one User (its
// subscription expired).
func (p *propagator) Cancel(user netsim.NodeID) {
	if pn, ok := p.pending[user]; ok {
		pn.retry.Stop()
		delete(p.pending, user)
	}
}

// CancelAll abandons everything (the node lost its Central role).
func (p *propagator) CancelAll() {
	for user, pn := range p.pending {
		pn.retry.Stop()
		delete(p.pending, user)
	}
}

// Outstanding reports how many notifications are still unacknowledged.
func (p *propagator) Outstanding() int { return len(p.pending) }
