package frodo

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// propagator drives acknowledged update notifications to a set of Users,
// one outstanding notification per User. It implements SRN1 (limited
// retransmission schedule) or SRC1 (unlimited, critical updates) and
// hands exhausted notifications to an SRN2 callback when the owner
// enables it. Both the Central (3-party) and 300D Managers (2-party) use
// it.
//
// Notification state is pooled: each pendingNotify embeds its retry
// schedule and two bound callbacks built once, and recycled entries are
// reused for later notifications, so steady-state fan-out allocates only
// the wire payloads. The record carried by a notification shares the
// immutable description snapshot — no copies.
type propagator struct {
	k      *sim.Kernel
	nw     *netsim.Network
	from   netsim.NodeID
	policy core.RetryPolicy
	// onExhausted runs when the schedule gives up on a User (nil: drop),
	// receiving the record that could not be delivered.
	onExhausted func(user netsim.NodeID, rec discovery.ServiceRecord)

	pending map[netsim.NodeID]*pendingNotify
	free    *pendingNotify
}

type pendingNotify struct {
	p    *propagator
	user netsim.NodeID
	rec  discovery.ServiceRecord
	seq  uint64
	// out is the boxed wire payload, built once per Notify so the
	// retransmission schedule reuses it across attempts.
	out netsim.Outgoing

	retry     core.Retry
	sendFn    func(attempt int)
	exhaustFn func()
	next      *pendingNotify // free-list link while recycled
}

func newPropagator(k *sim.Kernel, nw *netsim.Network, from netsim.NodeID,
	policy core.RetryPolicy, onExhausted func(netsim.NodeID, discovery.ServiceRecord)) *propagator {
	return &propagator{k: k, nw: nw, from: from, policy: policy,
		onExhausted: onExhausted, pending: map[netsim.NodeID]*pendingNotify{}}
}

// alloc takes a notification record from the free list, or builds a new
// one with its bound callbacks and embedded retry schedule.
func (p *propagator) alloc() *pendingNotify {
	pn := p.free
	if pn != nil {
		p.free = pn.next
		pn.next = nil
		return pn
	}
	pn = &pendingNotify{p: p}
	pn.sendFn = func(int) {
		pn.p.nw.SendUDP(pn.p.from, pn.user, pn.out)
	}
	pn.exhaustFn = func() {
		pp := pn.p
		delete(pp.pending, pn.user)
		user, rec := pn.user, pn.rec
		pp.release(pn)
		if pp.onExhausted != nil {
			pp.onExhausted(user, rec)
		}
	}
	pn.retry.Init(p.k, p.policy, pn.sendFn, pn.exhaustFn)
	return pn
}

func (p *propagator) release(pn *pendingNotify) {
	pn.rec = discovery.ServiceRecord{}
	pn.out = netsim.Outgoing{}
	pn.next = p.free
	p.free = pn
}

// Notify starts (or restarts) the acknowledged delivery of rec to user.
// A newer notification supersedes an outstanding one — "the service
// changes again, requiring the Manager to reset the notification
// process".
func (p *propagator) Notify(user netsim.NodeID, rec discovery.ServiceRecord, seq uint64) {
	pn, ok := p.pending[user]
	if ok {
		pn.retry.Stop()
	} else {
		pn = p.alloc()
		pn.user = user
		p.pending[user] = pn
	}
	pn.rec = rec
	pn.seq = seq
	pn.out = netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Update{}),
		Counted: true,
		Payload: discovery.Update{Rec: rec, Seq: seq},
	}
	pn.retry.SetPolicy(p.policy)
	pn.retry.Start()
}

// Ack processes a User's acknowledgement for a version: an ack at or
// above the outstanding version stops the retransmission.
func (p *propagator) Ack(user netsim.NodeID, version uint64) {
	pn, ok := p.pending[user]
	if !ok {
		return
	}
	if version >= pn.rec.SD.Version() {
		pn.retry.Stop()
		delete(p.pending, user)
		p.release(pn)
	}
}

// Cancel abandons the outstanding notification to one User (its
// subscription expired).
func (p *propagator) Cancel(user netsim.NodeID) {
	if pn, ok := p.pending[user]; ok {
		pn.retry.Stop()
		delete(p.pending, user)
		p.release(pn)
	}
}

// CancelAll abandons everything (the node lost its Central role).
func (p *propagator) CancelAll() {
	for user, pn := range p.pending {
		pn.retry.Stop()
		delete(p.pending, user)
		p.release(pn)
	}
}

// Rearm resets the propagator for workspace reuse after a Kernel.Reset:
// outstanding notifications are recycled with their event references
// dropped, never canceled (the events no longer exist).
func (p *propagator) Rearm() {
	for user, pn := range p.pending {
		pn.retry.Rearm()
		delete(p.pending, user)
		p.release(pn)
	}
}

// Outstanding reports how many notifications are still unacknowledged.
func (p *propagator) Outstanding() int { return len(p.pending) }
