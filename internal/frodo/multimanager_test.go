package frodo

import (
	"testing"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Two Managers with different services, two Users with different
// requirements: subscriptions, updates and purges must route to the
// right parties only.
func TestMultiManagerRouting(t *testing.T) {
	k := sim.New(11)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	cfg := DefaultConfig()

	central := NewNode(nw.AddNode("Central"), cfg, Class300D, 100)
	central.Start(1 * sim.Second)

	printerNode := NewNode(nw.AddNode("Printer"), cfg, Class3D, 5)
	printer := printerNode.AttachManager(discovery.ServiceDescription{
		DeviceType: "Printer", ServiceType: "ColorPrinter",
		Attributes: map[string]string{"tray": "full"},
	})
	printerNode.Start(2 * sim.Second)

	camNode := NewNode(nw.AddNode("Camera"), cfg, Class3D, 5)
	cam := camNode.AttachManager(discovery.ServiceDescription{
		DeviceType: "Camera", ServiceType: "VideoFeed",
		Attributes: map[string]string{"res": "720p"},
	})
	camNode.Start(2500 * sim.Millisecond)

	versions := map[netsim.NodeID]map[netsim.NodeID]uint64{} // user -> mgr -> v
	listener := discovery.ListenerFunc(func(_ sim.Time, user, mgr netsim.NodeID, v uint64) {
		if versions[user] == nil {
			versions[user] = map[netsim.NodeID]uint64{}
		}
		if v > versions[user][mgr] {
			versions[user][mgr] = v
		}
	})

	puNode := NewNode(nw.AddNode("PrintUser"), cfg, Class3D, 1)
	pu := puNode.AttachUser(discovery.Query{ServiceType: "ColorPrinter"}, listener)
	puNode.Start(3 * sim.Second)
	cuNode := NewNode(nw.AddNode("CamUser"), cfg, Class3D, 1)
	cu := cuNode.AttachUser(discovery.Query{ServiceType: "VideoFeed"}, listener)
	cuNode.Start(4 * sim.Second)

	k.Run(100 * sim.Second)
	if got := central.Registry().Registrations(); got != 2 {
		t.Fatalf("central holds %d registrations, want 2", got)
	}
	if pu.CachedVersion(printer.ID()) != 1 || cu.CachedVersion(cam.ID()) != 1 {
		t.Fatal("users did not discover their services")
	}
	if pu.CachedVersion(cam.ID()) != 0 || cu.CachedVersion(printer.ID()) != 0 {
		t.Error("users cached services they never asked for")
	}

	// Each change reaches only the interested user.
	printer.ChangeService(func(a map[string]string) { a["tray"] = "empty" })
	k.Run(200 * sim.Second)
	if versions[pu.ID()][printer.ID()] != 2 {
		t.Error("printer user missed the printer update")
	}
	if versions[cu.ID()][printer.ID()] != 0 {
		t.Error("camera user received the printer update")
	}

	cam.ChangeService(func(a map[string]string) { a["res"] = "1080p" })
	k.Run(300 * sim.Second)
	if versions[cu.ID()][cam.ID()] != 2 {
		t.Error("camera user missed the camera update")
	}
	if versions[pu.ID()][cam.ID()] != 0 {
		t.Error("printer user received the camera update")
	}

	// Purging one manager must not disturb the other's subscribers.
	nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: printer.ID(), Mode: netsim.FailBoth,
		Start: 320 * sim.Second, Duration: 5000 * sim.Second,
	})
	k.Run(2500 * sim.Second) // printer registration expires, ManagerGone
	if got := central.Registry().Registrations(); got != 1 {
		t.Errorf("central holds %d registrations after printer death, want 1", got)
	}
	cam.ChangeService(func(a map[string]string) { a["res"] = "4k" })
	k.Run(2600 * sim.Second)
	if versions[cu.ID()][cam.ID()] != 3 {
		t.Error("camera update lost after unrelated manager purge")
	}
}
