package frodo

import (
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// subKey identifies one 3-party subscription at the Central.
type subKey struct {
	user    netsim.NodeID
	manager netsim.NodeID
}

// RegistryRole is the 300D Registry capability. It is dormant until the
// node wins the Central election (or takes over as Backup), after which
// it is "the repository for service descriptions [that] also actively
// monitors the system for new and defunct nodes" (§3).
type RegistryRole struct {
	nd *Node

	active bool

	// Backup machinery: when we are the Central, backupID is the node we
	// appointed; when we are the Backup, backupRecs is the synced state
	// and backupMonitor watches the Central's announcements.
	backup        bool
	appointedBy   netsim.NodeID
	backupID      netsim.NodeID
	backupRecs    []discovery.ServiceRecord
	backupMonitor *sim.Deadline

	announcer *core.Announcer

	registrations *discovery.LeaseTable[netsim.NodeID, discovery.ServiceRecord]
	subs          *discovery.LeaseTable[subKey, struct{}]
	// provisional marks registrations seeded from Backup sync rather than
	// established by a Register on the wire (StrictLease only). They serve
	// queries, but renewals are refused until the Manager re-registers:
	// the lease the Backup inherited was granted by the old Central, and a
	// strict holder does not extend leases it never granted.
	provisional map[netsim.NodeID]bool
	// interests holds standing queries from Users ("Users receive
	// notifications of new service registrations by explicitly
	// requesting for service notification, when they first establish
	// contact with the Registry"); unlike Jini, FRODO also serves
	// existing registrations via the immediate query reply.
	interests *discovery.LeaseTable[netsim.NodeID, discovery.Query]

	// Search-reply cache, content-addressed: replies are rebuilt into a
	// reusable scratch and only boxed afresh when the match set actually
	// differs from the last reply sent. At boot every User queries for
	// the same requirement against a stable repository, so one boxed
	// reply (and its record slice, shared read-only) serves the whole
	// population. searchRecs is immutable once published in searchOut.
	searchScratch []discovery.ServiceRecord
	searchRecs    []discovery.ServiceRecord
	searchOut     netsim.Outgoing

	prop *propagator
	// inconsistent is SRN2 run by the Central on behalf of the
	// resource-lean Managers whose subscriptions it maintains ("the task
	// of maintaining subscriptions for resource-lean Managers is
	// delegated to the Central"): Users whose notification exhausted the
	// SRN1 schedule are retried when their renewal arrives. Keyed per
	// Manager, since each service versions independently.
	inconsistent map[netsim.NodeID]*core.InconsistentSet
}

func newRegistryRole(nd *Node) *RegistryRole {
	r := &RegistryRole{nd: nd, backupID: netsim.NoNode, appointedBy: netsim.NoNode}
	r.backupMonitor = sim.NewDeadline(nd.k, r.takeover)
	r.registrations = discovery.NewLeaseTable[netsim.NodeID, discovery.ServiceRecord](nd.k, r.onRegistrationExpired)
	r.subs = discovery.NewLeaseTable[subKey, struct{}](nd.k, r.onSubscriptionExpired)
	r.interests = discovery.NewLeaseTable[netsim.NodeID, discovery.Query](nd.k, nil)
	announceOut := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Announce{}),
		Counted: true,
		Payload: discovery.Announce{Role: discovery.RoleRegistry, Power: nd.power,
			CacheLease: nd.cfg.CacheLease},
	}
	r.announcer = core.NewAnnouncer(nd.nw, nd.n.ID, DiscoveryGroup,
		nd.cfg.AnnouncePeriod, nd.cfg.AnnounceCopies, func() netsim.Outgoing { return announceOut })
	retry := nd.cfg.NotifyRetry
	if nd.cfg.CriticalUpdates {
		retry = core.FrodoCriticalRetry
	}
	r.inconsistent = map[netsim.NodeID]*core.InconsistentSet{}
	r.provisional = map[netsim.NodeID]bool{}
	r.prop = newPropagator(nd.k, nd.nw, nd.n.ID, retry, r.onNotifyExhausted)
	return r
}

// rearm resets the capability to its construction-time state for
// workspace reuse. Pooled SRN2 sets are kept (emptied) so re-elected
// Centrals reuse their capacity.
func (r *RegistryRole) rearm() {
	r.active = false
	r.backup = false
	r.appointedBy = netsim.NoNode
	r.backupID = netsim.NoNode
	r.backupRecs = nil
	r.backupMonitor.Rearm()
	r.announcer.Rearm()
	r.registrations.Rearm()
	r.subs.Rearm()
	r.interests.Rearm()
	r.prop.Rearm()
	for _, set := range r.inconsistent {
		set.Reset()
	}
	clear(r.provisional)
	r.searchRecs = nil
	r.searchOut = netsim.Outgoing{}
}

// onNotifyExhausted hands an undeliverable notification to SRN2.
func (r *RegistryRole) onNotifyExhausted(user netsim.NodeID, rec discovery.ServiceRecord) {
	if !r.nd.cfg.Techniques.Has(core.SRN2) {
		return
	}
	r.inconsistentFor(rec.Manager).Mark(user, rec.SD.Version())
}

// inconsistentFor returns (creating on demand) the SRN2 set of one
// Manager's service.
func (r *RegistryRole) inconsistentFor(manager netsim.NodeID) *core.InconsistentSet {
	set, ok := r.inconsistent[manager]
	if !ok {
		set = core.NewInconsistentSet()
		r.inconsistent[manager] = set
	}
	return set
}

// Registrations reports the number of live registrations (diagnostics).
func (r *RegistryRole) Registrations() int { return r.registrations.Len() }

// Subscriptions reports the number of live 3-party subscriptions.
func (r *RegistryRole) Subscriptions() int { return r.subs.Len() }

// activate turns the capability on: this node is now the Central.
func (r *RegistryRole) activate() {
	if r.active {
		return
	}
	r.active = true
	r.backup = false
	r.backupMonitor.Clear()
	r.nd.central = r.nd.n.ID
	r.nd.centralPower = r.nd.power
	r.nd.centralLease.Clear()
	r.nd.nodeAnnounce.Stop()
	// Seed the repository with state synced while we were the Backup.
	for _, rec := range r.backupRecs {
		if _, ok := r.registrations.Get(rec.Manager); !ok {
			r.registrations.Put(rec.Manager, rec, r.nd.cfg.RegistrationLease)
			if r.nd.cfg.Harden.StrictLease {
				r.provisional[rec.Manager] = true
			}
		}
	}
	r.backupRecs = nil
	r.announcer.AnnounceNow()
	r.announcer.Start(r.nd.cfg.AnnouncePeriod)
	r.maybeAppointBackup()
}

// deactivate demotes the node (a stronger Central claimed the role). The
// tables are kept: if the node is ever re-elected it resumes with its
// last known state, like a device whose interfaces failed. Hardened
// demotion retracts the claim on the wire: peers (and the verifier's
// claim ledger) would otherwise carry the stale Central until its
// announce lease ran out.
func (r *RegistryRole) deactivate() {
	if !r.active {
		return
	}
	r.active = false
	r.announcer.Stop()
	r.prop.CancelAll()
	if r.nd.cfg.Harden.CentralRepair {
		r.nd.nw.Multicast(r.nd.n.ID, DiscoveryGroup, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Bye{}),
			Counted: true,
			Payload: discovery.Bye{Role: discovery.RoleRegistry},
		}, 1)
	}
}

// onBye evicts every lease the departing node holds: its registration if
// it was a Manager, its standing interest and 3-party subscriptions if it
// was a User. Explicit cleanup mirrors the expiry cascades Drop skips.
func (r *RegistryRole) onBye(from netsim.NodeID) {
	r.registrations.Drop(from)
	delete(r.provisional, from)
	r.interests.Drop(from)
	r.subs.EachKey(func(k subKey) {
		if k.user != from {
			return
		}
		r.subs.Drop(k)
		r.prop.Cancel(k.user)
		if set, ok := r.inconsistent[k.manager]; ok {
			set.Forget(k.user)
		}
	})
}

// quiesce disarms every timer and lease the capability holds, for node
// retirement. Only valid on a node that is neither Central nor Backup.
func (r *RegistryRole) quiesce() {
	r.backupMonitor.Clear()
	r.announcer.Stop()
	r.prop.CancelAll()
	r.registrations.Clear()
	r.subs.Clear()
	r.interests.Clear()
	clear(r.provisional)
}

// onCentralSeen refreshes the Backup's takeover timer on every sign of
// life from the Central.
func (r *RegistryRole) onCentralSeen() {
	if r.backup && !r.active {
		r.backupMonitor.SetAfter(r.nd.cfg.BackupTimeout)
	}
}

// takeover fires when the Central has been silent for the Backup
// timeout: "The Backup takes over automatically in case of Central
// failure" (§3).
func (r *RegistryRole) takeover() {
	if !r.backup || r.active {
		return
	}
	r.activate()
}

// onAppointBackup installs this node as the Backup and stores the synced
// registry state.
func (r *RegistryRole) onAppointBackup(from netsim.NodeID, p AppointBackup) {
	if r.active {
		return
	}
	r.backup = true
	r.appointedBy = from
	r.backupRecs = append(r.backupRecs[:0], p.Recs...)
	r.backupMonitor.SetAfter(r.nd.cfg.BackupTimeout)
}

// maybeAppointBackup appoints the most powerful other 300D node this node
// has seen as Backup and syncs state to it.
func (r *RegistryRole) maybeAppointBackup() {
	best := netsim.NoNode
	bestPow := -1
	for id, pow := range r.nd.known300D {
		if id == r.nd.n.ID {
			continue
		}
		if pow > bestPow || (pow == bestPow && id > best) {
			best = id
			bestPow = pow
		}
	}
	if best == netsim.NoNode {
		return
	}
	r.backupID = best
	r.syncBackup()
}

// syncBackup pushes the current registrations to the Backup.
func (r *RegistryRole) syncBackup() {
	if r.backupID == netsim.NoNode {
		return
	}
	recs := []discovery.ServiceRecord{}
	r.registrations.Each(func(_ netsim.NodeID, rec discovery.ServiceRecord) {
		recs = append(recs, rec)
	})
	r.nd.nw.SendUDP(r.nd.n.ID, r.backupID, netsim.Outgoing{
		Kind:    kindOf(AppointBackup{}),
		Counted: true,
		Payload: AppointBackup{Recs: recs},
	})
}

// onRegister stores the Manager's service. A new registration — or a
// re-registration with changed content — triggers PR1: "When the Manager
// re-registers, the Registry notifies interested Users of the new
// registration."
func (r *RegistryRole) onRegister(from netsim.NodeID, p discovery.Register) {
	prev, existed := r.registrations.Get(from)
	lease := p.Lease
	if lease <= 0 {
		lease = r.nd.cfg.RegistrationLease
	}
	r.registrations.Put(from, p.Rec, lease)
	delete(r.provisional, from) // a real Register establishes the lease
	r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.RegisterAck{}),
		Counted: true,
		Payload: discovery.RegisterAck{},
	})
	if !existed || prev.SD.Version() != p.Rec.SD.Version() {
		if r.nd.cfg.Techniques.Has(core.PR1) {
			r.notifyInterested(p.Rec)
		}
		r.syncBackup()
	}
}

// notifyInterested propagates a (re-)registered record to subscribers of
// that Manager and to Users with matching standing interests. The fan-out
// order is deterministic (sorted by node ID) so runs replay exactly.
func (r *RegistryRole) notifyInterested(rec discovery.ServiceRecord) {
	targets := map[netsim.NodeID]bool{}
	r.subs.Each(func(k subKey, _ struct{}) {
		if k.manager == rec.Manager {
			targets[k.user] = true
		}
	})
	r.interests.Each(func(user netsim.NodeID, q discovery.Query) {
		if q.Matches(rec.SD) {
			targets[user] = true
		}
	})
	ordered := make([]netsim.NodeID, 0, len(targets))
	for user := range targets {
		ordered = append(ordered, user)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, user := range ordered {
		r.prop.Notify(user, rec, rec.SD.Version())
	}
}

// onUpdate handles a Manager's repository update (Fig. 1): refresh the
// stored record, acknowledge, and propagate to 3-party subscribers with
// the SRN1 retransmission schedule (exhaustions fall through to SRN2).
func (r *RegistryRole) onUpdate(from netsim.NodeID, p discovery.Update) {
	healed := false
	if !r.registrations.Update(from, p.Rec) {
		if r.nd.cfg.Harden.StrictLease {
			// Hardened registries never heal the repository silently: the
			// registration lease expired, so the Manager must re-register
			// on the wire (its RenewError handler does exactly that). A
			// silent Put here re-creates a lease no Register message ever
			// established — the divergence behind the hunted lease-purge
			// violations.
			r.renewError(from)
			return
		}
		// Unknown Manager (we purged it, or we are a fresh Central):
		// treat the update as a registration so the system heals. That
		// makes it a registration *event*, so interested Users are
		// notified exactly as for an explicit re-registration (PR1) —
		// otherwise the healed registration would be invisible to Users
		// whose only hope is the Registry's push.
		r.registrations.Put(from, p.Rec, r.nd.cfg.RegistrationLease)
		healed = true
	}
	r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.UpdateAck{}),
		Counted: true,
		Payload: discovery.UpdateAck{Manager: from, Version: p.Rec.SD.Version(),
			SenderRole: discovery.RoleRegistry},
	})
	r.inconsistentFor(from).ResetVersion(p.Rec.SD.Version())
	if healed {
		if r.nd.cfg.Techniques.Has(core.PR1) {
			r.notifyInterested(p.Rec)
		}
		r.syncBackup()
		return
	}
	r.subs.Each(func(k subKey, _ struct{}) {
		if k.manager == from {
			r.prop.Notify(k.user, p.Rec, p.Seq)
		}
	})
}

// onSubscriberAck stops the retransmission schedule for an acknowledged
// update and clears the User's SRN2 mark.
func (r *RegistryRole) onSubscriberAck(from netsim.NodeID, p discovery.UpdateAck) {
	r.prop.Ack(from, p.Version)
	if set, ok := r.inconsistent[p.Manager]; ok {
		set.AckVersion(from, p.Version)
	}
}

// onSearch answers a unicast query and records the standing interest.
// The reply is content-addressed against the last one sent: matches are
// collected into a reusable scratch, and only a changed match set builds
// (and boxes) a fresh reply.
func (r *RegistryRole) onSearch(from netsim.NodeID, s discovery.Search) {
	r.interests.Put(from, s.Q, r.nd.cfg.SubscriptionLease)
	scratch := r.searchScratch[:0]
	r.registrations.Each(func(_ netsim.NodeID, rec discovery.ServiceRecord) {
		if s.Q.Matches(rec.SD) {
			scratch = append(scratch, rec)
		}
	})
	r.searchScratch = scratch
	if r.searchOut.Payload == nil || !slices.Equal(scratch, r.searchRecs) {
		r.searchRecs = slices.Clone(scratch)
		r.searchOut = netsim.Outgoing{
			Kind:    discovery.Kind(discovery.SearchReply{}),
			Counted: true,
			Payload: discovery.SearchReply{Recs: r.searchRecs},
		}
	}
	r.nd.nw.SendUDP(r.nd.n.ID, from, r.searchOut)
}

// onGet serves the current record (SRC2 missed-update requests).
func (r *RegistryRole) onGet(from netsim.NodeID, p discovery.Get) {
	rec, ok := r.registrations.Get(p.Manager)
	if !ok {
		return
	}
	r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.GetReply{}),
		Counted: true,
		Payload: discovery.GetReply{Rec: rec},
	})
}

// onSubscribe stores a 3-party subscription; the acknowledgement carries
// the current service state, which is how PR3 resubscription restores
// consistency.
func (r *RegistryRole) onSubscribe(from netsim.NodeID, p discovery.Subscribe) {
	lease := p.Lease
	if lease <= 0 {
		lease = r.nd.cfg.SubscriptionLease
	}
	r.subs.Put(subKey{user: from, manager: p.Manager}, struct{}{}, lease)
	ack := discovery.SubscribeAck{Manager: p.Manager}
	if rec, ok := r.registrations.Get(p.Manager); ok {
		ack.Rec = rec
	}
	r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.SubscribeAck{}),
		Counted: true,
		Payload: ack,
	})
}

// onSubscriptionRenew extends a live subscription; a renewal for a purged
// one triggers PR3: "Registry requests the User to resubscribe." The
// response to the resubscription is the updated service description.
func (r *RegistryRole) onSubscriptionRenew(from netsim.NodeID, p discovery.Renew) {
	lease := p.Lease
	if lease <= 0 {
		lease = r.nd.cfg.SubscriptionLease
	}
	renewInterest := r.interests.Renew
	renewSub := r.subs.Renew
	if r.nd.cfg.Harden.StrictLease {
		renewInterest = r.interests.RenewStrict
		renewSub = r.subs.RenewStrict
	}
	if p.Manager == netsim.NoNode {
		// Interest-only renewal: the User maintains its standing
		// notification request while its requirement is unmet.
		if renewInterest(from, lease) {
			return
		}
		r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.RenewError{}),
			Counted: true,
			Payload: discovery.RenewError{Manager: netsim.NoNode},
		})
		return
	}
	renewInterest(from, lease)
	if renewSub(subKey{user: from, manager: p.Manager}, lease) {
		r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.RenewAck{}),
			Counted: false, // lease upkeep, excluded from update effort
			Payload: discovery.RenewAck{Manager: p.Manager},
		})
		// SRN2, delegated: retry the notification this User missed.
		if set, ok := r.inconsistent[p.Manager]; ok && set.ShouldRetry(from) {
			if rec, live := r.registrations.Get(p.Manager); live {
				r.prop.Notify(from, rec, rec.SD.Version())
			}
		}
		return
	}
	if !r.nd.cfg.Techniques.Has(core.PR3) {
		return
	}
	r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.ResubscribeRequest{}),
		Counted: true,
		Payload: discovery.ResubscribeRequest{Manager: p.Manager},
	})
}

// onRegistrationRenew extends a Manager's registration lease. Renewals
// carry no service data; a renewal for a purged registration is answered
// with an error so the Manager re-registers in full (PR1).
func (r *RegistryRole) onRegistrationRenew(from netsim.NodeID, p discovery.Renew) {
	lease := p.Lease
	if lease <= 0 {
		lease = r.nd.cfg.RegistrationLease
	}
	renewed := false
	if r.nd.cfg.Harden.StrictLease {
		// Strict holders refuse renewals racing the purge, and renewals
		// of Backup-seeded registrations no Register ever established.
		renewed = !r.provisional[from] && r.registrations.RenewStrict(from, lease)
	} else {
		renewed = r.registrations.Renew(from, lease)
	}
	if renewed {
		r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.RenewAck{}),
			Counted: false, // lease upkeep, excluded from update effort
			Payload: discovery.RenewAck{Manager: from},
		})
		return
	}
	r.renewError(from)
}

// renewError tells a Manager its registration lease is gone; its handler
// re-registers in full (PR1).
func (r *RegistryRole) renewError(from netsim.NodeID) {
	r.nd.nw.SendUDP(r.nd.n.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.RenewError{}),
		Counted: true,
		Payload: discovery.RenewError{Manager: from},
	})
}

// onRegistrationExpired is the purge half of PR5 in 3-party mode: "the
// Registry notifies the User when it purges the Manager." Subscribers
// are told the Manager is gone and their subscriptions dropped.
func (r *RegistryRole) onRegistrationExpired(manager netsim.NodeID, _ discovery.ServiceRecord) {
	delete(r.provisional, manager)
	if !r.active {
		return
	}
	r.subs.Each(func(k subKey, _ struct{}) {
		if k.manager != manager {
			return
		}
		r.nd.nw.SendUDP(r.nd.n.ID, k.user, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.ManagerGone{}),
			Counted: true,
			Payload: discovery.ManagerGone{Manager: manager},
		})
		r.prop.Cancel(k.user)
		r.subs.Drop(k)
	})
	r.syncBackup()
}

// onSubscriptionExpired abandons any outstanding notification to the
// purged subscriber and drops its SRN2 state ("the status of the
// inconsistent User is cached until the subscription expires").
func (r *RegistryRole) onSubscriptionExpired(k subKey, _ struct{}) {
	r.prop.Cancel(k.user)
	if set, ok := r.inconsistent[k.manager]; ok {
		set.Forget(k.user)
	}
}
