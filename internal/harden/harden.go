// Package harden is the protocol-hardening layer: per-system appliers
// that translate a discovery.Hardening toggle set into concrete protocol
// configuration, closing the failure classes the chaos hunter proved
// reachable (internal/hunt/testdata). Every mechanism is strictly
// zero-value-off — with Hardening{} the appliers change nothing and the
// paper-faithful baseline replays bit-identically.
//
// The per-finding dispositions (hardened vs fault-conditionally bounded)
// live in Dispositions; DESIGN.md renders the same table.
package harden

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/frodo"
	"repro/internal/jini"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/upnp"
)

// Transport bounds for hardened TCP. DataRetransmits 8 with MinRTO 1s,
// 1.25 backoff and a 60s RTO ceiling bounds a transfer's lifetime to
// ~3min — far inside the oracle's lease-purge tolerance — where the
// baseline retransmits forever and can deliver a stale RenewAck hours
// late.
const (
	tcpDataRetransmits = 8
	tcpMaxRTO          = 60 * sim.Second
	tcpRTOJitter       = 0.5
)

// Retry caps for hardened core.Retry schedules (decorrelated jitter off
// the kernel RNG; see core.RetryPolicy.Cap).
const retryCap = 120 * sim.Second

// TCP applies the transport hardening to a TCP failure-response model.
func TCP(cfg *netsim.TCPConfig, h discovery.Hardening) {
	if h.JitterRetry {
		cfg.DataRetransmits = tcpDataRetransmits
		cfg.MaxRTO = tcpMaxRTO
		cfg.RTOJitter = tcpRTOJitter
	}
	if h.RetireBye {
		cfg.AbortOnRetire = true
	}
}

// UPnP applies the hardening layer to a UPnP configuration.
func UPnP(cfg *upnp.Config, h discovery.Hardening) {
	if !h.Enabled() {
		return
	}
	cfg.Harden = h
	TCP(&cfg.TCP, h)
}

// Jini applies the hardening layer to a Jini configuration.
func Jini(cfg *jini.Config, h discovery.Hardening) {
	if !h.Enabled() {
		return
	}
	cfg.Harden = h
	TCP(&cfg.TCP, h)
}

// Frodo applies the hardening layer to a FRODO configuration.
func Frodo(cfg *frodo.Config, h discovery.Hardening) {
	if !h.Enabled() {
		return
	}
	cfg.Harden = h
	if h.JitterRetry {
		cfg.NotifyRetry.Cap = retryCap
		cfg.ControlRetry.Cap = retryCap
	}
}

// Retry returns policy with the jittered-backoff cap applied when h asks
// for it; protocols use it where they build ad-hoc schedules.
func Retry(policy core.RetryPolicy, h discovery.Hardening) core.RetryPolicy {
	if h.JitterRetry {
		policy.Cap = retryCap
	}
	return policy
}

// Disposition records the decision for one hunted finding: either the
// protocol was hardened (Mechanism names the fix) or the invariant was
// weakened to a fault-conditional bound (Mechanism names the bound).
type Disposition struct {
	System    string // hunted system (sweep name)
	Invariant string // oracle invariant that fired
	Decision  string // "hardened" or "bounded"
	Mechanism string // what closes or bounds the finding
}

// Dispositions is the per-finding decision table for the eight committed
// hunt fixtures. Every finding proved fixable at the protocol layer; no
// invariant needed a fault-conditional bound (the oracle still supports
// them — see verify.FaultBound — for future findings that resist fixing).
func Dispositions() []Disposition {
	return []Disposition{
		{"upnp", "lease-purge", "hardened",
			"bounded TCP data retransmission (8 tries, 60s RTO cap): stale RenewAcks can no longer arrive hours late"},
		{"jini1", "lease-purge", "hardened",
			"bounded TCP data retransmission + strict renew + no silent onUpdate repository heal (Registry answers RenewError; Manager re-registers on the wire)"},
		{"jini2", "lease-purge", "hardened",
			"same as jini1; both Registries enforce strict leases"},
		{"jini2", "retired-silence", "hardened",
			"retire-aware transport (SYN/data sends abort once the sender retired) + best-effort Bye on User stop"},
		{"frodo3p", "lease-purge", "hardened",
			"strict renew at the Central + backup-seeded registrations held provisional until the Manager re-registers"},
		{"frodo2p", "lease-purge", "hardened",
			"strict renew at 300D Managers and the Central; renewals after expiry answered with RenewError, re-registration follows"},
		{"frodo2p", "single-central", "hardened",
			"demoted Central retracts its claim with Bye; sitting Central reasserts against weaker claims; announcements pause while either own interface is down; election re-arms with decorrelated backoff"},
	}
}
