package harden

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/frodo"
	"repro/internal/jini"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/upnp"
)

// The zero Hardening must leave every configuration byte-identical:
// baseline sweeps and goldens depend on the appliers being no-ops.
func TestZeroValueIsNoOp(t *testing.T) {
	var h discovery.Hardening

	tcp := netsim.DefaultTCPConfig()
	ref := tcp
	TCP(&tcp, h)
	if !reflect.DeepEqual(tcp, ref) {
		t.Errorf("TCP applier changed a baseline config: %+v", tcp)
	}

	u, uref := upnp.DefaultConfig(), upnp.DefaultConfig()
	UPnP(&u, h)
	if !reflect.DeepEqual(u, uref) {
		t.Errorf("UPnP applier changed a baseline config")
	}

	j, jref := jini.DefaultConfig(), jini.DefaultConfig()
	Jini(&j, h)
	if !reflect.DeepEqual(j, jref) {
		t.Errorf("Jini applier changed a baseline config")
	}

	f, fref := frodo.DefaultConfig(), frodo.DefaultConfig()
	Frodo(&f, h)
	if !reflect.DeepEqual(f, fref) {
		t.Errorf("Frodo applier changed a baseline config")
	}

	p := core.RetryPolicy{Interval: 5 * sim.Second, Limit: 3}
	if got := Retry(p, h); got != p {
		t.Errorf("Retry applier changed a baseline policy: %+v", got)
	}
}

func TestTCPApplier(t *testing.T) {
	cfg := netsim.DefaultTCPConfig()
	TCP(&cfg, discovery.Hardening{JitterRetry: true})
	if cfg.DataRetransmits != tcpDataRetransmits || cfg.MaxRTO != tcpMaxRTO || cfg.RTOJitter != tcpRTOJitter {
		t.Errorf("JitterRetry transport bounds not applied: %+v", cfg)
	}
	if cfg.AbortOnRetire {
		t.Error("JitterRetry alone enabled AbortOnRetire")
	}

	cfg = netsim.DefaultTCPConfig()
	TCP(&cfg, discovery.Hardening{RetireBye: true})
	if !cfg.AbortOnRetire {
		t.Error("RetireBye did not enable AbortOnRetire")
	}
	if cfg.DataRetransmits != netsim.DefaultTCPConfig().DataRetransmits {
		t.Error("RetireBye alone changed the retransmit budget")
	}
}

func TestProtocolAppliers(t *testing.T) {
	h := discovery.HardenAll()

	u := upnp.DefaultConfig()
	UPnP(&u, h)
	if u.Harden != h {
		t.Error("UPnP applier did not store the toggle set")
	}
	if u.TCP.DataRetransmits != tcpDataRetransmits || !u.TCP.AbortOnRetire {
		t.Errorf("UPnP transport not hardened: %+v", u.TCP)
	}

	j := jini.DefaultConfig()
	Jini(&j, h)
	if j.Harden != h || j.TCP.MaxRTO != tcpMaxRTO {
		t.Errorf("Jini config not hardened: harden=%+v tcp=%+v", j.Harden, j.TCP)
	}

	f := frodo.DefaultConfig()
	Frodo(&f, h)
	if f.Harden != h {
		t.Error("Frodo applier did not store the toggle set")
	}
	if f.NotifyRetry.Cap != retryCap || f.ControlRetry.Cap != retryCap {
		t.Errorf("Frodo retry schedules not capped: notify=%+v control=%+v", f.NotifyRetry, f.ControlRetry)
	}

	p := Retry(core.RetryPolicy{Interval: 5 * sim.Second}, h)
	if p.Cap != retryCap {
		t.Errorf("Retry applier cap = %v, want %v", p.Cap, retryCap)
	}
}

func TestDispositionsCoverTheHuntedFindings(t *testing.T) {
	rows := Dispositions()
	if len(rows) != 7 {
		t.Fatalf("disposition rows = %d, want one per committed hunted fixture (7)", len(rows))
	}
	seen := map[string]bool{}
	for _, d := range rows {
		key := d.System + "/" + d.Invariant
		if seen[key] {
			t.Errorf("duplicate disposition for %s", key)
		}
		seen[key] = true
		if d.Decision != "hardened" && d.Decision != "bounded" {
			t.Errorf("%s: unknown decision %q", key, d.Decision)
		}
		if d.Mechanism == "" {
			t.Errorf("%s: empty mechanism", key)
		}
	}
	// One lease-purge finding per system plus the two system-specific
	// classes the hunt reached.
	for _, want := range []string{
		"upnp/lease-purge", "jini1/lease-purge", "jini2/lease-purge",
		"frodo3p/lease-purge", "frodo2p/lease-purge",
		"jini2/retired-silence", "frodo2p/single-central",
	} {
		if !seen[want] {
			t.Errorf("missing disposition for %s", want)
		}
	}
}
