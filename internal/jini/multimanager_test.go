package jini

import (
	"testing"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Two Managers, two Users with disjoint requirements: event routing at
// the lookup service must follow the event registrations, and the PR1
// notification-request matching must respect the query.
func TestMultiManagerEventRouting(t *testing.T) {
	k := sim.New(12)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	cfg := DefaultConfig()

	reg := NewRegistry(nw.AddNode("Registry"), cfg)
	reg.Start(1 * sim.Second)

	printer := NewManager(nw.AddNode("Printer"), cfg, discovery.ServiceDescription{
		DeviceType: "Printer", ServiceType: "ColorPrinter",
		Attributes: map[string]string{"tray": "full"},
	})
	printer.Start(2 * sim.Second)
	cam := NewManager(nw.AddNode("Camera"), cfg, discovery.ServiceDescription{
		DeviceType: "Camera", ServiceType: "VideoFeed",
		Attributes: map[string]string{"res": "720p"},
	})
	cam.Start(2500 * sim.Millisecond)

	versions := map[netsim.NodeID]map[netsim.NodeID]uint64{}
	listener := discovery.ListenerFunc(func(_ sim.Time, user, mgr netsim.NodeID, v uint64) {
		if versions[user] == nil {
			versions[user] = map[netsim.NodeID]uint64{}
		}
		if v > versions[user][mgr] {
			versions[user][mgr] = v
		}
	})

	pu := NewUser(nw.AddNode("PrintUser"), cfg, discovery.Query{ServiceType: "ColorPrinter"}, listener)
	pu.Start(3 * sim.Second)
	cu := NewUser(nw.AddNode("CamUser"), cfg, discovery.Query{ServiceType: "VideoFeed"}, listener)
	cu.Start(4 * sim.Second)

	k.Run(100 * sim.Second)
	if !reg.Registered(printer.ID()) || !reg.Registered(cam.ID()) {
		t.Fatal("managers not registered")
	}
	if pu.CachedVersion(printer.ID()) != 1 || cu.CachedVersion(cam.ID()) != 1 {
		t.Fatal("users did not discover their services")
	}

	printer.ChangeService(func(a map[string]string) { a["tray"] = "empty" })
	cam.ChangeService(func(a map[string]string) { a["res"] = "1080p" })
	k.Run(200 * sim.Second)

	if versions[pu.ID()][printer.ID()] != 2 {
		t.Error("printer user missed its event")
	}
	if versions[cu.ID()][cam.ID()] != 2 {
		t.Error("camera user missed its event")
	}
	if versions[pu.ID()][cam.ID()] != 0 || versions[cu.ID()][printer.ID()] != 0 {
		t.Error("events crossed subscriptions")
	}
}

// A notification request matches by query: a late-joining user interested
// in a not-yet-registered service is notified when it registers, but not
// about other services.
func TestNotificationRequestQueryMatching(t *testing.T) {
	k := sim.New(13)
	nw := netsim.MustNew(k, netsim.DefaultConfig())
	cfg := DefaultConfig()
	reg := NewRegistry(nw.AddNode("Registry"), cfg)
	reg.Start(1 * sim.Second)

	u := NewUser(nw.AddNode("User"), cfg, discovery.Query{ServiceType: "VideoFeed"}, nil)
	u.Start(2 * sim.Second)
	k.Run(50 * sim.Second) // user joined; nothing registered yet

	// A non-matching manager registers: the user must not adopt it.
	printer := NewManager(nw.AddNode("Printer"), cfg, discovery.ServiceDescription{
		DeviceType: "Printer", ServiceType: "ColorPrinter",
		Attributes: map[string]string{},
	})
	printer.Start(0)
	k.Run(100 * sim.Second)
	if got := u.CachedVersion(printer.ID()); got != 0 {
		t.Errorf("user adopted a non-matching service (v%d)", got)
	}

	// The matching manager registers later: PR1 notifies the request.
	cam := NewManager(nw.AddNode("Camera"), cfg, discovery.ServiceDescription{
		DeviceType: "Camera", ServiceType: "VideoFeed",
		Attributes: map[string]string{},
	})
	cam.Start(0)
	k.Run(200 * sim.Second)
	if got := u.CachedVersion(cam.ID()); got != 1 {
		t.Errorf("notification request did not deliver the future registration (v%d)", got)
	}
	if !u.Subscribed() {
		t.Error("user did not subscribe after the registration notification")
	}
}
