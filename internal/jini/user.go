package jini

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// regMgrKey identifies an event registration from the User's side: the
// Registry it was placed at and the Manager it concerns.
type regMgrKey struct {
	registry netsim.NodeID
	manager  netsim.NodeID
}

// User is a Jini client. Joining a lookup service means requesting
// notification of future registrations (PR1) and then always querying for
// existing ones (PR2) — the order Jini needs because of its notification
// anomaly. Once it finds the service, the User subscribes for remote
// events and renews all leases periodically; a renewal answered with an
// error (PR3) sends it back through the whole join sequence.
type User struct {
	cfg      Config
	node     *netsim.Node
	nw       *netsim.Network
	k        *sim.Kernel
	query    discovery.Query
	listener discovery.ConsistencyListener

	// registries tracks discovered lookup services; the lease is
	// refreshed by their announcements.
	registries *discovery.LeaseTable[netsim.NodeID, struct{}]
	// cache holds the discovered service records. Its lease is refreshed
	// by events and by successful renewals: a healthy subscription attests
	// that the Registry still serves us. When it expires the requirement
	// is unmet again and the User re-queries.
	cache *discovery.LeaseTable[netsim.NodeID, discovery.ServiceRecord]
	// subscribed records which event registrations the user believes it
	// holds.
	subscribed map[regMgrKey]bool
	// monitors detects event sequence gaps per event registration (SRC2).
	monitors map[regMgrKey]*core.SeqMonitor

	renewTick *sim.Ticker
	// pollTick drives CM2 when configured: persistent periodic
	// re-queries of the known Registries.
	pollTick *sim.Ticker

	// stopped marks a quiesced client (Stop): a boot event still pending
	// when the device permanently departed must not restart it.
	stopped bool
}

// NewUser attaches a Jini client to a node.
func NewUser(node *netsim.Node, cfg Config, q discovery.Query, l discovery.ConsistencyListener) *User {
	if l == nil {
		l = discovery.NopListener{}
	}
	u := &User{
		cfg: cfg, node: node, nw: node.Network(), k: node.Kernel(),
		query: q, listener: l,
		subscribed: map[regMgrKey]bool{},
		monitors:   map[regMgrKey]*core.SeqMonitor{},
	}
	u.registries = discovery.NewLeaseTable[netsim.NodeID, struct{}](u.k, u.onRegistryPurge)
	u.cache = discovery.NewLeaseTable[netsim.NodeID, discovery.ServiceRecord](u.k, u.onCachePurge)
	u.renewTick = sim.NewTicker(u.k, core.RenewInterval(cfg.SubscriptionLease), u.renewAll)
	if cfg.PollPeriod > 0 {
		u.pollTick = sim.NewTicker(u.k, cfg.PollPeriod, u.poll)
	}
	u.bind()
	return u
}

// bind attaches the instance to its node slot; construction and Rearm
// share it.
func (u *User) bind() {
	u.node.SetEndpoint(u)
	u.nw.Join(u.node.ID, DiscoveryGroup)
}

// Rearm resets the client to its construction-time state for workspace
// reuse.
func (u *User) Rearm() {
	u.registries.Rearm()
	u.cache.Rearm()
	u.renewTick.Rearm()
	if u.pollTick != nil {
		u.pollTick.Rearm()
	}
	clear(u.subscribed)
	clear(u.monitors)
	u.stopped = false
	u.bind()
}

// poll is CM2: query every known Registry for the requirement,
// persistently.
func (u *User) poll() {
	u.registries.Each(func(reg netsim.NodeID, _ struct{}) { u.search(reg) })
}

// Start boots the client; it waits for Registry announcements.
func (u *User) Start(bootDelay sim.Duration) {
	u.k.AfterArg(bootDelay, userBoot, u)
}

// userBoot is the static boot callback shared by every Jini client.
func userBoot(x any) {
	u := x.(*User)
	if u.stopped {
		return // departed permanently before the boot completed
	}
	u.renewTick.Start(u.renewTick.Period())
	if u.pollTick != nil {
		u.pollTick.Start(u.pollTick.Period())
	}
}

// ID reports the User's node ID.
func (u *User) ID() netsim.NodeID { return u.node.ID }

// Stop quiesces the client: timers disarmed, lease tables cleared
// (without purge callbacks), so the node can be retired after a
// permanent churn departure without leaving zombie events in the
// kernel. The User must not be used afterwards.
func (u *User) Stop() {
	if u.cfg.Harden.RetireBye {
		// Hardened retirement: deregister from every known Registry with
		// a best-effort UDP Bye so our notification request and event
		// subscriptions are evicted now instead of at lease expiry.
		u.registries.EachKey(func(reg netsim.NodeID) {
			u.nw.SendUDP(u.node.ID, reg, netsim.Outgoing{
				Kind:    discovery.Kind(discovery.Bye{}),
				Counted: true,
				Payload: discovery.Bye{Role: discovery.RoleUser},
			})
		})
	}
	u.stopped = true
	u.renewTick.Stop()
	if u.pollTick != nil {
		u.pollTick.Stop()
	}
	u.registries.Clear()
	u.cache.Clear()
	clear(u.subscribed)
	clear(u.monitors)
}

// CachedVersion reports the cached description version for a Manager.
func (u *User) CachedVersion(manager netsim.NodeID) uint64 {
	rec, ok := u.cache.Get(manager)
	if !ok {
		return 0
	}
	return rec.SD.Version()
}

// KnownRegistries reports how many lookup services the User has joined.
func (u *User) KnownRegistries() int { return u.registries.Len() }

// Subscribed reports whether the user holds any event registration.
func (u *User) Subscribed() bool { return len(u.subscribed) > 0 }

// EachCached visits every cached service record — the live gateway's
// read path. The records share immutable snapshots and may be retained.
func (u *User) EachCached(fn func(discovery.ServiceRecord)) {
	u.cache.Each(func(_ netsim.NodeID, rec discovery.ServiceRecord) { fn(rec) })
}

// Deliver implements netsim.Endpoint.
func (u *User) Deliver(msg *netsim.Message) {
	switch p := msg.Payload.(type) {
	case discovery.Announce:
		u.onAnnounce(msg.From, p)
	case discovery.SearchReply:
		u.onSearchReply(msg.From, p)
	case discovery.Update:
		u.onEvent(msg.From, p)
	case discovery.RenewError:
		u.onRenewError(msg.From)
	case discovery.RenewAck:
		u.onRenewAck(msg.From)
	case discovery.SubscribeAck:
		// The confirmation of the notification request triggers the PR2
		// query; event-registration confirmations carry no service state
		// in Jini, so there is nothing else to do.
		if p.Manager == netsim.NoNode && u.cfg.Techniques.Has(core.PR2) {
			u.search(msg.From)
		}
	}
}

// onAnnounce refreshes a known Registry or joins a new one.
func (u *User) onAnnounce(from netsim.NodeID, a discovery.Announce) {
	if a.Role != discovery.RoleRegistry {
		return
	}
	lease := a.CacheLease
	if lease <= 0 {
		lease = u.cfg.CacheLease
	}
	if u.registries.Renew(from, lease) {
		// The Registry vouches for the services discovered through it:
		// its announcements keep the cached records alive, so staleness
		// is repaired by events, PR1 re-registrations and PR3 errors
		// rather than by silent cache expiry.
		for key := range u.subscribed {
			if key.registry == from {
				u.cache.Renew(key.manager, u.cfg.CacheLease)
			}
		}
		return
	}
	u.registries.Put(from, struct{}{}, lease)
	u.join(from)
}

// join performs the Jini discovery sequence against one Registry:
// notification request first (PR1), then — once the request is confirmed
// in place — the query that Jini forces because existing registrations
// are not notified (PR2). Sequencing the query after the request's
// acknowledgement closes the race in which a registration lands after the
// query ran but before the request was stored, which would leave the User
// permanently unserved.
func (u *User) join(reg netsim.NodeID) {
	if !u.cfg.Techniques.Has(core.PR1) {
		if u.cfg.Techniques.Has(core.PR2) {
			u.search(reg)
		}
		return
	}
	q := u.query
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Subscribe{}),
		Counted: true,
		Payload: discovery.Subscribe{Manager: netsim.NoNode, Q: &q, Lease: u.cfg.SubscriptionLease},
	}
	u.nw.SendTCPWith(u.cfg.TCP, u.node.ID, reg, out, nil)
}

// search queries one Registry for the requirement.
func (u *User) search(reg netsim.NodeID) {
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Search{}),
		Counted: true,
		Payload: discovery.Search{Q: u.query},
	}
	u.nw.SendTCPWith(u.cfg.TCP, u.node.ID, reg, out, nil)
}

// onSearchReply stores matching records and subscribes for their events.
func (u *User) onSearchReply(reg netsim.NodeID, p discovery.SearchReply) {
	for _, rec := range p.Recs {
		if !u.query.Matches(rec.SD) {
			continue
		}
		u.storeRec(rec)
		u.subscribe(reg, rec.Manager)
	}
}

// subscribe opens the event registration for one Manager at one Registry.
func (u *User) subscribe(reg, manager netsim.NodeID) {
	key := regMgrKey{registry: reg, manager: manager}
	if u.subscribed[key] {
		return
	}
	u.subscribed[key] = true
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Subscribe{}),
		Counted: true,
		Payload: discovery.Subscribe{Manager: manager, Lease: u.cfg.SubscriptionLease},
	}
	u.nw.SendTCPWith(u.cfg.TCP, u.node.ID, reg, out, nil)
}

// onEvent stores the updated record from a remote event, ensures the
// event registration exists (registration notifications may be the first
// contact with the service), and checks the event sequence for gaps
// (SRC2): a gap means a missed event, repaired by re-querying.
func (u *User) onEvent(reg netsim.NodeID, p discovery.Update) {
	if !u.query.Matches(p.Rec.SD) {
		return
	}
	// Unsequenced events (Seq == 0) are registration notifications, not
	// numbered remote events; they carry full state and need no gap check.
	if p.Seq > 0 && u.cfg.Techniques.Has(core.SRC2) {
		key := regMgrKey{registry: reg, manager: p.Rec.Manager}
		mon := u.monitors[key]
		if mon == nil {
			mon = &core.SeqMonitor{}
			u.monitors[key] = mon
		}
		if gapped, _ := mon.Observe(p.Seq); gapped {
			u.search(reg)
		}
	}
	u.storeRec(p.Rec)
	u.subscribe(reg, p.Rec.Manager)
}

// renewAll refreshes the user's leases at every known Registry with a
// single renewal covering its notification request and subscriptions.
func (u *User) renewAll() {
	u.registries.Each(func(reg netsim.NodeID, _ struct{}) {
		manager := netsim.NoNode
		for key := range u.subscribed {
			if key.registry == reg {
				manager = key.manager
				break
			}
		}
		out := netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Renew{}),
			Counted: false, // lease upkeep, excluded from update effort
			Payload: discovery.Renew{Manager: manager, Lease: u.cfg.SubscriptionLease},
		}
		u.nw.SendTCPWith(u.cfg.TCP, u.node.ID, reg, out, nil)
	})
}

// onRenewAck refreshes the cache lease of services subscribed through the
// acknowledging Registry: the subscription is alive, so the cached record
// remains backed by a live lease chain.
func (u *User) onRenewAck(reg netsim.NodeID) {
	for key := range u.subscribed {
		if key.registry == reg {
			u.cache.Renew(key.manager, u.cfg.CacheLease)
		}
	}
}

// onRenewError is PR3, Jini style: the Registry purged our leases and
// only says so; redo the entire join sequence.
func (u *User) onRenewError(reg netsim.NodeID) {
	u.forgetRegistry(reg)
	u.join(reg)
}

// onRegistryPurge drops a silent Registry; announcements will trigger a
// fresh join (PR2a: rediscovery through the periodic announcements).
func (u *User) onRegistryPurge(reg netsim.NodeID, _ struct{}) {
	u.forgetRegistry(reg)
}

func (u *User) forgetRegistry(reg netsim.NodeID) {
	for key := range u.subscribed {
		if key.registry == reg {
			delete(u.subscribed, key)
			delete(u.monitors, key)
		}
	}
}

// onCachePurge re-queries the known Registries: the requirement is
// standing, so a purged service is searched for again.
func (u *User) onCachePurge(manager netsim.NodeID, _ discovery.ServiceRecord) {
	for key := range u.subscribed {
		if key.manager == manager {
			delete(u.subscribed, key)
		}
	}
	u.registries.Each(func(reg netsim.NodeID, _ struct{}) { u.search(reg) })
}

// storeRec caches the record — sharing the immutable snapshot, no copy —
// and reports it to the consistency listener.
func (u *User) storeRec(rec discovery.ServiceRecord) {
	u.cache.Put(rec.Manager, rec, u.cfg.CacheLease)
	u.listener.CacheUpdated(u.k.Now(), u.node.ID, rec.Manager, rec.SD.Version())
}
