package jini

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// subKey identifies one event subscription: a User listening for changes
// to one Manager's service.
type subKey struct {
	user    netsim.NodeID
	manager netsim.NodeID
}

// Registry is a Jini lookup service. It stores service registrations
// under lease, answers queries, and propagates Manager updates to
// subscribed Users as remote events over TCP.
type Registry struct {
	cfg  Config
	node *netsim.Node
	nw   *netsim.Network
	k    *sim.Kernel

	announcer *core.Announcer

	// registrations maps Manager to its registered record.
	registrations *discovery.LeaseTable[netsim.NodeID, discovery.ServiceRecord]
	// subs holds event subscriptions with their per-registration event
	// sequence counters (Jini numbers remote events per event
	// registration — the protocol's SRC2 hook).
	subs *discovery.LeaseTable[subKey, *subState]
	// notifyReqs holds requests for notification of future service
	// registrations, keyed by User.
	notifyReqs *discovery.LeaseTable[netsim.NodeID, discovery.Query]
}

// subState carries one event registration's sequence counter.
type subState struct {
	seq uint64
}

// NewRegistry attaches a lookup service to a node.
func NewRegistry(node *netsim.Node, cfg Config) *Registry {
	r := &Registry{cfg: cfg, node: node, nw: node.Network(), k: node.Kernel()}
	r.registrations = discovery.NewLeaseTable[netsim.NodeID, discovery.ServiceRecord](r.k, nil)
	r.subs = discovery.NewLeaseTable[subKey, *subState](r.k, nil)
	r.notifyReqs = discovery.NewLeaseTable[netsim.NodeID, discovery.Query](r.k, nil)
	announceOut := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Announce{}),
		Counted: true,
		Payload: discovery.Announce{Role: discovery.RoleRegistry, CacheLease: cfg.CacheLease},
	}
	r.announcer = core.NewAnnouncer(r.nw, node.ID, DiscoveryGroup,
		cfg.AnnouncePeriod, cfg.AnnounceCopies, func() netsim.Outgoing { return announceOut })
	r.bind()
	return r
}

// bind attaches the instance to its node slot; construction and Rearm
// share it.
func (r *Registry) bind() {
	r.node.SetEndpoint(r)
	r.nw.Join(r.node.ID, DiscoveryGroup)
}

// Rearm resets the lookup service to its construction-time state for
// workspace reuse.
func (r *Registry) Rearm() {
	r.registrations.Rearm()
	r.subs.Rearm()
	r.notifyReqs.Rearm()
	r.announcer.Rearm()
	r.bind()
}

// Start boots the lookup service.
func (r *Registry) Start(bootDelay sim.Duration) { r.announcer.Start(bootDelay) }

// ID reports the Registry's node ID.
func (r *Registry) ID() netsim.NodeID { return r.node.ID }

// Registered reports whether the Manager currently holds a registration.
func (r *Registry) Registered(manager netsim.NodeID) bool {
	_, ok := r.registrations.Get(manager)
	return ok
}

// Subscribers reports the number of live event subscriptions.
func (r *Registry) Subscribers() int { return r.subs.Len() }

// Deliver implements netsim.Endpoint.
func (r *Registry) Deliver(msg *netsim.Message) {
	switch p := msg.Payload.(type) {
	case discovery.Register:
		r.onRegister(msg, p)
	case discovery.Update:
		r.onUpdate(msg, p)
	case discovery.Search:
		r.onSearch(msg, p)
	case discovery.Subscribe:
		r.onSubscribe(msg, p)
	case discovery.Renew:
		r.onRenew(msg, p)
	case discovery.Bye:
		r.onBye(msg.From)
	}
}

// onBye evicts every lease the departing node holds — its registration
// if it was a Manager, its notification request and event subscriptions
// if it was a User. Only hardened nodes send Byes; handling them is
// unconditional (baseline runs never see one).
func (r *Registry) onBye(from netsim.NodeID) {
	r.registrations.Drop(from)
	r.notifyReqs.Drop(from)
	r.subs.EachKey(func(k subKey) {
		if k.user == from {
			r.subs.Drop(k)
		}
	})
}

// onRegister stores the service and — PR1 — notifies Users whose
// notification requests match a *new* registration. Jini's anomaly is
// preserved: a request made after the Manager already registered receives
// nothing until the Manager re-registers.
func (r *Registry) onRegister(msg *netsim.Message, p discovery.Register) {
	prev, existed := r.registrations.Get(p.Rec.Manager)
	lease := p.Lease
	if lease <= 0 {
		lease = r.cfg.RegistrationLease
	}
	r.registrations.Put(p.Rec.Manager, p.Rec, lease)
	r.reply(msg, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.RegisterAck{}),
		Counted: true,
		Payload: discovery.RegisterAck{},
	})
	isNews := !existed || prev.SD.Version() != p.Rec.SD.Version()
	if isNews && r.cfg.Techniques.Has(core.PR1) {
		r.notifyRegistration(p.Rec)
	}
}

// notifyRegistration sends the newly registered record to every User with
// a matching notification request and to subscribers of that Manager.
// Subscribers get a sequenced event; request-only Users get an
// unsequenced one (no event registration exists yet to number it).
func (r *Registry) notifyRegistration(rec discovery.ServiceRecord) {
	sequenced := map[netsim.NodeID]bool{}
	r.subs.Each(func(k subKey, s *subState) {
		if k.manager == rec.Manager {
			sequenced[k.user] = true
			s.seq++
			r.sendEvent(k.user, rec, s.seq)
		}
	})
	r.notifyReqs.Each(func(user netsim.NodeID, q discovery.Query) {
		if q.Matches(rec.SD) && !sequenced[user] {
			r.sendEvent(user, rec, 0)
		}
	})
}

// onUpdate refreshes the stored record (the registration lease is not
// extended — updates are not renewals) and propagates the event to
// subscribers. The acknowledgement to the Manager is Jini's application-
// level ack ("The Manager sends an update to the Registry, and receives
// an acknowledgement").
func (r *Registry) onUpdate(msg *netsim.Message, p discovery.Update) {
	if !r.registrations.Update(p.Rec.Manager, p.Rec) {
		if r.cfg.Harden.StrictLease {
			// Hardened registries never heal the repository silently: the
			// registration lease expired, so the Manager must re-register
			// on the wire (its RenewError handler does exactly that).
			// A silent Put here re-creates a lease no Register message
			// ever established, which is how the hunted lease-purge
			// violations diverged holder state from the oracle's ledger.
			r.renewError(msg, p.Rec.Manager)
			return
		}
		// Unknown manager: treat as a registration so the system heals.
		r.registrations.Put(p.Rec.Manager, p.Rec, r.cfg.RegistrationLease)
	}
	r.reply(msg, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.UpdateAck{}),
		Counted: true,
		Payload: discovery.UpdateAck{Manager: p.Rec.Manager, Version: p.Rec.SD.Version(),
			SenderRole: discovery.RoleRegistry},
	})
	r.subs.Each(func(k subKey, s *subState) {
		if k.manager == p.Rec.Manager {
			s.seq++
			r.sendEvent(k.user, p.Rec, s.seq)
		}
	})
}

// sendEvent delivers one remote event over TCP. A REX is final: Jini has
// no SRN2, so the event is lost while the subscription lives.
func (r *Registry) sendEvent(user netsim.NodeID, rec discovery.ServiceRecord, seq uint64) {
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Update{}),
		Counted: true,
		Payload: discovery.Update{Rec: rec, Seq: seq},
	}
	r.nw.SendTCPWith(r.cfg.TCP, r.node.ID, user, out, nil)
}

// onSearch answers a unicast query with the matching registrations.
func (r *Registry) onSearch(msg *netsim.Message, p discovery.Search) {
	recs := []discovery.ServiceRecord{}
	r.registrations.Each(func(_ netsim.NodeID, rec discovery.ServiceRecord) {
		if p.Q.Matches(rec.SD) {
			recs = append(recs, rec)
		}
	})
	r.reply(msg, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.SearchReply{}),
		Counted: true,
		Payload: discovery.SearchReply{Recs: recs},
	})
}

// onSubscribe stores a notification request (Manager == NoNode) or an
// event subscription. Jini event registration does not deliver current
// state — that is exactly why Users must query (PR2).
func (r *Registry) onSubscribe(msg *netsim.Message, p discovery.Subscribe) {
	lease := p.Lease
	if lease <= 0 {
		lease = r.cfg.SubscriptionLease
	}
	if p.Manager == netsim.NoNode {
		q := discovery.Query{}
		if p.Q != nil {
			q = *p.Q
		}
		r.notifyReqs.Put(msg.From, q, lease)
	} else {
		key := subKey{user: msg.From, manager: p.Manager}
		if _, exists := r.subs.Get(key); !exists {
			r.subs.Put(key, &subState{}, lease)
		} else {
			r.subs.Renew(key, lease)
		}
	}
	r.reply(msg, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.SubscribeAck{}),
		Counted: true,
		Payload: discovery.SubscribeAck{Manager: p.Manager},
	})
}

// onRenew extends a Manager's registration (Renew.Manager == sender) or a
// User's leases (notification request plus any event subscriptions). A
// renewal with nothing live behind it gets Jini's PR3 answer: a bare
// error that sends the node back through discovery.
func (r *Registry) onRenew(msg *netsim.Message, p discovery.Renew) {
	lease := p.Lease
	if lease <= 0 {
		lease = r.cfg.SubscriptionLease
	}
	strict := r.cfg.Harden.StrictLease
	if p.Manager == msg.From {
		ok := false
		if strict {
			ok = r.registrations.RenewStrict(msg.From, lease)
		} else {
			ok = r.registrations.Renew(msg.From, lease)
		}
		if ok {
			r.ack(msg, p.Manager)
			return
		}
		r.renewError(msg, p.Manager)
		return
	}
	alive := false
	renewReq := r.notifyReqs.Renew
	renewSub := r.subs.Renew
	if strict {
		renewReq = r.notifyReqs.RenewStrict
		renewSub = r.subs.RenewStrict
	}
	if renewReq(msg.From, lease) {
		alive = true
	}
	r.subs.Each(func(k subKey, _ *subState) {
		if k.user == msg.From && renewSub(k, lease) {
			alive = true
		}
	})
	if alive {
		r.ack(msg, p.Manager)
		return
	}
	r.renewError(msg, p.Manager)
}

func (r *Registry) ack(msg *netsim.Message, manager netsim.NodeID) {
	r.reply(msg, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.RenewAck{}),
		Counted: false, // lease upkeep, excluded from update effort
		Payload: discovery.RenewAck{Manager: manager},
	})
}

func (r *Registry) renewError(msg *netsim.Message, manager netsim.NodeID) {
	if !r.cfg.Techniques.Has(core.PR3) {
		return
	}
	r.reply(msg, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.RenewError{}),
		Counted: true,
		Payload: discovery.RenewError{Manager: manager},
	})
}

// reply answers over the inbound TCP connection (all Jini unicast rides
// on TCP).
func (r *Registry) reply(msg *netsim.Message, out netsim.Outgoing) {
	if msg.Conn != nil {
		msg.Conn.Reply(out, nil)
		return
	}
	r.nw.SendUDP(r.node.ID, msg.From, out)
}
