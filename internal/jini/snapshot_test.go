package jini

import (
	"testing"

	"repro/internal/sim"
)

// TestCachedSnapshotSurvivesChangeService is the aliasing guarantee at
// the protocol level: snapshots cached by Users and stored in Registry
// repositories are immutable, so a later ChangeService (copy-on-write on
// the Manager) can never be visible through them.
func TestCachedSnapshotSurvivesChangeService(t *testing.T) {
	r := newRig(t, 11, 1, 2, DefaultConfig())
	r.k.Run(200 * sim.Second)
	u := r.users[0]
	reg := r.registries[0]

	userRec, ok := u.cache.Get(r.manager.ID())
	if !ok || userRec.SD.Version() != 1 {
		t.Fatalf("user did not cache v1: %+v ok=%v", userRec, ok)
	}
	regRec, ok := reg.registrations.Get(r.manager.ID())
	if !ok || regRec.SD.Version() != 1 {
		t.Fatalf("registry does not hold v1: %+v ok=%v", regRec, ok)
	}
	v1User, v1Reg := userRec.SD, regRec.SD
	rendered := v1User.String()

	r.change() // v2, propagated Manager → Registry → subscribed Users
	r.k.Run(400 * sim.Second)

	if v1User.Version() != 1 || v1User.Attr("PaperTray") != "full" || v1User.String() != rendered {
		t.Errorf("ChangeService mutated the user's old snapshot: %v", v1User)
	}
	if v1Reg.Version() != 1 || v1Reg.Attr("PaperTray") != "full" {
		t.Errorf("ChangeService mutated the registry's old snapshot: %v", v1Reg)
	}
	nowUser, _ := u.cache.Get(r.manager.ID())
	nowReg, _ := reg.registrations.Get(r.manager.ID())
	if nowUser.SD.Version() != 2 || nowReg.SD.Version() != 2 {
		t.Fatalf("v2 did not propagate: user=%v registry=%v", nowUser.SD, nowReg.SD)
	}
	// Registry repository and User cache share the one v2 snapshot the
	// Manager built — by reference, no copies anywhere on the path.
	if nowUser.SD != nowReg.SD || nowReg.SD != r.manager.SD() {
		t.Error("v2 snapshot should be one shared instance across the stack")
	}
}
