package jini

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Manager is a Jini service provider. It discovers lookup services
// through their announcements, registers its service with each of them,
// renews the registration leases, and sends updated descriptions when the
// service changes.
type Manager struct {
	cfg  Config
	node *netsim.Node
	nw   *netsim.Network
	k    *sim.Kernel

	// sd is the current immutable description snapshot; initial is the
	// frozen construction-time state a workspace rearm returns to.
	sd      *discovery.Snapshot
	initial *discovery.Snapshot

	// registries tracks discovered lookup services; the lease is
	// refreshed by their announcements.
	registries *discovery.LeaseTable[netsim.NodeID, struct{}]
	renewTick  *sim.Ticker
}

// NewManager attaches a Manager to a node.
func NewManager(node *netsim.Node, cfg Config, sd discovery.ServiceDescription) *Manager {
	m := &Manager{cfg: cfg, node: node, nw: node.Network(), k: node.Kernel()}
	m.initial = sd.Freeze()
	m.sd = m.initial
	m.registries = discovery.NewLeaseTable[netsim.NodeID, struct{}](m.k, nil)
	m.renewTick = sim.NewTicker(m.k, core.RenewInterval(cfg.RegistrationLease), m.renewAll)
	m.bind()
	return m
}

// bind attaches the instance to its node slot; construction and Rearm
// share it.
func (m *Manager) bind() {
	m.node.SetEndpoint(m)
	m.nw.Join(m.node.ID, DiscoveryGroup)
}

// Rearm resets the Manager to its construction-time state for workspace
// reuse.
func (m *Manager) Rearm() {
	m.sd = m.initial
	m.registries.Rearm()
	m.renewTick.Rearm()
	m.bind()
}

// Start boots the Manager; it waits passively for Registry announcements.
func (m *Manager) Start(bootDelay sim.Duration) {
	m.k.AfterArg(bootDelay, managerBoot, m)
}

// managerBoot is the static boot callback shared by every Jini Manager.
func managerBoot(x any) {
	m := x.(*Manager)
	m.renewTick.Start(m.renewTick.Period())
}

// ID reports the Manager's node ID.
func (m *Manager) ID() netsim.NodeID { return m.node.ID }

// SD returns the current service description snapshot.
func (m *Manager) SD() *discovery.Snapshot { return m.sd }

// Version reports the current service version.
func (m *Manager) Version() uint64 { return m.sd.Version() }

// KnownRegistries reports how many lookup services the Manager is
// registered with.
func (m *Manager) KnownRegistries() int { return m.registries.Len() }

// ChangeService mutates the service copy-on-write, bumps the version, and
// updates every known Registry over TCP. A REX leaves that Registry stale
// until the registration lease cycle heals it (re-registration after an
// error).
func (m *Manager) ChangeService(mutate func(attrs map[string]string)) {
	m.sd = m.sd.Mutate(mutate)
	m.registries.EachKey(func(reg netsim.NodeID) {
		m.sendUpdate(reg)
	})
}

func (m *Manager) sendUpdate(reg netsim.NodeID) {
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Update{}),
		Counted: true,
		Payload: discovery.Update{Rec: m.record(), Seq: m.sd.Version()},
	}
	m.nw.SendTCPWith(m.cfg.TCP, m.node.ID, reg, out, nil)
}

// Deliver implements netsim.Endpoint.
func (m *Manager) Deliver(msg *netsim.Message) {
	switch p := msg.Payload.(type) {
	case discovery.Announce:
		m.onAnnounce(msg.From, p)
	case discovery.RenewError:
		// The Registry purged our registration: re-register with the
		// current description (PR1 — the Registry will notify interested
		// Users).
		m.register(msg.From)
	case discovery.RegisterAck, discovery.RenewAck:
		// Lease bookkeeping only; nothing to do.
	}
}

// onAnnounce refreshes a known Registry's cache entry or registers with a
// newly discovered one.
func (m *Manager) onAnnounce(from netsim.NodeID, a discovery.Announce) {
	if a.Role != discovery.RoleRegistry {
		return
	}
	lease := a.CacheLease
	if lease <= 0 {
		lease = m.cfg.CacheLease
	}
	if m.registries.Renew(from, lease) {
		return
	}
	m.registries.Put(from, struct{}{}, lease)
	m.register(from)
}

// register sends the full service record over TCP.
func (m *Manager) register(reg netsim.NodeID) {
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Register{}),
		Counted: true,
		Payload: discovery.Register{Rec: m.record(), Lease: m.cfg.RegistrationLease},
	}
	m.nw.SendTCPWith(m.cfg.TCP, m.node.ID, reg, out, nil)
}

// renewAll refreshes the registration lease at every known Registry.
// Renewals carry no service data: a Registry holding a stale description
// stays stale until it purges the registration and the Manager
// re-registers — the Jini weakness the paper contrasts with FRODO's SRN2.
func (m *Manager) renewAll() {
	m.registries.EachKey(func(reg netsim.NodeID) {
		out := netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Renew{}),
			Counted: false, // lease upkeep, excluded from update effort
			Payload: discovery.Renew{Manager: m.node.ID, Lease: m.cfg.RegistrationLease},
		}
		m.nw.SendTCPWith(m.cfg.TCP, m.node.ID, reg, out, nil)
	})
}

// record shares the current snapshot on the wire; no copy is needed,
// the snapshot is immutable.
func (m *Manager) record() discovery.ServiceRecord {
	return discovery.ServiceRecord{Manager: m.node.ID, SD: m.sd}
}
