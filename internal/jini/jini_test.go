package jini

import (
	"testing"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// rig is an N-Registry, 1-Manager, M-User Jini network with a consistency
// recorder.
type rig struct {
	k          *sim.Kernel
	nw         *netsim.Network
	registries []*Registry
	manager    *Manager
	users      []*User

	consistentAt map[netsim.NodeID]map[uint64]sim.Time
}

func newRig(t *testing.T, seed int64, nRegistries, nUsers int, cfg Config) *rig {
	t.Helper()
	r := &rig{k: sim.New(seed), consistentAt: map[netsim.NodeID]map[uint64]sim.Time{}}
	r.nw = netsim.MustNew(r.k, netsim.DefaultConfig())
	listener := discovery.ListenerFunc(func(at sim.Time, user, mgr netsim.NodeID, v uint64) {
		if r.consistentAt[user] == nil {
			r.consistentAt[user] = map[uint64]sim.Time{}
		}
		if _, seen := r.consistentAt[user][v]; !seen {
			r.consistentAt[user][v] = at
		}
	})
	for i := 0; i < nRegistries; i++ {
		rnode := r.nw.AddNode("Registry")
		reg := NewRegistry(rnode, cfg)
		reg.Start(sim.Duration(i+1) * sim.Second)
		r.registries = append(r.registries, reg)
	}
	mnode := r.nw.AddNode("Manager")
	r.manager = NewManager(mnode, cfg, discovery.ServiceDescription{
		DeviceType: "Printer", ServiceType: "ColorPrinter",
		Attributes: map[string]string{"PaperTray": "full"},
	})
	r.manager.Start(2 * sim.Second)
	for i := 0; i < nUsers; i++ {
		unode := r.nw.AddNode("User")
		u := NewUser(unode, cfg, discovery.Query{ServiceType: "ColorPrinter"}, listener)
		u.Start(sim.Duration(i+3) * sim.Second)
		r.users = append(r.users, u)
	}
	return r
}

func (r *rig) whenConsistent(u *User, version uint64) (sim.Time, bool) {
	m, ok := r.consistentAt[u.ID()]
	if !ok {
		return 0, false
	}
	at, ok := m[version]
	return at, ok
}

func (r *rig) change() {
	r.manager.ChangeService(func(a map[string]string) { a["PaperTray"] = "empty" })
}

func TestBootstrapDiscoveryWithin100s(t *testing.T) {
	r := newRig(t, 1, 1, 5, DefaultConfig())
	r.k.Run(200 * sim.Second)
	if !r.registries[0].Registered(r.manager.ID()) {
		t.Fatal("manager not registered")
	}
	for i, u := range r.users {
		if got := u.CachedVersion(r.manager.ID()); got != 1 {
			t.Errorf("user %d cached version %d, want 1", i, got)
		}
		if !u.Subscribed() {
			t.Errorf("user %d not subscribed", i)
		}
	}
	if got := r.registries[0].Subscribers(); got != 5 {
		t.Errorf("registry has %d event subscriptions, want 5", got)
	}
}

func TestChangePropagatesThroughRegistry(t *testing.T) {
	r := newRig(t, 2, 1, 5, DefaultConfig())
	r.k.At(1000*sim.Second, r.change)
	r.k.Run(1100 * sim.Second)
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("user %d never reached v2", i)
		}
		if at > 1001*sim.Second {
			t.Errorf("user %d consistent at %v, want within 1s", i, at)
		}
	}
}

// Table 2: Jini needs N+2 discovery-layer messages for one update with a
// single Registry (update + ack + N notifications), m' = 7 for N = 5.
func TestUpdateMessageCountSingleRegistry(t *testing.T) {
	r := newRig(t, 3, 1, 5, DefaultConfig())
	changeAt := 1000 * sim.Second
	r.k.At(changeAt, r.change)
	r.k.Run(1100 * sim.Second)
	var allDone sim.Time
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("user %d never consistent", i)
		}
		if at > allDone {
			allDone = at
		}
	}
	y := r.nw.Counters().CountedInWindow(changeAt, allDone)
	if y != 7 {
		t.Errorf("update effort y = %d, want 7 (Table 2: N+2 without TCP messages)", y)
	}
}

// Table 2: with two Registries the effort doubles to 2(N+2) = 14.
func TestUpdateMessageCountTwoRegistries(t *testing.T) {
	r := newRig(t, 4, 2, 5, DefaultConfig())
	changeAt := 1000 * sim.Second
	r.k.At(changeAt, r.change)
	r.k.Run(1100 * sim.Second)
	var allDone sim.Time
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("user %d never consistent", i)
		}
		if at > allDone {
			allDone = at
		}
	}
	if got := r.manager.KnownRegistries(); got != 2 {
		t.Fatalf("manager knows %d registries, want 2", got)
	}
	// The window is padded by a second so the duplicate events of the
	// slower Registry — part of the same exchange, in flight when the
	// last User turned consistent — are counted, as the paper's 2(N+2)
	// does.
	y := r.nw.Counters().CountedInWindow(changeAt, allDone+sim.Second)
	if y != 14 {
		t.Errorf("update effort y = %d, want 14 (Table 2: y(2N+2) without TCP)", y)
	}
}

// A missed remote event stays missed while leases hold: renewals carry no
// data, and Jini has no SRN2. The User's own failure across the change
// leaves it inconsistent for the rest of the run.
func TestMissedEventNotRepairedWhileLeasesLive(t *testing.T) {
	r := newRig(t, 5, 1, 1, DefaultConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailBoth,
		Start: 2023 * sim.Second, Duration: 810 * sim.Second, // up at 2833
	})
	r.k.At(2507*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	if _, ok := r.whenConsistent(u, 2); ok {
		t.Fatal("user regained consistency; Jini has no subscription-recovery beyond TCP")
	}
}

// The PR1 anomaly: a User that joins after the Manager registered is NOT
// notified of the existing registration; only the PR2 query finds it.
func TestPR1AnomalyRequiresQuery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Techniques = cfg.Techniques.Without(core.PR2) // ablate the query
	r := newRig(t, 6, 1, 0, cfg)
	// Create the late joiner only after the Manager's registration is in
	// place, so its notification request unambiguously post-dates it.
	var u *User
	r.k.At(200*sim.Second, func() {
		unode := r.nw.AddNode("LateUser")
		u = NewUser(unode, cfg, discovery.Query{ServiceType: "ColorPrinter"}, nil)
		u.Start(0)
	})
	r.k.Run(500 * sim.Second)
	if got := u.CachedVersion(r.manager.ID()); got != 0 {
		t.Fatalf("user discovered existing registration without PR2 (version %d)", got)
	}
	// A future re-registration IS notified: force one by failing the
	// Manager long enough for the Registry to purge it.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.manager.ID(), Mode: netsim.FailBoth,
		Start: 500 * sim.Second, Duration: 2000 * sim.Second, // up at 2500
	})
	r.k.Run(5400 * sim.Second)
	if got := u.CachedVersion(r.manager.ID()); got == 0 {
		t.Error("user not notified of the future re-registration (PR1)")
	}
}

// PR3: after the Registry purges a silent User, the renewal error sends
// the User back through join (notification request + query), which
// restores consistency.
func TestPR3RenewErrorRejoin(t *testing.T) {
	r := newRig(t, 7, 1, 1, DefaultConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailTx,
		Start: 200 * sim.Second, Duration: 2200 * sim.Second, // up at 2400
	})
	r.k.At(2100*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("PR3 did not recover consistency")
	}
	// Renewals run at 90% of the 1800s lease, so the recovery lands on
	// the first renewal tick after Tx recovery at 2400s.
	if at < 2400*sim.Second || at > 2400*sim.Second+1800*sim.Second {
		t.Errorf("recovered at %v, want within one renewal period of Tx recovery", at)
	}
}

// Registry-side staleness: the Manager's update REXes while the Registry
// is down; renewals then keep the stale registration alive, so Users stay
// inconsistent for the whole run — the weakness SRN2 would have fixed.
func TestRegistryStaleAfterMissedUpdate(t *testing.T) {
	r := newRig(t, 8, 1, 1, DefaultConfig())
	reg := r.registries[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: reg.ID(), Mode: netsim.FailRx,
		Start: 990 * sim.Second, Duration: 200 * sim.Second, // up at 1190
	})
	r.k.At(1000*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	if _, ok := r.whenConsistent(r.users[0], 2); ok {
		t.Fatal("user became consistent; the update should have been lost at the registry")
	}
}

// Manager re-registration after a long Manager failure (PR1) carries the
// current description and heals the whole system.
func TestPR1ReRegistrationHeals(t *testing.T) {
	r := newRig(t, 9, 1, 3, DefaultConfig())
	// Change first, while everyone is up — all users reach v2. Then the
	// change to v3 happens while the Manager is down.
	r.k.At(500*sim.Second, r.change)
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.manager.ID(), Mode: netsim.FailTx,
		Start: 900 * sim.Second, Duration: 2000 * sim.Second, // up at 2900
	})
	r.k.At(1000*sim.Second, r.change) // v3 lost: manager cannot transmit
	r.k.Run(5400 * sim.Second)
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 3)
		if !ok {
			t.Fatalf("user %d never reached v3", i)
		}
		if at < 2900*sim.Second {
			t.Errorf("user %d consistent at %v, before the manager recovered", i, at)
		}
	}
}

func TestTwoRegistriesDeliverDuplicateEvents(t *testing.T) {
	r := newRig(t, 10, 2, 1, DefaultConfig())
	u := r.users[0]
	r.k.Run(300 * sim.Second)
	if got := u.KnownRegistries(); got != 2 {
		t.Fatalf("user joined %d registries, want 2", got)
	}
	r.change()
	r.k.Run(400 * sim.Second)
	if got := u.CachedVersion(r.manager.ID()); got != 2 {
		t.Errorf("cached version = %d, want 2", got)
	}
}
