// Package jini models the Jini lookup architecture as the paper and the
// NIST studies describe it: a registry-based system with 3-party
// subscription over reliable unicast (TCP). Managers register their
// services at every lookup service (Registry) they discover; Users
// register interest in future service registrations (PR1, with Jini's
// documented anomaly: only *future* registrations are notified), always
// query right afterwards to pick up existing registrations (PR2), and
// subscribe for remote events carrying changed service descriptions.
// A Registry answers a renewal for a purged lease with a bare error,
// forcing the User to redo the whole join sequence (PR3).
//
// Topologies with one and two Registries reproduce the paper's "Jini with
// 1 Registry" and "Jini with 2 Registries" systems.
package jini

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// DiscoveryGroup is the multicast group used for Registry announcements.
const DiscoveryGroup netsim.Group = 1

// Config collects the model parameters; DefaultConfig reproduces §5.
type Config struct {
	// AnnouncePeriod and AnnounceCopies drive each Registry's multicast
	// announcement train ("the Registry sends 6 multicast announcements
	// messages every 120s").
	AnnouncePeriod sim.Duration
	AnnounceCopies int
	// CacheLease is how long a node keeps a discovered Registry quiet in
	// its cache, and how long a Registry keeps a registration (1800s).
	CacheLease sim.Duration
	// RegistrationLease is the Manager's service registration lease.
	RegistrationLease sim.Duration
	// SubscriptionLease covers event subscriptions and notification
	// requests.
	SubscriptionLease sim.Duration
	// TCP is the reliable transport's failure response.
	TCP netsim.TCPConfig
	// PollPeriod enables CM2, pull-based consistency maintenance (§4.2):
	// when positive, the User re-queries every known Registry this often,
	// persistently. Zero disables polling.
	PollPeriod sim.Duration
	// Techniques enables recovery techniques; ablations flip bits.
	Techniques core.TechniqueSet
	// Harden enables the protocol-hardening mechanisms (strict lease
	// enforcement, refusal of silent repository heals, retire-time Bye
	// frames); set via internal/harden. The zero value is the
	// paper-faithful baseline.
	Harden discovery.Hardening
}

// DefaultConfig returns the paper's Jini parameters.
func DefaultConfig() Config {
	return Config{
		AnnouncePeriod:    core.JiniAnnouncePeriod,
		AnnounceCopies:    core.JiniAnnounceCopies,
		CacheLease:        core.RegistrationLease,
		RegistrationLease: core.RegistrationLease,
		SubscriptionLease: core.SubscriptionLease,
		TCP:               netsim.DefaultTCPConfig(),
		Techniques:        core.JiniTechniques(),
	}
}
