package jini

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// The Registry vouches for the services discovered through it: while it
// announces, a User's cached record stays valid indefinitely without any
// events — and so does a stale one.
func TestRegistryAnnouncementsKeepCacheAlive(t *testing.T) {
	r := newRig(t, 40, 1, 1, DefaultConfig())
	u := r.users[0]
	r.k.Run(5400 * sim.Second)
	if got := u.CachedVersion(r.manager.ID()); got != 1 {
		t.Errorf("cache lost without failures: version %d", got)
	}
	if !u.Subscribed() {
		t.Error("subscription lost without failures")
	}
}

// A silent Registry is purged after its cache lease; the next
// announcement train re-joins, and the PR2 query restores the service.
func TestRegistryPurgeAndRejoin(t *testing.T) {
	r := newRig(t, 41, 1, 1, DefaultConfig())
	u := r.users[0]
	// Registry fully down for 2000s: everyone purges it.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.registries[0].ID(), Mode: netsim.FailBoth,
		Start: 500 * sim.Second, Duration: 2000 * sim.Second, // up at 2500
	})
	r.k.At(2400*sim.Second, func() {
		if got := u.KnownRegistries(); got != 0 {
			t.Errorf("user still knows %d registries during long registry outage", got)
		}
	})
	r.k.At(1000*sim.Second, r.change) // lost: registry down
	r.k.Run(5400 * sim.Second)
	if got := u.KnownRegistries(); got != 1 {
		t.Fatalf("user did not rejoin the recovered registry (knows %d)", got)
	}
	// The outage also expired the Manager's registration, so after
	// recovery the Manager's renewal errors and it re-registers with the
	// current description — PR1 then delivers v2 to the rejoined User.
	// (Staleness persists only when the registration lease survives the
	// outage; see TestRegistryStaleAfterMissedUpdate.)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("PR1 re-registration did not heal the rejoined user")
	}
	if at < 2500*sim.Second {
		t.Errorf("recovered at %v, before the registry was back", at)
	}
}

// Event subscriptions and notification requests expire at the Registry
// when the User goes silent.
func TestRegistryPurgesSilentUser(t *testing.T) {
	r := newRig(t, 42, 1, 1, DefaultConfig())
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.users[0].ID(), Mode: netsim.FailTx,
		Start: 300 * sim.Second, Duration: 4000 * sim.Second,
	})
	r.k.Run(2500 * sim.Second)
	if got := r.registries[0].Subscribers(); got != 0 {
		t.Errorf("registry still holds %d event subscriptions for a silent user", got)
	}
}

// With two Registries, losing either one at change time does not cost
// consistency: the other delivers the event. This is the redundancy that
// lifts Jini-2's effectiveness above Jini-1.
func TestTwoRegistryRedundancyCoversSingleRegistryLoss(t *testing.T) {
	for _, failIdx := range []int{0, 1} {
		r := newRig(t, 43, 2, 3, DefaultConfig())
		r.nw.ScheduleFailure(netsim.InterfaceFailure{
			Node: r.registries[failIdx].ID(), Mode: netsim.FailBoth,
			Start: 900 * sim.Second, Duration: 2000 * sim.Second,
		})
		r.k.At(1000*sim.Second, r.change)
		r.k.Run(1200 * sim.Second)
		for i, u := range r.users {
			at, ok := r.whenConsistent(u, 2)
			if !ok {
				t.Fatalf("registry %d down: user %d missed the event despite redundancy", failIdx, i)
			}
			if at > 1001*sim.Second {
				t.Errorf("registry %d down: user %d consistent at %v, want immediate", failIdx, i, at)
			}
		}
	}
}

// The notification request lease expires with the rest of the user's
// state; a later renewal gets the PR3 error and the full join sequence
// runs again.
func TestNotificationRequestExpiryTriggersPR3Rejoin(t *testing.T) {
	r := newRig(t, 44, 1, 1, DefaultConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailTx,
		Start: 300 * sim.Second, Duration: 3200 * sim.Second, // up at 3500
	})
	r.k.At(2000*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("PR3 rejoin did not restore consistency")
	}
	if at < 3500*sim.Second {
		t.Errorf("recovered at %v, before Tx recovery", at)
	}
}

// SRC2 via event sequence numbers: with two changes and the second event
// arriving first... sequence gaps need multiple events; with a single
// registry and ordered TCP the common case is a missed event followed by
// a later one, repaired by the gap-triggered query.
func TestEventSequenceGapTriggersQuery(t *testing.T) {
	r := newRig(t, 45, 1, 1, DefaultConfig())
	u := r.users[0]
	// The user's receiver fails across the first change only.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailRx,
		Start: 995 * sim.Second, Duration: 300 * sim.Second, // up at 1295
	})
	r.k.At(1000*sim.Second, r.change) // v2: event lost (REX)
	r.k.At(2000*sim.Second, r.change) // v3: delivered with a gap
	r.k.Run(2500 * sim.Second)
	if got := u.CachedVersion(r.manager.ID()); got != 3 {
		t.Fatalf("cached version %d, want 3", got)
	}
	if _, ok := r.whenConsistent(u, 3); !ok {
		t.Fatal("v3 never recorded")
	}
}
