package live

import (
	"encoding/json"
	"expvar"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/upnp"
	"repro/internal/verify"
)

// LookupWindow is the virtual time the gateway's port node collects
// SearchReply frames before answering a lookup. It comfortably covers
// the fabric's delay spread (Table 3: ≤100µs one-way) plus the Jini TCP
// handshake, and costs LookupWindow×Dilation wall time per lookup.
const LookupWindow = 250 * sim.Millisecond

// Gateway serves the running scenario over loopback HTTP, pushing
// update notifications over UDP. All simulation state it owns (client
// users, registered managers, pending lookups) is touched only on the
// driver goroutine, via Call — handlers are just JSON shims around
// injected functions.
type Gateway struct {
	d   *Driver
	srv *http.Server
	ln  net.Listener
	udp *net.UDPConn

	// Driver-goroutine-owned maps.
	users    map[netsim.NodeID]*clientUser
	managers map[netsim.NodeID]*managerState
	port     netsim.NodeID
	pending  []*lookup
	nextID   int
	measured uint64 // version of the measured printer service

	oracle *verify.Oracle // nil when not attached

	notifyCh   chan notifyFrame
	senderDone chan struct{}

	// Registry-backed progress counters (the driver's obs registry, so
	// one /metrics scrape covers fabric and gateway). PR-6 fixed the torn
	// histogram snapshot; the same discipline applies here — Stats loads
	// each atomic once, and every series is also scrapeable individually,
	// where tearing cannot arise at all.
	ops           *obs.Counter
	notifySent    *obs.Counter
	notifyDropped *obs.Counter
	injectErrs    *obs.Counter
	userCount     *obs.Gauge
	managerCount  *obs.Gauge
}

type clientUser struct {
	id     netsim.NodeID
	each   func(func(discovery.ServiceRecord))
	notify *net.UDPAddr // nil until subscribed
}

type managerState struct {
	change  func(func(map[string]string))
	version uint64
}

type notifyFrame struct {
	addr *net.UDPAddr
	buf  []byte
}

// lookup is one in-flight fabric search at the port node.
type lookup struct {
	q    discovery.Query
	seen map[netsim.NodeID]uint64 // manager -> newest version collected
	recs []discovery.ServiceRecord
}

// portEndpoint receives the port node's traffic on the driver
// goroutine and feeds replies to the pending lookups. UPnP search
// responses are SSDP-faithful — they name the Manager but carry no
// description — so the port follows up with a Get, exactly as a real
// control point fetches the description after M-SEARCH.
type portEndpoint struct{ gw *Gateway }

func (p portEndpoint) Deliver(m *netsim.Message) {
	switch reply := m.Payload.(type) {
	case discovery.SearchReply:
		for _, rec := range reply.Recs {
			if rec.SD == nil {
				p.gw.fetchDescription(rec.Manager)
				continue
			}
			p.gw.offer(rec)
		}
	case discovery.GetReply:
		if reply.Rec.SD != nil {
			p.gw.offer(reply.Rec)
		}
	}
}

// offer hands one full service record to every pending lookup whose
// query it matches, keeping only the newest version per Manager.
func (gw *Gateway) offer(rec discovery.ServiceRecord) {
	for _, lk := range gw.pending {
		if !lk.q.Matches(rec.SD) {
			continue
		}
		if v, dup := lk.seen[rec.Manager]; dup {
			if v >= rec.SD.Version() {
				continue
			}
			for i := range lk.recs {
				if lk.recs[i].Manager == rec.Manager {
					lk.recs[i] = rec
				}
			}
		} else {
			lk.recs = append(lk.recs, rec)
		}
		lk.seen[rec.Manager] = rec.SD.Version()
	}
}

// fetchDescription follows an SSDP-style location-only search response
// with a Get to the Manager, on the fabric.
func (gw *Gateway) fetchDescription(manager netsim.NodeID) {
	err := gw.d.sc.Net.ExternalUDP(gw.port, manager, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Get{}),
		Counted: true,
		Payload: discovery.Get{Manager: manager},
	})
	if err != nil {
		gw.injectErrs.Add(1)
	}
}

// OpenGateway binds the gateway to a started driver and begins serving
// on addr (host:port; port 0 picks one). The oracle argument may be
// nil.
func OpenGateway(d *Driver, addr string, oracle *verify.Oracle) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: gateway listen: %w", err)
	}
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("live: gateway notify socket: %w", err)
	}
	reg := d.Telemetry()
	gw := &Gateway{
		d:          d,
		ln:         ln,
		udp:        udp,
		users:      map[netsim.NodeID]*clientUser{},
		managers:   map[netsim.NodeID]*managerState{},
		measured:   1,
		oracle:     oracle,
		notifyCh:   make(chan notifyFrame, 4096),
		senderDone: make(chan struct{}),

		ops:           reg.Counter("sd_gateway_ops_total"),
		notifySent:    reg.Counter("sd_gateway_notify_sent_total"),
		notifyDropped: reg.Counter("sd_gateway_notify_dropped_total"),
		injectErrs:    reg.Counter("sd_gateway_inject_errors_total"),
		userCount:     reg.Gauge("sd_gateway_users"),
		managerCount:  reg.Gauge("sd_gateway_managers"),
	}
	// The port node: the gateway's own presence on the fabric, through
	// which lookups travel as real frames.
	if err := d.Call(func() {
		node := d.sc.Net.AddNode("GatewayPort")
		node.SetEndpoint(portEndpoint{gw})
		gw.port = node.ID
	}); err != nil {
		ln.Close()
		udp.Close()
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/attach", gw.handleAttach)
	mux.HandleFunc("POST /v1/register", gw.handleRegister)
	mux.HandleFunc("POST /v1/update", gw.handleUpdate)
	mux.HandleFunc("POST /v1/query", gw.handleQuery)
	mux.HandleFunc("POST /v1/lookup", gw.handleLookup)
	mux.HandleFunc("POST /v1/subscribe", gw.handleSubscribe)
	mux.HandleFunc("GET /v1/stats", gw.handleStats)
	mux.HandleFunc("GET /v1/oracle", gw.handleOracle)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	// Observability rides on the gateway listener, so a daemon needs no
	// second port: expvar, Prometheus text exposition of the driver's
	// registry, the flight-recorder rings, and pprof (registered
	// explicitly — this mux is not http.DefaultServeMux, so the package's
	// init-time registrations never reach it).
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /metrics", gw.handleMetrics)
	mux.HandleFunc("GET /debug/flight", gw.handleFlight)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	gw.srv = &http.Server{Handler: mux}
	go gw.srv.Serve(ln)
	go gw.sendNotifications()
	return gw, nil
}

// Addr reports the gateway's HTTP address.
func (gw *Gateway) Addr() string { return gw.ln.Addr().String() }

// Close stops serving: HTTP first (so no new injections arrive), then
// the driver, then the notification sender.
func (gw *Gateway) Close() {
	gw.srv.Close()
	gw.d.Stop()
	close(gw.notifyCh)
	<-gw.senderDone
	gw.udp.Close()
}

// Stats snapshots gateway and driver progress.
func (gw *Gateway) Stats() StatsResponse {
	ds := gw.d.Stats()
	return StatsResponse{
		VirtualSec:    ds.VirtualTime.Sec(),
		EventsFired:   ds.EventsFired,
		Injections:    ds.Injections,
		Ops:           gw.ops.Load(),
		NotifySent:    gw.notifySent.Load(),
		NotifyDropped: gw.notifyDropped.Load(),
		InjectErrors:  gw.injectErrs.Load(),
		Users:         int(gw.userCount.Load()),
		Managers:      int(gw.managerCount.Load()),
	}
}

// clientCacheUpdated is the listener every spawned client User is
// constructed with: it first feeds the write through the driver's
// fan-out (so an attached oracle audits external clients' cache writes
// exactly like boot-time Users'), then the gateway's own notification
// tap. Runs on the driver goroutine.
func (gw *Gateway) clientCacheUpdated(t sim.Time, user, manager netsim.NodeID, version uint64) {
	gw.d.dispatchCacheUpdate(t, user, manager, version)
	gw.CacheUpdated(t, user, manager, version)
}

// CacheUpdated implements discovery.ConsistencyListener: the gateway's
// notification tap for subscribed client Users.
func (gw *Gateway) CacheUpdated(t sim.Time, user, manager netsim.NodeID, version uint64) {
	cu := gw.users[user]
	if cu == nil || cu.notify == nil {
		return
	}
	buf, err := json.Marshal(Notification{
		User: int(user), Manager: int(manager), Version: version, Virtual: t.Sec(),
	})
	if err != nil {
		return
	}
	select {
	case gw.notifyCh <- notifyFrame{addr: cu.notify, buf: buf}:
	default:
		gw.notifyDropped.Add(1)
	}
}

func (gw *Gateway) sendNotifications() {
	defer close(gw.senderDone)
	for f := range gw.notifyCh {
		if _, err := gw.udp.WriteToUDP(f.buf, f.addr); err == nil {
			gw.notifySent.Add(1)
		} else {
			gw.notifyDropped.Add(1)
		}
	}
}

// --- HTTP handlers -------------------------------------------------

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var req T
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return req, false
	}
	return req, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire, so the client sees a
		// half-written body; log it instead of failing silently.
		log.Printf("live: gateway response encode failed (status %d): %v", code, err)
	}
}

func (gw *Gateway) fail(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (gw *Gateway) handleAttach(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[attachRequest](w, r)
	if !ok {
		return
	}
	var id netsim.NodeID
	err := gw.d.Call(func() {
		gw.nextID++
		uid, each := gw.d.sc.SpawnUser(fmt.Sprintf("live-client-%d", gw.nextID), req.Query.toQuery(), discovery.ListenerFunc(gw.clientCacheUpdated))
		gw.users[uid] = &clientUser{id: uid, each: each}
		id = uid
	})
	if err != nil {
		gw.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	gw.ops.Add(1)
	gw.userCount.Add(1)
	writeJSON(w, http.StatusOK, attachResponse{User: int(id)})
}

func (gw *Gateway) handleRegister(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[registerRequest](w, r)
	if !ok {
		return
	}
	if req.Spec.Service == "" {
		gw.fail(w, http.StatusBadRequest, "register: empty service type")
		return
	}
	var id netsim.NodeID
	err := gw.d.Call(func() {
		gw.nextID++
		mid, change := gw.d.sc.SpawnManager(fmt.Sprintf("live-manager-%d", gw.nextID), req.Spec.toSD())
		gw.managers[mid] = &managerState{change: change, version: 1}
		id = mid
	})
	if err != nil {
		gw.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	gw.ops.Add(1)
	gw.managerCount.Add(1)
	writeJSON(w, http.StatusOK, registerResponse{Manager: int(id), Version: 1})
}

func (gw *Gateway) handleUpdate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[updateRequest](w, r)
	if !ok {
		return
	}
	if netsim.NodeID(req.Manager) == gw.d.sc.ManagerID && len(req.Attrs) > 0 {
		// The measured printer's change is the paper's canonical
		// mutation (applied via FireChange below); client attrs cannot
		// be merged into it, so reject them instead of silently
		// dropping them.
		gw.fail(w, http.StatusBadRequest,
			"update: the measured printer's change is fixed; update it without attrs")
		return
	}
	var version uint64
	var unknown bool
	err := gw.d.Call(func() {
		id := netsim.NodeID(req.Manager)
		mutate := func(attrs map[string]string) {
			for k, v := range req.Attrs {
				attrs[k] = v
			}
			if len(req.Attrs) == 0 {
				attrs["Rev"] = strconv.FormatUint(version, 10)
			}
		}
		if id == gw.d.sc.ManagerID {
			// The measured printer: go through the change tap so an
			// attached oracle records the publication.
			gw.measured++
			version = gw.measured
			gw.d.sc.FireChange()
			return
		}
		ms := gw.managers[id]
		if ms == nil {
			unknown = true
			return
		}
		ms.version++
		version = ms.version
		ms.change(mutate)
	})
	if err != nil {
		gw.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if unknown {
		gw.fail(w, http.StatusNotFound, "update: unknown manager %d", req.Manager)
		return
	}
	gw.ops.Add(1)
	writeJSON(w, http.StatusOK, updateResponse{Version: version})
}

func (gw *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[queryRequest](w, r)
	if !ok {
		return
	}
	var recs []Record
	var unknown bool
	err := gw.d.Call(func() {
		cu := gw.users[netsim.NodeID(req.User)]
		if cu == nil {
			unknown = true
			return
		}
		cu.each(func(rec discovery.ServiceRecord) {
			recs = append(recs, toRecord(rec))
		})
	})
	if err != nil {
		gw.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if unknown {
		gw.fail(w, http.StatusNotFound, "query: unknown user %d", req.User)
		return
	}
	gw.ops.Add(1)
	writeJSON(w, http.StatusOK, queryResponse{Records: recs})
}

func (gw *Gateway) handleLookup(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[lookupRequest](w, r)
	if !ok {
		return
	}
	q := req.Query.toQuery()
	done := make(chan struct{})
	var recs []Record
	err := gw.d.Call(func() {
		lk := &lookup{q: q, seen: map[netsim.NodeID]uint64{}}
		gw.pending = append(gw.pending, lk)
		gw.sendLookup(q)
		gw.d.k.After(LookupWindow, func() {
			for i, p := range gw.pending {
				if p == lk {
					gw.pending = append(gw.pending[:i], gw.pending[i+1:]...)
					break
				}
			}
			for _, rec := range lk.recs {
				recs = append(recs, toRecord(rec))
			}
			close(done)
		})
	})
	if err != nil {
		gw.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	select {
	case <-done:
	case <-gw.d.Done():
		gw.fail(w, http.StatusServiceUnavailable, "%v", ErrStopped)
		return
	}
	gw.ops.Add(1)
	writeJSON(w, http.StatusOK, lookupResponse{Records: recs})
}

// sendLookup puts the search on the fabric: unicast to every Registry
// slot where the system has Registries (Jini's lookup services, FRODO's
// Central — non-Central 300D slots simply ignore it), multicast into
// the discovery group where it does not (UPnP's M-SEARCH, answered by
// Managers directly). Injection failures (a retired Registry slot)
// cannot panic the loop; they are counted so an empty lookup under
// failures is distinguishable from "service not found".
func (gw *Gateway) sendLookup(q discovery.Query) {
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Search{}),
		Counted: true,
		Payload: discovery.Search{Q: q},
	}
	regs := gw.d.sc.RegistryIDs()
	if len(regs) == 0 {
		if gw.d.sc.Net.ExternalMulticast(gw.port, upnp.DiscoveryGroup, out) != nil {
			gw.injectErrs.Add(1)
		}
		return
	}
	for _, reg := range regs {
		if gw.d.sc.Net.ExternalUDP(gw.port, reg, out) != nil {
			gw.injectErrs.Add(1)
		}
	}
}

func (gw *Gateway) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[subscribeRequest](w, r)
	if !ok {
		return
	}
	addr, err := net.ResolveUDPAddr("udp", req.Addr)
	if err != nil {
		gw.fail(w, http.StatusBadRequest, "subscribe: bad addr %q: %v", req.Addr, err)
		return
	}
	var unknown bool
	err = gw.d.Call(func() {
		cu := gw.users[netsim.NodeID(req.User)]
		if cu == nil {
			unknown = true
			return
		}
		cu.notify = addr
	})
	if err != nil {
		gw.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if unknown {
		gw.fail(w, http.StatusNotFound, "subscribe: unknown user %d", req.User)
		return
	}
	gw.ops.Add(1)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (gw *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, gw.Stats())
}

func (gw *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gw.d.Telemetry().WritePrometheus(w)
}

func (gw *Gateway) handleFlight(w http.ResponseWriter, r *http.Request) {
	snaps := gw.d.FlightDump()
	if snaps == nil {
		gw.fail(w, http.StatusNotFound, "flight recorders disabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteFlightJSON(w, snaps)
}

func (gw *Gateway) handleOracle(w http.ResponseWriter, r *http.Request) {
	if gw.oracle == nil {
		writeJSON(w, http.StatusOK, OracleResponse{Attached: false, Clean: true})
		return
	}
	var rep verify.OracleReport
	if err := gw.d.Call(func() { rep = gw.d.oracleReport() }); err != nil {
		gw.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := OracleResponse{Attached: true, Total: rep.Total, Clean: rep.Clean()}
	for _, v := range rep.Violations {
		resp.Violations = append(resp.Violations, v.String())
	}
	writeJSON(w, http.StatusOK, resp)
}
