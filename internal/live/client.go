package live

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Client drives a live gateway over loopback HTTP. One Client is one
// external participant; sdload runs thousands of them concurrently
// against one gateway (they may share a Transport via NewClientWith).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a gateway at addr ("127.0.0.1:port").
func NewClient(addr string) *Client {
	return NewClientWith(addr, &http.Client{Timeout: 30 * time.Second})
}

// NewClientWith shares an http.Client (and so its connection pool)
// across many Clients — essential when a load generator runs more
// clients than the OS grants file descriptors.
func NewClientWith(addr string, hc *http.Client) *Client {
	return &Client{base: "http://" + addr, hc: hc}
}

func (c *Client) post(path string, req, resp any) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
	}()
	if hr.StatusCode != http.StatusOK {
		var er errorResponse
		if json.NewDecoder(hr.Body).Decode(&er) == nil && er.Error != "" {
			return fmt.Errorf("live: %s: %s", path, er.Error)
		}
		return fmt.Errorf("live: %s: HTTP %d", path, hr.StatusCode)
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(hr.Body).Decode(resp)
}

// Attach spawns a protocol User with the given requirement and returns
// its node ID — the client's identity for Query and Subscribe.
func (c *Client) Attach(q ServiceQuery) (int, error) {
	var resp attachResponse
	if err := c.post("/v1/attach", attachRequest{Query: q}, &resp); err != nil {
		return 0, err
	}
	return resp.User, nil
}

// Register spawns a Manager hosting the service and returns its node ID.
func (c *Client) Register(spec ServiceSpec) (int, error) {
	var resp registerResponse
	if err := c.post("/v1/register", registerRequest{Spec: spec}, &resp); err != nil {
		return 0, err
	}
	return resp.Manager, nil
}

// Update mutates a registered service's attributes, bumping its
// version; the new version is returned.
func (c *Client) Update(manager int, attrs map[string]string) (uint64, error) {
	var resp updateResponse
	if err := c.post("/v1/update", updateRequest{Manager: manager, Attrs: attrs}, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Query reads the client User's cache — what the protocol has
// discovered so far for the Attach-time requirement.
func (c *Client) Query(user int) ([]Record, error) {
	var resp queryResponse
	if err := c.post("/v1/query", queryRequest{User: user}, &resp); err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// Lookup searches the fabric with real frames from the gateway's port
// node and returns what the live Registries and Managers answered.
func (c *Client) Lookup(q ServiceQuery) ([]Record, error) {
	var resp lookupResponse
	if err := c.post("/v1/lookup", lookupRequest{Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// Subscribe asks the gateway to push the user's cache writes as UDP
// datagrams to addr (usually a NotifyHub's).
func (c *Client) Subscribe(user int, addr string) error {
	return c.post("/v1/subscribe", subscribeRequest{User: user, Addr: addr}, nil)
}

// Stats reads the gateway's progress counters.
func (c *Client) Stats() (StatsResponse, error) {
	var resp StatsResponse
	hr, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return resp, err
	}
	defer hr.Body.Close()
	return resp, json.NewDecoder(hr.Body).Decode(&resp)
}

// Oracle reads the gateway's consistency-oracle report.
func (c *Client) Oracle() (OracleResponse, error) {
	var resp OracleResponse
	hr, err := c.hc.Get(c.base + "/v1/oracle")
	if err != nil {
		return resp, err
	}
	defer hr.Body.Close()
	return resp, json.NewDecoder(hr.Body).Decode(&resp)
}

// NotifyHub receives pushed notifications on one shared UDP socket and
// dispatches them to per-user channels, so a thousand load-generator
// clients cost one file descriptor, not a thousand.
type NotifyHub struct {
	conn *net.UDPConn
	mu   sync.Mutex
	subs map[int]chan Notification
	done chan struct{}
}

// NewNotifyHub opens the hub on an ephemeral loopback port.
func NewNotifyHub() (*NotifyHub, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	h := &NotifyHub{conn: conn, subs: map[int]chan Notification{}, done: make(chan struct{})}
	go h.loop()
	return h, nil
}

// Addr reports the hub's listening address, for Client.Subscribe.
func (h *NotifyHub) Addr() string { return h.conn.LocalAddr().String() }

// Chan returns the notification channel for one user, creating it on
// first use. The channel is buffered; overflow drops (UDP semantics
// end to end).
func (h *NotifyHub) Chan(user int) <-chan Notification {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := h.subs[user]
	if ch == nil {
		ch = make(chan Notification, 64)
		h.subs[user] = ch
	}
	return ch
}

// Close stops the hub.
func (h *NotifyHub) Close() {
	h.conn.Close()
	<-h.done
}

func (h *NotifyHub) loop() {
	defer close(h.done)
	buf := make([]byte, 64<<10)
	for {
		n, _, err := h.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		var note Notification
		if json.Unmarshal(buf[:n], &note) != nil {
			continue
		}
		h.mu.Lock()
		ch := h.subs[note.User]
		h.mu.Unlock()
		if ch == nil {
			continue
		}
		select {
		case ch <- note:
		default:
		}
	}
}
