package live

import (
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/verify"
)

// The driver must serialize injections into the event loop in order,
// at non-decreasing virtual times.
func TestDriverInjectionOrdering(t *testing.T) {
	d, err := New(Config{System: experiment.Frodo2P, Dilation: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Stop()

	var mu sync.Mutex
	var order []int
	var times []sim.Time
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		i := i
		wg.Add(1)
		if err := d.Inject(func() {
			mu.Lock()
			order = append(order, i)
			times = append(times, d.k.Now())
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("injections ran out of order: %v", order[:i+1])
		}
		if times[i] < times[i-1] {
			t.Fatalf("virtual time rewound across injections: %v then %v", times[i-1], times[i])
		}
	}
}

// After Stop, Inject and Call fail with ErrStopped instead of hanging.
func TestDriverStopped(t *testing.T) {
	d, err := New(Config{System: experiment.UPnP, Dilation: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	d.Stop()
	if err := d.Call(func() {}); err != ErrStopped {
		t.Fatalf("Call after Stop = %v; want ErrStopped", err)
	}
}

// serveTest boots a server for one system at an aggressive dilation.
func serveTest(t *testing.T, sys experiment.System) (*Server, *Client) {
	t.Helper()
	ocfg := verify.DefaultOracleConfig(sys)
	srv, err := Serve(Config{
		System:   sys,
		Topology: experiment.Topology{Users: 2},
		Seed:     7,
		Dilation: 1e-5, // 100,000× faster than the wall clock
		Oracle:   &ocfg,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.Addr())
}

// waitDiscovered polls the user's cache until the service shows up.
func waitDiscovered(t *testing.T, cl *Client, user int, wait time.Duration) []Record {
	t.Helper()
	deadline := time.Now().Add(wait)
	for time.Now().Before(deadline) {
		recs, err := cl.Query(user)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if len(recs) > 0 {
			return recs
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("user %d never discovered its service within %v", user, wait)
	return nil
}

// The full serving loop on every system: register a service through
// the gateway, discover it from a client User, subscribe, update, and
// receive the pushed notification with the right version — with the
// consistency oracle attached and clean throughout.
func TestLiveServeRoundTrip(t *testing.T) {
	for _, sys := range experiment.Systems() {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			t.Parallel()
			_, cl := serveTest(t, sys)

			mgr, err := cl.Register(ServiceSpec{Device: "Cam", Service: "PanTilt",
				Attrs: map[string]string{"Zoom": "3x"}})
			if err != nil {
				t.Fatalf("register: %v", err)
			}
			user, err := cl.Attach(ServiceQuery{Service: "PanTilt"})
			if err != nil {
				t.Fatalf("attach: %v", err)
			}
			hub, err := NewNotifyHub()
			if err != nil {
				t.Fatal(err)
			}
			defer hub.Close()
			notes := hub.Chan(user)
			if err := cl.Subscribe(user, hub.Addr()); err != nil {
				t.Fatalf("subscribe: %v", err)
			}

			recs := waitDiscovered(t, cl, user, 30*time.Second)
			if recs[0].Manager != mgr || recs[0].Service != "PanTilt" {
				t.Fatalf("discovered %+v; want manager %d service PanTilt", recs[0], mgr)
			}

			v, err := cl.Update(mgr, map[string]string{"Zoom": "10x"})
			if err != nil {
				t.Fatalf("update: %v", err)
			}
			if v != 2 {
				t.Fatalf("update version = %d; want 2", v)
			}
			deadline := time.After(30 * time.Second)
			for {
				select {
				case n := <-notes:
					if n.Version >= 2 {
						if n.Manager != mgr {
							t.Fatalf("notification for manager %d; want %d", n.Manager, mgr)
						}
						goto notified
					}
				case <-deadline:
					t.Fatal("no pushed notification of version 2")
				}
			}
		notified:
			// The updated description must be readable from the cache.
			recs, err = cl.Query(user)
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			if len(recs) == 0 || recs[0].Version < 2 || recs[0].Attrs["Zoom"] != "10x" {
				t.Fatalf("cache after update: %+v", recs)
			}

			rep, err := cl.Oracle()
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if !rep.Attached || !rep.Clean {
				t.Fatalf("oracle report: %+v", rep)
			}
		})
	}
}

// Lookup must answer from live protocol state with real frames through
// the fabric: Registry repositories for Jini/FRODO, Manager M-SEARCH
// responses for UPnP.
func TestLiveLookup(t *testing.T) {
	for _, sys := range []experiment.System{experiment.UPnP, experiment.Jini1, experiment.Frodo2P} {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			t.Parallel()
			_, cl := serveTest(t, sys)

			if _, err := cl.Register(ServiceSpec{Device: "Sensor", Service: "Thermo"}); err != nil {
				t.Fatalf("register: %v", err)
			}
			// The registration needs fabric time to reach the Registry
			// (or, for UPnP, the Manager just needs to answer M-SEARCH).
			deadline := time.Now().Add(30 * time.Second)
			for {
				recs, err := cl.Lookup(ServiceQuery{Service: "Thermo"})
				if err != nil {
					t.Fatalf("lookup: %v", err)
				}
				if len(recs) > 0 {
					if recs[0].Service != "Thermo" {
						t.Fatalf("lookup returned %+v", recs[0])
					}
					return
				}
				if time.Now().After(deadline) {
					t.Fatal("lookup never found the registered service")
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}

// Gateway validation: unknown users and managers are 404s, not panics.
func TestGatewayValidation(t *testing.T) {
	_, cl := serveTest(t, experiment.Jini1)
	if _, err := cl.Query(9999); err == nil {
		t.Error("query of unknown user succeeded")
	}
	if _, err := cl.Update(9999, nil); err == nil {
		t.Error("update of unknown manager succeeded")
	}
	if err := cl.Subscribe(9999, "127.0.0.1:1"); err == nil {
		t.Error("subscribe of unknown user succeeded")
	}
	if _, err := cl.Register(ServiceSpec{}); err == nil {
		t.Error("register with empty service type succeeded")
	}
}

// Stop on a driver that was never started must be a clean no-op
// shutdown, not a deadlock.
func TestDriverStopBeforeStart(t *testing.T) {
	d, err := New(Config{System: experiment.UPnP, Dilation: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { d.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked on a never-started driver")
	}
	if err := d.Inject(func() {}); err != ErrStopped {
		t.Fatalf("Inject after Stop = %v; want ErrStopped", err)
	}
}

// TestLiveServeSharded runs the gateway round trip against a sharded
// fabric: the driver's event loop coordinates a 3-shard ShardSet while
// external registration, discovery, update and push notification all
// land through shard 0 — and the per-shard oracles stay clean.
func TestLiveServeSharded(t *testing.T) {
	ocfg := verify.DefaultOracleConfig(experiment.Frodo2P)
	srv, err := Serve(Config{
		System:   experiment.Frodo2P,
		Topology: experiment.Topology{Users: 6},
		Seed:     7,
		Shards:   3,
		Dilation: 1e-5,
		Oracle:   &ocfg,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(srv.Addr())

	mgr, err := cl.Register(ServiceSpec{Device: "Cam", Service: "PanTilt",
		Attrs: map[string]string{"Zoom": "3x"}})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	user, err := cl.Attach(ServiceQuery{Service: "PanTilt"})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	recs := waitDiscovered(t, cl, user, 30*time.Second)
	if recs[0].Manager != mgr {
		t.Fatalf("discovered %+v; want manager %d", recs[0], mgr)
	}
	if v, err := cl.Update(mgr, map[string]string{"Zoom": "10x"}); err != nil || v != 2 {
		t.Fatalf("update: v=%d err=%v", v, err)
	}
	// The fabric must genuinely advance all shards: remote Users' boot
	// and announce traffic contributes to the fired-event count.
	if st := srv.Driver.Stats(); st.EventsFired == 0 {
		t.Fatalf("no events fired on the sharded fabric")
	}
	rep, err := cl.Oracle()
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !rep.Attached || !rep.Clean {
		t.Fatalf("oracle report: %+v", rep)
	}
	srv.Close()
	if mrep, ok := srv.OracleReport(); !ok || !mrep.Clean() {
		t.Fatalf("merged oracle report after close: ok=%v %+v", ok, mrep)
	}
}
