package live

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestTimeMapLargeOffsets pins the integer wall↔virtual mapping at
// offsets past 2^53 nanoseconds, where the float64 mapping it replaced
// lost integer precision and drifted.
func TestTimeMapLargeOffsets(t *testing.T) {
	t0 := time.Unix(0, 0)
	v0 := sim.Time(7 * sim.Second)

	// Dilation 0.5: every wall nanosecond is exactly two virtual ones.
	tm := newTimeMap(t0, v0, 0.5)
	// (1<<60)+1 ns ≈ 36.6 wall-years; float64 cannot represent the +1.
	off := int64(1<<60 + 1)
	got := tm.vAt(t0.Add(time.Duration(off)))
	want := v0 + sim.Time(2*off)
	if got != want {
		t.Fatalf("vAt at 2^60+1 ns: got %d, want %d (drift %d ns)", got, want, int64(got-want))
	}
	// Round trip back to the exact wall instant.
	if back := tm.wallAt(want); !back.Equal(t0.Add(time.Duration(off))) {
		t.Fatalf("wallAt round trip: got %v, want %v", back, t0.Add(time.Duration(off)))
	}

	// Dilation 0.001 (the sdlived fast mode): 1 wall ms per virtual s.
	tm = newTimeMap(t0, 0, 0.001)
	off = int64(1<<53 + 3)
	got = tm.vAt(t0.Add(time.Duration(off)))
	want = sim.Time(off * 1000)
	if got != want {
		t.Fatalf("vAt dilation 0.001: got %d, want %d", got, want)
	}

	// Monotonicity across consecutive nanoseconds at a large offset: the
	// float path could map a later wall instant to an earlier virtual
	// time, violating the non-decreasing RunUntil contract.
	base := t0.Add(time.Duration(int64(1) << 58))
	prev := tm.vAt(base)
	for i := 1; i <= 1000; i++ {
		v := tm.vAt(base.Add(time.Duration(i)))
		if v < prev {
			t.Fatalf("vAt went backwards at offset 2^58+%d", i)
		}
		prev = v
	}

	// Instants before t0 clamp to v0 instead of going negative.
	if v := tm.vAt(t0.Add(-time.Hour)); v != 0 {
		t.Fatalf("vAt before t0: got %d, want 0", v)
	}
}
