// Package live is the real-time execution backend: it turns the
// discrete-event stack — kernel, network, protocol instances, scenario
// construction, consistency oracle — into a serving system without
// forking any protocol code.
//
// The split of responsibilities:
//
//   - Driver owns a sim.Kernel and its Scenario on one dedicated
//     goroutine and maps virtual time onto the wall clock with a
//     configurable dilation factor. Everything that touches simulation
//     state goes through Driver.Inject/Call, which serialize external
//     work into the event loop — the kernel stays single-threaded, the
//     protocols never learn they are serving real traffic.
//   - Gateway (gateway.go) exposes the running scenario over loopback
//     HTTP and UDP: external clients register services, query, update
//     and subscribe; requests become scenario mutations or real frames
//     on the simulated fabric; update notifications are pushed as UDP
//     datagrams from the Users' cache-write taps.
//   - Server (server.go) bundles the two behind one Serve call; the
//     sdlived daemon and sdload load generator (cmd/) drive it from the
//     command line.
//
// Virtual-time replay is untouched: the live path only ever calls the
// same public simulation APIs the experiment harness uses, draws no
// extra randomness during construction, and is compiled into binaries
// the deterministic sweeps never load.
package live

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/discovery"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/verify"
)

// ErrStopped is returned by Inject and Call after the driver stopped.
var ErrStopped = errors.New("live: driver stopped")

// Config parameterizes a live scenario.
type Config struct {
	// System selects one of the five simulated systems.
	System experiment.System
	// Topology is the base population built at boot (scenario Users,
	// Managers, Registries); external clients and registrations come on
	// top via the gateway. Zero value: the paper's Table 4 shape.
	Topology experiment.Topology
	// Options customizes protocol configuration and link conditioning,
	// exactly as for virtual runs.
	Options experiment.Options
	// Seed derives the kernel's random stream. 0 means 1.
	Seed int64
	// Dilation maps virtual onto wall-clock time: wall seconds per
	// virtual second. 1.0 serves in real time; 0.001 runs the fabric a
	// thousandfold faster, so second-scale protocol timers land on
	// millisecond-scale wall latencies. 0 means 1.0.
	Dilation float64
	// Shards, when ≥ 2, serves the scenario from a sharded fabric
	// (experiment.BuildSharded): Users spread round-robin across S
	// kernel/network pairs advancing in parallel, infrastructure and
	// gateway-facing spawns on shard 0. FRODO systems only. Remote
	// shards' Users are measured (and audited by per-shard oracles) but
	// not reachable through the gateway's subscribe/notify taps, which
	// observe shard 0. 0 or 1 serves the classic single-kernel fabric.
	Shards int
	// CrossLink characterizes the inter-shard links of a sharded fabric
	// (minimum delay = conservative lookahead). The zero value means
	// netsim.DefaultCrossLink; ignored when Shards < 2.
	CrossLink netsim.CrossLink
	// Oracle, when non-nil, attaches the run-time consistency oracle to
	// the live driver via the tracer tee; zero fields take the system's
	// defaults. The gateway exposes the report at /v1/oracle.
	Oracle *verify.OracleConfig
	// Attach, when set, observes the built scenario before the clock
	// starts (extra tracers, test instrumentation).
	Attach func(*experiment.Scenario)
	// Telemetry is the metrics registry the driver feeds (frame counters
	// per shard, barrier accounting, kernel gauges, oracle near-misses).
	// Nil means a fresh private registry — deliberately NOT the
	// experiment package's process default, so a daemon's live series
	// never interleave with a sweep's. Read it back with
	// Driver.Telemetry; the gateway serves it at /metrics.
	Telemetry *obs.Registry
	// FlightSize is the per-shard flight-recorder ring capacity (recent
	// trace events, dumped on oracle violation or operator signal).
	// 0 means obs.DefaultFlightSize; negative disables the recorders.
	FlightSize int
}

// fabric is what the event loop advances: a single kernel, or a
// ShardSet whose coordinator runs on the loop goroutine. Both expose
// the same resumable-RunUntil contract.
type fabric interface {
	RunUntil(sim.Time)
	Now() sim.Time
	NextEventTime() (sim.Time, bool)
	Fired() uint64
}

// Driver runs one scenario in wall-clock time. Create with New,
// customize (AttachOracle, AddListener, OnChange), then Start; after
// Start all access to simulation state must go through Inject or Call.
type Driver struct {
	cfg Config
	k   *sim.Kernel // shard 0's kernel on a sharded fabric
	sc  *experiment.Scenario
	fab fabric
	ss  *experiment.ShardSet // nil on a single-kernel fabric

	// oracles holds every oracle AttachOracle hooked up — one on a
	// single fabric, one per shard on a sharded one. Reports are merged.
	oracles []*verify.Oracle

	// reg is the telemetry registry (never nil after New); flights holds
	// one flight recorder per shard, nil when disabled. Ring memory is
	// plain; snapshot via FlightDump (event loop or post-stop only).
	reg     *obs.Registry
	flights []*obs.FlightRecorder
	pending *obs.Gauge // shard 0 kernel queue depth, set each loop pass

	inj      chan func()
	stopCh   chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
	// dead flips (under deadMu) after the event loop exits and before
	// the final injection drain, so an Inject racing with shutdown
	// either lands in the buffer the drain will empty or observes dead
	// and reports ErrStopped — never a silently dropped function.
	dead   bool
	deadMu sync.RWMutex

	// listeners and changeHooks fan the scenario's single-slot
	// consistency and change taps out to several observers (oracle,
	// gateway notifier). Mutated only before Start or via Inject.
	listeners   []discovery.ConsistencyListener
	changeHooks []func()

	// Cross-goroutine progress counters.
	vnow       atomic.Int64
	fired      atomic.Uint64
	injections atomic.Uint64
}

// Stats is a point-in-time snapshot of driver progress, readable from
// any goroutine.
type Stats struct {
	// VirtualTime is the kernel clock as of the last event-loop pass.
	VirtualTime sim.Time
	// EventsFired counts executed simulation events.
	EventsFired uint64
	// Injections counts external functions serialized into the loop.
	Injections uint64
}

// New builds the scenario for live serving. The returned driver is
// idle: the virtual clock does not advance until Start.
func New(cfg Config) (*Driver, error) {
	if cfg.Dilation < 0 {
		return nil, fmt.Errorf("live: negative dilation %v", cfg.Dilation)
	}
	if cfg.Dilation == 0 {
		cfg.Dilation = 1.0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	topo := cfg.Topology
	if topo.Users <= 0 {
		topo.Users = 5
	}
	d := &Driver{
		cfg:    cfg,
		inj:    make(chan func(), 1024),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	if cfg.Shards >= 2 {
		ss, err := experiment.BuildSharded(cfg.System, topo, cfg.Options, cfg.Seed, cfg.Shards, cfg.CrossLink)
		if err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
		d.ss = ss
		d.fab = ss
		d.sc = ss.Scenario()
		d.k = d.sc.K
	} else {
		k := sim.New(cfg.Seed)
		d.k = k
		d.fab = k
		d.sc = experiment.BuildTopology(cfg.System, k, topo, cfg.Options)
	}
	// Telemetry: per-shard frame metering and flight recorders ride the
	// tracer tee; the fabric's barrier accounting hooks into the ShardSet.
	d.reg = cfg.Telemetry
	if d.reg == nil {
		d.reg = obs.NewRegistry()
	}
	shards := 1
	if d.ss != nil {
		shards = d.ss.Shards()
	}
	for s := 0; s < shards; s++ {
		ssc := d.sc
		if d.ss != nil {
			ssc = d.ss.ShardScenario(s)
		}
		ssc.AddTracer(d.reg.NetTracer(s))
		if cfg.FlightSize >= 0 {
			fr := obs.NewFlightRecorder(s, cfg.FlightSize)
			ssc.AddTracer(fr)
			d.flights = append(d.flights, fr)
		}
	}
	if d.ss != nil {
		d.ss.SetMetrics(obs.NewFabricMetrics(d.reg, shards))
	} else {
		d.pending = d.reg.Gauge("sd_kernel_pending", "shard", "0")
	}
	d.reg.GaugeFunc("sd_live_virtual_seconds", func() float64 {
		return sim.Time(d.vnow.Load()).Sec()
	})
	d.reg.GaugeFunc("sd_live_events_fired", func() float64 {
		return float64(d.fired.Load())
	})
	// Install the fan-out taps now, so oracle and gateway can both
	// observe without displacing each other.
	d.sc.TapConsistency(discovery.ListenerFunc(d.dispatchCacheUpdate))
	d.sc.TapChange(d.dispatchChange)
	if cfg.Oracle != nil {
		d.AttachOracle(*cfg.Oracle)
	}
	if cfg.Attach != nil {
		cfg.Attach(d.sc)
	}
	return d, nil
}

// Telemetry exposes the driver's metrics registry: counters and gauges
// are atomics, readable from any goroutine (the gateway scrapes them
// while the loop runs).
func (d *Driver) Telemetry() *obs.Registry { return d.reg }

// Scenario exposes the built scenario. Before Start it may be used
// directly; afterwards only from functions run via Inject or Call.
func (d *Driver) Scenario() *experiment.Scenario { return d.sc }

// Kernel exposes the kernel under the same access contract as Scenario.
func (d *Driver) Kernel() *sim.Kernel { return d.k }

// Done is closed when the event loop has exited.
func (d *Driver) Done() <-chan struct{} { return d.done }

// AddListener registers a consistency listener on the fan-out tap.
// Before Start only.
func (d *Driver) AddListener(l discovery.ConsistencyListener) {
	d.mustNotBeStarted()
	d.listeners = append(d.listeners, l)
}

// OnChange registers a hook run after every measured-service change.
// Before Start only.
func (d *Driver) OnChange(fn func()) {
	d.mustNotBeStarted()
	d.changeHooks = append(d.changeHooks, fn)
}

// AttachOracle hooks a run-time consistency oracle onto the live
// scenario: the tracer tee, the fanned-out cache-write tap and the
// fanned-out change tap. On a sharded fabric every shard gets its own
// oracle (a remote shard's frames fire on its worker goroutine), all
// auditing against one shared publication counter; oracleReport merges
// them. Before Start only; read reports via Call once the driver runs.
func (d *Driver) AttachOracle(cfg verify.OracleConfig) *verify.Oracle {
	d.mustNotBeStarted()
	// The first violation freezes every flight recorder, preserving the
	// lead-up in the rings. Freeze is an atomic flag flip, safe from a
	// remote shard's worker goroutine; the hook composes with any caller
	// hook already in cfg.
	if len(d.flights) > 0 {
		prev := cfg.OnViolation
		flights := d.flights
		cfg.OnViolation = func(v verify.OracleViolation) {
			for _, fr := range flights {
				fr.Freeze(v.String())
			}
			if prev != nil {
				prev(v)
			}
		}
	}
	o := verify.NewOracle(d.k, d.sc.ManagerID, cfg)
	o.MetricsInto(d.reg, 0)
	d.sc.AddTracer(o)
	d.listeners = append(d.listeners, o)
	d.changeHooks = append(d.changeHooks, o.NotePublished)
	d.oracles = append(d.oracles, o)
	if d.ss != nil {
		shared := new(atomic.Uint64)
		o.SharePublished(shared)
		for s := 1; s < d.ss.Shards(); s++ {
			ssc := d.ss.ShardScenario(s)
			os := verify.NewOracle(ssc.K, ssc.ManagerID, cfg)
			os.SharePublished(shared)
			os.MetricsInto(d.reg, s)
			ssc.AddTracer(os)
			ssc.TapConsistency(os)
			d.oracles = append(d.oracles, os)
		}
	}
	return o
}

// FlightDump snapshots every shard's flight-recorder ring: through the
// event loop while the driver runs (every worker parked at its
// barrier), directly once it has stopped. Nil when recorders are
// disabled.
func (d *Driver) FlightDump() []obs.FlightSnapshot {
	if len(d.flights) == 0 {
		return nil
	}
	var snaps []obs.FlightSnapshot
	take := func() {
		for _, fr := range d.flights {
			snaps = append(snaps, fr.Snapshot())
		}
	}
	if err := d.Call(take); err != nil {
		// Stopped: the loop is gone and every shard worker has joined, so
		// the rings' plain memory is safe to read directly.
		take()
	}
	return snaps
}

// oracleReport merges every attached oracle's report. It touches
// per-shard oracle state, so it must run on the event-loop goroutine
// between windows (via Call) or after the driver has stopped — both
// points where every shard worker is parked at its barrier.
func (d *Driver) oracleReport() verify.OracleReport {
	reps := make([]verify.OracleReport, len(d.oracles))
	for i, o := range d.oracles {
		reps[i] = o.Report()
	}
	return verify.MergeReports(reps...)
}

func (d *Driver) mustNotBeStarted() {
	if d.started.Load() {
		panic("live: driver already started")
	}
}

func (d *Driver) dispatchCacheUpdate(t sim.Time, user, manager netsim.NodeID, version uint64) {
	for _, l := range d.listeners {
		l.CacheUpdated(t, user, manager, version)
	}
}

func (d *Driver) dispatchChange() {
	for _, fn := range d.changeHooks {
		fn()
	}
}

// Start launches the event loop; the virtual clock begins chasing the
// wall clock. Starting twice, or after Stop, panics.
func (d *Driver) Start() {
	select {
	case <-d.stopCh:
		panic("live: driver stopped")
	default:
	}
	if d.started.Swap(true) {
		panic("live: driver already started")
	}
	go d.run()
}

// Stop halts the event loop and waits for it to exit. Injections still
// queued when the loop exits are executed during the final drain, so
// in-flight Calls complete; anything injected afterwards fails with
// ErrStopped. Stopping a driver that was never started is a clean
// no-op shutdown.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() {
		close(d.stopCh)
		if !d.started.Load() {
			// The loop never ran, so nobody else will complete the
			// shutdown protocol.
			d.deadMu.Lock()
			d.dead = true
			d.deadMu.Unlock()
			if d.ss != nil {
				d.ss.Close()
			}
			close(d.done)
		}
	})
	<-d.done
}

// Inject serializes fn into the event loop; it runs at the kernel's
// current virtual instant, after all events due before it. Safe from
// any goroutine. Injection order is preserved (one FIFO channel), and
// a full queue blocks the caller — natural backpressure against a
// gateway outrunning the fabric. A nil return means fn has run or is
// guaranteed to run (the shutdown drain executes whatever was
// accepted); ErrStopped means it was not accepted.
func (d *Driver) Inject(fn func()) error {
	d.deadMu.RLock()
	defer d.deadMu.RUnlock()
	if d.dead {
		return ErrStopped
	}
	// The stopCh case keeps a blocked sender from deadlocking against
	// the exiting loop (which acquires deadMu exclusively before the
	// final drain).
	select {
	case d.inj <- fn:
		return nil
	case <-d.stopCh:
		select {
		case d.inj <- fn:
			return nil
		default:
			return ErrStopped
		}
	}
}

// Call injects fn and waits until it has executed. It must not be
// called from inside the event loop (a tap or timer callback): the
// loop would wait on itself.
func (d *Driver) Call(fn func()) error {
	ran := make(chan struct{})
	if err := d.Inject(func() { fn(); close(ran) }); err != nil {
		return err
	}
	select {
	case <-ran:
		return nil
	case <-d.done:
		// The final drain may still have run it.
		select {
		case <-ran:
			return nil
		default:
			return ErrStopped
		}
	}
}

// Stats reports driver progress.
func (d *Driver) Stats() Stats {
	return Stats{
		VirtualTime: sim.Time(d.vnow.Load()),
		EventsFired: d.fired.Load(),
		Injections:  d.injections.Load(),
	}
}

// run is the event loop: advance the kernel to the wall clock's virtual
// position, drain injections, sleep until the next event is due or an
// injection arrives. When the fabric falls behind the wall clock (a
// burst of events at small dilation), it catches up as fast as the CPU
// allows — time dilation is a target, not a guarantee.
func (d *Driver) run() {
	defer func() {
		// Refuse new injections first, then drain what was accepted:
		// every Inject that returned nil has its function executed.
		d.deadMu.Lock()
		d.dead = true
		d.deadMu.Unlock()
		for {
			select {
			case fn := <-d.inj:
				fn()
			default:
				if d.ss != nil {
					d.ss.Close()
				}
				close(d.done)
				return
			}
		}
	}()
	tm := newTimeMap(time.Now(), d.fab.Now(), d.cfg.Dilation)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		default:
		}
		d.fab.RunUntil(tm.vAt(time.Now()))
		d.vnow.Store(int64(d.fab.Now()))
		d.fired.Store(d.fab.Fired())
		if d.pending != nil {
			// Sharded fabrics publish per-shard depth at each barrier; the
			// single-kernel path reads its queue here, on the loop goroutine.
			d.pending.Set(int64(d.k.Pending()))
		}
		// Drain queued injections; each runs at the current instant and
		// may schedule fresh events, picked up by the next pass.
		for drained := false; !drained; {
			select {
			case fn := <-d.inj:
				fn()
				d.injections.Add(1)
			default:
				drained = true
			}
		}
		var wait time.Duration
		if next, ok := d.fab.NextEventTime(); ok {
			wait = time.Until(tm.wallAt(next))
			if wait <= 0 {
				continue
			}
		} else {
			// Idle fabric (cannot normally happen — leases and announce
			// trains are always pending): poll for injections.
			wait = 100 * time.Millisecond
		}
		timer.Reset(wait)
		select {
		case <-d.stopCh:
			stopTimer(timer)
			return
		case fn := <-d.inj:
			stopTimer(timer)
			fn()
			d.injections.Add(1)
		case <-timer.C:
		}
	}
}

// timeMap converts between wall and virtual time in pure integer
// arithmetic. The dilation factor (wall seconds per virtual second) is
// quantized to a rational num/1e9 — one wall-nanosecond-per-virtual-
// second resolution — and both directions use a 128-bit multiply/divide.
// The float64 mapping this replaces lost integer precision once the
// nanosecond products passed 2^53 (~104 wall-days at dilation 1), after
// which a long-running driver drifted against the wall clock and could
// hand RunUntil a virtual target below a previously used one.
type timeMap struct {
	t0 time.Time
	v0 sim.Time
	// num is wall nanoseconds per 1e9 virtual nanoseconds (dilation
	// quantized to 1e-9); always ≥ 1.
	num uint64
}

func newTimeMap(t0 time.Time, v0 sim.Time, dilation float64) timeMap {
	num := int64(math.Round(dilation * 1e9))
	if num < 1 {
		num = 1
	}
	return timeMap{t0: t0, v0: v0, num: uint64(num)}
}

// vAt maps a wall instant to the virtual time the fabric should have
// reached. Instants before t0 clamp to v0: the mapping never goes
// backwards, preserving the non-decreasing RunUntil targets the kernel's
// resumable drain relies on.
func (tm timeMap) vAt(w time.Time) sim.Time {
	d := w.Sub(tm.t0)
	if d <= 0 {
		return tm.v0
	}
	return tm.v0 + sim.Time(mulDiv(uint64(d), 1e9, tm.num))
}

// wallAt maps a virtual instant to its wall-clock due time.
func (tm timeMap) wallAt(v sim.Time) time.Time {
	if v <= tm.v0 {
		return tm.t0
	}
	return tm.t0.Add(time.Duration(mulDiv(uint64(v-tm.v0), tm.num, 1e9)))
}

// mulDiv computes a*b/c with a 128-bit intermediate, saturating at
// MaxInt64 when the quotient itself would overflow (virtual offsets
// beyond ~292 years — far past any run length).
func mulDiv(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi >= c {
		return math.MaxInt64
	}
	q, _ := bits.Div64(hi, lo, c)
	if q > math.MaxInt64 {
		return math.MaxInt64
	}
	return q
}

// stopTimer halts a running timer and drains a concurrent expiry so the
// next Reset starts clean.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}
