package live

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a concurrency-safe latency recorder with logarithmic
// buckets: 5% relative resolution from 1µs to ~5min, fixed memory, no
// dependencies. sdload shares one per operation type across all client
// goroutines.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	n      uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// histBase is the per-bucket growth factor (≈5% resolution).
const histBase = 1.05

// histMin is the smallest distinguishable latency.
const histMin = time.Microsecond

func histBucket(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	return int(math.Log(float64(d)/float64(histMin)) / math.Log(histBase))
}

func histValue(bucket int) time.Duration {
	return time.Duration(float64(histMin) * math.Pow(histBase, float64(bucket)+0.5))
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	b := histBucket(d)
	h.mu.Lock()
	if b >= len(h.counts) {
		grown := make([]uint64, b+16)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantiles reports the latencies at the given ranks (each in [0,1]).
func (h *Histogram) Quantiles(qs ...float64) []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantilesLocked(qs)
}

// quantilesLocked is Quantiles' core; h.mu must be held. Results are
// clamped to [h.min, h.max]: a bucket midpoint can overshoot the largest
// sample, and bucket 0 spans everything up to 1µs, whose ~1.025µs
// midpoint would otherwise overstate sub-microsecond samples.
func (h *Histogram) quantilesLocked(qs []float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if h.n == 0 {
		return out
	}
	ranks := make([]uint64, len(qs))
	order := make([]int, len(qs))
	for i, q := range qs {
		r := uint64(math.Ceil(q * float64(h.n)))
		if r < 1 {
			r = 1
		}
		if r > h.n {
			r = h.n
		}
		ranks[i] = r
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ranks[order[a]] < ranks[order[b]] })
	var seen uint64
	oi := 0
	for b, c := range h.counts {
		seen += c
		for oi < len(order) && seen >= ranks[order[oi]] {
			v := histValue(b)
			if b == 0 {
				// Bucket 0 spans everything up to 1µs; its ~1.025µs
				// midpoint would overstate sub-microsecond samples, so
				// report the true observed minimum instead.
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			out[order[oi]] = v
			oi++
		}
		if oi == len(order) {
			break
		}
	}
	return out
}

// Mean reports the average latency.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Summary renders "n=… mean=… p50=… p95=… p99=… max=…". Every field is
// derived from one locked snapshot, so concurrent Observe calls can
// never yield a torn line (a p99 computed over fewer samples than the
// printed n, or a mean inconsistent with it).
func (h *Histogram) Summary() string {
	h.mu.Lock()
	n, max := h.n, h.max
	var mean time.Duration
	if n > 0 {
		mean = h.sum / time.Duration(n)
	}
	q := h.quantilesLocked([]float64{0.50, 0.95, 0.99})
	h.mu.Unlock()
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		n, mean.Round(time.Microsecond), q[0].Round(time.Microsecond),
		q[1].Round(time.Microsecond), q[2].Round(time.Microsecond), max.Round(time.Microsecond))
}
