package live

import "repro/internal/discovery"

// The gateway's wire vocabulary: JSON over loopback HTTP for requests
// and responses, JSON UDP datagrams for pushed update notifications.
// Shared by the gateway handlers and the Client, so the two cannot
// drift.

// ServiceQuery is the external form of discovery.Query.
type ServiceQuery struct {
	Device  string            `json:"device,omitempty"`
	Service string            `json:"service,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

func (q ServiceQuery) toQuery() discovery.Query {
	return discovery.Query{DeviceType: q.Device, ServiceType: q.Service, Attributes: q.Attrs}
}

// ServiceSpec describes a service to register.
type ServiceSpec struct {
	Device  string            `json:"device"`
	Service string            `json:"service"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

func (s ServiceSpec) toSD() discovery.ServiceDescription {
	return discovery.ServiceDescription{DeviceType: s.Device, ServiceType: s.Service, Attributes: s.Attrs}
}

// Record is the external form of a discovery.ServiceRecord.
type Record struct {
	Manager int               `json:"manager"`
	Device  string            `json:"device"`
	Service string            `json:"service"`
	Version uint64            `json:"version"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

func toRecord(rec discovery.ServiceRecord) Record {
	sd := rec.SD.Describe()
	return Record{Manager: int(rec.Manager), Device: sd.DeviceType,
		Service: sd.ServiceType, Version: sd.Version, Attrs: sd.Attributes}
}

// attachRequest spawns a protocol User for the client.
type attachRequest struct {
	Query ServiceQuery `json:"query"`
}
type attachResponse struct {
	User int `json:"user"`
}

// registerRequest spawns a Manager hosting the client's service.
type registerRequest struct {
	Spec ServiceSpec `json:"spec"`
}
type registerResponse struct {
	Manager int    `json:"manager"`
	Version uint64 `json:"version"`
}

// updateRequest mutates a registered service, bumping its version. The
// attrs are merged into the attribute list; empty attrs still bump the
// version (a "Rev" attribute records the count). The measured printer
// accepts only attr-less updates — its change is the paper's canonical
// mutation, fired through the scenario's change tap.
type updateRequest struct {
	Manager int               `json:"manager"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}
type updateResponse struct {
	Version uint64 `json:"version"`
}

// queryRequest reads a client User's cache — live protocol state.
type queryRequest struct {
	User int `json:"user"`
}
type queryResponse struct {
	Records []Record `json:"records"`
}

// lookupRequest searches the fabric with real frames from the gateway's
// port node: unicast to the Registries (Jini, FRODO) or multicast into
// the discovery group (UPnP), answered by live Registry repositories
// and Managers within a virtual collection window.
type lookupRequest struct {
	Query ServiceQuery `json:"query"`
}
type lookupResponse struct {
	Records []Record `json:"records"`
}

// subscribeRequest asks for UDP push notifications of a User's cache
// writes; Addr is the client's listening address ("127.0.0.1:port").
type subscribeRequest struct {
	User int    `json:"user"`
	Addr string `json:"addr"`
}

// Notification is one pushed cache-write datagram.
type Notification struct {
	User    int     `json:"user"`
	Manager int     `json:"manager"`
	Version uint64  `json:"version"`
	Virtual float64 `json:"vt"` // virtual seconds of the cache write
}

// errorResponse carries a handler failure.
type errorResponse struct {
	Error string `json:"error"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	VirtualSec    float64 `json:"virtual_sec"`
	EventsFired   uint64  `json:"events_fired"`
	Injections    uint64  `json:"injections"`
	Ops           uint64  `json:"ops"`
	NotifySent    uint64  `json:"notify_sent"`
	NotifyDropped uint64  `json:"notify_dropped"`
	InjectErrors  uint64  `json:"inject_errors"`
	Users         int     `json:"users"`
	Managers      int     `json:"managers"`
}

// OracleResponse is the /v1/oracle payload.
type OracleResponse struct {
	Attached   bool     `json:"attached"`
	Total      int      `json:"total"`
	Clean      bool     `json:"clean"`
	Violations []string `json:"violations,omitempty"`
}
