package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/verify"
)

func scrape(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// waitVirtual polls stats until the fabric has advanced sec virtual
// seconds, so scrapes observe a fabric that has actually run.
func waitVirtual(t *testing.T, cl *Client, sec float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.VirtualSec >= sec {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fabric never reached %.0f virtual seconds", sec)
}

// The gateway's /metrics face serves Prometheus text with the fabric's
// frame series, the gateway's own counters, and the kernel gauges, all
// from the driver's registry.
func TestGatewayMetricsEndpoint(t *testing.T) {
	srv, cl := serveTest(t, experiment.Frodo2P)
	if _, err := cl.Attach(ServiceQuery{Service: "Printer"}); err != nil {
		t.Fatal(err)
	}
	code, body := scrape(t, srv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE sd_frames_sent_total counter",
		`sd_frames_sent_total{shard="0"}`,
		"sd_gateway_ops_total 1",
		"sd_gateway_users 1",
		"sd_live_virtual_seconds",
		`sd_kernel_pending{shard="0"}`,
		`sd_oracle_near_misses_total{invariant="version-bound",shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
}

// The flight endpoint dumps one ring per shard as JSON; pprof serves
// its index from the gateway mux.
func TestGatewayFlightAndPprof(t *testing.T) {
	srv, cl := serveTest(t, experiment.Frodo2P)
	if _, err := cl.Attach(ServiceQuery{Service: "Printer"}); err != nil {
		t.Fatal(err)
	}
	waitVirtual(t, cl, 60)
	code, body := scrape(t, srv.Addr(), "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight status %d: %s", code, body)
	}
	var snaps []obs.FlightSnapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("/debug/flight not JSON: %v", err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1 (single fabric)", len(snaps))
	}
	if snaps[0].Total == 0 {
		t.Error("flight ring recorded nothing on a live fabric")
	}
	if code, _ := scrape(t, srv.Addr(), "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

// The PR-6 torn-snapshot rule, applied to the gateway counters this PR
// moved off individual expvar atomics: a scrape racing with handler
// traffic must see each counter monotone and never beyond the true
// total — the registry snapshot takes one atomic load per series, so
// no scrape can invent operations that never happened.
func TestGatewayCounterSnapshotNotTorn(t *testing.T) {
	srv, _ := serveTest(t, experiment.Frodo2P)
	gw := srv.Gateway
	const workers, per = 4, 5000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				gw.ops.Inc()
				gw.notifySent.Inc()
			}
		}()
	}
	go func() { wg.Wait(); close(stop) }()
	reg := srv.Driver.Telemetry()
	var lastOps uint64
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		snap := reg.Snapshot()
		ops := snap["sd_gateway_ops_total"].(uint64)
		if ops < lastOps {
			t.Fatalf("counter went backwards across scrapes: %d then %d", lastOps, ops)
		}
		if ops > workers*per {
			t.Fatalf("scrape saw %d ops, more than the %d ever performed", ops, workers*per)
		}
		lastOps = ops
	}
	if got := gw.ops.Load(); got != workers*per {
		t.Fatalf("final ops = %d, want %d", got, workers*per)
	}
	// Stats mirrors the registry once quiesced.
	if s := gw.Stats(); s.Ops != workers*per || s.NotifySent != workers*per {
		t.Fatalf("Stats() = %+v after %d ops", s, workers*per)
	}
}

// A sharded live driver populates per-shard fabric series and dumps one
// flight ring per shard.
func TestLiveShardedTelemetry(t *testing.T) {
	ocfg := verify.DefaultOracleConfig(experiment.Frodo2P)
	srv, err := Serve(Config{
		System:   experiment.Frodo2P,
		Topology: experiment.Topology{Users: 6},
		Seed:     7,
		Dilation: 1e-5,
		Shards:   2,
		Oracle:   &ocfg,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(srv.Addr())
	waitVirtual(t, cl, 600)
	_, body := scrape(t, srv.Addr(), "/metrics")
	for _, want := range []string{
		`sd_frames_sent_total{shard="1"}`,
		`sd_shard_busy_nanos_total{shard="1"}`,
		`sd_shard_barrier_stall_nanos_total{shard="0"}`,
		"sd_fabric_windows_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("sharded /metrics missing %q", want)
		}
	}
	snaps := srv.Driver.FlightDump()
	if len(snaps) != 2 {
		t.Fatalf("flight snapshots = %d, want one per shard", len(snaps))
	}
	for _, s := range snaps {
		if s.Total == 0 {
			t.Errorf("shard %d flight ring empty", s.Shard)
		}
	}
}
