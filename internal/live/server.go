package live

import "repro/internal/verify"

// Server bundles a Driver and its Gateway: one call boots a scenario
// into a serving system.
type Server struct {
	Driver  *Driver
	Gateway *Gateway
	oracle  *verify.Oracle
}

// Serve builds the scenario, starts the wall-clock driver and opens the
// gateway on addr ("127.0.0.1:0" picks a free port). With cfg.Oracle
// set, the consistency oracle audits the live run online.
func Serve(cfg Config, addr string) (*Server, error) {
	var o *verify.Oracle
	attachOracle := cfg.Oracle
	cfg.Oracle = nil // attach manually so we keep the handle
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if attachOracle != nil {
		o = d.AttachOracle(*attachOracle)
	}
	d.Start()
	gw, err := OpenGateway(d, addr, o)
	if err != nil {
		d.Stop()
		return nil, err
	}
	return &Server{Driver: d, Gateway: gw, oracle: o}, nil
}

// Addr reports the gateway's HTTP address.
func (s *Server) Addr() string { return s.Gateway.Addr() }

// Close shuts the gateway and driver down.
func (s *Server) Close() { s.Gateway.Close() }

// OracleReport reads the attached oracle's report; ok is false when no
// oracle is attached. Readable only while the server runs (it goes
// through the event loop) or after Close (the loop has quiesced and the
// report is read directly).
func (s *Server) OracleReport() (verify.OracleReport, bool) {
	if s.oracle == nil {
		return verify.OracleReport{}, false
	}
	var rep verify.OracleReport
	if err := s.Driver.Call(func() { rep = s.Driver.oracleReport() }); err != nil {
		// Driver stopped: the loop is gone (and every shard worker is
		// parked), so single-threaded access is safe again.
		rep = s.Driver.oracleReport()
	}
	return rep, true
}
