package upnp

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Manager is a UPnP device hosting one service. It announces itself with
// periodic ssdp:alive trains, answers M-SEARCH queries, serves description
// GETs, and notifies subscribers with invalidation NOTIFYs when the
// service changes.
type Manager struct {
	cfg  Config
	node *netsim.Node
	nw   *netsim.Network
	k    *sim.Kernel

	// sd is the current immutable description snapshot; initial is the
	// frozen construction-time state a workspace rearm returns to.
	sd        *discovery.Snapshot
	initial   *discovery.Snapshot
	announcer *core.Announcer

	// subs holds the eventing subscriptions keyed by subscriber; UPnP has
	// no Registry, so the Manager is the lessee (2-party subscription).
	subs *discovery.LeaseTable[netsim.NodeID, struct{}]

	// announceOut is the pre-built announcement payload (contents never
	// change, so one boxed payload serves every train); ifaceHook is the
	// interface-recovery announcement hook, built once and re-registered
	// on every rearm.
	announceOut netsim.Outgoing
	ifaceHook   func(txUp, rxUp bool)
}

// NewManager attaches a Manager to a node. Call Start to boot it.
func NewManager(node *netsim.Node, cfg Config, sd discovery.ServiceDescription) *Manager {
	m := &Manager{
		cfg:  cfg,
		node: node,
		nw:   node.Network(),
		k:    node.Kernel(),
	}
	m.initial = sd.Freeze()
	m.sd = m.initial
	m.subs = discovery.NewLeaseTable[netsim.NodeID, struct{}](m.k, nil)
	m.announceOut = netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Announce{}),
		Counted: true,
		Payload: discovery.Announce{Role: discovery.RoleManager, CacheLease: cfg.CacheLease},
	}
	m.announcer = core.NewAnnouncer(m.nw, node.ID, DiscoveryGroup,
		cfg.AnnouncePeriod, cfg.AnnounceCopies, m.announcement)
	// SSDP requires a device to advertise when network connectivity is
	// (re)established: announce as soon as the transmitter recovers. This
	// drives PR5's strength at high failure rates — "Users ... can get
	// updated when the Manager recovers from failures and announces its
	// presence."
	m.ifaceHook = func(txUp, _ bool) {
		if txUp && m.announcer.Running() {
			m.announcer.AnnounceNow()
		}
	}
	m.bind()
	return m
}

// bind attaches the instance to its node slot: endpoint, group
// membership and the interface hook. Construction and Rearm share it, so
// a rearmed instance touches the network exactly as a fresh one does.
func (m *Manager) bind() {
	m.node.SetEndpoint(m)
	m.nw.Join(m.node.ID, DiscoveryGroup)
	m.node.OnInterfaceChange(m.ifaceHook)
}

// Rearm resets the Manager to its construction-time state for workspace
// reuse: the service returns to its initial snapshot, subscriptions and
// timers are cleared without touching the (already reset) kernel, and the
// node slot is re-bound.
func (m *Manager) Rearm() {
	m.sd = m.initial
	m.subs.Rearm()
	m.announcer.Rearm()
	m.bind()
}

// Start boots the device: the first announcement train leaves after the
// given delay and repeats every AnnouncePeriod.
func (m *Manager) Start(bootDelay sim.Duration) { m.announcer.Start(bootDelay) }

// ID reports the Manager's node ID.
func (m *Manager) ID() netsim.NodeID { return m.node.ID }

// SD returns the current service description snapshot.
func (m *Manager) SD() *discovery.Snapshot { return m.sd }

// Version reports the current service version.
func (m *Manager) Version() uint64 { return m.sd.Version() }

// Subscribers reports the current number of eventing subscriptions.
func (m *Manager) Subscribers() int { return m.subs.Len() }

// ChangeService applies an attribute mutation, bumps the version, and
// notifies every subscriber with an invalidation NOTIFY: "the Manager
// notifies the interested User that a change has occurred, whenever the
// service changes. Consecutive polling by the User retrieves the updated
// data." The change is copy-on-write: a new snapshot is built and every
// holder of the previous one keeps exactly what it had.
func (m *Manager) ChangeService(mutate func(attrs map[string]string)) {
	m.sd = m.sd.Mutate(mutate)
	m.subs.EachKey(func(user netsim.NodeID) {
		m.notify(user)
	})
}

// notify sends the invalidation over TCP. A REX is final: UPnP has no
// SRN2, so a notification that fails leaves the subscriber inconsistent
// until a purge-rediscovery technique runs (the §6.2 case study).
func (m *Manager) notify(user netsim.NodeID) {
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Invalidate{}),
		Counted: true,
		Payload: discovery.Invalidate{Manager: m.node.ID, Version: m.sd.Version()},
	}
	m.nw.SendTCPWith(m.cfg.TCP, m.node.ID, user, out, nil)
}

func (m *Manager) announcement() netsim.Outgoing { return m.announceOut }

// Deliver implements netsim.Endpoint.
func (m *Manager) Deliver(msg *netsim.Message) {
	switch p := msg.Payload.(type) {
	case discovery.Search:
		m.onSearch(msg.From, p)
	case discovery.Get:
		m.onGet(msg)
	case discovery.Subscribe:
		m.onSubscribe(msg)
	case discovery.Renew:
		m.onRenew(msg)
	case discovery.Bye:
		// Hardened retirement: the departing subscriber deregisters, so
		// its lease is evicted now instead of at expiry. Handled
		// unconditionally — baseline runs never send a Bye.
		m.subs.Drop(msg.From)
	}
}

// onSearch answers a matching M-SEARCH with a unicast response, which in
// SSDP carries the device location but not the description; the User
// fetches the SD with a GET.
func (m *Manager) onSearch(from netsim.NodeID, s discovery.Search) {
	if !s.Q.Matches(m.sd) {
		return
	}
	m.nw.SendUDP(m.node.ID, from, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.SearchReply{}),
		Counted: true,
		Payload: discovery.SearchReply{Recs: []discovery.ServiceRecord{{Manager: m.node.ID}}},
	})
}

// onGet serves the description over the requesting connection.
func (m *Manager) onGet(msg *netsim.Message) {
	reply := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.GetReply{}),
		Counted: true,
		Payload: discovery.GetReply{Rec: discovery.ServiceRecord{Manager: m.node.ID, SD: m.sd}},
	}
	m.respond(msg, reply)
}

// onSubscribe accepts the eventing subscription; the acceptance carries
// the current service state, as UPnP's initial event message does. That
// initial state is what makes PR4 recover consistency.
func (m *Manager) onSubscribe(msg *netsim.Message) {
	m.subs.Put(msg.From, struct{}{}, m.cfg.SubscriptionLease)
	m.respond(msg, netsim.Outgoing{
		Kind:    discovery.Kind(discovery.SubscribeAck{}),
		Counted: true,
		Payload: discovery.SubscribeAck{Rec: discovery.ServiceRecord{Manager: m.node.ID, SD: m.sd}},
	})
}

// onRenew extends a live subscription. A renewal for a purged
// subscription triggers PR4 when enabled: "the Manager requests purged
// Users to resubscribe"; with PR4 ablated the renewal is silently
// rejected.
func (m *Manager) onRenew(msg *netsim.Message) {
	renewed := false
	if m.cfg.Harden.StrictLease {
		// Hardened holders refuse a renewal racing (or trailing) the
		// purge: the User must resubscribe, keeping holder state and the
		// oracle's lease ledger in lockstep.
		renewed = m.subs.RenewStrict(msg.From, m.cfg.SubscriptionLease)
	} else {
		renewed = m.subs.Renew(msg.From, m.cfg.SubscriptionLease)
	}
	if renewed {
		m.respond(msg, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.RenewAck{}),
			Counted: false, // lease upkeep, excluded from update effort
			Payload: discovery.RenewAck{Manager: m.node.ID},
		})
		return
	}
	if m.cfg.Techniques.Has(core.PR4) {
		m.respond(msg, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.ResubscribeRequest{}),
			Counted: true,
			Payload: discovery.ResubscribeRequest{Manager: m.node.ID},
		})
	}
}

// respond answers over the inbound TCP connection when there is one,
// otherwise by UDP (search responses).
func (m *Manager) respond(msg *netsim.Message, out netsim.Outgoing) {
	if msg.Conn != nil {
		msg.Conn.Reply(out, nil)
		return
	}
	m.nw.SendUDP(m.node.ID, msg.From, out)
}
