package upnp

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// User is a UPnP control point with one service requirement. It discovers
// the Manager with M-SEARCH and ssdp:alive announcements, caches the
// description, subscribes for eventing, and recovers from failures with
// PR4 (resubscription on the Manager's request) and PR5 (rediscovery by
// multicast query or announcement).
type User struct {
	cfg      Config
	node     *netsim.Node
	nw       *netsim.Network
	k        *sim.Kernel
	query    discovery.Query
	listener discovery.ConsistencyListener

	// cache holds the discovered service; its lease is refreshed by
	// announcements (CACHE-CONTROL) and expires into PR5 rediscovery.
	cache *discovery.LeaseTable[netsim.NodeID, discovery.ServiceRecord]

	// subscribedTo is the Manager the user holds an eventing subscription
	// with (NoNode when unsubscribed); renewTick refreshes the lease.
	subscribedTo netsim.NodeID
	renewTick    *sim.Ticker

	// searchTick repeats M-SEARCH while the requirement is unmet (PR5).
	searchTick *sim.Ticker

	// staleVersion is nonzero when an invalidation announced a version the
	// user has not fetched yet; getTick retries the fetch.
	staleVersion uint64
	getTick      *sim.Ticker
	getting      bool

	// stopped marks a quiesced control point (Stop): a boot event still
	// pending when the device permanently departed must not restart it.
	stopped bool

	// pollTick drives CM2 when configured: a persistent periodic re-fetch
	// of the cached description.
	pollTick *sim.Ticker

	// searchOut is the pre-built M-SEARCH payload: the query never
	// changes, so one boxed payload serves every transmission.
	searchOut netsim.Outgoing
}

// NewUser attaches a control point to a node.
func NewUser(node *netsim.Node, cfg Config, q discovery.Query, l discovery.ConsistencyListener) *User {
	if l == nil {
		l = discovery.NopListener{}
	}
	u := &User{
		cfg:          cfg,
		node:         node,
		nw:           node.Network(),
		k:            node.Kernel(),
		query:        q,
		listener:     l,
		subscribedTo: netsim.NoNode,
	}
	u.cache = discovery.NewLeaseTable[netsim.NodeID, discovery.ServiceRecord](u.k, u.onCachePurge)
	u.renewTick = sim.NewTicker(u.k, core.RenewInterval(cfg.SubscriptionLease), u.renew)
	u.searchTick = sim.NewTicker(u.k, cfg.SearchRetryPeriod, u.search)
	u.getTick = sim.NewTicker(u.k, cfg.GetRetryPeriod, u.retryGet)
	if cfg.PollPeriod > 0 {
		u.pollTick = sim.NewTicker(u.k, cfg.PollPeriod, u.poll)
	}
	u.searchOut = netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Search{}),
		Counted: true,
		Payload: discovery.Search{Q: u.query},
	}
	u.bind()
	return u
}

// bind attaches the instance to its node slot; construction and Rearm
// share it.
func (u *User) bind() {
	u.node.SetEndpoint(u)
	u.nw.Join(u.node.ID, DiscoveryGroup)
}

// Rearm resets the control point to its construction-time state for
// workspace reuse: cache and timers are cleared without touching the
// (already reset) kernel, and the node slot is re-bound.
func (u *User) Rearm() {
	u.cache.Rearm()
	u.renewTick.Rearm()
	u.searchTick.Rearm()
	u.getTick.Rearm()
	if u.pollTick != nil {
		u.pollTick.Rearm()
	}
	u.subscribedTo = netsim.NoNode
	u.staleVersion = 0
	u.getting = false
	u.stopped = false
	u.bind()
}

// poll is CM2: re-fetch every cached description, persistently — even
// while the lower layers report failures (the GET simply REXes and the
// next poll tries again).
func (u *User) poll() {
	u.cache.EachKey(func(mgr netsim.NodeID) {
		u.fetch(mgr)
	})
}

// Start boots the control point: it begins searching for its service
// unless an announcement already led to discovery, and arms CM2 polling
// when configured.
func (u *User) Start(bootDelay sim.Duration) {
	u.k.AfterArg(bootDelay, userBoot, u)
}

// userBoot is the static boot callback shared by every control point.
func userBoot(x any) {
	u := x.(*User)
	if u.stopped {
		return // departed permanently before the boot completed
	}
	if u.cache.Len() == 0 {
		u.searchTick.Start(0)
	}
	if u.pollTick != nil {
		u.pollTick.Start(u.pollTick.Period())
	}
}

// ID reports the User's node ID.
func (u *User) ID() netsim.NodeID { return u.node.ID }

// Stop quiesces the control point: every timer is disarmed and the cache
// dropped (without purge callbacks), so the node can be retired after a
// permanent churn departure without leaving zombie events in the kernel.
// The User must not be used afterwards.
func (u *User) Stop() {
	if u.cfg.Harden.RetireBye && u.subscribedTo != netsim.NoNode {
		// Hardened retirement: deregister from the Manager with a
		// best-effort UDP Bye so the subscription is evicted now instead
		// of lingering until lease expiry.
		u.nw.SendUDP(u.node.ID, u.subscribedTo, netsim.Outgoing{
			Kind:    discovery.Kind(discovery.Bye{}),
			Counted: true,
			Payload: discovery.Bye{Role: discovery.RoleUser},
		})
	}
	u.stopped = true
	u.searchTick.Stop()
	u.renewTick.Stop()
	u.getTick.Stop()
	if u.pollTick != nil {
		u.pollTick.Stop()
	}
	u.cache.Clear()
	u.subscribedTo = netsim.NoNode
	u.staleVersion = 0
}

// CachedVersion reports the version of the cached description for the
// Manager, zero if none.
func (u *User) CachedVersion(manager netsim.NodeID) uint64 {
	rec, ok := u.cache.Get(manager)
	if !ok {
		return 0
	}
	return rec.SD.Version()
}

// Subscribed reports whether the user currently holds a subscription.
func (u *User) Subscribed() bool { return u.subscribedTo != netsim.NoNode }

// EachCached visits every cached service record — the live gateway's
// read path. The records share immutable snapshots and may be retained.
func (u *User) EachCached(fn func(discovery.ServiceRecord)) {
	u.cache.Each(func(_ netsim.NodeID, rec discovery.ServiceRecord) { fn(rec) })
}

// Deliver implements netsim.Endpoint.
func (u *User) Deliver(msg *netsim.Message) {
	switch p := msg.Payload.(type) {
	case discovery.Announce:
		u.onAnnounce(msg.From, p)
	case discovery.SearchReply:
		u.onSearchReply(msg.From)
	case discovery.GetReply:
		u.onGetReply(p)
	case discovery.SubscribeAck:
		u.onSubscribeAck(msg.From, p)
	case discovery.ResubscribeRequest:
		u.onResubscribeRequest(msg.From)
	case discovery.Invalidate:
		u.onInvalidate(p)
	}
}

// onAnnounce refreshes the cache lease for a known Manager; an unknown
// Manager while the requirement is unmet triggers a description fetch
// (PR5b: rediscovery by listening for the Manager's announcements).
func (u *User) onAnnounce(from netsim.NodeID, a discovery.Announce) {
	if a.Role != discovery.RoleManager {
		return
	}
	lease := a.CacheLease
	if lease <= 0 {
		lease = u.cfg.CacheLease
	}
	if u.cache.Renew(from, lease) {
		return
	}
	u.fetch(from)
}

// onSearchReply reacts to an M-SEARCH response: the response locates the
// device, the description still has to be fetched.
func (u *User) onSearchReply(from netsim.NodeID) {
	if _, ok := u.cache.Get(from); ok {
		return
	}
	u.fetch(from)
}

// fetch GETs the description from a discovered device.
func (u *User) fetch(manager netsim.NodeID) {
	if u.getting {
		return
	}
	u.getting = true
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Get{}),
		Counted: true,
		Payload: discovery.Get{Manager: manager},
	}
	u.nw.SendTCPWith(u.cfg.TCP, u.node.ID, manager, out, func(err error) {
		u.getting = false
	})
}

// onGetReply stores the description if it matches the requirement,
// subscribes if needed, and clears any pending staleness.
func (u *User) onGetReply(p discovery.GetReply) {
	if !u.query.Matches(p.Rec.SD) {
		return
	}
	u.storeRec(p.Rec)
	if p.Rec.SD.Version() >= u.staleVersion {
		u.staleVersion = 0
		u.getTick.Stop()
	}
	if u.subscribedTo == netsim.NoNode {
		u.subscribe(p.Rec.Manager)
	}
}

// subscribe opens the eventing subscription.
func (u *User) subscribe(manager netsim.NodeID) {
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Subscribe{}),
		Counted: true,
		Payload: discovery.Subscribe{Manager: manager, Lease: u.cfg.SubscriptionLease},
	}
	u.nw.SendTCPWith(u.cfg.TCP, u.node.ID, manager, out, nil)
}

// onSubscribeAck records the subscription and stores the initial event
// state carried with the acceptance.
func (u *User) onSubscribeAck(from netsim.NodeID, p discovery.SubscribeAck) {
	u.subscribedTo = from
	u.renewTick.Start(core.RenewInterval(u.cfg.SubscriptionLease))
	if u.query.Matches(p.Rec.SD) {
		u.storeRec(p.Rec)
		if p.Rec.SD.Version() >= u.staleVersion {
			u.staleVersion = 0
			u.getTick.Stop()
		}
	}
}

// renew refreshes the eventing lease. The result is deliberately ignored:
// if the Manager purged the subscription, PR4 has it answer with a
// resubscription request.
func (u *User) renew() {
	if u.subscribedTo == netsim.NoNode {
		return
	}
	out := netsim.Outgoing{
		Kind:    discovery.Kind(discovery.Renew{}),
		Counted: false, // lease upkeep, excluded from update effort
		Payload: discovery.Renew{Manager: u.subscribedTo, Lease: u.cfg.SubscriptionLease},
	}
	u.nw.SendTCPWith(u.cfg.TCP, u.node.ID, u.subscribedTo, out, nil)
}

// onResubscribeRequest is PR4: the Manager saw our renewal but had purged
// the subscription; resubscribing returns the current service state.
func (u *User) onResubscribeRequest(from netsim.NodeID) {
	if !u.cfg.Techniques.Has(core.PR4) {
		return
	}
	u.subscribedTo = netsim.NoNode
	u.subscribe(from)
}

// onInvalidate handles the eventing NOTIFY: the service changed, fetch the
// new description. If the fetch fails the user knows it is stale and
// keeps retrying (getTick) — unlike a lost NOTIFY, which leaves it
// unknowingly inconsistent.
func (u *User) onInvalidate(p discovery.Invalidate) {
	if p.Version <= u.CachedVersion(p.Manager) {
		return
	}
	u.staleVersion = p.Version
	u.fetch(p.Manager)
	u.getTick.Start(u.cfg.GetRetryPeriod)
}

func (u *User) retryGet() {
	if u.staleVersion == 0 {
		u.getTick.Stop()
		return
	}
	if _, ok := u.cache.Get(u.subscribedTo); !ok && u.subscribedTo == netsim.NoNode {
		u.getTick.Stop()
		return
	}
	if u.subscribedTo != netsim.NoNode {
		u.fetch(u.subscribedTo)
	}
}

// onCachePurge is PR5: the Manager disappeared (no announcements within
// the cache lease). Drop the subscription — "the User purges the Manager
// when the service lease expires" — and return to active search.
func (u *User) onCachePurge(manager netsim.NodeID, _ discovery.ServiceRecord) {
	if u.subscribedTo == manager {
		u.subscribedTo = netsim.NoNode
		u.renewTick.Stop()
	}
	u.staleVersion = 0
	u.getTick.Stop()
	if u.cfg.Techniques.Has(core.PR5) {
		u.searchTick.Start(0)
	}
}

// search multicasts an M-SEARCH for the requirement.
func (u *User) search() {
	u.nw.Multicast(u.node.ID, DiscoveryGroup, u.searchOut, 1)
}

// storeRec caches the record — sharing the immutable snapshot, no copy —
// ends any active search, and reports the write to the consistency
// listener.
func (u *User) storeRec(rec discovery.ServiceRecord) {
	u.cache.Put(rec.Manager, rec, u.cfg.CacheLease)
	u.searchTick.Stop()
	u.listener.CacheUpdated(u.k.Now(), u.node.ID, rec.Manager, rec.SD.Version())
}
