// Package upnp models the SSDP-based UPnP service discovery protocol as
// described by the paper and the NIST studies it reproduces: a pure
// peer-to-peer architecture with 2-party subscription over reliable
// unicast (TCP), multicast discovery (ssdp:alive announcements and
// M-SEARCH queries), and invalidation-based eventing — the Manager's
// NOTIFY tells subscribers that the service changed, and each User then
// fetches the new description with an HTTP GET.
//
// Recovery techniques (Table 2): SRC1/SRN1 via TCP, PR4 (the Manager asks
// purged Users to resubscribe), PR5 (Users rediscover the Manager through
// multicast queries or its periodic announcements).
package upnp

import (
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// DiscoveryGroup is the SSDP multicast group all UPnP nodes join.
const DiscoveryGroup netsim.Group = 1

// Config collects the model parameters; DefaultConfig reproduces §5.
type Config struct {
	// AnnouncePeriod and AnnounceCopies drive the Manager's ssdp:alive
	// train ("the Manager sends 6 multicast announcement messages every
	// 1800s").
	AnnouncePeriod sim.Duration
	AnnounceCopies int
	// CacheLease is how long a User keeps a discovered Manager without
	// hearing from it (the registration lease of §5 Step 4: 1800s).
	CacheLease sim.Duration
	// SubscriptionLease is the eventing lease (1800s).
	SubscriptionLease sim.Duration
	// SearchRetryPeriod is how often a User repeats M-SEARCH while its
	// required service is missing from the cache (PR5).
	SearchRetryPeriod sim.Duration
	// GetRetryPeriod is how often a User that knows it is stale (it
	// received an invalidation but the GET failed) retries the fetch.
	GetRetryPeriod sim.Duration
	// PollPeriod enables CM2, pull-based consistency maintenance (§4.2):
	// when positive, the User re-fetches the cached description this
	// often, persistently, regardless of eventing. "Periodic queries from
	// the User eventually retrieve the updated service description."
	// Zero disables polling (the paper's notification-only experiments).
	PollPeriod sim.Duration
	// TCP is the reliable transport's failure response.
	TCP netsim.TCPConfig
	// Techniques enables recovery techniques; ablations flip bits.
	Techniques core.TechniqueSet
	// Harden enables the protocol-hardening mechanisms (strict lease
	// enforcement, retire-time Bye frames); set via internal/harden. The
	// zero value is the paper-faithful baseline.
	Harden discovery.Hardening
}

// DefaultConfig returns the paper's UPnP parameters.
func DefaultConfig() Config {
	return Config{
		AnnouncePeriod:    core.UPnPAnnouncePeriod,
		AnnounceCopies:    core.UPnPAnnounceCopies,
		CacheLease:        core.RegistrationLease,
		SubscriptionLease: core.SubscriptionLease,
		SearchRetryPeriod: 300 * sim.Second,
		GetRetryPeriod:    60 * sim.Second,
		TCP:               netsim.DefaultTCPConfig(),
		Techniques:        core.UPnPTechniques(),
	}
}
