package upnp

import (
	"testing"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// The SSDP reconnection rule: a Manager whose transmitter recovers
// advertises immediately, so a purged User re-fetches within
// milliseconds of the recovery rather than waiting for the next
// periodic train.
func TestManagerAnnouncesOnInterfaceRecovery(t *testing.T) {
	r := newRig(t, 30, 1, DefaultConfig())
	u := r.users[0]
	// Manager fully down long enough for the User to purge it
	// (cache lease 1800s without refreshing announcements), with the
	// change lost during the outage.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.manager.ID(), Mode: netsim.FailBoth,
		Start: 500 * sim.Second, Duration: 2500 * sim.Second, // up at 3000
	})
	r.k.At(1000*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("user never recovered")
	}
	// The recovery announcement fires at 3000s; without it the next
	// train would wait until the 1800s grid. Allow the GET+SUBSCRIBE
	// exchange a little time.
	if at > 3005*sim.Second {
		t.Errorf("recovered at %v, want within seconds of the 3000s recovery announcement", at)
	}
}

// Announcements refresh the cache lease: with the Manager healthy, a
// User's cache entry must never expire across many lease periods.
func TestAnnouncementsKeepCacheAlive(t *testing.T) {
	r := newRig(t, 31, 1, DefaultConfig())
	u := r.users[0]
	r.k.Run(5400 * sim.Second)
	if got := u.CachedVersion(r.manager.ID()); got != 1 {
		t.Errorf("cache lost without failures: version %d", got)
	}
	if !u.Subscribed() {
		t.Error("subscription lost without failures")
	}
}

// A duplicate invalidation for an already-cached version is ignored: no
// redundant GET traffic.
func TestStaleInvalidationIgnored(t *testing.T) {
	r := newRig(t, 32, 1, DefaultConfig())
	u := r.users[0]
	r.k.Run(100 * sim.Second)
	before := r.nw.Counters().PerKind["Get"]
	u.Deliver(&netsim.Message{From: r.manager.ID(),
		Payload: mkInvalidate(r.manager.ID(), 1)}) // version already held
	r.k.Run(200 * sim.Second)
	after := r.nw.Counters().PerKind["Get"]
	if after != before {
		t.Errorf("stale invalidation triggered %d extra GETs", after-before)
	}
}

// Renewals run at 90% of the lease, so a single missed renewal expires
// the subscription — and the next renewal triggers PR4, which restores
// it with current state. This is the purge-rediscovery regime the paper
// describes for higher failure rates.
func TestMissedRenewalExpiresThenPR4Restores(t *testing.T) {
	r := newRig(t, 33, 1, DefaultConfig())
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: r.manager.ID(), Mode: netsim.FailRx,
		Start: 1500 * sim.Second, Duration: 400 * sim.Second, // the ~1622s renewal REXes
	})
	r.k.Run(2500 * sim.Second)
	if r.manager.Subscribers() != 0 {
		t.Fatalf("subscribers = %d; the missed renewal should have expired the lease",
			r.manager.Subscribers())
	}
	// The next renewal tick (~3242s) meets PR4 and resubscribes.
	r.k.Run(3400 * sim.Second)
	if r.manager.Subscribers() != 1 {
		t.Errorf("subscribers = %d; PR4 should have restored the subscription",
			r.manager.Subscribers())
	}
	if !r.users[0].Subscribed() {
		t.Error("user does not believe it is subscribed after PR4")
	}
}

func mkInvalidate(mgr netsim.NodeID, v uint64) any {
	return invalidatePayload(mgr, v)
}

// invalidatePayload builds the eventing NOTIFY payload used by direct
// delivery tests.
func invalidatePayload(mgr netsim.NodeID, v uint64) discovery.Invalidate {
	return discovery.Invalidate{Manager: mgr, Version: v}
}
