package upnp

import (
	"testing"

	"repro/internal/sim"
)

// TestCachedSnapshotSurvivesChangeService is the aliasing guarantee at
// the protocol level: once a User cached a record, a later ChangeService
// on the Manager — which mutates the service copy-on-write — must never
// be visible through that cached snapshot. The User only observes the new
// version by receiving it.
func TestCachedSnapshotSurvivesChangeService(t *testing.T) {
	r := newRig(t, 11, 2, DefaultConfig())
	r.k.Run(200 * sim.Second)
	u := r.users[0]

	rec, ok := u.cache.Get(r.manager.ID())
	if !ok || rec.SD.Version() != 1 {
		t.Fatalf("user did not cache v1: %+v ok=%v", rec, ok)
	}
	v1 := rec.SD
	rendered := v1.String()

	r.change() // v2: PaperTray=empty, new snapshot
	r.k.Run(400 * sim.Second)

	if v1.Version() != 1 || v1.Attr("PaperTray") != "full" || v1.String() != rendered {
		t.Errorf("ChangeService mutated a previously cached snapshot: %v", v1)
	}
	now, _ := u.cache.Get(r.manager.ID())
	if now.SD.Version() != 2 || now.SD.Attr("PaperTray") != "empty" {
		t.Errorf("user did not converge on the v2 snapshot: %v", now.SD)
	}
	if now.SD == v1 {
		t.Error("v2 record shares the v1 snapshot pointer")
	}
	// The manager's live snapshot is shared with the cache, by design.
	if now.SD != r.manager.SD() {
		t.Error("cache should share the Manager's current snapshot by reference")
	}
}
