package upnp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// rig is a 1-Manager, N-User UPnP network with a consistency recorder.
type rig struct {
	k       *sim.Kernel
	nw      *netsim.Network
	manager *Manager
	users   []*User
	// consistentAt[user] records when each version was first cached.
	consistentAt map[netsim.NodeID]map[uint64]sim.Time
}

func newRig(t *testing.T, seed int64, nUsers int, cfg Config) *rig {
	t.Helper()
	r := &rig{k: sim.New(seed), consistentAt: map[netsim.NodeID]map[uint64]sim.Time{}}
	r.nw = netsim.MustNew(r.k, netsim.DefaultConfig())
	listener := discovery.ListenerFunc(func(at sim.Time, user, mgr netsim.NodeID, v uint64) {
		if r.consistentAt[user] == nil {
			r.consistentAt[user] = map[uint64]sim.Time{}
		}
		if _, seen := r.consistentAt[user][v]; !seen {
			r.consistentAt[user][v] = at
		}
	})
	mnode := r.nw.AddNode("Manager")
	r.manager = NewManager(mnode, cfg, discovery.ServiceDescription{
		DeviceType: "Printer", ServiceType: "ColorPrinter",
		Attributes: map[string]string{"PaperTray": "full"},
	})
	r.manager.Start(1 * sim.Second)
	for i := 0; i < nUsers; i++ {
		unode := r.nw.AddNode("User")
		u := NewUser(unode, cfg, discovery.Query{ServiceType: "ColorPrinter"}, listener)
		u.Start(sim.Duration(i+2) * sim.Second)
		r.users = append(r.users, u)
	}
	return r
}

func (r *rig) whenConsistent(u *User, version uint64) (sim.Time, bool) {
	m, ok := r.consistentAt[u.ID()]
	if !ok {
		return 0, false
	}
	at, ok := m[version]
	return at, ok
}

func (r *rig) change() {
	r.manager.ChangeService(func(a map[string]string) { a["PaperTray"] = "empty" })
}

func TestBootstrapDiscoveryWithin100s(t *testing.T) {
	r := newRig(t, 1, 5, DefaultConfig())
	r.k.Run(100 * sim.Second)
	for i, u := range r.users {
		if got := u.CachedVersion(r.manager.ID()); got != 1 {
			t.Errorf("user %d cached version %d, want 1", i, got)
		}
		if !u.Subscribed() {
			t.Errorf("user %d not subscribed after boot", i)
		}
	}
	if r.manager.Subscribers() != 5 {
		t.Errorf("manager has %d subscribers, want 5", r.manager.Subscribers())
	}
}

func TestChangePropagatesWithoutFailures(t *testing.T) {
	r := newRig(t, 2, 5, DefaultConfig())
	r.k.At(1000*sim.Second, r.change)
	r.k.Run(1100 * sim.Second)
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("user %d never reached v2", i)
		}
		if at < 1000*sim.Second || at > 1001*sim.Second {
			t.Errorf("user %d consistent at %v, want within 1s of the change", i, at)
		}
	}
}

// Table 2: UPnP needs 3N discovery-layer messages to propagate an update
// to N Users (NOTIFY + GET + 200 OK each), m' = 15 for N = 5.
func TestUpdateMessageCountMatchesTable2(t *testing.T) {
	r := newRig(t, 3, 5, DefaultConfig())
	changeAt := 1000 * sim.Second
	r.k.At(changeAt, r.change)
	r.k.Run(1100 * sim.Second)
	var allDone sim.Time
	for i, u := range r.users {
		at, ok := r.whenConsistent(u, 2)
		if !ok {
			t.Fatalf("user %d never consistent", i)
		}
		if at > allDone {
			allDone = at
		}
	}
	y := r.nw.Counters().CountedInWindow(changeAt, allDone)
	if y != 15 {
		t.Errorf("update effort y = %d, want 15 (Table 2: 3N without TCP messages)", y)
	}
}

// The §6.2 case study: the User's interfaces are down across the change;
// the NOTIFY REXes; the subscription survives (renewals resume before the
// lease runs out); the User never regains consistency.
func TestSRN2CaseStudyUserNeverRegainsConsistency(t *testing.T) {
	r := newRig(t, 4, 1, DefaultConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailBoth,
		Start: 2023 * sim.Second, Duration: 810 * sim.Second, // up at 2833
	})
	r.k.At(2507*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	if _, ok := r.whenConsistent(u, 2); ok {
		t.Fatal("user regained consistency; UPnP lacks SRN2, it must not")
	}
	if got := u.CachedVersion(r.manager.ID()); got != 1 {
		t.Errorf("cached version = %d, want stale 1", got)
	}
	if !u.Subscribed() {
		t.Error("subscription should have survived the short failure")
	}
}

// PR4: a long failure expires the subscription at the Manager; the User's
// next renewal triggers a resubscription request, and resubscribing
// returns the current state.
func TestPR4ResubscribeRecovery(t *testing.T) {
	r := newRig(t, 5, 1, DefaultConfig())
	u := r.users[0]
	// Fail only the transmitter: announcements keep refreshing the User's
	// cache (no PR5), but renewals cannot leave, so the Manager purges the
	// subscription. Change happens during the failure.
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailTx,
		Start: 200 * sim.Second, Duration: 2200 * sim.Second, // up at 2400
	})
	r.k.At(2100*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("PR4 did not recover consistency")
	}
	// Recovery happens at the first renewal after Tx recovery (renewals
	// run at 90% of the 1800s lease), well before the end of the run.
	if at < 2400*sim.Second || at > 2400*sim.Second+1800*sim.Second {
		t.Errorf("recovered at %v, want within one renewal period of recovery", at)
	}
	if !u.Subscribed() {
		t.Error("user should be resubscribed")
	}
}

// PR4 ablation: with the technique disabled the same scenario never
// recovers.
func TestPR4AblationDoesNotRecover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Techniques = cfg.Techniques.Without(core.PR4)
	r := newRig(t, 5, 1, cfg)
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailTx,
		Start: 200 * sim.Second, Duration: 2200 * sim.Second,
	})
	r.k.At(2100*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	if _, ok := r.whenConsistent(u, 2); ok {
		t.Fatal("recovered without PR4; only PR4 explains recovery here")
	}
}

// PR5: a node failure long enough to expire the User's cache leads to
// purge and rediscovery through the Manager's announcements or M-SEARCH,
// after which the fetched description is current.
func TestPR5PurgeAndRediscover(t *testing.T) {
	r := newRig(t, 6, 1, DefaultConfig())
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailBoth,
		Start: 500 * sim.Second, Duration: 2500 * sim.Second, // up at 3000
	})
	r.k.At(1000*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("PR5 did not recover consistency")
	}
	if at < 3000*sim.Second {
		t.Errorf("recovered at %v, before the node was even up", at)
	}
	if !u.Subscribed() {
		t.Error("user should be resubscribed after rediscovery")
	}
}

// The invalidation-only NOTIFY means a User that got the NOTIFY but whose
// GET path is broken knows it is stale and keeps retrying the fetch. The
// NOTIFY is delivered directly here because with real TCP the knowledge/
// no-fetch split only opens in a microsecond window.
func TestInvalidationRetryAfterFailedGet(t *testing.T) {
	r := newRig(t, 7, 1, DefaultConfig())
	u := r.users[0]
	r.k.Run(100 * sim.Second) // boot: discovered and subscribed
	r.change()
	// Manager unreachable when the invalidation lands.
	mgr := r.nw.Node(r.manager.ID())
	mgr.SetRx(false)
	r.k.After(0, func() {
		u.Deliver(&netsim.Message{From: r.manager.ID(),
			Payload: discovery.Invalidate{Manager: r.manager.ID(), Version: 2}})
	})
	recoverAt := r.k.Now() + 500*sim.Second
	r.k.At(recoverAt, func() { mgr.SetRx(true) })
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("user never recovered despite knowing it was stale")
	}
	// GET retries every GetRetryPeriod (60s) plus the REX latency of the
	// attempt in flight when the Manager recovers (~102s).
	if at < recoverAt || at > recoverAt+200*sim.Second {
		t.Errorf("recovered at %v, want within ~200s after Manager recovery at %v", at, recoverAt)
	}
}

func TestManagerAnswersMatchingSearchOnly(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 8, 0, cfg)
	// A user with a non-matching requirement never caches the service.
	unode := r.nw.AddNode("PickyUser")
	u := NewUser(unode, cfg, discovery.Query{ServiceType: "Scanner"}, nil)
	u.Start(2 * sim.Second)
	r.k.Run(300 * sim.Second)
	if got := u.CachedVersion(r.manager.ID()); got != 0 {
		t.Errorf("non-matching user cached version %d", got)
	}
	if u.Subscribed() {
		t.Error("non-matching user subscribed")
	}
}
