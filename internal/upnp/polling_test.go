package upnp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func pollingConfig(period sim.Duration) Config {
	cfg := DefaultConfig()
	cfg.PollPeriod = period
	return cfg
}

// CM2 repairs the §6.2 scenario that CM1 alone cannot: the User's
// persistent polling retrieves the updated description after recovery —
// "periodic polling is the more effective method if the application
// allows persistent polling" (Dabrowski and Mills, quoted in §4.2).
func TestPollingRepairsTheSRN2CaseStudy(t *testing.T) {
	r := newRig(t, 50, 1, pollingConfig(600*sim.Second))
	u := r.users[0]
	r.nw.ScheduleFailure(netsim.InterfaceFailure{
		Node: u.ID(), Mode: netsim.FailBoth,
		Start: 2023 * sim.Second, Duration: 810 * sim.Second, // up at 2833
	})
	r.k.At(2507*sim.Second, r.change)
	r.k.Run(5400 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("polling did not repair the missed notification")
	}
	// The first poll after recovery at 2833s lands within one poll
	// period plus the REX latency of the poll in flight when the outage
	// ended.
	if at > 2833*sim.Second+750*sim.Second {
		t.Errorf("repaired at %v, want within ~one poll period of recovery", at)
	}
}

// Polling is slower than notification on the happy path: the update
// arrives on the next poll tick rather than immediately.
func TestPollingAloneIsSlowerThanNotification(t *testing.T) {
	// Disable eventing entirely by never subscribing: ablate PR4/PR5 has
	// no effect on eventing, so instead compare delivery times with a
	// user that got its NOTIFY (immediate) vs the poll grid.
	r := newRig(t, 51, 1, pollingConfig(600*sim.Second))
	u := r.users[0]
	r.k.At(1000*sim.Second, r.change)
	r.k.Run(1100 * sim.Second)
	at, ok := r.whenConsistent(u, 2)
	if !ok {
		t.Fatal("user never consistent")
	}
	// With eventing on, notification wins the race against the poll.
	if at > 1001*sim.Second {
		t.Errorf("notification path took %v; polling should not delay it", at)
	}
}

// "Polling is also a less efficient mechanism than update notification in
// scenarios where services rarely change, causing multiple redundant
// polls": quantify the redundant traffic of one polling user over a
// quiet run.
func TestPollingCostsRedundantMessages(t *testing.T) {
	quiet := newRig(t, 52, 1, DefaultConfig())
	quiet.k.Run(5400 * sim.Second)
	baseline := quiet.nw.Counters().PerKind["Get"]

	polling := newRig(t, 52, 1, pollingConfig(600*sim.Second))
	polling.k.Run(5400 * sim.Second)
	polled := polling.nw.Counters().PerKind["Get"]

	// ~9 poll GETs minus whatever the baseline needed (initial fetch).
	extra := polled - baseline
	if extra < 6 {
		t.Errorf("polling added only %d GETs over 5400s at 600s period", extra)
	}
}
