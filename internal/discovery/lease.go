package discovery

import (
	"repro/internal/sim"
)

// LeaseTable is the time-limited map behind every cache in the system:
// service registrations at a Registry, subscriptions at a Registry or
// Manager, and discovered-service caches at Users. An entry lives until
// its lease expires; Put with an existing key renews the lease and
// replaces the value; expiry invokes the table's callback exactly once
// (this is the "purge" of the PR taxonomy).
//
// Iteration (Each, Keys) follows insertion order: protocols fan messages
// out while iterating, and a random order would draw network delays in a
// different sequence on every run, breaking deterministic replay.
//
// Entries are pooled: Drop and expiry recycle the entry struct (and its
// lease deadline) onto a free list for the next Put, so steady-state
// membership churn allocates nothing.
type LeaseTable[K comparable, V any] struct {
	k        *sim.Kernel
	onExpire func(K, V)
	entries  map[K]*leaseEntry[K, V]
	order    []K
	free     *leaseEntry[K, V]

	// scratch snapshots the key order for Each/EachKey so callbacks may
	// mutate the table mid-iteration; iterating marks it in use so a
	// nested iteration falls back to a private copy.
	scratch   []K
	iterating bool
}

type leaseEntry[K comparable, V any] struct {
	key      K
	value    V
	deadline *sim.Deadline
	next     *leaseEntry[K, V] // free-list link while recycled
}

// NewLeaseTable creates a table on the given kernel. onExpire may be nil.
func NewLeaseTable[K comparable, V any](k *sim.Kernel, onExpire func(K, V)) *LeaseTable[K, V] {
	return &LeaseTable[K, V]{k: k, onExpire: onExpire, entries: make(map[K]*leaseEntry[K, V])}
}

// alloc takes an entry from the free list or makes a new one. The entry's
// deadline is created once, bound to the entry, and follows it through
// every recycle: the expiry callback reads the entry's current key.
func (t *LeaseTable[K, V]) alloc() *leaseEntry[K, V] {
	e := t.free
	if e == nil {
		e = &leaseEntry[K, V]{}
		e.deadline = sim.NewDeadline(t.k, func() { t.expire(e.key) })
		return e
	}
	t.free = e.next
	e.next = nil
	return e
}

// release returns an entry to the free list, dropping its value so the
// pool does not pin payloads for GC.
func (t *LeaseTable[K, V]) release(e *leaseEntry[K, V]) {
	var zeroV V
	var zeroK K
	e.value = zeroV
	e.key = zeroK
	e.next = t.free
	t.free = e
}

// Put inserts or replaces the entry and (re)starts its lease.
func (t *LeaseTable[K, V]) Put(key K, v V, lease sim.Duration) {
	e, ok := t.entries[key]
	if !ok {
		e = t.alloc()
		e.key = key
		t.entries[key] = e
		t.order = append(t.order, key)
	}
	e.value = v
	e.deadline.SetAfter(lease)
}

// Renew extends an existing entry's lease, reporting whether the entry was
// present. A renewal of an absent (purged) entry fails — that failure is
// what triggers PR3/PR4 resubscription flows.
func (t *LeaseTable[K, V]) Renew(key K, lease sim.Duration) bool {
	e, ok := t.entries[key]
	if !ok {
		return false
	}
	e.deadline.SetAfter(lease)
	return true
}

// RenewStrict extends an existing entry's lease only while the lease is
// still live: a renewal processed at or after the expiry instant is
// refused even if the purge callback has not fired yet (kernel event
// ordering can deliver a renewal and the expiry at the same timestamp in
// either order). Hardened holders use this instead of Renew so the
// renewal/purge race always resolves toward re-registration, keeping the
// holder's view and the oracle's lease ledger in lockstep.
func (t *LeaseTable[K, V]) RenewStrict(key K, lease sim.Duration) bool {
	e, ok := t.entries[key]
	if !ok || t.k.Now() >= e.deadline.When() {
		return false
	}
	e.deadline.SetAfter(lease)
	return true
}

// Get returns the live value for key.
func (t *LeaseTable[K, V]) Get(key K) (V, bool) {
	e, ok := t.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	return e.value, true
}

// Update replaces the value without touching the lease, reporting whether
// the entry existed. Registries use it to refresh a registration's SD
// from an Update without extending the registration lease.
func (t *LeaseTable[K, V]) Update(key K, v V) bool {
	e, ok := t.entries[key]
	if !ok {
		return false
	}
	e.value = v
	return true
}

// Clear drops every entry without invoking expiry callbacks, disarming
// all lease deadlines. Protocols use it to quiesce an instance whose
// node is being retired: afterwards the table owns no pending kernel
// events.
func (t *LeaseTable[K, V]) Clear() {
	for _, e := range t.entries {
		e.deadline.Clear()
		t.release(e)
	}
	clear(t.entries)
	t.order = t.order[:0]
}

// Rearm resets the table for workspace reuse after a Kernel.Reset: every
// entry is recycled and its deadline's event reference dropped without
// touching the kernel (the old events no longer exist). Capacity — the
// map, the order slice and the pooled entries — survives into the next
// run.
func (t *LeaseTable[K, V]) Rearm() {
	for _, e := range t.entries {
		e.deadline.Rearm()
		t.release(e)
	}
	clear(t.entries)
	t.order = t.order[:0]
	t.iterating = false
}

// Drop removes the entry without invoking the expiry callback.
func (t *LeaseTable[K, V]) Drop(key K) {
	if e, ok := t.entries[key]; ok {
		e.deadline.Clear()
		delete(t.entries, key)
		t.unorder(key)
		t.release(e)
	}
}

// Expiry reports when the entry's lease runs out.
func (t *LeaseTable[K, V]) Expiry(key K) (sim.Time, bool) {
	e, ok := t.entries[key]
	if !ok {
		return 0, false
	}
	return e.deadline.When(), true
}

// Len reports the number of live entries.
func (t *LeaseTable[K, V]) Len() int { return len(t.entries) }

// Keys returns the live keys in insertion order as a fresh slice.
func (t *LeaseTable[K, V]) Keys() []K {
	out := make([]K, len(t.order))
	copy(out, t.order)
	return out
}

// snapshotOrder captures the current key order into the reusable scratch
// buffer (or a fresh copy when an iteration is already running), so the
// iteration survives entries being added or removed by the callback.
func (t *LeaseTable[K, V]) snapshotOrder() (keys []K, scratch bool) {
	if t.iterating {
		return t.Keys(), false
	}
	t.iterating = true
	t.scratch = append(t.scratch[:0], t.order...)
	return t.scratch, true
}

// Each calls fn for every live entry in insertion order. Entries removed
// by fn (Drop, expiry cascades) are skipped; entries added by fn are not
// visited.
func (t *LeaseTable[K, V]) Each(fn func(K, V)) {
	keys, scratch := t.snapshotOrder()
	for _, k := range keys {
		if e, ok := t.entries[k]; ok {
			fn(k, e.value)
		}
	}
	if scratch {
		t.iterating = false
	}
}

// EachKey calls fn for every live key in insertion order, with the same
// mid-iteration mutation guarantees as Each and no value copies.
func (t *LeaseTable[K, V]) EachKey(fn func(K)) {
	keys, scratch := t.snapshotOrder()
	for _, k := range keys {
		if _, ok := t.entries[k]; ok {
			fn(k)
		}
	}
	if scratch {
		t.iterating = false
	}
}

func (t *LeaseTable[K, V]) expire(key K) {
	e, ok := t.entries[key]
	if !ok {
		return
	}
	delete(t.entries, key)
	t.unorder(key)
	value := e.value
	t.release(e)
	if t.onExpire != nil {
		t.onExpire(key, value)
	}
}

func (t *LeaseTable[K, V]) unorder(key K) {
	for i, k := range t.order {
		if k == key {
			t.order = append(t.order[:i], t.order[i+1:]...)
			return
		}
	}
}
