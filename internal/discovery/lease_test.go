package discovery

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLeaseTablePutGetDrop(t *testing.T) {
	k := sim.New(1)
	tbl := NewLeaseTable[string, int](k, nil)
	tbl.Put("a", 1, 10*sim.Second)
	if v, ok := tbl.Get("a"); !ok || v != 1 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	tbl.Put("a", 2, 10*sim.Second) // replace
	if v, _ := tbl.Get("a"); v != 2 {
		t.Errorf("value not replaced: %d", v)
	}
	tbl.Drop("a")
	if _, ok := tbl.Get("a"); ok {
		t.Error("entry survives Drop")
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d after drop", tbl.Len())
	}
}

func TestLeaseTableExpiry(t *testing.T) {
	k := sim.New(1)
	var expired []string
	tbl := NewLeaseTable[string, int](k, func(key string, v int) {
		expired = append(expired, key)
	})
	tbl.Put("a", 1, 10*sim.Second)
	tbl.Put("b", 2, 20*sim.Second)
	k.Run(15 * sim.Second)
	if len(expired) != 1 || expired[0] != "a" {
		t.Fatalf("expired = %v, want [a]", expired)
	}
	if _, ok := tbl.Get("a"); ok {
		t.Error("expired entry still present")
	}
	if _, ok := tbl.Get("b"); !ok {
		t.Error("live entry purged early")
	}
	k.Run(25 * sim.Second)
	if len(expired) != 2 {
		t.Errorf("expired = %v, want both", expired)
	}
}

func TestLeaseTableRenewExtends(t *testing.T) {
	k := sim.New(1)
	expired := 0
	tbl := NewLeaseTable[string, int](k, func(string, int) { expired++ })
	tbl.Put("a", 1, 10*sim.Second)
	k.At(8*sim.Second, func() {
		if !tbl.Renew("a", 10*sim.Second) {
			t.Error("renewal of live entry failed")
		}
	})
	k.Run(15 * sim.Second)
	if expired != 0 {
		t.Fatal("entry expired despite renewal")
	}
	k.Run(20 * sim.Second) // renewed lease runs out at 18s
	if expired != 1 {
		t.Errorf("expired = %d, want 1", expired)
	}
}

func TestLeaseTableRenewAbsentFails(t *testing.T) {
	k := sim.New(1)
	tbl := NewLeaseTable[string, int](k, nil)
	if tbl.Renew("ghost", sim.Second) {
		t.Error("renewal of absent entry succeeded — PR3/PR4 would never trigger")
	}
}

func TestLeaseTableUpdateKeepsLease(t *testing.T) {
	k := sim.New(1)
	tbl := NewLeaseTable[string, int](k, nil)
	tbl.Put("a", 1, 10*sim.Second)
	exp1, _ := tbl.Expiry("a")
	k.At(5*sim.Second, func() {
		if !tbl.Update("a", 99) {
			t.Error("Update of live entry failed")
		}
		exp2, _ := tbl.Expiry("a")
		if exp2 != exp1 {
			t.Error("Update moved the lease deadline")
		}
	})
	k.Run(6 * sim.Second)
	if v, _ := tbl.Get("a"); v != 99 {
		t.Errorf("value = %d after Update", v)
	}
	if tbl.Update("ghost", 1) {
		t.Error("Update of absent entry succeeded")
	}
}

func TestLeaseTablePutAfterExpiryReinserts(t *testing.T) {
	k := sim.New(1)
	expirations := 0
	tbl := NewLeaseTable[string, int](k, func(string, int) { expirations++ })
	tbl.Put("a", 1, 5*sim.Second)
	k.Run(10 * sim.Second)
	tbl.Put("a", 2, 5*sim.Second)
	k.Run(20 * sim.Second)
	if expirations != 2 {
		t.Errorf("expirations = %d, want 2 (expire, reinsert, expire)", expirations)
	}
}

func TestLeaseTableEachAndKeys(t *testing.T) {
	k := sim.New(1)
	tbl := NewLeaseTable[int, string](k, nil)
	tbl.Put(1, "x", sim.Second)
	tbl.Put(2, "y", sim.Second)
	seen := map[int]string{}
	tbl.Each(func(k int, v string) { seen[k] = v })
	if len(seen) != 2 || seen[1] != "x" || seen[2] != "y" {
		t.Errorf("Each visited %v", seen)
	}
	if len(tbl.Keys()) != 2 {
		t.Errorf("Keys = %v", tbl.Keys())
	}
}

func TestLeaseTableRenewStrictJustBeforeExpiry(t *testing.T) {
	k := sim.New(1)
	expired := 0
	tbl := NewLeaseTable[string, int](k, func(string, int) { expired++ })
	tbl.Put("a", 1, 10*sim.Second)
	k.At(10*sim.Second-1, func() {
		if !tbl.RenewStrict("a", 10*sim.Second) {
			t.Error("strict renewal one tick before expiry refused")
		}
	})
	k.Run(15 * sim.Second)
	if expired != 0 {
		t.Fatal("entry expired despite an in-time strict renewal")
	}
}

func TestLeaseTableRenewStrictAtExpiryRefused(t *testing.T) {
	k := sim.New(1)
	expired := 0
	tbl := NewLeaseTable[string, int](k, func(string, int) { expired++ })
	// The renewal is scheduled before Put arms the deadline, so at t=10s
	// the kernel's FIFO tie-break delivers it first: the entry is still
	// present, but the lease is spent. Strict must refuse, and the purge
	// must still fire at the same instant.
	renewed := true
	k.At(10*sim.Second, func() { renewed = tbl.RenewStrict("a", 10*sim.Second) })
	tbl.Put("a", 1, 10*sim.Second)
	k.Run(20 * sim.Second)
	if renewed {
		t.Error("strict renewal at the expiry instant succeeded")
	}
	if expired != 1 {
		t.Errorf("expirations = %d, want 1 — a refused renewal must not keep the entry alive", expired)
	}
}

func TestLeaseTableRenewRacingPurge(t *testing.T) {
	// The same race through the un-hardened Renew: delivered at the
	// expiry instant ahead of the purge event, it extends the lease and
	// the purge never fires. This is the baseline behavior the hunted
	// lease-purge fixtures pin down — and what StrictLease turns off.
	k := sim.New(1)
	expired := 0
	tbl := NewLeaseTable[string, int](k, func(string, int) { expired++ })
	lax := false
	k.At(10*sim.Second, func() { lax = tbl.Renew("a", 10*sim.Second) })
	tbl.Put("a", 1, 10*sim.Second)
	k.Run(15 * sim.Second)
	if !lax {
		t.Error("lax renewal at the expiry instant refused — the documented race is gone?")
	}
	if expired != 0 {
		t.Errorf("expirations = %d: the lax renewal should have kept the entry alive", expired)
	}
	k.Run(25 * sim.Second)
	if expired != 1 {
		t.Errorf("expirations = %d, want 1 at the extended deadline", expired)
	}
}

func TestLeaseTableRenewStrictAbsentFails(t *testing.T) {
	k := sim.New(1)
	tbl := NewLeaseTable[string, int](k, nil)
	if tbl.RenewStrict("ghost", sim.Second) {
		t.Error("strict renewal of an absent entry succeeded")
	}
}

// Property: an entry expires exactly once, never fires after Drop, and
// Get never returns an expired value — for arbitrary interleavings of
// put/renew/drop operations at arbitrary times.
func TestQuickLeaseLifecycle(t *testing.T) {
	type op struct {
		At    uint16 // seconds
		Kind  uint8  // 0=put 1=renew 2=drop
		Lease uint8  // seconds, 1..255
	}
	f := func(ops []op) bool {
		k := sim.New(7)
		expirations := 0
		live := false
		tbl := NewLeaseTable[string, int](k, func(string, int) {
			expirations++
			live = false
		})
		puts := 0
		for _, o := range ops {
			o := o
			lease := sim.Duration(int(o.Lease)+1) * sim.Second
			k.At(sim.Time(o.At)*sim.Second, func() {
				switch o.Kind % 3 {
				case 0:
					tbl.Put("k", 1, lease)
					live = true
					puts++
				case 1:
					if tbl.Renew("k", lease) != live {
						t.Error("Renew result disagrees with liveness")
					}
				case 2:
					tbl.Drop("k")
					live = false
				}
				if _, ok := tbl.Get("k"); ok != live {
					t.Error("Get disagrees with liveness model")
				}
			})
		}
		k.Run(sim.Time(1<<17) * sim.Second)
		// After the horizon every lease has run out: the table must be
		// empty and expirations can never exceed the number of puts.
		if tbl.Len() != 0 && live {
			return false
		}
		return expirations <= puts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
