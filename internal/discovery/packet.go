package discovery

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Role identifies the discovery-layer role a node speaks with. The sender
// role matters for message accounting: a subscriber's update
// acknowledgement is excluded from the update-effort count (see
// netsim.Counters).
type Role uint8

const (
	RoleUser Role = iota
	RoleManager
	RoleRegistry
	RoleBackup
)

func (r Role) String() string {
	switch r {
	case RoleUser:
		return "User"
	case RoleManager:
		return "Manager"
	case RoleRegistry:
		return "Registry"
	case RoleBackup:
		return "Backup"
	default:
		return "?"
	}
}

// The shared payload vocabulary. Every protocol composes its traffic from
// these types (FRODO adds its election family in package frodo); the
// structs carry only protocol content — sender and receiver live on the
// netsim.Message envelope.

// Announce advertises presence: a Registry's periodic multicast, a UPnP
// Manager's ssdp:alive train, or a FRODO node announcing itself while
// searching for the Central.
type Announce struct {
	Role Role
	// Power is FRODO's device capability used by the Central election;
	// zero elsewhere.
	Power int
	// CacheLease is how long receivers may keep the announcing entity in
	// their caches before purging it (UPnP CACHE-CONTROL; registration
	// lease for registries).
	CacheLease sim.Duration
}

// Search asks for services matching a query; multicast in UPnP/FRODO
// fallback, unicast to a Registry in Jini and FRODO.
type Search struct {
	Q Query
}

// SearchReply returns the matching records.
type SearchReply struct {
	Recs []ServiceRecord
}

// Register stores (or refreshes) a Manager's service at a Registry.
type Register struct {
	Rec   ServiceRecord
	Lease sim.Duration
}

// RegisterAck confirms a registration.
type RegisterAck struct{}

// Subscribe asks to receive update notifications for a Manager's service,
// from the Registry (3-party) or the Manager itself (2-party). Jini's
// request for notification of future service registrations is a Subscribe
// with Manager == netsim.NoNode and Q set to the User's requirements.
type Subscribe struct {
	Manager netsim.NodeID
	Q       *Query
	Lease   sim.Duration
}

// SubscribeAck confirms a subscription. Manager echoes the request's
// Manager field (NoNode for a Jini notification request) so the
// subscriber can correlate. Rec carries the current service state when
// the protocol delivers initial state on subscription (UPnP eventing,
// FRODO resubscription): that is how PR3/PR4 recoveries restore
// consistency. Jini leaves Rec.SD nil — hence PR2.
type SubscribeAck struct {
	Manager netsim.NodeID
	Rec     ServiceRecord
}

// Renew refreshes a subscription lease (SubscriptionRenew in Fig. 1).
type Renew struct {
	Manager netsim.NodeID
	Lease   sim.Duration
}

// RenewAck confirms a renewal.
type RenewAck struct {
	Manager netsim.NodeID
}

// RenewError rejects a renewal for an unknown subscription: Jini's PR3
// ("purged Users are simply returned with an error message from the
// Registry").
type RenewError struct {
	Manager netsim.NodeID
}

// Update propagates a changed service description (ServiceUpdate in
// Fig. 1). Jini and FRODO carry the updated data; Seq supports SRC2
// monitoring. ForRegistry routes the message at nodes that can hold both
// a Registry and a subscriber role (FRODO 300D): true means "store this
// in your repository", false means "this is your subscribed copy".
type Update struct {
	Rec         ServiceRecord
	Seq         uint64
	ForRegistry bool
}

// UpdateAck acknowledges an Update. SenderRole distinguishes a Registry's
// ack to the Manager (counted effort) from a subscriber's receipt
// (uncounted, the UDP analogue of a TCP ACK).
type UpdateAck struct {
	Manager    netsim.NodeID
	Version    uint64
	SenderRole Role
}

// Invalidate is UPnP's eventing NOTIFY: it announces that the service
// changed without carrying the data; the User must fetch the new
// description with Get.
type Invalidate struct {
	Manager netsim.NodeID
	Version uint64
}

// Get requests the current service description (UPnP HTTP GET; FRODO
// SRC2 update request).
type Get struct {
	Manager netsim.NodeID
}

// GetReply returns the current description.
type GetReply struct {
	Rec ServiceRecord
}

// ResubscribeRequest asks a formerly-subscribed User to subscribe again:
// FRODO's PR3 (from the Registry) and PR4 (from a 300D Manager), and
// UPnP's PR4.
type ResubscribeRequest struct {
	Manager netsim.NodeID
}

// ManagerGone tells a User that the Registry purged a Manager, triggering
// FRODO's PR5 ("Users purge the subscription when the Registry purges the
// Manager").
type ManagerGone struct {
	Manager netsim.NodeID
}

// Bye is a best-effort goodbye, only emitted under Hardening: a retiring
// node deregisters itself (peers evict its leases immediately instead of
// waiting for expiry), and a demoted FRODO Central retracts its Announce
// claim (Role == RoleRegistry). Receivers handle Bye unconditionally —
// baseline runs never send one, so the baseline wire trace is unchanged.
type Bye struct {
	Role Role
}

// Kind returns the wire-log name for a payload; protocols pass it as
// netsim.Outgoing.Kind so traces and per-kind counters read naturally.
func Kind(p any) string {
	switch p.(type) {
	case Announce, *Announce:
		return "Announce"
	case Search, *Search:
		return "ServiceSearch"
	case SearchReply, *SearchReply:
		return "ServiceFound"
	case Register, *Register:
		return "ServiceRegistration"
	case RegisterAck, *RegisterAck:
		return "RegistrationAck"
	case Subscribe, *Subscribe:
		return "SubscriptionRequest"
	case SubscribeAck, *SubscribeAck:
		return "SubscriptionAck"
	case Renew, *Renew:
		return "SubscriptionRenew"
	case RenewAck, *RenewAck:
		return "RenewAck"
	case RenewError, *RenewError:
		return "RenewError"
	case Update, *Update:
		return "ServiceUpdate"
	case UpdateAck, *UpdateAck:
		return "UpdateAck"
	case Invalidate, *Invalidate:
		return "Invalidate"
	case Get, *Get:
		return "Get"
	case GetReply, *GetReply:
		return "GetReply"
	case ResubscribeRequest, *ResubscribeRequest:
		return "ResubscribeRequest"
	case ManagerGone, *ManagerGone:
		return "ManagerGone"
	case Bye, *Bye:
		return "Bye"
	default:
		return "Unknown"
	}
}
