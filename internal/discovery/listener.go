package discovery

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ConsistencyListener observes User-side cache writes. The experiment
// harness implements it to record U(i,j) — the instant each User first
// holds the post-change version — which feeds every Update Metric.
type ConsistencyListener interface {
	// CacheUpdated fires whenever a User stores a service description
	// version for a Manager, including the initial discovery.
	CacheUpdated(t sim.Time, user, manager netsim.NodeID, version uint64)
}

// ListenerFunc adapts a function to ConsistencyListener.
type ListenerFunc func(t sim.Time, user, manager netsim.NodeID, version uint64)

// CacheUpdated implements ConsistencyListener.
func (f ListenerFunc) CacheUpdated(t sim.Time, user, manager netsim.NodeID, version uint64) {
	f(t, user, manager, version)
}

// NopListener ignores all events; protocols use it when no harness is
// attached so call sites never nil-check.
type NopListener struct{}

// CacheUpdated implements ConsistencyListener.
func (NopListener) CacheUpdated(sim.Time, netsim.NodeID, netsim.NodeID, uint64) {}
