package discovery

// Hardening toggles the protocol-hardening layer (internal/harden): four
// independent mechanisms, one per hunted failure class, each closing a
// consistency gap the chaos hunter proved reachable under realistic
// faults. The zero value is the paper-faithful baseline — every default
// run, golden sweep and benchmark replays bit-identically with hardening
// off.
type Hardening struct {
	// StrictLease makes lease holders refuse renewals that arrive at or
	// after the lease expiry (the renewer must re-register in full), and
	// forbids the silent repository heals that re-create leases no
	// renewal ever established on the wire. Closes the unbounded
	// lease-purge findings.
	StrictLease bool
	// JitterRetry replaces fixed retry spacing with capped decorrelated
	// jitter drawn from the kernel RNG (deterministic per seed), and
	// bounds TCP data retransmission (attempt cap + RTO ceiling), so a
	// burst-loss window cannot convert one lost frame into an unbounded
	// retransmission tail.
	JitterRetry bool
	// RetireBye has retiring nodes emit a best-effort Bye frame that
	// peers evict on, and aborts their in-flight TCP transfers, so a
	// departed node never transmits again. Closes the retired-silence
	// zombies.
	RetireBye bool
	// CentralRepair fixes the FRODO election's liveness gaps: a demoted
	// Central retracts its claim with a Bye, a sitting Central reasserts
	// against weaker claims, announcements pause while the Central's own
	// transmitter is down (resuming immediately on recovery), and the
	// election re-arms with backoff while no Central is reachable.
	CentralRepair bool
}

// HardenAll enables every hardening mechanism.
func HardenAll() Hardening {
	return Hardening{StrictLease: true, JitterRetry: true, RetireBye: true, CentralRepair: true}
}

// Enabled reports whether any mechanism is on.
func (h Hardening) Enabled() bool { return h != Hardening{} }
