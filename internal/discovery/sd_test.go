package discovery

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func printerSD() ServiceDescription {
	return ServiceDescription{
		DeviceType:  "Printer",
		ServiceType: "ColorPrinter",
		Attributes:  map[string]string{"PaperSize": "A4", "Location": "Study"},
		Version:     1,
	}
}

func TestSDCloneIsDeep(t *testing.T) {
	sd := printerSD()
	cp := sd.Clone()
	cp.Attributes["PaperSize"] = "Letter"
	if sd.Attributes["PaperSize"] != "A4" {
		t.Error("Clone aliases the attribute map")
	}
	if !sd.Equal(sd.Clone()) {
		t.Error("Clone is not Equal to the original")
	}
}

func TestSDEqual(t *testing.T) {
	a := printerSD()
	b := printerSD()
	if !a.Equal(b) {
		t.Error("identical SDs not Equal")
	}
	b.Version = 2
	if a.Equal(b) {
		t.Error("different versions compare Equal")
	}
	c := printerSD()
	c.Attributes["Location"] = "Kitchen"
	if a.Equal(c) {
		t.Error("different attributes compare Equal")
	}
	d := printerSD()
	delete(d.Attributes, "Location")
	if a.Equal(d) || d.Equal(a) {
		t.Error("different attribute counts compare Equal")
	}
}

func TestSDStringUsesPaperNotation(t *testing.T) {
	s := printerSD().String()
	for _, want := range []string{"DeviceType=Printer", "ServiceType=ColorPrinter", "PaperSize=A4", "AttributeList{"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestQueryMatching(t *testing.T) {
	sd := printerSD()
	cases := []struct {
		name string
		q    Query
		want bool
	}{
		{"empty matches all", Query{}, true},
		{"device type", Query{DeviceType: "Printer"}, true},
		{"wrong device type", Query{DeviceType: "Camera"}, false},
		{"service type", Query{ServiceType: "ColorPrinter"}, true},
		{"wrong service type", Query{ServiceType: "BWPrinter"}, false},
		{"attribute subset", Query{Attributes: map[string]string{"Location": "Study"}}, true},
		{"attribute mismatch", Query{Attributes: map[string]string{"Location": "Kitchen"}}, false},
		{"absent attribute", Query{Attributes: map[string]string{"Duplex": "yes"}}, false},
		{"full match", Query{DeviceType: "Printer", ServiceType: "ColorPrinter",
			Attributes: map[string]string{"PaperSize": "A4"}}, true},
	}
	snap := sd.Freeze()
	for _, c := range cases {
		if got := c.q.Matches(snap); got != c.want {
			t.Errorf("%s: Matches = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestServiceRecordSharesSnapshot(t *testing.T) {
	r := ServiceRecord{Manager: 3, SD: printerSD().Freeze()}
	cp := r // records are plain values; the snapshot behind SD is shared
	if cp.SD != r.SD {
		t.Error("record copy should share the snapshot pointer")
	}
	if cp.SD.Attr("PaperSize") != "A4" {
		t.Error("snapshot lost attribute content")
	}
}

func TestKindNamesAreStable(t *testing.T) {
	want := []struct {
		p    any
		name string
	}{
		{Announce{}, "Announce"},
		{Search{}, "ServiceSearch"},
		{SearchReply{}, "ServiceFound"},
		{Register{}, "ServiceRegistration"},
		{RegisterAck{}, "RegistrationAck"},
		{Subscribe{}, "SubscriptionRequest"},
		{SubscribeAck{}, "SubscriptionAck"},
		{Renew{}, "SubscriptionRenew"},
		{RenewAck{}, "RenewAck"},
		{RenewError{}, "RenewError"},
		{Update{}, "ServiceUpdate"},
		{UpdateAck{}, "UpdateAck"},
		{Invalidate{}, "Invalidate"},
		{Get{}, "Get"},
		{GetReply{}, "GetReply"},
		{ResubscribeRequest{}, "ResubscribeRequest"},
		{ManagerGone{}, "ManagerGone"},
	}
	for _, c := range want {
		if got := Kind(c.p); got != c.name {
			t.Errorf("Kind(%T) = %q, want %q", c.p, got, c.name)
		}
	}
	if Kind(42) != "Unknown" {
		t.Error("unknown payload kind not reported")
	}
	if Kind(&Update{}) != "ServiceUpdate" {
		t.Error("pointer payloads not recognized")
	}
}

// Property: Clone always yields an Equal SD whose attribute map is
// independent storage.
func TestQuickCloneEqual(t *testing.T) {
	gen := func(r *rand.Rand) ServiceDescription {
		attrs := map[string]string{}
		for i := 0; i < r.Intn(5); i++ {
			attrs[string(rune('a'+i))] = string(rune('A' + r.Intn(26)))
		}
		return ServiceDescription{
			DeviceType:  string(rune('a' + r.Intn(4))),
			ServiceType: string(rune('p' + r.Intn(4))),
			Attributes:  attrs,
			Version:     uint64(r.Intn(100)),
		}
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(gen(r))
		},
	}
	f := func(sd ServiceDescription) bool {
		cp := sd.Clone()
		if !cp.Equal(sd) || !sd.Equal(cp) {
			return false
		}
		if len(cp.Attributes) > 0 {
			for k := range cp.Attributes {
				cp.Attributes[k] = "mutated"
				return sd.Attributes[k] != "mutated"
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: a query constructed from a subset of an SD's fields always
// matches that SD.
func TestQuickSubsetQueryMatches(t *testing.T) {
	f := func(dev, svc string, useDev, useSvc bool) bool {
		sd := ServiceDescription{DeviceType: dev, ServiceType: svc,
			Attributes: map[string]string{"k": "v"}}
		q := Query{}
		if useDev {
			q.DeviceType = dev
		}
		if useSvc {
			q.ServiceType = svc
		}
		return q.Matches(sd.Freeze())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
