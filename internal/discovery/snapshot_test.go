package discovery

import (
	"sync"
	"testing"
)

// TestSnapshotMutateIsCopyOnWrite pins the core contract: Mutate derives
// a new snapshot and the original is untouched, attribute by attribute.
func TestSnapshotMutateIsCopyOnWrite(t *testing.T) {
	base := printerSD().Freeze()
	next := base.Mutate(func(attrs map[string]string) {
		attrs["PaperSize"] = "Letter"
		attrs["Tray"] = "empty"
	})
	if base.Version() != 1 || next.Version() != 2 {
		t.Fatalf("versions = %d → %d, want 1 → 2", base.Version(), next.Version())
	}
	if base.Attr("PaperSize") != "A4" || base.Attr("Tray") != "" {
		t.Errorf("Mutate disturbed the original: %v", base)
	}
	if next.Attr("PaperSize") != "Letter" || next.Attr("Tray") != "empty" {
		t.Errorf("Mutate lost changes: %v", next)
	}
	if next == base {
		t.Error("Mutate returned the receiver")
	}
}

// TestSnapshotFreezeDetachesBuilder proves freezing copies the builder's
// attribute map: later builder mutations are invisible to the snapshot.
func TestSnapshotFreezeDetachesBuilder(t *testing.T) {
	sd := printerSD()
	snap := sd.Freeze()
	sd.Attributes["PaperSize"] = "mutated"
	if snap.Attr("PaperSize") != "A4" {
		t.Error("Freeze aliases the builder's attribute map")
	}
}

// TestSnapshotConcurrentReadersDuringMutate is the race proof behind the
// share-by-reference design: many goroutines hammer a published snapshot
// with reads while the writer keeps deriving new versions from it. Under
// `go test -race` any mutation of shared state would be reported; the
// absence of a report is the type-level guarantee the protocol caches
// rely on when they hold a Manager's snapshot without copying it.
func TestSnapshotConcurrentReadersDuringMutate(t *testing.T) {
	published := printerSD().Freeze()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if published.Attr("PaperSize") != "A4" {
					t.Error("reader observed a mutation of the published snapshot")
					return
				}
				_ = published.String()
				_ = published.Version()
				_ = Query{ServiceType: "ColorPrinter"}.Matches(published)
			}
		}()
	}
	// The "Manager" changes the service many times; every change is a new
	// snapshot, never a write to the published one.
	cur := published
	for i := 0; i < 1000; i++ {
		cur = cur.Mutate(func(attrs map[string]string) { attrs["PaperSize"] = "Letter" })
	}
	close(stop)
	wg.Wait()
	if cur.Version() != 1001 || published.Version() != 1 {
		t.Errorf("versions drifted: cur=%d published=%d", cur.Version(), published.Version())
	}
}
