package discovery

import "testing"

// FuzzQueryMatches exercises the matcher with arbitrary field contents:
// it must never panic, must be deterministic, and an exact self-query
// must always match. Matching goes through frozen snapshots — the only
// form protocol code matches against — and freezing must never change a
// match result.
func FuzzQueryMatches(f *testing.F) {
	f.Add("Printer", "ColorPrinter", "PaperSize", "A4", "Location", "Study")
	f.Add("", "", "", "", "", "")
	f.Add("日本", "語", "k\x00", "v", "", "x")
	f.Fuzz(func(t *testing.T, dev, svc, k1, v1, k2, v2 string) {
		sd := ServiceDescription{
			DeviceType:  dev,
			ServiceType: svc,
			Attributes:  map[string]string{k1: v1, k2: v2},
		}
		snap := sd.Freeze()
		self := Query{DeviceType: dev, ServiceType: svc,
			Attributes: map[string]string{k1: v1}}
		if !self.Matches(snap) {
			t.Fatalf("self-query failed to match: %v", snap)
		}
		a := Query{DeviceType: dev, Attributes: map[string]string{k2: v2}}.Matches(snap)
		b := Query{DeviceType: dev, Attributes: map[string]string{k2: v2}}.Matches(snap)
		if a != b {
			t.Fatal("Matches is not deterministic")
		}
		// Re-freezing (a fresh snapshot of the same builder) never changes
		// match results.
		if self.Matches(sd.Freeze()) != self.Matches(snap) {
			t.Fatal("Freeze changed match result")
		}
		// A content-preserving mutation (version bump only) never changes
		// match results either: queries are version-blind.
		if self.Matches(snap.Mutate(nil)) != self.Matches(snap) {
			t.Fatal("version-only Mutate changed match result")
		}
	})
}

// FuzzSnapshotMutate exercises copy-on-write: mutating a snapshot must
// produce a new version without disturbing the original, for arbitrary
// attribute contents.
func FuzzSnapshotMutate(f *testing.F) {
	f.Add("Printer", "ColorPrinter", "PaperSize", "A4", "Tray", "empty")
	f.Add("", "", "", "", "", "")
	f.Add("日本", "語", "k\x00", "v", "k\x00", "w")
	f.Fuzz(func(t *testing.T, dev, svc, k, v, mk, mv string) {
		base := ServiceDescription{DeviceType: dev, ServiceType: svc,
			Attributes: map[string]string{k: v}}.Freeze()
		before := base.Describe()
		next := base.Mutate(func(attrs map[string]string) { attrs[mk] = mv })
		if next.Version() != base.Version()+1 {
			t.Fatalf("Mutate version %d, want %d", next.Version(), base.Version()+1)
		}
		if next.Attr(mk) != mv {
			t.Fatalf("Mutate lost the mutation: %q != %q", next.Attr(mk), mv)
		}
		if !base.Describe().Equal(before) {
			t.Fatalf("Mutate disturbed the original snapshot: %v != %v", base, before)
		}
		if mk != k && next.Attr(k) != v {
			t.Fatal("Mutate dropped an unrelated attribute")
		}
	})
}

// FuzzSDString ensures rendering arbitrary descriptions never panics and
// always carries the paper's notation markers, in both builder and
// snapshot form, and that the two renderings agree.
func FuzzSDString(f *testing.F) {
	f.Add("Printer", "ColorPrinter", "a", "b", uint64(3))
	f.Add("", "", "", "", uint64(1))
	f.Fuzz(func(t *testing.T, dev, svc, k, v string, ver uint64) {
		if ver == 0 {
			ver = 1 // Freeze normalizes version 0 to 1
		}
		sd := ServiceDescription{DeviceType: dev, ServiceType: svc,
			Attributes: map[string]string{k: v}, Version: ver}
		s := sd.String()
		if len(s) == 0 {
			t.Fatal("empty rendering")
		}
		for _, marker := range []string{"SD{", "AttributeList{"} {
			if !containsStr(s, marker) {
				t.Fatalf("rendering %q missing %q", s, marker)
			}
		}
		if got := sd.Freeze().String(); got != s {
			t.Fatalf("snapshot rendering %q != builder rendering %q", got, s)
		}
	})
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
