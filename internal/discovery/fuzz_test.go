package discovery

import "testing"

// FuzzQueryMatches exercises the matcher with arbitrary field contents:
// it must never panic, must be deterministic, and an exact self-query
// must always match.
func FuzzQueryMatches(f *testing.F) {
	f.Add("Printer", "ColorPrinter", "PaperSize", "A4", "Location", "Study")
	f.Add("", "", "", "", "", "")
	f.Add("日本", "語", "k\x00", "v", "", "x")
	f.Fuzz(func(t *testing.T, dev, svc, k1, v1, k2, v2 string) {
		sd := ServiceDescription{
			DeviceType:  dev,
			ServiceType: svc,
			Attributes:  map[string]string{k1: v1, k2: v2},
		}
		self := Query{DeviceType: dev, ServiceType: svc,
			Attributes: map[string]string{k1: v1}}
		if !self.Matches(sd) {
			t.Fatalf("self-query failed to match: %+v", sd)
		}
		a := Query{DeviceType: dev, Attributes: map[string]string{k2: v2}}.Matches(sd)
		b := Query{DeviceType: dev, Attributes: map[string]string{k2: v2}}.Matches(sd)
		if a != b {
			t.Fatal("Matches is not deterministic")
		}
		// Cloning never changes match results.
		if self.Matches(sd.Clone()) != self.Matches(sd) {
			t.Fatal("Clone changed match result")
		}
	})
}

// FuzzSDString ensures rendering arbitrary descriptions never panics and
// always carries the paper's notation markers.
func FuzzSDString(f *testing.F) {
	f.Add("Printer", "ColorPrinter", "a", "b", uint64(3))
	f.Add("", "", "", "", uint64(0))
	f.Fuzz(func(t *testing.T, dev, svc, k, v string, ver uint64) {
		sd := ServiceDescription{DeviceType: dev, ServiceType: svc,
			Attributes: map[string]string{k: v}, Version: ver}
		s := sd.String()
		if len(s) == 0 {
			t.Fatal("empty rendering")
		}
		for _, marker := range []string{"SD{", "AttributeList{"} {
			if !containsStr(s, marker) {
				t.Fatalf("rendering %q missing %q", s, marker)
			}
		}
	})
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
