// Package discovery holds the protocol-neutral service discovery domain
// model shared by the FRODO, Jini and UPnP implementations: service
// descriptions, queries, the common wire payload types, and lease tables.
package discovery

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
)

// ServiceDescription describes a service in the three-part form of §1:
// device type (e.g. printer), service type (e.g. color printing) and an
// attribute list (e.g. location, paper size). Version counts the changes
// the Manager has applied; a User is consistent when its cached Version
// equals the Manager's.
type ServiceDescription struct {
	DeviceType  string
	ServiceType string
	Attributes  map[string]string
	Version     uint64
}

// Clone returns a deep copy; caches must never alias a Manager's live
// attribute map.
func (sd ServiceDescription) Clone() ServiceDescription {
	out := sd
	if sd.Attributes != nil {
		out.Attributes = make(map[string]string, len(sd.Attributes))
		for k, v := range sd.Attributes {
			out.Attributes[k] = v
		}
	}
	return out
}

// Equal reports whether two descriptions carry identical content,
// including version.
func (sd ServiceDescription) Equal(other ServiceDescription) bool {
	if sd.DeviceType != other.DeviceType || sd.ServiceType != other.ServiceType ||
		sd.Version != other.Version || len(sd.Attributes) != len(other.Attributes) {
		return false
	}
	for k, v := range sd.Attributes {
		if ov, ok := other.Attributes[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the SD in the paper's notation:
// SD = {DeviceType=Printer, ServiceType=ColorPrinter, AttributeList{...}}.
func (sd ServiceDescription) String() string {
	keys := make([]string, 0, len(sd.Attributes))
	for k := range sd.Attributes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var attrs strings.Builder
	for i, k := range keys {
		if i > 0 {
			attrs.WriteString(", ")
		}
		fmt.Fprintf(&attrs, "%s=%s", k, sd.Attributes[k])
	}
	return fmt.Sprintf("SD{DeviceType=%s, ServiceType=%s, AttributeList{%s}, v%d}",
		sd.DeviceType, sd.ServiceType, attrs.String(), sd.Version)
}

// Query is a User's service requirement: empty fields match anything, and
// every listed attribute must be present with the same value.
type Query struct {
	DeviceType  string
	ServiceType string
	Attributes  map[string]string
}

// Matches reports whether the description satisfies the query.
func (q Query) Matches(sd ServiceDescription) bool {
	if q.DeviceType != "" && q.DeviceType != sd.DeviceType {
		return false
	}
	if q.ServiceType != "" && q.ServiceType != sd.ServiceType {
		return false
	}
	for k, v := range q.Attributes {
		if sd.Attributes[k] != v {
			return false
		}
	}
	return true
}

// ServiceRecord binds a description to the Manager that owns it; it is the
// unit stored in Registry repositories and User caches.
type ServiceRecord struct {
	Manager netsim.NodeID
	SD      ServiceDescription
}

// Clone deep-copies the record.
func (r ServiceRecord) Clone() ServiceRecord {
	return ServiceRecord{Manager: r.Manager, SD: r.SD.Clone()}
}
