// Package discovery holds the protocol-neutral service discovery domain
// model shared by the FRODO, Jini and UPnP implementations: service
// descriptions, queries, the common wire payload types, and lease tables.
package discovery

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
)

// ServiceDescription is the mutable builder for a service in the
// three-part form of §1: device type (e.g. printer), service type (e.g.
// color printing) and an attribute list (e.g. location, paper size).
// Version counts the changes the Manager has applied; a User is
// consistent when its cached Version equals the Manager's.
//
// Protocol state never holds a ServiceDescription: Managers Freeze the
// builder into an immutable *Snapshot at construction time, and every
// later change goes through Snapshot.Mutate (copy-on-write). The builder
// form survives for construction sites and diagnostics (Snapshot.Describe).
type ServiceDescription struct {
	DeviceType  string
	ServiceType string
	Attributes  map[string]string
	Version     uint64
}

// Clone returns a deep copy of the builder.
func (sd ServiceDescription) Clone() ServiceDescription {
	out := sd
	if sd.Attributes != nil {
		out.Attributes = make(map[string]string, len(sd.Attributes))
		for k, v := range sd.Attributes {
			out.Attributes[k] = v
		}
	}
	return out
}

// Equal reports whether two descriptions carry identical content,
// including version.
func (sd ServiceDescription) Equal(other ServiceDescription) bool {
	if sd.DeviceType != other.DeviceType || sd.ServiceType != other.ServiceType ||
		sd.Version != other.Version || len(sd.Attributes) != len(other.Attributes) {
		return false
	}
	for k, v := range sd.Attributes {
		if ov, ok := other.Attributes[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the SD in the paper's notation:
// SD = {DeviceType=Printer, ServiceType=ColorPrinter, AttributeList{...}}.
func (sd ServiceDescription) String() string {
	return renderSD(sd.DeviceType, sd.ServiceType, sd.Attributes, sd.Version)
}

func renderSD(dev, svc string, attrs map[string]string, version uint64) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var list strings.Builder
	for i, k := range keys {
		if i > 0 {
			list.WriteString(", ")
		}
		fmt.Fprintf(&list, "%s=%s", k, attrs[k])
	}
	return fmt.Sprintf("SD{DeviceType=%s, ServiceType=%s, AttributeList{%s}, v%d}",
		dev, svc, list.String(), version)
}

// Freeze deep-copies the builder into an immutable snapshot. A zero
// Version freezes as version 1: a live service always has a first
// version for Users to be consistent with.
func (sd ServiceDescription) Freeze() *Snapshot {
	v := sd.Version
	if v == 0 {
		v = 1
	}
	attrs := make(map[string]string, len(sd.Attributes))
	for k, val := range sd.Attributes {
		attrs[k] = val
	}
	return &Snapshot{deviceType: sd.DeviceType, serviceType: sd.ServiceType,
		attrs: attrs, version: v}
}

// Snapshot is one immutable, versioned state of a service description.
// Snapshots are shared by pointer across the whole stack — Manager state,
// Registry repositories, User caches, update history and wire payloads all
// hold the same *Snapshot — which is safe precisely because a snapshot
// can never change: the fields are unexported, there is no setter, and a
// service change builds a new snapshot via Mutate instead of touching an
// old one. The PR-2 copy discipline ("caches must never alias a Manager's
// live attribute map") is thereby a property of the type, not of caller
// care, and the per-message path carries no deep copies at all.
type Snapshot struct {
	deviceType  string
	serviceType string
	attrs       map[string]string
	version     uint64
}

// Mutate derives the next snapshot: the attribute map is copied, handed
// to mutate, and frozen under version+1. The receiver is unchanged. The
// mutate callback owns the map only for the duration of the call and must
// not retain it — a retained reference would pierce the immutability the
// rest of the system relies on.
func (s *Snapshot) Mutate(mutate func(attrs map[string]string)) *Snapshot {
	attrs := make(map[string]string, len(s.attrs)+1)
	for k, v := range s.attrs {
		attrs[k] = v
	}
	if mutate != nil {
		mutate(attrs)
	}
	return &Snapshot{deviceType: s.deviceType, serviceType: s.serviceType,
		attrs: attrs, version: s.version + 1}
}

// Version reports the snapshot's service version.
func (s *Snapshot) Version() uint64 { return s.version }

// DeviceType reports the device type.
func (s *Snapshot) DeviceType() string { return s.deviceType }

// ServiceType reports the service type.
func (s *Snapshot) ServiceType() string { return s.serviceType }

// Attr reports the value of one attribute, "" if absent.
func (s *Snapshot) Attr(key string) string { return s.attrs[key] }

// NumAttrs reports how many attributes the snapshot carries.
func (s *Snapshot) NumAttrs() int { return len(s.attrs) }

// Describe copies the snapshot back out into the mutable builder form,
// for tests and diagnostics.
func (s *Snapshot) Describe() ServiceDescription {
	attrs := make(map[string]string, len(s.attrs))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	return ServiceDescription{DeviceType: s.deviceType, ServiceType: s.serviceType,
		Attributes: attrs, Version: s.version}
}

// Equal reports whether two snapshots carry identical content, including
// version. Two nil snapshots are equal.
func (s *Snapshot) Equal(other *Snapshot) bool {
	if s == nil || other == nil {
		return s == other
	}
	if s.deviceType != other.deviceType || s.serviceType != other.serviceType ||
		s.version != other.version || len(s.attrs) != len(other.attrs) {
		return false
	}
	for k, v := range s.attrs {
		if ov, ok := other.attrs[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the snapshot in the paper's notation.
func (s *Snapshot) String() string {
	if s == nil {
		return "SD{<nil>}"
	}
	return renderSD(s.deviceType, s.serviceType, s.attrs, s.version)
}

// Query is a User's service requirement: empty fields match anything, and
// every listed attribute must be present with the same value.
type Query struct {
	DeviceType  string
	ServiceType string
	Attributes  map[string]string
}

// Matches reports whether the snapshot satisfies the query. A nil
// snapshot (an absent service) matches nothing.
func (q Query) Matches(s *Snapshot) bool {
	if s == nil {
		return false
	}
	if q.DeviceType != "" && q.DeviceType != s.deviceType {
		return false
	}
	if q.ServiceType != "" && q.ServiceType != s.serviceType {
		return false
	}
	for k, v := range q.Attributes {
		if s.attrs[k] != v {
			return false
		}
	}
	return true
}

// ServiceRecord binds a description snapshot to the Manager that owns it;
// it is the unit stored in Registry repositories and User caches, and the
// payload unit on the wire. Records are tiny (an ID and a pointer) and
// copied freely; the snapshot behind SD is shared, immutable, by design.
type ServiceRecord struct {
	Manager netsim.NodeID
	SD      *Snapshot
}
