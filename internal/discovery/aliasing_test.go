package discovery

import (
	"testing"

	"repro/internal/sim"
)

// TestLeaseTableSharesSnapshotsWithoutAliasing models what every User
// cache and Registry repository in the system now does: store records
// whose SD is a shared snapshot. A new version stored under the same key
// must not disturb a record handed out earlier — the old snapshot stays
// exactly as it was.
func TestLeaseTableSharesSnapshotsWithoutAliasing(t *testing.T) {
	k := sim.New(1)
	cache := NewLeaseTable[int, ServiceRecord](k, nil)

	v1 := printerSD().Freeze()
	cache.Put(7, ServiceRecord{Manager: 7, SD: v1}, 100*sim.Second)
	got1, _ := cache.Get(7)
	if got1.SD != v1 {
		t.Fatal("cache should share the stored snapshot pointer")
	}

	v2 := v1.Mutate(func(attrs map[string]string) { attrs["PaperSize"] = "Letter" })
	cache.Put(7, ServiceRecord{Manager: 7, SD: v2}, 100*sim.Second)

	if got1.SD.Version() != 1 || got1.SD.Attr("PaperSize") != "A4" {
		t.Errorf("earlier record changed under the caller: %v", got1.SD)
	}
	got2, _ := cache.Get(7)
	if got2.SD.Version() != 2 || got2.SD.Attr("PaperSize") != "Letter" {
		t.Errorf("replacement not visible: %v", got2.SD)
	}
}
