// Package experiment reproduces the paper's experimental design (§5): it
// builds the five simulated systems, injects interface failures at rates
// λ = 0.00 … 0.90, runs the 5400s scenario X times per point on a
// parallel worker pool, and aggregates the Update Metrics into the
// figures and tables of §6.
package experiment

import "fmt"

// System identifies one of the five simulated systems (§5).
type System int

const (
	// UPnP is the peer-to-peer model: 1 Manager, 5 Users.
	UPnP System = iota
	// Jini1 is Jini with a single Registry.
	Jini1
	// Jini2 is Jini with two Registries.
	Jini2
	// Frodo3P is FRODO with 3-party subscription: one 300D node as the
	// Registry, a 3D Manager and 3D Users.
	Frodo3P
	// Frodo2P is FRODO with 2-party subscription: all-300D nodes, a
	// single Registry plus a Backup.
	Frodo2P
)

// Systems lists all five in the paper's presentation order.
func Systems() []System { return []System{UPnP, Jini1, Jini2, Frodo3P, Frodo2P} }

func (s System) String() string {
	switch s {
	case UPnP:
		return "UPnP"
	case Jini1:
		return "Jini with 1 Registry"
	case Jini2:
		return "Jini with 2 Registries"
	case Frodo3P:
		return "FRODO with 3-party subscription"
	case Frodo2P:
		return "FRODO with 2-party subscription"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Short returns the compact label used in CSV headers.
func (s System) Short() string {
	switch s {
	case UPnP:
		return "upnp"
	case Jini1:
		return "jini1"
	case Jini2:
		return "jini2"
	case Frodo3P:
		return "frodo3p"
	case Frodo2P:
		return "frodo2p"
	default:
		return "unknown"
	}
}

// ParseSystem resolves a short label.
func ParseSystem(s string) (System, error) {
	for _, sys := range Systems() {
		if sys.Short() == s {
			return sys, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown system %q (want upnp|jini1|jini2|frodo3p|frodo2p)", s)
}

// PaperMPrime returns the m′ the paper reports for each system (Fig. 6
// legend); the harness also measures m′ from zero-failure runs and the
// integration tests assert both agree.
func PaperMPrime(s System) int {
	switch s {
	case UPnP:
		return 15
	case Jini1:
		return 7
	case Jini2:
		return 14
	case Frodo3P, Frodo2P:
		return 7
	default:
		return 7
	}
}
