package experiment

import (
	"fmt"

	"repro/internal/sim"
)

// Topology parameterizes the scenario shape. The zero value reproduces
// the paper's Table 4 design exactly (per-system Registry counts, one
// Manager with the printer service, Params.Users Users, 1s boot slots),
// so every existing experiment is the fixed point of this generator.
//
// Managers beyond the first host background services: the measured
// printer stays on Manager 0 and the Update Metrics are still taken
// against it, while the extra Managers load the Registries and the
// multicast medium the way a populated network would.
type Topology struct {
	// Users is N, the number of Users discovering the printer. 0 falls
	// back to Params.Users (5 in the paper).
	Users int
	// Managers is the number of Manager nodes, each hosting one service.
	// Manager 0 hosts the measured printer; 0 means 1.
	Managers int
	// Registries is the number of Registry nodes. 0 means the system
	// default: none for UPnP, 1 for Jini1, 2 for Jini2, 1 Central for
	// FRODO 3-party, Central+Backup for FRODO 2-party. UPnP has no
	// Registry role, so the value is forced to 0 there. For FRODO the
	// nodes are 300D Registry-capable devices in descending election
	// power; the strongest wins the Central election and appoints the
	// next as Backup.
	Registries int
	// Services is the number of distinct background service types spread
	// round-robin over Managers 1..Managers−1. 0 means one type per
	// background Manager; fewer types than background Managers makes the
	// surplus Managers replicas of existing types.
	Services int
	// BootSpacing separates consecutive infrastructure boots (Registries,
	// then Managers), one slot each. 0 means the paper's 1s.
	BootSpacing sim.Duration
	// UserBootSpacing separates consecutive User boots after the
	// infrastructure. 0 means 1s up to 60 Users, and 60s/Users beyond
	// that so even huge populations finish booting inside the first
	// failure-free 100s.
	UserBootSpacing sim.Duration
	// BootJitter is the uniform per-node jitter added to every boot slot.
	// 0 means the paper's 1s.
	BootJitter sim.Duration
}

// DefaultRegistries reports the Table 4 Registry count for a system.
func DefaultRegistries(sys System) int {
	switch sys {
	case UPnP:
		return 0
	case Jini1:
		return 1
	case Jini2:
		return 2
	case Frodo3P:
		return 1
	case Frodo2P:
		return 2 // Central plus Backup
	default:
		panic("experiment: unknown system")
	}
}

// Validate checks a flag-assembled Topology for the mistakes
// normalized() would otherwise silently paper over, so command-line
// tools (sdsweep, sdlived) can reject them with a friendly message
// instead of surprising the user with defaults — or panicking later,
// deep inside scenario construction. Zero means "use the default"
// throughout and is always valid; negative counts and a -services
// count exceeding the background Managers that could host them are
// errors.
func (t Topology) Validate() error {
	switch {
	case t.Users < 0:
		return fmt.Errorf("topology: -users must not be negative, got %d (0 means the default)", t.Users)
	case t.Managers < 0:
		return fmt.Errorf("topology: -managers must not be negative, got %d (0 means the default)", t.Managers)
	case t.Registries < 0:
		return fmt.Errorf("topology: -registries must not be negative, got %d (0 means the default)", t.Registries)
	case t.Services < 0:
		return fmt.Errorf("topology: -services must not be negative, got %d (0 means the default)", t.Services)
	}
	if t.Services > 0 {
		managers := t.Managers
		if managers <= 0 {
			managers = 1
		}
		if t.Services > managers-1 {
			return fmt.Errorf("topology: %d background service types need at least %d managers (Manager 0 hosts the measured printer; pass -managers ≥ %d)",
				t.Services, t.Services+1, t.Services+1)
		}
	}
	if t.BootSpacing < 0 || t.UserBootSpacing < 0 || t.BootJitter < 0 {
		return fmt.Errorf("topology: boot spacings must not be negative")
	}
	return nil
}

// normalized resolves all defaults against a system and a fallback User
// count (Params.Users).
func (t Topology) normalized(sys System, fallbackUsers int) Topology {
	if t.Users <= 0 {
		t.Users = fallbackUsers
	}
	if t.Users <= 0 {
		t.Users = 5
	}
	if t.Managers <= 0 {
		t.Managers = 1
	}
	if t.Registries <= 0 {
		t.Registries = DefaultRegistries(sys)
	}
	if sys == UPnP {
		t.Registries = 0 // UPnP is peer-to-peer; there is no Registry role.
	}
	background := t.Managers - 1
	if t.Services <= 0 || t.Services > background {
		t.Services = background
	}
	if t.BootSpacing <= 0 {
		t.BootSpacing = sim.Second
	}
	if t.UserBootSpacing <= 0 {
		if t.Users <= 60 {
			t.UserBootSpacing = sim.Second
		} else {
			t.UserBootSpacing = 60 * sim.Second / sim.Duration(t.Users)
		}
	}
	if t.BootJitter <= 0 {
		t.BootJitter = sim.Second
	}
	return t
}

// Nodes reports how many nodes the normalized topology builds at boot
// (churn arrivals come on top).
func (t Topology) Nodes() int { return t.Registries + t.Managers + t.Users }

func userName(i int) string { return fmt.Sprintf("User%d", i+1) }

func managerName(j int) string {
	if j == 0 {
		return "Manager"
	}
	return fmt.Sprintf("Manager%d", j+1)
}

func registryName(sys System, i int) string {
	if i == 0 {
		return "Registry"
	}
	if sys == Frodo2P && i == 1 {
		return "Backup"
	}
	return fmt.Sprintf("Registry%d", i+1)
}

// registryPower orders FRODO 300D Registry-capable nodes for the Central
// election: the paper's Central (100) and Backup (50), then weaker spares.
func registryPower(i int) int {
	switch {
	case i == 0:
		return 100
	case 50-10*(i-1) > 10:
		return 50 - 10*(i-1)
	default:
		return 10
	}
}
