package experiment

import (
	"sync/atomic"

	"repro/internal/obs"
)

// defaultTelemetry is the process-wide registry runs fall back to when
// their spec carries none. An atomic pointer: sweep workers read it
// concurrently while a main goroutine installs it once at startup.
var defaultTelemetry atomic.Pointer[obs.Registry]

// SetTelemetry installs (or, with nil, clears) the process-default
// telemetry registry. Every subsequent run whose RunSpec.Telemetry is
// nil feeds this registry — the one switch sdsweep and sdhunt flip to
// meter every run of a sweep or hunt without threading a registry
// through each figure helper. Telemetry draws no randomness and obeys
// the obs package's zero-allocation rules, so enabling it leaves every
// run's event timeline and results byte-identical (pinned by
// TestTelemetryParity and the sweep fingerprint golden).
func SetTelemetry(r *obs.Registry) { defaultTelemetry.Store(r) }

// Telemetry reports the process-default registry, nil if none.
func Telemetry() *obs.Registry { return defaultTelemetry.Load() }

// telemetry resolves the registry one run feeds: the spec's own, else
// the process default, else nil (no metering).
func (spec RunSpec) telemetry() *obs.Registry {
	if spec.Telemetry != nil {
		return spec.Telemetry
	}
	return defaultTelemetry.Load()
}
