package experiment

import (
	"sync"

	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Workspace is the reusable scratch of one simulation worker. A sweep
// runs thousands of independent simulations; building each one used to
// reallocate the kernel's event heap, the RNG, the network's node table
// and group membership, and the recorder maps from scratch. A Workspace
// keeps all of that capacity alive between runs on one goroutine:
// Kernel.Reset and Network.Reset recycle the structures, so consecutive
// runs settle into a steady state with almost no fixed-cost allocation.
//
// On top of the kernel/network scratch, a workspace caches the last
// built Scenario — protocol instances, lease tables, recorder state and
// all. When the next run asks for the same shape (same system, same
// normalized topology, same loss model, compatible options), the whole
// ~O(N) object graph is rearmed in place instead of rebuilt: each
// instance replays its constructor's kernel and network side effects in
// the original build order, so the run is bit-identical to a fresh
// build while allocating almost nothing.
//
// A Workspace is single-owner and not safe for concurrent use. The
// Scenario returned by a run borrows the workspace's storage — it is
// valid only until the workspace's next run.
type Workspace struct {
	k  *sim.Kernel
	nw *netsim.Network

	rec      recorder
	absent   map[netsim.NodeID]bool
	stopUser map[netsim.NodeID]func() bool
	userIDs  []netsim.NodeID
	retired  []metrics.UserOutcome

	// scen is the cached scenario; scenKey identifies the shape it was
	// built for. trustOpts widens reuse to option sets with mutator
	// hooks (see TrustOptions).
	scen      *Scenario
	scenKey   scenarioKey
	trustOpts bool
}

// scenarioKey identifies a reusable scenario shape. Options mutators are
// function values and carry no comparable identity, so their presence is
// part of the key: by default a scenario built with mutator hooks is
// never reused (two distinct closures can share a code pointer), unless
// the workspace owner vouched for option stability with TrustOptions.
type scenarioKey struct {
	sys         System
	topo        Topology
	loss        float64
	link        netsim.LinkConfig
	hasMutators bool
	harden      discovery.Hardening
}

// NewWorkspace returns an empty workspace; capacity accretes over runs.
func NewWorkspace() *Workspace { return &Workspace{} }

// TrustOptions promises that every run on this workspace uses, for any
// given system, one fixed Options value for the workspace's lifetime.
// Sweep makes that promise (its per-system options are fixed for the
// whole sweep), which lets workers rearm scenarios built with ablation
// or sensitivity mutators instead of rebuilding them every run.
func (ws *Workspace) TrustOptions() { ws.trustOpts = true }

// kernel returns the workspace kernel reset to seed.
func (ws *Workspace) kernel(seed int64) *sim.Kernel {
	if ws.k == nil {
		ws.k = sim.New(seed)
	} else {
		ws.k.Reset(seed)
	}
	return ws.k
}

// network returns the workspace network reset for kernel k. The config
// was validated at build entry (Options.netConfig), so a constructor
// error here is a programmer bug.
func (ws *Workspace) network(k *sim.Kernel, cfg netsim.Config) *netsim.Network {
	if ws.nw == nil {
		nw, err := netsim.New(k, cfg)
		if err != nil {
			panic(err)
		}
		ws.nw = nw
	} else {
		ws.nw.Reset(k, cfg)
	}
	return ws.nw
}

// scratch hands the recorder, ledgers and slices to a new scenario,
// cleared but with capacity intact.
func (ws *Workspace) scratch(topoUsers int) (rec *recorder, absent map[netsim.NodeID]bool,
	stopUser map[netsim.NodeID]func() bool, userIDs []netsim.NodeID, retired []metrics.UserOutcome) {
	if ws.absent == nil {
		ws.absent = make(map[netsim.NodeID]bool)
		ws.stopUser = make(map[netsim.NodeID]func() bool)
	} else {
		clear(ws.absent)
		clear(ws.stopUser)
	}
	if ws.rec.first == nil {
		ws.rec.first = make(map[netsim.NodeID]sim.Time, topoUsers)
	} else {
		clear(ws.rec.first)
	}
	ws.rec.target = 2
	ws.rec.manager = netsim.NoNode
	ws.rec.chain = nil
	return &ws.rec, ws.absent, ws.stopUser, ws.userIDs[:0], ws.retired[:0]
}

// reusable reports whether the cached scenario matches the requested
// shape and may be rearmed instead of rebuilt.
func (ws *Workspace) reusable(key scenarioKey) bool {
	if ws.scen == nil || ws.scenKey != key {
		return false
	}
	// Mutator-bearing options are only trusted when the owner vouched
	// for their stability across this workspace's runs.
	return !key.hasMutators || ws.trustOpts
}

// cache records the scenario built for key so the next same-shape run
// can rearm it. Callers only cache a fully built (or fully rearmed)
// scenario — never a partial one.
func (ws *Workspace) cache(sc *Scenario, key scenarioKey) {
	ws.scen = sc
	ws.scenKey = key
}

// invalidate forgets the cached scenario. Builds and rearms call it up
// front so a panic partway through can never leave a half-initialized
// graph behind a matching key (the workspace may outlive the panic via
// the deferred pool Put in Run).
func (ws *Workspace) invalidate() {
	ws.scen = nil
	ws.scenKey = scenarioKey{}
}

// adopt takes the (possibly regrown) slices back from a finished
// scenario so their capacity carries into the next run.
func (ws *Workspace) adopt(sc *Scenario) {
	ws.userIDs = sc.UserIDs[:0]
	ws.retired = sc.retired[:0]
}

// wsPool recycles workspaces across one-shot Run calls, so callers that
// loop over Run (benchmarks, tables, the guarantee checker) get the same
// steady-state reuse as a sweep worker without threading a workspace.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}
