package experiment

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Workspace is the reusable scratch of one simulation worker. A sweep
// runs thousands of independent simulations; building each one used to
// reallocate the kernel's event heap, the RNG, the network's node table
// and group membership, and the recorder maps from scratch. A Workspace
// keeps all of that capacity alive between runs on one goroutine:
// Kernel.Reset and Network.Reset recycle the structures, so consecutive
// runs settle into a steady state with almost no fixed-cost allocation.
//
// A Workspace is single-owner and not safe for concurrent use. The
// Scenario returned by a run borrows the workspace's storage — it is
// valid only until the workspace's next run.
type Workspace struct {
	k  *sim.Kernel
	nw *netsim.Network

	rec      recorder
	absent   map[netsim.NodeID]bool
	stopUser map[netsim.NodeID]func() bool
	userIDs  []netsim.NodeID
	retired  []metrics.UserOutcome
}

// NewWorkspace returns an empty workspace; capacity accretes over runs.
func NewWorkspace() *Workspace { return &Workspace{} }

// kernel returns the workspace kernel reset to seed.
func (ws *Workspace) kernel(seed int64) *sim.Kernel {
	if ws.k == nil {
		ws.k = sim.New(seed)
	} else {
		ws.k.Reset(seed)
	}
	return ws.k
}

// network returns the workspace network reset for kernel k.
func (ws *Workspace) network(k *sim.Kernel, cfg netsim.Config) *netsim.Network {
	if ws.nw == nil {
		ws.nw = netsim.New(k, cfg)
	} else {
		ws.nw.Reset(k, cfg)
	}
	return ws.nw
}

// scratch hands the recorder, ledgers and slices to a new scenario,
// cleared but with capacity intact.
func (ws *Workspace) scratch(topoUsers int) (rec *recorder, absent map[netsim.NodeID]bool,
	stopUser map[netsim.NodeID]func() bool, userIDs []netsim.NodeID, retired []metrics.UserOutcome) {
	if ws.absent == nil {
		ws.absent = make(map[netsim.NodeID]bool)
		ws.stopUser = make(map[netsim.NodeID]func() bool)
	} else {
		clear(ws.absent)
		clear(ws.stopUser)
	}
	if ws.rec.first == nil {
		ws.rec.first = make(map[netsim.NodeID]sim.Time, topoUsers)
	} else {
		clear(ws.rec.first)
	}
	ws.rec.target = 2
	ws.rec.manager = netsim.NoNode
	return &ws.rec, ws.absent, ws.stopUser, ws.userIDs[:0], ws.retired[:0]
}

// adopt takes the (possibly regrown) slices back from a finished
// scenario so their capacity carries into the next run.
func (ws *Workspace) adopt(sc *Scenario) {
	ws.userIDs = sc.UserIDs[:0]
	ws.retired = sc.retired[:0]
}

// wsPool recycles workspaces across one-shot Run calls, so callers that
// loop over Run (benchmarks, tables, the guarantee checker) get the same
// steady-state reuse as a sweep worker without threading a workspace.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}
