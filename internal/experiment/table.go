package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered result grid: one figure's data series or one of
// the paper's tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// CSV renders the table as comma-separated values (header first).
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders an aligned ASCII table with the title and notes.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func pct(lambda float64) string { return fmt.Sprintf("%.0f", lambda*100) }
