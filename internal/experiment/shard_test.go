package experiment

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// shardSpec is a compact FRODO two-party run used by the sharding
// tests: short horizon, mid-sweep failure rate, enough Users that every
// shard of a 4-way split holds several.
func shardSpec(shards int) RunSpec {
	return RunSpec{
		System: Frodo2P,
		Lambda: 0.30,
		Seed:   42,
		Shards: shards,
		Params: Params{
			Users:              40,
			RunDuration:        900 * sim.Second,
			ChangeMin:          100 * sim.Second,
			ChangeMax:          300 * sim.Second,
			FailureWindowStart: 100 * sim.Second,
			FailureWindowEnd:   900 * sim.Second,
			EffortPad:          sim.Second,
		},
	}
}

// TestShardedRunSingleShardIdentity pins the shards ∈ {0,1} contract:
// both take the classic single-fabric path, so the results are equal
// field for field. (The byte-level guarantee for that path is the
// golden sweep fingerprint in perf_regress_test.go.)
func TestShardedRunSingleShardIdentity(t *testing.T) {
	a := Run(shardSpec(0))
	b := Run(shardSpec(1))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shards=1 diverged from the unsharded run:\n  shards=0: %+v\n  shards=1: %+v", a, b)
	}
}

// TestShardedRunDeterminism runs the same (seed, S) twice for S = 2 and
// S = 4 and requires identical results — the sharded fabric's windowed
// exchange must be a deterministic function of the spec, independent of
// goroutine scheduling.
func TestShardedRunDeterminism(t *testing.T) {
	for _, shards := range []int{2, 4} {
		a := Run(shardSpec(shards))
		b := Run(shardSpec(shards))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: two runs of the same spec diverged:\n  first:  %+v\n  second: %+v", shards, a, b)
		}
		if len(a.Users) != 40 {
			t.Fatalf("shards=%d: %d user outcomes, want 40", shards, len(a.Users))
		}
		for i, u := range a.Users {
			if want := i % shards; u.User.Shard() != want {
				t.Fatalf("shards=%d: user %d reported from shard %d, want %d", shards, i, u.User.Shard(), want)
			}
		}
	}
}

// TestShardedRunPropagatesAcrossShards drops the failure rate to zero
// and requires every User — on every shard — to reach consistency: the
// service change is published on shard 0, so a remote User can only
// become consistent if update propagation genuinely crossed the
// fabric's shard boundaries.
func TestShardedRunPropagatesAcrossShards(t *testing.T) {
	spec := shardSpec(4)
	spec.Lambda = 0
	res := Run(spec)
	if res.Effort == 0 {
		t.Fatalf("sharded run recorded zero update effort")
	}
	for i, u := range res.Users {
		if !u.Reached {
			t.Fatalf("user %d (node %d, shard %d) never reached consistency in a failure-free run",
				i, u.User, u.User.Shard())
		}
	}
}
