package experiment

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// churnSpec extends the compact sharding spec with Poisson churn:
// departures with rejoin plus a stream of fresh arrivals, enough of
// both that a 900s run reshuffles the population on every shard.
func churnSpec(shards int) RunSpec {
	spec := shardSpec(shards)
	spec.Params.Churn = Churn{Departures: 1.5, MeanAbsence: 120 * sim.Second, Arrivals: 8}
	return spec
}

// TestShardedChurnDeterminism runs the same churning (seed, S) twice
// for S = 2 and S = 4: departures are drawn per shard from the owning
// shard's kernel and arrivals placed round-robin by a coordinator
// cursor, so the whole dynamic population must be a pure function of
// the spec.
func TestShardedChurnDeterminism(t *testing.T) {
	for _, shards := range []int{2, 4} {
		a := Run(churnSpec(shards))
		b := Run(churnSpec(shards))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: two churning runs of the same spec diverged:\n  first:  %+v\n  second: %+v", shards, a, b)
		}
		// Every User — initial, arrived, or retired — yields exactly one
		// outcome, so anything past the initial 40 is a churn arrival.
		if len(a.Users) <= 40 {
			t.Fatalf("shards=%d: %d user outcomes, want > 40 (initial population plus arrivals)", shards, len(a.Users))
		}
	}
}

// TestShardedChurnSingleShardIdentity pins the shards ∈ {0,1} contract
// under churn: both take the classic single-fabric path, so a churning
// run's results are equal field for field.
func TestShardedChurnSingleShardIdentity(t *testing.T) {
	a := Run(churnSpec(0))
	b := Run(churnSpec(1))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shards=1 churning run diverged from the unsharded run:\n  shards=0: %+v\n  shards=1: %+v", a, b)
	}
}

// TestShardedDynamicsDeterminism piles every dynamic dimension the
// sharded fabric supports onto one 4-shard run — churn, a flash crowd,
// a healing bisect partition and correlated rack failures — and
// requires two runs to agree exactly. This is the fault coordinator's
// contract: shard 0 resolves every global draw, and each shard arms
// only its own arena.
func TestShardedDynamicsDeterminism(t *testing.T) {
	spec := churnSpec(4)
	spec.Params.FlashCrowds = []FlashCrowd{{At: 300 * sim.Second, Users: 12, Window: 60 * sim.Second}}
	spec.Params.Partitions = []netsim.Partition{{Start: 400 * sim.Second, Duration: 200 * sim.Second, Bisect: true}}
	spec.Params.RackFailures = netsim.RackPlanConfig{
		Racks: 8, Fail: 2,
		WindowStart: 150 * sim.Second, WindowEnd: 700 * sim.Second,
		Duration: 120 * sim.Second, Spread: 5 * sim.Second,
	}
	a := Run(spec)
	b := Run(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs with churn+flash+partition+racks diverged:\n  first:  %+v\n  second: %+v", a, b)
	}
	if len(a.Users) < 52 {
		t.Fatalf("%d user outcomes, want ≥ 52 (40 initial + 12 flash arrivals)", len(a.Users))
	}
	perShard := make(map[int]int)
	for _, u := range a.Users {
		perShard[u.User.Shard()]++
	}
	for s := 0; s < 4; s++ {
		if perShard[s] == 0 {
			t.Fatalf("shard %d reported no user outcomes; distribution %v", s, perShard)
		}
	}
}

// TestRunSpecValidate pins the up-front validation that replaced the
// mid-run panics: unsupported sharded features and misplaced cross-link
// config come back as errors naming the problem, and supported shapes
// validate clean.
func TestRunSpecValidate(t *testing.T) {
	base := shardSpec(4)
	cases := []struct {
		name   string
		mutate func(*RunSpec)
		want   string // substring of the error; "" means valid
	}{
		{"sharded frodo2p ok", func(s *RunSpec) {}, ""},
		{"unsharded ok", func(s *RunSpec) { s.Shards = 0 }, ""},
		{"sharded custom cross ok", func(s *RunSpec) {
			s.Cross = netsim.CrossLink{MinDelay: sim.Second, MaxDelay: 2 * sim.Second}
		}, ""},
		{"cross on unsharded", func(s *RunSpec) {
			s.Shards = 0
			s.Cross = netsim.DefaultCrossLink()
		}, "cross-shard link configured on an unsharded run"},
		{"non-FRODO sharded", func(s *RunSpec) { s.System = Jini1 }, "FRODO systems only"},
		{"explicit failures sharded", func(s *RunSpec) {
			s.ExplicitFailures = []netsim.InterfaceFailure{}
			s.ExplicitFailures = append(s.ExplicitFailures, netsim.InterfaceFailure{})
		}, "explicit failure schedules"},
		{"attach sharded", func(s *RunSpec) { s.Attach = func(*Scenario) {} }, "do not support Attach"},
		{"zero-lookahead cross", func(s *RunSpec) {
			s.Cross = netsim.CrossLink{MinDelay: -sim.Second, MaxDelay: sim.Second}
		}, "MinDelay"},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		err := spec.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
