package experiment

import (
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Churn is the population-dynamics model layered over a scenario: Users
// leave the network mid-run and new Users arrive, both as Poisson
// processes. The zero value disables churn, reproducing the paper's
// static population.
//
// Departure takes the User's interfaces down — the device left, its
// protocol state intact but unreachable — exactly the condition the
// purge-rediscovery techniques are specified against. On rejoin the
// interfaces come back and the protocols re-discover on their own: the
// cache lease expires during a long absence (PR5), so the User returns
// to active search and rebuilds its subscription.
//
// Churn composes with the λ interface-failure model statistically, not
// per-node: a node can be hit by both schedules, in which case a failure
// recovery may reconnect a departed User early. Invariant tests
// therefore probe churn at λ=0.
type Churn struct {
	// Departures is the expected number of departures per initial User
	// over the whole run (the Poisson hazard while present).
	Departures float64
	// MeanAbsence is the mean of the exponential time a departed User
	// stays away before rejoining. 0 makes departures permanent.
	MeanAbsence sim.Duration
	// Arrivals is the expected number of fresh Users joining over the
	// whole run (a Poisson process on [0, RunDuration)). Arrivals boot
	// immediately, discover the running system, and are measured like
	// initial Users.
	Arrivals float64
}

// Enabled reports whether the model does anything.
func (c Churn) Enabled() bool { return c.Departures > 0 || c.Arrivals > 0 }

// ScheduleChurn pre-draws the whole churn schedule from the scenario's
// kernel RNG and arms the events. Call it after BuildTopology and before
// Kernel.Run; all randomness is consumed up front so runs stay
// deterministic and independent of worker parallelism.
func (s *Scenario) ScheduleChurn(c Churn, runDuration sim.Duration) {
	if !c.Enabled() || runDuration <= 0 {
		return
	}
	horizon := sim.Time(runDuration)

	if c.Departures > 0 {
		meanUp := sim.Duration(float64(runDuration) / c.Departures)
		for _, uid := range s.UserIDs {
			s.scheduleUserChurn(uid, meanUp, c.MeanAbsence, horizon)
		}
	}

	if c.Arrivals > 0 {
		meanGap := float64(runDuration) / c.Arrivals
		next := len(s.UserIDs)
		for t := s.expAfter(0, meanGap); t < horizon; t = s.expAfter(t, meanGap) {
			name := userName(next)
			next++
			s.K.At(t, func() {
				id := s.makeUser(name)
				s.UserIDs = append(s.UserIDs, id)
			})
		}
	}
}

// scheduleUserChurn draws one User's alternating present/absent renewal
// process up to the horizon and arms the transitions. A permanent
// departure (no rejoin) retires the node so its slot can be recycled.
func (s *Scenario) scheduleUserChurn(uid netsim.NodeID, meanUp, meanAbsence sim.Duration, horizon sim.Time) {
	t := sim.Time(0)
	for {
		t = s.expAfter(t, float64(meanUp))
		if t >= horizon {
			return
		}
		if meanAbsence <= 0 {
			s.K.At(t, func() { s.departForever(uid) })
			return
		}
		s.K.At(t, func() { s.setPresent(uid, false) })
		t = s.expAfter(t, float64(meanAbsence))
		if t >= horizon {
			return
		}
		s.K.At(t, func() { s.setPresent(uid, true) })
	}
}

// departForever handles a departure with no scheduled rejoin: the device
// left for good. When the protocol instance can be quiesced, the User's
// outcome is frozen (nothing can change once its interfaces are pinned
// down), its ledgers are released and the node slot is retired so a later
// Poisson arrival reuses it — keeping the node table bounded by the peak
// population instead of growing for the whole run. A node that cannot be
// quiesced (a FRODO 300D User serving as Central or Backup) just goes
// dark like before, keeping its slot.
func (s *Scenario) departForever(uid netsim.NodeID) {
	s.setPresent(uid, false)
	stop := s.stopUser[uid]
	if stop == nil || !stop() {
		return
	}
	at, reached := s.rec.first[uid]
	s.retired = append(s.retired, metrics.UserOutcome{User: uid, Reached: reached, At: at, Excluded: !reached})
	delete(s.rec.first, uid)
	delete(s.absent, uid)
	delete(s.stopUser, uid)
	for i, id := range s.UserIDs {
		if id == uid {
			s.UserIDs = append(s.UserIDs[:i], s.UserIDs[i+1:]...)
			break
		}
	}
	s.Net.Retire(uid)
}

// expAfter draws the next event of an exponential inter-arrival process.
func (s *Scenario) expAfter(t sim.Time, mean float64) sim.Time {
	return t + sim.Time(s.K.Rand().ExpFloat64()*mean)
}

// setPresent applies a churn transition: both interfaces follow the
// User's presence, and the absence ledger feeds the metric exclusion.
func (s *Scenario) setPresent(uid netsim.NodeID, present bool) {
	n := s.Net.Node(uid)
	n.SetTx(present)
	n.SetRx(present)
	s.absent[uid] = !present
}

// AbsentAtEnd reports whether the User was churned out when the run
// ended. Such Users are excluded from the U(i,j) samples unless they
// reached consistency before leaving.
func (s *Scenario) AbsentAtEnd(uid netsim.NodeID) bool { return s.absent[uid] }
