package experiment

import (
	"fmt"

	"repro/internal/sim"
)

// FlashCrowd is one scheduled arrival spike: Users fresh Users join the
// network over [At, At+Window), evenly spaced — the flash-crowd regime
// (a conference room fills, a device fleet reboots) whose discovery
// burst the smooth Poisson arrival model never produces. Flash-crowd
// Users boot immediately on arrival, discover the running system and are
// measured like initial Users. Scheduling draws no randomness, so runs
// without flash crowds replay unchanged.
type FlashCrowd struct {
	// At is when the spike starts.
	At sim.Time
	// Users is the number of arrivals in the spike.
	Users int
	// Window is the interval the arrivals spread over; 0 means all Users
	// arrive at the same instant.
	Window sim.Duration
}

// ScheduleFlashCrowds arms the arrival events of every spike. Call it
// after BuildTopology (the arrival hook must exist) and after
// ScheduleChurn, whose Poisson arrivals share the User namespace; flash
// arrivals get their own names so the two never collide.
func (s *Scenario) ScheduleFlashCrowds(crowds []FlashCrowd) {
	for ci, fc := range crowds {
		if fc.Users <= 0 {
			continue
		}
		for i := 0; i < fc.Users; i++ {
			at := fc.At
			if fc.Window > 0 {
				at += sim.Time(int64(fc.Window) * int64(i) / int64(fc.Users))
			}
			name := flashUserName(ci, i)
			s.K.At(at, func() {
				id := s.makeUser(name)
				s.UserIDs = append(s.UserIDs, id)
			})
		}
	}
}

func flashUserName(crowd, i int) string {
	return fmt.Sprintf("Flash%d-%d", crowd+1, i+1)
}
