package experiment

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/discovery"
	"repro/internal/frodo"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// The sharded fabric: one run's topology partitioned across S
// kernel/network pairs, each advancing on its own goroutine, coupled
// only through cross-shard frames exchanged at window barriers
// (conservative parallel discrete-event simulation — see
// netsim/shard.go for the transport half).
//
// Placement: shard 0 holds all infrastructure (Registries, Managers)
// plus every Sth User; shards 1..S-1 hold Users round-robin. A User's
// global boot index is preserved, so the population boots on the same
// schedule shape as the single-fabric run. Each shard draws from its
// own seeded RNG, so an S-shard run is deterministic in (seed, S) —
// but a different timeline from the 1-shard run of the same seed
// (shards=1 never goes through this path at all, which is how the
// single-fabric byte-identity is kept).
//
// The window protocol: all shards sit at a common clock T. The
// coordinator bounds the next window at W = min(M + L, target), where
// M is the earliest thing that can happen anywhere — the minimum of
// every shard's next local event and of every buffered cross frame's
// earliest possible arrival — and L is the cross-shard lookahead
// (minimum inter-shard delay). Each shard first ingests all frames
// buffered for it, then drains to W. Any frame sent during the window
// was sent at ≥ M, so it arrives at ≥ M + L ≥ W — never behind the
// clock of the shard that will ingest it at the next barrier. L > 0
// means W > T: every window makes progress.

// shardCmd is one window order from the coordinator: ingest these
// frames, then advance to until.
type shardCmd struct {
	frames []netsim.CrossFrame
	until  sim.Time
}

// shardRep is the shard's barrier reply: its next pending event.
type shardRep struct {
	next sim.Time
	ok   bool
}

// shardState is one shard of the fabric. Shards 1..S-1 own a worker
// goroutine; shard 0 runs inline on the coordinator's goroutine, so
// every protocol callback of the infrastructure shard — taps, gateway
// spawns, service changes — happens on the caller's goroutine, exactly
// as in an unsharded run.
type shardState struct {
	k      *sim.Kernel
	nw     *netsim.Network
	sc     *Scenario
	router *netsim.ShardRouter
	cmds   chan shardCmd
	reps   chan shardRep
	// m, when set (SetMetrics, before the first window — the command
	// exchange publishes the write to the worker), receives this shard's
	// barrier accounting: wall time running windows vs parked waiting for
	// the next command, cross-frame volume, kernel depth.
	m *obs.ShardMetrics
}

func (st *shardState) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	var parkedAt time.Time
	for cmd := range st.cmds {
		if st.m != nil {
			start := time.Now()
			if !parkedAt.IsZero() {
				st.m.Stall.Add(uint64(start.Sub(parkedAt)))
			}
			st.m.CrossIn.Add(uint64(len(cmd.frames)))
			st.nw.IngestCross(cmd.frames)
			next, ok := st.k.RunWindow(cmd.until)
			st.m.Busy.Add(uint64(time.Since(start)))
			st.m.Events.Set(int64(st.k.Fired()))
			st.m.Pending.Set(int64(st.k.Pending()))
			st.reps <- shardRep{next: next, ok: ok}
			parkedAt = time.Now()
			continue
		}
		st.nw.IngestCross(cmd.frames)
		next, ok := st.k.RunWindow(cmd.until)
		st.reps <- shardRep{next: next, ok: ok}
	}
}

// ShardSet is a sharded fabric mid-flight. Its advancing API mirrors
// the kernel's (RunUntil is resumable with non-decreasing targets), so
// the live Driver can chase the wall clock across it the way it chases
// a single kernel. Not safe for concurrent use: one coordinator
// goroutine owns it, and between RunUntil calls every worker is parked
// at its barrier.
type ShardSet struct {
	shards    []*shardState
	pending   [][]netsim.CrossFrame // inbound frames per shard, staged at barriers
	next      []sim.Time            // each shard's next event, as of the last barrier
	nextOK    []bool
	lookahead sim.Time
	clock     sim.Time // the common time every shard has reached
	userOrder []netsim.NodeID
	// nextArrival is the global index of the next mid-run User arrival
	// (Poisson churn or flash crowd); arrival placement continues the
	// boot round-robin, shard = index mod S.
	nextArrival int
	wg          sync.WaitGroup
	closed      bool
	// fm, when set, receives the fabric's window accounting (window
	// count and virtual widths) plus shard 0's busy/stall split; per-
	// shard entries are distributed to the workers by SetMetrics.
	fm *obs.FabricMetrics
}

// BuildSharded partitions a topology across S ≥ 2 shards and starts the
// worker goroutines. Only the FRODO systems are supported: their wire
// protocol is pure UDP unicast/multicast, which the cross-shard frame
// exchange carries faithfully, while the Jini/UPnP two-phase TCP
// abstraction binds connection state to a single network. The zero
// CrossLink means netsim.DefaultCrossLink. Callers must Close the set.
func BuildSharded(sys System, topo Topology, opts Options, seed int64, shards int, cross netsim.CrossLink) (*ShardSet, error) {
	if shards < 2 {
		return nil, fmt.Errorf("experiment: BuildSharded needs ≥ 2 shards, got %d (use Run for a single fabric)", shards)
	}
	if sys != Frodo3P && sys != Frodo2P {
		return nil, fmt.Errorf("experiment: sharded fabric supports the FRODO systems only (%v uses TCP connections, which cannot span shards)", sys)
	}
	if cross == (netsim.CrossLink{}) {
		cross = netsim.DefaultCrossLink()
	}
	if err := cross.Validate(); err != nil {
		return nil, err
	}
	netCfg, err := opts.netConfig()
	if err != nil {
		return nil, err
	}
	topo = topo.normalized(sys, 0)

	ss := &ShardSet{
		shards:    make([]*shardState, shards),
		pending:   make([][]netsim.CrossFrame, shards),
		next:      make([]sim.Time, shards),
		nextOK:    make([]bool, shards),
		lookahead: sim.Time(cross.MinDelay),
	}
	for s := 0; s < shards; s++ {
		sd := seed
		if s > 0 {
			sd = seed + int64(s)*1_000_000_007
		}
		k := sim.New(sd)
		nw, err := netsim.New(k, netCfg)
		if err != nil {
			return nil, err
		}
		router := netsim.NewShardRouter(shards, cross)
		nw.SetShard(s, router)
		st := &shardState{k: k, nw: nw, router: router,
			cmds: make(chan shardCmd), reps: make(chan shardRep)}
		st.sc = buildFrodoShard(sys, k, nw, topo, opts, s, shards)
		ss.shards[s] = st
	}
	// Every shard's recorder (and scenario) points at the one measured
	// Manager, which lives on shard 0 — remote Users' cache writes carry
	// its global NodeID across the fabric.
	mgr := ss.shards[0].sc.ManagerID
	for _, st := range ss.shards {
		st.sc.ManagerID = mgr
		st.sc.rec.manager = mgr
	}
	// The global User order: User i lives on shard i%S at local rank i/S.
	ss.userOrder = make([]netsim.NodeID, topo.Users)
	for i := range ss.userOrder {
		ss.userOrder[i] = ss.shards[i%shards].sc.UserIDs[i/shards]
	}
	ss.nextArrival = topo.Users
	// Seed the barrier state with each kernel's boot events, or the
	// first window would see an empty fabric and jump straight to its
	// target.
	for s, st := range ss.shards {
		ss.next[s], ss.nextOK[s] = st.k.NextEventTime()
	}
	for _, st := range ss.shards[1:] {
		ss.wg.Add(1)
		go st.loop(&ss.wg)
	}
	return ss, nil
}

// buildFrodoShard constructs one shard's slice of the population:
// shard 0 gets the full infrastructure (and the spawn hooks the live
// gateway uses) plus its User subset; other shards get Users only. It
// parallels buildTopology's FRODO arm — same constructors, same boot
// schedule shape — with global User boot indices, so the population
// boots as one staggered wave regardless of S.
func buildFrodoShard(sys System, k *sim.Kernel, nw *netsim.Network, topo Topology, opts Options, shard, shards int) *Scenario {
	sc := &Scenario{System: sys, Topo: topo, K: k, Net: nw, TargetVersion: 2}
	sc.rec = &recorder{target: 2, manager: netsim.NoNode,
		first: make(map[netsim.NodeID]sim.Time, (topo.Users+shards-1)/shards)}
	sc.absent = map[netsim.NodeID]bool{}
	sc.stopUser = map[netsim.NodeID]func() bool{}

	cfg := frodo.DefaultConfig()
	mgrClass, mgrPower := frodo.Class3D, 5
	userClass := frodo.Class3D
	if sys == Frodo2P {
		cfg = frodo.TwoPartyConfig()
		mgrClass, mgrPower = frodo.Class300D, 5
		userClass = frodo.Class300D
	}
	if opts.Frodo != nil {
		// Runs once per shard on identical defaults; mutators must be
		// deterministic (the same contract workspace reuse already sets).
		opts.Frodo(&cfg)
	}

	infraBoot := func(slot int) sim.Duration {
		return sim.Duration(slot)*topo.BootSpacing + k.UniformDuration(0, topo.BootJitter)
	}
	userBase := sim.Duration(topo.Registries+topo.Managers) * topo.BootSpacing
	userBoot := func(i int) sim.Duration {
		return userBase + sim.Duration(i)*topo.UserBootSpacing + k.UniformDuration(0, topo.BootJitter)
	}

	if shard == 0 {
		for i := 0; i < topo.Registries; i++ {
			reg := frodo.NewNode(nw.AddNode(registryName(sys, i)), cfg, frodo.Class300D, registryPower(i))
			reg.Start(infraBoot(i))
		}
		for j := 0; j < topo.Managers; j++ {
			sd := printerSD()
			if j > 0 {
				sd = auxSD(topo, j)
			}
			mn := frodo.NewNode(nw.AddNode(managerName(j)), cfg, mgrClass, mgrPower)
			m := mn.AttachManager(sd)
			mn.Start(infraBoot(topo.Registries + j))
			if j == 0 {
				sc.ManagerID = m.ID()
				sc.Change = func() { m.ChangeService(changePrinter) }
			}
		}
	}

	newUser := func(name string, q discovery.Query, l discovery.ConsistencyListener) *frodo.Node {
		un := frodo.NewNode(nw.AddNode(name), cfg, userClass, 1)
		un.AttachUser(q, l)
		sc.stopUser[un.ID()] = un.Detach
		return un
	}
	for i := shard; i < topo.Users; i += shards {
		un := newUser(userName(i), printerQuery, sc.rec)
		un.Start(userBoot(i))
		sc.UserIDs = append(sc.UserIDs, un.ID())
	}

	// The spawn hooks exist on every shard, not just shard 0: mid-run
	// churn and flash-crowd arrivals land round-robin across the fabric,
	// each booting on its owning shard's kernel. (The live gateway still
	// only spawns through shard 0's scenario.)
	sc.makeClient = func(name string, q discovery.Query, l discovery.ConsistencyListener) (netsim.NodeID, func(func(discovery.ServiceRecord))) {
		un := newUser(name, q, l)
		un.Start(0)
		return un.ID(), un.User().EachCached
	}
	sc.makeUser = func(name string) netsim.NodeID {
		id, _ := sc.makeClient(name, printerQuery, sc.rec)
		return id
	}
	if shard == 0 {
		sc.makeManager = func(name string, sd discovery.ServiceDescription) (netsim.NodeID, func(func(map[string]string))) {
			mn := frodo.NewNode(nw.AddNode(name), cfg, mgrClass, mgrPower)
			m := mn.AttachManager(sd)
			mn.Start(0)
			return m.ID(), m.ChangeService
		}
	}
	sc.bootNodes = nw.Nodes()
	return sc
}

// Scenario returns shard 0's scenario: the infrastructure shard, whose
// Change, spawn hooks and taps run on the coordinator goroutine.
func (ss *ShardSet) Scenario() *Scenario { return ss.shards[0].sc }

// ShardScenario returns shard s's scenario. Remote shards' scenarios
// carry only their User subset and recorder — their callbacks fire on
// the shard's worker goroutine, so anything attached to them (the
// per-shard oracles) must not share unsynchronized state across shards.
func (ss *ShardSet) ShardScenario(s int) *Scenario { return ss.shards[s].sc }

// Shards reports the shard count.
func (ss *ShardSet) Shards() int { return len(ss.shards) }

// Users reports every measured User in global boot order (User i lives
// on shard i mod S).
func (ss *ShardSet) Users() []netsim.NodeID { return ss.userOrder }

// SetTargetVersion sets the consistency target on every shard's
// recorder. Coordinator goroutine, between windows only.
func (ss *ShardSet) SetTargetVersion(v uint64) {
	for _, st := range ss.shards {
		st.sc.SetTargetVersion(v)
	}
}

// ReachedAt reports when a User first held the target version, from
// whichever shard owns it.
func (ss *ShardSet) ReachedAt(user netsim.NodeID) (sim.Time, bool) {
	return ss.shards[user.Shard()].sc.ReachedAt(user)
}

// SetMetrics attaches fabric telemetry: fm must carry one ShardMetrics
// per shard (obs.NewFabricMetrics(reg, ss.Shards())). Coordinator
// goroutine, before the first RunUntil — the workers are parked at
// their barriers and the first window's command exchange publishes the
// per-shard fields to them.
func (ss *ShardSet) SetMetrics(fm *obs.FabricMetrics) {
	if len(fm.Shards) < len(ss.shards) {
		panic(fmt.Sprintf("experiment: SetMetrics got %d shard slots for %d shards", len(fm.Shards), len(ss.shards)))
	}
	ss.fm = fm
	for s, st := range ss.shards {
		st.m = fm.Shards[s]
	}
}

// Now reports the common time every shard has reached.
func (ss *ShardSet) Now() sim.Time { return ss.clock }

// Fired sums the fired-event counts of all shard kernels.
func (ss *ShardSet) Fired() uint64 {
	var total uint64
	for _, st := range ss.shards {
		total += st.k.Fired()
	}
	return total
}

// NextEventTime reports the earliest pending event anywhere in the
// fabric: local kernel events and the earliest possible arrival of
// still-buffered cross frames.
func (ss *ShardSet) NextEventTime() (sim.Time, bool) {
	var m sim.Time
	ok := false
	take := func(t sim.Time) {
		if !ok || t < m {
			m, ok = t, true
		}
	}
	for s := range ss.shards {
		if ss.nextOK[s] {
			take(ss.next[s])
		}
	}
	for _, pend := range ss.pending {
		for i := range pend {
			at := pend[i].SentAt + ss.lookahead
			if at < ss.clock {
				at = ss.clock
			}
			take(at)
		}
	}
	return m, ok
}

// RunUntil advances every shard to target through conservative
// lookahead windows. Resumable: consecutive calls with non-decreasing
// targets continue the same run, matching Kernel.RunUntil's contract.
func (ss *ShardSet) RunUntil(target sim.Time) {
	if ss.closed {
		panic("experiment: RunUntil on a closed ShardSet")
	}
	for ss.clock < target {
		// The window bound: nothing anywhere can happen before m.
		m := target
		if at, ok := ss.NextEventTime(); ok && at < m {
			m = at
		}
		w := m + ss.lookahead
		if w > target {
			w = target
		}
		var t0 time.Time
		if ss.fm != nil {
			ss.fm.Windows.Inc()
			// Window width is virtual time; sim durations and wall
			// durations share int64-nanosecond units.
			ss.fm.WindowWidth.Observe(time.Duration(w - ss.clock))
			ss.fm.Shards[0].CrossIn.Add(uint64(len(ss.pending[0])))
			t0 = time.Now()
		}
		// Workers: ingest, drain, reply. The coordinator keeps ownership
		// of pending[s] storage but must not touch it until s replies.
		for s := 1; s < len(ss.shards); s++ {
			ss.shards[s].cmds <- shardCmd{frames: ss.pending[s], until: w}
		}
		// Shard 0 runs inline, so its protocol callbacks stay on this
		// goroutine.
		st0 := ss.shards[0]
		st0.nw.IngestCross(ss.pending[0])
		ss.pending[0] = ss.pending[0][:0]
		ss.next[0], ss.nextOK[0] = st0.k.RunWindow(w)
		if ss.fm != nil {
			// Shard 0's stall is the wait for the slowest worker below —
			// everything up to here was its own window work.
			sm0 := ss.fm.Shards[0]
			sm0.Busy.Add(uint64(time.Since(t0)))
			sm0.Events.Set(int64(st0.k.Fired()))
			sm0.Pending.Set(int64(st0.k.Pending()))
			t0 = time.Now()
		}
		for s := 1; s < len(ss.shards); s++ {
			rep := <-ss.shards[s].reps
			ss.next[s], ss.nextOK[s] = rep.next, rep.ok
			ss.pending[s] = ss.pending[s][:0]
		}
		if ss.fm != nil {
			ss.fm.Shards[0].Stall.Add(uint64(time.Since(t0)))
		}
		// All shards are parked at w: collect this window's cross-shard
		// sends in deterministic order — by source shard, and within a
		// source in send order.
		for s := range ss.shards {
			for dest := range ss.shards {
				if dest == s {
					continue
				}
				before := len(ss.pending[dest])
				ss.pending[dest] = ss.shards[s].router.Drain(dest, ss.pending[dest])
				if ss.fm != nil {
					ss.fm.Shards[s].CrossOut.Add(uint64(len(ss.pending[dest]) - before))
				}
			}
		}
		ss.clock = w
	}
}

// arrivalScenario returns the scenario hosting the next mid-run User
// arrival: placement continues the boot round-robin (global arrival
// index mod S), so where a given arrival lands is a pure function of
// its position in the arrival order, independent of timing.
func (ss *ShardSet) arrivalScenario() *Scenario {
	sc := ss.shards[ss.nextArrival%len(ss.shards)].sc
	ss.nextArrival++
	return sc
}

// scheduleChurn is Scenario.ScheduleChurn's sharded counterpart.
// Departures are drawn per shard from the owning shard's kernel over
// its own User subset — shard-local randomness, and the departure
// events mutate only the owning shard's node table (quiesce, freeze the
// outcome, retire the slot; rejoins re-draw discovery there too). The
// arrival stream is drawn once, from shard 0's kernel, so the global
// arrival order and naming are fixed by (seed, S) alone; each arrival
// boots through the owning shard's spawn hook on that shard's kernel.
//
// Coordinator goroutine, before the first window: every worker is
// parked at its barrier, and the first command exchange publishes the
// scheduled events.
func (ss *ShardSet) scheduleChurn(c Churn, runDuration sim.Duration) {
	if !c.Enabled() || runDuration <= 0 {
		return
	}
	horizon := sim.Time(runDuration)
	if c.Departures > 0 {
		meanUp := sim.Duration(float64(runDuration) / c.Departures)
		for _, st := range ss.shards {
			for _, uid := range st.sc.UserIDs {
				st.sc.scheduleUserChurn(uid, meanUp, c.MeanAbsence, horizon)
			}
		}
	}
	if c.Arrivals > 0 {
		meanGap := float64(runDuration) / c.Arrivals
		k0 := ss.shards[0].k
		next := len(ss.userOrder)
		for t := sim.Time(k0.Rand().ExpFloat64() * meanGap); t < horizon; t += sim.Time(k0.Rand().ExpFloat64() * meanGap) {
			name := userName(next)
			next++
			sc := ss.arrivalScenario()
			sc.K.At(t, func() {
				id := sc.makeUser(name)
				sc.UserIDs = append(sc.UserIDs, id)
			})
		}
	}
}

// scheduleFlashCrowds arms arrival spikes across the fabric: same
// timing as the unsharded path (no randomness), placement through the
// shared round-robin arrival cursor.
func (ss *ShardSet) scheduleFlashCrowds(crowds []FlashCrowd) {
	for ci, fc := range crowds {
		if fc.Users <= 0 {
			continue
		}
		for i := 0; i < fc.Users; i++ {
			at := fc.At
			if fc.Window > 0 {
				at += sim.Time(int64(fc.Window) * int64(i) / int64(fc.Users))
			}
			name := flashUserName(ci, i)
			sc := ss.arrivalScenario()
			sc.K.At(at, func() {
				id := sc.makeUser(name)
				sc.UserIDs = append(sc.UserIDs, id)
			})
		}
	}
}

// schedulePartitions is the shard-0 fault coordinator's split plan: a
// Bisect is resolved here, at schedule time, into an explicit global
// SideB — the upper half of the boot population concatenated in shard
// order — and the identical resolved partition is armed on every
// shard's kernel, so split and heal land at the same virtual instant
// fabric-wide. (The unsharded path resolves a Bisect at activation
// over the then-current table; the sharded resolution is pinned to the
// boot population instead, and churn arrivals land on side A, like any
// post-activation attach.) Out-of-shard SideB members go to each
// network's remote-side ledger, so cross-shard sends drop
// split-crossing frames at the sender.
func (ss *ShardSet) schedulePartitions(ps []netsim.Partition) {
	for _, p := range ps {
		if len(p.SideB) == 0 && p.Bisect {
			var all []netsim.NodeID
			for _, st := range ss.shards {
				all = append(all, st.sc.AllNodeIDs()...)
			}
			p.SideB = all[len(all)/2:]
			p.Bisect = false
		}
		for _, st := range ss.shards {
			st.nw.SchedulePartition(p)
		}
	}
}

// scheduleRackFailures draws one rack plan from shard 0's kernel over
// the fabric's whole boot population — racks are physical, so the
// contiguous blocks of the concatenated table may straddle shards —
// and hands each outage to the network owning its node.
func (ss *ShardSet) scheduleRackFailures(cfg netsim.RackPlanConfig) {
	var all []netsim.NodeID
	for _, st := range ss.shards {
		all = append(all, st.sc.AllNodeIDs()...)
	}
	for _, f := range netsim.PlanRackFailures(ss.shards[0].k, all, cfg) {
		ss.shards[f.Node.Shard()].nw.ScheduleFailure(f)
	}
}

// Close stops the worker goroutines. Idempotent; the ShardSet is dead
// afterwards (read-only accessors keep working).
func (ss *ShardSet) Close() {
	if ss.closed {
		return
	}
	ss.closed = true
	for _, st := range ss.shards[1:] {
		close(st.cmds)
	}
	ss.wg.Wait()
}

// runSharded is Run's S ≥ 2 path: one experiment run on a sharded
// fabric. It mirrors runInWorkspace — tracers and observers first, then
// churn, flash crowds, the per-shard λ plans (each drawn from its own
// shard's kernel), rack failures, partitions, change times from shard
// 0's kernel — and assembles one RunResult with effort summed across
// all shards' counters.
func runSharded(spec RunSpec) metrics.RunResult {
	if err := spec.Validate(); err != nil {
		// Sweep-facing callers (sdsweep) validate before any run starts
		// and print the error; reaching this unvalidated is a caller bug.
		panic(err)
	}
	topo := spec.Params.Topology
	if topo.Users <= 0 {
		topo.Users = spec.Params.Users
	}
	opts := spec.Opts
	if !opts.Harden.Enabled() {
		opts.Harden = spec.Params.Hardening
	}
	ss, err := BuildSharded(spec.System, topo, opts, spec.Seed, spec.Shards, spec.Cross)
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	defer ss.Close()
	if spec.MakeTracer != nil {
		// One tracer per shard; each fires on its shard's goroutine, so a
		// tracer must not share unsynchronized state across the builds.
		for _, st := range ss.shards {
			st.nw.SetTracer(spec.MakeTracer(st.nw))
		}
	}
	if reg := spec.telemetry(); reg != nil {
		// Per-shard frame metering (counters are atomics, safe to share a
		// registry across the worker goroutines) plus barrier accounting.
		for s, st := range ss.shards {
			st.nw.SetTracer(netsim.TeeTracer(st.nw.Tracer(), reg.NetTracer(s)))
		}
		ss.SetMetrics(obs.NewFabricMetrics(reg, len(ss.shards)))
	}
	if spec.AttachSharded != nil {
		// Same contract as Attach: observe before any schedule is drawn,
		// consuming no kernel's random stream. Workers are parked at their
		// barriers, so remote scenarios are safe to hook here; the first
		// window's channel exchange publishes the writes.
		spec.AttachSharded(ss)
	}
	// Schedule order mirrors runInWorkspace: churn first (its whole
	// schedule is pre-drawn, fixing the event timeline per seed), then
	// flash crowds (no randomness), the λ plans, racks, partitions. A
	// spec without dynamics draws exactly what it drew before, keeping
	// pre-existing sharded runs bit-identical.
	ss.scheduleChurn(spec.Params.Churn, spec.Params.RunDuration)
	ss.scheduleFlashCrowds(spec.Params.FlashCrowds)

	for _, st := range ss.shards {
		plan := netsim.PlanInterfaceFailures(st.k, st.sc.AllNodeIDs(), netsim.FailurePlanConfig{
			Lambda:      spec.Lambda,
			WindowStart: spec.Params.FailureWindowStart,
			WindowEnd:   spec.Params.FailureWindowEnd,
			RunDuration: spec.Params.RunDuration,
		})
		st.nw.ScheduleFailures(plan)
	}
	if spec.Params.RackFailures.Enabled() {
		ss.scheduleRackFailures(spec.Params.RackFailures)
	}
	ss.schedulePartitions(spec.Params.Partitions)

	k0 := ss.shards[0].k
	nChanges := spec.Params.Changes
	if nChanges < 1 {
		nChanges = 1
	}
	changeTimes := make([]sim.Time, nChanges)
	for i := range changeTimes {
		changeTimes[i] = k0.UniformTime(spec.Params.ChangeMin, spec.Params.ChangeMax)
	}
	sort.Slice(changeTimes, func(i, j int) bool { return changeTimes[i] < changeTimes[j] })
	ss.SetTargetVersion(uint64(1 + nChanges))
	sc0 := ss.Scenario()
	for _, at := range changeTimes {
		k0.At(at, sc0.fireChange)
	}
	changeAt := changeTimes[len(changeTimes)-1]

	deadline := sim.Time(spec.Params.RunDuration)
	ss.RunUntil(deadline)

	res := metrics.RunResult{
		Lambda:   spec.Lambda,
		Seed:     spec.Seed,
		ChangeAt: changeAt,
		Deadline: deadline,
	}
	allDone := changeAt
	allReached := true
	if !spec.Params.Churn.Enabled() && len(spec.Params.FlashCrowds) == 0 {
		// Static population: Users in global boot order, as before.
		for _, uid := range ss.userOrder {
			at, ok := ss.ReachedAt(uid)
			res.Users = append(res.Users, metrics.UserOutcome{User: uid, Reached: ok, At: at})
			if !ok {
				allReached = false
			} else if at > allDone {
				allDone = at
			}
		}
	} else {
		// Dynamic population: the boot order is gone (departures compact
		// each shard's UserIDs, arrivals append), so walk shards in order
		// with runInWorkspace's exclusion rules — a User absent at the end
		// that never reached the target contributes no U(i,j) sample, and
		// permanently departed Users report their frozen outcomes.
		for _, st := range ss.shards {
			sc := st.sc
			for _, uid := range sc.UserIDs {
				at, ok := sc.ReachedAt(uid)
				excluded := !ok && sc.AbsentAtEnd(uid)
				res.Users = append(res.Users, metrics.UserOutcome{User: uid, Reached: ok, At: at, Excluded: excluded})
				if excluded {
					continue
				}
				if !ok {
					allReached = false
				} else if at > allDone {
					allDone = at
				}
			}
			for _, o := range sc.RetiredOutcomes() {
				res.Users = append(res.Users, o)
				if o.Excluded {
					continue
				}
				if o.At > allDone {
					allDone = o.At
				}
			}
		}
	}
	winEnd := deadline
	if allReached {
		winEnd = allDone + spec.Params.EffortPad
		if winEnd > deadline {
			winEnd = deadline
		}
	}
	for _, st := range ss.shards {
		c := st.nw.Counters()
		res.Effort += c.CountedInWindow(changeAt, winEnd)
		res.TotalDiscoverySends += c.DiscoverySends
		res.TotalTransport += c.TransportFrames
	}
	return res
}
