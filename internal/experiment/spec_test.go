package experiment

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSpecParseStrict(t *testing.T) {
	good := `{
		"seed": 7, "lambda": 0.3, "duration_sec": 9000,
		"failure_window": {"start_sec": 0, "end_sec": 4000},
		"topology": {"users": 20, "managers": 2},
		"churn": {"departures": 1.5, "mean_absence_sec": 300},
		"partitions": [{"start_sec": 1000, "duration_sec": 400}],
		"link": {"burst_avg": 0.2, "burst_len": 8, "delay_dist": "pareto"},
		"flash_crowds": [{"at_sec": 2000, "users": 30, "window_sec": 10}],
		"rack_failures": {"racks": 4, "fail": 1, "window_start_sec": 500,
		                  "window_end_sec": 3000, "duration_sec": 600, "spread_sec": 5}
	}`
	s, err := ParseSpec(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	p := s.RunSpec(Frodo2P).Params.withDefaults()
	if p.FailureWindowStart != 0 || !p.FailureWindowSet {
		t.Errorf("explicit zero failure-window start lost: %+v", p)
	}
	if p.RunDuration != 9000*sim.Second || p.Topology.Users != 20 {
		t.Errorf("spec params mismatch: %+v", p)
	}
	if len(p.Partitions) != 1 || !p.Partitions[0].Bisect {
		t.Errorf("partition plan mismatch: %+v", p.Partitions)
	}
	if len(p.FlashCrowds) != 1 || p.FlashCrowds[0].Users != 30 {
		t.Errorf("flash crowd mismatch: %+v", p.FlashCrowds)
	}
	if !p.RackFailures.Enabled() {
		t.Error("rack failures not enabled")
	}
	if o := s.Options(); !o.Link.Burst.Enabled() {
		t.Error("burst loss not enabled from spec")
	}

	// Unknown fields must fail up front with the field name in the error.
	if _, err := ParseSpec(strings.NewReader(`{"seed": 1, "lamda": 0.3}`)); err == nil ||
		!strings.Contains(err.Error(), "lamda") {
		t.Errorf("unknown field not rejected by name: %v", err)
	}
}

func TestSpecValidateFieldPaths(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"lambda", `{"lambda": 1.5}`, "lambda"},
		{"topology", `{"topology": {"users": -3}}`, "users"},
		{"services", `{"topology": {"services": 4}}`, "managers"},
		{"partition duration", `{"partitions": [{"start_sec": 10, "duration_sec": 0}]}`, "partitions[0]"},
		{"partition overlap", `{"partitions": [{"start_sec": 0, "duration_sec": 100},
			{"start_sec": 50, "duration_sec": 100}]}`, "overlaps"},
		{"burst infeasible", `{"link": {"burst_avg": 0.9, "burst_len": 2}}`, "burst_avg"},
		{"burst and loss", `{"link": {"burst_avg": 0.2, "burst_len": 8, "loss": 0.1}}`, "alternatives"},
		{"delay dist", `{"link": {"delay_dist": "zipf"}}`, "delay_dist"},
		{"reorder", `{"link": {"reorder_prob": 2}}`, "reorder_prob"},
		{"flash crowd", `{"flash_crowds": [{"at_sec": -1, "users": 3}]}`, "flash_crowds[0]"},
		{"racks", `{"rack_failures": {"racks": 2, "fail": 5, "duration_sec": 10}}`, "rack"},
		{"failure window", `{"failure_window": {"start_sec": 100, "end_sec": 50}}`, "failure_window"},
		{"changes", `{"changes": -1}`, "changes"},
	}
	for _, c := range cases {
		_, err := ParseSpec(strings.NewReader(c.json))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error mentioning %q, got %v", c.name, c.want, err)
		}
	}
}

func TestSpecEncodeRoundTrip(t *testing.T) {
	s := &ScenarioSpec{
		Seed: 11, Lambda: 0.15, DurationSec: 7200,
		Topology:    SpecTopology{Users: 8},
		Partitions:  []SpecPartition{{StartSec: 500, DurationSec: 200}},
		FlashCrowds: []SpecFlashCrowd{{AtSec: 900, Users: 4, WindowSec: 5}},
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("encoded spec does not re-parse: %v\n%s", err, data)
	}
	if back.Seed != s.Seed || back.Lambda != s.Lambda ||
		len(back.Partitions) != 1 || len(back.FlashCrowds) != 1 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

// A spec with no faults at all must reproduce the paper's run exactly:
// same seed, same result as the hand-assembled RunSpec.
func TestSpecZeroValueMatchesPaperRun(t *testing.T) {
	spec := &ScenarioSpec{Seed: 5}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	fromSpec := Run(spec.RunSpec(UPnP))
	direct := Run(RunSpec{System: UPnP, Lambda: 0, Seed: 5, Params: DefaultParams()})
	if fromSpec.Effort != direct.Effort || fromSpec.ChangeAt != direct.ChangeAt ||
		len(fromSpec.Users) != len(direct.Users) {
		t.Errorf("zero spec diverges from the paper run: %+v vs %+v", fromSpec, direct)
	}
}
