package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/frodo"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/plot"
	"repro/internal/sim"
)

// Figure4 renders Average Update Effectiveness vs interface failure rate
// for the five systems.
func Figure4(res SweepResult) Table {
	return metricTable(res, "Figure 4: Average Update Effectiveness vs interface failure (%)",
		func(p metrics.Point) float64 { return p.Effectiveness })
}

// Figure5 renders Median Update Responsiveness vs interface failure rate.
func Figure5(res SweepResult) Table {
	return metricTable(res, "Figure 5: Median Update Responsiveness vs interface failure (%)",
		func(p metrics.Point) float64 { return p.Responsiveness })
}

// Figure6 renders Efficiency Degradation vs interface failure rate, with
// each system's m' in the legend as the paper does.
func Figure6(res SweepResult) Table {
	t := metricTable(res, "Figure 6: Efficiency Degradation vs interface failure (%)",
		func(p metrics.Point) float64 { return p.Degradation })
	for _, sys := range res.Systems {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: m'=%d (paper: m'=%d)",
			sys, res.MPrime[sys], PaperMPrime(sys)))
	}
	return t
}

func metricTable(res SweepResult, title string, get func(metrics.Point) float64) Table {
	t := Table{Title: title, Header: []string{"failure%"}}
	for _, sys := range res.Systems {
		t.Header = append(t.Header, sys.Short())
	}
	for li, l := range res.Params.Lambdas {
		row := []string{pct(l)}
		for _, sys := range res.Systems {
			row = append(row, f3(get(res.Curves[sys].Points[li])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table5 renders the metric averages across failure rates 0–90%, with
// the paper's values alongside.
func Table5(res SweepResult) Table {
	t := Table{
		Title:  "Table 5: Average metrics results across failure rates from 0% to 90%",
		Header: []string{"Update Metric"},
	}
	for _, sys := range res.Systems {
		t.Header = append(t.Header, sys.Short())
	}
	paper := map[System][3]float64{
		UPnP:    {0.553, 0.922, 0.385},
		Jini1:   {0.474, 0.802, 0.311},
		Jini2:   {0.476, 0.825, 0.361},
		Frodo3P: {0.580, 0.878, 0.428},
		Frodo2P: {0.666, 0.861, 0.429},
	}
	rows := []struct {
		name string
		pick func(r, f, g float64) float64
		idx  int
	}{
		{"Update Responsiveness, R", func(r, f, g float64) float64 { return r }, 0},
		{"Update Effectiveness, F", func(r, f, g float64) float64 { return f }, 1},
		{"Efficiency Degradation, G", func(r, f, g float64) float64 { return g }, 2},
	}
	for _, rd := range rows {
		row := []string{rd.name}
		paperRow := []string{rd.name + " (paper)"}
		for _, sys := range res.Systems {
			r, f, g := res.Curves[sys].Average()
			row = append(row, f3(rd.pick(r, f, g)))
			if pv, ok := paper[sys]; ok {
				paperRow = append(paperRow, f3(pv[rd.idx]))
			} else {
				paperRow = append(paperRow, "-")
			}
		}
		t.Rows = append(t.Rows, row, paperRow)
	}
	return t
}

// Figure7Sweep runs the PR1 control experiment: both FRODO systems with
// and without PR1 ("A control experiment with and without PR1 ...
// demonstrates the impact of PR1 on the Update Effectiveness of both
// FRODO systems").
func Figure7Sweep(params Params, workers int, progress func(done, total int)) (with, without SweepResult) {
	systems := []System{Frodo3P, Frodo2P}
	with = Sweep(SweepConfig{Systems: systems, Params: params, Workers: workers, Progress: progress})
	without = Sweep(SweepConfig{
		Systems: systems,
		Params:  params,
		Workers: workers,
		Opts: Options{Frodo: func(c *frodo.Config) {
			c.Techniques = c.Techniques.Without(core.PR1)
		}},
		Progress: progress,
	})
	return with, without
}

// Figure7 renders the PR1 ablation's effectiveness series.
func Figure7(with, without SweepResult) Table {
	t := Table{
		Title: "Figure 7: PR1 impact on FRODO Update Effectiveness",
		Header: []string{"failure%",
			"frodo3p", "frodo3p-noPR1", "frodo2p", "frodo2p-noPR1"},
	}
	for li, l := range with.Params.Lambdas {
		row := []string{pct(l)}
		row = append(row, f3(with.Curves[Frodo3P].Points[li].Effectiveness))
		row = append(row, f3(without.Curves[Frodo3P].Points[li].Effectiveness))
		row = append(row, f3(with.Curves[Frodo2P].Points[li].Effectiveness))
		row = append(row, f3(without.Curves[Frodo2P].Points[li].Effectiveness))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AdversarialLossRates is the loss grid of the adversarial figure.
var AdversarialLossRates = []float64{0.05, 0.10, 0.20, 0.30}

// AdversarialMeanBurst is the mean Gilbert–Elliott burst length (frames)
// of the adversarial figure's burst column.
const AdversarialMeanBurst = 8

// FigureAdversarial compares all five systems under bursty
// (Gilbert–Elliott) loss versus i.i.d. loss at equal average rate, with
// no interface failures — the adversarial-network extension. Correlated
// loss concentrates damage: a burst swallows a whole redundancy train
// (UPnP and Jini send every multicast six times inside ~5ms) where
// i.i.d. loss at the same rate thins it, so equal-average columns
// separate the systems' recovery techniques far more than Fig. 4 does.
func FigureAdversarial(params Params, workers int, progress func(done, total int)) Table {
	params.Lambdas = []float64{0}
	t := Table{
		Title:  "Extension: Average Update Effectiveness — i.i.d. vs Gilbert–Elliott burst loss at equal average rate",
		Header: []string{"loss%"},
	}
	for _, sys := range Systems() {
		t.Header = append(t.Header, sys.Short()+" iid", sys.Short()+" burst")
	}
	for _, rate := range AdversarialLossRates {
		iid := Sweep(SweepConfig{Params: params, Workers: workers, Progress: progress,
			Opts: Options{Loss: rate}})
		burst := Sweep(SweepConfig{Params: params, Workers: workers, Progress: progress,
			Opts: Options{Link: netsim.LinkConfig{Burst: netsim.BurstForAverage(rate, AdversarialMeanBurst)}}})
		row := []string{pct(rate)}
		for _, sys := range Systems() {
			row = append(row,
				f3(iid.Curves[sys].Points[0].Effectiveness),
				f3(burst.Curves[sys].Points[0].Effectiveness))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("burst columns use Gilbert–Elliott chains with mean burst length %d frames at the same stationary loss rate", AdversarialMeanBurst),
		"BENCH_4: the adversarial figure of EXPERIMENTS.md")
	return t
}

// Table2 measures the zero-failure update message counts of every system
// — the paper's Table 2 / Fig. 6 legend values — by running one
// failure-free scenario each and reporting the effort window counts plus
// the transport frames the paper excludes.
func Table2(params Params) Table {
	t := Table{
		Title: "Table 2: update messages to make N Users consistent (no failures)",
		Header: []string{"system", "discovery msgs (y at λ=0)", "paper m'",
			"transport frames in window", "formula"},
	}
	formulas := map[System]string{
		UPnP:    "3N without TCP messages",
		Jini1:   "N+2 without TCP messages",
		Jini2:   "2(N+2) without TCP messages",
		Frodo3P: "N+2",
		Frodo2P: "N+2",
	}
	for _, sys := range Systems() {
		spec := RunSpec{System: sys, Lambda: 0, Seed: params.BaseSeed, Params: params}
		res := Run(spec)
		t.Rows = append(t.Rows, []string{
			sys.String(),
			fmt.Sprintf("%d", res.Effort),
			fmt.Sprintf("%d", PaperMPrime(sys)),
			fmt.Sprintf("%d", res.TotalTransport),
			formulas[sys],
		})
	}
	t.Notes = append(t.Notes,
		"transport frames accumulate over the whole run (TCP setup, acks, retransmissions); the Update Efficiency metrics exclude them, as the paper does")
	return t
}

// Metric selects a curve value for chart rendering.
type Metric int

const (
	// MetricEffectiveness is F(λ) (Fig. 4).
	MetricEffectiveness Metric = iota
	// MetricResponsiveness is R(λ) (Fig. 5).
	MetricResponsiveness
	// MetricDegradation is G(λ) (Fig. 6).
	MetricDegradation
)

func (m Metric) String() string {
	switch m {
	case MetricEffectiveness:
		return "Average Update Effectiveness"
	case MetricResponsiveness:
		return "Median Update Responsiveness"
	case MetricDegradation:
		return "Efficiency Degradation"
	default:
		return "?"
	}
}

func (m Metric) pick(p metrics.Point) float64 {
	switch m {
	case MetricEffectiveness:
		return p.Effectiveness
	case MetricResponsiveness:
		return p.Responsiveness
	case MetricDegradation:
		return p.Degradation
	default:
		return 0
	}
}

// Chart renders one metric's curves as an ASCII chart in the style of the
// paper's figures.
func Chart(res SweepResult, m Metric) string {
	xLabels := make([]string, len(res.Params.Lambdas))
	for i, l := range res.Params.Lambdas {
		xLabels[i] = pct(l)
	}
	series := make([]plot.Series, 0, len(res.Systems))
	for _, sys := range res.Systems {
		vals := make([]float64, len(res.Curves[sys].Points))
		for i, p := range res.Curves[sys].Points {
			vals[i] = m.pick(p)
		}
		series = append(series, plot.Series{Name: sys.String(), Values: vals})
	}
	title := fmt.Sprintf("%s vs interface failure (%%)", m)
	return plot.Chart(title, xLabels, series, plot.Config{Width: 72, Height: 22, YMin: 0, YMax: 1})
}

// AverageWindow reports the mean recovery-window length at each λ for a
// system — a diagnostic series used by the ablation benches. It reads
// the streaming cell summaries, so it works without RetainRaw.
func AverageWindow(res SweepResult, sys System) []sim.Duration {
	out := make([]sim.Duration, len(res.Params.Lambdas))
	for li, cell := range res.Cells[sys] {
		out[li] = cell.AvgWindow()
	}
	return out
}
